// §6.4 — Network overhead models, measured against the simulator's traffic
// accounting.
//
//   eq. 2 (logging):    sigma = (t + delta*t) * n / 2
//     paper examples (delta=30%, n=4): 1 MB -> 3 MB, 50 MB -> 130 MB uploaded
//   eq. 3 (recovering): sigma = (t + delta*t*v) * n / 2
//     paper examples: 1 MB, 1 version -> 3 MB; 50 MB, 100 versions -> 3.1 GB
//     (at ~$0.09/GB egress: ~27 cents for the latter, <1 cent for the former)
//
// We run the real pipelines and compare measured bytes with the model.
#include <cstdio>

#include "bench/bench_util.h"

namespace rockfs::bench {
namespace {

constexpr double kDelta = 0.3;
constexpr double kClouds = 4;
constexpr double kEgressUsdPerGb = 0.09;  // S3 pricing as of the paper (Apr 2018)

double eq2_upload_mb(double t_mb) { return (t_mb + kDelta * t_mb) * kClouds / 2; }
double eq3_download_mb(double t_mb, int versions) {
  return (t_mb + kDelta * t_mb * versions) * kClouds / 2;
}

std::uint64_t uploaded(core::Deployment& dep) {
  std::uint64_t total = 0;
  for (auto& c : dep.clouds()) total += c->traffic().uploaded_bytes();
  return total;
}
std::uint64_t downloaded(core::Deployment& dep) {
  std::uint64_t total = 0;
  for (auto& c : dep.clouds()) total += c->traffic().downloaded_bytes();
  return total;
}

void reset_traffic(core::Deployment& dep) {
  for (auto& c : dep.clouds()) c->traffic().reset();
}

void run(const BenchArgs& args) {
  std::printf("Network overhead models (paper §6.4), delta=30%%, n=4 clouds\n");

  // ---- eq. 2: upload traffic of one logged update ----
  print_header("eq. 2 — upload per logged update",
               {"size (MB)", "model (MB)", "measured (MB)"});
  const std::vector<std::size_t> sizes =
      args.quick ? std::vector<std::size_t>{1, 10} : std::vector<std::size_t>{1, 10, 50};
  for (const std::size_t mb : sizes) {
    auto dep = make_deployment(true, scfs::SyncMode::kBlocking, 4321 + mb);
    auto& agent = dep.add_user("alice");
    Rng rng(mb);
    create_file(agent, "/f", mb << 20, rng);
    agent.drain_background();
    reset_traffic(dep);
    // The measured operation: one +30% update (file re-upload + log delta).
    auto fd = agent.open("/f");
    fd.expect("open");
    agent.append(*fd, rng.next_bytes((mb << 20) * 3 / 10)).expect("append");
    agent.close(*fd).expect("close");
    agent.drain_background();
    const double measured = static_cast<double>(uploaded(dep)) / (1 << 20);
    std::printf("%14zu%14.1f%14.1f\n", mb, eq2_upload_mb(1.3 * static_cast<double>(mb)),
                measured);
  }
  std::printf("note: the model charges the updated file (t+delta*t) once plus the "
              "delta log entry; paper quotes 1MB->3MB, 50MB->130MB\n");

  // ---- eq. 3: download traffic of recovering a file ----
  print_header("eq. 3 — download per recovery",
               {"size (MB)", "versions", "model (MB)", "measured (MB)", "cost ($)"});
  struct Cell {
    std::size_t mb;
    int versions;
  };
  const std::vector<Cell> cells = args.quick
                                      ? std::vector<Cell>{{1, 1}, {5, 10}}
                                      : std::vector<Cell>{{1, 1}, {10, 10}, {50, 10}};
  for (const Cell& cell : cells) {
    auto dep = make_deployment(true, scfs::SyncMode::kBlocking,
                               5321 + cell.mb * 3 + static_cast<std::uint64_t>(cell.versions));
    auto& agent = dep.add_user("alice");
    Rng rng(cell.mb);
    create_file(agent, "/f", cell.mb << 20, rng);
    for (int v = 1; v < cell.versions; ++v) {
      auto fd = agent.open("/f");
      fd.expect("open");
      agent.append(*fd, rng.next_bytes((cell.mb << 20) * 3 / 10)).expect("append");
      agent.close(*fd).expect("close");
    }
    agent.drain_background();
    const auto attack = core::ransomware_attack(agent, {"/f"}, 3);
    reset_traffic(dep);
    auto recovery = dep.make_recovery_service("alice");
    recovery.recover_file("/f", attack.malicious_seqs).expect("recover");
    const double measured = static_cast<double>(downloaded(dep)) / (1 << 20);
    const double model = eq3_download_mb(static_cast<double>(cell.mb), cell.versions);
    std::printf("%14zu%14d%14.1f%14.1f%14.4f\n", cell.mb, cell.versions, model, measured,
                measured / 1024 * kEgressUsdPerGb);
  }
  std::printf("paper: 1MB/1v -> 3MB (<1 cent); 50MB/100v -> 3.1GB (~27 cents)\n");
  std::printf("model at 50MB/100v: %.1f MB -> $%.2f\n", eq3_download_mb(50, 100),
              eq3_download_mb(50, 100) / 1024 * kEgressUsdPerGb);
}

}  // namespace
}  // namespace rockfs::bench

int main(int argc, char** argv) {
  const auto args = rockfs::bench::BenchArgs::parse(argc, argv);
  rockfs::bench::run(args);
  rockfs::bench::dump_metrics_json(args);
  return 0;
}
