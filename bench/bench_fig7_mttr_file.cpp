// Figure 7 — Mean time to recover a single file with 1, 10 and 100 versions.
//
// Paper workload (§6.3): the files and logs of the Fig. 6 experiment are
// corrupted by ransomware and recovered; MTTR is the virtual time of
// RecoveryService::recover_file. Reported: ~2 s for a 1 MB / 1-version file
// up to ~40 s for a 50 MB / 100-version file; growth is linear in file size
// and steeper at 100 versions. The recovery batch-downloads all log entries
// at once (the paper's optimization), which our recovery service also does.
#include <cstdio>

#include "bench/bench_util.h"

namespace rockfs::bench {
namespace {

double run_cell(std::size_t size_mb, int versions, int reps) {
  std::vector<double> samples;
  for (int rep = 0; rep < reps; ++rep) {
    auto dep = make_deployment(true, scfs::SyncMode::kBlocking,
                               7000 + size_mb * 17 + static_cast<std::uint64_t>(versions) +
                                   static_cast<std::uint64_t>(rep) * 31);
    auto& agent = dep.add_user("alice");
    Rng rng(size_mb + static_cast<std::uint64_t>(versions) * 3);

    const std::size_t base = size_mb << 20;
    create_file(agent, "/f.dat", base, rng);
    for (int v = 0; v < versions; ++v) {
      auto fd = agent.open("/f.dat");
      fd.expect("open");
      agent.append(*fd, rng.next_bytes(base * 3 / 10)).expect("append");
      agent.close(*fd).expect("close");
    }
    agent.drain_background();

    const auto attack = core::ransomware_attack(agent, {"/f.dat"}, 555);
    auto recovery = dep.make_recovery_service("alice");
    auto result = recovery.recover_file("/f.dat", attack.malicious_seqs);
    result.expect("recover");
    samples.push_back(static_cast<double>(recovery.last_recovery_us()) / 1e6);
  }
  return mean(samples);
}

void run(const BenchArgs& args) {
  const std::vector<std::size_t> sizes = args.quick
                                             ? std::vector<std::size_t>{1, 10}
                                             : std::vector<std::size_t>{1, 10, 25, 50};
  std::vector<int> version_counts{1, 10};
  if (args.full) version_counts.push_back(100);

  std::printf("Figure 7: mean time to recover one file (seconds, virtual time)\n");
  std::printf("paper: ~2s (1MB, 1 version) to ~40s (50MB, 100 versions), linear in size\n");
  print_header("Fig. 7", {"size (MB)", "versions", "MTTR (s)"});
  for (const std::size_t mb : sizes) {
    for (const int v : version_counts) {
      if (!args.full && v * mb > 500) continue;
      std::printf("%14zu%14d%14.2f\n", mb, v, run_cell(mb, v, args.reps));
    }
  }
  if (!args.full) {
    std::printf("(run with --full for the 100-version cells)\n");
  }
}

}  // namespace
}  // namespace rockfs::bench

int main(int argc, char** argv) {
  const auto args = rockfs::bench::BenchArgs::parse(argc, argv);
  rockfs::bench::run(args);
  rockfs::bench::dump_metrics_json(args);
  return 0;
}
