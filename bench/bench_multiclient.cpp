// Multi-client sessions bench (ISSUE 4): what lease-based locking and
// fencing epochs cost, and how fast the system heals around a dead holder.
//
//   1. Lock acquire latency: mean uncontended lock() time (one lease read +
//      one coordination CAS) and the renewal path (read + replace).
//   2. Eviction latency: a holder crashes mid-close; the virtual time from
//      the contender's first (refused) lock attempt to its successful
//      takeover of the expired lease. Bounded by the lease TTL plus the
//      contender's retry quantum.
//   3. Close-path fencing overhead: mean blocking close() latency with
//      fencing epochs off (the PR 3 pipeline, bench baseline) vs on (adds
//      the pre-flight lease read and the log append's fence checks).
//   4. One chaos soak cell (N agents, crash+hang schedules) with its
//      convergence counters, as a smoke-level regression signal.
//
// All latencies are VIRTUAL time; a fixed seed reproduces the run exactly.
// Output: a table, then one JSON document on stdout (line starting '{').
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "rockfs/multiclient.h"

namespace rockfs::bench {
namespace {

core::Deployment make_lease_deployment(bool fencing, std::uint64_t seed,
                                       std::int64_t lease_ttl_us) {
  set_log_level(LogLevel::kError);
  core::DeploymentOptions opts;
  opts.seed = seed;
  opts.agent.sync_mode = scfs::SyncMode::kBlocking;
  opts.agent.fencing = fencing;
  opts.agent.lease_ttl_us = lease_ttl_us;
  return core::Deployment(opts);
}

constexpr std::int64_t kTtlUs = 5'000'000;

struct LockLatency {
  double acquire_ms = 0.0;  // fresh mint (lease read + CAS)
  double renew_ms = 0.0;    // re-lock by the live holder (read + replace)
};

LockLatency lock_latency(int paths, std::uint64_t seed) {
  auto dep = make_lease_deployment(true, seed, kTtlUs);
  auto& alice = dep.add_user("alice");
  LockLatency out;
  std::vector<double> acquire_ms;
  std::vector<double> renew_ms;
  for (int i = 0; i < paths; ++i) {
    const std::string path = "/bench/lock" + std::to_string(i);
    auto t0 = dep.clock()->now_us();
    alice.lock(path).expect("bench lock");
    acquire_ms.push_back(static_cast<double>(dep.clock()->now_us() - t0) / 1e3);
    t0 = dep.clock()->now_us();
    alice.lock(path).expect("bench renew");
    renew_ms.push_back(static_cast<double>(dep.clock()->now_us() - t0) / 1e3);
    alice.unlock(path).expect("bench unlock");
  }
  out.acquire_ms = mean(acquire_ms);
  out.renew_ms = mean(renew_ms);
  return out;
}

/// Holder crashes mid-close with the lease held; returns the virtual time
/// the contender spends blocked (first refused lock -> successful eviction).
double eviction_latency_ms(std::uint64_t seed) {
  auto dep = make_lease_deployment(true, seed, kTtlUs);
  auto& alice = dep.add_user("alice");
  auto& bob = dep.add_user("bob");
  Rng rng(seed ^ 0xE71C);
  alice.write_file("/bench/f", rng.next_bytes(32 * 1024)).expect("bench warmup");
  alice.lock("/bench/f").expect("bench lock");
  dep.crash_schedule()->arm(sim::CrashPoint::kAfterLogIntent);
  if (alice.write_file("/bench/f", rng.next_bytes(32 * 1024)).code() !=
      ErrorCode::kCrashed) {
    std::fprintf(stderr, "expected the holder to crash\n");
    return 0.0;
  }
  const auto t0 = dep.clock()->now_us();
  Status st = bob.lock("/bench/f");
  while (st.code() == ErrorCode::kConflict) {
    dep.clock()->advance_us(kTtlUs / 10);
    st = bob.lock("/bench/f");
  }
  st.expect("bench eviction");
  return static_cast<double>(dep.clock()->now_us() - t0) / 1e3;
}

/// Mean blocking close() latency for locked writes, fencing on or off.
double close_latency_ms(bool fencing, int files, std::uint64_t seed) {
  auto dep = make_lease_deployment(fencing, seed, kTtlUs);
  auto& alice = dep.add_user("alice");
  Rng rng(seed ^ 0xC705E);
  std::vector<double> ms;
  for (int i = 0; i < files; ++i) {
    const std::string path = "/bench/f" + std::to_string(i);
    alice.lock(path).expect("bench lock");
    Bytes content = rng.next_bytes(64 * 1024);
    auto t0 = dep.clock()->now_us();
    alice.write_file(path, content).expect("bench create");
    ms.push_back(static_cast<double>(dep.clock()->now_us() - t0) / 1e3);
    append(content, rng.next_bytes(16 * 1024));
    t0 = dep.clock()->now_us();
    alice.write_file(path, content).expect("bench update");
    ms.push_back(static_cast<double>(dep.clock()->now_us() - t0) / 1e3);
    alice.unlock(path).expect("bench unlock");
  }
  return mean(ms);
}

void run(const BenchArgs& args) {
  const int files = args.quick ? 6 : 24;
  const int lock_paths = args.quick ? 8 : 32;
  const std::uint64_t seed = 2028;

  std::printf("Multi-client bench: leases + fencing, blocking closes, f=1, seed %llu\n",
              static_cast<unsigned long long>(seed));

  const LockLatency locks = lock_latency(lock_paths, seed);
  print_header("lock acquire latency (lease read + coordination CAS)",
               {"path", "mean ms"});
  std::printf("%14s%14.3f\n", "fresh mint", locks.acquire_ms);
  std::printf("%14s%14.3f\n", "renewal", locks.renew_ms);

  const double eviction_ms = eviction_latency_ms(seed);
  print_header("eviction latency after holder crash", {"lease TTL ms", "blocked ms"});
  std::printf("%14.0f%14.1f\n", static_cast<double>(kTtlUs) / 1e3, eviction_ms);

  const double off_ms = close_latency_ms(false, files, seed);
  const double on_ms = close_latency_ms(true, files, seed);
  const double overhead_pct = off_ms > 0.0 ? 100.0 * (on_ms - off_ms) / off_ms : 0.0;
  print_header("close-path fencing overhead (vs the fencing-off baseline)",
               {"fencing", "mean close ms"});
  std::printf("%14s%14.2f\n", "off", off_ms);
  std::printf("%14s%14.2f\n", "on", on_ms);
  std::printf("overhead: %.1f%%\n", overhead_pct);

  core::MultiClientOptions soak;
  soak.seed = seed;
  soak.agents = 3;
  soak.paths = 2;
  soak.rounds = args.quick ? 12 : 24;
  soak.lease_ttl_us = kTtlUs;
  const auto report = core::run_multiclient_soak(soak);
  print_header("chaos soak (3 agents, crash + hang schedules)",
               {"counter", "value"});
  std::printf("%14s%14zu\n", "committed", report.writes_committed);
  std::printf("%14s%14zu\n", "fenced", report.writes_fenced);
  std::printf("%14s%14zu\n", "crashed", report.writes_crashed);
  std::printf("%14s%14zu\n", "evictions", report.evictions);
  std::printf("%14s%14zu\n", "lost", report.lost_updates);
  std::printf("%14s%14zu\n", "zombies", report.zombie_updates);
  std::printf("max blocked: %.1f ms; converged: %s\n",
              static_cast<double>(report.max_blocked_us) / 1e3,
              report.converged() ? "yes" : "NO");

  std::string json = "{\"bench\":\"multiclient\",";
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "\"lock\":{\"acquire_ms\":%.3f,\"renew_ms\":%.3f},"
                "\"eviction\":{\"lease_ttl_ms\":%.0f,\"blocked_ms\":%.1f},"
                "\"close\":{\"fencing_off_ms\":%.3f,\"fencing_on_ms\":%.3f,"
                "\"overhead_pct\":%.2f},",
                locks.acquire_ms, locks.renew_ms, static_cast<double>(kTtlUs) / 1e3,
                eviction_ms, off_ms, on_ms, overhead_pct);
  json += buf;
  std::snprintf(buf, sizeof(buf),
                "\"soak\":{\"committed\":%zu,\"fenced\":%zu,\"crashed\":%zu,"
                "\"evictions\":%zu,\"lost\":%zu,\"zombies\":%zu,"
                "\"max_blocked_ms\":%.1f,\"converged\":%s,\"digest\":\"%s\"}}",
                report.writes_committed, report.writes_fenced, report.writes_crashed,
                report.evictions, report.lost_updates, report.zombie_updates,
                static_cast<double>(report.max_blocked_us) / 1e3,
                report.converged() ? "true" : "false", report.digest.c_str());
  json += buf;
  std::printf("\n%s\n", json.c_str());
}

}  // namespace
}  // namespace rockfs::bench

int main(int argc, char** argv) {
  const auto args = rockfs::bench::BenchArgs::parse(argc, argv);
  rockfs::bench::run(args);
  rockfs::bench::dump_metrics_json(args);
  return 0;
}
