// Client cache bench (ISSUE 10): what the §13 cache subsystem buys and two
// CI tripwires that keep it honest.
//
//   1. Warm vs cold read latency (virtual time): cold = cache dropped before
//      every read (DepSky fetch each time), warm = validated cache hit (one
//      coordination round + local SSD). Reports the speedup; the paper's
//      motivation for the client cache is exactly this gap.
//   2. Hit ratio under a skewed re-read workload (hot subset re-read often,
//      cold tail once) straight from the cache.* counters.
//   3. Write-back coalescing under a small-write burst: the same workload
//      write-through vs write-back, comparing commit pipelines (= DepSky
//      uploads) and log appends. Reports the coalescing factor.
//   4. Soak content digest, cache on vs off (3 seeds): the converged bytes
//      must be identical — the cache may never change WHAT converges.
//
// Exit status (CI gates): nonzero when the warm-read speedup is < 3x, when
// the small-write burst does not commit >= 2x fewer uploads under
// write-back, or when any soak digest differs cache-on vs cache-off.
//
// All latencies are VIRTUAL time; a fixed seed reproduces the run exactly.
// Output: tables, then one JSON document on stdout (line starting '{').
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "rockfs/multiclient.h"

namespace rockfs::bench {
namespace {

std::uint64_t ctr(const std::string& name) {
  return obs::metrics().counter_value(name);
}

struct ReadLatency {
  double cold_ms = 0.0;
  double warm_ms = 0.0;
  double speedup = 0.0;
  double hit_ratio = 0.0;
};

/// Phase 1+2: cold/warm split plus the hit ratio of a skewed re-read mix.
ReadLatency read_latencies(const BenchArgs& args, std::uint64_t seed) {
  auto dep = make_deployment(true, scfs::SyncMode::kBlocking, seed);
  auto& agent = dep.add_user("alice");
  Rng rng(seed ^ 0xCAC4E);

  const std::size_t files = args.quick ? 4 : 8;
  const std::size_t file_bytes = 256 * 1024;
  for (std::size_t i = 0; i < files; ++i) {
    create_file(agent, "/data/f" + std::to_string(i), file_bytes, rng);
  }
  agent.drain_background();

  std::vector<double> cold_ms, warm_ms;
  for (int rep = 0; rep < args.reps; ++rep) {
    for (std::size_t i = 0; i < files; ++i) {
      const std::string path = "/data/f" + std::to_string(i);
      agent.fs().clear_cache();
      auto t0 = dep.clock()->now_us();
      agent.read_file(path).expect("bench cold read");
      cold_ms.push_back(static_cast<double>(dep.clock()->now_us() - t0) / 1000.0);
      t0 = dep.clock()->now_us();
      agent.read_file(path).expect("bench warm read");
      warm_ms.push_back(static_cast<double>(dep.clock()->now_us() - t0) / 1000.0);
    }
  }

  // Skewed re-read mix for the headline hit ratio: 2 hot files re-read 8x
  // each, the rest touched once.
  const auto hits0 = ctr("cache.data.hits");
  const auto misses0 = ctr("cache.data.misses");
  agent.fs().clear_cache();
  for (int round = 0; round < 8; ++round) {
    for (std::size_t hot = 0; hot < 2 && hot < files; ++hot) {
      agent.read_file("/data/f" + std::to_string(hot)).expect("bench hot read");
    }
  }
  for (std::size_t i = 2; i < files; ++i) {
    agent.read_file("/data/f" + std::to_string(i)).expect("bench tail read");
  }
  const double hits = static_cast<double>(ctr("cache.data.hits") - hits0);
  const double misses = static_cast<double>(ctr("cache.data.misses") - misses0);

  ReadLatency out;
  out.cold_ms = mean(cold_ms);
  out.warm_ms = mean(warm_ms);
  out.speedup = out.warm_ms > 0 ? out.cold_ms / out.warm_ms : 0.0;
  out.hit_ratio = (hits + misses) > 0 ? hits / (hits + misses) : 0.0;
  return out;
}

struct Coalescing {
  std::size_t closes = 0;
  std::size_t uploads_through = 0;  // commit pipelines, write-through
  std::size_t uploads_back = 0;     // commit pipelines, write-back
  double factor = 0.0;              // closes per write-back upload
  double virtual_ms_through = 0.0;
  double virtual_ms_back = 0.0;
};

/// Phase 3: a small-write burst (append-heavy, few paths), write-through vs
/// write-back. Uploads are counted as commit pipelines entered: log appends
/// for the write-through run, wb flushes for the write-back run.
Coalescing coalescing_burst(const BenchArgs& args, std::uint64_t seed) {
  const std::size_t paths = 2;
  const std::size_t writes = args.quick ? 16 : 32;

  Coalescing out;
  out.closes = writes;

  for (const bool write_back : {false, true}) {
    auto dep = make_deployment(true, scfs::SyncMode::kBlocking, seed);
    core::AgentOptions opts;
    opts.sync_mode = scfs::SyncMode::kBlocking;
    opts.writeback.enabled = write_back;
    auto& agent = dep.add_user("alice", opts);
    Rng rng(seed ^ 0xB065);

    const auto appends0 = ctr("log.append.count");
    const auto flushes0 = ctr("cache.wb.flushes");
    const auto t0 = dep.clock()->now_us();
    for (std::size_t i = 0; i < writes; ++i) {
      const std::string path = "/burst/p" + std::to_string(i % paths);
      auto fd = agent.open(path);
      if (!fd.ok()) fd = agent.create(path);
      fd.expect("bench burst open");
      agent.append(*fd, rng.next_bytes(64)).expect("bench burst append");
      agent.close(*fd).expect("bench burst close");
    }
    agent.flush_all().expect("bench burst flush");
    agent.drain_background();
    const double ms = static_cast<double>(dep.clock()->now_us() - t0) / 1000.0;

    if (write_back) {
      out.uploads_back = static_cast<std::size_t>(ctr("cache.wb.flushes") - flushes0);
      out.virtual_ms_back = ms;
    } else {
      out.uploads_through = static_cast<std::size_t>(ctr("log.append.count") - appends0);
      out.virtual_ms_through = ms;
    }
  }
  out.factor = out.uploads_back > 0
                   ? static_cast<double>(out.closes) / static_cast<double>(out.uploads_back)
                   : 0.0;
  return out;
}

struct SoakCell {
  std::uint64_t seed = 0;
  bool match = false;
  bool converged = false;
};

/// Phase 4: cache on/off must converge to identical bytes.
SoakCell soak_digest(std::uint64_t seed, std::size_t rounds) {
  core::MultiClientOptions opt;
  opt.seed = seed;
  opt.rounds = rounds;
  opt.client_cache = true;
  auto on = core::run_multiclient_soak(opt);
  opt.client_cache = false;
  auto off = core::run_multiclient_soak(opt);
  return {seed, on.content_digest == off.content_digest,
          on.converged() && off.converged()};
}

}  // namespace
}  // namespace rockfs::bench

int main(int argc, char** argv) {
  using namespace rockfs::bench;
  const BenchArgs args = BenchArgs::parse(argc, argv);
  rockfs::set_log_level(rockfs::LogLevel::kError);

  const auto lat = read_latencies(args, 2018);

  print_header("warm vs cold reads (virtual ms, 256 KiB files)",
               {"cold", "warm", "speedup", "hit_ratio"});
  std::printf("%14.2f%14.2f%14.2f%14.2f\n", lat.cold_ms, lat.warm_ms, lat.speedup,
              lat.hit_ratio);

  const auto co = coalescing_burst(args, 2018);
  print_header("small-write burst: write-through vs write-back",
               {"closes", "uploads_wt", "uploads_wb", "coalesce_x", "wt_ms", "wb_ms"});
  std::printf("%14zu%14zu%14zu%14.2f%14.2f%14.2f\n", co.closes, co.uploads_through,
              co.uploads_back, co.factor, co.virtual_ms_through, co.virtual_ms_back);

  print_header("soak content digest, cache on vs off", {"seed", "match", "converged"});
  std::vector<SoakCell> soaks;
  const std::size_t rounds = args.quick ? 12 : 18;
  for (const std::uint64_t seed : {11ull, 23ull, 37ull}) {
    soaks.push_back(soak_digest(seed, rounds));
    std::printf("%14llu%14s%14s\n", static_cast<unsigned long long>(soaks.back().seed),
                soaks.back().match ? "yes" : "NO",
                soaks.back().converged ? "yes" : "NO");
  }

  bool digests_ok = true;
  for (const auto& s : soaks) digests_ok = digests_ok && s.match && s.converged;
  const bool speedup_ok = lat.speedup >= 3.0;
  const bool coalesce_ok =
      co.uploads_back * 2 <= co.uploads_through && co.uploads_back > 0;

  std::printf("\n{\"bench\":\"cache\",\"cold_ms\":%.3f,\"warm_ms\":%.3f,"
              "\"speedup\":%.3f,\"hit_ratio\":%.4f,\"closes\":%zu,"
              "\"uploads_write_through\":%zu,\"uploads_write_back\":%zu,"
              "\"coalescing_factor\":%.3f,\"digests_match\":%s,"
              "\"speedup_gate\":%s,\"coalesce_gate\":%s}\n",
              lat.cold_ms, lat.warm_ms, lat.speedup, lat.hit_ratio, co.closes,
              co.uploads_through, co.uploads_back, co.factor,
              digests_ok ? "true" : "false", speedup_ok ? "true" : "false",
              coalesce_ok ? "true" : "false");

  dump_metrics_json(args);

  if (!speedup_ok) {
    std::fprintf(stderr, "GATE FAILED: warm-read speedup %.2fx < 3x\n", lat.speedup);
    return 1;
  }
  if (!coalesce_ok) {
    std::fprintf(stderr, "GATE FAILED: write-back uploads %zu not >= 2x fewer than %zu\n",
                 co.uploads_back, co.uploads_through);
    return 1;
  }
  if (!digests_ok) {
    std::fprintf(stderr, "GATE FAILED: soak digest mismatch cache on vs off\n");
    return 1;
  }
  return 0;
}
