// Credential revocation & keystore rotation bench (ISSUE 6): how fast a
// compromised user is locked out, and what the rotation costs.
//
//   1. Detection -> lockout latency: from the moment the detector's verdict
//      lands on the admin's desk to the revocation floor's quorum commit
//      (after which no non-faulty cloud accepts pre-rotation credentials),
//      and onward until every cloud enforces the floor.
//   2. Rotation MTTR: the full replace pipeline — token reissue, FssAgg
//      chain roll + signed rotation record, PVSS reseal, honest re-login —
//      with the end-to-end response time (floor + eviction + rotation).
//   3. Audit cost across rotations: chain verification time for a log
//      spanning 0, 1 and 2 rotation records (the rotated verifier's price).
//   4. One chaos-soak cell (faults + admin crashes + racing attacker) with
//      its lockout/convergence counters, as a regression signal.
//
// All latencies are VIRTUAL time; a fixed seed reproduces the run exactly.
// Output: a table, then one JSON document on stdout (line starting '{').
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "rockfs/compromise.h"
#include "rockfs/revocation.h"

namespace rockfs::bench {
namespace {

struct ResponseCost {
  double lockout_ms = 0.0;      // verdict -> floor quorum commit
  double enforce_all_ms = 0.0;  // verdict -> every cloud enforcing
  double rotation_ms = 0.0;     // keystore replacement (reissue..relogin)
  double response_ms = 0.0;     // the whole pipeline end to end
};

ResponseCost response_cost(std::uint64_t seed, int files) {
  auto dep = make_deployment(true, scfs::SyncMode::kBlocking, seed);
  auto& agent = dep.add_user("mallory");
  Rng rng(seed ^ 0x10CC);
  for (int i = 0; i < files; ++i) {
    create_file(agent, "/m/f" + std::to_string(i), 32 * 1024, rng);
  }

  ResponseCost out;
  const auto t0 = dep.clock()->now_us();
  auto response = dep.respond_to_compromise("mallory");
  response.expect("bench response");
  out.lockout_ms = static_cast<double>(response->lockout_latency_us) / 1e3;
  out.rotation_ms = static_cast<double>(response->rotation_us) / 1e3;
  out.response_ms = static_cast<double>(dep.clock()->now_us() - t0) / 1e3;
  // With no outages the floor lands everywhere during the response itself.
  out.enforce_all_ms = out.response_ms - out.rotation_ms;
  return out;
}

/// Audit time for a chain carrying `rotations` rotation records.
double audit_ms(std::uint64_t seed, int files, int rotations) {
  auto dep = make_deployment(true, scfs::SyncMode::kBlocking, seed);
  auto& agent = dep.add_user("alice");
  Rng rng(seed ^ 0xA0D1);
  for (int r = 0; r <= rotations; ++r) {
    for (int i = 0; i < files; ++i) {
      create_file(agent, "/a/r" + std::to_string(r) + "f" + std::to_string(i),
                  16 * 1024, rng);
    }
    if (r < rotations) dep.respond_to_compromise("alice").expect("bench rotate");
  }
  auto recovery = dep.make_recovery_service("alice");
  const auto t0 = dep.clock()->now_us();
  auto audit = recovery.audit_log();
  audit.expect("bench audit");
  if (!audit->report.ok) std::fprintf(stderr, "audit failed to verify\n");
  return static_cast<double>(dep.clock()->now_us() - t0) / 1e3;
}

void run(const BenchArgs& args) {
  const int files = args.quick ? 4 : 12;
  const std::uint64_t seed = 2029;

  std::printf("Revocation bench: token epochs + keystore rotation, f=1, seed %llu\n",
              static_cast<unsigned long long>(seed));

  std::vector<double> lockout, enforce, rotation, response;
  for (int rep = 0; rep < args.reps; ++rep) {
    const ResponseCost c = response_cost(seed + static_cast<std::uint64_t>(rep), files);
    lockout.push_back(c.lockout_ms);
    enforce.push_back(c.enforce_all_ms);
    rotation.push_back(c.rotation_ms);
    response.push_back(c.response_ms);
  }
  print_header("compromise response latency (virtual ms)",
               {"stage", "mean ms", "stddev"});
  std::printf("%14s%14.1f%14.1f\n", "lockout", mean(lockout), stddev(lockout));
  std::printf("%14s%14.1f%14.1f\n", "all clouds", mean(enforce), stddev(enforce));
  std::printf("%14s%14.1f%14.1f\n", "rotation", mean(rotation), stddev(rotation));
  std::printf("%14s%14.1f%14.1f\n", "end to end", mean(response), stddev(response));

  const double audit0 = audit_ms(seed, files, 0);
  const double audit1 = audit_ms(seed, files, 1);
  const double audit2 = audit_ms(seed, files, 2);
  print_header("chain audit vs rotation records in the log",
               {"rotations", "audit ms"});
  std::printf("%14d%14.1f\n", 0, audit0);
  std::printf("%14d%14.1f\n", 1, audit1);
  std::printf("%14d%14.1f\n", 2, audit2);

  core::CompromiseSoakOptions soak;
  soak.seed = seed;
  soak.rounds = args.quick ? 8 : 16;
  soak.incident_every = 4;
  const auto report = core::run_compromise_soak(soak);
  print_header("chaos soak (outages + coord faults + admin crashes + attacker)",
               {"counter", "value"});
  std::printf("%14s%14zu\n", "incidents", report.incidents);
  std::printf("%14s%14zu\n", "rotations", report.rotations);
  std::printf("%14s%14zu\n", "crashes", report.response_crashes + report.recovery_crashes);
  std::printf("%14s%14zu\n", "atk writes", report.attack.write_attempts);
  std::printf("%14s%14zu\n", "atk denied", report.attack.revoked_denials);
  std::printf("%14s%14zu\n", "post-floor", report.attack.writes_accepted_post_floor +
                                               report.attack.reads_accepted_post_floor);
  std::printf("max lockout: %.1f ms; max rotation: %.1f ms; lockout held: %s; "
              "converged: %s\n",
              static_cast<double>(report.max_lockout_latency_us) / 1e3,
              static_cast<double>(report.max_rotation_us) / 1e3,
              report.lockout_held ? "yes" : "NO", report.converged ? "yes" : "NO");

  std::string json = "{\"bench\":\"revocation\",";
  char buf[640];
  std::snprintf(buf, sizeof(buf),
                "\"response\":{\"lockout_ms\":%.1f,\"all_clouds_ms\":%.1f,"
                "\"rotation_ms\":%.1f,\"end_to_end_ms\":%.1f},"
                "\"audit_ms\":{\"rot0\":%.1f,\"rot1\":%.1f,\"rot2\":%.1f},",
                mean(lockout), mean(enforce), mean(rotation), mean(response), audit0,
                audit1, audit2);
  json += buf;
  std::snprintf(buf, sizeof(buf),
                "\"soak\":{\"incidents\":%zu,\"rotations\":%zu,"
                "\"response_crashes\":%zu,\"recovery_crashes\":%zu,"
                "\"attacker_writes\":%zu,\"revoked_denials\":%zu,"
                "\"post_floor_accepts\":%zu,\"max_lockout_ms\":%.1f,"
                "\"max_rotation_ms\":%.1f,\"lockout_held\":%s,\"converged\":%s,"
                "\"honest_digest\":\"%s\"}}",
                report.incidents, report.rotations, report.response_crashes,
                report.recovery_crashes, report.attack.write_attempts,
                report.attack.revoked_denials,
                report.attack.writes_accepted_post_floor +
                    report.attack.reads_accepted_post_floor,
                static_cast<double>(report.max_lockout_latency_us) / 1e3,
                static_cast<double>(report.max_rotation_us) / 1e3,
                report.lockout_held ? "true" : "false",
                report.converged ? "true" : "false", report.honest_digest.c_str());
  json += buf;
  std::printf("\n%s\n", json.c_str());
}

}  // namespace
}  // namespace rockfs::bench

int main(int argc, char** argv) {
  const auto args = rockfs::bench::BenchArgs::parse(argc, argv);
  rockfs::bench::run(args);
  rockfs::bench::dump_metrics_json(args);
  return 0;
}
