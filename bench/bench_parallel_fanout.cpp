// Parallel fan-out speedup bench: wall-clock put-path latency of the DepSky
// client with the fan-out executor against the sequential baseline, under an
// emulated WAN where one cloud serves every request with a heavy tail
// (n = 4, f = 1, protocol CA).
//
// Virtual delays are scaled down into real sleeps inside each per-cloud
// branch (DepSkyConfig::emulate_latency), so the measurement captures the
// two effects the executor exists for:
//   * the four per-cloud puts overlap instead of accumulating, and
//   * the kFirstQuorum join returns at the (n-f)-th ack and cancels the
//     tail-latency straggler mid-sleep instead of waiting it out.
// The sequential baseline (no executor, kBarrier) sleeps through every
// branch back-to-back — the pre-PR behaviour. Expected speedup at n = 4 with
// the tail armed is well above the 2x acceptance floor.
//
// Emits a paper-style table plus one JSON object per payload size on stdout
// ("rockfs.bench.parallel_fanout" rows), and --metrics-json dumps the
// registry + trace like every other bench.
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/executor.h"
#include "depsky/client.h"

namespace rockfs::bench {
namespace {

constexpr std::uint64_t kSeed = 2018;
constexpr std::size_t kClouds = 4;
// 1 virtual second of WAN latency ~= 50 ms of bench wall time. The scale is
// chosen so the emulated network dominates the local compute (AES + RS
// encode), like the real system: a 1 MiB write moves ~0.5 MiB per cloud at
// the s3-like 2.5 MB/s uplink, ~10 ms of wall sleep per branch — the 20x
// straggler sleeps ~200 ms unless the first-quorum join cancels it.
constexpr sim::SimClock::Micros kScale = 20;

struct Cell {
  std::size_t payload_mib = 0;
  double seq_ms = 0;      // mean wall-clock per write, sequential baseline
  double par_ms = 0;      // mean wall-clock per write, pool + first-quorum
  double speedup = 0;
};

struct Harness {
  sim::SimClockPtr clock;
  std::vector<cloud::CloudProviderPtr> clouds;
  std::unique_ptr<depsky::DepSkyClient> client;
  std::vector<cloud::AccessToken> tokens;
};

// Fresh fleet + client per mode so breaker state and fault draws can never
// leak across the comparison. The straggler cloud serves everything with a
// 20x latency tail (the "slow cloud" the paper's quorum reads race past).
Harness make_harness(bool parallel, std::uint64_t seed) {
  Harness h;
  h.clock = std::make_shared<sim::SimClock>();
  h.clouds = cloud::make_provider_fleet(h.clock, kClouds, seed);
  h.clouds[kClouds - 1]->faults().set_tail_latency(1.0, 20.0);

  crypto::Drbg drbg{to_bytes("bench-fanout-" + std::to_string(seed))};
  depsky::DepSkyConfig cfg;
  cfg.clouds = h.clouds;
  cfg.f = 1;
  cfg.protocol = depsky::Protocol::kCA;
  cfg.writer = crypto::generate_keypair(drbg);
  if (parallel) {
    cfg.executor = std::make_shared<common::ThreadPool>(kClouds);
    cfg.join_mode = common::JoinMode::kFirstQuorum;
  }
  cfg.emulate_latency = [](sim::SimClock::Micros virtual_us,
                           const common::CancelToken& cancel) {
    cancel.sleep_for(std::chrono::microseconds(virtual_us / kScale + 1));
  };
  h.client = std::make_unique<depsky::DepSkyClient>(std::move(cfg),
                                                    to_bytes("bench-fanout"));
  for (auto& c : h.clouds) {
    h.tokens.push_back(c->issue_token("alice", "fs", cloud::TokenScope::kFiles));
  }
  return h;
}

// Mean wall-clock milliseconds per write of `size` bytes over `reps` writes
// (one warm-up write excluded — it pays the provider's cold-object cost).
double measure_put_ms(Harness& h, std::size_t size, int reps) {
  Rng rng(kSeed ^ size);
  auto put = [&](int i) {
    auto timed = h.client->write(h.tokens, "bench/fanout/u" + std::to_string(i),
                                 rng.next_bytes(size));
    h.clock->advance_us(timed.delay);
    timed.value.expect("bench put");
  };
  put(0);  // warm-up
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 1; i <= reps; ++i) put(i);
  const auto dt = std::chrono::steady_clock::now() - t0;
  return std::chrono::duration<double, std::milli>(dt).count() / reps;
}

}  // namespace
}  // namespace rockfs::bench

int main(int argc, char** argv) {
  using namespace rockfs;
  using namespace rockfs::bench;

  const BenchArgs args = BenchArgs::parse(argc, argv);
  std::vector<std::size_t> payload_mib = {1, 4, 16};
  if (args.quick) payload_mib = {1, 4};
  const int reps = std::max(args.reps, 2);

  print_header("Parallel fan-out put path (n=4, f=1, CA, 20x tail on cloud-3)",
               {"MiB", "seq ms", "par ms", "speedup"});

  std::vector<Cell> cells;
  bool all_above_floor = true;
  for (const std::size_t mib : payload_mib) {
    Cell cell;
    cell.payload_mib = mib;
    {
      Harness seq = make_harness(/*parallel=*/false, kSeed + mib);
      cell.seq_ms = measure_put_ms(seq, mib << 20, reps);
    }
    {
      Harness par = make_harness(/*parallel=*/true, kSeed + mib);
      cell.par_ms = measure_put_ms(par, mib << 20, reps);
    }
    cell.speedup = cell.par_ms > 0 ? cell.seq_ms / cell.par_ms : 0;
    all_above_floor = all_above_floor && cell.speedup >= 2.0;
    std::printf("%14zu%14.2f%14.2f%13.2fx\n", cell.payload_mib, cell.seq_ms,
                cell.par_ms, cell.speedup);
    cells.push_back(cell);
  }

  // Machine-readable rows (the CI artifact greps these).
  for (const Cell& c : cells) {
    std::printf(
        "{\"bench\":\"rockfs.bench.parallel_fanout\",\"payload_mib\":%zu,"
        "\"seq_ms\":%.3f,\"par_ms\":%.3f,\"speedup\":%.3f}\n",
        c.payload_mib, c.seq_ms, c.par_ms, c.speedup);
  }
  std::printf("parallel fan-out speedup floor (>=2.0x): %s\n",
              all_above_floor ? "PASS" : "FAIL");

  dump_metrics_json(args);
  return all_above_floor ? 0 : 1;
}
