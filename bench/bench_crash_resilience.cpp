// Crash-resilience bench (ISSUE 3): what crash consistency costs and what it
// buys.
//
//   1. Close-path overhead: mean blocking close() latency with the
//      write-ahead intent journal off vs on. The journal adds one
//      coordination replace ahead of the file upload, so the delta is the
//      price of crash consistency on the hot path.
//   2. Crash-to-consistent MTTR: for every client-side crash point, the
//      virtual time from the simulated process death to a consistent,
//      writable deployment again (login replaying the intent journal + the
//      user's retry of the interrupted write; for the mid-recovery point,
//      the resumed recover_all).
//
// All latencies are VIRTUAL time; a fixed seed reproduces the run exactly.
// Output: a table, then one JSON document on stdout (line starting '{').
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace rockfs::bench {
namespace {

core::Deployment make_crash_deployment(bool enable_journal, std::uint64_t seed) {
  set_log_level(LogLevel::kError);
  core::DeploymentOptions opts;
  opts.seed = seed;
  opts.agent.sync_mode = scfs::SyncMode::kBlocking;
  opts.agent.enable_journal = enable_journal;
  return core::Deployment(opts);
}

/// Mean blocking-close latency (ms) over `files` create + update pairs.
double close_latency_ms(bool enable_journal, int files, std::uint64_t seed) {
  auto dep = make_crash_deployment(enable_journal, seed);
  auto& alice = dep.add_user("alice");
  Rng rng(seed ^ 0xC10);
  std::vector<double> ms;
  for (int i = 0; i < files; ++i) {
    const std::string path = "/bench/f" + std::to_string(i);
    Bytes content = rng.next_bytes(64 * 1024);
    auto t0 = dep.clock()->now_us();
    alice.write_file(path, content).expect("bench create");
    ms.push_back(static_cast<double>(dep.clock()->now_us() - t0) / 1e3);
    append(content, rng.next_bytes(16 * 1024));
    t0 = dep.clock()->now_us();
    alice.write_file(path, content).expect("bench update");
    ms.push_back(static_cast<double>(dep.clock()->now_us() - t0) / 1e3);
  }
  return mean(ms);
}

struct MttrResult {
  const char* point;
  double mttr_ms = 0.0;
};

/// Crash at `point`, then measure virtual time until the deployment is
/// consistent and the interrupted operation has been completed.
MttrResult measure_mttr(sim::CrashPoint point, int warm_files, std::uint64_t seed) {
  auto dep = make_crash_deployment(/*enable_journal=*/true, seed);
  auto& alice = dep.add_user("alice");
  Rng rng(seed ^ 0x3A5);
  for (int i = 0; i < warm_files; ++i) {
    alice.write_file("/bench/w" + std::to_string(i), rng.next_bytes(32 * 1024))
        .expect("bench warmup");
  }

  MttrResult result{sim::crash_point_name(point)};
  if (point == sim::CrashPoint::kMidRecoverAll) {
    auto recovery = dep.make_recovery_service("alice");
    dep.crash_schedule()->arm(point);
    auto crashed = recovery.recover_all({});
    if (crashed.ok() || crashed.code() != ErrorCode::kCrashed) {
      std::fprintf(stderr, "expected a mid-recovery crash\n");
      return result;
    }
    const auto t0 = dep.clock()->now_us();
    recovery.recover_all({}).expect("resumed recover_all");
    result.mttr_ms = static_cast<double>(dep.clock()->now_us() - t0) / 1e3;
    return result;
  }

  dep.crash_schedule()->arm(point);
  const Bytes content = rng.next_bytes(64 * 1024);
  auto st = alice.write_file("/bench/crash-me", content);
  if (st.code() != ErrorCode::kCrashed) {
    std::fprintf(stderr, "expected a crash at %s\n", result.point);
    return result;
  }
  const auto t0 = dep.clock()->now_us();
  dep.login_default("alice").expect("restart login");  // replays the journal
  alice.write_file("/bench/crash-me", content).expect("retry after restart");
  result.mttr_ms = static_cast<double>(dep.clock()->now_us() - t0) / 1e3;
  return result;
}

void run(const BenchArgs& args) {
  const int files = args.quick ? 6 : 24;
  const int warm_files = args.quick ? 2 : 6;
  const std::uint64_t seed = 2027;

  std::printf("Crash-resilience bench: blocking closes, 64 KiB files, f=1, seed %llu\n",
              static_cast<unsigned long long>(seed));

  const double off_ms = close_latency_ms(false, files, seed);
  const double on_ms = close_latency_ms(true, files, seed);
  const double overhead_pct = off_ms > 0.0 ? 100.0 * (on_ms - off_ms) / off_ms : 0.0;
  print_header("close-path overhead of the intent journal",
               {"journal", "mean close ms"});
  std::printf("%14s%14.2f\n", "off", off_ms);
  std::printf("%14s%14.2f\n", "on", on_ms);
  std::printf("overhead: %.1f%%\n", overhead_pct);

  print_header("crash-to-consistent MTTR", {"crash point", "mttr ms"});
  std::vector<MttrResult> mttrs;
  for (std::size_t p = 0; p < sim::kClosePathCrashPointCount; ++p) {
    mttrs.push_back(measure_mttr(static_cast<sim::CrashPoint>(p), warm_files, seed));
    std::printf("%22s%14.1f\n", mttrs.back().point, mttrs.back().mttr_ms);
  }

  std::string json = "{\"bench\":\"crash_resilience\",\"close\":{";
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "\"journal_off_ms\":%.3f,\"journal_on_ms\":%.3f,\"overhead_pct\":%.2f},"
                "\"mttr\":[",
                off_ms, on_ms, overhead_pct);
  json += buf;
  for (std::size_t i = 0; i < mttrs.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%s{\"point\":\"%s\",\"mttr_ms\":%.1f}",
                  i == 0 ? "" : ",", mttrs[i].point, mttrs[i].mttr_ms);
    json += buf;
  }
  json += "]}";
  std::printf("\n%s\n", json.c_str());
}

}  // namespace
}  // namespace rockfs::bench

int main(int argc, char** argv) {
  const auto args = rockfs::bench::BenchArgs::parse(argc, argv);
  rockfs::bench::run(args);
  rockfs::bench::dump_metrics_json(args);
  return 0;
}
