// Ablation study (ours, not a paper figure) — quantifies the design choices
// DESIGN.md calls out:
//   1. DepSky protocol A vs CA: storage and close-latency trade-off.
//   2. Delta log vs whole-file versioning: log storage for the Fig. 6 workload
//      (the paper argues deltas beat the multi-version approach of
//      OneDrive-style systems).
//   3. Parallel vs sequential log pipeline: the §6.1 optimization's value.
//   4. Coordination fault tolerance f=1 vs f=2: metadata latency cost.
#include <cstdio>

#include "bench/bench_util.h"

namespace rockfs::bench {
namespace {

std::uint64_t total_stored(core::Deployment& dep) {
  std::uint64_t t = 0;
  for (auto& c : dep.clouds()) t += c->stored_bytes();
  return t;
}

void ablate_protocol(const BenchArgs&) {
  print_header("1. DepSky protocol A vs CA (10MB file, one close)",
               {"protocol", "stored (MB)", "close (s)"});
  for (const auto protocol : {depsky::Protocol::kA, depsky::Protocol::kCA}) {
    core::DeploymentOptions opts;
    opts.seed = 111;
    opts.agent.protocol = protocol;
    opts.agent.sync_mode = scfs::SyncMode::kBlocking;
    core::Deployment dep(opts);
    auto& agent = dep.add_user("alice");
    Rng rng(1);
    auto fd = agent.create("/f");
    fd.expect("create");
    agent.write(*fd, 0, rng.next_bytes(10 << 20)).expect("write");
    auto closed = agent.close_timed(*fd);
    closed.value.expect("close");
    std::printf("%14s%14.1f%14.2f\n", protocol == depsky::Protocol::kA ? "A" : "CA",
                static_cast<double>(total_stored(dep)) / (1 << 20),
                static_cast<double>(closed.delay) / 1e6);
  }
  std::printf("(A replicates: 4x storage; CA erasure-codes: 2x — why RockFS uses CA)\n");
}

void ablate_delta_vs_whole(const BenchArgs&) {
  print_header("2. Delta log vs whole-file versioning (5MB file, 10 updates of +30%)",
               {"policy", "log (MB)"});
  // Delta (RockFS): measured from the real pipeline.
  {
    auto dep = make_deployment(true, scfs::SyncMode::kBlocking, 222);
    auto& agent = dep.add_user("alice");
    Rng rng(2);
    create_file(agent, "/f", 5 << 20, rng);
    const std::uint64_t before = total_stored(dep);
    for (int i = 0; i < 10; ++i) {
      auto fd = agent.open("/f");
      fd.expect("open");
      agent.append(*fd, rng.next_bytes((5 << 20) * 3 / 10)).expect("append");
      agent.close(*fd).expect("close");
    }
    std::uint64_t file_growth = 0;
    {
      // Subtract the file's own growth to isolate the log.
      auto st = agent.stat("/f");
      file_growth = 2 * (st.expect("stat").size - (5 << 20));
    }
    const double log_mb =
        static_cast<double>(total_stored(dep) - before - file_growth) / (1 << 20);
    std::printf("%14s%14.1f\n", "delta (ours)", log_mb);
  }
  // Whole-file versioning (OneDrive-style): every version keeps a full copy.
  {
    double stored = 0;
    double size = 5;
    for (int i = 0; i < 10; ++i) {
      size += 5 * 0.3;
      stored += 2 * size;  // each retained version at CA's 2x
    }
    std::printf("%14s%14.1f\n", "whole-file", stored);
  }
  std::printf("(the paper's §6.2 argument: delta logs cost far less than "
              "keeping every full version)\n");
}

void ablate_parallel_pipeline(const BenchArgs&) {
  print_header("3. Parallel vs sequential log pipeline (10MB, +30% update)",
               {"pipeline", "close (s)", "overhead"});
  double scfs_s = 0;
  {
    auto dep = make_deployment(false, scfs::SyncMode::kBlocking, 333);
    auto& agent = dep.add_user("alice");
    Rng rng(3);
    create_file(agent, "/f", 10 << 20, rng);
    auto fd = agent.open("/f");
    fd.expect("open");
    agent.append(*fd, rng.next_bytes(3 << 20)).expect("append");
    auto closed = agent.close_timed(*fd);
    scfs_s = static_cast<double>(closed.delay) / 1e6;
  }
  // Sequential estimate: undo the overlap model to see what a naive
  // implementation (log pipeline strictly after the file upload) would pay.
  {
    auto dep = make_deployment(true, scfs::SyncMode::kBlocking, 333);
    auto& agent = dep.add_user("alice");
    Rng rng(3);
    create_file(agent, "/f", 10 << 20, rng);
    auto fd = agent.open("/f");
    fd.expect("open");
    agent.append(*fd, rng.next_bytes(3 << 20)).expect("append");
    auto closed = agent.close_timed(*fd);
    const double parallel_s = static_cast<double>(closed.delay) / 1e6;
    // Sequential estimate: SCFS close + the full log pipeline (no overlap).
    const double contention = scfs::ScfsOptions{}.uplink_contention;
    const double log_s = (parallel_s - scfs_s) / contention;  // undo the overlap model
    const double sequential_s = scfs_s + log_s;
    std::printf("%14s%14.2f%13.1f%%\n", "no log", scfs_s, 0.0);
    std::printf("%14s%14.2f%13.1f%%\n", "parallel", parallel_s,
                (parallel_s / scfs_s - 1) * 100);
    std::printf("%14s%14.2f%13.1f%%\n", "sequential", sequential_s,
                (sequential_s / scfs_s - 1) * 100);
  }
  std::printf("(the paper's optimization (2): overlapping file and log uploads)\n");
}

void ablate_coordination_f(const BenchArgs&) {
  print_header("4. Coordination fault tolerance (16KB create+close)",
               {"f", "replicas", "op (s)"});
  for (const std::size_t f : {1uL, 2uL}) {
    core::DeploymentOptions opts;
    opts.f = f;
    opts.seed = 444;
    opts.agent.sync_mode = scfs::SyncMode::kBlocking;
    core::Deployment dep(opts);
    auto& agent = dep.add_user("alice");
    Rng rng(4);
    auto fd = agent.create("/f");
    fd.expect("create");
    agent.write(*fd, 0, rng.next_bytes(16 << 10)).expect("write");
    auto closed = agent.close_timed(*fd);
    closed.value.expect("close");
    std::printf("%14zu%14zu%14.2f\n", f, dep.coordination()->replica_count(),
                static_cast<double>(closed.delay) / 1e6);
  }
  std::printf("(higher f -> larger quorums and a wider delay tail)\n");
}

void ablate_compression(const BenchArgs&) {
  print_header("5. Log compression (§6.2 future work; 2MB CSV-like file, 5 updates)",
               {"codec", "log bytes"});
  for (const bool compress : {false, true}) {
    core::DeploymentOptions opts;
    opts.seed = 555;
    opts.agent.compress_log = compress;
    opts.agent.sync_mode = scfs::SyncMode::kBlocking;
    core::Deployment dep(opts);
    auto& agent = dep.add_user("alice");
    // Structured, compressible content (the common case for documents).
    Bytes content;
    for (int i = 0; i < 30'000; ++i) {
      append(content, to_bytes("field_a,field_b,field_c,123456\n"));
    }
    content.resize(2 << 20);
    agent.write_file("/table.csv", content).expect("write");
    for (int v = 0; v < 5; ++v) {
      append(content, to_bytes("one more appended row,with,values\n"));
      agent.write_file("/table.csv", content).expect("update");
    }
    std::uint64_t log_bytes = 0;
    auto records = core::read_log_records(*dep.coordination(), "alice");
    for (const auto& r : *records.value) log_bytes += r.payload_size;
    std::printf("%14s%14llu\n", compress ? "lz" : "raw",
                static_cast<unsigned long long>(log_bytes));
  }
  std::printf("(compression shrinks the whole-file creation entry dramatically)\n");
}

void run(const BenchArgs& args) {
  std::printf("Ablation studies for RockFS design choices (virtual time)\n");
  ablate_protocol(args);
  ablate_delta_vs_whole(args);
  ablate_parallel_pipeline(args);
  ablate_coordination_f(args);
  ablate_compression(args);
}

}  // namespace
}  // namespace rockfs::bench

int main(int argc, char** argv) {
  const auto args = rockfs::bench::BenchArgs::parse(argc, argv);
  rockfs::bench::run(args);
  rockfs::bench::dump_metrics_json(args);
  return 0;
}
