// Shared plumbing for the paper-reproduction benchmarks: deployment
// construction, workload generators, simple statistics and aligned table
// printing. Every figure/table bench runs on VIRTUAL time (sim::SimClock),
// so results are deterministic and independent of the host machine; see
// DESIGN.md §5 for the calibration against the paper's AWS/GCE testbed.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rockfs/attack.h"
#include "rockfs/deployment.h"

namespace rockfs::bench {

/// Command-line knobs shared by all benches.
struct BenchArgs {
  int reps = 2;       // repetitions per cell (paper used 10; determinism makes more redundant)
  bool full = false;  // run the heaviest paper cells too
  bool quick = false; // CI-sized sweep
  std::string metrics_json;  // if set, dump registry + trace JSON here at exit

  static BenchArgs parse(int argc, char** argv) {
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      if (a == "--full") args.full = true;
      if (a == "--quick") args.quick = true;
      if (a == "--reps" && i + 1 < argc) args.reps = std::atoi(argv[++i]);
      if (a == "--metrics-json" && i + 1 < argc) args.metrics_json = argv[++i];
    }
    return args;
  }
};

/// Writes the accumulated metrics registry and span trace to
/// `args.metrics_json` (no-op when the flag was not given). Call it at the
/// end of main so the dump covers the whole run; see EXPERIMENTS.md
/// ("Reading the --metrics-json dumps") for the schema.
inline void dump_metrics_json(const BenchArgs& args) {
  if (args.metrics_json.empty()) return;
  std::FILE* f = std::fopen(args.metrics_json.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", args.metrics_json.c_str());
    return;
  }
  const std::string metrics = obs::metrics().to_json();
  const std::string trace = obs::tracer().to_json();
  std::fprintf(f, "{\"metrics\":%s,\"trace\":%s}\n", metrics.c_str(), trace.c_str());
  std::fclose(f);
  std::printf("metrics dump written to %s\n", args.metrics_json.c_str());
}

inline double mean(const std::vector<double>& xs) {
  double s = 0;
  for (const double x : xs) s += x;
  return xs.empty() ? 0.0 : s / static_cast<double>(xs.size());
}

inline double stddev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0;
  for (const double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

/// Fresh deployment configured for one benchmark cell.
inline core::Deployment make_deployment(bool rockfs_logging, scfs::SyncMode mode,
                                        std::uint64_t seed) {
  set_log_level(LogLevel::kError);  // keep bench tables clean
  core::DeploymentOptions opts;
  opts.seed = seed;
  opts.agent.enable_logging = rockfs_logging;
  opts.agent.enable_cache_crypto = rockfs_logging;
  opts.agent.sync_mode = mode;
  return core::Deployment(opts);
}

/// Writes a fresh file of `size` bytes through the agent (one logged close).
inline void create_file(core::RockFsAgent& agent, const std::string& path,
                        std::size_t size, Rng& rng) {
  agent.write_file(path, rng.next_bytes(size)).expect("bench create_file");
}

/// Appends ~30% of the file's current size (the paper's §6.1 update).
inline void update_file_30pct(core::RockFsAgent& agent, const std::string& path,
                              Rng& rng) {
  auto fd = agent.open(path);
  fd.expect("bench open");
  auto st = agent.stat(path);
  const std::size_t extra = std::max<std::size_t>(st.expect("stat").size * 3 / 10, 1);
  agent.append(*fd, rng.next_bytes(extra)).expect("bench append");
  agent.close(*fd).expect("bench close");
}

/// Header + row printers for paper-style tables.
inline void print_header(const char* title, const std::vector<std::string>& columns) {
  std::printf("\n=== %s ===\n", title);
  for (const auto& c : columns) std::printf("%14s", c.c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < columns.size(); ++i) std::printf("%14s", "------------");
  std::printf("\n");
}

inline void print_cell(const char* fmt, double v) { std::printf(fmt, v); }

}  // namespace rockfs::bench
