// Figure 6 — Required cloud storage for the files and their logs.
//
// Paper workload (§6.2): files of 1..50 MB updated 1, 10 and 100 times, each
// update appending 30% of the file's ORIGINAL size. Reported: total bytes in
// the cloud storage services without log entries vs with them. Expectations:
//   * the file alone occupies ~2x its size (DepSky CA erasure coding, n=4 k=2)
//   * 1 log entry adds only the delta (~0.6x of the original size in cloud bytes)
//   * at 10 versions the log exceeds the file itself
//   * 100 versions: ~60 MB (1 MB file) up to ~3 GB (50 MB file) of log
//   * growth is linear in the number of versions
// The paper also gives the closed-form estimate s_n = 2(s_{n-1} + delta *
// s_{n-1}) (eq. 1), which we print alongside.
#include <cstdio>

#include "bench/bench_util.h"

namespace rockfs::bench {
namespace {

struct Cell {
  double file_mb = 0;   // cloud bytes of the file itself ("without log")
  double total_mb = 0;  // file + log entries ("with log")
};

std::uint64_t cloud_bytes(core::Deployment& dep, const std::string& prefix) {
  std::uint64_t total = 0;
  const auto tokens = dep.admin_tokens();
  for (std::size_t i = 0; i < dep.clouds().size(); ++i) {
    auto listed = dep.clouds()[i]->list(tokens[i], prefix);
    if (!listed.value.ok()) continue;
    for (const auto& s : *listed.value) total += s.size;
  }
  return total;
}

Cell run_cell(std::size_t size_mb, int versions) {
  auto dep = make_deployment(true, scfs::SyncMode::kBlocking,
                             6000 + size_mb * 131 + static_cast<std::uint64_t>(versions));
  auto& agent = dep.add_user("alice");
  Rng rng(size_mb * 7 + static_cast<std::uint64_t>(versions));

  const std::size_t base = size_mb << 20;
  const std::size_t extra = base * 3 / 10;
  create_file(agent, "/f.dat", base, rng);
  for (int v = 0; v < versions; ++v) {
    auto fd = agent.open("/f.dat");
    fd.expect("open");
    // Each update appends 30% of the ORIGINAL size (paper: "a file with
    // 10MB was updated with more 3MB every time").
    agent.append(*fd, rng.next_bytes(extra)).expect("append");
    agent.close(*fd).expect("close");
  }
  agent.drain_background();

  Cell cell;
  cell.file_mb = static_cast<double>(cloud_bytes(dep, "files/")) / (1 << 20);
  cell.total_mb = static_cast<double>(cloud_bytes(dep, "")) / (1 << 20);
  return cell;
}

// Closed-form estimate in the spirit of the paper's eq. 1 (delta = 30% of
// the original size, everything at 2x in the clouds due to erasure coding):
// file 2*(s + v*0.3s), plus the log: the creation entry (whole file, 2s)
// and one 0.6s delta per update.
double eq1_total_mb(std::size_t size_mb, int versions) {
  const double s = static_cast<double>(size_mb);
  const double file = 2 * (s + static_cast<double>(versions) * 0.3 * s);
  const double log = 2 * s + static_cast<double>(versions) * 0.6 * s;
  return file + log;
}

void run(const BenchArgs& args) {
  const std::vector<std::size_t> sizes = args.quick
                                             ? std::vector<std::size_t>{1, 10}
                                             : std::vector<std::size_t>{1, 10, 25, 50};
  std::vector<int> version_counts{1, 10};
  if (args.full) version_counts.push_back(100);

  std::printf("Figure 6: cloud storage for files and logs (MB)\n");
  std::printf("paper: file alone ~2x its size; 10-version log exceeds the file; "
              "100 versions: 60MB (1MB file) .. ~3GB (50MB file)\n");
  print_header("Fig. 6",
               {"size (MB)", "versions", "file only", "log only", "file+log", "eq.1 est"});
  for (const std::size_t mb : sizes) {
    for (const int v : version_counts) {
      if (!args.full && v * mb > 500) continue;  // keep default runtime sane
      const Cell c = run_cell(mb, v);
      std::printf("%14zu%14d%14.1f%14.1f%14.1f%14.1f\n", mb, v, c.file_mb,
                  c.total_mb - c.file_mb, c.total_mb, eq1_total_mb(mb, v));
    }
  }
  if (!args.full) {
    std::printf("(run with --full for the 100-version cells; the estimate gives "
                "1MB x100 = %.0f MB total, 50MB x100 = %.0f MB total — the paper "
                "quotes ~60MB and ~3GB for the log alone)\n",
                eq1_total_mb(1, 100), eq1_total_mb(50, 100));
  }
}

}  // namespace
}  // namespace rockfs::bench

int main(int argc, char** argv) {
  const auto args = rockfs::bench::BenchArgs::parse(argc, argv);
  rockfs::bench::run(args);
  rockfs::bench::dump_metrics_json(args);
  return 0;
}
