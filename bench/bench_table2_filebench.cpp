// Table 2 — FileBench micro-benchmark latencies for SCFS and RockFS.
//
// The paper runs two FileBench profiles against both systems in non-blocking
// (NB) and blocking (B) modes:
//   write   1 op,    4 MB  — sequential write of a whole file, then close
//   create  200 ops, 16 KB — create 200 small files
//
// Paper (seconds):            SCFS-NB  SCFS-B  RockFS-NB  RockFS-B   NB / B ovh
//   write  (1 x 4MB)            1.63    1.71      1.90       2.12     17% / 24%
//   create (200 x 16KB)       197.60  236.76    219.00     298.20     11% / 26%
#include <cstdio>

#include "bench/bench_util.h"

namespace rockfs::bench {
namespace {

double run_write_profile(bool logging, scfs::SyncMode mode, int reps) {
  std::vector<double> samples;
  for (int rep = 0; rep < reps; ++rep) {
    auto dep = make_deployment(logging, mode, 4200 + static_cast<std::uint64_t>(rep));
    auto& agent = dep.add_user("alice");
    Rng rng(static_cast<std::uint64_t>(rep) + 1);
    const auto start = dep.clock()->now_us();
    // FileBench "sequential write": one 4MB file written and synced.
    auto fd = agent.create("/fb/seqwrite.dat");
    fd.expect("create");
    agent.write(*fd, 0, rng.next_bytes(4 << 20)).expect("write");
    agent.close(*fd).expect("close");
    agent.drain_background();  // workload latency includes the sync
    samples.push_back(static_cast<double>(dep.clock()->now_us() - start) / 1e6);
  }
  return mean(samples);
}

double run_create_profile(bool logging, scfs::SyncMode mode, int reps, int files) {
  std::vector<double> samples;
  for (int rep = 0; rep < reps; ++rep) {
    auto dep = make_deployment(logging, mode, 9900 + static_cast<std::uint64_t>(rep));
    auto& agent = dep.add_user("alice");
    Rng rng(static_cast<std::uint64_t>(rep) + 7);
    const auto start = dep.clock()->now_us();
    for (int i = 0; i < files; ++i) {
      auto fd = agent.create("/fb/create/f" + std::to_string(i));
      fd.expect("create");
      agent.write(*fd, 0, rng.next_bytes(16 << 10)).expect("write");
      agent.close(*fd).expect("close");
    }
    agent.drain_background();
    samples.push_back(static_cast<double>(dep.clock()->now_us() - start) / 1e6);
  }
  return mean(samples);
}

void run(const BenchArgs& args) {
  const int files = args.quick ? 20 : 200;
  std::printf("Table 2: FileBench micro-benchmark latency (seconds, virtual time)\n");
  std::printf("paper reference: write 1.63/1.71 -> 1.90/2.12 (17%%/24%%), "
              "create 197.6/236.8 -> 219.0/298.2 (11%%/26%%)\n");
  print_header("Table 2",
               {"profile", "SCFS NB", "SCFS B", "RockFS NB", "RockFS B", "ovh NB", "ovh B"});

  struct Row {
    const char* name;
    double scfs_nb, scfs_b, rock_nb, rock_b;
  };
  Row rows[2];
  rows[0] = {"write 4MB",
             run_write_profile(false, scfs::SyncMode::kNonBlocking, args.reps),
             run_write_profile(false, scfs::SyncMode::kBlocking, args.reps),
             run_write_profile(true, scfs::SyncMode::kNonBlocking, args.reps),
             run_write_profile(true, scfs::SyncMode::kBlocking, args.reps)};
  rows[1] = {"create 16KB",
             run_create_profile(false, scfs::SyncMode::kNonBlocking, args.reps, files),
             run_create_profile(false, scfs::SyncMode::kBlocking, args.reps, files),
             run_create_profile(true, scfs::SyncMode::kNonBlocking, args.reps, files),
             run_create_profile(true, scfs::SyncMode::kBlocking, args.reps, files)};

  for (const Row& r : rows) {
    std::printf("%14s%14.2f%14.2f%14.2f%14.2f%13.0f%%%13.0f%%\n", r.name, r.scfs_nb,
                r.scfs_b, r.rock_nb, r.rock_b, (r.rock_nb / r.scfs_nb - 1) * 100,
                (r.rock_b / r.scfs_b - 1) * 100);
  }
  std::printf("(create profile uses %d files%s)\n", files,
              args.quick ? " — quick mode" : "");
}

}  // namespace
}  // namespace rockfs::bench

int main(int argc, char** argv) {
  const auto args = rockfs::bench::BenchArgs::parse(argc, argv);
  rockfs::bench::run(args);
  rockfs::bench::dump_metrics_json(args);
  return 0;
}
