// Substrate micro-benchmarks (google-benchmark, REAL time): throughput of
// the cryptographic and coding primitives every RockFS operation is built
// from. Not a paper figure — these bound where the client-side CPU time goes
// and back the DESIGN.md §5 calibration.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "crypto/aes.h"
#include "crypto/drbg.h"
#include "crypto/hmac.h"
#include "crypto/secp256k1.h"
#include "crypto/sha256.h"
#include "crypto/sha512.h"
#include "crypto/signature.h"
#include "diff/binary_diff.h"
#include "erasure/reed_solomon.h"
#include "fssagg/fssagg.h"
#include "secretshare/shamir.h"

namespace rockfs {
namespace {

Bytes make_data(std::size_t n) {
  Rng rng(42);
  return rng.next_bytes(n);
}

void BM_Sha256(benchmark::State& state) {
  const Bytes data = make_data(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(crypto::sha256(data));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(4 << 10)->Arg(1 << 20);

void BM_Sha512(benchmark::State& state) {
  const Bytes data = make_data(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(crypto::sha512(data));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Sha512)->Arg(1 << 20);

void BM_HmacSha256(benchmark::State& state) {
  const Bytes key(32, 0x11);
  const Bytes data = make_data(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(crypto::hmac_sha256(key, data));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_HmacSha256)->Arg(1 << 20);

void BM_Aes256Ctr(benchmark::State& state) {
  const Bytes key(32, 0x22);
  const Bytes iv(16, 0x01);
  const Bytes data = make_data(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(crypto::aes256_ctr(key, iv, data));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Aes256Ctr)->Arg(64 << 10)->Arg(1 << 20);

void BM_SealOpen(benchmark::State& state) {
  const Bytes key(32, 0x33);
  const Bytes iv(16, 0x02);
  const Bytes data = make_data(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const Bytes box = crypto::seal(key, data, {}, iv);
    benchmark::DoNotOptimize(crypto::open_sealed(key, box, {}));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0) *
                          2);
}
BENCHMARK(BM_SealOpen)->Arg(1 << 20);

void BM_RsEncode_2of4(benchmark::State& state) {
  const erasure::ReedSolomon rs(2, 4);
  const Bytes data = make_data(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(rs.encode(data));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_RsEncode_2of4)->Arg(1 << 20);

void BM_RsDecodeFromParity_2of4(benchmark::State& state) {
  const erasure::ReedSolomon rs(2, 4);
  const Bytes data = make_data(static_cast<std::size_t>(state.range(0)));
  auto shards = rs.encode(data);
  const std::vector<erasure::Shard> parity{shards[2], shards[3]};
  for (auto _ : state) benchmark::DoNotOptimize(rs.decode(parity, data.size()));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_RsDecodeFromParity_2of4)->Arg(1 << 20);

void BM_DiffAppend30(benchmark::State& state) {
  const Bytes base = make_data(static_cast<std::size_t>(state.range(0)));
  Bytes updated = base;
  append(updated, make_data(static_cast<std::size_t>(state.range(0)) * 3 / 10));
  for (auto _ : state) benchmark::DoNotOptimize(diff::encode(base, updated));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_DiffAppend30)->Arg(1 << 20);

void BM_Patch(benchmark::State& state) {
  const Bytes base = make_data(static_cast<std::size_t>(state.range(0)));
  Bytes updated = base;
  append(updated, make_data(static_cast<std::size_t>(state.range(0)) * 3 / 10));
  const Bytes delta = diff::encode(base, updated);
  for (auto _ : state) benchmark::DoNotOptimize(diff::patch(base, delta));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Patch)->Arg(1 << 20);

void BM_FssAggAppend(benchmark::State& state) {
  crypto::Drbg drbg(to_bytes("bench"));
  fssagg::FssAggSigner signer(fssagg::fssagg_keygen(drbg));
  const Bytes entry = make_data(256);
  for (auto _ : state) benchmark::DoNotOptimize(signer.append(entry));
}
BENCHMARK(BM_FssAggAppend);

void BM_SchnorrSign(benchmark::State& state) {
  crypto::Drbg drbg(to_bytes("bench"));
  const crypto::KeyPair kp = crypto::generate_keypair(drbg);
  const Bytes msg = make_data(256);
  for (auto _ : state) benchmark::DoNotOptimize(crypto::sign(kp, msg));
}
BENCHMARK(BM_SchnorrSign);

void BM_SchnorrVerify(benchmark::State& state) {
  crypto::Drbg drbg(to_bytes("bench"));
  const crypto::KeyPair kp = crypto::generate_keypair(drbg);
  const Bytes msg = make_data(256);
  const Bytes sig = crypto::sign(kp, msg);
  for (auto _ : state) benchmark::DoNotOptimize(crypto::verify(kp.public_key, msg, sig));
}
BENCHMARK(BM_SchnorrVerify);

void BM_ShamirShareCombine(benchmark::State& state) {
  crypto::Drbg drbg(to_bytes("bench"));
  const Bytes secret = drbg.generate(32);
  for (auto _ : state) {
    auto shares = secretshare::shamir_share(secret, 2, 4, drbg);
    shares.resize(2);
    benchmark::DoNotOptimize(secretshare::shamir_combine(shares, 2));
  }
}
BENCHMARK(BM_ShamirShareCombine);

}  // namespace
}  // namespace rockfs

BENCHMARK_MAIN();
