// Malicious-cloud resilience bench (ISSUE 8): what the freshness defense
// and the cloud-set reconfiguration cost.
//
//   1. Detection latency per adversarial mode: client operations and
//      virtual time from the cloud turning malicious to the quarantine
//      verdict (rollback / equivocation / share withholding / replay).
//   2. Reconfiguration MTTR: quarantine verdict -> last share migrated,
//      from the full chaos soak (attack, detection, eviction, migration
//      with crash points), plus the soak's convergence counters.
//   3. Freshness-check read overhead: the witness checks are local memory —
//      a read with a fully populated witness must cost the same virtual
//      time as one with an empty witness (no extra cloud round-trips).
//   4. Post-migration redundancy gate: after an eviction, every unit on the
//      new cloud set must hold at least k + margin current-version shares.
//      The bench EXITS NONZERO if any unit is below that — this is the CI
//      tripwire for a migration that silently under-replicates.
//
// All latencies are VIRTUAL time; a fixed seed reproduces the run exactly.
// Output: tables, then one JSON document on stdout (line starting '{').
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "rockfs/malicious.h"
#include "sim/faults.h"

namespace rockfs::bench {
namespace {

struct Detection {
  double ms = 0.0;
  std::size_t ops = 0;
  bool caught = false;
};

Detection detection_latency(std::uint64_t seed, sim::AdversarialMode mode) {
  auto dep = make_deployment(true, scfs::SyncMode::kBlocking, seed);
  auto& agent = dep.add_user("alice");
  Rng rng(seed ^ 0xD373);
  for (int i = 0; i < 4; ++i) {
    create_file(agent, "/a/f" + std::to_string(i), 16 * 1024, rng);
  }

  // An equivocating adversary only lies to one partition; make sure the
  // probing user is in it (the adversary would pick such a salt too).
  std::uint64_t salt = 0;
  if (mode == sim::AdversarialMode::kEquivocate) {
    while (!sim::adversarial_stale_group("alice", salt)) ++salt;
  }
  dep.clouds()[2]->faults().set_adversarial(
      mode, mode == sim::AdversarialMode::kReplayWindow ? 2'000'000 : 0, salt);
  const auto t0 = dep.clock()->now_us();

  Detection out;
  while (dep.quarantined_cloud() == core::Deployment::kNoCloud && out.ops < 64) {
    const std::string path = "/a/probe" + std::to_string(out.ops % 2);
    agent.write_file(path, rng.next_bytes(8 * 1024)).expect("bench probe write");
    ++out.ops;
    if (dep.quarantined_cloud() != core::Deployment::kNoCloud) break;
    agent.fs().clear_cache();
    agent.read_file(path).expect("bench probe read");
    ++out.ops;
  }
  out.caught = dep.quarantined_cloud() == 2;
  out.ms = static_cast<double>(dep.clock()->now_us() - t0) / 1e3;
  return out;
}

/// Freshness checks add no cloud round-trips: compare the virtual read
/// latency of a client whose witness is saturated with marks against a
/// client reading the same unit with an empty witness.
std::pair<double, double> read_overhead(std::uint64_t seed) {
  sim::SimClockPtr clock = std::make_shared<sim::SimClock>();
  auto clouds = cloud::make_provider_fleet(clock, 4, seed);
  crypto::Drbg drbg(to_bytes("bench-overhead"));
  const auto writer = crypto::generate_keypair(drbg);
  std::vector<cloud::AccessToken> toks;
  for (auto& c : clouds) {
    toks.push_back(c->issue_token("alice", "fs", cloud::TokenScope::kFiles));
  }
  const auto make_client = [&](const std::string& tag) {
    depsky::DepSkyConfig cfg;
    cfg.clouds = clouds;
    cfg.f = 1;
    cfg.writer = writer;
    cfg.session = tag;
    return depsky::DepSkyClient(std::move(cfg), to_bytes("seed-" + tag));
  };

  auto warm = make_client("warm");  // writes => witness full of ack marks
  Rng rng(seed ^ 0x0F5E);
  const std::string unit = "files/alice/bench";
  for (int v = 0; v < 3; ++v) {
    warm.write(toks, unit, rng.next_bytes(64 * 1024)).value.expect("bench write");
  }
  auto cold = make_client("cold");  // same fleet, empty private witness

  const int reads = 16;
  double warm_ms = 0.0;
  double cold_ms = 0.0;
  for (int i = 0; i < reads; ++i) {
    auto w = warm.read(toks, unit);
    w.value.expect("bench warm read");
    warm_ms += static_cast<double>(w.delay) / 1e3;
    auto c = cold.read(toks, unit);
    c.value.expect("bench cold read");
    cold_ms += static_cast<double>(c.delay) / 1e3;
  }
  return {warm_ms / reads, cold_ms / reads};
}

struct GateResult {
  std::size_t units = 0;
  std::size_t below_threshold = 0;
  std::size_t inventory_failures = 0;
  double migration_ms = 0.0;
  std::size_t shares_rebuilt = 0;
};

/// Evict a rolled-back cloud, then audit every unit on the new set: each
/// must hold >= k + margin current-version shares. Failures flip the
/// bench's exit code.
GateResult redundancy_gate(std::uint64_t seed, int files) {
  auto dep = make_deployment(true, scfs::SyncMode::kBlocking, seed);
  auto& agent = dep.add_user("alice");
  Rng rng(seed ^ 0x6A7E);
  for (int i = 0; i < files; ++i) {
    create_file(agent, "/a/g" + std::to_string(i), 24 * 1024, rng);
  }
  auto attack =
      core::cloud_rollback_attack(dep, "alice", 2, sim::AdversarialMode::kRollback, 4);
  if (!attack.quarantined) std::fprintf(stderr, "gate: attack was not quarantined\n");

  GateResult out;
  auto rep = dep.reconfigure_cloud(2);
  rep.expect("bench reconfigure");
  out.migration_ms = static_cast<double>(rep->duration_us) / 1e3;
  out.shares_rebuilt = rep->shares_rebuilt;

  // Enumerate every unit on the new set (the scrubber's orphan-walk idiom:
  // collapse `<unit>.meta` / `<unit>.v<V>.s<I>` keys).
  auto admin = dep.admin_tokens();
  std::set<std::string> units;
  for (std::size_t i = 0; i < dep.clouds().size(); ++i) {
    auto listed = dep.clouds()[i]->list(admin[i], "");
    if (!listed.value.ok()) continue;
    for (const auto& stat : *listed.value) {
      if (stat.key.ends_with(".meta")) {
        units.insert(stat.key.substr(0, stat.key.size() - 5));
      } else if (const auto pos = stat.key.rfind(".v"); pos != std::string::npos) {
        units.insert(stat.key.substr(0, pos));
      }
    }
  }

  auto storage = dep.agent("alice").storage();
  const std::size_t threshold = storage->k() + 1;  // k + margin, margin = 1
  for (const auto& unit : units) {
    ++out.units;
    auto inv = storage->share_inventory(admin, unit);
    if (!inv.value.ok()) {
      ++out.inventory_failures;
      std::fprintf(stderr, "gate: inventory of %s failed: %s\n", unit.c_str(),
                   inv.value.error().message.c_str());
      continue;
    }
    if (inv.value->valid_count() < threshold) {
      ++out.below_threshold;
      std::fprintf(stderr, "gate: %s has %zu/%zu shares (< %zu)\n", unit.c_str(),
                   inv.value->valid_count(), storage->n(), threshold);
    }
  }
  return out;
}

int run(const BenchArgs& args) {
  const std::uint64_t seed = 2031;
  std::printf("Reconfiguration bench: freshness detection + cloud eviction, f=1, "
              "seed %llu\n",
              static_cast<unsigned long long>(seed));

  // ---- 1. detection latency per adversarial mode ----
  const sim::AdversarialMode modes[] = {
      sim::AdversarialMode::kRollback, sim::AdversarialMode::kEquivocate,
      sim::AdversarialMode::kWithholdShares, sim::AdversarialMode::kReplayWindow};
  print_header("detection latency (cloud turns -> quarantine verdict)",
               {"mode", "ops", "virt ms", "caught"});
  std::string detection_json;
  for (const auto mode : modes) {
    std::vector<double> ms;
    std::vector<double> ops;
    bool caught = true;
    for (int rep = 0; rep < args.reps; ++rep) {
      const auto d = detection_latency(seed + static_cast<std::uint64_t>(rep), mode);
      ms.push_back(d.ms);
      ops.push_back(static_cast<double>(d.ops));
      caught = caught && d.caught;
    }
    std::printf("%14s%14.1f%14.1f%14s\n", sim::adversarial_mode_name(mode), mean(ops),
                mean(ms), caught ? "yes" : "NO");
    char buf[160];
    std::snprintf(buf, sizeof(buf), "%s\"%s\":{\"ops\":%.1f,\"ms\":%.1f,\"caught\":%s}",
                  detection_json.empty() ? "" : ",", sim::adversarial_mode_name(mode),
                  mean(ops), mean(ms), caught ? "true" : "false");
    detection_json += buf;
  }

  // ---- 2. soak: quarantine -> migrated MTTR ----
  std::vector<double> mttr;
  std::vector<double> quarantine_ops;
  core::MaliciousSoakReport last;
  bool soak_ok = true;
  const int soak_reps = args.quick ? 1 : args.reps;
  for (int rep = 0; rep < soak_reps; ++rep) {
    core::MaliciousSoakOptions opts;
    opts.seed = seed + static_cast<std::uint64_t>(rep);
    opts.rounds = args.quick ? 8 : 12;
    last = core::run_malicious_soak(opts);
    soak_ok = soak_ok && last.converged && last.quarantined && last.reconfigured;
    mttr.push_back(static_cast<double>(last.quarantine_to_migrated_us) / 1e3);
    quarantine_ops.push_back(static_cast<double>(last.ops_to_quarantine));
  }
  print_header("chaos soak (attack -> quarantine -> eviction -> migration)",
               {"counter", "value"});
  std::printf("%14s%14.1f\n", "mttr ms", mean(mttr));
  std::printf("%14s%14.1f\n", "quar. ops", mean(quarantine_ops));
  std::printf("%14s%14zu\n", "migrated", last.units_migrated);
  std::printf("%14s%14zu\n", "rebuilt", last.shares_rebuilt);
  std::printf("%14s%14zu\n", "crashes", last.reconfig_crashes);
  std::printf("%14s%14s\n", "converged", soak_ok ? "yes" : "NO");

  // ---- 3. freshness-check read overhead ----
  const auto [warm_ms, cold_ms] = read_overhead(seed);
  const double overhead_pct =
      cold_ms > 0.0 ? (warm_ms - cold_ms) / cold_ms * 100.0 : 0.0;
  print_header("freshness-check read overhead (virtual ms per read)",
               {"witness", "read ms"});
  std::printf("%14s%14.2f\n", "populated", warm_ms);
  std::printf("%14s%14.2f\n", "empty", cold_ms);
  std::printf("overhead: %.2f%% (the checks are local memory — expected ~0)\n",
              overhead_pct);

  // ---- 4. post-migration redundancy gate ----
  const auto gate = redundancy_gate(seed, args.quick ? 3 : 8);
  print_header("post-migration redundancy gate (>= k+1 shares per unit)",
               {"counter", "value"});
  std::printf("%14s%14zu\n", "units", gate.units);
  std::printf("%14s%14zu\n", "below k+1", gate.below_threshold);
  std::printf("%14s%14zu\n", "inv. fails", gate.inventory_failures);
  std::printf("%14s%14.1f\n", "migr. ms", gate.migration_ms);

  std::string json = "{\"bench\":\"reconfig\",\"detection\":{" + detection_json + "},";
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "\"soak\":{\"mttr_ms\":%.1f,\"ops_to_quarantine\":%.1f,"
                "\"units_migrated\":%zu,\"shares_rebuilt\":%zu,"
                "\"reconfig_crashes\":%zu,\"converged\":%s,"
                "\"honest_digest\":\"%s\"},",
                mean(mttr), mean(quarantine_ops), last.units_migrated,
                last.shares_rebuilt, last.reconfig_crashes,
                soak_ok ? "true" : "false", last.honest_digest.c_str());
  json += buf;
  std::snprintf(buf, sizeof(buf),
                "\"read_overhead\":{\"witness_ms\":%.2f,\"empty_ms\":%.2f,"
                "\"overhead_pct\":%.2f},"
                "\"gate\":{\"units\":%zu,\"below_threshold\":%zu,"
                "\"inventory_failures\":%zu,\"migration_ms\":%.1f}}",
                warm_ms, cold_ms, overhead_pct, gate.units, gate.below_threshold,
                gate.inventory_failures, gate.migration_ms);
  json += buf;
  std::printf("\n%s\n", json.c_str());

  const bool gate_ok = gate.below_threshold == 0 && gate.inventory_failures == 0;
  if (!gate_ok) {
    std::fprintf(stderr, "redundancy gate FAILED: a migrated unit is below k+1\n");
  }
  if (!soak_ok) std::fprintf(stderr, "soak did not converge\n");
  return gate_ok && soak_ok ? 0 : 1;
}

}  // namespace
}  // namespace rockfs::bench

int main(int argc, char** argv) {
  const auto args = rockfs::bench::BenchArgs::parse(argc, argv);
  const int rc = rockfs::bench::run(args);
  rockfs::bench::dump_metrics_json(args);
  return rc;
}
