// §6 (intro) — cost of the T2/T3 protections.
//
// The paper reports that the credential (T2) and cache (T3) protections cost
// "below tens of milliseconds" and therefore focuses its evaluation on T1.
// This bench substantiates that claim for our implementation: REAL wall-clock
// time of the client-side cryptography (PVSS share/verify/combine for the
// keystore; seal/open + hash for the cache), which is exactly what the user
// pays on top of the I/O.
#include <chrono>
#include <cstdio>

#include "bench/bench_util.h"
#include "crypto/aes.h"
#include "rockfs/keystore.h"
#include "secretshare/pvss.h"

namespace rockfs::bench {
namespace {

using Clock = std::chrono::steady_clock;

double time_ms(const std::function<void()>& fn, int reps) {
  const auto start = Clock::now();
  for (int i = 0; i < reps; ++i) fn();
  const auto end = Clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count() /
         static_cast<double>(reps);
}

void run(const BenchArgs& args) {
  const int reps = args.quick ? 3 : 10;
  std::printf("T2/T3 protection costs (REAL milliseconds per operation)\n");
  std::printf("paper: 'below tens of milliseconds', hence excluded from §6's focus\n");
  print_header("T2 — keystore (PVSS, 2-of-3)", {"operation", "ms/op"});

  crypto::Drbg drbg(to_bytes("t2t3"));
  std::vector<core::ShareHolder> holders{{"device", crypto::generate_keypair(drbg)},
                                         {"coordination", crypto::generate_keypair(drbg)},
                                         {"external", crypto::generate_keypair(drbg)}};
  std::vector<crypto::Point> pubs{holders[0].keys.public_key, holders[1].keys.public_key,
                                  holders[2].keys.public_key};
  core::Keystore ks;
  ks.user_id = "alice";
  ks.user_private_key = drbg.generate(32);
  ks.session_key = drbg.generate(32);
  ks.fssagg_key_a = drbg.generate(32);
  ks.fssagg_key_b = drbg.generate(32);

  core::SealedKeystore sealed;
  std::printf("%14s%14.2f\n", "seal (share)",
              time_ms([&] { sealed = core::seal_keystore(ks, holders, 2, drbg); }, reps));
  std::printf("%14s%14.2f\n", "verifyD",
              time_ms([&] { (void)secretshare::pvss_verify_deal(sealed.deal, pubs); },
                      reps));
  std::printf("%14s%14.2f\n", "login", time_ms([&] {
                core::unseal_keystore(sealed, {holders[0], holders[1]}, pubs, 2, drbg)
                    .expect("unseal");
              }, reps));

  print_header("T3 — cache crypto (per open/close)", {"file size", "seal ms", "open ms"});
  const Bytes key = drbg.generate(32);
  for (const std::size_t kb : {64uL, 1024uL, 10240uL}) {
    Bytes plain = drbg.generate(kb << 10);
    Bytes iv = drbg.generate(16);
    Bytes box;
    const double seal_ms =
        time_ms([&] { box = crypto::seal(key, plain, to_bytes("aad"), iv); }, reps);
    const double open_ms =
        time_ms([&] { crypto::open_sealed(key, box, to_bytes("aad")).expect("open"); },
                reps);
    std::printf("%12zuKB%14.2f%14.2f\n", kb, seal_ms, open_ms);
  }
  std::printf("(seal = AES-256-CTR + HMAC on close; open = verify + decrypt on open)\n");
}

}  // namespace
}  // namespace rockfs::bench

int main(int argc, char** argv) {
  const auto args = rockfs::bench::BenchArgs::parse(argc, argv);
  rockfs::bench::run(args);
  rockfs::bench::dump_metrics_json(args);
  return 0;
}
