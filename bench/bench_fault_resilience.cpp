// Fault-resilience sweep: DepSky read/write latency and success rate as the
// client-side fault intensity rises from none to severe. Each level scales
// the per-cloud FaultSchedule knobs (transient errors, timeouts, tail
// latency, torn writes, read corruption) and staggers one-cloud-at-a-time
// outage windows; the client's retry policy and circuit breakers are at
// their defaults. All latencies are VIRTUAL time, so the sweep is
// deterministic for a fixed seed.
//
// Output: a human-readable table followed by one JSON document on stdout
// (line starting with '{') for downstream tooling.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "depsky/client.h"

namespace rockfs::bench {
namespace {

struct Level {
  const char* name;
  double scale;  // multiplies every probability knob
};

constexpr Level kLevels[] = {
    {"none", 0.0}, {"light", 1.0}, {"moderate", 2.0}, {"heavy", 4.0}, {"severe", 8.0},
};

struct OpStats {
  std::size_t attempted = 0;
  std::size_t succeeded = 0;
  std::vector<double> latencies_ms;

  double success_rate() const {
    return attempted == 0 ? 0.0
                          : static_cast<double>(succeeded) / static_cast<double>(attempted);
  }
  double p99_ms() const {
    if (latencies_ms.empty()) return 0.0;
    std::vector<double> xs = latencies_ms;
    std::sort(xs.begin(), xs.end());
    const std::size_t idx = (xs.size() * 99 + 99) / 100 - 1;
    return xs[std::min(idx, xs.size() - 1)];
  }
};

struct LevelResult {
  OpStats writes;
  OpStats reads;
  depsky::DepSkyClient::ResilienceStats stats;
};

LevelResult run_level(const Level& level, int ops, std::uint64_t seed) {
  auto clock = std::make_shared<sim::SimClock>();
  auto clouds = cloud::make_provider_fleet(clock, 4, seed);
  crypto::Drbg drbg{to_bytes("bench-resilience-" + std::to_string(seed))};

  depsky::DepSkyConfig cfg;
  cfg.clouds = clouds;
  cfg.f = 1;
  cfg.protocol = depsky::Protocol::kCA;
  cfg.writer = crypto::generate_keypair(drbg);
  depsky::DepSkyClient client(std::move(cfg), to_bytes("bench-seed"));

  std::vector<cloud::AccessToken> tokens;
  for (auto& c : clouds) {
    tokens.push_back(c->issue_token("bench", "fs", cloud::TokenScope::kFiles));
  }

  const double s = level.scale;
  for (std::size_t i = 0; i < clouds.size(); ++i) {
    auto& faults = clouds[i]->faults();
    faults.set_transient_error_prob(0.04 * s);
    faults.set_timeout_prob(0.02 * s);
    faults.set_tail_latency(0.05 * s, 3.0);
    faults.set_read_corruption_prob(0.01 * s);
    faults.set_partial_write_prob(0.02 * s);
    if (s > 0.0) {
      // One cloud down at a time: cloud i off during [i*15s + k*60s, +5s).
      for (int k = 0; k < 50; ++k) {
        const sim::SimClock::Micros start =
            static_cast<sim::SimClock::Micros>(i) * 15'000'000 +
            static_cast<sim::SimClock::Micros>(k) * 60'000'000;
        faults.add_outage(start, start + 5'000'000);
      }
    }
  }

  LevelResult result;
  Rng rng(seed ^ 0xBEEF);
  constexpr std::size_t kUnits = 16;
  std::vector<bool> written(kUnits, false);
  for (int op = 0; op < ops; ++op) {
    const std::size_t u = rng.next_below(kUnits);
    const std::string unit = "files/bench/u" + std::to_string(u);
    const bool do_write = !written[u] || rng.next_below(10) < 4;
    if (do_write) {
      const Bytes data = rng.next_bytes(4096);
      auto w = client.write(tokens, unit, data);
      clock->advance_us(w.delay);
      ++result.writes.attempted;
      if (w.value.ok()) {
        ++result.writes.succeeded;
        written[u] = true;
      }
      result.writes.latencies_ms.push_back(static_cast<double>(w.delay) / 1e3);
    } else {
      auto r = client.read(tokens, unit);
      clock->advance_us(r.delay);
      ++result.reads.attempted;
      if (r.value.ok()) ++result.reads.succeeded;
      result.reads.latencies_ms.push_back(static_cast<double>(r.delay) / 1e3);
    }
  }
  result.stats = client.resilience_stats();
  return result;
}

void run(const BenchArgs& args) {
  const int ops = args.quick ? 150 : 600;
  std::printf("Fault-resilience sweep: DepSky f=1 (4 clouds), protocol CA, 4 KiB units\n");
  std::printf("retry: 4 attempts, decorrelated jitter; breaker: 3 failures, 5 s cooldown\n");
  print_header("fault resilience",
               {"level", "wr ok", "wr mean ms", "wr p99 ms", "rd ok", "rd mean ms",
                "rd p99 ms", "retries"});

  std::string json = "{\"bench\":\"fault_resilience\",\"ops_per_level\":" +
                     std::to_string(ops) + ",\"levels\":[";
  bool first = true;
  for (const Level& level : kLevels) {
    const LevelResult r = run_level(level, ops, 4242);
    std::printf("%14s%13.1f%%%14.1f%14.1f%13.1f%%%14.1f%14.1f%14llu\n", level.name,
                100.0 * r.writes.success_rate(), mean(r.writes.latencies_ms),
                r.writes.p99_ms(), 100.0 * r.reads.success_rate(),
                mean(r.reads.latencies_ms), r.reads.p99_ms(),
                static_cast<unsigned long long>(r.stats.retries));
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "%s{\"level\":\"%s\",\"scale\":%.1f,"
        "\"write\":{\"ops\":%zu,\"success_rate\":%.4f,\"mean_ms\":%.2f,\"p99_ms\":%.2f},"
        "\"read\":{\"ops\":%zu,\"success_rate\":%.4f,\"mean_ms\":%.2f,\"p99_ms\":%.2f},"
        "\"retries\":%llu,\"breaker_skips\":%llu,\"forced_probes\":%llu,"
        "\"deadline_hits\":%llu}",
        first ? "" : ",", level.name, level.scale, r.writes.attempted,
        r.writes.success_rate(), mean(r.writes.latencies_ms), r.writes.p99_ms(),
        r.reads.attempted, r.reads.success_rate(), mean(r.reads.latencies_ms),
        r.reads.p99_ms(), static_cast<unsigned long long>(r.stats.retries),
        static_cast<unsigned long long>(r.stats.breaker_skips),
        static_cast<unsigned long long>(r.stats.forced_probes),
        static_cast<unsigned long long>(r.stats.deadline_hits));
    json += buf;
    first = false;
  }
  json += "]}";
  std::printf("\n%s\n", json.c_str());
}

}  // namespace
}  // namespace rockfs::bench

int main(int argc, char** argv) {
  const auto args = rockfs::bench::BenchArgs::parse(argc, argv);
  rockfs::bench::run(args);
  rockfs::bench::dump_metrics_json(args);
  return 0;
}
