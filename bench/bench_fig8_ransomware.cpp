// Figure 8 — Mean time to recover a whole file system after a ransomware
// attack, varying the number of files and versions per file.
//
// Paper workload (§6.3): 16 KB files (10 to 10,000 of them), each modified
// 1..100 times with 4 KB writes; ransomware then encrypts every file and the
// administrator recovers the complete file system. Reported: recovery time
// grows steeply with file count; the worst case (10,000 files x 100
// versions) took ~2 h 05 min. Files become available gradually as recovery
// progresses (we print the time at which the first file was done, too).
#include <cstdio>

#include "bench/bench_util.h"

namespace rockfs::bench {
namespace {

struct CellResult {
  double total_s = 0;
  double first_file_s = 0;
};

CellResult run_cell(int files, int versions) {
  auto dep = make_deployment(true, scfs::SyncMode::kNonBlocking,
                             8000 + static_cast<std::uint64_t>(files) * 3 +
                                 static_cast<std::uint64_t>(versions));
  auto& agent = dep.add_user("alice");
  Rng rng(static_cast<std::uint64_t>(files) + static_cast<std::uint64_t>(versions));

  std::vector<std::string> paths;
  paths.reserve(static_cast<std::size_t>(files));
  for (int i = 0; i < files; ++i) {
    const std::string path = "/fs/f" + std::to_string(i);
    create_file(agent, path, 16 << 10, rng);
    for (int v = 1; v < versions; ++v) {
      auto fd = agent.open(path);
      fd.expect("open");
      // 4KB write at a random offset within the 16KB file.
      agent.write(*fd, rng.next_below(12 << 10), rng.next_bytes(4 << 10)).expect("write");
      agent.close(*fd).expect("close");
    }
    paths.push_back(path);
  }
  agent.drain_background();

  const auto attack = core::ransomware_attack(agent, paths, 999);

  auto recovery = dep.make_recovery_service("alice");
  // Recover the first file alone to show the gradual-availability property,
  // then everything (including re-recovering that file, as the admin would).
  const auto t0 = dep.clock()->now_us();
  recovery.recover_file(paths[0], attack.malicious_seqs).expect("first file");
  const double first_s = static_cast<double>(dep.clock()->now_us() - t0) / 1e6;

  auto all = recovery.recover_all(attack.malicious_seqs);
  all.expect("recover_all");

  CellResult r;
  r.first_file_s = first_s;
  r.total_s = first_s + static_cast<double>(recovery.last_recovery_us()) / 1e6;
  return r;
}

void run(const BenchArgs& args) {
  struct Config {
    int files;
    int versions;
  };
  std::vector<Config> configs;
  const std::vector<int> file_counts =
      args.quick ? std::vector<int>{10, 50} : std::vector<int>{10, 100, 1000};
  for (const int fc : file_counts) {
    for (const int v : {1, 10}) configs.push_back({fc, v});
  }
  if (args.full) {
    configs.push_back({100, 100});
    configs.push_back({1000, 100});
    configs.push_back({10000, 1});
    configs.push_back({10000, 10});
    configs.push_back({10000, 100});  // the paper's 2h05m worst case
  }

  std::printf("Figure 8: time to recover a ransomware-encrypted file system\n");
  std::printf("paper: grows steeply with file count; 10,000 files x 100 versions "
              "took ~2h05m (7500s)\n");
  print_header("Fig. 8", {"files", "versions", "total (s)", "1st file (s)"});
  for (const Config& c : configs) {
    const CellResult r = run_cell(c.files, c.versions);
    std::printf("%14d%14d%14.1f%14.2f\n", c.files, c.versions, r.total_s, r.first_file_s);
  }
  if (!args.full) {
    std::printf("(run with --full for the 10,000-file / 100-version paper cells)\n");
  }
}

}  // namespace
}  // namespace rockfs::bench

int main(int argc, char** argv) {
  const auto args = rockfs::bench::BenchArgs::parse(argc, argv);
  rockfs::bench::run(args);
  rockfs::bench::dump_metrics_json(args);
  return 0;
}
