// Figure 5 — Latency of using RockFS with and without the log.
//
// Paper workload (§6.1): create a file, then update it with an extra 30% of
// content; the latency is the virtual time from invoking close() on the
// update until the coordination service finishes recording the operation.
// Sizes 1..50 MB, SCFS (no log) vs RockFS (log), blocking and non-blocking
// sync. Paper result: logging costs ~20% on average.
#include <cstdio>

#include "bench/bench_util.h"

namespace rockfs::bench {
namespace {

struct Cell {
  double scfs_s = 0;
  double rockfs_s = 0;
};

// Worst relative disagreement seen between the measured close() delay and
// the trace's summed exclusive span durations (reconcile_exclusive_us).
double g_max_reconcile_err = 0;

void check_reconciliation(sim::SimClock::Micros measured) {
  const auto events = obs::tracer().events();
  std::uint64_t root_id = 0;
  for (const auto& e : events) {
    if (e.name == "scfs.close" && e.id > root_id) root_id = e.id;
  }
  if (root_id == 0 || measured <= 0) return;
  const std::uint64_t exclusive = obs::reconcile_exclusive_us(events, root_id);
  const double err = std::abs(static_cast<double>(exclusive) -
                              static_cast<double>(measured)) /
                     static_cast<double>(measured);
  g_max_reconcile_err = std::max(g_max_reconcile_err, err);
}

Cell run_cell(std::size_t size_mb, scfs::SyncMode mode, const BenchArgs& args) {
  Cell cell;
  for (const bool logging : {false, true}) {
    std::vector<double> samples;
    for (int rep = 0; rep < args.reps; ++rep) {
      auto dep = make_deployment(logging, mode,
                                 2018 + static_cast<std::uint64_t>(rep) * 7919);
      auto& agent = dep.add_user("alice");
      Rng rng(1000 + static_cast<std::uint64_t>(rep));
      create_file(agent, "/bench.dat", size_mb << 20, rng);
      agent.drain_background();

      // Measured operation: the +30% update.
      auto fd = agent.open("/bench.dat");
      fd.expect("open");
      agent.append(*fd, rng.next_bytes((size_mb << 20) * 3 / 10)).expect("append");
      auto closed = agent.close_timed(*fd);
      closed.value.expect("close");
      check_reconciliation(closed.delay);
      samples.push_back(static_cast<double>(closed.delay) / 1e6);
    }
    (logging ? cell.rockfs_s : cell.scfs_s) = mean(samples);
  }
  return cell;
}

void run(const BenchArgs& args) {
  const std::vector<std::size_t> sizes =
      args.quick ? std::vector<std::size_t>{1, 5, 10}
                 : std::vector<std::size_t>{1, 5, 10, 20, 30, 40, 50};

  std::printf("Figure 5: latency of a +30%% file update, with and without the log\n");
  std::printf("(paper: RockFS ~20%% above SCFS on average, both growing ~linearly)\n");

  for (const scfs::SyncMode mode :
       {scfs::SyncMode::kNonBlocking, scfs::SyncMode::kBlocking}) {
    const char* mode_name =
        mode == scfs::SyncMode::kNonBlocking ? "non-blocking" : "blocking";
    print_header((std::string("Fig. 5 — ") + mode_name).c_str(),
                 {"size (MB)", "SCFS (s)", "RockFS (s)", "overhead"});
    double overhead_sum = 0;
    for (const std::size_t mb : sizes) {
      const Cell cell = run_cell(mb, mode, args);
      const double overhead = (cell.rockfs_s / cell.scfs_s - 1.0) * 100.0;
      overhead_sum += overhead;
      std::printf("%14zu%14.2f%14.2f%13.1f%%\n", mb, cell.scfs_s, cell.rockfs_s,
                  overhead);
    }
    std::printf("%-42s avg overhead: %5.1f%%  (paper: ~20%%)\n", mode_name,
                overhead_sum / static_cast<double>(sizes.size()));
  }
  std::printf("trace reconciliation: max |exclusive-sum - close latency| = %.4f%% "
              "(must stay <1%%)\n",
              g_max_reconcile_err * 100.0);
}

}  // namespace
}  // namespace rockfs::bench

int main(int argc, char** argv) {
  const auto args = rockfs::bench::BenchArgs::parse(argc, argv);
  rockfs::bench::run(args);
  rockfs::bench::dump_metrics_json(args);
  return 0;
}
