// Ransomware scenario (the paper's headline use case, threats T1/A1):
// an attacker with full control of the client device encrypts every file;
// the damage syncs to the cloud-of-clouds; the administrator undoes it with
// selective re-execution — including a legitimate edit made AFTER the attack,
// which survives the recovery.
//
//   $ ./examples/ransomware_recovery
#include <cstdio>

#include "rockfs/attack.h"
#include "rockfs/deployment.h"

using namespace rockfs;

int main() {
  std::printf("RockFS ransomware recovery walk-through\n");
  std::printf("=======================================\n\n");

  core::Deployment deployment;
  auto& alice = deployment.add_user("alice");

  // -- Day 0: normal work ---------------------------------------------------
  std::vector<std::string> paths;
  for (int i = 0; i < 5; ++i) {
    const std::string path = "/projects/doc" + std::to_string(i) + ".md";
    alice.write_file(path, to_bytes("# Document " + std::to_string(i) +
                                    "\nimportant content, version 1\n"))
        .expect("write");
    paths.push_back(path);
  }
  std::printf("alice wrote %zu files; log has %llu entries\n", paths.size(),
              static_cast<unsigned long long>(alice.log_seq()));

  // -- Day 1: the device is compromised ------------------------------------
  const auto attack = core::ransomware_attack(alice, paths, /*attacker_seed=*/1337);
  std::printf("\nRANSOMWARE: %zu files encrypted through the stolen session\n",
              attack.files_encrypted);
  std::printf("the damage is already in the clouds:\n");
  auto mangled = alice.read_file(paths[0]);
  std::printf("  %s now starts with %02x %02x %02x ... (ciphertext)\n", paths[0].c_str(),
              (*mangled)[0], (*mangled)[1], (*mangled)[2]);

  // The attacker also tries to destroy the recovery log (attack A2) — the
  // append-only log token split stops every attempt.
  const auto tamper = core::log_tamper_attack(deployment, "alice");
  std::printf("attacker tried to destroy the log: %zu/%zu deletes denied, "
              "%zu/%zu overwrites denied\n",
              tamper.deletes_denied, tamper.delete_attempts, tamper.overwrites_denied,
              tamper.overwrite_attempts);

  // -- Day 1, later: a legitimate edit lands after the attack ---------------
  alice.write_file(paths[4], to_bytes("# Document 4\nrewritten AFTER the attack — "
                                      "this edit must survive recovery\n"))
      .expect("post-attack write");

  // -- Day 2: the administrator recovers ------------------------------------
  auto recovery = deployment.make_recovery_service("alice");
  auto audit = recovery.audit_log();
  std::printf("\nadmin audit: %zu records, FssAgg chain %s\n",
              audit.expect("audit").records.size(),
              audit->report.ok ? "intact" : "TAMPERED");

  // Intrusion detection flagged the attack's log entries (the paper takes
  // this step as given); recover the most urgent file first.
  auto results = recovery.recover_all(attack.malicious_seqs, /*priority=*/{paths[0]});
  std::printf("recovered %zu files in %.1f virtual seconds:\n",
              results.expect("recover").size(),
              static_cast<double>(recovery.last_recovery_us()) / 1e6);
  for (const auto& r : *results) {
    std::printf("  %-20s applied=%zu skipped_malicious=%zu\n", r.path.c_str(), r.applied,
                r.skipped_malicious);
  }

  // -- Aftermath ------------------------------------------------------------
  std::printf("\nafter recovery:\n");
  auto doc0 = alice.read_file(paths[0]);
  std::printf("  %s: %s", paths[0].c_str(),
              to_string(*doc0).substr(0, 60).c_str());
  auto doc4 = alice.read_file(paths[4]);
  const bool post_attack_survived =
      to_string(*doc4).find("AFTER the attack") != std::string::npos;
  std::printf("\n  %s: post-attack edit %s\n", paths[4].c_str(),
              post_attack_survived ? "SURVIVED (selective re-execution)" : "LOST");
  return post_attack_survived ? 0 : 1;
}
