// Credential recovery scenario (threat T2, paper §4.1): ransomware destroys
// the keystore share on the client device. Because the keystore key is
// PVSS-shared 2-of-3 among {device, coordination service, external memory},
// the user recovers by fetching the USB stick — and a corrupted share is
// detected by verifyS before it can poison the reconstruction.
//
//   $ ./examples/lost_device_login
#include <cstdio>

#include "rockfs/deployment.h"

using namespace rockfs;

int main() {
  std::printf("RockFS lost-device login walk-through\n");
  std::printf("=====================================\n\n");

  core::Deployment deployment;
  auto& alice = deployment.add_user("alice");
  alice.write_file("/thesis.tex", to_bytes("\\chapter{Five years of work}\n"))
      .expect("write");
  std::printf("alice has data in the clouds and is logged in\n");

  // The keystore exists in RAM only; at rest it is AES-sealed and the key is
  // PVSS-shared. Show the at-rest facts:
  const auto& secrets = deployment.secrets("alice");
  std::printf("sealed keystore: %zu bytes of ciphertext, %zu PVSS shares, k=2\n\n",
              secrets.sealed.ciphertext.size(), secrets.sealed.deal.shares.size());

  // -- The attack: the device share is wiped by ransomware -------------------
  alice.logout();
  deployment.destroy_device_share("alice");
  std::printf("ransomware wiped the device share; user logs out/reboots\n");

  auto st = deployment.login_default("alice");
  std::printf("login with device+coordination shares: %s (%s)\n",
              st.ok() ? "OK" : "FAILED", st.ok() ? "-" : st.error().message.c_str());

  // -- Recovery: the external share (USB stick / smart card) -----------------
  auto st2 = deployment.login_with_external("alice");
  std::printf("login with external+coordination shares: %s\n",
              st2.ok() ? "OK" : "FAILED");
  if (!st2.ok()) return 1;

  auto content = alice.read_file("/thesis.tex");
  std::printf("files intact after credential recovery: %s\n",
              content.ok() ? "yes" : "no");
  std::printf("\nkey property: no single share (and no single location) can read\n"
              "or destroy the keystore; any two of three recover it.\n");
  return content.ok() ? 0 : 1;
}
