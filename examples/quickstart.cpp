// Quickstart: bring up a simulated RockFS deployment (4 clouds + BFT
// coordination service), provision a user, and run the basic file workflow —
// every mutation is transparently logged for recovery.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "rockfs/deployment.h"

using namespace rockfs;

int main() {
  std::printf("RockFS quickstart\n=================\n\n");

  // A deployment mirrors the paper's testbed: n = 3f+1 = 4 cloud providers
  // and 4 coordination-service replicas, all driven by one virtual clock.
  core::Deployment deployment;
  std::printf("deployment: %zu clouds, %zu coordination replicas (f=1)\n",
              deployment.clouds().size(), deployment.coordination()->replica_count());

  // add_user provisions everything from Table 1 of the paper: access tokens
  // t_u and t_l at each cloud, the user keypair PR_U/PU_U, the FssAgg log
  // keys, and the PVSS-sealed keystore (2-of-3: device, coordination
  // service, external memory). The agent logs in with device+coordination.
  auto& alice = deployment.add_user("alice");
  std::printf("user 'alice' provisioned and logged in\n\n");

  // Regular POSIX-style usage. close() is where everything happens:
  // the file goes to the cloud-of-clouds (erasure-coded, encrypted), the
  // local cache copy is sealed under the session key, and a log entry
  // (binary delta, forward-secure MAC) is appended for later recovery.
  auto fd = alice.create("/docs/report.txt");
  fd.expect("create");
  alice.write(*fd, 0, to_bytes("RockFS quarterly report, v1\n")).expect("write");
  alice.close(*fd).expect("close");
  std::printf("wrote /docs/report.txt (log entries so far: %llu)\n",
              static_cast<unsigned long long>(alice.log_seq()));

  // Updates produce compact delta log entries.
  fd = alice.open("/docs/report.txt");
  fd.expect("open");
  alice.append(*fd, to_bytes("Q2 numbers: all green.\n")).expect("append");
  alice.close(*fd).expect("close");
  std::printf("updated /docs/report.txt (log entries so far: %llu)\n",
              static_cast<unsigned long long>(alice.log_seq()));

  auto content = alice.read_file("/docs/report.txt");
  std::printf("\nread back:\n%s", to_string(content.expect("read")).c_str());

  // What the administrator can see: the per-operation audit trail.
  auto recovery = deployment.make_recovery_service("alice");
  auto audit = recovery.audit_log();
  std::printf("\naudit: %zu log records, stream integrity %s\n",
              audit.expect("audit").records.size(),
              audit->report.ok ? "VERIFIED" : "VIOLATED");
  for (const auto& r : audit->records) {
    std::printf("  #%llu %-7s %s v%llu (%s, %llu bytes)\n",
                static_cast<unsigned long long>(r.seq), r.op.c_str(), r.path.c_str(),
                static_cast<unsigned long long>(r.version),
                r.whole_file ? "whole file" : "delta",
                static_cast<unsigned long long>(r.payload_size));
  }

  std::printf("\nvirtual time elapsed: %.2f s\n", deployment.clock()->now_seconds());
  return 0;
}
