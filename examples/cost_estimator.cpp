// Cost estimator (paper §6.4): predicts the traffic and monetary cost of
// running RockFS — per-update upload, per-recovery egress, and the monthly
// storage bill — using the paper's closed-form models, then cross-checks the
// recovery prediction against a real simulated recovery.
//
//   $ ./examples/cost_estimator
#include <cstdio>

#include "common/rng.h"
#include "rockfs/attack.h"
#include "rockfs/costs.h"
#include "rockfs/deployment.h"

using namespace rockfs;

int main() {
  std::printf("RockFS cost estimator (models of paper §6.4)\n");
  std::printf("============================================\n\n");

  const core::CostModel model;  // delta=30%, n=4, April-2018 S3 rates
  constexpr double kMb = 1024.0 * 1024.0;

  std::printf("per-update upload (eq. 2) and per-recovery egress (eq. 3):\n");
  std::printf("  %10s %14s %22s %14s\n", "file", "upload/update", "recover(100 versions)",
              "recovery $");
  for (const double mb : {1.0, 10.0, 50.0}) {
    std::printf("  %8.0fMB %12.1fMB %20.1fMB %14.3f\n", mb,
                model.log_upload_bytes(mb * kMb) / kMb,
                model.recovery_download_bytes(mb * kMb, 100) / kMb,
                model.recovery_cost_usd(mb * kMb, 100));
  }
  std::printf("  (paper: recovering a 50MB file with 100 versions ~3.1GB, ~$0.27)\n\n");

  // Cross-check against a real simulated recovery: 5MB file, 10 versions.
  core::Deployment deployment;
  auto& alice = deployment.add_user("alice");
  Rng rng(1);
  Bytes content = rng.next_bytes(static_cast<std::size_t>(5 * kMb));
  alice.write_file("/f", content).expect("create");
  for (int v = 0; v < 10; ++v) {
    append(content, rng.next_bytes(static_cast<std::size_t>(1.5 * kMb)));
    alice.write_file("/f", content).expect("update");
  }
  const auto attack = core::ransomware_attack(alice, {"/f"}, 7);
  for (auto& c : deployment.clouds()) c->traffic().reset();
  auto recovery = deployment.make_recovery_service("alice");
  recovery.recover_file("/f", attack.malicious_seqs).expect("recover");
  double downloaded = 0;
  for (auto& c : deployment.clouds()) {
    downloaded += static_cast<double>(c->traffic().downloaded_bytes());
  }
  std::printf("cross-check, 5MB file with 10 versions:\n");
  std::printf("  eq. 3 predicts %.1f MB of egress; the simulated recovery moved %.1f MB\n",
              model.recovery_download_bytes(5 * kMb, 10) / kMb, downloaded / kMb);

  // Monthly storage bill from the audited log.
  auto audit = recovery.audit_log();
  const double usd = core::estimate_monthly_storage_usd(model, audit.expect("audit").records);
  std::printf("\nmonthly storage estimate for alice's current footprint: $%.4f\n", usd);
  std::printf("(compaction moves old log entries to cold storage at %.1f%% of the hot rate)\n",
              100.0 * model.cold_storage_usd_per_gb_month /
                  model.hot_storage_usd_per_gb_month);
  return 0;
}
