// Administrator's view (paper §2.2): auditing file-system usage through the
// log metadata in the coordination service, verifying the forward-secure
// stream, and demonstrating that log tampering — even at the coordination
// replicas themselves — is detected.
//
//   $ ./examples/admin_audit
#include <cstdio>

#include "rockfs/deployment.h"

using namespace rockfs;

namespace {

void print_audit(const core::LogAudit& audit) {
  std::printf("  %-4s %-8s %-18s %-4s %-10s %s\n", "seq", "op", "path", "ver", "bytes",
              "payload");
  for (const auto& r : audit.records) {
    std::printf("  %-4llu %-8s %-18s %-4llu %-10llu %s\n",
                static_cast<unsigned long long>(r.seq), r.op.c_str(), r.path.c_str(),
                static_cast<unsigned long long>(r.version),
                static_cast<unsigned long long>(r.payload_size),
                r.whole_file ? "whole-file" : "delta");
  }
  std::printf("  stream integrity: %s", audit.report.ok ? "VERIFIED" : "VIOLATED");
  if (!audit.report.corrupt_entries.empty()) {
    std::printf(" (%zu corrupt entries discarded)", audit.report.corrupt_entries.size());
  }
  if (audit.report.count_mismatch) std::printf(" [entry count mismatch]");
  if (audit.report.aggregate_mismatch) std::printf(" [aggregate mismatch]");
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("RockFS administrator audit walk-through\n");
  std::printf("=======================================\n\n");

  core::Deployment deployment;
  auto& alice = deployment.add_user("alice");
  alice.write_file("/notes.txt", to_bytes("day 1\n")).expect("w1");
  alice.write_file("/notes.txt", to_bytes("day 1\nday 2\n")).expect("w2");
  alice.write_file("/todo.txt", to_bytes("- reproduce RockFS\n")).expect("w3");
  alice.unlink("/todo.txt").expect("rm");

  auto recovery = deployment.make_recovery_service("alice");

  std::printf("clean audit of alice's activity:\n");
  auto audit = recovery.audit_log();
  print_audit(audit.expect("audit"));

  // Now simulate an attacker who somehow rewrote a log tuple at EVERY
  // coordination replica (stronger than the BFT model allows). The FssAgg
  // chain still exposes the manipulation.
  std::printf("\ntampering with log record #1 at all replicas...\n");
  auto records = core::read_log_records(*deployment.coordination(), "alice");
  auto tuple = (*records.value)[1].to_tuple();
  for (std::size_t i = 0; i < deployment.coordination()->replica_count(); ++i) {
    auto& replica = deployment.coordination()->replica(i);
    coord::Template exact = coord::Template::of(
        {tuple[0], tuple[1], tuple[2], "*", "*", "*", "*", "*", "*", "*", "*", "*"});
    replica.inp(exact);
    auto forged = tuple;
    forged[7] = "31337";  // attacker rewrites the payload size
    replica.out(forged);
  }

  auto audit2 = recovery.audit_log();
  print_audit(audit2.expect("audit2"));
  const bool detected = !audit2->report.ok;
  std::printf("\nmanipulation detected: %s\n", detected ? "YES" : "NO");
  return detected ? 0 : 1;
}
