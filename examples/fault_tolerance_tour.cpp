// Fault-tolerance tour of the cloud-of-clouds substrate: provider outages,
// Byzantine (lying) clouds, silent share corruption with proactive repair,
// and Byzantine coordination replicas — everything the DepSky/DepSpace layer
// absorbs before RockFS's client-side defenses even come into play.
//
//   $ ./examples/fault_tolerance_tour
#include <cstdio>

#include "common/rng.h"
#include "rockfs/deployment.h"

using namespace rockfs;

int main() {
  std::printf("RockFS fault-tolerance tour (n = 4 clouds, f = 1)\n");
  std::printf("=================================================\n\n");

  core::Deployment deployment;
  auto& alice = deployment.add_user("alice");
  Rng rng(2024);
  const Bytes content = rng.next_bytes(64 << 10);
  alice.write_file("/archive.bin", content).expect("write");
  std::printf("wrote /archive.bin (64 KiB), erasure-coded 2-of-4 across clouds\n\n");

  auto check = [&](const char* label) {
    alice.fs().clear_cache();  // force a cloud read
    auto r = alice.read_file("/archive.bin");
    const bool ok = r.ok() && *r == content;
    std::printf("  %-44s %s\n", label, ok ? "data intact" : "READ FAILED");
    return ok;
  };

  std::printf("1. provider outage\n");
  deployment.clouds()[0]->set_available(false);
  check("cloud-0 down:");
  deployment.clouds()[0]->set_available(true);

  std::printf("\n2. Byzantine provider (returns plausible garbage)\n");
  deployment.clouds()[1]->set_byzantine(true);
  check("cloud-1 lying:");
  deployment.clouds()[1]->set_byzantine(false);

  std::printf("\n3. silent share corruption + proactive repair\n");
  (void)deployment.clouds()[2]->corrupt_object("files/alice/archive.bin.v1.s2");
  check("cloud-2 share corrupt:");
  auto repaired = alice.fs().storage()->repair(alice.keystore().file_tokens,
                                               "files/alice/archive.bin");
  std::printf("  repair: %zu ok, %zu rebuilt\n", repaired.value.expect("repair").shares_ok,
              repaired.value->shares_repaired);
  check("after repair (margin restored):");

  std::printf("\n4. Byzantine coordination replica\n");
  deployment.coordination()->replica(3).set_byzantine(true);
  check("replica-3 lying:");
  alice.write_file("/archive2.bin", to_bytes("new data")).expect("write during fault");
  std::printf("  writes (metadata quorum) also unaffected\n");
  deployment.coordination()->replica(3).set_byzantine(false);

  std::printf("\n5. beyond the fault bound (f+1 = 2 clouds down)\n");
  deployment.clouds()[0]->set_available(false);
  deployment.clouds()[1]->set_available(false);
  alice.fs().clear_cache();
  auto r = alice.read_file("/archive.bin");
  std::printf("  read with 2/4 clouds down: %s (expected: unavailable, NOT wrong data)\n",
              r.ok() ? "unexpectedly ok" : r.error().message.c_str());

  std::printf("\nall failures within the f=1 bound were absorbed transparently.\n");
  return 0;
}
