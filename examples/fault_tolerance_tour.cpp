// Fault-tolerance tour of the cloud-of-clouds substrate: scheduled provider
// outages, transient-error bursts with tail latency (absorbed by retries),
// Byzantine (lying) clouds, silent share corruption with proactive repair,
// and Byzantine coordination replicas — everything the DepSky/DepSpace layer
// absorbs before RockFS's client-side defenses even come into play. Faults
// are injected through each provider's FaultSchedule (sim/faults.h), driven
// by the deployment's virtual clock.
//
//   $ ./examples/fault_tolerance_tour
#include <cstdio>

#include "common/rng.h"
#include "rockfs/deployment.h"

using namespace rockfs;

int main() {
  std::printf("RockFS fault-tolerance tour (n = 4 clouds, f = 1)\n");
  std::printf("=================================================\n\n");

  core::Deployment deployment;
  auto& alice = deployment.add_user("alice");
  Rng rng(2024);
  const Bytes content = rng.next_bytes(64 << 10);
  alice.write_file("/archive.bin", content).expect("write");
  std::printf("wrote /archive.bin (64 KiB), erasure-coded 2-of-4 across clouds\n\n");

  auto check = [&](const char* label) {
    alice.fs().clear_cache();  // force a cloud read
    auto r = alice.read_file("/archive.bin");
    const bool ok = r.ok() && *r == content;
    std::printf("  %-44s %s\n", label, ok ? "data intact" : "READ FAILED");
    return ok;
  };

  std::printf("1. scheduled provider outage (fault schedule, virtual time)\n");
  {
    // Cloud 0 goes dark for 30 s of virtual time starting 1 s from now.
    const auto now = deployment.clock()->now_us();
    deployment.clouds()[0]->faults().add_outage(now + 1'000'000, now + 31'000'000);
    deployment.clock()->advance_us(2'000'000);  // into the window
    check("cloud-0 inside its outage window:");
    deployment.clock()->advance_us(60'000'000);  // past the window
    check("after the window closes:");
  }

  std::printf("\n2. transient errors + tail-latency storm (masked by retries)\n");
  {
    auto& faults = deployment.clouds()[1]->faults();
    faults.set_transient_error_prob(0.4);     // ~40%% of requests fail outright
    faults.set_timeout_prob(0.2);             // ~20%% more hang until timeout
    faults.set_tail_latency(0.5, 10.0);       // half the survivors run 10x slow
    check("cloud-1 flaky (retry/backoff engaged):");
    faults.clear();
  }

  std::printf("\n3. Byzantine provider (returns plausible garbage)\n");
  deployment.clouds()[1]->set_byzantine(true);
  check("cloud-1 lying:");
  deployment.clouds()[1]->set_byzantine(false);

  std::printf("\n4. silent share corruption + proactive repair\n");
  (void)deployment.clouds()[2]->corrupt_object("files/archive.bin.v1.s2");
  check("cloud-2 share corrupt:");
  auto repaired = alice.fs().storage()->repair(alice.keystore().file_tokens,
                                               "files/archive.bin");
  std::printf("  repair: %zu ok, %zu rebuilt\n", repaired.value.expect("repair").shares_ok,
              repaired.value->shares_repaired);
  check("after repair (margin restored):");

  std::printf("\n5. Byzantine coordination replica\n");
  deployment.coordination()->replica(3).set_byzantine(true);
  check("replica-3 lying:");
  alice.write_file("/archive2.bin", to_bytes("new data")).expect("write during fault");
  std::printf("  writes (metadata quorum) also unaffected\n");
  deployment.coordination()->replica(3).set_byzantine(false);

  std::printf("\n6. beyond the fault bound (f+1 = 2 clouds down)\n");
  deployment.clouds()[0]->set_available(false);
  deployment.clouds()[1]->set_available(false);
  alice.fs().clear_cache();
  auto r = alice.read_file("/archive.bin");
  std::printf("  read with 2/4 clouds down: %s (expected: unavailable, NOT wrong data)\n",
              r.ok() ? "unexpectedly ok" : r.error().message.c_str());

  std::printf("\nall failures within the f=1 bound were absorbed transparently.\n");
  return 0;
}
