#include "gf/gf256.h"

#include <array>
#include <stdexcept>

namespace rockfs::gf {

namespace {

struct Tables {
  std::array<std::uint8_t, 512> exp{};  // doubled to avoid a mod in mul
  std::array<std::uint8_t, 256> log{};
};

const Tables& tables() {
  static const Tables t = [] {
    Tables out;
    // Generator 0x02 is primitive for 0x11D.
    unsigned x = 1;
    for (unsigned i = 0; i < 255; ++i) {
      out.exp[i] = static_cast<std::uint8_t>(x);
      out.log[x] = static_cast<std::uint8_t>(i);
      x <<= 1;
      if (x & 0x100) x ^= 0x11D;
    }
    for (unsigned i = 255; i < 512; ++i) out.exp[i] = out.exp[i - 255];
    return out;
  }();
  return t;
}

}  // namespace

std::uint8_t mul(std::uint8_t a, std::uint8_t b) {
  if (a == 0 || b == 0) return 0;
  const auto& t = tables();
  return t.exp[static_cast<std::size_t>(t.log[a]) + t.log[b]];
}

std::uint8_t div(std::uint8_t a, std::uint8_t b) {
  if (b == 0) throw std::domain_error("gf256: division by zero");
  if (a == 0) return 0;
  const auto& t = tables();
  return t.exp[static_cast<std::size_t>(t.log[a]) + 255 - t.log[b]];
}

std::uint8_t inv(std::uint8_t a) {
  if (a == 0) throw std::domain_error("gf256: zero has no inverse");
  const auto& t = tables();
  return t.exp[255 - t.log[a]];
}

std::uint8_t pow(std::uint8_t a, unsigned e) {
  if (e == 0) return 1;
  if (a == 0) return 0;
  const auto& t = tables();
  const unsigned idx = (static_cast<unsigned>(t.log[a]) * e) % 255;
  return t.exp[idx];
}

std::uint8_t poly_eval(BytesView coeffs, std::uint8_t x) {
  // Horner's rule from the highest degree down.
  std::uint8_t acc = 0;
  for (std::size_t i = coeffs.size(); i > 0; --i) {
    acc = static_cast<std::uint8_t>(mul(acc, x) ^ coeffs[i - 1]);
  }
  return acc;
}

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0) {
  if (rows == 0 || cols == 0) throw std::invalid_argument("Matrix: empty dimensions");
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.at(i, i) = 1;
  return m;
}

Matrix Matrix::vandermonde(std::size_t rows, std::size_t cols) {
  if (rows > 256) throw std::invalid_argument("vandermonde: more rows than field points");
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      m.at(r, c) = pow(static_cast<std::uint8_t>(r), static_cast<unsigned>(c));
    }
  }
  return m;
}

Matrix Matrix::multiply(const Matrix& rhs) const {
  if (cols_ != rhs.rows_) throw std::invalid_argument("Matrix::multiply: shape mismatch");
  Matrix out(rows_, rhs.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const std::uint8_t a = at(r, k);
      if (a == 0) continue;
      for (std::size_t c = 0; c < rhs.cols_; ++c) {
        out.at(r, c) ^= mul(a, rhs.at(k, c));
      }
    }
  }
  return out;
}

Matrix Matrix::select_rows(const std::vector<std::size_t>& rows) const {
  if (rows.empty()) throw std::invalid_argument("select_rows: empty selection");
  Matrix out(rows.size(), cols_);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (rows[i] >= rows_) throw std::out_of_range("select_rows: bad row index");
    for (std::size_t c = 0; c < cols_; ++c) out.at(i, c) = at(rows[i], c);
  }
  return out;
}

Matrix Matrix::inverse() const {
  if (rows_ != cols_) throw std::invalid_argument("Matrix::inverse: not square");
  const std::size_t n = rows_;
  Matrix work = *this;
  Matrix result = identity(n);
  for (std::size_t col = 0; col < n; ++col) {
    // Find a pivot.
    std::size_t pivot = col;
    while (pivot < n && work.at(pivot, col) == 0) ++pivot;
    if (pivot == n) throw std::domain_error("Matrix::inverse: singular");
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(work.at(pivot, c), work.at(col, c));
        std::swap(result.at(pivot, c), result.at(col, c));
      }
    }
    // Normalize the pivot row.
    const std::uint8_t piv_inv = inv(work.at(col, col));
    for (std::size_t c = 0; c < n; ++c) {
      work.at(col, c) = mul(work.at(col, c), piv_inv);
      result.at(col, c) = mul(result.at(col, c), piv_inv);
    }
    // Eliminate the column everywhere else.
    for (std::size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const std::uint8_t factor = work.at(r, col);
      if (factor == 0) continue;
      for (std::size_t c = 0; c < n; ++c) {
        work.at(r, c) ^= mul(factor, work.at(col, c));
        result.at(r, c) ^= mul(factor, result.at(col, c));
      }
    }
  }
  return result;
}

Bytes Matrix::apply(BytesView vec) const {
  if (vec.size() != cols_) throw std::invalid_argument("Matrix::apply: size mismatch");
  Bytes out(rows_, 0);
  for (std::size_t r = 0; r < rows_; ++r) {
    std::uint8_t acc = 0;
    for (std::size_t c = 0; c < cols_; ++c) acc ^= mul(at(r, c), vec[c]);
    out[r] = acc;
  }
  return out;
}

}  // namespace rockfs::gf
