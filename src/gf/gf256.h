// Arithmetic in GF(2^8) modulo x^8+x^4+x^3+x^2+1 (0x11D, the conventional
// Reed-Solomon polynomial), plus dense matrices with Gauss-Jordan inversion.
// Shared by the erasure coder (src/erasure) and byte-wise Shamir secret
// sharing (src/secretshare).
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.h"

namespace rockfs::gf {

/// Field addition/subtraction (self-inverse).
inline std::uint8_t add(std::uint8_t a, std::uint8_t b) { return a ^ b; }

/// Field multiplication via log/exp tables.
std::uint8_t mul(std::uint8_t a, std::uint8_t b);

/// Field division; throws std::domain_error on division by zero.
std::uint8_t div(std::uint8_t a, std::uint8_t b);

/// Multiplicative inverse; throws std::domain_error for zero.
std::uint8_t inv(std::uint8_t a);

/// a^e with a in the field and integer exponent e >= 0.
std::uint8_t pow(std::uint8_t a, unsigned e);

/// Evaluates a polynomial (coefficients low-degree first) at x.
std::uint8_t poly_eval(BytesView coeffs, std::uint8_t x);

/// Dense row-major matrix over GF(2^8).
class Matrix {
 public:
  Matrix(std::size_t rows, std::size_t cols);

  static Matrix identity(std::size_t n);
  /// Rows i in [0,rows): [ (i)^0, (i)^1, ... ] — distinct evaluation points.
  static Matrix vandermonde(std::size_t rows, std::size_t cols);

  std::uint8_t& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  std::uint8_t at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }

  Matrix multiply(const Matrix& rhs) const;
  /// Returns a new matrix made of the selected rows.
  Matrix select_rows(const std::vector<std::size_t>& rows) const;
  /// Gauss-Jordan inverse; throws std::domain_error if singular.
  Matrix inverse() const;

  /// Applies the matrix to a column vector of bytes (size == cols).
  Bytes apply(BytesView vec) const;

  bool operator==(const Matrix&) const = default;

 private:
  std::size_t rows_;
  std::size_t cols_;
  Bytes data_;
};

}  // namespace rockfs::gf
