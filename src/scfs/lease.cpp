#include "scfs/lease.h"

namespace rockfs::scfs {

namespace {
constexpr const char* kLeaseTag = "scfs-lease";
}  // namespace

const char* lease_tag() { return kLeaseTag; }

coord::Tuple lease_tuple(const Lease& l) {
  return {kLeaseTag,          l.path, l.holder, l.session, std::to_string(l.expiry_us),
          std::to_string(l.epoch), l.held ? "held" : "released"};
}

Result<Lease> parse_lease(const coord::Tuple& t) {
  if (t.size() != 7 || t[0] != kLeaseTag) {
    return Error{ErrorCode::kCorrupted, "lease: malformed tuple"};
  }
  Lease l;
  l.path = t[1];
  l.holder = t[2];
  l.session = t[3];
  try {
    l.expiry_us = std::stoll(t[4]);
    l.epoch = std::stoull(t[5]);
  } catch (const std::exception&) {
    return Error{ErrorCode::kCorrupted, "lease: malformed fields"};
  }
  if (t[6] != "held" && t[6] != "released") {
    return Error{ErrorCode::kCorrupted, "lease: unknown state " + t[6]};
  }
  l.held = t[6] == "held";
  return l;
}

coord::Template lease_pattern(const std::string& path) {
  return coord::Template::of({kLeaseTag, path, "*", "*", "*", "*", "*"});
}

coord::Template lease_exact(const Lease& l) {
  const coord::Tuple t = lease_tuple(l);
  return coord::Template::of({t[0], t[1], t[2], t[3], t[4], t[5], t[6]});
}

sim::Timed<Result<std::optional<Lease>>> read_lease(coord::CoordinationService& coord,
                                                    const std::string& path) {
  auto r = coord.rdp(lease_pattern(path));
  if (!r.value.ok()) return {Error{r.value.error()}, r.delay};
  if (!r.value->has_value()) {
    return {Result<std::optional<Lease>>{std::optional<Lease>{}}, r.delay};
  }
  auto parsed = parse_lease(**r.value);
  if (!parsed.ok()) return {Error{parsed.error()}, r.delay};
  return {Result<std::optional<Lease>>{std::optional<Lease>{std::move(*parsed)}}, r.delay};
}

sim::Timed<Result<std::uint64_t>> read_fence_epoch(coord::CoordinationService& coord,
                                                   const std::string& path) {
  auto lease = read_lease(coord, path);
  if (!lease.value.ok()) return {Error{lease.value.error()}, lease.delay};
  if (!lease.value->has_value()) return {Result<std::uint64_t>{0}, lease.delay};
  return {Result<std::uint64_t>{(*lease.value)->epoch}, lease.delay};
}

sim::Timed<Result<std::size_t>> evict_holder_leases(coord::CoordinationService& coord,
                                                    const std::string& holder) {
  sim::SimClock::Micros delay = 0;
  auto all = coord.rdall(
      coord::Template::of({kLeaseTag, "*", holder, "*", "*", "*", "held"}));
  delay += all.delay;
  if (!all.value.ok()) return {Error{all.value.error()}, delay};

  std::size_t evicted = 0;
  for (const auto& t : *all.value) {
    auto parsed = parse_lease(t);
    if (!parsed.ok()) continue;  // malformed tuple: nothing to fence against
    Lease released = *parsed;
    released.held = false;
    released.epoch = parsed->epoch + 1;  // fence the holder's in-flight closes
    auto swap = coord.swap(lease_exact(*parsed), lease_tuple(released));
    delay += swap.delay;
    if (!swap.value.ok()) return {Error{swap.value.error()}, delay};
    // 0 swapped = the lease moved under us (expired takeover or unlock); the
    // new state already carries a fresher epoch, so skipping is safe.
    if (*swap.value > 0) ++evicted;
  }
  return {Result<std::size_t>{evicted}, delay};
}

}  // namespace rockfs::scfs
