// SCFS: the Shared Cloud-backed File System (paper §5.2, after Bessani et
// al., USENIX ATC'14), rebuilt on our DepSky client and coordination
// service. It provides a POSIX-style API with consistency-on-close: reads
// and writes hit an in-memory open-file buffer backed by a local cache;
// close() pushes the new version to the cloud-of-clouds and then updates the
// file's metadata tuple in the coordination service (data before metadata,
// §2.5). Supports the two sync modes evaluated in the paper: blocking and
// non-blocking (background upload pipeline).
//
// The local cache is a shared ClientCache (cache/cache.h): a sharded LRU
// data tier of sealed entries, a metadata tier of head versions, and a
// negative tier for misses. Hit validation (ARCHITECTURE §13.2): a held
// lease epoch matching the fill epoch serves with ZERO remote rounds;
// otherwise one coordination round re-proves the version and a matching
// data entry skips the DepSky fetch. An optional write-back layer
// (cache/writeback.h) coalesces closes to the same path into one commit of
// the full close pipeline, so crash-consistency (intent journal) and
// fencing semantics carry over unchanged.
//
// RockFS integration points (used by src/rockfs):
//   * CacheTransform — encrypt/verify the local cache at open/close (Fig. 4)
//   * CloseInterceptor — runs the log pipeline concurrently with the file
//     upload at close time (§6.1 optimization (2))
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cache/cache.h"
#include "cache/writeback.h"
#include "cloud/provider.h"
#include "common/result.h"
#include "coord/service.h"
#include "depsky/client.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "scfs/lease.h"
#include "sim/faults.h"
#include "sim/timed.h"

namespace rockfs::scfs {

enum class SyncMode { kBlocking, kNonBlocking };

/// Hook that transforms file content between memory and the on-disk cache.
/// The default stores plaintext (what stock SCFS does, and what threat T3
/// exploits); RockFS installs an encrypting, integrity-checking transform.
class CacheTransform {
 public:
  virtual ~CacheTransform() = default;
  /// Memory -> cache representation. `version` is the inode version this
  /// content belongs to; binding it into the protection defeats replay of
  /// older (validly sealed) cache entries.
  virtual Bytes protect(const std::string& path, std::uint64_t version,
                        BytesView plaintext) = 0;
  /// Cache -> memory; kIntegrity when the cached data fails verification
  /// (including a version mismatch, i.e. a replayed stale entry).
  virtual Result<Bytes> unprotect(const std::string& path, std::uint64_t version,
                                  BytesView cached) = 0;
};

struct FileStat {
  std::string path;
  std::uint64_t version = 0;
  std::uint64_t size = 0;
  std::string owner;
  std::int64_t modified_us = 0;
  /// Fencing epoch of the write that produced this version (0 = written
  /// before the path was ever locked). See scfs/lease.h.
  std::uint64_t epoch = 0;
};

struct ScfsOptions {
  SyncMode sync_mode = SyncMode::kNonBlocking;
  bool use_cache = true;
  /// Shared per-user cache handle (survives re-logins; rotation/revocation
  /// drop it through the agent/deployment hooks). Null + use_cache=true →
  /// the instance builds a private cache from `cache_config`.
  cache::ClientCachePtr cache;
  cache::CacheOptions cache_config;
  /// Write-back coalescing (off by default: every dirty close commits
  /// through the full pipeline immediately — the PR 3/PR 4 behavior).
  cache::WriteBackOptions writeback;
  std::string user_id = "user";
  /// Session id: distinguishes re-logins of the same user. A lease names
  /// (holder, session), so a restarted client cannot silently reuse a lease
  /// its crashed predecessor still holds — it must wait out or evict it.
  std::string session_id = "s0";
  /// Lease TTL in virtual time; an expired lease is evictable by any
  /// contender (see scfs/lease.h).
  std::int64_t lease_ttl_us = 30'000'000;
  /// Fencing: closes stamp the writer's epoch into the metadata and refuse
  /// commit (kFenced) when the path's lease epoch has moved past it. Off =
  /// the PR 3 close path, byte-for-byte (bench baseline).
  bool fencing = true;
  /// Local client-side costs (charged in both modes).
  std::int64_t local_op_cost_us = 1'500;         // syscall + agent bookkeeping
  double local_disk_bytes_per_sec = 150e6;       // cache (SSD) throughput
  /// Parallel upload pipelines (file + log) share the client's physical
  /// uplink: this fraction of the smaller pipeline's time is serialized
  /// behind the larger one (the request/RTT components overlap fully; only
  /// the transfer component contends). 0 = ideal parallelism, 1 = sequential.
  double uplink_contention = 0.2;
};

class Scfs {
 public:
  using Fd = int;

  /// Called at close with (path, previous content, new content, new version,
  /// fencing epoch); its delay is overlapped with the file upload (parallel
  /// pipelines). The epoch is the writer's fencing epoch for this close
  /// (kNoFenceEpoch when fencing is disabled): RockFS stamps it into the
  /// log-entry metadata lm_fu and refuses the commit when stale.
  using CloseInterceptor = std::function<sim::Timed<Status>(
      const std::string& path, const Bytes& old_content, const Bytes& new_content,
      std::uint64_t new_version, std::uint64_t epoch)>;

  Scfs(std::shared_ptr<depsky::DepSkyClient> storage,
       std::vector<cloud::AccessToken> storage_tokens,
       std::shared_ptr<coord::CoordinationService> coordination, sim::SimClockPtr clock,
       ScfsOptions options);

  // ---- POSIX-style operations (each advances the virtual clock) ----

  /// Creates an empty file; fails with kConflict if it already exists.
  /// Either outcome invalidates a cached kNotFound for the path.
  Result<Fd> create(const std::string& path);
  /// Opens an existing file, loading it from the staged write-back entry
  /// (read-your-writes), the validated cache, or the cloud-of-clouds.
  Result<Fd> open(const std::string& path);
  Result<Bytes> read(Fd fd, std::size_t offset, std::size_t length);
  Status write(Fd fd, std::size_t offset, BytesView data);
  /// Appends at the end of the file.
  Status append(Fd fd, BytesView data);
  Status truncate(Fd fd, std::size_t new_size);
  /// Consistency-on-close: uploads if dirty, then records metadata. With
  /// write-back enabled the content is staged instead and commits at the
  /// next flush trigger (deadline / dirty-bytes cap / flush() / unlock()).
  Status close(Fd fd);
  Status unlink(const std::string& path);
  Status rename(const std::string& from, const std::string& to);
  Result<FileStat> stat(const std::string& path);
  /// Paths under `prefix`, sorted.
  Result<std::vector<std::string>> readdir(const std::string& prefix);

  // ---- advisory locking: leases with fencing epochs (scfs/lease.h) ----

  /// Acquires (or renews) the lease on `path`. kConflict while another
  /// client's unexpired lease holds it; an EXPIRED lease is evicted — the
  /// dead holder loses the lock and the fencing epoch bumps, so its
  /// stragglers are fenced. Every fresh acquisition bumps the epoch.
  Status lock(const std::string& path);
  /// Releases the caller's lease, FLUSHING any staged write-back entry for
  /// the path first (close-to-open consistency across a lease handoff: the
  /// next holder must observe this holder's closes). kConflict when another
  /// client holds it, kNotFound when nobody does. The lease tuple survives
  /// in the released state: the epoch outlives the lock (monotonicity).
  Status unlock(const std::string& path);
  /// The lease epoch this client acquired for `path`, if it believes it
  /// holds the lock (stale after an eviction — which is the point).
  std::optional<std::uint64_t> held_epoch(const std::string& path) const;
  /// Current lease state of `path` (advances the clock).
  Result<std::optional<Lease>> lease(const std::string& path);

  // ---- write-back control (fsync-style) ----

  /// Commits the staged entry for `path` through the full close pipeline
  /// (intent → file put ∥ log append → inode). kFenced drops the entry and
  /// every cache tier for the path: a fenced writer's dirty data must never
  /// be served again. No-op when nothing is staged.
  Status flush(const std::string& path);
  /// Flushes every staged entry in sorted path order; returns the first
  /// non-ok status (remaining paths are still attempted).
  Status flush_all();
  /// Drops every staged entry WITHOUT committing (crash teardown,
  /// compromise response). Returns the number of entries discarded.
  std::size_t discard_dirty();
  std::size_t dirty_entries() const { return wb_.entries(); }
  std::size_t dirty_bytes() const { return wb_.total_bytes(); }

  // ---- sync-mode plumbing ----

  /// Close that reports the paper's Fig. 5 latency metric: the virtual time
  /// from close() until the coordination service has recorded the operation
  /// (for non-blocking mode this includes queued background uploads).
  sim::Timed<Status> close_timed(Fd fd);
  /// Flushes staged write-backs, then advances the clock until the
  /// background upload queue is empty.
  void drain_background();
  /// Virtual time at which the background queue drains.
  sim::SimClock::Micros background_complete_us() const noexcept { return bg_complete_us_; }

  // ---- RockFS integration ----

  /// Installs the transform. `drop_entries` clears the cache (the default:
  /// old representations are unreadable under an unrelated transform); the
  /// agent passes false when re-installing a transform keyed by the same
  /// session-key lineage, so a shared cache stays warm across re-logins —
  /// entries a rotated key cannot unseal fail open and refetch anyway.
  void set_cache_transform(std::shared_ptr<CacheTransform> transform,
                           bool drop_entries = true);
  void set_close_interceptor(CloseInterceptor interceptor);
  /// Write-ahead hook, same signature as the interceptor, run BEFORE the
  /// file upload: RockFS persists its log intent here so that every crash
  /// between the hook and the interceptor's commit is classifiable at the
  /// next login. Its delay is serialized ahead of the upload pipeline (one
  /// coordination round trip); a failure aborts the close.
  void set_close_intent_hook(CloseInterceptor hook);
  /// Crash points along the close path fire against this schedule
  /// (nullable). Crashes propagate as sim::ClientCrash — the agent layer
  /// catches them and drops the session.
  void set_crash_schedule(sim::CrashSchedulePtr crash) { crash_ = std::move(crash); }
  /// Drops every cached entry, all tiers (e.g., session key rotation).
  /// Staged write-back entries are NOT discarded (use discard_dirty()).
  void clear_cache();
  /// Direct cache inspection for tests and the attack driver.
  std::optional<Bytes> cached_raw(const std::string& path) const;
  void poke_cache(const std::string& path, Bytes raw);
  /// The shared cache handle (null when use_cache is off).
  const cache::ClientCachePtr& cache() const noexcept { return cache_; }

  const ScfsOptions& options() const noexcept { return options_; }
  std::shared_ptr<depsky::DepSkyClient> storage() const noexcept { return storage_; }
  std::shared_ptr<coord::CoordinationService> coordination() const noexcept {
    return coordination_;
  }
  const std::vector<cloud::AccessToken>& storage_tokens() const noexcept {
    return storage_tokens_;
  }

  /// DepSky unit name for a path (exposed for the recovery service).
  std::string unit_for(const std::string& path) const;

 private:
  struct OpenFile {
    std::string path;
    Bytes content;        // plaintext working copy
    Bytes original;       // content as of open (for the close interceptor)
    std::uint64_t version = 0;
    std::uint64_t epoch = 0;   // file epoch observed at open (fencing floor)
    std::string base_owner;    // who wrote the version we opened
    bool dirty = false;
    bool created = false;
  };

  /// One write to commit through the close pipeline — built either from a
  /// dirty close (write-through) or a staged write-back entry (flush).
  struct CommitJob {
    std::string path;
    Bytes log_base;       // cross-user rule already applied
    Bytes content;
    std::uint64_t new_version = 0;
    std::uint64_t write_epoch = kNoFenceEpoch;
    std::uint64_t stamp_epoch = 0;  // inode epoch when unfenced
  };
  struct CommitResult {
    Status status;
    bool committed = false;             // the inode moved
    sim::SimClock::Micros local = 0;    // serialized client-side part
    sim::SimClock::Micros pipeline = 0; // parallel upload pipelines
    sim::SimClock::Micros meta = 0;     // inode replace round
  };
  /// The §2.5 pipeline: crash points, fence pre-flight, cache write-through,
  /// write-ahead intent, file put ∥ interceptor, inode replace. Composes
  /// delays without advancing the clock; the caller charges and reports.
  CommitResult commit_job(const CommitJob& job, obs::Span& span);

  sim::SimClock::Micros local_cost(std::size_t bytes) const;
  /// Cached stat gateway: dirty overlay → lease-validated meta entry →
  /// negative entry → coordination round (which refills meta/negative).
  Result<FileStat> stat_nocharge(const std::string& path, sim::SimClock::Micros* delay);
  /// Flushes the staged entry for `path` (advances the clock). The core of
  /// flush()/flush_all()/maybe_flush_due()/unlock().
  Status flush_path(const std::string& path);
  /// Flushes entries past their deadline, skipping currently-open paths.
  void maybe_flush_due();
  bool is_open_path(const std::string& path) const;

  std::shared_ptr<depsky::DepSkyClient> storage_;
  std::vector<cloud::AccessToken> storage_tokens_;
  std::shared_ptr<coord::CoordinationService> coordination_;
  sim::SimClockPtr clock_;
  ScfsOptions options_;
  std::shared_ptr<CacheTransform> transform_;
  CloseInterceptor interceptor_;
  CloseInterceptor intent_hook_;
  sim::CrashSchedulePtr crash_;

  cache::ClientCachePtr cache_;  // null when use_cache is off
  cache::WriteBackQueue wb_;

  std::map<Fd, OpenFile> open_files_;
  /// Leases this client believes it holds: path -> acquired epoch. Local
  /// belief only — eviction happens behind our back, and the fencing check
  /// against the coordination service is what catches the divergence.
  std::map<std::string, std::uint64_t> held_leases_;
  Fd next_fd_ = 3;
  sim::SimClock::Micros bg_complete_us_ = 0;

  // Cached registry handles for the hot paths.
  obs::Counter* close_count_ = nullptr;
  obs::Counter* close_bytes_ = nullptr;
  obs::Counter* close_errors_ = nullptr;
  obs::Counter* close_fenced_ = nullptr;
  obs::Histogram* close_delay_us_ = nullptr;
  obs::Counter* data_hits_ = nullptr;
  obs::Counter* data_misses_ = nullptr;
  obs::Counter* unseal_fails_ = nullptr;
  obs::Counter* meta_hits_ = nullptr;
  obs::Counter* meta_misses_ = nullptr;
  obs::Counter* negative_hits_ = nullptr;
  obs::Counter* wb_dirty_serves_ = nullptr;
  obs::Counter* wb_flushes_ = nullptr;
  obs::Counter* wb_flush_bytes_ = nullptr;
  obs::Counter* wb_fenced_ = nullptr;
  obs::Counter* wb_flush_errors_ = nullptr;
  obs::Histogram* open_hit_us_ = nullptr;
  obs::Histogram* open_miss_us_ = nullptr;
};

}  // namespace rockfs::scfs
