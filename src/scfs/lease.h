// Lease-based advisory locking with fencing epochs (multi-client sessions).
//
// The bare lock tuple of stock SCFS wedges a file forever when its holder
// dies: nothing expires it and nothing stops the dead holder's in-flight
// close from landing after someone else "broke" the lock. The lease tuple
// fixes both:
//
//   ("scfs-lease", path, holder, session, expiry_us, epoch, state)
//
//   * expiry_us  — virtual-time lease expiry; lock() on an expired lease
//     evicts the dead holder instead of failing.
//   * epoch      — the fencing epoch, minted via coordination-service CAS
//     (first acquisition) or an exact-match take-and-replace (eviction /
//     takeover) and bumped on EVERY acquisition, so each holder's epoch is
//     strictly greater than every previous writer's. The close pipeline
//     stamps the writer's epoch into the file metadata and the log-entry
//     metadata lm_fu; a commit whose epoch is below the lease's current
//     epoch is refused with kFenced — a client that stalls mid-close (GC
//     pause, partition) past its lease can never fork the file or the log.
//   * state      — "held" or "released". Unlock keeps the tuple in the
//     released state rather than deleting it: the epoch must survive the
//     lock's lifetime or a later fresh acquisition would restart it at 1
//     and re-admit fenced writers.
//
// The tuple is quorum-replicated like everything in the coordination
// service, so a Byzantine replica lying about a lease read is outvoted and
// an f-replica outage does not block acquisition.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/result.h"
#include "coord/service.h"
#include "sim/timed.h"

namespace rockfs::scfs {

/// Sentinel epoch meaning "this write opted out of fencing" (fencing
/// disabled, or a writer — like the recovery admin — that locks nothing and
/// must never be fenced). Compares greater than every real epoch, so the
/// `lease_epoch > write_epoch` fence test is vacuously false for it.
inline constexpr std::uint64_t kNoFenceEpoch = ~std::uint64_t{0};

struct Lease {
  std::string path;
  std::string holder;        // user id of the (last) holder
  std::string session;       // session id, distinguishes re-logins of one user
  std::int64_t expiry_us = 0;
  std::uint64_t epoch = 0;   // fencing epoch; monotone over the path's lifetime
  bool held = false;         // false = released tuple kept for epoch continuity
};

/// Tuple tag used for leases ("scfs-lease").
const char* lease_tag();

coord::Tuple lease_tuple(const Lease& l);
Result<Lease> parse_lease(const coord::Tuple& t);
/// Wildcard pattern matching any lease tuple for `path`.
coord::Template lease_pattern(const std::string& path);
/// Exact pattern matching one specific lease state (atomic take/replace arm).
coord::Template lease_exact(const Lease& l);

/// Current lease of `path`, nullopt when it has never been locked. Returns
/// the composed delay without advancing the clock.
sim::Timed<Result<std::optional<Lease>>> read_lease(coord::CoordinationService& coord,
                                                    const std::string& path);

/// Current fencing epoch of `path`: the lease tuple's epoch, or 0 when the
/// path has never been locked (nothing can have been evicted, so nothing can
/// be fenced). The close and log-append pipelines consult this before
/// committing.
sim::Timed<Result<std::uint64_t>> read_fence_epoch(coord::CoordinationService& coord,
                                                   const std::string& path);

/// Administrative eviction of every lease `holder` currently holds (the
/// revocation flow: a compromised user's sessions must lose their locks
/// before rotation). Each held tuple is atomically swapped to the released
/// state with a bumped fencing epoch, so the evicted holder's in-flight
/// closes fence out exactly like a lease-expiry takeover. Returns the number
/// of leases evicted; a lease that changed concurrently is skipped (its new
/// holder re-minted the epoch already).
sim::Timed<Result<std::size_t>> evict_holder_leases(coord::CoordinationService& coord,
                                                    const std::string& holder);

}  // namespace rockfs::scfs
