#include "scfs/scfs.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/trace.h"

namespace rockfs::scfs {

namespace {

// Tuple layout for file metadata in the coordination service:
//   ("scfs-inode", path, version, size, owner, modified_us, epoch)
// The epoch field stamps each committed version with the fencing epoch of
// the write that produced it (lease.h): recovery orders interleaved
// multi-writer records by (version, epoch).
constexpr const char* kInodeTag = "scfs-inode";

coord::Tuple inode_tuple(const FileStat& s) {
  return {kInodeTag,          s.path, std::to_string(s.version), std::to_string(s.size),
          s.owner,            std::to_string(s.modified_us),
          std::to_string(s.epoch)};
}

Result<FileStat> parse_inode(const coord::Tuple& t) {
  if (t.size() != 7 || t[0] != kInodeTag) {
    return Error{ErrorCode::kCorrupted, "scfs: malformed inode tuple"};
  }
  FileStat s;
  s.path = t[1];
  try {
    s.version = std::stoull(t[2]);
    s.size = std::stoull(t[3]);
    s.owner = t[4];
    s.modified_us = std::stoll(t[5]);
    s.epoch = std::stoull(t[6]);
  } catch (const std::exception&) {
    return Error{ErrorCode::kCorrupted, "scfs: malformed inode fields"};
  }
  return s;
}

coord::Template inode_pattern(const std::string& path) {
  return coord::Template::of({kInodeTag, path, "*", "*", "*", "*", "*"});
}

/// Identity cache transform: what stock SCFS does (plaintext cache on disk).
class PassthroughTransform final : public CacheTransform {
 public:
  Bytes protect(const std::string&, std::uint64_t, BytesView plaintext) override {
    return Bytes(plaintext.begin(), plaintext.end());
  }
  Result<Bytes> unprotect(const std::string&, std::uint64_t, BytesView cached) override {
    return Bytes(cached.begin(), cached.end());
  }
};

}  // namespace

Scfs::Scfs(std::shared_ptr<depsky::DepSkyClient> storage,
           std::vector<cloud::AccessToken> storage_tokens,
           std::shared_ptr<coord::CoordinationService> coordination, sim::SimClockPtr clock,
           ScfsOptions options)
    : storage_(std::move(storage)),
      storage_tokens_(std::move(storage_tokens)),
      coordination_(std::move(coordination)),
      clock_(std::move(clock)),
      options_(std::move(options)),
      transform_(std::make_shared<PassthroughTransform>()) {
  auto& reg = obs::metrics();
  close_count_ = &reg.counter("scfs.close.count");
  close_bytes_ = &reg.counter("scfs.close.bytes");
  close_errors_ = &reg.counter("scfs.close.errors");
  close_fenced_ = &reg.counter("scfs.close.fenced");
  close_delay_us_ = &reg.histogram("scfs.close.delay_us");
}

void Scfs::set_cache_transform(std::shared_ptr<CacheTransform> transform) {
  transform_ = std::move(transform);
  cache_.clear();  // old representations are unreadable under the new transform
}

void Scfs::set_close_interceptor(CloseInterceptor interceptor) {
  interceptor_ = std::move(interceptor);
}

void Scfs::set_close_intent_hook(CloseInterceptor hook) {
  intent_hook_ = std::move(hook);
}

void Scfs::clear_cache() { cache_.clear(); }

std::optional<Bytes> Scfs::cached_raw(const std::string& path) const {
  const auto it = cache_.find(path);
  if (it == cache_.end()) return std::nullopt;
  return it->second.raw;
}

void Scfs::poke_cache(const std::string& path, Bytes raw) {
  cache_[path].raw = std::move(raw);
}

std::string Scfs::unit_for(const std::string& path) const {
  // One shared unit per path (paths start with "/"): SCFS is a SHARED
  // namespace, so every client maps the same file to the same data unit.
  // File tokens are namespace-scoped, not user-prefix-bound, so cross-user
  // reads and writes authorize; DepSky readers trust the writer roster.
  return "files" + path;
}

sim::SimClock::Micros Scfs::local_cost(std::size_t bytes) const {
  return options_.local_op_cost_us +
         static_cast<sim::SimClock::Micros>(1e6 * static_cast<double>(bytes) /
                                            options_.local_disk_bytes_per_sec);
}

Result<FileStat> Scfs::stat_nocharge(const std::string& path,
                                     sim::SimClock::Micros* delay) {
  auto r = coordination_->rdp(inode_pattern(path));
  if (delay != nullptr) *delay += r.delay;
  if (!r.value.ok()) return Error{r.value.error()};
  if (!r.value->has_value()) {
    return Error{ErrorCode::kNotFound, "scfs: no such file: " + path};
  }
  return parse_inode(**r.value);
}

Result<Scfs::Fd> Scfs::create(const std::string& path) {
  sim::SimClock::Micros delay = local_cost(0);
  FileStat s;
  s.path = path;
  s.version = 0;  // becomes 1 at first close
  s.size = 0;
  s.owner = options_.user_id;
  s.modified_us = clock_->now_us();
  s.epoch = 0;
  auto cas = coordination_->cas(inode_pattern(path), inode_tuple(s));
  delay += cas.delay;
  clock_->advance_us(delay);
  if (!cas.value.ok()) return Error{cas.value.error()};
  if (!*cas.value) {
    return Error{ErrorCode::kConflict, "scfs: file exists: " + path};
  }
  OpenFile of;
  of.path = path;
  of.version = 0;
  of.base_owner = options_.user_id;
  of.dirty = true;  // even an empty create syncs on close
  of.created = true;
  const Fd fd = next_fd_++;
  open_files_[fd] = std::move(of);
  return fd;
}

Result<Scfs::Fd> Scfs::open(const std::string& path) {
  sim::SimClock::Micros delay = local_cost(0);
  auto st = stat_nocharge(path, &delay);
  if (!st.ok()) {
    clock_->advance_us(delay);
    return Error{st.error()};
  }

  OpenFile of;
  of.path = path;
  of.version = st->version;
  of.epoch = st->epoch;
  of.base_owner = st->owner;

  bool loaded = false;
  if (options_.use_cache) {
    const auto it = cache_.find(path);
    if (it != cache_.end() && it->second.version == st->version) {
      delay += local_cost(it->second.raw.size());
      auto plain = transform_->unprotect(path, st->version, it->second.raw);
      if (plain.ok()) {
        of.content = std::move(*plain);
        loaded = true;
      } else {
        // Tampered or stale cache: discard and fall through to a cloud fetch
        // (the §4.2.2 integrity path).
        LOG_WARN("scfs: cache integrity failure for " << path << ", refetching");
        cache_.erase(it);
      }
    }
  }
  if (!loaded && st->version > 0) {
    auto fetched = storage_->read(storage_tokens_, unit_for(path));
    delay += fetched.delay;
    if (!fetched.value.ok()) {
      clock_->advance_us(delay);
      return Error{fetched.value.error()};
    }
    of.content = std::move(*fetched.value);
    if (options_.use_cache) {
      delay += local_cost(of.content.size());
      cache_[path] = {transform_->protect(path, st->version, of.content), st->version};
    }
  }
  of.original = of.content;
  clock_->advance_us(delay);
  const Fd fd = next_fd_++;
  open_files_[fd] = std::move(of);
  return fd;
}

Result<Bytes> Scfs::read(Fd fd, std::size_t offset, std::size_t length) {
  const auto it = open_files_.find(fd);
  if (it == open_files_.end()) return Error{ErrorCode::kInvalidArgument, "scfs: bad fd"};
  const Bytes& c = it->second.content;
  if (offset >= c.size()) return Bytes{};
  const std::size_t take = std::min(length, c.size() - offset);
  clock_->advance_us(local_cost(take) - options_.local_op_cost_us +
                     options_.local_op_cost_us / 8);
  return Bytes(c.begin() + static_cast<std::ptrdiff_t>(offset),
               c.begin() + static_cast<std::ptrdiff_t>(offset + take));
}

Status Scfs::write(Fd fd, std::size_t offset, BytesView data) {
  const auto it = open_files_.find(fd);
  if (it == open_files_.end()) return {ErrorCode::kInvalidArgument, "scfs: bad fd"};
  Bytes& c = it->second.content;
  if (offset + data.size() > c.size()) c.resize(offset + data.size());
  std::copy(data.begin(), data.end(), c.begin() + static_cast<std::ptrdiff_t>(offset));
  it->second.dirty = true;
  clock_->advance_us(local_cost(data.size()) - options_.local_op_cost_us +
                     options_.local_op_cost_us / 8);
  return {};
}

Status Scfs::append(Fd fd, BytesView data) {
  const auto it = open_files_.find(fd);
  if (it == open_files_.end()) return {ErrorCode::kInvalidArgument, "scfs: bad fd"};
  return write(fd, it->second.content.size(), data);
}

Status Scfs::truncate(Fd fd, std::size_t new_size) {
  const auto it = open_files_.find(fd);
  if (it == open_files_.end()) return {ErrorCode::kInvalidArgument, "scfs: bad fd"};
  it->second.content.resize(new_size);
  it->second.dirty = true;
  clock_->advance_us(options_.local_op_cost_us / 8);
  return {};
}

sim::Timed<Status> Scfs::close_timed(Fd fd) {
  const auto it = open_files_.find(fd);
  if (it == open_files_.end()) {
    return {Status{ErrorCode::kInvalidArgument, "scfs: bad fd"}, 0};
  }
  OpenFile of = std::move(it->second);
  open_files_.erase(it);

  const sim::SimClock::Micros start_us = clock_->now_us();

  // Root span of the write path; every layer below (log append, DepSky
  // write, per-cloud puts, coordination rounds) nests under it. The span
  // follows the charging discipline in obs/trace.h so its subtree's
  // exclusive times sum back to the headline close() latency.
  obs::Span span = obs::tracer().span("scfs.close");
  const auto observe = [&](sim::SimClock::Micros delay, ErrorCode code) {
    span.set_duration(static_cast<std::uint64_t>(delay));
    span.set_outcome(code);
    close_count_->add();
    if (code != ErrorCode::kOk) close_errors_->add();
    close_delay_us_->record(static_cast<std::uint64_t>(delay));
  };

  if (!of.dirty) {
    const auto local = local_cost(0);
    clock_->advance_us(local);
    observe(local, ErrorCode::kOk);
    return {Status::Ok(), local};
  }

  const std::uint64_t new_version = of.version + 1;
  span.set_bytes(of.content.size());
  close_bytes_->add(of.content.size());

  // Fencing epoch of this write: the held lease's epoch when the caller
  // locked the path, else the epoch observed at open (an advisory writer
  // stays fenceable once the path has ever been locked). kNoFenceEpoch
  // disables the checks entirely (the PR 3 close path).
  std::uint64_t write_epoch = kNoFenceEpoch;
  if (options_.fencing) {
    write_epoch = of.epoch;
    if (const auto held = held_leases_.find(of.path); held != held_leases_.end()) {
      write_epoch = held->second;
    }
  }

  if (crash_) crash_->maybe_crash(sim::CrashPoint::kBeforeFilePut);

  // Local work: agent bookkeeping + write-through of the (transformed) cache.
  sim::SimClock::Micros local = local_cost(of.content.size());

  // Fencing pre-flight: refuse before ANY cloud object of this close exists
  // when the lease epoch already moved past this writer. A hang at the crash
  // point above models exactly the stall (GC pause, partition) after which
  // an evicted client would otherwise clobber its successor.
  if (write_epoch != kNoFenceEpoch) {
    auto fence = read_fence_epoch(*coordination_, of.path);
    local += fence.delay;
    span.charge_child(static_cast<std::uint64_t>(fence.delay));
    if (fence.value.ok() && *fence.value > write_epoch) {
      close_fenced_->add();
      clock_->advance_us(local);
      observe(local, ErrorCode::kFenced);
      return {Status{ErrorCode::kFenced,
                     "scfs: fenced: " + of.path + " epoch moved past writer"},
              local};
    }
    // A failed fence read is not a license to commit blind; the commit-side
    // check (log append / pre-inode) settles it.
  }

  if (options_.use_cache) {
    cache_[of.path] = {transform_->protect(of.path, new_version, of.content), new_version};
  }

  // Cross-user base: the version we opened was written by someone else,
  // whose chain logged it — OUR chain has never seen those bytes. Hand the
  // log hooks an empty base so this entry is whole-file: every user's
  // surviving entries then re-execute without needing another user's
  // (possibly dropped) deltas.
  const Bytes empty_base;
  const Bytes& log_base =
      (!of.base_owner.empty() && of.base_owner != options_.user_id) ? empty_base
                                                                    : of.original;

  // Write-ahead intent (RockFS crash consistency): persisted before ANY
  // cloud object of this close exists, serialized ahead of the pipeline.
  sim::SimClock::Micros intent_delay = 0;
  if (intent_hook_) {
    auto intent = intent_hook_(of.path, log_base, of.content, new_version, write_epoch);
    intent_delay = intent.delay;
    span.charge_child(static_cast<std::uint64_t>(intent_delay));
    if (!intent.value.ok()) {
      clock_->advance_us(local + intent_delay);
      observe(local + intent_delay, intent.value.code());
      return {std::move(intent.value), local + intent_delay};
    }
    local += intent_delay;  // serialized ahead of the parallel pipelines
  }

  // The upload pipeline: file upload and the interceptor's pipeline (RockFS
  // logging) run in parallel; the metadata tuple update must come after both
  // (§2.5 ordering). The fanout group's duration is the composed pipeline
  // delay; the overlapping children inside it are excluded from exclusive-
  // time sums.
  obs::Span pipeline_span = obs::tracer().span("scfs.upload_pipeline", {.fanout = true});
  auto file_up = storage_->write(storage_tokens_, unit_for(of.path), of.content);
  if (!file_up.value.ok()) {
    pipeline_span.set_duration(static_cast<std::uint64_t>(file_up.delay));
    pipeline_span.set_outcome(file_up.value.code());
    pipeline_span.finish();
    span.charge_child(static_cast<std::uint64_t>(file_up.delay));
    clock_->advance_us(local + file_up.delay);
    observe(local + file_up.delay, file_up.value.code());
    return {Status{file_up.value.error()}, local + file_up.delay};
  }
  if (crash_) crash_->maybe_crash(sim::CrashPoint::kAfterFilePut);
  sim::SimClock::Micros pipeline = file_up.delay;
  Status interceptor_status;
  bool fence_unresolved = false;
  if (interceptor_) {
    auto extra = interceptor_(of.path, log_base, of.content, new_version, write_epoch);
    if (!extra.value.ok()) interceptor_status = std::move(extra.value);
    // File and log pipelines run in parallel (§6.1 optimization (2)) but
    // their transfers contend for the client uplink.
    const auto shorter = std::min(pipeline, extra.delay);
    pipeline = std::max(pipeline, extra.delay) +
               static_cast<sim::SimClock::Micros>(options_.uplink_contention *
                                                  static_cast<double>(shorter));
  } else if (write_epoch != kNoFenceEpoch) {
    // No log pipeline to carry the commit-side fence check: do it here,
    // after the crash point above (whose hang is the eviction window),
    // before the inode moves.
    auto fence = read_fence_epoch(*coordination_, of.path);
    pipeline += fence.delay;  // serialized after the upload
    span.charge_child(static_cast<std::uint64_t>(fence.delay));
    if (!fence.value.ok()) {
      // Fail closed: without a quorum read of the lease we cannot prove the
      // epoch still admits this writer, and the inode commit needs the
      // coordination service anyway. Surface the (retryable) read error and
      // leave the inode untouched rather than commit a possibly fenced write.
      interceptor_status = Status{fence.value.error()};
      fence_unresolved = true;
    } else if (*fence.value > write_epoch) {
      interceptor_status = Status{
          ErrorCode::kFenced, "scfs: fenced: " + of.path + " epoch moved past writer"};
    }
  }
  pipeline_span.set_duration(static_cast<std::uint64_t>(pipeline));
  pipeline_span.finish();
  span.charge_child(static_cast<std::uint64_t>(pipeline));

  if (interceptor_status.code() == ErrorCode::kFenced || fence_unresolved) {
    // The commit was refused on a stale epoch (or the epoch could not be
    // proved fresh): the inode must NOT move — the file's authoritative
    // version and its log chain stay un-forked; the uploaded object is
    // superseded garbage the next committed write buries.
    if (interceptor_status.code() == ErrorCode::kFenced) close_fenced_->add();
    const auto total = local + pipeline;
    clock_->advance_us(total);
    observe(total, interceptor_status.code());
    return {std::move(interceptor_status), total};
  }

  FileStat s;
  s.path = of.path;
  s.version = new_version;
  s.size = of.content.size();
  s.owner = options_.user_id;
  s.modified_us = clock_->now_us();
  s.epoch = write_epoch == kNoFenceEpoch ? of.epoch : write_epoch;
  auto meta = coordination_->replace(inode_pattern(of.path), inode_tuple(s));
  span.charge_child(static_cast<std::uint64_t>(meta.delay));
  if (!meta.value.ok()) {
    clock_->advance_us(local + pipeline + meta.delay);
    observe(local + pipeline + meta.delay, meta.value.code());
    return {Status{meta.value.error()}, local + pipeline + meta.delay};
  }
  const sim::SimClock::Micros recorded = pipeline + meta.delay;

  if (options_.sync_mode == SyncMode::kBlocking) {
    // Blocking: the caller waits for upload + metadata, plus a final
    // confirmation round with the coordination service (sync barrier).
    auto barrier = coordination_->count(inode_pattern(of.path));
    span.charge_child(static_cast<std::uint64_t>(barrier.delay));
    const auto total = local + recorded + barrier.delay;
    clock_->advance_us(total);
    if (!interceptor_status.ok()) {
      observe(total, interceptor_status.code());
      return {std::move(interceptor_status), total};
    }
    observe(total, ErrorCode::kOk);
    return {Status::Ok(), total};
  }

  // Non-blocking: the caller only pays the local cost now; the upload joins
  // the background pipeline, which drains one transfer at a time (the client
  // uplink is shared). The reported delay is the Fig. 5 metric: when the
  // coordination service has recorded this operation. The span's exclusive
  // time therefore covers local work plus queueing behind earlier uploads.
  clock_->advance_us(local);
  const sim::SimClock::Micros begin = std::max(clock_->now_us(), bg_complete_us_);
  bg_complete_us_ = begin + recorded;
  const auto reported = bg_complete_us_ - start_us;
  if (!interceptor_status.ok()) {
    observe(reported, interceptor_status.code());
    return {std::move(interceptor_status), reported};
  }
  observe(reported, ErrorCode::kOk);
  return {Status::Ok(), reported};
}

Status Scfs::close(Fd fd) { return close_timed(fd).value; }

void Scfs::drain_background() {
  if (bg_complete_us_ > clock_->now_us()) {
    clock_->advance_us(bg_complete_us_ - clock_->now_us());
  }
}

Status Scfs::unlink(const std::string& path) {
  sim::SimClock::Micros delay = local_cost(0);
  auto taken = coordination_->inp(inode_pattern(path));
  delay += taken.delay;
  if (!taken.value.ok()) {
    clock_->advance_us(delay);
    return Status{taken.value.error()};
  }
  if (!taken.value->has_value()) {
    clock_->advance_us(delay);
    return {ErrorCode::kNotFound, "scfs: no such file: " + path};
  }
  auto st = parse_inode(**taken.value);
  cache_.erase(path);
  if (st.ok() && st->version > 0) {
    auto rm = storage_->remove(storage_tokens_, unit_for(path));
    delay += rm.delay;
    // A failed cloud delete leaves garbage but the file is gone from the
    // namespace; nothing to surface to the caller.
  }
  clock_->advance_us(delay);
  return {};
}

Status Scfs::rename(const std::string& from, const std::string& to) {
  // Read both ends first.
  sim::SimClock::Micros delay = local_cost(0);
  auto src = stat_nocharge(from, &delay);
  if (!src.ok()) {
    clock_->advance_us(delay);
    return Status{src.error()};
  }
  auto dst = stat_nocharge(to, &delay);
  if (dst.ok()) {
    clock_->advance_us(delay);
    return {ErrorCode::kConflict, "scfs: rename target exists: " + to};
  }
  // Move the data unit: read + write under the new name, then swap tuples.
  Bytes content;
  if (src->version > 0) {
    auto fetched = storage_->read(storage_tokens_, unit_for(from));
    delay += fetched.delay;
    if (!fetched.value.ok()) {
      clock_->advance_us(delay);
      return Status{fetched.value.error()};
    }
    content = std::move(*fetched.value);
    auto put = storage_->write(storage_tokens_, unit_for(to), content);
    delay += put.delay;
    if (!put.value.ok()) {
      clock_->advance_us(delay);
      return Status{put.value.error()};
    }
    auto rm = storage_->remove(storage_tokens_, unit_for(from));
    delay += rm.delay;
  }
  auto taken = coordination_->inp(inode_pattern(from));
  delay += taken.delay;
  FileStat s = *src;
  s.path = to;
  s.version = src->version > 0 ? 1 : 0;  // new unit starts at version 1
  s.modified_us = clock_->now_us();
  auto put_meta = coordination_->replace(inode_pattern(to), inode_tuple(s));
  delay += put_meta.delay;
  auto cached = cache_.extract(from);
  if (!cached.empty()) {
    cached.key() = to;
    cache_.insert(std::move(cached));
    // The cached transform is path-bound (RockFS MACs include the path), so
    // invalidate rather than risk a false integrity failure.
    cache_.erase(to);
  }
  clock_->advance_us(delay);
  return {};
}

Result<FileStat> Scfs::stat(const std::string& path) {
  sim::SimClock::Micros delay = 0;
  auto st = stat_nocharge(path, &delay);
  clock_->advance_us(delay);
  return st;
}

Result<std::vector<std::string>> Scfs::readdir(const std::string& prefix) {
  auto all = coordination_->rdall(
      coord::Template::of({kInodeTag, "*", "*", "*", "*", "*", "*"}));
  clock_->advance_us(all.delay);
  if (!all.value.ok()) return Error{all.value.error()};
  std::vector<std::string> out;
  for (const auto& t : *all.value) {
    if (t.size() >= 2 && t[1].starts_with(prefix)) out.push_back(t[1]);
  }
  std::sort(out.begin(), out.end());
  return out;
}

Status Scfs::lock(const std::string& path) {
  auto& reg = obs::metrics();
  sim::SimClock::Micros delay = 0;
  auto cur = read_lease(*coordination_, path);
  delay += cur.delay;
  if (!cur.value.ok()) {
    clock_->advance_us(delay);
    return Status{cur.value.error()};
  }

  Lease next;
  next.path = path;
  next.holder = options_.user_id;
  next.session = options_.session_id;
  next.expiry_us = clock_->now_us() + options_.lease_ttl_us;
  next.held = true;

  if (!cur.value->has_value()) {
    // First lock of this path ever: mint epoch 1 via CAS (the pattern arm
    // guarantees no lease tuple snuck in since the read).
    next.epoch = 1;
    auto minted = coordination_->cas(lease_pattern(path), lease_tuple(next));
    clock_->advance_us(delay + minted.delay);
    if (!minted.value.ok()) return Status{minted.value.error()};
    if (!*minted.value) {
      reg.counter("scfs.lock.conflicts").add();
      return {ErrorCode::kConflict, "scfs: lost lock race: " + path};
    }
    held_leases_[path] = next.epoch;
    reg.counter("scfs.lock.acquired").add();
    return {};
  }

  const Lease& held = **cur.value;
  if (held.held) {
    if (held.holder == options_.user_id && held.session == options_.session_id) {
      // Renewal by the live holder: extend the expiry, epoch unchanged. The
      // conditional swap fails (0 removed, store untouched) if the lease
      // moved since our read — an unconditional replace would instead insert
      // a second lease tuple for the path.
      next.epoch = held.epoch;
      auto renewed = coordination_->swap(lease_exact(held), lease_tuple(next));
      clock_->advance_us(delay + renewed.delay);
      if (!renewed.value.ok()) return Status{renewed.value.error()};
      if (*renewed.value == 0) {
        held_leases_.erase(path);  // someone evicted us since the read
        reg.counter("scfs.lock.conflicts").add();
        return {ErrorCode::kConflict, "scfs: lease moved during renewal: " + path};
      }
      held_leases_[path] = next.epoch;
      reg.counter("scfs.lock.renewed").add();
      return {};
    }
    if (clock_->now_us() < held.expiry_us) {
      clock_->advance_us(delay);
      reg.counter("scfs.lock.conflicts").add();
      return {ErrorCode::kConflict, "scfs: lease held by " + held.holder + ": " + path};
    }
    // Expired: the holder is presumed dead — evict it below.
    reg.counter("scfs.lock.evictions").add();
  }

  // Takeover (eviction of an expired holder, or re-acquisition of a released
  // lease): bump the epoch so every straggler of a previous holder is fenced.
  // The exact-match conditional swap is the CAS arm — it fails (and we report
  // kConflict) if anyone else moved the lease since our read, and it is a
  // SINGLE quorum op so a coordination outage mid-takeover can never destroy
  // the tuple (the epoch must survive the lock's lifetime; an inp-then-out
  // pair that dies between the halves would lose it and let the next lock
  // re-mint epoch 1, un-fencing every straggler).
  next.epoch = held.epoch + 1;
  auto taken = coordination_->swap(lease_exact(held), lease_tuple(next));
  clock_->advance_us(delay + taken.delay);
  if (!taken.value.ok()) return Status{taken.value.error()};
  if (*taken.value == 0) {
    reg.counter("scfs.lock.conflicts").add();
    return {ErrorCode::kConflict, "scfs: lost lock race: " + path};
  }
  held_leases_[path] = next.epoch;
  reg.counter("scfs.lock.acquired").add();
  return {};
}

Status Scfs::unlock(const std::string& path) {
  sim::SimClock::Micros delay = 0;
  auto cur = read_lease(*coordination_, path);
  delay += cur.delay;
  held_leases_.erase(path);  // our belief ends either way
  if (!cur.value.ok()) {
    clock_->advance_us(delay);
    return Status{cur.value.error()};
  }
  if (!cur.value->has_value() || !(*cur.value)->held) {
    clock_->advance_us(delay);
    return {ErrorCode::kNotFound, "scfs: no such lock: " + path};
  }
  const Lease& held = **cur.value;
  if (held.holder != options_.user_id || held.session != options_.session_id) {
    // Held by someone else (another user, or our own crashed predecessor
    // session): the same answer a contended lock() gives.
    clock_->advance_us(delay);
    return {ErrorCode::kConflict, "scfs: lock held by " + held.holder + ": " + path};
  }
  // Release keeps the tuple: the epoch must outlive the lock, or a later
  // fresh acquisition would restart it and re-admit fenced writers.
  Lease released = held;
  released.held = false;
  released.expiry_us = clock_->now_us();
  auto swapped = coordination_->swap(lease_exact(held), lease_tuple(released));
  clock_->advance_us(delay + swapped.delay);
  if (!swapped.value.ok()) return Status{swapped.value.error()};
  if (*swapped.value == 0) {
    // The lease moved between our read and the swap (lost race with an
    // evictor): the store is untouched and the new holder's lease stands.
    return {ErrorCode::kConflict, "scfs: lease moved during unlock: " + path};
  }
  return {};
}

std::optional<std::uint64_t> Scfs::held_epoch(const std::string& path) const {
  const auto it = held_leases_.find(path);
  if (it == held_leases_.end()) return std::nullopt;
  return it->second;
}

Result<std::optional<Lease>> Scfs::lease(const std::string& path) {
  auto r = read_lease(*coordination_, path);
  clock_->advance_us(r.delay);
  return std::move(r.value);
}

}  // namespace rockfs::scfs
