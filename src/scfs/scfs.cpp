#include "scfs/scfs.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/trace.h"

namespace rockfs::scfs {

namespace {

// Tuple layout for file metadata in the coordination service:
//   ("scfs-inode", path, version, size, owner, modified_us, epoch)
// The epoch field stamps each committed version with the fencing epoch of
// the write that produced it (lease.h): recovery orders interleaved
// multi-writer records by (version, epoch).
constexpr const char* kInodeTag = "scfs-inode";

coord::Tuple inode_tuple(const FileStat& s) {
  return {kInodeTag,          s.path, std::to_string(s.version), std::to_string(s.size),
          s.owner,            std::to_string(s.modified_us),
          std::to_string(s.epoch)};
}

Result<FileStat> parse_inode(const coord::Tuple& t) {
  if (t.size() != 7 || t[0] != kInodeTag) {
    return Error{ErrorCode::kCorrupted, "scfs: malformed inode tuple"};
  }
  FileStat s;
  s.path = t[1];
  try {
    s.version = std::stoull(t[2]);
    s.size = std::stoull(t[3]);
    s.owner = t[4];
    s.modified_us = std::stoll(t[5]);
    s.epoch = std::stoull(t[6]);
  } catch (const std::exception&) {
    return Error{ErrorCode::kCorrupted, "scfs: malformed inode fields"};
  }
  return s;
}

coord::Template inode_pattern(const std::string& path) {
  return coord::Template::of({kInodeTag, path, "*", "*", "*", "*", "*"});
}

/// Identity cache transform: what stock SCFS does (plaintext cache on disk).
class PassthroughTransform final : public CacheTransform {
 public:
  Bytes protect(const std::string&, std::uint64_t, BytesView plaintext) override {
    return Bytes(plaintext.begin(), plaintext.end());
  }
  Result<Bytes> unprotect(const std::string&, std::uint64_t, BytesView cached) override {
    return Bytes(cached.begin(), cached.end());
  }
};

}  // namespace

Scfs::Scfs(std::shared_ptr<depsky::DepSkyClient> storage,
           std::vector<cloud::AccessToken> storage_tokens,
           std::shared_ptr<coord::CoordinationService> coordination, sim::SimClockPtr clock,
           ScfsOptions options)
    : storage_(std::move(storage)),
      storage_tokens_(std::move(storage_tokens)),
      coordination_(std::move(coordination)),
      clock_(std::move(clock)),
      options_(std::move(options)),
      transform_(std::make_shared<PassthroughTransform>()),
      wb_(options_.writeback) {
  if (options_.use_cache) {
    cache_ = options_.cache ? options_.cache
                            : std::make_shared<cache::ClientCache>(options_.cache_config);
  }
  auto& reg = obs::metrics();
  close_count_ = &reg.counter("scfs.close.count");
  close_bytes_ = &reg.counter("scfs.close.bytes");
  close_errors_ = &reg.counter("scfs.close.errors");
  close_fenced_ = &reg.counter("scfs.close.fenced");
  close_delay_us_ = &reg.histogram("scfs.close.delay_us");
  data_hits_ = &reg.counter("cache.data.hits");
  data_misses_ = &reg.counter("cache.data.misses");
  unseal_fails_ = &reg.counter("cache.data.unseal_fail");
  meta_hits_ = &reg.counter("cache.meta.hits");
  meta_misses_ = &reg.counter("cache.meta.misses");
  negative_hits_ = &reg.counter("cache.negative.hits");
  wb_dirty_serves_ = &reg.counter("cache.wb.dirty_serves");
  wb_flushes_ = &reg.counter("cache.wb.flushes");
  wb_flush_bytes_ = &reg.counter("cache.wb.flush_bytes");
  wb_fenced_ = &reg.counter("cache.wb.fenced");
  wb_flush_errors_ = &reg.counter("cache.wb.flush_errors");
  open_hit_us_ = &reg.histogram("cache.open.hit_us");
  open_miss_us_ = &reg.histogram("cache.open.miss_us");
}

void Scfs::set_cache_transform(std::shared_ptr<CacheTransform> transform,
                               bool drop_entries) {
  transform_ = std::move(transform);
  // By default old representations are assumed unreadable under the new
  // transform and dropped. Agents re-installing a transform keyed by the
  // same session-key lineage keep the shared cache warm instead: an entry
  // the (possibly rotated) key cannot unseal fails open and is refetched.
  if (drop_entries && cache_) cache_->drop_all();
}

void Scfs::set_close_interceptor(CloseInterceptor interceptor) {
  interceptor_ = std::move(interceptor);
}

void Scfs::set_close_intent_hook(CloseInterceptor hook) {
  intent_hook_ = std::move(hook);
}

void Scfs::clear_cache() {
  if (cache_) cache_->drop_all();
}

std::optional<Bytes> Scfs::cached_raw(const std::string& path) const {
  if (!cache_) return std::nullopt;
  return cache_->peek_raw(path);
}

void Scfs::poke_cache(const std::string& path, Bytes raw) {
  if (cache_) cache_->poke_raw(path, std::move(raw));
}

std::string Scfs::unit_for(const std::string& path) const {
  // One shared unit per path (paths start with "/"): SCFS is a SHARED
  // namespace, so every client maps the same file to the same data unit.
  // File tokens are namespace-scoped, not user-prefix-bound, so cross-user
  // reads and writes authorize; DepSky readers trust the writer roster.
  return "files" + path;
}

sim::SimClock::Micros Scfs::local_cost(std::size_t bytes) const {
  return options_.local_op_cost_us +
         static_cast<sim::SimClock::Micros>(1e6 * static_cast<double>(bytes) /
                                            options_.local_disk_bytes_per_sec);
}

bool Scfs::is_open_path(const std::string& path) const {
  for (const auto& [fd, of] : open_files_) {
    if (of.path == path) return true;
  }
  return false;
}

Result<FileStat> Scfs::stat_nocharge(const std::string& path,
                                     sim::SimClock::Micros* delay) {
  // Dirty overlay: a staged write-back is this client's freshest view of
  // the path (read-your-writes — without it, a read_file between a staged
  // close and its flush would truncate to the committed size).
  if (wb_.enabled()) {
    if (auto staged = wb_.snapshot(path)) {
      FileStat s;
      s.path = path;
      s.version = staged->base_version;  // committed version underneath
      s.size = staged->content.size();
      s.owner = options_.user_id;
      s.modified_us = staged->first_dirty_us;
      s.epoch = staged->stamp_epoch;
      return s;
    }
  }
  if (cache_) {
    // Lease-validated fast path (§13.2): an entry filled while holding the
    // SAME lease epoch we still hold cannot be stale — no locking writer
    // can commit past a live lease — so it serves with zero remote rounds.
    // (Advisory non-locking writers bypass leases by design; coherence is
    // guaranteed among locking clients, the SCFS contract.)
    if (const auto held = held_leases_.find(path); held != held_leases_.end()) {
      if (auto m = cache_->get_meta(path);
          m.has_value() && m->lease_epoch == held->second) {
        meta_hits_->add();
        FileStat s;
        s.path = path;
        s.version = m->version;
        s.size = m->size;
        s.owner = m->owner;
        s.modified_us = m->modified_us;
        s.epoch = m->file_epoch;
        return s;
      }
    }
    if (cache_->is_negative(path, clock_->now_us())) {
      negative_hits_->add();
      return Error{ErrorCode::kNotFound, "scfs: no such file: " + path};
    }
  }
  auto r = coordination_->rdp(inode_pattern(path));
  if (delay != nullptr) *delay += r.delay;
  if (!r.value.ok()) return Error{r.value.error()};
  if (!r.value->has_value()) {
    if (cache_) cache_->note_missing(path, clock_->now_us());
    return Error{ErrorCode::kNotFound, "scfs: no such file: " + path};
  }
  auto st = parse_inode(**r.value);
  if (st.ok() && cache_) {
    cache_->clear_negative(path);  // a live tuple kills any cached miss
    cache::MetaEntry m;
    m.version = st->version;
    m.size = st->size;
    m.owner = st->owner;
    m.modified_us = st->modified_us;
    m.file_epoch = st->epoch;
    if (const auto held = held_leases_.find(path); held != held_leases_.end()) {
      m.lease_epoch = held->second;
    }
    cache_->put_meta(path, m);
    meta_misses_->add();
  }
  return st;
}

Result<Scfs::Fd> Scfs::create(const std::string& path) {
  maybe_flush_due();
  sim::SimClock::Micros delay = local_cost(0);
  FileStat s;
  s.path = path;
  s.version = 0;  // becomes 1 at first close
  s.size = 0;
  s.owner = options_.user_id;
  s.modified_us = clock_->now_us();
  s.epoch = 0;
  auto cas = coordination_->cas(inode_pattern(path), inode_tuple(s));
  delay += cas.delay;
  clock_->advance_us(delay);
  if (!cas.value.ok()) return Error{cas.value.error()};
  // Either CAS outcome observed the namespace: the path now exists (we made
  // it) or a tuple already did — a cached kNotFound is invalid both ways,
  // so a create-after-miss can never be answered kNotFound from cache.
  if (cache_) cache_->clear_negative(path);
  if (!*cas.value) {
    return Error{ErrorCode::kConflict, "scfs: file exists: " + path};
  }
  OpenFile of;
  of.path = path;
  of.version = 0;
  of.base_owner = options_.user_id;
  of.dirty = true;  // even an empty create syncs on close
  of.created = true;
  const Fd fd = next_fd_++;
  open_files_[fd] = std::move(of);
  return fd;
}

Result<Scfs::Fd> Scfs::open(const std::string& path) {
  maybe_flush_due();
  sim::SimClock::Micros delay = local_cost(0);

  // Read-your-writes: serve the staged write-back content directly. The
  // open's version stays the committed base — the eventual flush commits
  // base_version + 1 no matter how many closes coalesced into the entry.
  if (wb_.enabled()) {
    if (auto staged = wb_.snapshot(path)) {
      OpenFile of;
      of.path = path;
      of.content = std::move(staged->content);
      of.version = staged->base_version;
      of.epoch = staged->stamp_epoch;
      of.base_owner = options_.user_id;
      delay += local_cost(of.content.size());
      of.original = of.content;
      clock_->advance_us(delay);
      wb_dirty_serves_->add();
      open_hit_us_->record(static_cast<std::uint64_t>(delay));
      const Fd fd = next_fd_++;
      open_files_[fd] = std::move(of);
      return fd;
    }
  }

  auto st = stat_nocharge(path, &delay);
  if (!st.ok()) {
    clock_->advance_us(delay);
    return Error{st.error()};
  }

  OpenFile of;
  of.path = path;
  of.version = st->version;
  of.epoch = st->epoch;
  of.base_owner = st->owner;

  bool loaded = false;
  bool fetched_remote = false;
  if (cache_) {
    if (auto entry = cache_->get_data(path)) {
      if (entry->version == st->version) {
        delay += local_cost(entry->raw.size());
        auto plain = transform_->unprotect(path, st->version, entry->raw);
        if (plain.ok()) {
          of.content = std::move(*plain);
          loaded = true;
          data_hits_->add();
        } else {
          // Tampered or stale cache: discard and fall through to a cloud
          // fetch (the §4.2.2 integrity path).
          LOG_WARN("scfs: cache integrity failure for " << path << ", refetching");
          cache_->erase_data(path);
          unseal_fails_->add();
        }
      } else {
        cache_->erase_data(path);  // superseded by a newer committed version
      }
    }
  }
  if (!loaded && st->version > 0) {
    auto fetched = storage_->read(storage_tokens_, unit_for(path));
    delay += fetched.delay;
    if (!fetched.value.ok()) {
      clock_->advance_us(delay);
      return Error{fetched.value.error()};
    }
    of.content = std::move(*fetched.value);
    if (cache_) {
      delay += local_cost(of.content.size());
      cache_->put_data(path, transform_->protect(path, st->version, of.content),
                       st->version);
    }
    data_misses_->add();
    fetched_remote = true;
  }
  of.original = of.content;
  clock_->advance_us(delay);
  if (st->version > 0) {
    (fetched_remote ? open_miss_us_ : open_hit_us_)
        ->record(static_cast<std::uint64_t>(delay));
  }
  const Fd fd = next_fd_++;
  open_files_[fd] = std::move(of);
  return fd;
}

Result<Bytes> Scfs::read(Fd fd, std::size_t offset, std::size_t length) {
  const auto it = open_files_.find(fd);
  if (it == open_files_.end()) return Error{ErrorCode::kInvalidArgument, "scfs: bad fd"};
  const Bytes& c = it->second.content;
  if (offset >= c.size()) return Bytes{};
  const std::size_t take = std::min(length, c.size() - offset);
  clock_->advance_us(local_cost(take) - options_.local_op_cost_us +
                     options_.local_op_cost_us / 8);
  return Bytes(c.begin() + static_cast<std::ptrdiff_t>(offset),
               c.begin() + static_cast<std::ptrdiff_t>(offset + take));
}

Status Scfs::write(Fd fd, std::size_t offset, BytesView data) {
  const auto it = open_files_.find(fd);
  if (it == open_files_.end()) return {ErrorCode::kInvalidArgument, "scfs: bad fd"};
  Bytes& c = it->second.content;
  if (offset + data.size() > c.size()) c.resize(offset + data.size());
  std::copy(data.begin(), data.end(), c.begin() + static_cast<std::ptrdiff_t>(offset));
  it->second.dirty = true;
  clock_->advance_us(local_cost(data.size()) - options_.local_op_cost_us +
                     options_.local_op_cost_us / 8);
  return {};
}

Status Scfs::append(Fd fd, BytesView data) {
  const auto it = open_files_.find(fd);
  if (it == open_files_.end()) return {ErrorCode::kInvalidArgument, "scfs: bad fd"};
  return write(fd, it->second.content.size(), data);
}

Status Scfs::truncate(Fd fd, std::size_t new_size) {
  const auto it = open_files_.find(fd);
  if (it == open_files_.end()) return {ErrorCode::kInvalidArgument, "scfs: bad fd"};
  it->second.content.resize(new_size);
  it->second.dirty = true;
  clock_->advance_us(options_.local_op_cost_us / 8);
  return {};
}

Scfs::CommitResult Scfs::commit_job(const CommitJob& job, obs::Span& span) {
  CommitResult r;

  if (crash_) crash_->maybe_crash(sim::CrashPoint::kBeforeFilePut);

  // Local work: agent bookkeeping + write-through of the (transformed) cache.
  r.local = local_cost(job.content.size());

  // Fencing pre-flight: refuse before ANY cloud object of this commit exists
  // when the lease epoch already moved past this writer. A hang at the crash
  // point above models exactly the stall (GC pause, partition) after which
  // an evicted client would otherwise clobber its successor.
  if (job.write_epoch != kNoFenceEpoch) {
    auto fence = read_fence_epoch(*coordination_, job.path);
    r.local += fence.delay;
    span.charge_child(static_cast<std::uint64_t>(fence.delay));
    if (fence.value.ok() && *fence.value > job.write_epoch) {
      close_fenced_->add();
      r.status = {ErrorCode::kFenced,
                  "scfs: fenced: " + job.path + " epoch moved past writer"};
      return r;
    }
    // A failed fence read is not a license to commit blind; the commit-side
    // check (log append / pre-inode) settles it.
  }

  if (cache_) {
    cache_->put_data(job.path,
                     transform_->protect(job.path, job.new_version, job.content),
                     job.new_version);
  }

  // Write-ahead intent (RockFS crash consistency): persisted before ANY
  // cloud object of this commit exists, serialized ahead of the pipeline.
  if (intent_hook_) {
    auto intent =
        intent_hook_(job.path, job.log_base, job.content, job.new_version, job.write_epoch);
    span.charge_child(static_cast<std::uint64_t>(intent.delay));
    r.local += intent.delay;  // serialized ahead of the parallel pipelines
    if (!intent.value.ok()) {
      r.status = std::move(intent.value);
      return r;
    }
  }

  // The upload pipeline: file upload and the interceptor's pipeline (RockFS
  // logging) run in parallel; the metadata tuple update must come after both
  // (§2.5 ordering). The fanout group's duration is the composed pipeline
  // delay; the overlapping children inside it are excluded from exclusive-
  // time sums.
  obs::Span pipeline_span = obs::tracer().span("scfs.upload_pipeline", {.fanout = true});
  auto file_up = storage_->write(storage_tokens_, unit_for(job.path), job.content);
  if (!file_up.value.ok()) {
    pipeline_span.set_duration(static_cast<std::uint64_t>(file_up.delay));
    pipeline_span.set_outcome(file_up.value.code());
    pipeline_span.finish();
    span.charge_child(static_cast<std::uint64_t>(file_up.delay));
    r.pipeline = file_up.delay;
    r.status = Status{file_up.value.error()};
    return r;
  }
  if (crash_) crash_->maybe_crash(sim::CrashPoint::kAfterFilePut);
  r.pipeline = file_up.delay;
  Status interceptor_status;
  bool fence_unresolved = false;
  if (interceptor_) {
    auto extra = interceptor_(job.path, job.log_base, job.content, job.new_version,
                              job.write_epoch);
    if (!extra.value.ok()) interceptor_status = std::move(extra.value);
    // File and log pipelines run in parallel (§6.1 optimization (2)) but
    // their transfers contend for the client uplink.
    const auto shorter = std::min(r.pipeline, extra.delay);
    r.pipeline = std::max(r.pipeline, extra.delay) +
                 static_cast<sim::SimClock::Micros>(options_.uplink_contention *
                                                    static_cast<double>(shorter));
  } else if (job.write_epoch != kNoFenceEpoch) {
    // No log pipeline to carry the commit-side fence check: do it here,
    // after the crash point above (whose hang is the eviction window),
    // before the inode moves.
    auto fence = read_fence_epoch(*coordination_, job.path);
    r.pipeline += fence.delay;  // serialized after the upload
    span.charge_child(static_cast<std::uint64_t>(fence.delay));
    if (!fence.value.ok()) {
      // Fail closed: without a quorum read of the lease we cannot prove the
      // epoch still admits this writer, and the inode commit needs the
      // coordination service anyway. Surface the (retryable) read error and
      // leave the inode untouched rather than commit a possibly fenced write.
      interceptor_status = Status{fence.value.error()};
      fence_unresolved = true;
    } else if (*fence.value > job.write_epoch) {
      interceptor_status = Status{
          ErrorCode::kFenced, "scfs: fenced: " + job.path + " epoch moved past writer"};
    }
  }
  pipeline_span.set_duration(static_cast<std::uint64_t>(r.pipeline));
  pipeline_span.finish();
  span.charge_child(static_cast<std::uint64_t>(r.pipeline));

  if (interceptor_status.code() == ErrorCode::kFenced || fence_unresolved) {
    // The commit was refused on a stale epoch (or the epoch could not be
    // proved fresh): the inode must NOT move — the file's authoritative
    // version and its log chain stay un-forked; the uploaded object is
    // superseded garbage the next committed write buries.
    if (interceptor_status.code() == ErrorCode::kFenced) close_fenced_->add();
    r.status = std::move(interceptor_status);
    return r;
  }

  FileStat s;
  s.path = job.path;
  s.version = job.new_version;
  s.size = job.content.size();
  s.owner = options_.user_id;
  s.modified_us = clock_->now_us();
  s.epoch = job.write_epoch == kNoFenceEpoch ? job.stamp_epoch : job.write_epoch;
  auto meta = coordination_->replace(inode_pattern(job.path), inode_tuple(s));
  span.charge_child(static_cast<std::uint64_t>(meta.delay));
  r.meta = meta.delay;
  if (!meta.value.ok()) {
    r.status = Status{meta.value.error()};
    return r;
  }
  r.committed = true;
  r.status = std::move(interceptor_status);  // may carry a non-fatal log error

  if (cache_) {
    // The committed write is the freshest head version this client can know:
    // refresh the metadata tier (anchored to the held lease epoch, if any)
    // and kill any cached miss.
    cache::MetaEntry m;
    m.version = s.version;
    m.size = s.size;
    m.owner = s.owner;
    m.modified_us = s.modified_us;
    m.file_epoch = s.epoch;
    if (const auto held = held_leases_.find(job.path); held != held_leases_.end()) {
      m.lease_epoch = held->second;
    }
    cache_->put_meta(job.path, m);
    cache_->clear_negative(job.path);
  }
  return r;
}

sim::Timed<Status> Scfs::close_timed(Fd fd) {
  const auto it = open_files_.find(fd);
  if (it == open_files_.end()) {
    return {Status{ErrorCode::kInvalidArgument, "scfs: bad fd"}, 0};
  }
  OpenFile of = std::move(it->second);
  open_files_.erase(it);

  const sim::SimClock::Micros start_us = clock_->now_us();

  // Root span of the write path; every layer below (log append, DepSky
  // write, per-cloud puts, coordination rounds) nests under it. The span
  // follows the charging discipline in obs/trace.h so its subtree's
  // exclusive times sum back to the headline close() latency.
  obs::Span span = obs::tracer().span("scfs.close");
  const auto observe = [&](sim::SimClock::Micros delay, ErrorCode code) {
    span.set_duration(static_cast<std::uint64_t>(delay));
    span.set_outcome(code);
    close_count_->add();
    if (code != ErrorCode::kOk) close_errors_->add();
    close_delay_us_->record(static_cast<std::uint64_t>(delay));
  };

  if (!of.dirty) {
    const auto local = local_cost(0);
    clock_->advance_us(local);
    observe(local, ErrorCode::kOk);
    return {Status::Ok(), local};
  }

  const std::uint64_t new_version = of.version + 1;
  span.set_bytes(of.content.size());
  close_bytes_->add(of.content.size());

  // Fencing epoch of this write: the held lease's epoch when the caller
  // locked the path, else the epoch observed at open (an advisory writer
  // stays fenceable once the path has ever been locked). kNoFenceEpoch
  // disables the checks entirely (the PR 3 close path).
  std::uint64_t write_epoch = kNoFenceEpoch;
  if (options_.fencing) {
    write_epoch = of.epoch;
    if (const auto held = held_leases_.find(of.path); held != held_leases_.end()) {
      write_epoch = held->second;
    }
  }

  // Cross-user base: the version we opened was written by someone else,
  // whose chain logged it — OUR chain has never seen those bytes. Hand the
  // log hooks an empty base so this entry is whole-file: every user's
  // surviving entries then re-execute without needing another user's
  // (possibly dropped) deltas.
  const Bytes empty_base;
  const Bytes& log_base =
      (!of.base_owner.empty() && of.base_owner != options_.user_id) ? empty_base
                                                                    : of.original;

  if (wb_.enabled()) {
    // Stage-and-return: the commit pipeline (intent → uploads → inode) runs
    // at the next flush trigger instead, coalescing with any later closes
    // of the path. The base side freezes at the FIRST staging; a dirty-open
    // re-close only replaces the content (writeback.h).
    cache::DirtyEntry entry;
    entry.content = of.content;
    entry.log_base = log_base;
    entry.base_version = of.version;
    entry.write_epoch = write_epoch;
    entry.stamp_epoch = of.epoch;
    entry.first_dirty_us = clock_->now_us();
    wb_.stage(of.path, std::move(entry));
    const auto local = local_cost(of.content.size());
    clock_->advance_us(local);
    observe(local, ErrorCode::kOk);
    span.finish();
    if (wb_.over_cap()) {
      // Dirty-bytes high-water mark: drain synchronously in sorted order.
      // The drain charges the clock but not this close's reported latency —
      // the cap bounds RAM and the crash-loss window, not the fast path.
      for (const auto& p : wb_.paths()) {
        if (is_open_path(p)) continue;
        (void)flush_path(p);
      }
    }
    return {Status::Ok(), local};
  }

  CommitJob job;
  job.path = of.path;
  job.log_base = log_base;
  job.content = std::move(of.content);
  job.new_version = new_version;
  job.write_epoch = write_epoch;
  job.stamp_epoch = of.epoch;
  auto r = commit_job(job, span);

  if (!r.committed) {
    const auto total = r.local + r.pipeline + r.meta;
    clock_->advance_us(total);
    observe(total, r.status.code());
    return {std::move(r.status), total};
  }
  const sim::SimClock::Micros recorded = r.pipeline + r.meta;

  if (options_.sync_mode == SyncMode::kBlocking) {
    // Blocking: the caller waits for upload + metadata, plus a final
    // confirmation round with the coordination service (sync barrier).
    auto barrier = coordination_->count(inode_pattern(job.path));
    span.charge_child(static_cast<std::uint64_t>(barrier.delay));
    const auto total = r.local + recorded + barrier.delay;
    clock_->advance_us(total);
    observe(total, r.status.code());
    return {std::move(r.status), total};
  }

  // Non-blocking: the caller only pays the local cost now; the upload joins
  // the background pipeline, which drains one transfer at a time (the client
  // uplink is shared). The reported delay is the Fig. 5 metric: when the
  // coordination service has recorded this operation. The span's exclusive
  // time therefore covers local work plus queueing behind earlier uploads.
  clock_->advance_us(r.local);
  const sim::SimClock::Micros begin = std::max(clock_->now_us(), bg_complete_us_);
  bg_complete_us_ = begin + recorded;
  const auto reported = bg_complete_us_ - start_us;
  observe(reported, r.status.code());
  return {std::move(r.status), reported};
}

Status Scfs::close(Fd fd) { return close_timed(fd).value; }

Status Scfs::flush_path(const std::string& path) {
  auto entry = wb_.take(path);
  if (!entry) return {};

  obs::Span span = obs::tracer().span("scfs.wb.flush");
  span.set_bytes(entry->content.size());
  CommitJob job;
  job.path = path;
  job.log_base = entry->log_base;
  job.content = entry->content;
  job.new_version = entry->base_version + 1;
  job.write_epoch = entry->write_epoch;
  job.stamp_epoch = entry->stamp_epoch;
  auto r = commit_job(job, span);
  const auto total = r.local + r.pipeline + r.meta;
  clock_->advance_us(total);
  span.set_duration(static_cast<std::uint64_t>(total));
  span.set_outcome(r.status.code());
  wb_flushes_->add();
  wb_flush_bytes_->add(entry->content.size());

  if (r.status.code() == ErrorCode::kFenced) {
    // Never serve a fenced writer's dirty entry: the staged bytes die here,
    // and every cache tier for the path is dropped (including the
    // optimistically sealed new_version the pipeline wrote before fencing).
    wb_fenced_->add();
    if (cache_) cache_->invalidate(path);
    return std::move(r.status);
  }
  if (!r.committed && !r.status.ok()) {
    // Transient failure (cloud/coordination outage): keep the data — the
    // entry re-stages and the next flush trigger retries the commit.
    wb_flush_errors_->add();
    wb_.restage(path, std::move(*entry));
    return std::move(r.status);
  }
  return std::move(r.status);
}

Status Scfs::flush(const std::string& path) {
  if (!wb_.enabled()) return {};
  return flush_path(path);
}

Status Scfs::flush_all() {
  if (!wb_.enabled()) return {};
  Status first;
  for (const auto& path : wb_.paths()) {
    auto st = flush_path(path);
    if (!st.ok() && first.ok()) first = std::move(st);
  }
  return first;
}

std::size_t Scfs::discard_dirty() { return wb_.discard_all(); }

void Scfs::maybe_flush_due() {
  if (!wb_.enabled()) return;
  for (const auto& path : wb_.due_paths(clock_->now_us())) {
    // A path with a live fd defers: flushing under an open file would let
    // the staged base advance beneath it and double-commit the version.
    if (is_open_path(path)) continue;
    (void)flush_path(path);  // outcomes land in the wb counters
  }
}

void Scfs::drain_background() {
  if (wb_.enabled()) (void)flush_all();
  if (bg_complete_us_ > clock_->now_us()) {
    clock_->advance_us(bg_complete_us_ - clock_->now_us());
  }
}

Status Scfs::unlink(const std::string& path) {
  // A staged write to a path being deleted is superseded by the delete:
  // discard it rather than flush a version nobody can observe.
  if (wb_.enabled()) (void)wb_.take(path);
  sim::SimClock::Micros delay = local_cost(0);
  auto taken = coordination_->inp(inode_pattern(path));
  delay += taken.delay;
  if (!taken.value.ok()) {
    clock_->advance_us(delay);
    return Status{taken.value.error()};
  }
  if (!taken.value->has_value()) {
    clock_->advance_us(delay);
    return {ErrorCode::kNotFound, "scfs: no such file: " + path};
  }
  auto st = parse_inode(**taken.value);
  if (cache_) {
    cache_->invalidate(path);
    cache_->note_missing(path, clock_->now_us());
  }
  if (st.ok() && st->version > 0) {
    auto rm = storage_->remove(storage_tokens_, unit_for(path));
    delay += rm.delay;
    // A failed cloud delete leaves garbage but the file is gone from the
    // namespace; nothing to surface to the caller.
  }
  clock_->advance_us(delay);
  return {};
}

Status Scfs::rename(const std::string& from, const std::string& to) {
  // Commit any staged write first so the data unit we move is complete.
  if (wb_.enabled() && wb_.contains(from)) {
    if (auto st = flush_path(from); !st.ok()) return st;
  }
  // Read both ends first.
  sim::SimClock::Micros delay = local_cost(0);
  auto src = stat_nocharge(from, &delay);
  if (!src.ok()) {
    clock_->advance_us(delay);
    return Status{src.error()};
  }
  auto dst = stat_nocharge(to, &delay);
  if (dst.ok()) {
    clock_->advance_us(delay);
    return {ErrorCode::kConflict, "scfs: rename target exists: " + to};
  }
  // Move the data unit: read + write under the new name, then swap tuples.
  Bytes content;
  if (src->version > 0) {
    auto fetched = storage_->read(storage_tokens_, unit_for(from));
    delay += fetched.delay;
    if (!fetched.value.ok()) {
      clock_->advance_us(delay);
      return Status{fetched.value.error()};
    }
    content = std::move(*fetched.value);
    auto put = storage_->write(storage_tokens_, unit_for(to), content);
    delay += put.delay;
    if (!put.value.ok()) {
      clock_->advance_us(delay);
      return Status{put.value.error()};
    }
    auto rm = storage_->remove(storage_tokens_, unit_for(from));
    delay += rm.delay;
  }
  auto taken = coordination_->inp(inode_pattern(from));
  delay += taken.delay;
  FileStat s = *src;
  s.path = to;
  s.version = src->version > 0 ? 1 : 0;  // new unit starts at version 1
  s.modified_us = clock_->now_us();
  auto put_meta = coordination_->replace(inode_pattern(to), inode_tuple(s));
  delay += put_meta.delay;
  if (cache_) {
    // Sealed entries are path-bound (RockFS MACs include the path), so both
    // ends just invalidate; the next open refills under the new name.
    cache_->invalidate(from);
    cache_->invalidate(to);
    cache_->note_missing(from, clock_->now_us());
  }
  clock_->advance_us(delay);
  return {};
}

Result<FileStat> Scfs::stat(const std::string& path) {
  maybe_flush_due();
  sim::SimClock::Micros delay = 0;
  auto st = stat_nocharge(path, &delay);
  clock_->advance_us(delay);
  return st;
}

Result<std::vector<std::string>> Scfs::readdir(const std::string& prefix) {
  maybe_flush_due();
  auto all = coordination_->rdall(
      coord::Template::of({kInodeTag, "*", "*", "*", "*", "*", "*"}));
  clock_->advance_us(all.delay);
  if (!all.value.ok()) return Error{all.value.error()};
  std::vector<std::string> out;
  for (const auto& t : *all.value) {
    if (t.size() < 2) continue;
    // Observing a live tuple for a path invalidates its cached miss.
    if (cache_) cache_->clear_negative(t[1]);
    if (t[1].starts_with(prefix)) out.push_back(t[1]);
  }
  std::sort(out.begin(), out.end());
  return out;
}

Status Scfs::lock(const std::string& path) {
  maybe_flush_due();
  auto& reg = obs::metrics();
  sim::SimClock::Micros delay = 0;
  auto cur = read_lease(*coordination_, path);
  delay += cur.delay;
  if (!cur.value.ok()) {
    clock_->advance_us(delay);
    return Status{cur.value.error()};
  }

  Lease next;
  next.path = path;
  next.holder = options_.user_id;
  next.session = options_.session_id;
  next.expiry_us = clock_->now_us() + options_.lease_ttl_us;
  next.held = true;

  if (!cur.value->has_value()) {
    // First lock of this path ever: mint epoch 1 via CAS (the pattern arm
    // guarantees no lease tuple snuck in since the read).
    next.epoch = 1;
    auto minted = coordination_->cas(lease_pattern(path), lease_tuple(next));
    clock_->advance_us(delay + minted.delay);
    if (!minted.value.ok()) return Status{minted.value.error()};
    if (!*minted.value) {
      reg.counter("scfs.lock.conflicts").add();
      return {ErrorCode::kConflict, "scfs: lost lock race: " + path};
    }
    held_leases_[path] = next.epoch;
    reg.counter("scfs.lock.acquired").add();
    return {};
  }

  const Lease& held = **cur.value;
  if (held.held) {
    if (held.holder == options_.user_id && held.session == options_.session_id) {
      // Renewal by the live holder: extend the expiry, epoch unchanged. The
      // conditional swap fails (0 removed, store untouched) if the lease
      // moved since our read — an unconditional replace would instead insert
      // a second lease tuple for the path.
      next.epoch = held.epoch;
      auto renewed = coordination_->swap(lease_exact(held), lease_tuple(next));
      clock_->advance_us(delay + renewed.delay);
      if (!renewed.value.ok()) return Status{renewed.value.error()};
      if (*renewed.value == 0) {
        held_leases_.erase(path);  // someone evicted us since the read
        reg.counter("scfs.lock.conflicts").add();
        return {ErrorCode::kConflict, "scfs: lease moved during renewal: " + path};
      }
      held_leases_[path] = next.epoch;
      reg.counter("scfs.lock.renewed").add();
      return {};
    }
    if (clock_->now_us() < held.expiry_us) {
      clock_->advance_us(delay);
      reg.counter("scfs.lock.conflicts").add();
      return {ErrorCode::kConflict, "scfs: lease held by " + held.holder + ": " + path};
    }
    // Expired: the holder is presumed dead — evict it below.
    reg.counter("scfs.lock.evictions").add();
  }

  // Takeover (eviction of an expired holder, or re-acquisition of a released
  // lease): bump the epoch so every straggler of a previous holder is fenced.
  // The exact-match conditional swap is the CAS arm — it fails (and we report
  // kConflict) if anyone else moved the lease since our read, and it is a
  // SINGLE quorum op so a coordination outage mid-takeover can never destroy
  // the tuple (the epoch must survive the lock's lifetime; an inp-then-out
  // pair that dies between the halves would lose it and let the next lock
  // re-mint epoch 1, un-fencing every straggler).
  next.epoch = held.epoch + 1;
  auto taken = coordination_->swap(lease_exact(held), lease_tuple(next));
  clock_->advance_us(delay + taken.delay);
  if (!taken.value.ok()) return Status{taken.value.error()};
  if (*taken.value == 0) {
    reg.counter("scfs.lock.conflicts").add();
    return {ErrorCode::kConflict, "scfs: lost lock race: " + path};
  }
  held_leases_[path] = next.epoch;
  reg.counter("scfs.lock.acquired").add();
  return {};
}

Status Scfs::unlock(const std::string& path) {
  if (wb_.enabled() && wb_.contains(path)) {
    // Close-to-open consistency across the lease handoff: commit the staged
    // write while the lease still admits it, so the next holder's open
    // observes it. kFenced means the lease already moved past us — the
    // entry was dropped and the release below reports the usual conflict.
    if (auto st = flush_path(path); !st.ok() && st.code() != ErrorCode::kFenced) {
      return st;  // the lease stays held; the caller can retry
    }
  }
  sim::SimClock::Micros delay = 0;
  auto cur = read_lease(*coordination_, path);
  delay += cur.delay;
  held_leases_.erase(path);  // our belief ends either way
  if (!cur.value.ok()) {
    clock_->advance_us(delay);
    return Status{cur.value.error()};
  }
  if (!cur.value->has_value() || !(*cur.value)->held) {
    clock_->advance_us(delay);
    return {ErrorCode::kNotFound, "scfs: no such lock: " + path};
  }
  const Lease& held = **cur.value;
  if (held.holder != options_.user_id || held.session != options_.session_id) {
    // Held by someone else (another user, or our own crashed predecessor
    // session): the same answer a contended lock() gives.
    clock_->advance_us(delay);
    return {ErrorCode::kConflict, "scfs: lock held by " + held.holder + ": " + path};
  }
  // Release keeps the tuple: the epoch must outlive the lock, or a later
  // fresh acquisition would restart it and re-admit fenced writers.
  Lease released = held;
  released.held = false;
  released.expiry_us = clock_->now_us();
  auto swapped = coordination_->swap(lease_exact(held), lease_tuple(released));
  clock_->advance_us(delay + swapped.delay);
  if (!swapped.value.ok()) return Status{swapped.value.error()};
  if (*swapped.value == 0) {
    // The lease moved between our read and the swap (lost race with an
    // evictor): the store is untouched and the new holder's lease stands.
    return {ErrorCode::kConflict, "scfs: lease moved during unlock: " + path};
  }
  return {};
}

std::optional<std::uint64_t> Scfs::held_epoch(const std::string& path) const {
  const auto it = held_leases_.find(path);
  if (it == held_leases_.end()) return std::nullopt;
  return it->second;
}

Result<std::optional<Lease>> Scfs::lease(const std::string& path) {
  auto r = read_lease(*coordination_, path);
  clock_->advance_us(r.delay);
  return std::move(r.value);
}

}  // namespace rockfs::scfs
