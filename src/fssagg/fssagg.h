// Forward-secure stream integrity for the recovery log, after Ma & Tsudik's
// FssAgg MAC scheme (ACM TOS 2009), as used in paper §3.2:
//
//     U_i = H(U_{i-1} | mac_{A_i}(L_i)),   A_i = H(A_{i-1})
//
// Two independent chains (keys A and B, per the paper's setup that exchanges
// A_1 and B_1 with two different parties) evolve in lockstep. Because keys
// evolve through a one-way function and are erased after use, an attacker who
// compromises the device at time t cannot forge or re-MAC entries with index
// < t: insertions, modifications, deletions, reorderings and truncations are
// all detected by re-verification from A_1/B_1.
#pragma once

#include <cstddef>
#include <vector>

#include "common/bytes.h"
#include "crypto/drbg.h"

namespace rockfs::fssagg {

/// FssAgg.Kg: the two initial symmetric keys exchanged at setup.
struct FssAggKeys {
  Bytes a1;
  Bytes b1;
};

FssAggKeys fssagg_keygen(crypto::Drbg& drbg);

/// Per-entry authentication tags (sigma_i under each chain's current key).
struct FssAggTag {
  Bytes mac_a;
  Bytes mac_b;
};

/// A log entry together with the tags it was sealed with.
struct TaggedEntry {
  Bytes entry;
  FssAggTag tag;
};

/// Signer state held (in RAM only) by the RockFS agent. Old keys are
/// overwritten on every append (FssAgg.Upd), giving forward security.
class FssAggSigner {
 public:
  explicit FssAggSigner(FssAggKeys initial);

  /// Resumes a chain from persisted state: the CURRENT (already evolved)
  /// keys, the running aggregates, and the number of entries sealed so far.
  FssAggSigner(FssAggKeys current, Bytes aggregate_a, Bytes aggregate_b,
               std::size_t count);

  FssAggSigner(const FssAggSigner&) = default;
  FssAggSigner& operator=(const FssAggSigner&) = default;
  FssAggSigner(FssAggSigner&&) = default;
  FssAggSigner& operator=(FssAggSigner&&) = default;
  /// Zeroizes the current keys: a scraped RAM image of a dropped signer must
  /// not leak the chain's future key stream.
  ~FssAggSigner();

  /// FssAgg.Asig + FssAgg.Upd: MACs the entry with the current keys, folds the
  /// MACs into both aggregates, evolves the keys, and returns the entry tags.
  FssAggTag append(BytesView entry);

  /// Chain rotation: wipes the current keys and installs `fresh` while
  /// keeping the aggregates and entry count, so one continuous aggregate
  /// spans the key change. The verifier switches streams at the same index
  /// (fssagg_verify_rotated).
  void rekey(FssAggKeys fresh);

  /// Current aggregate of the A / B chain (valid over `count()` entries).
  const Bytes& aggregate_a() const noexcept { return agg_a_; }
  const Bytes& aggregate_b() const noexcept { return agg_b_; }
  std::size_t count() const noexcept { return count_; }

 private:
  Bytes key_a_;
  Bytes key_b_;
  Bytes agg_a_;
  Bytes agg_b_;
  std::size_t count_ = 0;
};

/// Result of FssAgg.Aver over a stored log.
struct FssAggVerifyReport {
  /// True iff every per-entry MAC and both aggregates check out and the entry
  /// count matches the expected count recorded in the coordination service.
  bool ok = false;
  /// Indices (0-based) of entries whose per-entry MACs failed — these are the
  /// entries the recovery procedure must discard.
  std::vector<std::size_t> corrupt_entries;
  /// True when the recomputed aggregate differs from the stored one, which is
  /// the signature of truncation / reordering / wholesale replacement.
  bool aggregate_mismatch = false;
  /// True when the log length differs from the expected count.
  bool count_mismatch = false;
};

/// FssAgg.Aver: verifies a whole log against the initial keys, the stored
/// aggregates, and the entry count recorded out-of-band.
FssAggVerifyReport fssagg_verify(const FssAggKeys& initial,
                                 const std::vector<TaggedEntry>& log, BytesView aggregate_a,
                                 BytesView aggregate_b, std::size_t expected_count);

/// A key rotation the verifier must honor: entries with index >= at_index are
/// MAC'd under the stream that starts from `keys` (evolving per entry as
/// usual); the aggregates fold straight across the boundary.
struct FssAggRotation {
  std::size_t at_index = 0;
  FssAggKeys keys;
};

/// FssAgg.Aver across key rotations: like fssagg_verify, but switches to each
/// rotation's fresh key stream at its index. Rotations must be sorted by
/// at_index; an empty list degenerates to fssagg_verify.
FssAggVerifyReport fssagg_verify_rotated(const FssAggKeys& initial,
                                         const std::vector<FssAggRotation>& rotations,
                                         const std::vector<TaggedEntry>& log,
                                         BytesView aggregate_a, BytesView aggregate_b,
                                         std::size_t expected_count);

/// The deterministic seed value of both aggregates before any entry.
Bytes fssagg_initial_aggregate();

/// One-way key evolution step (FssAgg.Upd), exposed so that a verifier or a
/// resuming signer can advance A_1 to A_i.
Bytes fssagg_evolve_key(BytesView key);

}  // namespace rockfs::fssagg
