#include "fssagg/fssagg.h"

#include <stdexcept>

#include "crypto/hmac.h"
#include "crypto/sha256.h"

namespace rockfs::fssagg {

Bytes fssagg_evolve_key(BytesView key) { return crypto::sha256(key); }

namespace {

Bytes evolve(BytesView key) { return fssagg_evolve_key(key); }

Bytes fold(BytesView aggregate, BytesView entry_mac) {
  return crypto::sha256(concat({aggregate, entry_mac}));
}

Bytes entry_mac(BytesView key, std::size_t index, BytesView entry) {
  // Bind the entry's position into the MAC so identical payloads at different
  // indices produce different tags.
  Bytes input;
  append_u64(input, index);
  append(input, entry);
  return crypto::hmac_sha256(key, input);
}

}  // namespace

Bytes fssagg_initial_aggregate() {
  return crypto::sha256(to_bytes("rockfs.fssagg.aggregate.v1"));
}

FssAggKeys fssagg_keygen(crypto::Drbg& drbg) {
  return {drbg.generate(32), drbg.generate(32)};
}

FssAggSigner::FssAggSigner(FssAggKeys initial)
    : key_a_(std::move(initial.a1)),
      key_b_(std::move(initial.b1)),
      agg_a_(fssagg_initial_aggregate()),
      agg_b_(fssagg_initial_aggregate()) {
  if (key_a_.size() != 32 || key_b_.size() != 32) {
    throw std::invalid_argument("FssAggSigner: keys must be 32 bytes");
  }
}

FssAggSigner::FssAggSigner(FssAggKeys current, Bytes aggregate_a, Bytes aggregate_b,
                           std::size_t count)
    : key_a_(std::move(current.a1)),
      key_b_(std::move(current.b1)),
      agg_a_(std::move(aggregate_a)),
      agg_b_(std::move(aggregate_b)),
      count_(count) {
  if (key_a_.size() != 32 || key_b_.size() != 32 || agg_a_.size() != 32 ||
      agg_b_.size() != 32) {
    throw std::invalid_argument("FssAggSigner: resume state must be 32-byte values");
  }
}

FssAggSigner::~FssAggSigner() {
  secure_zero(key_a_);
  secure_zero(key_b_);
}

void FssAggSigner::rekey(FssAggKeys fresh) {
  if (fresh.a1.size() != 32 || fresh.b1.size() != 32) {
    throw std::invalid_argument("FssAggSigner::rekey: keys must be 32 bytes");
  }
  secure_zero(key_a_);
  secure_zero(key_b_);
  key_a_ = std::move(fresh.a1);
  key_b_ = std::move(fresh.b1);
}

FssAggTag FssAggSigner::append(BytesView entry) {
  FssAggTag tag;
  tag.mac_a = entry_mac(key_a_, count_, entry);
  tag.mac_b = entry_mac(key_b_, count_, entry);
  agg_a_ = fold(agg_a_, tag.mac_a);
  agg_b_ = fold(agg_b_, tag.mac_b);
  // FssAgg.Upd: one-way key evolution; the previous keys are overwritten and
  // thus unrecoverable from the new state.
  key_a_ = evolve(key_a_);
  key_b_ = evolve(key_b_);
  ++count_;
  return tag;
}

FssAggVerifyReport fssagg_verify(const FssAggKeys& initial,
                                 const std::vector<TaggedEntry>& log, BytesView aggregate_a,
                                 BytesView aggregate_b, std::size_t expected_count) {
  return fssagg_verify_rotated(initial, {}, log, aggregate_a, aggregate_b, expected_count);
}

FssAggVerifyReport fssagg_verify_rotated(const FssAggKeys& initial,
                                         const std::vector<FssAggRotation>& rotations,
                                         const std::vector<TaggedEntry>& log,
                                         BytesView aggregate_a, BytesView aggregate_b,
                                         std::size_t expected_count) {
  FssAggVerifyReport report;
  report.count_mismatch = log.size() != expected_count;

  Bytes key_a = initial.a1;
  Bytes key_b = initial.b1;
  Bytes agg_a = fssagg_initial_aggregate();
  Bytes agg_b = fssagg_initial_aggregate();
  std::size_t next_rotation = 0;

  for (std::size_t i = 0; i < log.size(); ++i) {
    if (next_rotation < rotations.size() && rotations[next_rotation].at_index == i) {
      key_a = rotations[next_rotation].keys.a1;
      key_b = rotations[next_rotation].keys.b1;
      ++next_rotation;
    }
    const TaggedEntry& te = log[i];
    const Bytes want_a = entry_mac(key_a, i, te.entry);
    const Bytes want_b = entry_mac(key_b, i, te.entry);
    if (!ct_equal(want_a, te.tag.mac_a) || !ct_equal(want_b, te.tag.mac_b)) {
      report.corrupt_entries.push_back(i);
    }
    // The aggregates are folded over the *stored* tags: a tampered tag will
    // surface either as a per-entry mismatch above or as an aggregate
    // mismatch below, and a consistent forgery of both requires past keys.
    agg_a = fold(agg_a, te.tag.mac_a);
    agg_b = fold(agg_b, te.tag.mac_b);
    key_a = evolve(key_a);
    key_b = evolve(key_b);
  }

  report.aggregate_mismatch = !ct_equal(agg_a, aggregate_a) || !ct_equal(agg_b, aggregate_b);
  report.ok = !report.count_mismatch && !report.aggregate_mismatch &&
              report.corrupt_entries.empty();
  return report;
}

}  // namespace rockfs::fssagg
