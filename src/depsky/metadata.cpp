#include "depsky/metadata.h"

namespace rockfs::depsky {

const char* protocol_name(Protocol p) {
  switch (p) {
    case Protocol::kA: return "A";
    case Protocol::kCA: return "CA";
  }
  return "?";
}

Bytes UnitMetadata::signing_payload() const {
  Bytes out;
  append_lp(out, to_bytes(unit));
  append_u64(out, version);
  out.push_back(static_cast<Byte>(protocol));
  append_u64(out, data_size);
  append_u64(out, membership_epoch);
  append_u32(out, static_cast<std::uint32_t>(share_digests.size()));
  for (const Bytes& d : share_digests) append_lp(out, d);
  append_lp(out, writer_pub);
  return out;
}

Bytes UnitMetadata::serialize() const {
  Bytes out = signing_payload();
  append_lp(out, signature);
  return out;
}

Result<UnitMetadata> UnitMetadata::deserialize(BytesView b) {
  try {
    UnitMetadata m;
    std::size_t off = 0;
    m.unit = to_string(read_lp(b, &off));
    m.version = read_u64(b, off);
    off += 8;
    const Byte proto = b[off++];
    if (proto > 1) return Error{ErrorCode::kCorrupted, "metadata: bad protocol"};
    m.protocol = static_cast<Protocol>(proto);
    m.data_size = read_u64(b, off);
    off += 8;
    m.membership_epoch = read_u64(b, off);
    off += 8;
    const std::uint32_t n = read_u32(b, off);
    off += 4;
    for (std::uint32_t i = 0; i < n; ++i) m.share_digests.push_back(read_lp(b, &off));
    m.writer_pub = read_lp(b, &off);
    m.signature = read_lp(b, &off);
    if (off != b.size()) return Error{ErrorCode::kCorrupted, "metadata: trailing bytes"};
    return m;
  } catch (const std::exception& e) {
    return Error{ErrorCode::kCorrupted, std::string("metadata: ") + e.what()};
  }
}

void UnitMetadata::sign(const crypto::KeyPair& writer) {
  writer_pub = writer.public_bytes();
  signature = crypto::sign(writer, signing_payload());
}

bool UnitMetadata::verify(BytesView expected_writer_pub) const {
  if (!ct_equal(writer_pub, expected_writer_pub)) return false;
  return crypto::verify(writer_pub, signing_payload(), signature);
}

void VersionWitness::record_meta(const std::string& unit, const std::string& cloud,
                                 std::uint64_t version, const std::string& session) {
  std::lock_guard<std::mutex> lk(mu_);
  Mark& m = meta_marks_[{unit, cloud}];
  if (version >= m.version) {
    m.version = version;
    m.session = session;
  }
}

void VersionWitness::record_share(const std::string& unit, const std::string& cloud,
                                  std::uint64_t version) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& v = share_marks_[{unit, cloud}];
  v = std::max(v, version);
}

void VersionWitness::record_unit(const std::string& unit, std::uint64_t version,
                                 const std::string& session) {
  std::lock_guard<std::mutex> lk(mu_);
  Mark& m = unit_marks_[unit];
  if (version >= m.version) {
    m.version = version;
    m.session = session;
  }
}

std::optional<VersionWitness::Mark> VersionWitness::meta_mark(
    const std::string& unit, const std::string& cloud) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = meta_marks_.find({unit, cloud});
  if (it == meta_marks_.end()) return std::nullopt;
  return it->second;
}

std::optional<std::uint64_t> VersionWitness::share_mark(const std::string& unit,
                                                        const std::string& cloud) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = share_marks_.find({unit, cloud});
  if (it == share_marks_.end()) return std::nullopt;
  return it->second;
}

std::optional<VersionWitness::Mark> VersionWitness::unit_mark(
    const std::string& unit) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = unit_marks_.find(unit);
  if (it == unit_marks_.end()) return std::nullopt;
  return it->second;
}

void VersionWitness::forget_unit(const std::string& unit) {
  std::lock_guard<std::mutex> lk(mu_);
  unit_marks_.erase(unit);
  for (auto it = meta_marks_.begin(); it != meta_marks_.end();) {
    it = it->first.first == unit ? meta_marks_.erase(it) : std::next(it);
  }
  for (auto it = share_marks_.begin(); it != share_marks_.end();) {
    it = it->first.first == unit ? share_marks_.erase(it) : std::next(it);
  }
}

}  // namespace rockfs::depsky
