// Per-cloud circuit breaker driven by virtual time. Tracks transport-level
// health of one provider as seen by a DepSky client:
//
//   closed     — requests flow; `failure_threshold` consecutive transport
//                failures trip the breaker
//   open       — requests are skipped (fail-fast) until `open_cooldown_us`
//                of virtual time has passed
//   half-open  — probe requests are admitted; `half_open_successes`
//                consecutive successes close the breaker, one failure
//                re-opens it
//
// The breaker is an *optimization*: callers that cannot reach a quorum
// without an open cloud conscript it anyway (a forced probe), so the
// breaker can never make an operation fail that would otherwise succeed.
// Successful forced probes count like half-open probes, so a recovered
// cloud heals the breaker even while it is nominally open.
// Thread-safe: fan-out branches running on a pool record outcomes for
// different clouds concurrently, and the coordinator may consult any
// breaker's state while they do. All transitions happen under an internal
// mutex; the hot read-side accessors are atomics.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "obs/metrics.h"
#include "sim/clock.h"

namespace rockfs::depsky {

struct HealthOptions {
  int failure_threshold = 3;
  sim::SimClock::Micros open_cooldown_us = 5'000'000;  // 5 s of virtual time
  int half_open_successes = 2;
  /// Withheld-share incidents tolerated before quarantine. Unlike rollback /
  /// equivocation (each individually provable), a missing acked share is
  /// indistinguishable from genuine provider-side data loss, so a single
  /// incident must not condemn the cloud.
  int withheld_share_threshold = 3;
};

// ------------------------------------------------------ misbehavior ledger
//
// The breaker above tracks *transport* health: outages and timeouts are
// transient, so breaker-open state heals with time and open clouds are even
// conscripted as forced probes when a quorum needs them. Malice is not
// transient. Once a cloud is caught serving below its own witnessed version
// mark (rollback), contradicting what it told another session
// (equivocation), or repeatedly denying shares it acked (withholding), it is
// *quarantined*: sticky for the lifetime of the tracker, never conscripted,
// excluded from every quorum until the admin reconfigures the cloud set
// (depsky/reconfig.h).

/// Why a cloud was flagged by the freshness/accountability checks.
enum class MisbehaviorKind {
  kRollback = 0,   // served below its own witnessed mark (same session)
  kEquivocation,   // contradicted a version witnessed by another session
  kWithheldShare,  // acked a share upload, then claimed it never existed
};
inline constexpr std::size_t kMisbehaviorKinds = 3;

const char* misbehavior_kind_name(MisbehaviorKind k);

class HealthTracker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  /// `label` (typically the cloud name) tags the breaker's registry metrics;
  /// empty means the unlabeled "depsky.breaker.opened" counter.
  HealthTracker(sim::SimClockPtr clock, HealthOptions options = {},
                std::string label = {});

  /// Effective state at the current virtual time (open lapses into
  /// half-open once the cooldown has passed).
  State state() const;
  /// Whether a request should be sent (closed or half-open probe). A
  /// quarantined cloud never gets one.
  bool allow_request() const { return !quarantined() && state() != State::kOpen; }

  void record_success();
  void record_failure();

  // ---- misbehavior ledger (sticky quarantine) ----

  /// Records one incident; quarantines immediately for provable kinds
  /// (rollback, equivocation) and after `withheld_share_threshold` incidents
  /// for withheld shares. Quarantine is sticky: no success, cooldown, or
  /// probe ever lifts it.
  void record_misbehavior(MisbehaviorKind kind);
  bool quarantined() const noexcept {
    return quarantined_.load(std::memory_order_relaxed);
  }
  std::uint64_t misbehavior_count(MisbehaviorKind kind) const noexcept {
    return misbehavior_counts_[static_cast<std::size_t>(kind)].load(
        std::memory_order_relaxed);
  }
  std::uint64_t misbehavior_total() const noexcept;

  int consecutive_failures() const noexcept {
    return consecutive_failures_.load(std::memory_order_relaxed);
  }
  /// Number of times the breaker tripped closed -> open (re-opens included).
  std::uint64_t times_opened() const noexcept {
    return times_opened_.load(std::memory_order_relaxed);
  }

 private:
  /// state() with mu_ already held (record_* call it mid-transition).
  State effective_state_locked() const;

  mutable std::mutex mu_;
  sim::SimClockPtr clock_;
  HealthOptions options_;
  State state_ = State::kClosed;
  std::atomic<int> consecutive_failures_{0};
  int probe_successes_ = 0;
  sim::SimClock::Micros opened_at_us_ = 0;
  std::atomic<std::uint64_t> times_opened_{0};
  std::atomic<bool> quarantined_{false};
  std::atomic<std::uint64_t> misbehavior_counts_[kMisbehaviorKinds] = {};
  obs::Counter* opened_counter_ = nullptr;  // cached registry handles
  obs::Counter* misbehavior_counter_ = nullptr;
  obs::Counter* quarantined_counter_ = nullptr;
};

}  // namespace rockfs::depsky
