#include "depsky/reconfig.h"

#include <algorithm>
#include <exception>
#include <sstream>

#include "common/hex.h"

namespace rockfs::depsky {

namespace {

constexpr const char* kMembershipTag = "rockmember";
constexpr const char* kMigratedTag = "rockmig";

std::string join_names(const std::vector<std::string>& names) {
  std::string out;
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += names[i];
  }
  return out;
}

std::vector<std::string> split_names(const std::string& joined) {
  std::vector<std::string> out;
  std::stringstream ss(joined);
  std::string part;
  while (std::getline(ss, part, ',')) out.push_back(part);
  return out;
}

}  // namespace

Bytes MembershipManifest::signing_payload() const {
  Bytes out = to_bytes("depsky.membership.v1");
  append_u64(out, epoch);
  append_u64(out, replaced_index);
  append_u32(out, static_cast<std::uint32_t>(old_clouds.size()));
  for (const auto& name : old_clouds) append_lp(out, to_bytes(name));
  append_u32(out, static_cast<std::uint32_t>(new_clouds.size()));
  for (const auto& name : new_clouds) append_lp(out, to_bytes(name));
  append_lp(out, admin_pub);
  return out;
}

coord::Tuple MembershipManifest::to_tuple() const {
  return {kMembershipTag,
          std::to_string(epoch),
          join_names(old_clouds),
          join_names(new_clouds),
          std::to_string(replaced_index),
          hex_encode(admin_pub),
          hex_encode(signature)};
}

Result<MembershipManifest> MembershipManifest::from_tuple(const coord::Tuple& t) {
  if (t.size() != 7 || t[0] != kMembershipTag) {
    return Error{ErrorCode::kCorrupted, "membership manifest: malformed tuple"};
  }
  MembershipManifest m;
  try {
    m.epoch = std::stoull(t[1]);
    m.replaced_index = std::stoull(t[4]);
  } catch (const std::exception&) {
    return Error{ErrorCode::kCorrupted, "membership manifest: malformed numeric field"};
  }
  m.old_clouds = split_names(t[2]);
  m.new_clouds = split_names(t[3]);
  if (m.old_clouds.empty() || m.old_clouds.size() != m.new_clouds.size() ||
      m.replaced_index >= m.old_clouds.size()) {
    return Error{ErrorCode::kCorrupted, "membership manifest: inconsistent cloud sets"};
  }
  Bytes pub = hex_decode(t[5]);
  Bytes sig = hex_decode(t[6]);
  if (pub.empty() || sig.empty()) {
    return Error{ErrorCode::kCorrupted, "membership manifest: malformed hex field"};
  }
  m.admin_pub = std::move(pub);
  m.signature = std::move(sig);
  return m;
}

MembershipManifest make_membership_manifest(std::uint64_t epoch,
                                            std::vector<std::string> old_clouds,
                                            std::vector<std::string> new_clouds,
                                            std::size_t replaced_index,
                                            const crypto::KeyPair& admin_keys) {
  MembershipManifest m;
  m.epoch = epoch;
  m.old_clouds = std::move(old_clouds);
  m.new_clouds = std::move(new_clouds);
  m.replaced_index = replaced_index;
  m.admin_pub = admin_keys.public_bytes();
  m.signature = crypto::sign(admin_keys, m.signing_payload());
  return m;
}

bool verify_membership_manifest(const MembershipManifest& m, BytesView admin_public_key) {
  if (m.admin_pub.size() != admin_public_key.size() ||
      !std::equal(m.admin_pub.begin(), m.admin_pub.end(), admin_public_key.begin())) {
    return false;
  }
  return crypto::verify(admin_public_key, m.signing_payload(), m.signature);
}

sim::Timed<Result<bool>> publish_membership_manifest(coord::CoordinationService& coord,
                                                     const MembershipManifest& m) {
  // CAS keyed on the epoch: the insert succeeds only when no manifest holds
  // this epoch yet, so one of any set of concurrent reconfigurations wins
  // the epoch and the rest observe false and must re-read + retry at a
  // higher epoch.
  auto r = coord.cas(coord::Template::of({kMembershipTag, std::to_string(m.epoch), "*",
                                          "*", "*", "*", "*"}),
                     m.to_tuple());
  if (!r.value.ok()) return {Error{r.value.error()}, r.delay};
  return {Result<bool>{*r.value}, r.delay};
}

sim::Timed<Result<std::vector<MembershipManifest>>> read_membership_manifests(
    coord::CoordinationService& coord) {
  auto r = coord.rdall(
      coord::Template::of({kMembershipTag, "*", "*", "*", "*", "*", "*"}));
  if (!r.value.ok()) return {Error{r.value.error()}, r.delay};
  std::vector<MembershipManifest> out;
  out.reserve(r.value->size());
  for (const auto& t : *r.value) {
    auto parsed = MembershipManifest::from_tuple(t);
    if (!parsed.ok()) return {Error{parsed.error()}, r.delay};
    out.push_back(std::move(*parsed));
  }
  std::sort(out.begin(), out.end(),
            [](const MembershipManifest& a, const MembershipManifest& b) {
              return a.epoch < b.epoch;
            });
  return {Result<std::vector<MembershipManifest>>{std::move(out)}, r.delay};
}

sim::Timed<Result<std::optional<MembershipManifest>>> current_membership(
    coord::CoordinationService& coord, BytesView admin_public_key) {
  auto all = read_membership_manifests(coord);
  if (!all.value.ok()) return {Error{all.value.error()}, all.delay};
  std::optional<MembershipManifest> best;
  for (auto& m : *all.value) {
    if (!verify_membership_manifest(m, admin_public_key)) {
      return {Error{ErrorCode::kIntegrity,
                    "membership manifest epoch " + std::to_string(m.epoch) +
                        " does not verify under the admin key"},
              all.delay};
    }
    if (!best || m.epoch > best->epoch) best = std::move(m);
  }
  return {Result<std::optional<MembershipManifest>>{std::move(best)}, all.delay};
}

sim::Timed<Status> mark_unit_migrated(coord::CoordinationService& coord,
                                      std::uint64_t epoch, const std::string& unit) {
  // Idempotent: CAS on (epoch, unit) inserts the marker once; a resumed
  // migration re-marking an already-done unit observes false and moves on.
  auto r = coord.cas(
      coord::Template::of({kMigratedTag, std::to_string(epoch), unit}),
      {kMigratedTag, std::to_string(epoch), unit});
  if (!r.value.ok()) return {Status{r.value.error()}, r.delay};
  return {Status::Ok(), r.delay};
}

sim::Timed<Result<bool>> unit_migrated(coord::CoordinationService& coord,
                                       std::uint64_t epoch, const std::string& unit) {
  auto r = coord.rdp(coord::Template::of({kMigratedTag, std::to_string(epoch), unit}));
  if (!r.value.ok()) return {Error{r.value.error()}, r.delay};
  return {Result<bool>{r.value->has_value()}, r.delay};
}

}  // namespace rockfs::depsky
