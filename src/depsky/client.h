// DepSky cloud-of-clouds storage client (paper §5.1, after Bessani et al.
// EuroSys'11). Stores each *data unit* across n = 3f+1 clouds so that it
// survives f cloud failures or corruptions:
//
//   protocol A  — full replica at every cloud (n x storage)
//   protocol CA — data encrypted under a fresh AES-256 key, the key split
//                 with Shamir (f+1 of n), the ciphertext erasure-coded with
//                 Reed-Solomon (k = f+1 of n)  =>  n/k = 2x storage for f=1
//
// Every unit carries signed, versioned metadata (metadata.h). Writes push
// shares to all clouds in parallel and complete at the (n-f)-th ack; reads
// accept the highest-version valid metadata and the fastest f+1 digest-valid
// shares. Like every simulated component, operations return sim::Timed and
// never advance the clock themselves.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cloud/provider.h"
#include "common/executor.h"
#include "common/result.h"
#include "common/retry.h"
#include "crypto/drbg.h"
#include "crypto/signature.h"
#include "depsky/health.h"
#include "depsky/metadata.h"
#include "obs/metrics.h"
#include "sim/timed.h"

namespace rockfs::depsky {

struct DepSkyConfig {
  std::vector<cloud::CloudProviderPtr> clouds;  // n = 3f+1 providers
  std::size_t f = 1;
  Protocol protocol = Protocol::kCA;
  crypto::KeyPair writer;  // signs unit metadata
  /// Readers accept metadata from these signers (the writer's own public key
  /// is always trusted). RockFS adds the administrator here so that files
  /// re-uploaded during recovery remain readable by the user.
  std::vector<Bytes> trusted_writers;
  /// Per-cloud retry of transient failures (backoff charged to virtual time).
  RetryPolicy retry;
  /// Per-cloud circuit-breaker thresholds (health.h).
  HealthOptions health;
  /// Fan-out branches (per-cloud gets/puts, share encode, digesting) run
  /// here; null means inline on the caller's thread. The same quorum-join
  /// code path executes either way, so seeded runs produce byte-identical
  /// metadata, digests and trace dumps at any thread count.
  std::shared_ptr<common::Executor> executor;
  /// kBarrier (default): joins wait for every branch and compose completion
  /// from virtual delays — the deterministic mode. kFirstQuorum: the join
  /// freezes at the (n-f)-th wall-clock success and cancels stragglers —
  /// wall-clock optimal, used by latency-emulating benches only.
  common::JoinMode join_mode = common::JoinMode::kBarrier;
  /// Optional wall-clock emulation: invoked inside each per-cloud branch
  /// with the branch's virtual delay, typically sleeping a scaled-down real
  /// amount. Must honor the cancel token (return early once cancelled) so
  /// kFirstQuorum joins can interrupt stragglers.
  std::function<void(sim::SimClock::Micros, const common::CancelToken&)> emulate_latency;
  /// Shared freshness witness (metadata.h). Every client of one deployment
  /// should share one instance so a cloud contradicting what it told another
  /// session is caught (equivocation); null means a private witness.
  VersionWitnessPtr witness;
  /// Session identifier recorded with witness marks. A cloud serving below a
  /// mark this same session witnessed is rolling back; below another
  /// session's mark, it is equivocating.
  std::string session = "local";
  /// Cloud-set membership epoch this client believes current
  /// (depsky/reconfig.h). Writes fail closed (kFenced) when a unit's head
  /// metadata carries a newer epoch — the client's cloud set is stale.
  std::uint64_t membership_epoch = 0;
};

class DepSkyClient {
 public:
  DepSkyClient(DepSkyConfig config, BytesView drbg_seed);

  std::size_t n() const noexcept { return config_.clouds.size(); }
  const DepSkyConfig& config() const noexcept { return config_; }
  /// Adds a metadata signer the reader will accept (idempotent). Multi-client
  /// sharing: each user trusts the other writers of the shared namespace, so
  /// a unit last written by a peer stays readable.
  void add_trusted_writer(Bytes public_key) {
    for (const auto& w : config_.trusted_writers) {
      if (w == public_key) return;
    }
    config_.trusted_writers.push_back(std::move(public_key));
  }
  std::size_t f() const noexcept { return config_.f; }
  /// Erasure/secret-sharing threshold: f+1 shares reconstruct.
  std::size_t k() const noexcept { return config_.f + 1; }
  Protocol protocol() const noexcept { return config_.protocol; }

  /// Writes a new version of `unit`. `tokens[i]` authenticates at cloud i.
  sim::Timed<Status> write(const std::vector<cloud::AccessToken>& tokens,
                           const std::string& unit, BytesView data);

  /// Reads the latest version of `unit`.
  sim::Timed<Result<Bytes>> read(const std::vector<cloud::AccessToken>& tokens,
                                 const std::string& unit);

  /// Reads a unit whose shares were moved to cold storage (admin-only,
  /// Glacier-class latency). Metadata must still be hot.
  sim::Timed<Result<Bytes>> read_archived(const std::vector<cloud::AccessToken>& tokens,
                                          const std::string& unit);

  /// Reads the unit's current version number (0 = does not exist).
  sim::Timed<Result<std::uint64_t>> head_version(
      const std::vector<cloud::AccessToken>& tokens, const std::string& unit);

  /// Deletes all objects of `unit` (files only; the log namespace refuses).
  sim::Timed<Status> remove(const std::vector<cloud::AccessToken>& tokens,
                            const std::string& unit);

  // ---- freshness / membership ----

  /// The freshness witness this client records into and checks against.
  VersionWitness& witness() noexcept { return *witness_; }
  std::uint64_t membership_epoch() const noexcept { return config_.membership_epoch; }
  /// Adopts a newer cloud-set membership epoch (after a reconfiguration this
  /// client has learned about); never lowers the current one.
  void set_membership_epoch(std::uint64_t epoch) noexcept {
    if (epoch > config_.membership_epoch) config_.membership_epoch = epoch;
  }
  /// Re-signs and re-publishes `unit`'s current metadata carrying `epoch`
  /// (same version number, this client's signature — the migration pipeline
  /// runs it with the admin's writer key). Idempotent: a unit already at
  /// `epoch` or newer is left untouched, so a crashed migration can re-run.
  sim::Timed<Status> stamp_membership_epoch(const std::vector<cloud::AccessToken>& tokens,
                                            const std::string& unit,
                                            std::uint64_t epoch);

  /// Proactive redundancy repair: verifies every share of `unit` against the
  /// metadata digests and re-creates missing or corrupt ones from the valid
  /// k. In the append-only log namespace, *lost* shares can be re-created
  /// (a create is an append) but corrupt ones cannot be overwritten — they
  /// are reported instead.
  struct RepairReport {
    std::size_t shares_ok = 0;
    std::size_t shares_repaired = 0;
    std::size_t shares_unrepairable = 0;  // corrupt but not overwritable
    std::size_t meta_repaired = 0;        // metadata replicas re-created
    std::size_t meta_unrepairable = 0;    // metadata re-put denied
  };
  sim::Timed<Result<RepairReport>> repair(const std::vector<cloud::AccessToken>& tokens,
                                          const std::string& unit);

  /// Per-cloud survivorship of `unit`'s current version, cheaper than a full
  /// read: which clouds hold a digest-valid hot share, which moved it to
  /// cold storage, and how many metadata replicas survive. The anti-entropy
  /// scrubber (rockfs/scrub.h) compares valid_count() against k + margin to
  /// decide degradation without downloading payload-sized data.
  struct ShareInventory {
    std::uint64_t version = 0;
    std::size_t meta_replicas = 0;     // clouds holding valid current metadata
    /// Clouds holding valid-signed metadata of an OLD version: stale-but-
    /// authentic replicas (what a rolled-back cloud serves). They never count
    /// toward meta_replicas.
    std::size_t meta_stale = 0;
    std::vector<bool> share_valid;     // hot object matching the meta digest
    std::vector<bool> share_present;   // some hot object exists (maybe corrupt)
    std::vector<bool> share_archived;  // share moved to cold storage
    /// Current-version share gone but the previous version's share still
    /// held: the cloud is serving stale data, not missing data.
    std::vector<bool> share_stale;
    /// Surviving shares: digest-valid hot plus archived (cold objects are
    /// immutable once moved, so they count as redundancy).
    std::size_t valid_count() const;
  };
  sim::Timed<Result<ShareInventory>> share_inventory(
      const std::vector<cloud::AccessToken>& tokens, const std::string& unit);

  // ---- resilience introspection ----

  /// Circuit breaker guarding cloud i (open clouds are skipped when a
  /// quorum is reachable without them; see health.h).
  HealthTracker& cloud_health(std::size_t i) { return *health_.at(i); }
  const HealthTracker& cloud_health(std::size_t i) const { return *health_.at(i); }

  struct ResilienceStats {
    std::uint64_t attempts = 0;        // per-cloud requests actually issued
    std::uint64_t retries = 0;         // attempts beyond each first try
    std::uint64_t breaker_skips = 0;   // requests not sent (breaker open)
    std::uint64_t forced_probes = 0;   // open clouds conscripted for quorum
    std::uint64_t deadline_hits = 0;   // retry loops stopped by the deadline
  };
  /// Snapshot (fan-out branches mutate the stats concurrently).
  ResilienceStats resilience_stats() const {
    std::lock_guard<std::mutex> lk(stats_mu_);
    return stats_;
  }

  /// Size of the per-cloud blob a write of `data_size` bytes stores at each
  /// cloud: the payload itself (protocol A) or erasure shard + key share
  /// (protocol CA). Derived independently of the write path (a dummy
  /// encode), so tests can check byte-conservation invariants against the
  /// per-cloud put counters without circularity.
  std::size_t encoded_blob_size(std::size_t data_size) const;

 private:
  struct MetadataFetch {
    Result<UnitMetadata> metadata;
    sim::SimClock::Micros delay = 0;
  };

  /// Highest-version valid metadata over an (n-f) quorum.
  MetadataFetch fetch_metadata(const std::vector<cloud::AccessToken>& tokens,
                               const std::string& unit);
  /// Whether the metadata is signed by any trusted writer.
  bool trusted(const UnitMetadata& meta) const;
  /// Shared body of read / read_archived.
  sim::Timed<Result<Bytes>> read_impl(const std::vector<cloud::AccessToken>& tokens,
                                      const std::string& unit, bool cold);

  static std::string metadata_key(const std::string& unit);
  static std::string share_key(const std::string& unit, std::uint64_t version,
                               std::size_t cloud_index);

  /// Cloud indices to contact for one quorum phase: every cloud whose
  /// breaker admits requests, padded with open-breaker clouds (forced
  /// probes) until an (n-f) quorum is reachable. Ascending order.
  std::vector<std::size_t> contact_set();

  /// get/put against cloud i with per-cloud retry; records the outcome in
  /// the cloud's circuit breaker and the resilience stats. Thread-safe (fan
  /// out branches call these concurrently for distinct clouds). The backoff
  /// jitter seed is pre-drawn by the coordinator in contact order so the
  /// stream is identical at any thread count; `cancel` interrupts the
  /// optional wall-clock latency emulation.
  sim::Timed<Result<Bytes>> guarded_get(std::size_t i, const cloud::AccessToken& token,
                                        const std::string& key, std::uint64_t backoff_seed,
                                        const common::CancelToken& cancel);
  sim::Timed<Status> guarded_put(std::size_t i, const cloud::AccessToken& token,
                                 const std::string& key, BytesView data,
                                 std::uint64_t backoff_seed,
                                 const common::CancelToken& cancel);

  /// One write quorum phase: puts keys[i]/blobs[i] at every contactable
  /// cloud, falling back to skipped clouds if the first round misses the
  /// (n-f) quorum. Reports per-cloud failure detail for error messages.
  struct QuorumPutResult {
    std::size_t acks = 0;
    sim::SimClock::Micros delay = 0;  // completion of the quorum (or of all tries)
    std::string failure_detail;       // "cloud-1=timeout, cloud-2=unavailable"
    std::vector<bool> acked;          // per cloud index (feeds the witness)
  };
  /// `phase` labels the quorum span and selects the per-cloud byte
  /// accounting: the "data" phase records depsky.put.data.{bytes,acks}.
  QuorumPutResult quorum_put(const std::vector<cloud::AccessToken>& tokens,
                             const std::vector<std::string>& keys,
                             const std::vector<BytesView>& blobs, const char* phase);

  void record_outcome(std::size_t cloud, const RetryOutcome& outcome, ErrorCode final);

  /// Books one proven misbehavior incident against cloud i's ledger and
  /// alarms through metrics + a span (the quarantine decision lives in the
  /// HealthTracker).
  void flag_misbehavior(std::size_t cloud, MisbehaviorKind kind, const std::string& unit);

  /// Registry handles resolved once at construction (hot-path friendly).
  struct ObsHandles {
    obs::Counter* attempts = nullptr;
    obs::Counter* retries = nullptr;
    obs::Counter* deadline_hits = nullptr;
    obs::Counter* breaker_skips = nullptr;
    obs::Counter* forced_probes = nullptr;
    std::vector<obs::Counter*> put_data_bytes;  // per cloud, acked data puts
    std::vector<obs::Counter*> put_data_acks;   // per cloud
  };

  DepSkyConfig config_;
  VersionWitnessPtr witness_;
  crypto::Drbg drbg_;
  // unique_ptr: HealthTracker owns a mutex and cannot live in a resizable
  // vector by value.
  std::vector<std::unique_ptr<HealthTracker>> health_;  // one breaker per cloud
  Rng backoff_rng_;                    // jitter stream for retry backoff
  mutable std::mutex stats_mu_;        // guards stats_ (branches update it)
  ResilienceStats stats_;
  ObsHandles obs_;
};

}  // namespace rockfs::depsky
