// DepSky cloud-of-clouds storage client (paper §5.1, after Bessani et al.
// EuroSys'11). Stores each *data unit* across n = 3f+1 clouds so that it
// survives f cloud failures or corruptions:
//
//   protocol A  — full replica at every cloud (n x storage)
//   protocol CA — data encrypted under a fresh AES-256 key, the key split
//                 with Shamir (f+1 of n), the ciphertext erasure-coded with
//                 Reed-Solomon (k = f+1 of n)  =>  n/k = 2x storage for f=1
//
// Every unit carries signed, versioned metadata (metadata.h). Writes push
// shares to all clouds in parallel and complete at the (n-f)-th ack; reads
// accept the highest-version valid metadata and the fastest f+1 digest-valid
// shares. Like every simulated component, operations return sim::Timed and
// never advance the clock themselves.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cloud/provider.h"
#include "common/result.h"
#include "crypto/drbg.h"
#include "crypto/signature.h"
#include "depsky/metadata.h"
#include "sim/timed.h"

namespace rockfs::depsky {

struct DepSkyConfig {
  std::vector<cloud::CloudProviderPtr> clouds;  // n = 3f+1 providers
  std::size_t f = 1;
  Protocol protocol = Protocol::kCA;
  crypto::KeyPair writer;  // signs unit metadata
  /// Readers accept metadata from these signers (the writer's own public key
  /// is always trusted). RockFS adds the administrator here so that files
  /// re-uploaded during recovery remain readable by the user.
  std::vector<Bytes> trusted_writers;
};

class DepSkyClient {
 public:
  DepSkyClient(DepSkyConfig config, BytesView drbg_seed);

  std::size_t n() const noexcept { return config_.clouds.size(); }
  const DepSkyConfig& config() const noexcept { return config_; }
  std::size_t f() const noexcept { return config_.f; }
  /// Erasure/secret-sharing threshold: f+1 shares reconstruct.
  std::size_t k() const noexcept { return config_.f + 1; }
  Protocol protocol() const noexcept { return config_.protocol; }

  /// Writes a new version of `unit`. `tokens[i]` authenticates at cloud i.
  sim::Timed<Status> write(const std::vector<cloud::AccessToken>& tokens,
                           const std::string& unit, BytesView data);

  /// Reads the latest version of `unit`.
  sim::Timed<Result<Bytes>> read(const std::vector<cloud::AccessToken>& tokens,
                                 const std::string& unit);

  /// Reads a unit whose shares were moved to cold storage (admin-only,
  /// Glacier-class latency). Metadata must still be hot.
  sim::Timed<Result<Bytes>> read_archived(const std::vector<cloud::AccessToken>& tokens,
                                          const std::string& unit);

  /// Reads the unit's current version number (0 = does not exist).
  sim::Timed<Result<std::uint64_t>> head_version(
      const std::vector<cloud::AccessToken>& tokens, const std::string& unit);

  /// Deletes all objects of `unit` (files only; the log namespace refuses).
  sim::Timed<Status> remove(const std::vector<cloud::AccessToken>& tokens,
                            const std::string& unit);

  /// Proactive redundancy repair: verifies every share of `unit` against the
  /// metadata digests and re-creates missing or corrupt ones from the valid
  /// k. In the append-only log namespace, *lost* shares can be re-created
  /// (a create is an append) but corrupt ones cannot be overwritten — they
  /// are reported instead.
  struct RepairReport {
    std::size_t shares_ok = 0;
    std::size_t shares_repaired = 0;
    std::size_t shares_unrepairable = 0;  // corrupt but not overwritable
  };
  sim::Timed<Result<RepairReport>> repair(const std::vector<cloud::AccessToken>& tokens,
                                          const std::string& unit);

 private:
  struct MetadataFetch {
    Result<UnitMetadata> metadata;
    sim::SimClock::Micros delay = 0;
  };

  /// Highest-version valid metadata over an (n-f) quorum.
  MetadataFetch fetch_metadata(const std::vector<cloud::AccessToken>& tokens,
                               const std::string& unit);
  /// Whether the metadata is signed by any trusted writer.
  bool trusted(const UnitMetadata& meta) const;
  /// Shared body of read / read_archived.
  sim::Timed<Result<Bytes>> read_impl(const std::vector<cloud::AccessToken>& tokens,
                                      const std::string& unit, bool cold);

  static std::string metadata_key(const std::string& unit);
  static std::string share_key(const std::string& unit, std::uint64_t version,
                               std::size_t cloud_index);

  DepSkyConfig config_;
  crypto::Drbg drbg_;
};

}  // namespace rockfs::depsky
