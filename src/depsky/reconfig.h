// Cloud-set membership reconfiguration (the operational answer to a
// quarantined cloud). The administrator publishes a signed MembershipManifest
// — old cloud set, new cloud set, which slot changed, and a monotonically
// increasing membership epoch — through the coordination service's CAS, so
// exactly one manifest wins each epoch no matter how many admins race.
// Clients learn the current membership by reading back the highest-epoch
// manifest that verifies under the admin key, then fail writes closed
// (kFenced) whenever a unit's metadata carries a newer epoch than they know.
//
// The share-migration pipeline itself lives in rockfs/deployment
// (reconfigure_cloud): it walks every affected unit, rebuilds the replaced
// cloud's share onto the spare via DepSkyClient::repair, stamps the new
// epoch into the unit metadata, and records a per-unit done-marker tuple
// here so a crashed migration resumes exactly where it died.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "coord/service.h"
#include "crypto/signature.h"
#include "sim/timed.h"

namespace rockfs::depsky {

struct MembershipManifest {
  std::uint64_t epoch = 0;                // 0 is the initial set; manifests start at 1
  std::vector<std::string> old_clouds;    // provider names, slot order
  std::vector<std::string> new_clouds;    // same length; one slot differs
  std::size_t replaced_index = 0;         // the slot that changed
  Bytes admin_pub;                        // signer (the deployment admin)
  Bytes signature;

  Bytes signing_payload() const;
  coord::Tuple to_tuple() const;
  static Result<MembershipManifest> from_tuple(const coord::Tuple& t);
};

MembershipManifest make_membership_manifest(std::uint64_t epoch,
                                            std::vector<std::string> old_clouds,
                                            std::vector<std::string> new_clouds,
                                            std::size_t replaced_index,
                                            const crypto::KeyPair& admin_keys);

bool verify_membership_manifest(const MembershipManifest& m, BytesView admin_public_key);

/// CAS-publish keyed on the epoch: returns true when this manifest won the
/// epoch, false when some manifest (possibly an identical retry) already
/// holds it.
sim::Timed<Result<bool>> publish_membership_manifest(coord::CoordinationService& coord,
                                                     const MembershipManifest& m);

/// Every published manifest, ascending epoch. Tuples that fail to parse are
/// an error (the space is admin-written; garbage means corruption).
sim::Timed<Result<std::vector<MembershipManifest>>> read_membership_manifests(
    coord::CoordinationService& coord);

/// The highest-epoch manifest that verifies under `admin_public_key`;
/// nullopt when no reconfiguration has ever been published (epoch 0, the
/// initial cloud set, is implicit).
sim::Timed<Result<std::optional<MembershipManifest>>> current_membership(
    coord::CoordinationService& coord, BytesView admin_public_key);

// ---- per-unit migration done-markers (crash-resumable pipeline) ----

/// Durably records that `unit` has been fully migrated (share rebuilt on the
/// new set + epoch stamped) under membership `epoch`. Idempotent.
sim::Timed<Status> mark_unit_migrated(coord::CoordinationService& coord,
                                      std::uint64_t epoch, const std::string& unit);

/// Whether `unit` already carries a done-marker for `epoch` (resume check).
sim::Timed<Result<bool>> unit_migrated(coord::CoordinationService& coord,
                                       std::uint64_t epoch, const std::string& unit);

}  // namespace rockfs::depsky
