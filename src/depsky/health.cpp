#include "depsky/health.h"

#include <stdexcept>

namespace rockfs::depsky {

const char* misbehavior_kind_name(MisbehaviorKind k) {
  switch (k) {
    case MisbehaviorKind::kRollback: return "rollback";
    case MisbehaviorKind::kEquivocation: return "equivocation";
    case MisbehaviorKind::kWithheldShare: return "withheld_share";
  }
  return "unknown";
}

HealthTracker::HealthTracker(sim::SimClockPtr clock, HealthOptions options,
                             std::string label)
    : clock_(std::move(clock)),
      options_(options),
      opened_counter_(
          &obs::metrics().counter(obs::metric_key("depsky.breaker.opened", label))),
      misbehavior_counter_(
          &obs::metrics().counter(obs::metric_key("depsky.misbehavior", label))),
      quarantined_counter_(
          &obs::metrics().counter(obs::metric_key("depsky.quarantined", label))) {
  if (!clock_) throw std::invalid_argument("HealthTracker: null clock");
  if (options_.failure_threshold < 1 || options_.half_open_successes < 1 ||
      options_.withheld_share_threshold < 1) {
    throw std::invalid_argument("HealthTracker: thresholds must be >= 1");
  }
}

std::uint64_t HealthTracker::misbehavior_total() const noexcept {
  std::uint64_t total = 0;
  for (const auto& c : misbehavior_counts_) total += c.load(std::memory_order_relaxed);
  return total;
}

void HealthTracker::record_misbehavior(MisbehaviorKind kind) {
  const std::uint64_t count =
      misbehavior_counts_[static_cast<std::size_t>(kind)].fetch_add(
          1, std::memory_order_relaxed) +
      1;
  misbehavior_counter_->add();
  const bool condemns =
      kind != MisbehaviorKind::kWithheldShare ||
      count >= static_cast<std::uint64_t>(options_.withheld_share_threshold);
  if (condemns && !quarantined_.exchange(true, std::memory_order_relaxed)) {
    quarantined_counter_->add();
  }
}

HealthTracker::State HealthTracker::effective_state_locked() const {
  if (state_ == State::kOpen &&
      clock_->now_us() >= opened_at_us_ + options_.open_cooldown_us) {
    return State::kHalfOpen;
  }
  return state_;
}

HealthTracker::State HealthTracker::state() const {
  std::lock_guard<std::mutex> lk(mu_);
  return effective_state_locked();
}

void HealthTracker::record_success() {
  std::lock_guard<std::mutex> lk(mu_);
  switch (effective_state_locked()) {
    case State::kClosed:
      consecutive_failures_ = 0;
      break;
    case State::kOpen:      // a successful forced probe counts like a probe
    case State::kHalfOpen:
      if (++probe_successes_ >= options_.half_open_successes) {
        state_ = State::kClosed;
        consecutive_failures_ = 0;
        probe_successes_ = 0;
      }
      break;
  }
}

void HealthTracker::record_failure() {
  std::lock_guard<std::mutex> lk(mu_);
  switch (effective_state_locked()) {
    case State::kClosed:
      if (++consecutive_failures_ >= options_.failure_threshold) {
        state_ = State::kOpen;
        opened_at_us_ = clock_->now_us();
        probe_successes_ = 0;
        ++times_opened_;
        opened_counter_->add();
      }
      break;
    case State::kHalfOpen:
      // A failed probe re-opens the breaker for a fresh cooldown.
      state_ = State::kOpen;
      opened_at_us_ = clock_->now_us();
      probe_successes_ = 0;
      ++times_opened_;
      opened_counter_->add();
      break;
    case State::kOpen:
      // A failed forced probe pushes the half-open transition back.
      opened_at_us_ = clock_->now_us();
      probe_successes_ = 0;
      break;
  }
}

}  // namespace rockfs::depsky
