#include "depsky/client.h"

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <utility>

#include "crypto/aes.h"
#include "crypto/sha256.h"
#include "erasure/reed_solomon.h"
#include "obs/trace.h"
#include "secretshare/shamir.h"

namespace rockfs::depsky {

namespace {

// Runs body(j, cancel) for j in [0, count) — inline when `exec` is null or
// serial, else on the pool — and returns the QuorumJoin snapshot. The same
// join/trace machinery executes either way: per-branch spans land in
// TaskTrace buffers spliced back in branch-index order after the join, so a
// seeded run's trace dump is byte-identical at any thread count. `goal` only
// arms the first-quorum freeze in kFirstQuorum mode; kBarrier includes every
// branch.
template <typename T, typename Body, typename Ok>
typename common::QuorumJoin<T>::Snapshot fan_out(common::Executor* exec,
                                                 common::JoinMode mode,
                                                 std::size_t count, std::size_t goal,
                                                 Body&& body, Ok&& ok) {
  std::vector<obs::TaskTrace> traces;
  traces.reserve(count);
  for (std::size_t j = 0; j < count; ++j) traces.push_back(obs::tracer().make_task());
  common::InlineExecutor inline_exec;
  common::Executor& where =
      (exec != nullptr && exec->concurrency() > 1) ? *exec : inline_exec;
  const std::size_t armed_goal = mode == common::JoinMode::kFirstQuorum ? goal : 0;
  common::QuorumJoin<T> join(count, armed_goal);
  for (std::size_t j = 0; j < count; ++j) {
    join.launch(
        where, j,
        [j, &body, &traces](const common::CancelToken& cancel) {
          obs::TaskBinding bind(&traces[j]);
          return body(j, cancel);
        },
        ok);
  }
  auto snap = join.wait();
  obs::tracer().splice(traces);
  for (const std::exception_ptr& err : snap.errors) {
    if (err) std::rethrow_exception(err);
  }
  return snap;
}

// Per-cloud share blob for protocol CA: erasure shard + Shamir key share.
Bytes encode_ca_blob(BytesView shard, const secretshare::ShamirShare& key_share) {
  Bytes out;
  append_lp(out, shard);
  append_lp(out, key_share.serialize());
  return out;
}

struct CaBlob {
  Bytes shard;
  secretshare::ShamirShare key_share;
};

Result<CaBlob> decode_ca_blob(BytesView blob) {
  try {
    std::size_t off = 0;
    CaBlob out;
    out.shard = read_lp(blob, &off);
    auto share = secretshare::ShamirShare::deserialize(read_lp(blob, &off));
    if (!share.ok()) return share.error();
    out.key_share = std::move(*share);
    if (off != blob.size()) return Error{ErrorCode::kCorrupted, "ca blob: trailing bytes"};
    return out;
  } catch (const std::exception& e) {
    return Error{ErrorCode::kCorrupted, std::string("ca blob: ") + e.what()};
  }
}

}  // namespace

DepSkyClient::DepSkyClient(DepSkyConfig config, BytesView drbg_seed)
    : config_(std::move(config)),
      witness_(config_.witness ? config_.witness : std::make_shared<VersionWitness>()),
      drbg_(drbg_seed, to_bytes("depsky-client")),
      // Fixed seed: the jitter stream must not consume from drbg_ (that would
      // shift the AES key schedule) and need not vary between clients — the
      // per-cloud providers already decorrelate timing.
      backoff_rng_(0x5DEECE66DULL) {
  if (config_.clouds.size() < 3 * config_.f + 1) {
    throw std::invalid_argument("DepSkyClient: need n >= 3f+1 clouds");
  }
  health_.reserve(config_.clouds.size());
  for (const auto& cloud : config_.clouds) {
    health_.push_back(
        std::make_unique<HealthTracker>(cloud->clock(), config_.health, cloud->name()));
  }
  auto& reg = obs::metrics();
  obs_.attempts = &reg.counter("depsky.attempts");
  obs_.retries = &reg.counter("depsky.retries");
  obs_.deadline_hits = &reg.counter("depsky.deadline_hits");
  obs_.breaker_skips = &reg.counter("depsky.breaker.skips");
  obs_.forced_probes = &reg.counter("depsky.forced_probes");
  for (const auto& cloud : config_.clouds) {
    obs_.put_data_bytes.push_back(
        &reg.counter(obs::metric_key("depsky.put.data.bytes", cloud->name())));
    obs_.put_data_acks.push_back(
        &reg.counter(obs::metric_key("depsky.put.data.acks", cloud->name())));
  }
  const Bytes own = config_.writer.public_bytes();
  bool has_own = false;
  for (const Bytes& w : config_.trusted_writers) has_own = has_own || ct_equal(w, own);
  if (!has_own) config_.trusted_writers.push_back(own);
}

std::vector<std::size_t> DepSkyClient::contact_set() {
  std::vector<std::size_t> allowed;
  std::vector<std::size_t> open;
  for (std::size_t i = 0; i < n(); ++i) {
    // Quarantined clouds are out of the quorum entirely: unlike breaker-open
    // clouds they are never conscripted, because a proven liar answering a
    // forced probe is worse than no answer at all.
    if (health_[i]->quarantined()) continue;
    if (health_[i]->allow_request()) {
      allowed.push_back(i);
    } else {
      open.push_back(i);
    }
  }
  // The breaker is only an optimization: if skipping open clouds would make
  // an (n-f) quorum unreachable, conscript them as forced probes so the
  // breaker can never cause a failure that would not otherwise happen.
  const std::size_t quorum = n() - f();
  std::size_t probes = 0;
  for (std::size_t j = 0; allowed.size() < quorum && j < open.size(); ++j) {
    allowed.push_back(open[j]);
    ++probes;
    obs_.forced_probes->add();
  }
  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    stats_.forced_probes += probes;
    stats_.breaker_skips += n() - allowed.size();
  }
  obs_.breaker_skips->add(n() - allowed.size());
  std::sort(allowed.begin(), allowed.end());
  return allowed;
}

void DepSkyClient::record_outcome(std::size_t cloud, const RetryOutcome& outcome,
                                  ErrorCode final) {
  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    stats_.attempts += static_cast<std::uint64_t>(outcome.attempts);
    stats_.retries += static_cast<std::uint64_t>(outcome.attempts - 1);
    if (outcome.deadline_exhausted) ++stats_.deadline_hits;
  }
  obs_.attempts->add(static_cast<std::uint64_t>(outcome.attempts));
  obs_.retries->add(static_cast<std::uint64_t>(outcome.attempts - 1));
  if (outcome.deadline_exhausted) obs_.deadline_hits->add();
  // Only transport-class failures count against the breaker: kNotFound,
  // kPermissionDenied etc. mean the cloud answered and is healthy.
  if (final == ErrorCode::kUnavailable || final == ErrorCode::kTimeout) {
    health_[cloud]->record_failure();
  } else {
    health_[cloud]->record_success();
  }
}

void DepSkyClient::flag_misbehavior(std::size_t cloud, MisbehaviorKind kind,
                                    const std::string& unit) {
  health_[cloud]->record_misbehavior(kind);
  obs::metrics()
      .counter(obs::metric_key(std::string("depsky.detect.") + misbehavior_kind_name(kind),
                               config_.clouds[cloud]->name()))
      .add();
  obs::Span span = obs::tracer().span("depsky.misbehavior");
  span.set_label(config_.clouds[cloud]->name() + ":" + misbehavior_kind_name(kind) +
                 ":" + unit);
  span.set_outcome(kind == MisbehaviorKind::kEquivocation ? ErrorCode::kEquivocation
                                                          : ErrorCode::kStaleVersion);
}

sim::Timed<Result<Bytes>> DepSkyClient::guarded_get(std::size_t i,
                                                    const cloud::AccessToken& token,
                                                    const std::string& key,
                                                    std::uint64_t backoff_seed,
                                                    const common::CancelToken& cancel) {
  obs::Span span = obs::tracer().span("depsky.get");
  span.set_label(config_.clouds[i]->name());
  RetryOutcome outcome;
  auto timed = retry_timed(
      config_.retry, backoff_seed,
      [&] { return config_.clouds[i]->get(token, key); }, &outcome);
  if (config_.emulate_latency) config_.emulate_latency(timed.delay, cancel);
  record_outcome(i, outcome, timed.value.code());
  span.set_duration(static_cast<std::uint64_t>(timed.delay));
  // Provider attempts are this span's serial children; only the retry
  // backoff pauses are this layer's own (exclusive) time.
  span.charge_child(static_cast<std::uint64_t>(timed.delay - outcome.backoff_us));
  span.set_retries(static_cast<std::uint32_t>(outcome.attempts - 1));
  span.set_outcome(timed.value.code());
  return timed;
}

sim::Timed<Status> DepSkyClient::guarded_put(std::size_t i, const cloud::AccessToken& token,
                                             const std::string& key, BytesView data,
                                             std::uint64_t backoff_seed,
                                             const common::CancelToken& cancel) {
  obs::Span span = obs::tracer().span("depsky.put");
  span.set_label(config_.clouds[i]->name());
  RetryOutcome outcome;
  auto timed = retry_timed(
      config_.retry, backoff_seed,
      [&] { return config_.clouds[i]->put(token, key, data); }, &outcome);
  if (config_.emulate_latency) config_.emulate_latency(timed.delay, cancel);
  record_outcome(i, outcome, timed.value.code());
  span.set_duration(static_cast<std::uint64_t>(timed.delay));
  span.charge_child(static_cast<std::uint64_t>(timed.delay - outcome.backoff_us));
  span.set_retries(static_cast<std::uint32_t>(outcome.attempts - 1));
  span.set_bytes(data.size());
  span.set_outcome(timed.value.code());
  return timed;
}

DepSkyClient::QuorumPutResult DepSkyClient::quorum_put(
    const std::vector<cloud::AccessToken>& tokens, const std::vector<std::string>& keys,
    const std::vector<BytesView>& blobs, const char* phase) {
  obs::Span group = obs::tracer().span("depsky.put_quorum", {.fanout = true});
  group.set_label(phase);
  const bool data_phase = std::string_view(phase) == "data";
  QuorumPutResult result;
  result.acked.assign(n(), false);
  std::vector<sim::SimClock::Micros> delays;
  std::vector<std::pair<std::size_t, ErrorCode>> failures;
  const auto push = [&](std::size_t i, sim::Timed<Status>&& put) {
    delays.push_back(put.delay);
    if (put.value.ok()) {
      ++result.acks;
      result.acked[i] = true;
      if (data_phase) {
        // Acked data puts feed the byte-conservation invariant checked by
        // the property tests: sum(bytes) == blob size x sum(acks).
        obs_.put_data_bytes[i]->add(blobs[i].size());
        obs_.put_data_acks[i]->add();
      }
    } else {
      failures.emplace_back(i, put.value.code());
    }
  };

  const std::size_t quorum = n() - f();
  const auto contacted = contact_set();
  // Jitter seeds pre-drawn in contact order: the stream consumed is the same
  // whether the branches then run inline or on N pool threads.
  std::vector<std::uint64_t> seeds;
  seeds.reserve(contacted.size());
  for (std::size_t j = 0; j < contacted.size(); ++j) {
    seeds.push_back(backoff_rng_.next_u64());
  }
  auto round = fan_out<sim::Timed<Status>>(
      config_.executor.get(), config_.join_mode, contacted.size(), quorum,
      [&](std::size_t j, const common::CancelToken& cancel) {
        const std::size_t i = contacted[j];
        return guarded_put(i, tokens[i], keys[i], blobs[i], seeds[j], cancel);
      },
      [](const sim::Timed<Status>& put) { return put.value.ok(); });
  // Ingest in ascending contact order, counting only included branches — a
  // straggler landing after a first-quorum freeze contributes neither acks
  // nor put.data.{bytes,acks} (the double-count property test's invariant).
  for (std::size_t j = 0; j < contacted.size(); ++j) {
    if (!round.included[j] || !round.results[j].has_value()) continue;
    push(contacted[j], std::move(*round.results[j]));
  }
  // Degraded fallback round over breaker-skipped clouds if the quorum is
  // still short (their completion times start after round one resolves).
  if (result.acks < quorum && contacted.size() < n()) {
    const auto round1 = sim::parallel_delay(delays);
    const common::CancelToken no_cancel;
    for (std::size_t i = 0; i < n(); ++i) {
      if (std::find(contacted.begin(), contacted.end(), i) != contacted.end()) continue;
      if (health_[i]->quarantined()) continue;
      auto put = guarded_put(i, tokens[i], keys[i], blobs[i],
                             backoff_rng_.next_u64(), no_cancel);
      put.delay += round1;
      {
        std::lock_guard<std::mutex> lk(stats_mu_);
        ++stats_.forced_probes;
      }
      obs_.forced_probes->add();
      push(i, std::move(put));
    }
  }

  result.delay = delays.size() >= n() - f() ? sim::quorum_delay(delays, n() - f())
                                            : sim::parallel_delay(delays);
  group.set_duration(static_cast<std::uint64_t>(result.delay));
  std::sort(failures.begin(), failures.end());
  for (const auto& [i, code] : failures) {
    if (!result.failure_detail.empty()) result.failure_detail += ", ";
    result.failure_detail += "cloud-" + std::to_string(i) + "=" + error_code_name(code);
  }
  return result;
}

bool DepSkyClient::trusted(const UnitMetadata& meta) const {
  for (const Bytes& w : config_.trusted_writers) {
    if (meta.verify(w)) return true;
  }
  return false;
}

std::string DepSkyClient::metadata_key(const std::string& unit) { return unit + ".meta"; }

std::string DepSkyClient::share_key(const std::string& unit, std::uint64_t version,
                                    std::size_t cloud_index) {
  return unit + ".v" + std::to_string(version) + ".s" + std::to_string(cloud_index);
}

DepSkyClient::MetadataFetch DepSkyClient::fetch_metadata(
    const std::vector<cloud::AccessToken>& tokens, const std::string& unit) {
  // Query every contactable cloud in parallel; a quorum of n-f responses
  // (found or definitive not-found) settles the answer. Deserialization and
  // signature verification run inside each branch (so ECDSA verifies
  // overlap on the pool); the highest-version selection happens post-join
  // in ascending cloud order so it is schedule-independent.
  obs::Span group = obs::tracer().span("depsky.meta_fetch", {.fanout = true});
  struct MetaProbe {
    sim::SimClock::Micros delay = 0;
    bool responded = false;  // found or definitive not-found
    std::optional<UnitMetadata> meta;
  };
  std::vector<sim::SimClock::Micros> delays;
  UnitMetadata best;
  bool found = false;
  std::size_t responses = 0;
  const auto ingest = [&](std::size_t i, MetaProbe&& probe) {
    delays.push_back(probe.delay);
    if (probe.responded) ++responses;
    if (probe.meta) {
      // Freshness check against the witness: a cloud answering below its own
      // provable mark is lying (an honest cloud that merely missed a write
      // never has a mark above what it stores). kNotFound is deliberately
      // NOT checked — remove/recreate makes it legitimate.
      const std::string& cname = config_.clouds[i]->name();
      if (const auto mark = witness_->meta_mark(unit, cname);
          mark && probe.meta->version < mark->version) {
        flag_misbehavior(i,
                         mark->session == config_.session
                             ? MisbehaviorKind::kRollback
                             : MisbehaviorKind::kEquivocation,
                         unit);
      } else {
        witness_->record_meta(unit, cname, probe.meta->version, config_.session);
      }
      // Equal versions tie-break on membership epoch so a freshly-stamped
      // copy beats a not-yet-migrated one (reconfig.h fencing depends on it).
      if (!found || probe.meta->version > best.version ||
          (probe.meta->version == best.version &&
           probe.meta->membership_epoch > best.membership_epoch)) {
        best = std::move(*probe.meta);
        found = true;
      }
    }
  };
  const auto probe_cloud = [&](std::size_t i, std::uint64_t seed,
                               const common::CancelToken& cancel) {
    MetaProbe probe;
    auto got = guarded_get(i, tokens[i], metadata_key(unit), seed, cancel);
    probe.delay = got.delay;
    if (got.value.ok()) {
      probe.responded = true;
      auto meta = UnitMetadata::deserialize(*got.value);
      if (meta.ok() && meta->unit == unit && trusted(*meta) &&
          meta->share_digests.size() == n()) {
        probe.meta = std::move(*meta);
      }
    } else if (got.value.code() == ErrorCode::kNotFound) {
      probe.responded = true;
    }
    return probe;
  };

  const std::size_t quorum = n() - f();
  const auto contacted = contact_set();
  std::vector<std::uint64_t> seeds;
  seeds.reserve(contacted.size());
  for (std::size_t j = 0; j < contacted.size(); ++j) {
    seeds.push_back(backoff_rng_.next_u64());
  }
  auto round = fan_out<MetaProbe>(
      config_.executor.get(), config_.join_mode, contacted.size(), quorum,
      [&](std::size_t j, const common::CancelToken& cancel) {
        return probe_cloud(contacted[j], seeds[j], cancel);
      },
      [](const MetaProbe& probe) { return probe.responded; });
  for (std::size_t j = 0; j < contacted.size(); ++j) {
    if (!round.included[j] || !round.results[j].has_value()) continue;
    ingest(contacted[j], std::move(*round.results[j]));
  }
  // Degraded fallback: if the first round missed the quorum and the breaker
  // held clouds back, try those too (sequenced after round one completes).
  if (responses < quorum && contacted.size() < n()) {
    const auto round1 = sim::parallel_delay(delays);
    const common::CancelToken no_cancel;
    for (std::size_t i = 0; i < n(); ++i) {
      if (std::find(contacted.begin(), contacted.end(), i) != contacted.end()) continue;
      if (health_[i]->quarantined()) continue;
      auto probe = probe_cloud(i, backoff_rng_.next_u64(), no_cancel);
      probe.delay += round1;
      {
        std::lock_guard<std::mutex> lk(stats_mu_);
        ++stats_.forced_probes;
      }
      obs_.forced_probes->add();
      ingest(i, std::move(probe));
    }
  }

  const auto delay = delays.size() >= n() - f()
                         ? sim::quorum_delay(delays, n() - f())
                         : sim::parallel_delay(delays);
  group.set_duration(static_cast<std::uint64_t>(delay));
  if (responses < n() - f()) {
    group.set_outcome(ErrorCode::kUnavailable);
    return {Error{ErrorCode::kUnavailable, "depsky: metadata quorum unavailable"}, delay};
  }
  if (!found) {
    group.set_outcome(ErrorCode::kNotFound);
    return {Error{ErrorCode::kNotFound, "depsky: no such unit: " + unit}, delay};
  }
  // Unit-level high-water mark: even a quorum cannot serve below a version
  // this deployment has already confirmed. With honest majorities the
  // per-cloud checks above fire first; reaching here means > f clouds
  // collude, which must surface as an error, never as silently old data.
  if (const auto umark = witness_->unit_mark(unit);
      umark && best.version < umark->version) {
    group.set_outcome(ErrorCode::kStaleVersion);
    return {Error{ErrorCode::kStaleVersion,
                  "depsky: quorum served version " + std::to_string(best.version) +
                      " below witnessed high-water mark " +
                      std::to_string(umark->version) + " for unit " + unit},
            delay};
  }
  witness_->record_unit(unit, best.version, config_.session);
  return {std::move(best), delay};
}

sim::Timed<Result<std::uint64_t>> DepSkyClient::head_version(
    const std::vector<cloud::AccessToken>& tokens, const std::string& unit) {
  auto fetched = fetch_metadata(tokens, unit);
  if (!fetched.metadata.ok()) {
    if (fetched.metadata.code() == ErrorCode::kNotFound) {
      return {std::uint64_t{0}, fetched.delay};
    }
    return {Error{fetched.metadata.error()}, fetched.delay};
  }
  return {fetched.metadata->version, fetched.delay};
}

sim::Timed<Status> DepSkyClient::write(const std::vector<cloud::AccessToken>& tokens,
                                       const std::string& unit, BytesView data) {
  if (tokens.size() != n()) {
    return {Status{ErrorCode::kInvalidArgument, "depsky write: one token per cloud"}, 0};
  }
  obs::Span span = obs::tracer().span("depsky.write");
  span.set_bytes(data.size());
  sim::SimClock::Micros total_delay = 0;

  // Phase 1: find the current version (skippable only if the caller knows it).
  auto head = fetch_metadata(tokens, unit);
  total_delay += head.delay;
  span.charge_child(static_cast<std::uint64_t>(head.delay));
  std::uint64_t old_version = 0;
  if (head.metadata.ok()) {
    old_version = head.metadata->version;
    // Membership fencing: the unit was migrated to a newer cloud set than
    // this client knows about. Writing through the old set could land shares
    // on a removed (possibly quarantined) cloud, so fail closed — the caller
    // must re-learn the current membership (depsky/reconfig.h) first.
    if (head.metadata->membership_epoch > config_.membership_epoch) {
      span.set_duration(static_cast<std::uint64_t>(total_delay));
      span.set_outcome(ErrorCode::kFenced);
      return {Status{ErrorCode::kFenced,
                     "depsky write: unit at membership epoch " +
                         std::to_string(head.metadata->membership_epoch) +
                         ", client configured for epoch " +
                         std::to_string(config_.membership_epoch)},
              total_delay};
    }
  } else if (head.metadata.code() != ErrorCode::kNotFound) {
    span.set_duration(static_cast<std::uint64_t>(total_delay));
    span.set_outcome(head.metadata.code());
    return {Status{head.metadata.error()}, total_delay};
  }
  const std::uint64_t version = old_version + 1;

  // Phase 2: build the per-cloud blobs. The erasure rows and the per-share
  // blob assembly run per-share on the executor (disjoint output slots, so
  // the bytes are identical to the sequential path); the AES stream and the
  // Shamir split stay on the coordinator because they consume drbg_.
  common::Executor* exec = config_.executor.get();
  std::vector<Bytes> blobs(n());
  if (config_.protocol == Protocol::kA) {
    for (auto& b : blobs) b.assign(data.begin(), data.end());
  } else {
    const Bytes key = drbg_.generate_key();
    const Bytes iv = drbg_.generate_iv();
    Bytes ciphertext = crypto::aes256_ctr(key, iv, data);
    // Prepend the IV to the ciphertext so readers can decrypt.
    Bytes sealed = concat({iv, ciphertext});
    const erasure::ReedSolomon rs(k(), n());
    const auto shards = rs.encode(sealed, exec);
    const auto key_shares = secretshare::shamir_share(key, k(), n(), drbg_);
    common::parallel_for_index(exec, n(), [&](std::size_t i) {
      blobs[i] = encode_ca_blob(shards[i].data, key_shares[i]);
    });
  }

  // Phase 3: metadata (per-share digests computed concurrently, slot-per-
  // index, so the metadata bytes are schedule-independent).
  UnitMetadata meta;
  meta.unit = unit;
  meta.version = version;
  meta.membership_epoch = config_.membership_epoch;
  meta.protocol = config_.protocol;
  meta.data_size = config_.protocol == Protocol::kA
                       ? data.size()
                       : data.size() + crypto::Aes256::kBlockSize;  // + IV
  meta.share_digests.resize(n());
  common::parallel_for_index(
      exec, n(), [&](std::size_t i) { meta.share_digests[i] = crypto::sha256(blobs[i]); });
  meta.sign(config_.writer);
  const Bytes meta_bytes = meta.serialize();

  // Phase 4: push shares to all contactable clouds in parallel (with
  // per-cloud retry); (n-f) acks complete it.
  std::vector<std::string> share_keys;
  std::vector<BytesView> share_views;
  for (std::size_t i = 0; i < n(); ++i) {
    share_keys.push_back(share_key(unit, version, i));
    share_views.emplace_back(blobs[i]);
  }
  auto shares_put = quorum_put(tokens, share_keys, share_views, "data");
  total_delay += shares_put.delay;
  span.charge_child(static_cast<std::uint64_t>(shares_put.delay));
  if (shares_put.acks < n() - f()) {
    span.set_duration(static_cast<std::uint64_t>(total_delay));
    span.set_outcome(ErrorCode::kUnavailable);
    return {Status{ErrorCode::kUnavailable,
                   "depsky write: share quorum unavailable (" +
                       std::to_string(shares_put.acks) + "/" +
                       std::to_string(n() - f()) + " acks; " +
                       shares_put.failure_detail + ")"},
            total_delay};
  }
  // Every acked share upload is a witness mark: the cloud provably knows
  // this version and can never again claim the share "was never uploaded".
  for (std::size_t i = 0; i < n(); ++i) {
    if (shares_put.acked[i]) {
      witness_->record_share(unit, config_.clouds[i]->name(), version);
    }
  }

  // Phase 5: metadata last, so readers never see a version whose shares are
  // not yet stable (the paper's §2.5 ordering argument).
  const std::vector<std::string> meta_keys(n(), metadata_key(unit));
  const std::vector<BytesView> meta_views(n(), BytesView(meta_bytes));
  auto meta_put = quorum_put(tokens, meta_keys, meta_views, "meta");
  total_delay += meta_put.delay;
  span.charge_child(static_cast<std::uint64_t>(meta_put.delay));
  if (meta_put.acks < n() - f()) {
    span.set_duration(static_cast<std::uint64_t>(total_delay));
    span.set_outcome(ErrorCode::kUnavailable);
    return {Status{ErrorCode::kUnavailable,
                   "depsky write: metadata quorum unavailable (" +
                       std::to_string(meta_put.acks) + "/" +
                       std::to_string(n() - f()) + " acks; " +
                       meta_put.failure_detail + ")"},
            total_delay};
  }
  // Metadata acks pin each cloud's mark at the new version; the quorum
  // confirms the unit-level high-water mark.
  for (std::size_t i = 0; i < n(); ++i) {
    if (meta_put.acked[i]) {
      witness_->record_meta(unit, config_.clouds[i]->name(), version, config_.session);
    }
  }
  witness_->record_unit(unit, version, config_.session);

  // Garbage-collect the previous version's shares in the background (no
  // latency charge; deletes are not on the critical path). Log-namespace
  // units never reach here with an old version, and file deletes may be
  // refused during outages — both are harmless leftovers.
  if (old_version != 0) {
    // Zero-duration fanout group: the removes show up in the trace but
    // contribute nothing to the write's accounted time.
    obs::Span gc = obs::tracer().span("depsky.gc", {.fanout = true});
    for (std::size_t i = 0; i < n(); ++i) {
      (void)config_.clouds[i]->remove(tokens[i], share_key(unit, old_version, i));
    }
  }
  span.set_duration(static_cast<std::uint64_t>(total_delay));
  return {Status::Ok(), total_delay};
}

sim::Timed<Result<Bytes>> DepSkyClient::read(const std::vector<cloud::AccessToken>& tokens,
                                             const std::string& unit) {
  return read_impl(tokens, unit, /*cold=*/false);
}

sim::Timed<Result<Bytes>> DepSkyClient::read_archived(
    const std::vector<cloud::AccessToken>& tokens, const std::string& unit) {
  return read_impl(tokens, unit, /*cold=*/true);
}

sim::Timed<Result<Bytes>> DepSkyClient::read_impl(
    const std::vector<cloud::AccessToken>& tokens, const std::string& unit, bool cold) {
  if (tokens.size() != n()) {
    return {Error{ErrorCode::kInvalidArgument, "depsky read: one token per cloud"}, 0};
  }
  obs::Span span = obs::tracer().span("depsky.read");
  sim::SimClock::Micros total_delay = 0;

  auto head = fetch_metadata(tokens, unit);
  total_delay += head.delay;
  span.charge_child(static_cast<std::uint64_t>(head.delay));
  if (!head.metadata.ok()) {
    span.set_duration(static_cast<std::uint64_t>(total_delay));
    span.set_outcome(head.metadata.code());
    return {Error{head.metadata.error()}, total_delay};
  }
  const UnitMetadata& meta = *head.metadata;

  // Fetch shares in parallel from healthy clouds (per-cloud retry), keep
  // digest-valid ones. The SHA-256 digest check runs inside each branch so
  // the hashing overlaps on the pool; ingestion stays in ascending cloud
  // order post-join.
  struct ValidShare {
    std::size_t cloud;
    Bytes blob;
    sim::SimClock::Micros delay;
  };
  struct ShareProbe {
    sim::SimClock::Micros delay = 0;
    bool valid = false;
    bool not_found = false;
    Bytes blob;
  };
  const std::size_t needed = config_.protocol == Protocol::kA ? 1 : k();
  obs::Span group = obs::tracer().span("depsky.share_fetch", {.fanout = true});
  std::vector<ValidShare> valid;
  std::vector<sim::SimClock::Micros> all_delays;
  const auto probe_share = [&](std::size_t i, std::uint64_t seed,
                               const common::CancelToken& cancel) {
    const std::string key = share_key(unit, meta.version, i);
    auto got = cold ? config_.clouds[i]->restore_from_cold(tokens[i], key)
                    : guarded_get(i, tokens[i], key, seed, cancel);
    ShareProbe probe;
    probe.delay = got.delay;
    if (got.value.ok() && ct_equal(crypto::sha256(*got.value), meta.share_digests[i])) {
      probe.valid = true;
      probe.blob = std::move(*got.value);
    } else if (got.value.code() == ErrorCode::kNotFound) {
      probe.not_found = true;
    }
    return probe;
  };
  const auto ingest = [&](std::size_t i, ShareProbe&& probe) {
    all_delays.push_back(probe.delay);
    if (probe.valid) {
      valid.push_back({i, std::move(probe.blob), probe.delay});
    } else if (probe.not_found && !cold) {
      // Cross-cloud audit: this cloud acked the upload of this very version's
      // share and now claims it never existed. One incident is forgivable
      // (provider-side loss happens); the ledger quarantines on repetition.
      const std::string key = share_key(unit, meta.version, i);
      if (const auto sm = witness_->share_mark(unit, config_.clouds[i]->name());
          sm && *sm >= meta.version && !config_.clouds[i]->archived(key)) {
        flag_misbehavior(i, MisbehaviorKind::kWithheldShare, unit);
      }
    }
  };

  const auto contacted = contact_set();
  std::vector<std::uint64_t> seeds;
  seeds.reserve(contacted.size());
  for (std::size_t j = 0; j < contacted.size(); ++j) {
    seeds.push_back(backoff_rng_.next_u64());
  }
  auto round = fan_out<ShareProbe>(
      config_.executor.get(), config_.join_mode, contacted.size(), needed,
      [&](std::size_t j, const common::CancelToken& cancel) {
        return probe_share(contacted[j], seeds[j], cancel);
      },
      [](const ShareProbe& probe) { return probe.valid; });
  for (std::size_t j = 0; j < contacted.size(); ++j) {
    if (!round.included[j] || !round.results[j].has_value()) continue;
    ingest(contacted[j], std::move(*round.results[j]));
  }
  // Degraded fallback: conscript breaker-skipped clouds if the healthy set
  // could not produce the `needed` valid shares.
  if (valid.size() < needed && contacted.size() < n()) {
    const auto round1 = sim::parallel_delay(all_delays);
    const common::CancelToken no_cancel;
    for (std::size_t i = 0; i < n(); ++i) {
      if (std::find(contacted.begin(), contacted.end(), i) != contacted.end()) continue;
      if (health_[i]->quarantined()) continue;
      {
        std::lock_guard<std::mutex> lk(stats_mu_);
        ++stats_.forced_probes;
      }
      obs_.forced_probes->add();
      auto probe = probe_share(i, backoff_rng_.next_u64(), no_cancel);
      probe.delay += round1;
      ingest(i, std::move(probe));
    }
  }
  if (valid.size() < needed) {
    const auto fetch_delay = sim::parallel_delay(all_delays);
    group.set_duration(static_cast<std::uint64_t>(fetch_delay));
    group.set_outcome(ErrorCode::kUnavailable);
    group.finish();
    span.charge_child(static_cast<std::uint64_t>(fetch_delay));
    span.set_duration(static_cast<std::uint64_t>(total_delay + fetch_delay));
    span.set_outcome(ErrorCode::kUnavailable);
    return {Error{ErrorCode::kUnavailable, "depsky read: not enough valid shares"},
            total_delay + sim::parallel_delay(all_delays)};
  }
  // Completion when the `needed`-th fastest valid share arrived.
  std::vector<sim::SimClock::Micros> valid_delays;
  valid_delays.reserve(valid.size());
  for (const auto& v : valid) valid_delays.push_back(v.delay);
  const auto fetch_delay = sim::quorum_delay(valid_delays, needed);
  total_delay += fetch_delay;
  group.set_duration(static_cast<std::uint64_t>(fetch_delay));
  group.finish();
  span.charge_child(static_cast<std::uint64_t>(fetch_delay));
  span.set_duration(static_cast<std::uint64_t>(total_delay));
  span.set_bytes(meta.data_size);

  if (config_.protocol == Protocol::kA) {
    if (valid.front().blob.size() != meta.data_size) {
      return {Error{ErrorCode::kCorrupted, "depsky read: size mismatch"}, total_delay};
    }
    return {std::move(valid.front().blob), total_delay};
  }

  // Protocol CA: reassemble key and ciphertext from the k fastest valid blobs.
  std::sort(valid.begin(), valid.end(),
            [](const ValidShare& a, const ValidShare& b) { return a.delay < b.delay; });
  std::vector<erasure::Shard> shards;
  std::vector<secretshare::ShamirShare> key_shares;
  for (std::size_t i = 0; i < needed; ++i) {
    auto blob = decode_ca_blob(valid[i].blob);
    if (!blob.ok()) return {Error{blob.error()}, total_delay};
    shards.push_back({valid[i].cloud, std::move(blob->shard)});
    key_shares.push_back(std::move(blob->key_share));
  }
  const erasure::ReedSolomon rs(k(), n());
  auto sealed = rs.decode(shards, meta.data_size);
  if (!sealed.ok()) return {Error{sealed.error()}, total_delay};
  auto key = secretshare::shamir_combine(key_shares, k());
  if (!key.ok()) return {Error{key.error()}, total_delay};
  if (sealed->size() < crypto::Aes256::kBlockSize) {
    return {Error{ErrorCode::kCorrupted, "depsky read: sealed data too short"}, total_delay};
  }
  const BytesView sealed_view(*sealed);
  const BytesView iv = sealed_view.subspan(0, crypto::Aes256::kBlockSize);
  const BytesView ct = sealed_view.subspan(crypto::Aes256::kBlockSize);
  return {crypto::aes256_ctr(*key, iv, ct), total_delay};
}

sim::Timed<Result<DepSkyClient::RepairReport>> DepSkyClient::repair(
    const std::vector<cloud::AccessToken>& tokens, const std::string& unit) {
  if (tokens.size() != n()) {
    return {Error{ErrorCode::kInvalidArgument, "depsky repair: one token per cloud"}, 0};
  }
  sim::SimClock::Micros total_delay = 0;
  auto head = fetch_metadata(tokens, unit);
  total_delay += head.delay;
  if (!head.metadata.ok()) return {Error{head.metadata.error()}, total_delay};
  const UnitMetadata& meta = *head.metadata;

  // Inventory every share.
  struct ShareState {
    bool valid = false;
    bool present = false;
    Bytes blob;
  };
  std::vector<ShareState> states(n());
  std::vector<sim::SimClock::Micros> fetch_delays;
  {
    obs::Span group = obs::tracer().span("depsky.repair_inventory", {.fanout = true});
    for (std::size_t i = 0; i < n(); ++i) {
      auto got = config_.clouds[i]->get(tokens[i], share_key(unit, meta.version, i));
      fetch_delays.push_back(got.delay);
      if (!got.value.ok()) continue;
      states[i].present = true;
      if (ct_equal(crypto::sha256(*got.value), meta.share_digests[i])) {
        states[i].valid = true;
        states[i].blob = std::move(*got.value);
      }
    }
    group.set_duration(static_cast<std::uint64_t>(sim::parallel_delay(fetch_delays)));
  }
  total_delay += sim::parallel_delay(fetch_delays);

  RepairReport report;
  std::vector<std::size_t> to_repair;
  for (std::size_t i = 0; i < n(); ++i) {
    if (states[i].valid) {
      ++report.shares_ok;
    } else {
      to_repair.push_back(i);
    }
  }
  // Rebuild the per-cloud blobs. Protocol A: any valid replica. Protocol CA:
  // the Reed-Solomon shard is re-derived by repair_shard and the Shamir key
  // share by Lagrange interpolation at the missing x — both are fully
  // determined by any k surviving shares, no re-dealing needed. When every
  // share is healthy this whole block is a no-op, but the metadata
  // anti-entropy pass below still runs: an entry can be degraded purely by
  // lost metadata replicas.
  std::vector<Bytes> rebuilt(n());
  if (to_repair.empty()) {
    // nothing to rebuild
  } else if (config_.protocol == Protocol::kA) {
    for (std::size_t i = 0; i < n(); ++i) {
      if (!states[i].valid) continue;
      for (const std::size_t j : to_repair) rebuilt[j] = states[i].blob;
      break;
    }
  } else {
    // Collect the valid shards/key shares.
    std::vector<erasure::Shard> shards;
    std::vector<secretshare::ShamirShare> key_shares;
    for (std::size_t i = 0; i < n() && shards.size() < k(); ++i) {
      if (!states[i].valid) continue;
      auto blob = decode_ca_blob(states[i].blob);
      if (!blob.ok()) continue;
      shards.push_back({i, std::move(blob->shard)});
      key_shares.push_back(std::move(blob->key_share));
    }
    if (shards.size() < k()) {
      return {Error{ErrorCode::kUnavailable, "depsky repair: fewer than k valid shares"},
              total_delay};
    }
    const erasure::ReedSolomon rs(k(), n());
    const std::size_t sealed_size = meta.data_size;
    for (const std::size_t j : to_repair) {
      auto shard = rs.repair_shard(shards, j, sealed_size);
      if (!shard.ok()) return {Error{shard.error()}, total_delay};
      auto key_share = secretshare::shamir_interpolate_share(
          key_shares, k(), static_cast<std::uint8_t>(j + 1));
      if (!key_share.ok()) return {Error{key_share.error()}, total_delay};
      rebuilt[j] = encode_ca_blob(shard->data, *key_share);
      // The digest must match the metadata or the original encoding differed.
      if (!ct_equal(crypto::sha256(rebuilt[j]), meta.share_digests[j])) {
        return {Error{ErrorCode::kInternal, "depsky repair: rebuilt share mismatch"},
                total_delay};
      }
    }
  }

  // Push the rebuilt shares. Overwrites of corrupt log objects are denied by
  // the append-only rule and reported as unrepairable.
  std::vector<sim::SimClock::Micros> put_delays;
  {
    obs::Span group = obs::tracer().span("depsky.repair_push", {.fanout = true});
    for (const std::size_t j : to_repair) {
      auto put =
          config_.clouds[j]->put(tokens[j], share_key(unit, meta.version, j), rebuilt[j]);
      put_delays.push_back(put.delay);
      if (put.value.ok()) {
        ++report.shares_repaired;
      } else {
        ++report.shares_unrepairable;
      }
    }
    group.set_duration(static_cast<std::uint64_t>(sim::parallel_delay(put_delays)));
  }
  total_delay += sim::parallel_delay(put_delays);

  // Metadata anti-entropy: the quorum gave us the authoritative (signed)
  // metadata; re-seed any cloud that lost its replica. The signature travels
  // with the bytes, so re-putting the serialized copy preserves authenticity.
  const Bytes meta_bytes = meta.serialize();
  std::vector<sim::SimClock::Micros> meta_delays;
  {
    obs::Span group = obs::tracer().span("depsky.repair_meta", {.fanout = true});
    for (std::size_t i = 0; i < n(); ++i) {
      auto got = config_.clouds[i]->get(tokens[i], metadata_key(unit));
      sim::SimClock::Micros cloud_delay = got.delay;
      bool replica_ok = false;
      if (got.value.ok()) {
        auto m = UnitMetadata::deserialize(*got.value);
        replica_ok = m.ok() && m->unit == unit && m->version >= meta.version &&
                     trusted(*m) && m->share_digests.size() == n();
      }
      if (!replica_ok) {
        auto put = config_.clouds[i]->put(tokens[i], metadata_key(unit), meta_bytes);
        cloud_delay += put.delay;
        if (put.value.ok()) {
          ++report.meta_repaired;
        } else {
          ++report.meta_unrepairable;
        }
      }
      meta_delays.push_back(cloud_delay);
    }
    group.set_duration(static_cast<std::uint64_t>(sim::parallel_delay(meta_delays)));
  }
  total_delay += sim::parallel_delay(meta_delays);
  return {report, total_delay};
}

std::size_t DepSkyClient::ShareInventory::valid_count() const {
  std::size_t count = 0;
  for (std::size_t i = 0; i < share_valid.size(); ++i) {
    if (share_valid[i] || share_archived[i]) ++count;
  }
  return count;
}

sim::Timed<Result<DepSkyClient::ShareInventory>> DepSkyClient::share_inventory(
    const std::vector<cloud::AccessToken>& tokens, const std::string& unit) {
  if (tokens.size() != n()) {
    return {Error{ErrorCode::kInvalidArgument, "depsky inventory: one token per cloud"},
            0};
  }
  sim::SimClock::Micros total_delay = 0;
  auto head = fetch_metadata(tokens, unit);
  total_delay += head.delay;
  if (!head.metadata.ok()) return {Error{head.metadata.error()}, total_delay};
  const UnitMetadata& meta = *head.metadata;

  ShareInventory inv;
  inv.version = meta.version;
  inv.share_valid.assign(n(), false);
  inv.share_present.assign(n(), false);
  inv.share_archived.assign(n(), false);
  inv.share_stale.assign(n(), false);

  // Direct per-cloud probes, deliberately bypassing the circuit breakers: a
  // scrub wants ground truth about every cloud, not fast availability.
  std::vector<sim::SimClock::Micros> probe_delays;
  {
    obs::Span group = obs::tracer().span("depsky.inventory", {.fanout = true});
    for (std::size_t i = 0; i < n(); ++i) {
      const std::string key = share_key(unit, meta.version, i);
      auto got = config_.clouds[i]->get(tokens[i], key);
      sim::SimClock::Micros cloud_delay = got.delay;
      if (got.value.ok()) {
        inv.share_present[i] = true;
        if (ct_equal(crypto::sha256(*got.value), meta.share_digests[i])) {
          inv.share_valid[i] = true;
        }
      } else if (config_.clouds[i]->archived(key)) {
        inv.share_archived[i] = true;
      }
      auto mg = config_.clouds[i]->get(tokens[i], metadata_key(unit));
      cloud_delay += mg.delay;
      if (mg.value.ok()) {
        auto m = UnitMetadata::deserialize(*mg.value);
        if (m.ok() && m->unit == unit && trusted(*m) && m->share_digests.size() == n()) {
          // Stale-but-authentic replicas (what a rolled-back cloud serves)
          // are counted separately and never inflate meta_replicas — the
          // scrubber treats them as degradation, not redundancy.
          if (m->version >= meta.version) {
            ++inv.meta_replicas;
          } else {
            ++inv.meta_stale;
          }
        }
      }
      // Distinguish "lost the share" from "serving the old version": when the
      // current share is gone, check whether the previous version's share is
      // still being offered instead.
      if (!inv.share_valid[i] && !inv.share_archived[i] && meta.version > 1) {
        auto old_got =
            config_.clouds[i]->get(tokens[i], share_key(unit, meta.version - 1, i));
        cloud_delay += old_got.delay;
        if (old_got.value.ok()) inv.share_stale[i] = true;
      }
      probe_delays.push_back(cloud_delay);
    }
    group.set_duration(static_cast<std::uint64_t>(sim::parallel_delay(probe_delays)));
  }
  total_delay += sim::parallel_delay(probe_delays);
  return {std::move(inv), total_delay};
}

sim::Timed<Status> DepSkyClient::remove(const std::vector<cloud::AccessToken>& tokens,
                                        const std::string& unit) {
  if (tokens.size() != n()) {
    return {Status{ErrorCode::kInvalidArgument, "depsky remove: one token per cloud"}, 0};
  }
  obs::Span span = obs::tracer().span("depsky.remove");
  auto head = fetch_metadata(tokens, unit);
  span.charge_child(static_cast<std::uint64_t>(head.delay));
  if (!head.metadata.ok()) {
    span.set_duration(static_cast<std::uint64_t>(head.delay));
    span.set_outcome(head.metadata.code());
    return {Status{head.metadata.error()}, head.delay};
  }

  obs::Span group = obs::tracer().span("depsky.remove_fanout", {.fanout = true});
  std::vector<sim::SimClock::Micros> delays;
  std::size_t acks = 0;
  for (std::size_t i = 0; i < n(); ++i) {
    auto rm_meta = config_.clouds[i]->remove(tokens[i], metadata_key(unit));
    auto rm_share =
        config_.clouds[i]->remove(tokens[i], share_key(unit, head.metadata->version, i));
    delays.push_back(std::max(rm_meta.delay, rm_share.delay));
    if (rm_meta.value.ok()) ++acks;
  }
  const auto fanout_delay = sim::quorum_delay(delays, n() - f());
  group.set_duration(static_cast<std::uint64_t>(fanout_delay));
  group.finish();
  span.charge_child(static_cast<std::uint64_t>(fanout_delay));
  const auto delay = head.delay + fanout_delay;
  span.set_duration(static_cast<std::uint64_t>(delay));
  if (acks < n() - f()) {
    span.set_outcome(ErrorCode::kUnavailable);
    return {Status{ErrorCode::kUnavailable, "depsky remove: quorum unavailable"}, delay};
  }
  // A sanctioned remove resets the freshness memory: recreating the unit at
  // version 1 afterwards must not read as a rollback.
  witness_->forget_unit(unit);
  return {Status::Ok(), delay};
}

sim::Timed<Status> DepSkyClient::stamp_membership_epoch(
    const std::vector<cloud::AccessToken>& tokens, const std::string& unit,
    std::uint64_t epoch) {
  if (tokens.size() != n()) {
    return {Status{ErrorCode::kInvalidArgument, "depsky stamp: one token per cloud"}, 0};
  }
  obs::Span span = obs::tracer().span("depsky.stamp_epoch");
  span.set_label(unit);
  auto head = fetch_metadata(tokens, unit);
  sim::SimClock::Micros total_delay = head.delay;
  span.charge_child(static_cast<std::uint64_t>(head.delay));
  if (!head.metadata.ok()) {
    span.set_duration(static_cast<std::uint64_t>(total_delay));
    span.set_outcome(head.metadata.code());
    return {Status{head.metadata.error()}, total_delay};
  }
  UnitMetadata meta = *head.metadata;
  if (meta.membership_epoch >= epoch) {
    // Already stamped (a resumed migration re-visits finished units).
    span.set_duration(static_cast<std::uint64_t>(total_delay));
    return {Status::Ok(), total_delay};
  }
  // Same version number — bumping it would orphan the share objects, whose
  // keys embed the version. Re-signed with this client's key, so the stamping
  // admin must be in every reader's trusted_writers set (it is: RockFS adds
  // the administrator for recovery re-uploads already).
  meta.membership_epoch = epoch;
  meta.sign(config_.writer);
  const Bytes meta_bytes = meta.serialize();
  const std::vector<std::string> meta_keys(n(), metadata_key(unit));
  const std::vector<BytesView> meta_views(n(), BytesView(meta_bytes));
  auto put = quorum_put(tokens, meta_keys, meta_views, "stamp");
  total_delay += put.delay;
  span.charge_child(static_cast<std::uint64_t>(put.delay));
  span.set_duration(static_cast<std::uint64_t>(total_delay));
  if (put.acks < n() - f()) {
    span.set_outcome(ErrorCode::kUnavailable);
    return {Status{ErrorCode::kUnavailable,
                   "depsky stamp: metadata quorum unavailable (" + put.failure_detail +
                       ")"},
            total_delay};
  }
  for (std::size_t i = 0; i < n(); ++i) {
    if (put.acked[i]) {
      witness_->record_meta(unit, config_.clouds[i]->name(), meta.version,
                            config_.session);
    }
  }
  return {Status::Ok(), total_delay};
}

std::size_t DepSkyClient::encoded_blob_size(std::size_t data_size) const {
  if (config_.protocol == Protocol::kA) return data_size;
  // Dummy-encode a zero payload of the right size: shard and key-share sizes
  // depend only on lengths and (k, n), never on the data or the key.
  const std::size_t sealed_size = data_size + crypto::Aes256::kBlockSize;  // + IV
  const erasure::ReedSolomon rs(k(), n());
  const auto shards = rs.encode(Bytes(sealed_size, 0));
  crypto::Drbg sizing_drbg(to_bytes("depsky-sizing-seed"), to_bytes("sizing"));
  const auto key_shares =
      secretshare::shamir_share(Bytes(32, 0), k(), n(), sizing_drbg);
  Bytes blob = encode_ca_blob(shards.front().data, key_shares.front());
  return blob.size();
}

}  // namespace rockfs::depsky
