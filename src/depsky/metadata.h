// Signed, versioned metadata for DepSky data units (paper §5.1). Every unit
// stores, next to its data shares, a metadata object carrying the version
// number and the digest of each cloud's share, signed by the writer. Readers
// accept the highest-version metadata with a valid signature, then accept
// only shares whose digests match — which is how a Byzantine cloud's lies
// are filtered out.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "crypto/signature.h"

namespace rockfs::depsky {

enum class Protocol : std::uint8_t {
  kA = 0,   // availability: full replication on every cloud
  kCA = 1,  // confidentiality + availability: AES + secret-shared key + erasure codes
};

const char* protocol_name(Protocol p);

struct UnitMetadata {
  std::string unit;
  std::uint64_t version = 0;
  Protocol protocol = Protocol::kCA;
  std::uint64_t data_size = 0;        // plaintext size
  std::vector<Bytes> share_digests;   // SHA-256 of the blob stored at cloud i
  Bytes writer_pub;                   // encoded public key of the signer
  Bytes signature;                    // Schnorr over signing_payload()

  /// Canonical bytes covered by the signature.
  Bytes signing_payload() const;

  Bytes serialize() const;
  static Result<UnitMetadata> deserialize(BytesView b);

  /// Signs with the writer's key (fills writer_pub and signature).
  void sign(const crypto::KeyPair& writer);
  /// Verifies the signature against the expected writer public key.
  bool verify(BytesView expected_writer_pub) const;
};

}  // namespace rockfs::depsky
