// Signed, versioned metadata for DepSky data units (paper §5.1). Every unit
// stores, next to its data shares, a metadata object carrying the version
// number and the digest of each cloud's share, signed by the writer. Readers
// accept the highest-version metadata with a valid signature, then accept
// only shares whose digests match — which is how a Byzantine cloud's lies
// are filtered out.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "crypto/signature.h"

namespace rockfs::depsky {

enum class Protocol : std::uint8_t {
  kA = 0,   // availability: full replication on every cloud
  kCA = 1,  // confidentiality + availability: AES + secret-shared key + erasure codes
};

const char* protocol_name(Protocol p);

struct UnitMetadata {
  std::string unit;
  std::uint64_t version = 0;
  Protocol protocol = Protocol::kCA;
  std::uint64_t data_size = 0;        // plaintext size
  /// Cloud-set membership epoch this unit was last written/migrated under
  /// (depsky/reconfig.h). 0 = the initial cloud set. Writers fail closed when
  /// their configured epoch is older than the one stamped here.
  std::uint64_t membership_epoch = 0;
  std::vector<Bytes> share_digests;   // SHA-256 of the blob stored at cloud i
  Bytes writer_pub;                   // encoded public key of the signer
  Bytes signature;                    // Schnorr over signing_payload()

  /// Canonical bytes covered by the signature.
  Bytes signing_payload() const;

  Bytes serialize() const;
  static Result<UnitMetadata> deserialize(BytesView b);

  /// Signs with the writer's key (fills writer_pub and signature).
  void sign(const crypto::KeyPair& writer);
  /// Verifies the signature against the expected writer public key.
  bool verify(BytesView expected_writer_pub) const;
};

// ------------------------------------------------------- version witness
//
// Deployment-wide freshness memory. Signatures prove *authenticity* of unit
// metadata but not *freshness*: a malicious cloud can serve an old version
// whose signature is perfectly valid (rollback), or different valid versions
// to different sessions (equivocation). The witness closes that gap with
// accountability: it records, per (unit, cloud), the highest version the
// cloud has provably known — because it acked the share/metadata upload of
// that version, or because it served that version itself. A cloud later
// answering *below its own mark* is caught lying, with zero false positives:
// an honest cloud that merely missed a write (outage, lost ack) never has a
// mark above what it stores.
//
// One witness instance is shared by every client of a deployment (it is
// thread-safe), so session B's reads are checked against what the cloud told
// session A — which is exactly how equivocation becomes visible.

class VersionWitness {
 public:
  struct Mark {
    std::uint64_t version = 0;
    std::string session;  // session that witnessed it (attribution in alarms)
  };

  /// Cloud acked or served `unit`'s metadata at `version` (monotone max).
  void record_meta(const std::string& unit, const std::string& cloud,
                   std::uint64_t version, const std::string& session);
  /// Cloud acked the upload of `unit`'s data share at `version`.
  void record_share(const std::string& unit, const std::string& cloud,
                    std::uint64_t version);
  /// A quorum confirmed `unit` at `version` (unit-level high-water mark).
  void record_unit(const std::string& unit, std::uint64_t version,
                   const std::string& session);

  /// Highest metadata version `cloud` provably knows for `unit`.
  std::optional<Mark> meta_mark(const std::string& unit, const std::string& cloud) const;
  /// Highest version whose share upload `cloud` acked for `unit`.
  std::optional<std::uint64_t> share_mark(const std::string& unit,
                                          const std::string& cloud) const;
  /// Quorum-confirmed high-water mark of `unit`.
  std::optional<Mark> unit_mark(const std::string& unit) const;

  /// Forgets a unit after a sanctioned remove, so a later recreate starting
  /// over at version 1 is not misread as a rollback.
  void forget_unit(const std::string& unit);

 private:
  mutable std::mutex mu_;
  std::map<std::pair<std::string, std::string>, Mark> meta_marks_;
  std::map<std::pair<std::string, std::string>, std::uint64_t> share_marks_;
  std::map<std::string, Mark> unit_marks_;
};

using VersionWitnessPtr = std::shared_ptr<VersionWitness>;

}  // namespace rockfs::depsky
