// In-process metrics for the simulated stack: counters, gauges and
// fixed-bucket histograms, keyed by "component.op{label}" strings.
//
// Design rules (what makes this safe to call on hot paths):
//   * instruments are never deallocated — registry reset() ZEROES values but
//     keeps every instrument alive, so components may cache the returned
//     references across resets (CloudProvider, DepSkyClient do);
//   * increments are lock-free atomics; the registry mutex is only taken on
//     first registration and on export;
//   * everything recorded is derived from simulated state (virtual delays,
//     byte counts), never from wall-clock time, so metric dumps are
//     deterministic per seed and diffable across machines.
//
// Naming scheme (see docs/ARCHITECTURE.md §7): `component.op.measure{label}`
//   cloud.put.bytes{cloud-0}     depsky.retries      scfs.close.delay_us
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace rockfs::obs {

/// "name{label}", or just "name" when the label is empty.
std::string metric_key(std::string_view name, std::string_view label);

/// Monotonic counter. Thread-safe, lock-free.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const noexcept { return v_.load(std::memory_order_relaxed); }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins signed gauge. Thread-safe, lock-free.
class Gauge {
 public:
  void set(std::int64_t v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) noexcept { v_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t value() const noexcept { return v_.load(std::memory_order_relaxed); }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Fixed-bucket histogram for latencies (µs) and sizes (bytes). Bucket b
/// holds values whose bit width is b (i.e. v in [2^(b-1), 2^b - 1]); value 0
/// lands in bucket 0. Percentiles report the bucket's upper bound clamped to
/// the observed maximum, so they are exact integers and deterministic.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;  // bit widths 0..64

  void record(std::uint64_t v) noexcept;

  std::uint64_t count() const noexcept { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  /// 0 when empty.
  std::uint64_t min() const noexcept;
  std::uint64_t max() const noexcept { return max_.load(std::memory_order_relaxed); }
  /// Value at percentile p (0 < p <= 100): upper bound of the bucket where
  /// the cumulative count reaches ceil(p% of count), clamped to max().
  std::uint64_t percentile(double p) const;
  /// Raw count of bucket b (for tests of the bucket-edge math).
  std::uint64_t bucket_count(std::size_t b) const;
  /// Bucket index a value falls into.
  static std::size_t bucket_of(std::uint64_t v) noexcept;
  /// Inclusive upper bound of bucket b.
  static std::uint64_t bucket_upper(std::size_t b) noexcept;

  void reset() noexcept;

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets]{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{UINT64_MAX};
  std::atomic<std::uint64_t> max_{0};
};

/// Registry of named instruments. Lookup registers on first use; the
/// returned references stay valid for the registry's lifetime (reset()
/// zeroes, never deallocates).
class MetricsRegistry {
 public:
  Counter& counter(const std::string& key);
  Gauge& gauge(const std::string& key);
  Histogram& histogram(const std::string& key);

  /// Value of a counter, 0 if it was never registered (read-only; does not
  /// register).
  std::uint64_t counter_value(const std::string& key) const;

  /// Zeroes every instrument. References handed out earlier remain valid.
  void reset();

  /// Deterministic JSON dump: {"counters":{...},"gauges":{...},
  /// "histograms":{...}}, keys sorted, integer values only.
  std::string to_json() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Process-global registry used by the instrumented components.
MetricsRegistry& metrics();

}  // namespace rockfs::obs
