// Sim-clock-aware span tracing with a deterministic ring-buffer sink.
//
// Spans nest lexically: Tracer::span() parents the new span under the
// innermost still-open span on the same tracer (the stack), and records the
// simulated start time from the bound SimClock. Components that compute
// virtual delays without advancing the clock set the span's duration
// explicitly (set_duration); spans finish (and enter the ring buffer) on
// destruction or an explicit finish().
//
// Exclusive-time accounting — how per-layer breakdowns reconcile with the
// headline latency in a simulator where child "latencies" overlap:
//   * a parent that serially composes child delays calls
//     charge_child(child_delay) per child; its exclusive time is then
//     duration - charged;
//   * a parent that fans children out in (simulated) parallel opens the
//     group with SpanOptions{.fanout = true}; direct children of a fanout
//     span are marked SpanKind::kParallel and reconcile_exclusive_us()
//     skips their subtrees, counting only the group span's own duration
//     (which the owner sets to the composed quorum/max delay).
// With that discipline, reconcile_exclusive_us(events, root) ==
// root.duration_us exactly; the fig5 bench asserts this within 1%.
//
// Concurrency: the tracer's single open-span stack is meaningless when a
// fan-out executes branches on worker threads, so pooled branches trace into
// per-task buffers instead. The coordinator mints one TaskTrace per branch
// (Tracer::make_task), the worker binds it thread-locally for the branch's
// lifetime (TaskBinding) — every tracer().span() call on that thread,
// including ones deep inside CloudProvider, lands in the buffer with local
// ids — and after the join the coordinator splices the buffers back
// (Tracer::splice) in branch-index order, renumbering ids and parenting each
// buffer's root spans under the innermost open coordinator span. Because the
// splice order is the branch index, not completion order, the exported dump
// is byte-identical whether branches ran inline or on N threads.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "sim/clock.h"

namespace rockfs::obs {

enum class SpanKind : std::uint8_t {
  kSerial = 0,    // contributes to the parent's timeline serially
  kParallel = 1,  // one branch of a fanout group; overlaps its siblings
};

/// One finished span, as stored in the ring buffer.
struct TraceEvent {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;  // 0 = root
  std::string name;
  std::string label;
  SpanKind kind = SpanKind::kSerial;
  std::uint64_t start_us = 0;
  std::uint64_t duration_us = 0;
  std::uint64_t charged_us = 0;  // child delays the owner serially composed
  ErrorCode outcome = ErrorCode::kOk;
  std::uint32_t retries = 0;
  std::uint64_t bytes = 0;
};

struct SpanOptions {
  bool fanout = false;  // direct children overlap (quorum / pipeline groups)
};

class Tracer;
class TaskTrace;

namespace detail {
struct OpenSpan {
  std::uint64_t id = 0;
  TraceEvent event;
  bool fanout = false;
  bool finished = false;
};
}  // namespace detail

/// Move-only RAII handle. A default-constructed (or disabled-tracer) span is
/// inert: every setter is a no-op and nothing is recorded.
class Span {
 public:
  Span() = default;
  Span(Span&& other) noexcept;
  Span& operator=(Span&& other) noexcept;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span();

  void set_duration(std::uint64_t us);
  /// Add a serially-composed child delay to this span's charged total.
  void charge_child(std::uint64_t us);
  void set_outcome(ErrorCode code);
  void set_retries(std::uint32_t n);
  void set_bytes(std::uint64_t n);
  void set_label(std::string label);
  /// Record the span into the ring buffer. Idempotent.
  void finish();

  bool active() const { return tracer_ != nullptr || task_ != nullptr; }
  std::uint64_t id() const { return id_; }

 private:
  friend class Tracer;
  friend class TaskTrace;
  Span(Tracer* tracer, std::uint64_t id) : tracer_(tracer), id_(id) {}
  Span(TaskTrace* task, std::uint64_t id) : task_(task), id_(id) {}

  Tracer* tracer_ = nullptr;
  TaskTrace* task_ = nullptr;
  std::uint64_t id_ = 0;
};

/// Per-branch span buffer for pooled fan-outs. Thread-confined: the owning
/// worker is the only thread that touches it between TaskBinding and the
/// coordinator's post-join Tracer::splice, so it needs no lock. Spans get
/// local ids starting at 1 (0 = "root of this buffer"); splice renumbers
/// them into the tracer's global sequence. Must not move while bound.
class TaskTrace {
 public:
  TaskTrace() = default;
  TaskTrace(TaskTrace&&) = default;
  TaskTrace& operator=(TaskTrace&&) = default;

  /// Open a span in this buffer; parent = innermost open span here.
  Span span(std::string name, SpanOptions opts = {});
  bool enabled() const { return enabled_; }

 private:
  friend class Tracer;
  friend class Span;

  void finish_span(std::uint64_t id);
  void set_span_duration(std::uint64_t id, std::uint64_t us);
  void charge_span(std::uint64_t id, std::uint64_t us);
  void set_span_retries(std::uint64_t id, std::uint32_t n);
  void set_span_bytes(std::uint64_t id, std::uint64_t n);
  void set_span_label(std::uint64_t id, std::string label);
  void set_span_outcome(std::uint64_t id, ErrorCode code);
  detail::OpenSpan* find_open(std::uint64_t id);

  bool enabled_ = false;
  sim::SimClockPtr clock_;
  std::uint64_t next_local_ = 1;
  std::vector<detail::OpenSpan> stack_;  // innermost open span at the back
  std::vector<TraceEvent> done_;         // finished, in finish order
};

/// RAII thread-local bind: while alive, tracer().span() calls on this thread
/// route into `task`. Nest-safe (restores the previous binding).
class TaskBinding {
 public:
  explicit TaskBinding(TaskTrace* task);
  ~TaskBinding();
  TaskBinding(const TaskBinding&) = delete;
  TaskBinding& operator=(const TaskBinding&) = delete;

 private:
  TaskTrace* prev_;
};

/// Deterministic trace sink: fixed-capacity ring buffer keyed by simulated
/// time. Everything recorded derives from the SimClock and the workload, so
/// the JSON export is byte-identical across runs with the same seed.
class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 8192;

  explicit Tracer(std::size_t capacity = kDefaultCapacity);

  /// Spans read start times from this clock; unbound spans start at 0.
  void bind_clock(sim::SimClockPtr clock);
  void set_enabled(bool enabled);
  bool enabled() const;
  /// Resizes the ring buffer and clears recorded events.
  void set_capacity(std::size_t capacity);

  /// Open a span. Parent = innermost open span on this tracer. When the
  /// calling thread has a TaskBinding, routes into that TaskTrace instead.
  Span span(std::string name, SpanOptions opts = {});

  /// Mint an empty per-branch buffer carrying this tracer's enabled flag and
  /// clock. Mint all buffers before launching the fan-out.
  TaskTrace make_task() const;

  /// Append every buffer's finished spans to the ring in buffer order,
  /// renumbering local ids into the global sequence and parenting each
  /// buffer's roots under the innermost open span (kParallel when that span
  /// is a fanout group). Buffers are drained and reusable afterwards.
  void splice(std::vector<TaskTrace>& tasks);

  /// Finished spans currently retained, ordered by id (i.e. open order).
  std::vector<TraceEvent> events() const;
  std::uint64_t finished_count() const;
  std::uint64_t dropped_count() const;

  /// Clears events and the open-span stack; keeps clock, capacity, enabled.
  void reset();

  /// {"finished":N,"dropped":D,"events":[...]}; deterministic field order.
  std::string to_json() const;

 private:
  friend class Span;

  using OpenSpan = detail::OpenSpan;

  // Called by Span. All take the mutex.
  void finish_span(std::uint64_t id);
  void set_span_duration(std::uint64_t id, std::uint64_t us);
  void charge_span(std::uint64_t id, std::uint64_t us);
  void set_span_retries(std::uint64_t id, std::uint32_t n);
  void set_span_bytes(std::uint64_t id, std::uint64_t n);
  void set_span_label(std::uint64_t id, std::string label);
  void set_span_outcome(std::uint64_t id, ErrorCode code);

  OpenSpan* find_open(std::uint64_t id);  // mu_ held

  mutable std::mutex mu_;
  sim::SimClockPtr clock_;
  bool enabled_ = true;
  std::size_t capacity_;
  std::uint64_t next_id_ = 1;
  std::uint64_t finished_ = 0;
  std::vector<OpenSpan> stack_;     // innermost open span at the back
  std::vector<TraceEvent> ring_;    // ring_[finished_ % capacity_]
};

/// Process-global tracer used by the instrumented components.
Tracer& tracer();

/// Sum of exclusive durations (duration - charged) over the serial subtree
/// of `root_id`, skipping subtrees rooted at kParallel spans (their cost is
/// already inside the fanout group's composed duration). Reconciles with the
/// root span's duration when owners follow the charging discipline above.
std::uint64_t reconcile_exclusive_us(const std::vector<TraceEvent>& events,
                                     std::uint64_t root_id);

}  // namespace rockfs::obs
