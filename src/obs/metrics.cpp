#include "obs/metrics.h"

#include <bit>
#include <cmath>
#include <sstream>

namespace rockfs::obs {

std::string metric_key(std::string_view name, std::string_view label) {
  if (label.empty()) return std::string(name);
  std::string key;
  key.reserve(name.size() + label.size() + 2);
  key.append(name);
  key.push_back('{');
  key.append(label);
  key.push_back('}');
  return key;
}

std::size_t Histogram::bucket_of(std::uint64_t v) noexcept {
  return static_cast<std::size_t>(std::bit_width(v));  // 0 for v==0
}

std::uint64_t Histogram::bucket_upper(std::size_t b) noexcept {
  if (b == 0) return 0;
  if (b >= 64) return UINT64_MAX;
  return (std::uint64_t{1} << b) - 1;
}

void Histogram::record(std::uint64_t v) noexcept {
  buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  std::uint64_t cur = min_.load(std::memory_order_relaxed);
  while (v < cur && !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur && !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::min() const noexcept {
  std::uint64_t m = min_.load(std::memory_order_relaxed);
  return m == UINT64_MAX ? 0 : m;
}

std::uint64_t Histogram::percentile(double p) const {
  const std::uint64_t n = count();
  if (n == 0) return 0;
  auto target = static_cast<std::uint64_t>(std::ceil(p / 100.0 * static_cast<double>(n)));
  if (target < 1) target = 1;
  if (target > n) target = n;
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    cum += buckets_[b].load(std::memory_order_relaxed);
    if (cum >= target) {
      const std::uint64_t upper = bucket_upper(b);
      const std::uint64_t mx = max();
      return upper < mx ? upper : mx;
    }
  }
  return max();
}

std::uint64_t Histogram::bucket_count(std::size_t b) const {
  return b < kBuckets ? buckets_[b].load(std::memory_order_relaxed) : 0;
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

Counter& MetricsRegistry::counter(const std::string& key) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = counters_[key];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& key) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = gauges_[key];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& key) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = histograms_[key];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

std::uint64_t MetricsRegistry::counter_value(const std::string& key) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = counters_.find(key);
  return it == counters_.end() ? 0 : it->second->value();
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [k, c] : counters_) c->reset();
  for (auto& [k, g] : gauges_) g->reset();
  for (auto& [k, h] : histograms_) h->reset();
}

namespace {

void append_escaped(std::ostringstream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
  out << '"';
}

}  // namespace

std::string MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [k, c] : counters_) {
    if (!first) out << ',';
    first = false;
    append_escaped(out, k);
    out << ':' << c->value();
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [k, g] : gauges_) {
    if (!first) out << ',';
    first = false;
    append_escaped(out, k);
    out << ':' << g->value();
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [k, h] : histograms_) {
    if (!first) out << ',';
    first = false;
    append_escaped(out, k);
    out << ":{\"count\":" << h->count() << ",\"sum\":" << h->sum()
        << ",\"min\":" << h->min() << ",\"max\":" << h->max()
        << ",\"p50\":" << h->percentile(50) << ",\"p95\":" << h->percentile(95)
        << ",\"p99\":" << h->percentile(99) << '}';
  }
  out << "}}";
  return out.str();
}

MetricsRegistry& metrics() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace rockfs::obs
