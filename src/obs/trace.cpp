#include "obs/trace.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <utility>

namespace rockfs::obs {

namespace {
// The TaskTrace bound to this thread, if a fan-out branch is running here.
thread_local TaskTrace* g_current_task = nullptr;
}  // namespace

Span::Span(Span&& other) noexcept
    : tracer_(other.tracer_), task_(other.task_), id_(other.id_) {
  other.tracer_ = nullptr;
  other.task_ = nullptr;
  other.id_ = 0;
}

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    finish();
    tracer_ = other.tracer_;
    task_ = other.task_;
    id_ = other.id_;
    other.tracer_ = nullptr;
    other.task_ = nullptr;
    other.id_ = 0;
  }
  return *this;
}

Span::~Span() { finish(); }

void Span::set_duration(std::uint64_t us) {
  if (task_) task_->set_span_duration(id_, us);
  else if (tracer_) tracer_->set_span_duration(id_, us);
}

void Span::charge_child(std::uint64_t us) {
  if (task_) task_->charge_span(id_, us);
  else if (tracer_) tracer_->charge_span(id_, us);
}

void Span::set_outcome(ErrorCode code) {
  if (task_) task_->set_span_outcome(id_, code);
  else if (tracer_) tracer_->set_span_outcome(id_, code);
}

void Span::set_retries(std::uint32_t n) {
  if (task_) task_->set_span_retries(id_, n);
  else if (tracer_) tracer_->set_span_retries(id_, n);
}

void Span::set_bytes(std::uint64_t n) {
  if (task_) task_->set_span_bytes(id_, n);
  else if (tracer_) tracer_->set_span_bytes(id_, n);
}

void Span::set_label(std::string label) {
  if (task_) task_->set_span_label(id_, std::move(label));
  else if (tracer_) tracer_->set_span_label(id_, std::move(label));
}

void Span::finish() {
  if (task_) {
    task_->finish_span(id_);
    task_ = nullptr;
    id_ = 0;
  } else if (tracer_) {
    tracer_->finish_span(id_);
    tracer_ = nullptr;
    id_ = 0;
  }
}

Span TaskTrace::span(std::string name, SpanOptions opts) {
  if (!enabled_) return Span{};
  detail::OpenSpan open;
  open.id = next_local_++;
  open.fanout = opts.fanout;
  open.event.id = open.id;
  open.event.name = std::move(name);
  open.event.start_us = clock_ ? clock_->now_us() : 0;
  if (!stack_.empty()) {
    const detail::OpenSpan& parent = stack_.back();
    open.event.parent = parent.id;
    if (parent.fanout) open.event.kind = SpanKind::kParallel;
  }
  stack_.push_back(std::move(open));
  return Span{this, stack_.back().id};
}

detail::OpenSpan* TaskTrace::find_open(std::uint64_t id) {
  for (auto it = stack_.rbegin(); it != stack_.rend(); ++it) {
    if (it->id == id) return &*it;
  }
  return nullptr;
}

void TaskTrace::finish_span(std::uint64_t id) {
  detail::OpenSpan* open = find_open(id);
  if (!open || open->finished) return;
  open->finished = true;
  while (!stack_.empty() && stack_.back().finished) {
    done_.push_back(std::move(stack_.back().event));
    stack_.pop_back();
  }
}

void TaskTrace::set_span_duration(std::uint64_t id, std::uint64_t us) {
  if (detail::OpenSpan* open = find_open(id)) open->event.duration_us = us;
}

void TaskTrace::charge_span(std::uint64_t id, std::uint64_t us) {
  if (detail::OpenSpan* open = find_open(id)) open->event.charged_us += us;
}

void TaskTrace::set_span_retries(std::uint64_t id, std::uint32_t n) {
  if (detail::OpenSpan* open = find_open(id)) open->event.retries = n;
}

void TaskTrace::set_span_bytes(std::uint64_t id, std::uint64_t n) {
  if (detail::OpenSpan* open = find_open(id)) open->event.bytes = n;
}

void TaskTrace::set_span_label(std::uint64_t id, std::string label) {
  if (detail::OpenSpan* open = find_open(id)) open->event.label = std::move(label);
}

void TaskTrace::set_span_outcome(std::uint64_t id, ErrorCode code) {
  if (detail::OpenSpan* open = find_open(id)) open->event.outcome = code;
}

TaskBinding::TaskBinding(TaskTrace* task) : prev_(g_current_task) {
  g_current_task = task;
}

TaskBinding::~TaskBinding() { g_current_task = prev_; }

Tracer::Tracer(std::size_t capacity) : capacity_(capacity ? capacity : 1) {
  ring_.resize(capacity_);
}

void Tracer::bind_clock(sim::SimClockPtr clock) {
  std::lock_guard<std::mutex> lk(mu_);
  clock_ = std::move(clock);
}

void Tracer::set_enabled(bool enabled) {
  std::lock_guard<std::mutex> lk(mu_);
  enabled_ = enabled;
}

bool Tracer::enabled() const {
  std::lock_guard<std::mutex> lk(mu_);
  return enabled_;
}

void Tracer::set_capacity(std::size_t capacity) {
  std::lock_guard<std::mutex> lk(mu_);
  capacity_ = capacity ? capacity : 1;
  ring_.assign(capacity_, TraceEvent{});
  finished_ = 0;
  stack_.clear();
}

Span Tracer::span(std::string name, SpanOptions opts) {
  if (g_current_task) return g_current_task->span(std::move(name), opts);
  std::lock_guard<std::mutex> lk(mu_);
  if (!enabled_) return Span{};
  OpenSpan open;
  open.id = next_id_++;
  open.fanout = opts.fanout;
  open.event.id = open.id;
  open.event.name = std::move(name);
  open.event.start_us = clock_ ? clock_->now_us() : 0;
  if (!stack_.empty()) {
    const OpenSpan& parent = stack_.back();
    open.event.parent = parent.id;
    if (parent.fanout) open.event.kind = SpanKind::kParallel;
  }
  stack_.push_back(std::move(open));
  return Span{this, stack_.back().id};
}

TaskTrace Tracer::make_task() const {
  std::lock_guard<std::mutex> lk(mu_);
  TaskTrace task;
  task.enabled_ = enabled_;
  task.clock_ = clock_;
  return task;
}

void Tracer::splice(std::vector<TaskTrace>& tasks) {
  std::lock_guard<std::mutex> lk(mu_);
  std::uint64_t parent_id = 0;
  bool parent_fanout = false;
  if (!stack_.empty()) {
    parent_id = stack_.back().id;
    parent_fanout = stack_.back().fanout;
  }
  for (TaskTrace& task : tasks) {
    if (!task.enabled_) continue;
    const std::uint64_t base = next_id_;
    for (TraceEvent& local : task.done_) {
      TraceEvent ev = std::move(local);
      ev.id = base + ev.id - 1;
      if (ev.parent == 0) {
        ev.parent = parent_id;
        if (parent_fanout) ev.kind = SpanKind::kParallel;
      } else {
        ev.parent = base + ev.parent - 1;
      }
      ring_[finished_ % capacity_] = std::move(ev);
      ++finished_;
    }
    next_id_ += task.next_local_ - 1;
    task.done_.clear();
    task.stack_.clear();
    task.next_local_ = 1;
  }
}

Tracer::OpenSpan* Tracer::find_open(std::uint64_t id) {
  for (auto it = stack_.rbegin(); it != stack_.rend(); ++it) {
    if (it->id == id) return &*it;
  }
  return nullptr;
}

void Tracer::finish_span(std::uint64_t id) {
  std::lock_guard<std::mutex> lk(mu_);
  OpenSpan* open = find_open(id);
  if (!open || open->finished) return;
  open->finished = true;
  // Spans normally close LIFO; tolerate out-of-order finish by retiring the
  // contiguous finished suffix of the stack only.
  while (!stack_.empty() && stack_.back().finished) {
    ring_[finished_ % capacity_] = std::move(stack_.back().event);
    ++finished_;
    stack_.pop_back();
  }
}

void Tracer::set_span_duration(std::uint64_t id, std::uint64_t us) {
  std::lock_guard<std::mutex> lk(mu_);
  if (OpenSpan* open = find_open(id)) open->event.duration_us = us;
}

void Tracer::charge_span(std::uint64_t id, std::uint64_t us) {
  std::lock_guard<std::mutex> lk(mu_);
  if (OpenSpan* open = find_open(id)) open->event.charged_us += us;
}

void Tracer::set_span_retries(std::uint64_t id, std::uint32_t n) {
  std::lock_guard<std::mutex> lk(mu_);
  if (OpenSpan* open = find_open(id)) open->event.retries = n;
}

void Tracer::set_span_bytes(std::uint64_t id, std::uint64_t n) {
  std::lock_guard<std::mutex> lk(mu_);
  if (OpenSpan* open = find_open(id)) open->event.bytes = n;
}

void Tracer::set_span_label(std::uint64_t id, std::string label) {
  std::lock_guard<std::mutex> lk(mu_);
  if (OpenSpan* open = find_open(id)) open->event.label = std::move(label);
}

void Tracer::set_span_outcome(std::uint64_t id, ErrorCode code) {
  std::lock_guard<std::mutex> lk(mu_);
  if (OpenSpan* open = find_open(id)) open->event.outcome = code;
}

std::vector<TraceEvent> Tracer::events() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<TraceEvent> out;
  const std::uint64_t retained = std::min<std::uint64_t>(finished_, capacity_);
  out.reserve(retained);
  const std::uint64_t begin = finished_ - retained;
  for (std::uint64_t i = begin; i < finished_; ++i) {
    out.push_back(ring_[i % capacity_]);
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) { return a.id < b.id; });
  return out;
}

std::uint64_t Tracer::finished_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return finished_;
}

std::uint64_t Tracer::dropped_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return finished_ > capacity_ ? finished_ - capacity_ : 0;
}

void Tracer::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& e : ring_) e = TraceEvent{};
  finished_ = 0;
  next_id_ = 1;
  stack_.clear();
}

namespace {

void append_escaped(std::ostringstream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
  out << '"';
}

}  // namespace

std::string Tracer::to_json() const {
  const std::vector<TraceEvent> evs = events();
  std::uint64_t finished;
  std::uint64_t dropped;
  {
    std::lock_guard<std::mutex> lk(mu_);
    finished = finished_;
    dropped = finished_ > capacity_ ? finished_ - capacity_ : 0;
  }
  std::ostringstream out;
  out << "{\"finished\":" << finished << ",\"dropped\":" << dropped
      << ",\"events\":[";
  bool first = true;
  for (const auto& e : evs) {
    if (!first) out << ',';
    first = false;
    out << "{\"id\":" << e.id << ",\"parent\":" << e.parent << ",\"name\":";
    append_escaped(out, e.name);
    out << ",\"label\":";
    append_escaped(out, e.label);
    out << ",\"kind\":" << (e.kind == SpanKind::kParallel ? "\"parallel\"" : "\"serial\"")
        << ",\"start_us\":" << e.start_us << ",\"duration_us\":" << e.duration_us
        << ",\"charged_us\":" << e.charged_us << ",\"outcome\":\""
        << error_code_name(e.outcome) << "\",\"retries\":" << e.retries
        << ",\"bytes\":" << e.bytes << '}';
  }
  out << "]}";
  return out.str();
}

Tracer& tracer() {
  static Tracer t;
  return t;
}

std::uint64_t reconcile_exclusive_us(const std::vector<TraceEvent>& events,
                                     std::uint64_t root_id) {
  std::unordered_map<std::uint64_t, std::vector<const TraceEvent*>> children;
  std::unordered_map<std::uint64_t, const TraceEvent*> by_id;
  for (const auto& e : events) {
    by_id[e.id] = &e;
    children[e.parent].push_back(&e);
  }
  std::uint64_t total = 0;
  std::vector<std::uint64_t> work{root_id};
  std::unordered_set<std::uint64_t> seen;
  while (!work.empty()) {
    const std::uint64_t id = work.back();
    work.pop_back();
    if (!seen.insert(id).second) continue;
    auto it = by_id.find(id);
    if (it == by_id.end()) continue;
    const TraceEvent& e = *it->second;
    // Parallel branches' costs are already folded into their fanout group's
    // composed duration; do not descend into them.
    if (e.id != root_id && e.kind == SpanKind::kParallel) continue;
    const std::uint64_t exclusive =
        e.duration_us > e.charged_us ? e.duration_us - e.charged_us : 0;
    total += exclusive;
    auto cit = children.find(id);
    if (cit != children.end()) {
      for (const TraceEvent* c : cit->second) work.push_back(c->id);
    }
  }
  return total;
}

}  // namespace rockfs::obs
