#include "cloud/provider.h"

#include <algorithm>

#include "crypto/hmac.h"
#include "obs/trace.h"

namespace rockfs::cloud {

namespace {
bool is_log_key(const std::string& key) { return key.starts_with(kLogPrefix); }

// Unit metadata objects end in ".meta" (depsky convention); everything else
// in the depsky namespaces is a data share. The withhold_shares adversary
// answers metadata honestly and claims the shares are gone.
bool is_metadata_key(const std::string& key) { return key.ends_with(".meta"); }

// A timed-out request stalls the client for several round-trips before it
// gives up; charge that wait so retry deadlines bite in virtual time.
constexpr double kTimeoutStallFactor = 10.0;

// Flips bits with the provider's characteristic pattern (Byzantine replies
// and intermittent read corruption look the same to the client).
void corrupt_payload(Bytes& data) {
  for (std::size_t i = 0; i < data.size(); i += 97) data[i] ^= 0xA5;
}
}  // namespace

CloudProvider::CloudProvider(std::string name, sim::SimClockPtr clock,
                             sim::LinkProfile profile, std::uint64_t seed)
    : name_(std::move(name)),
      clock_(clock),
      net_(std::move(clock), std::move(profile), seed),
      rng_(seed ^ 0x517CC1B727220A95ULL),
      token_secret_(rng_.next_bytes(32)),
      faults_(std::make_shared<sim::FaultSchedule>(clock_, seed ^ 0xD1B54A32D192ED03ULL)) {
  // Resolve registry handles once; op wrappers then touch only atomics.
  static constexpr const char* kOps[kOpKinds] = {"get",  "put",     "remove",
                                                 "list", "archive", "restore"};
  auto& reg = obs::metrics();
  for (std::size_t i = 0; i < kOpKinds; ++i) {
    const std::string base = std::string("cloud.") + kOps[i];
    op_metrics_[i].count = &reg.counter(obs::metric_key(base + ".count", name_));
    op_metrics_[i].errors = &reg.counter(obs::metric_key(base + ".errors", name_));
    op_metrics_[i].bytes = &reg.counter(obs::metric_key(base + ".bytes", name_));
    op_metrics_[i].delay_us = &reg.histogram(obs::metric_key(base + ".delay_us", name_));
  }
}

void CloudProvider::observe_op(OpKind kind, ErrorCode outcome, std::uint64_t bytes,
                               sim::SimClock::Micros delay_us) {
  OpMetrics& m = op_metrics(kind);
  m.count->add();
  if (outcome != ErrorCode::kOk) m.errors->add();
  m.bytes->add(bytes);
  m.delay_us->record(static_cast<std::uint64_t>(delay_us));
}

sim::Timed<Status> CloudProvider::put(const AccessToken& token, const std::string& key,
                                      BytesView data) {
  obs::Span span = obs::tracer().span("cloud.put");
  span.set_label(name_);
  auto r = put_impl(token, key, data);
  span.set_duration(static_cast<std::uint64_t>(r.delay));
  span.set_bytes(data.size());
  span.set_outcome(r.value.code());
  observe_op(OpKind::kPut, r.value.code(), data.size(), r.delay);
  return r;
}

sim::Timed<Result<Bytes>> CloudProvider::get(const AccessToken& token,
                                             const std::string& key) {
  obs::Span span = obs::tracer().span("cloud.get");
  span.set_label(name_);
  auto r = get_impl(token, key);
  const std::uint64_t bytes = r.value.ok() ? r.value.value().size() : 0;
  span.set_duration(static_cast<std::uint64_t>(r.delay));
  span.set_bytes(bytes);
  span.set_outcome(r.value.code());
  observe_op(OpKind::kGet, r.value.code(), bytes, r.delay);
  return r;
}

sim::Timed<Status> CloudProvider::remove(const AccessToken& token, const std::string& key) {
  obs::Span span = obs::tracer().span("cloud.remove");
  span.set_label(name_);
  auto r = remove_impl(token, key);
  span.set_duration(static_cast<std::uint64_t>(r.delay));
  span.set_outcome(r.value.code());
  observe_op(OpKind::kRemove, r.value.code(), 0, r.delay);
  return r;
}

sim::Timed<Result<std::vector<ObjectStat>>> CloudProvider::list(const AccessToken& token,
                                                                const std::string& prefix) {
  obs::Span span = obs::tracer().span("cloud.list");
  span.set_label(name_);
  auto r = list_impl(token, prefix);
  span.set_duration(static_cast<std::uint64_t>(r.delay));
  span.set_outcome(r.value.code());
  observe_op(OpKind::kList, r.value.code(), 0, r.delay);
  return r;
}

sim::Timed<Status> CloudProvider::archive(const AccessToken& token,
                                          const std::string& key) {
  obs::Span span = obs::tracer().span("cloud.archive");
  span.set_label(name_);
  auto r = archive_impl(token, key);
  span.set_duration(static_cast<std::uint64_t>(r.delay));
  span.set_outcome(r.value.code());
  observe_op(OpKind::kArchive, r.value.code(), 0, r.delay);
  return r;
}

sim::Timed<Result<Bytes>> CloudProvider::restore_from_cold(const AccessToken& token,
                                                           const std::string& key) {
  obs::Span span = obs::tracer().span("cloud.restore");
  span.set_label(name_);
  auto r = restore_impl(token, key);
  const std::uint64_t bytes = r.value.ok() ? r.value.value().size() : 0;
  span.set_duration(static_cast<std::uint64_t>(r.delay));
  span.set_bytes(bytes);
  span.set_outcome(r.value.code());
  observe_op(OpKind::kRestore, r.value.code(), bytes, r.delay);
  return r;
}

AccessToken CloudProvider::issue_token(const std::string& user_id, const std::string& fs_id,
                                       TokenScope scope, std::int64_t validity_us) {
  AccessToken t;
  t.user_id = user_id;
  t.fs_id = fs_id;
  t.scope = scope;
  t.issued_us = clock_->now_us();
  t.expires_us = validity_us == 0 ? 0 : clock_->now_us() + validity_us;
  t.nonce = rng_.next_u64();
  const auto it = token_epochs_.find(user_id);
  t.epoch = it == token_epochs_.end() ? 0 : it->second;
  t.mac = crypto::hmac_sha256(token_secret_, t.signing_payload());
  return t;
}

void CloudProvider::revoke_token(const AccessToken& token) {
  revoked_nonces_.insert(token.nonce);
}

sim::Timed<Status> CloudProvider::apply_revocation_floor(const AccessToken& admin_token,
                                                         const std::string& user_id,
                                                         std::uint64_t floor) {
  const auto actions = faults_->on_operation(sim::FaultOp::kControl);
  const auto delay = charge(net_.rpc_delay_us(128, 64), actions);
  if (actions.fail != ErrorCode::kOk) {
    return {Status{actions.fail, name_ + ": " + actions.reason}, delay};
  }
  if (auto s = check_token(admin_token); !s.ok()) return {std::move(s), delay};
  if (admin_token.scope != TokenScope::kAdmin) {
    return {Status{ErrorCode::kPermissionDenied, name_ + ": revocation is admin-only"},
            delay};
  }
  auto& enforced = revocation_floors_[user_id];
  enforced = std::max(enforced, floor);  // monotone: floors never lower
  auto& next = token_epochs_[user_id];
  next = std::max(next, enforced);
  return {Status::Ok(), delay};
}

sim::Timed<Result<AccessToken>> CloudProvider::reissue_token(
    const AccessToken& admin_token, const std::string& user_id, TokenScope scope,
    std::uint64_t floor_hint, std::int64_t validity_us) {
  const auto actions = faults_->on_operation(sim::FaultOp::kControl);
  const auto delay = charge(net_.rpc_delay_us(128, 128), actions);
  if (actions.fail != ErrorCode::kOk) {
    return {Error{actions.fail, name_ + ": " + actions.reason}, delay};
  }
  if (auto s = check_token(admin_token); !s.ok()) return {Error{s.error()}, delay};
  if (admin_token.scope != TokenScope::kAdmin) {
    return {Error{ErrorCode::kPermissionDenied, name_ + ": reissue is admin-only"}, delay};
  }
  auto& next = token_epochs_[user_id];
  next = std::max(next, floor_hint);
  return {Result<AccessToken>{issue_token(user_id, admin_token.fs_id, scope, validity_us)},
          delay};
}

std::uint64_t CloudProvider::revocation_floor(const std::string& user_id) const {
  const auto it = revocation_floors_.find(user_id);
  return it == revocation_floors_.end() ? 0 : it->second;
}

std::uint64_t CloudProvider::token_epoch(const std::string& user_id) const {
  const auto it = token_epochs_.find(user_id);
  return it == token_epochs_.end() ? 0 : it->second;
}

Status CloudProvider::check_token(const AccessToken& token) const {
  const Bytes expected = crypto::hmac_sha256(token_secret_, token.signing_payload());
  if (!ct_equal(expected, token.mac)) {
    return {ErrorCode::kPermissionDenied, name_ + ": token MAC invalid"};
  }
  if (const auto floor = revocation_floors_.find(token.user_id);
      floor != revocation_floors_.end() && token.epoch < floor->second) {
    return {ErrorCode::kRevoked, name_ + ": token epoch below revocation floor"};
  }
  if (revoked_nonces_.contains(token.nonce)) {
    return {ErrorCode::kPermissionDenied, name_ + ": token revoked"};
  }
  if (token.expires_us != 0 && clock_->now_us() > token.expires_us) {
    return {ErrorCode::kExpired, name_ + ": token expired"};
  }
  return {};
}

Status CloudProvider::authorize(const AccessToken& token, const std::string& key,
                                bool write, bool remove) const {
  if (auto s = check_token(token); !s.ok()) return s;
  const bool log_key = is_log_key(key);
  switch (token.scope) {
    case TokenScope::kFiles:
      if (log_key) {
        return {ErrorCode::kPermissionDenied,
                name_ + ": files token cannot access the log namespace"};
      }
      return {};
    case TokenScope::kLogAppend:
      if (!log_key) {
        return {ErrorCode::kPermissionDenied,
                name_ + ": log token cannot access file objects"};
      }
      if (remove) {
        return {ErrorCode::kPermissionDenied, name_ + ": log objects cannot be deleted"};
      }
      if (write && objects_.contains(key)) {
        return {ErrorCode::kPermissionDenied,
                name_ + ": log objects are append-only (key exists)"};
      }
      return {};
    case TokenScope::kAdmin:
      // The administrator reads everything and may rewrite *file* objects
      // during recovery, but even the admin cannot delete or overwrite log
      // entries (paper §3.3: recoveries are themselves logged, never erased).
      if (log_key && remove) {
        return {ErrorCode::kPermissionDenied, name_ + ": log objects cannot be deleted"};
      }
      if (log_key && write && objects_.contains(key)) {
        return {ErrorCode::kPermissionDenied,
                name_ + ": log objects are append-only (key exists)"};
      }
      return {};
  }
  return {ErrorCode::kInternal, "unreachable"};
}

CloudProvider::OpGate CloudProvider::enter_op(const AccessToken& token,
                                              const std::string& key, OpKind kind) {
  OpGate gate;
  sim::FaultOp fault_op = sim::FaultOp::kControl;
  if (kind == OpKind::kGet || kind == OpKind::kRestore) fault_op = sim::FaultOp::kRead;
  if (kind == OpKind::kPut) fault_op = sim::FaultOp::kWrite;
  gate.actions = faults_->on_operation(fault_op);

  // A faulted operation that is not a partial write fails before any
  // server-side check runs (the request never reached the service).
  const bool faulted = gate.actions.fail != ErrorCode::kOk;
  if (faulted && !gate.actions.truncate_payload) {
    gate.status = Status{gate.actions.fail, name_ + ": " + gate.actions.reason};
    return gate;
  }

  switch (kind) {
    case OpKind::kGet:
      gate.status = authorize(token, key, /*write=*/false, /*remove=*/false);
      break;
    case OpKind::kPut:
      gate.status = authorize(token, key, /*write=*/true, /*remove=*/false);
      break;
    case OpKind::kRemove:
      gate.status = authorize(token, key, /*write=*/true, /*remove=*/true);
      break;
    case OpKind::kList:
      gate.status = check_token(token);
      break;
    case OpKind::kArchive:
    case OpKind::kRestore:
      gate.status = check_token(token);
      if (gate.status.ok() && token.scope != TokenScope::kAdmin) {
        gate.status = Status{ErrorCode::kPermissionDenied,
                             name_ + (kind == OpKind::kArchive
                                          ? ": archival is admin-only"
                                          : ": cold reads are admin-only")};
      }
      break;
  }
  if (!gate.status.ok()) {
    // Authorization failed: nothing was stored, so a concurrent partial
    // write fault leaves no trace.
    gate.actions.truncate_payload = false;
    return gate;
  }
  if (faulted) {
    gate.status = Status{gate.actions.fail, name_ + ": " + gate.actions.reason};
  }
  return gate;
}

sim::SimClock::Micros CloudProvider::charge(sim::SimClock::Micros base_us,
                                            const sim::FaultActions& actions) const {
  double factor = actions.latency_factor;
  if (actions.fail == ErrorCode::kTimeout) factor *= kTimeoutStallFactor;
  return static_cast<sim::SimClock::Micros>(static_cast<double>(base_us) * factor);
}

std::int64_t CloudProvider::adversarial_cutoff(const std::string& viewer) const {
  const auto& adv = faults_->adversarial();
  switch (adv.mode) {
    case sim::AdversarialMode::kRollback:
      return adv.freeze_us;
    case sim::AdversarialMode::kEquivocate:
      return sim::adversarial_stale_group(viewer, adv.partition_salt) ? adv.freeze_us
                                                                      : -1;
    case sim::AdversarialMode::kReplayWindow: {
      const std::int64_t now = clock_->now_us();
      return now > adv.window_us ? now - adv.window_us : 0;
    }
    case sim::AdversarialMode::kWithholdShares:
    case sim::AdversarialMode::kNone:
      return -1;
  }
  return -1;
}

const CloudProvider::HistoryEntry* CloudProvider::view_at(const std::string& key,
                                                          std::int64_t cutoff_us) const {
  const auto it = history_.find(key);
  if (it == history_.end()) return nullptr;
  const HistoryEntry* best = nullptr;
  // Entries are in acceptance order; the last one at or before the cutoff is
  // what a reader saw then.
  for (const auto& e : it->second) {
    if (e.modified_us <= cutoff_us) best = &e;
  }
  if (best == nullptr || best->removed) return nullptr;
  return best;
}

void CloudProvider::record_history(const std::string& key, const Object& obj,
                                   bool removed) {
  history_[key].push_back({obj.data, obj.modified_us, obj.writer, removed});
}

sim::Timed<Status> CloudProvider::put_impl(const AccessToken& token,
                                           const std::string& key, BytesView data) {
  auto gate = enter_op(token, key, OpKind::kPut);
  const auto delay = charge(net_.upload_delay_us(data.size()), gate.actions);
  if (!gate.status.ok()) {
    if (gate.actions.truncate_payload && !is_log_key(key)) {
      // The connection dropped mid-upload: a truncated object replaces the
      // key (digest checks will catch it). Log objects are exempt — the
      // append-only namespace offers atomic create, or a half-written entry
      // could never be repaired.
      const std::size_t kept = data.size() / 2;
      traffic_.add_upload(kept);
      Object obj;
      obj.data.assign(data.begin(), data.begin() + static_cast<std::ptrdiff_t>(kept));
      obj.modified_us = clock_->now_us();
      obj.writer = token.user_id;
      record_history(key, obj, /*removed=*/false);
      objects_[key] = std::move(obj);
      return {std::move(gate.status), delay};
    }
    const bool faulted = gate.actions.fail != ErrorCode::kOk;
    return {std::move(gate.status), faulted ? delay : net_.rpc_delay_us(64, 64)};
  }
  traffic_.add_upload(data.size());
  Object obj;
  obj.data.assign(data.begin(), data.end());
  obj.modified_us = clock_->now_us();
  obj.writer = token.user_id;
  record_history(key, obj, /*removed=*/false);
  objects_[key] = std::move(obj);
  return {Status::Ok(), delay};
}

sim::Timed<Result<Bytes>> CloudProvider::get_impl(const AccessToken& token,
                                                  const std::string& key) {
  auto gate = enter_op(token, key, OpKind::kGet);
  if (!gate.status.ok()) {
    const bool faulted = gate.actions.fail != ErrorCode::kOk;
    return {Error{gate.status.error()},
            faulted ? charge(net_.rpc_delay_us(64, 0), gate.actions)
                    : net_.rpc_delay_us(64, 64)};
  }
  if (faults_->adversarial_active()) {
    if (faults_->adversarial().mode == sim::AdversarialMode::kWithholdShares) {
      if (!is_metadata_key(key)) {
        // Metadata is served honestly; the data shares "were never uploaded".
        return {Error{ErrorCode::kNotFound, name_ + ": no such object: " + key},
                net_.rpc_delay_us(64, 64)};
      }
    } else if (const std::int64_t cutoff = adversarial_cutoff(token.user_id);
               cutoff >= 0) {
      // Serve the reconstructed old view: real bytes this provider once
      // stored, so every signature and digest still verifies.
      const HistoryEntry* e = view_at(key, cutoff);
      if (e == nullptr) {
        return {Error{ErrorCode::kNotFound, name_ + ": no such object: " + key},
                net_.rpc_delay_us(64, 64)};
      }
      traffic_.add_download(e->data.size());
      Bytes data = e->data;
      if (gate.actions.corrupt_payload) corrupt_payload(data);
      return {std::move(data), charge(net_.download_delay_us(e->data.size()), gate.actions)};
    }
  }
  const auto it = objects_.find(key);
  if (it == objects_.end()) {
    return {Error{ErrorCode::kNotFound, name_ + ": no such object: " + key},
            net_.rpc_delay_us(64, 64)};
  }
  traffic_.add_download(it->second.data.size());
  Bytes data = it->second.data;
  if (gate.actions.corrupt_payload) {
    // A lying or flaky cloud returns plausible-looking garbage.
    corrupt_payload(data);
  }
  return {std::move(data),
          charge(net_.download_delay_us(it->second.data.size()), gate.actions)};
}

sim::Timed<Status> CloudProvider::remove_impl(const AccessToken& token,
                                              const std::string& key) {
  auto gate = enter_op(token, key, OpKind::kRemove);
  const auto delay = charge(net_.rpc_delay_us(64, 64), gate.actions);
  if (!gate.status.ok()) return {std::move(gate.status), delay};
  if (objects_.erase(key) == 0) {
    return {{ErrorCode::kNotFound, name_ + ": no such object: " + key}, delay};
  }
  Object tombstone;
  tombstone.modified_us = clock_->now_us();
  tombstone.writer = token.user_id;
  record_history(key, tombstone, /*removed=*/true);
  return {Status::Ok(), delay};
}

sim::Timed<Result<std::vector<ObjectStat>>> CloudProvider::list_impl(
    const AccessToken& token, const std::string& prefix) {
  auto gate = enter_op(token, prefix, OpKind::kList);
  if (!gate.status.ok()) {
    const bool faulted = gate.actions.fail != ErrorCode::kOk;
    return {Error{gate.status.error()},
            faulted ? charge(net_.rpc_delay_us(64, 0), gate.actions)
                    : net_.rpc_delay_us(64, 64)};
  }
  // Listing follows the same namespace rule as reads.
  if (token.scope == TokenScope::kFiles && is_log_key(prefix)) {
    return {Error{ErrorCode::kPermissionDenied, name_ + ": files token cannot list logs"},
            net_.rpc_delay_us(64, 64)};
  }
  std::vector<ObjectStat> out;
  std::size_t response_bytes = 0;
  const bool withholding =
      faults_->adversarial_active() &&
      faults_->adversarial().mode == sim::AdversarialMode::kWithholdShares;
  const std::int64_t cutoff =
      faults_->adversarial_active() ? adversarial_cutoff(token.user_id) : -1;
  if (cutoff >= 0) {
    // Listing reflects the same reconstructed view the gets serve.
    for (auto it = history_.lower_bound(prefix); it != history_.end(); ++it) {
      if (!it->first.starts_with(prefix)) break;
      if (token.scope == TokenScope::kLogAppend && !is_log_key(it->first)) continue;
      const HistoryEntry* e = view_at(it->first, cutoff);
      if (e == nullptr) continue;
      out.push_back({it->first, e->data.size(), e->modified_us, e->writer});
      response_bytes += it->first.size() + 32;
    }
    return {std::move(out), charge(net_.rpc_delay_us(64, response_bytes), gate.actions)};
  }
  for (auto it = objects_.lower_bound(prefix); it != objects_.end(); ++it) {
    if (!it->first.starts_with(prefix)) break;
    if (token.scope == TokenScope::kLogAppend && !is_log_key(it->first)) continue;
    if (withholding && !is_metadata_key(it->first)) continue;
    out.push_back({it->first, it->second.data.size(), it->second.modified_us,
                   it->second.writer});
    response_bytes += it->first.size() + 32;
  }
  return {std::move(out), charge(net_.rpc_delay_us(64, response_bytes), gate.actions)};
}

std::uint64_t CloudProvider::stored_bytes() const noexcept {
  std::uint64_t total = 0;
  for (const auto& [key, obj] : objects_) total += obj.data.size();
  return total;
}

Status CloudProvider::corrupt_object(const std::string& key) {
  const auto it = objects_.find(key);
  if (it == objects_.end()) return {ErrorCode::kNotFound, "corrupt_object: " + key};
  for (std::size_t i = 0; i < it->second.data.size(); i += 53) it->second.data[i] ^= 0x5A;
  if (it->second.data.empty()) it->second.data.push_back(0xFF);
  return {};
}

sim::Timed<Status> CloudProvider::archive_impl(const AccessToken& token,
                                               const std::string& key) {
  auto gate = enter_op(token, key, OpKind::kArchive);
  const auto delay = charge(net_.rpc_delay_us(128, 64), gate.actions);
  if (!gate.status.ok()) return {std::move(gate.status), delay};
  const auto it = objects_.find(key);
  if (it == objects_.end()) {
    return {{ErrorCode::kNotFound, name_ + ": no such object: " + key}, delay};
  }
  cold_[key] = std::move(it->second);
  objects_.erase(it);
  return {Status::Ok(), delay};
}

sim::Timed<Result<Bytes>> CloudProvider::restore_impl(const AccessToken& token,
                                                      const std::string& key) {
  // Glacier-class retrieval: a large fixed delay plus a slow transfer.
  constexpr sim::SimClock::Micros kColdRetrievalUs = 4L * 3600 * 1'000'000;  // 4h
  auto gate = enter_op(token, key, OpKind::kRestore);
  if (!gate.status.ok()) {
    const bool faulted = gate.actions.fail != ErrorCode::kOk;
    return {Error{gate.status.error()},
            faulted ? charge(net_.rpc_delay_us(64, 0), gate.actions)
                    : net_.rpc_delay_us(64, 64)};
  }
  const auto it = cold_.find(key);
  if (it == cold_.end()) {
    return {Error{ErrorCode::kNotFound, name_ + ": not in cold storage: " + key},
            net_.rpc_delay_us(64, 64)};
  }
  traffic_.add_download(it->second.data.size());
  Bytes data = it->second.data;
  if (gate.actions.corrupt_payload) corrupt_payload(data);
  return {std::move(data),
          charge(kColdRetrievalUs + net_.download_delay_us(it->second.data.size()),
                 gate.actions)};
}

std::uint64_t CloudProvider::cold_bytes() const noexcept {
  std::uint64_t total = 0;
  for (const auto& [key, obj] : cold_) total += obj.data.size();
  return total;
}

Status CloudProvider::lose_object(const std::string& key) {
  if (objects_.erase(key) == 0) return {ErrorCode::kNotFound, "lose_object: " + key};
  return {};
}

std::vector<CloudProviderPtr> make_provider_fleet(const sim::SimClockPtr& clock,
                                                  std::size_t count, std::uint64_t seed) {
  std::vector<CloudProviderPtr> fleet;
  fleet.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    auto profile = sim::LinkProfile::s3_like("cloud-" + std::to_string(i));
    // Mild heterogeneity across providers, as in a real cloud-of-clouds.
    profile.rtt_us += static_cast<std::int64_t>(i) * 2'000;
    profile.up_bytes_per_sec *= 1.0 + 0.07 * static_cast<double>(i);
    fleet.push_back(std::make_shared<CloudProvider>(profile.name, clock, profile,
                                                    seed + 1000 * i));
  }
  return fleet;
}

}  // namespace rockfs::cloud
