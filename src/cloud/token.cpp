#include "cloud/token.h"

namespace rockfs::cloud {

const char* token_scope_name(TokenScope s) {
  switch (s) {
    case TokenScope::kFiles: return "files";
    case TokenScope::kLogAppend: return "log-append";
    case TokenScope::kAdmin: return "admin";
  }
  return "?";
}

Bytes AccessToken::signing_payload() const {
  Bytes out;
  append_lp(out, to_bytes(user_id));
  append_lp(out, to_bytes(fs_id));
  out.push_back(static_cast<Byte>(scope));
  append_u64(out, static_cast<std::uint64_t>(issued_us));
  append_u64(out, static_cast<std::uint64_t>(expires_us));
  append_u64(out, nonce);
  append_u64(out, epoch);
  return out;
}

Bytes AccessToken::serialize() const {
  Bytes out = signing_payload();
  append_lp(out, mac);
  return out;
}

Result<AccessToken> AccessToken::deserialize(BytesView b) {
  try {
    AccessToken t;
    std::size_t off = 0;
    t.user_id = to_string(read_lp(b, &off));
    t.fs_id = to_string(read_lp(b, &off));
    if (off >= b.size()) return Error{ErrorCode::kCorrupted, "token: truncated"};
    const Byte scope = b[off++];
    if (scope > 2) return Error{ErrorCode::kCorrupted, "token: bad scope"};
    t.scope = static_cast<TokenScope>(scope);
    t.issued_us = static_cast<std::int64_t>(read_u64(b, off));
    off += 8;
    t.expires_us = static_cast<std::int64_t>(read_u64(b, off));
    off += 8;
    t.nonce = read_u64(b, off);
    off += 8;
    t.epoch = read_u64(b, off);
    off += 8;
    t.mac = read_lp(b, &off);
    if (off != b.size()) return Error{ErrorCode::kCorrupted, "token: trailing bytes"};
    return t;
  } catch (const std::exception& e) {
    return Error{ErrorCode::kCorrupted, std::string("token: ") + e.what()};
  }
}

}  // namespace rockfs::cloud
