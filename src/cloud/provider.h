// Simulated cloud object-storage provider (the Amazon-S3 stand-in).
//
// One instance models one provider/bucket: a flat key -> object map with
// token-enforced access control, a WAN latency model, per-byte traffic
// accounting, and fault injection (outage, corruption, Byzantine responses).
// Operations never advance the shared clock; they return sim::Timed results
// that callers compose (see sim/timed.h).
//
// Namespace convention (enforced, not advisory):
//   keys starting with "logs/"  — append-only recovery log objects
//   everything else             — regular file objects
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cloud/token.h"
#include "common/result.h"
#include "common/rng.h"
#include "obs/metrics.h"
#include "sim/faults.h"
#include "sim/network.h"
#include "sim/timed.h"

namespace rockfs::cloud {

/// Prefix of the append-only log namespace.
inline constexpr const char* kLogPrefix = "logs/";

struct ObjectStat {
  std::string key;
  std::size_t size = 0;
  std::int64_t modified_us = 0;
  std::string writer;
};

class CloudProvider {
 public:
  CloudProvider(std::string name, sim::SimClockPtr clock, sim::LinkProfile profile,
                std::uint64_t seed);

  const std::string& name() const noexcept { return name_; }

  // ---- token management (provider side) ----

  /// Issues a token; `validity_us` 0 means no expiry. The token is stamped
  /// with the user's current issuance epoch (>= any applied revocation floor).
  AccessToken issue_token(const std::string& user_id, const std::string& fs_id,
                          TokenScope scope, std::int64_t validity_us = 0);
  /// Revoked tokens fail verification from now on.
  void revoke_token(const AccessToken& token);

  // ---- epoch revocation (compromise response) ----
  //
  // Each user has a monotone revocation floor, raised by the admin after a
  // compromise: every operation presenting a token whose epoch is below the
  // floor fails kRevoked, regardless of MAC validity or expiry. The floor is
  // quorum-stored at the coordination service and pushed to each cloud
  // individually, so a cloud in outage simply has not learned it yet — the
  // admin retries the push after recovery and the cloud enforces from then
  // on (fail-closed: stale tokens never regain validity).

  /// Admin control op raising `user_id`'s revocation floor to at least
  /// `floor`. Subject to the fault schedule: a cloud in outage returns
  /// kUnavailable and the caller must retry once it recovers. Also bumps the
  /// issuance epoch so replacement tokens minted afterwards survive the floor.
  sim::Timed<Status> apply_revocation_floor(const AccessToken& admin_token,
                                            const std::string& user_id,
                                            std::uint64_t floor);
  /// Rotation-time replacement issuance: like issue_token but subject to the
  /// fault schedule (an unreachable cloud cannot mint) and stamped at
  /// max(current issuance epoch, floor_hint), so the token outlives a floor
  /// of `floor_hint` even when that floor has not reached this cloud yet.
  sim::Timed<Result<AccessToken>> reissue_token(const AccessToken& admin_token,
                                                const std::string& user_id,
                                                TokenScope scope, std::uint64_t floor_hint,
                                                std::int64_t validity_us = 0);
  /// The floor this cloud currently enforces for `user_id` (0 = never revoked).
  std::uint64_t revocation_floor(const std::string& user_id) const;
  /// The epoch the next issue_token for `user_id` would carry.
  std::uint64_t token_epoch(const std::string& user_id) const;

  // ---- object operations (each returns payload + simulated delay) ----

  sim::Timed<Status> put(const AccessToken& token, const std::string& key, BytesView data);
  sim::Timed<Result<Bytes>> get(const AccessToken& token, const std::string& key);
  sim::Timed<Status> remove(const AccessToken& token, const std::string& key);
  sim::Timed<Result<std::vector<ObjectStat>>> list(const AccessToken& token,
                                                   const std::string& prefix);

  // ---- introspection / accounting ----

  bool exists(const std::string& key) const { return objects_.contains(key); }
  std::size_t object_count() const noexcept { return objects_.size(); }
  /// Total bytes currently stored (the Fig. 6 storage metric).
  std::uint64_t stored_bytes() const noexcept;
  sim::TrafficMeter& traffic() noexcept { return traffic_; }
  const sim::TrafficMeter& traffic() const noexcept { return traffic_; }

  // ---- fault injection ----

  /// Time-varying fault schedule consulted on every operation: outage
  /// windows, transient errors, timeouts, tail-latency storms, partial
  /// writes and read corruption (sim/faults.h). The legacy flags below are
  /// one-line wrappers over its permanent entries.
  sim::FaultSchedule& faults() noexcept { return *faults_; }
  const sim::FaultSchedule& faults() const noexcept { return *faults_; }

  /// While unavailable every operation fails with kUnavailable.
  void set_available(bool available) noexcept { faults_->set_down(!available); }
  bool available() const noexcept { return !faults_->down(); }
  /// While Byzantine, get() returns corrupted payloads (but claims success).
  void set_byzantine(bool byzantine) noexcept { faults_->set_byzantine(byzantine); }
  /// Flips bits of a stored object in place (silent data corruption).
  Status corrupt_object(const std::string& key);
  /// Deletes an object bypassing access control (models provider-side loss).
  Status lose_object(const std::string& key);

  // ---- cold storage tier (Amazon-Glacier-like; paper footnote 3) ----
  //
  // The snapshot/compaction mechanism moves old log-entry payloads here:
  // they stop counting against hot storage but remain retrievable (slowly).
  // Archival is admin-only; it is the sanctioned way to shrink the log
  // without violating its append-only guarantee.

  /// Moves a hot object into the cold tier (admin token required).
  sim::Timed<Status> archive(const AccessToken& token, const std::string& key);
  /// Retrieves a cold object (hours-scale simulated delay).
  sim::Timed<Result<Bytes>> restore_from_cold(const AccessToken& token,
                                              const std::string& key);
  bool archived(const std::string& key) const { return cold_.contains(key); }
  std::uint64_t cold_bytes() const noexcept;

  const sim::SimClockPtr& clock() const noexcept { return clock_; }

 private:
  struct Object {
    Bytes data;
    std::int64_t modified_us = 0;
    std::string writer;
  };

  /// One accepted mutation of a key, in acceptance order. The history feeds
  /// adversarial serving (sim::AdversarialMode): a malicious provider keeps
  /// accepting and acking writes like an honest one but answers reads from a
  /// reconstructed old view — every byte it serves is something it really
  /// stored, so signatures and digests verify.
  struct HistoryEntry {
    Bytes data;
    std::int64_t modified_us = 0;
    std::string writer;
    bool removed = false;
  };

  Status authorize(const AccessToken& token, const std::string& key, bool write,
                   bool remove) const;
  Status check_token(const AccessToken& token) const;

  /// The operation classes the checked-entry helper distinguishes.
  enum class OpKind { kGet, kPut, kRemove, kList, kArchive, kRestore };
  static constexpr std::size_t kOpKinds = 6;

  /// Cached registry handles, one set per OpKind: registry lookups happen
  /// once in the constructor, op wrappers touch only atomics (hot path).
  struct OpMetrics {
    obs::Counter* count = nullptr;
    obs::Counter* errors = nullptr;
    obs::Counter* bytes = nullptr;
    obs::Histogram* delay_us = nullptr;
  };
  OpMetrics& op_metrics(OpKind kind) { return op_metrics_[static_cast<std::size_t>(kind)]; }
  /// Records span fields + cached counters for one finished operation.
  void observe_op(OpKind kind, ErrorCode outcome, std::uint64_t bytes,
                  sim::SimClock::Micros delay_us);

  sim::Timed<Status> put_impl(const AccessToken& token, const std::string& key,
                              BytesView data);
  sim::Timed<Result<Bytes>> get_impl(const AccessToken& token, const std::string& key);
  sim::Timed<Status> remove_impl(const AccessToken& token, const std::string& key);
  sim::Timed<Result<std::vector<ObjectStat>>> list_impl(const AccessToken& token,
                                                        const std::string& prefix);
  sim::Timed<Status> archive_impl(const AccessToken& token, const std::string& key);
  sim::Timed<Result<Bytes>> restore_impl(const AccessToken& token, const std::string& key);

  /// Shared preamble of every object operation: consults the fault schedule,
  /// then runs the token/authorization checks appropriate for `kind`. A
  /// non-ok status means the operation must fail with it; `actions` carries
  /// the fault side-effects (latency factor, corruption, truncation).
  struct OpGate {
    Status status;
    sim::FaultActions actions;
  };
  OpGate enter_op(const AccessToken& token, const std::string& key, OpKind kind);

  /// Applies a fault-schedule latency factor (and the timeout stall) to a
  /// base delay.
  sim::SimClock::Micros charge(sim::SimClock::Micros base_us,
                               const sim::FaultActions& actions) const;

  /// Cutoff instant of the adversarially-served view for `viewer`, or -1
  /// when this viewer gets the live view (honest provider, equivocation
  /// fresh group).
  std::int64_t adversarial_cutoff(const std::string& viewer) const;
  /// Latest surviving mutation of `key` at or before `cutoff_us`; nullptr if
  /// the key did not exist (or was removed) in that view.
  const HistoryEntry* view_at(const std::string& key, std::int64_t cutoff_us) const;
  /// Records one accepted mutation in the serving history.
  void record_history(const std::string& key, const Object& obj, bool removed);

  std::string name_;
  sim::SimClockPtr clock_;
  sim::NetworkModel net_;
  Rng rng_;
  Bytes token_secret_;
  std::map<std::string, Object> objects_;
  std::map<std::string, std::vector<HistoryEntry>> history_;
  std::map<std::string, Object> cold_;
  std::set<std::uint64_t> revoked_nonces_;
  std::map<std::string, std::uint64_t> token_epochs_;       // next-issuance epoch
  std::map<std::string, std::uint64_t> revocation_floors_;  // enforced floor
  sim::TrafficMeter traffic_;
  sim::FaultSchedulePtr faults_;
  OpMetrics op_metrics_[kOpKinds];
};

using CloudProviderPtr = std::shared_ptr<CloudProvider>;

/// Convenience: builds `count` providers with S3-like profiles and distinct seeds.
std::vector<CloudProviderPtr> make_provider_fleet(const sim::SimClockPtr& clock,
                                                  std::size_t count, std::uint64_t seed);

}  // namespace rockfs::cloud
