// Access tokens as issued by cloud storage providers (paper §2.2, Table 1).
// RockFS uses two per user: t_u authorizes reads/writes of the user's file
// objects but cannot touch the log namespace, while t_l may only *append*
// new log objects — never overwrite or delete anything. The separation is
// what keeps an attacker with full client-device access from destroying the
// recovery log (threats A2/A3, §3.1).
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.h"
#include "common/result.h"

namespace rockfs::cloud {

enum class TokenScope {
  kFiles,      // t_u: full access to the user's file objects, no log access
  kLogAppend,  // t_l: create-only access to the log namespace
  kAdmin,      // administrator: read everything incl. logs; manage recovery
};

const char* token_scope_name(TokenScope s);

struct AccessToken {
  std::string user_id;
  std::string fs_id;           // identifies the RockFS deployment
  TokenScope scope = TokenScope::kFiles;
  std::int64_t issued_us = 0;
  std::int64_t expires_us = 0;  // 0 = no expiry
  std::uint64_t nonce = 0;      // provider-chosen, makes tokens unpredictable
  std::uint64_t epoch = 0;      // issuance epoch; dies below the revocation floor
  Bytes mac;                    // provider MAC over all fields

  /// Canonical byte encoding of everything except the MAC (MAC input).
  Bytes signing_payload() const;

  /// Full wire encoding (fields + MAC), e.g. for keystore storage.
  Bytes serialize() const;
  static Result<AccessToken> deserialize(BytesView b);
};

}  // namespace rockfs::cloud
