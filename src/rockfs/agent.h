// The RockFS agent (paper §2.3/§2.4): the client-side middleware that sits
// between the user and the cloud-backed file system. It owns
//   * the keystore lifecycle — login reconstructs the keystore in RAM from
//     PVSS shares (device + coordination service by default, external memory
//     for recovery) and nothing secret ever touches the simulated disk,
//   * the SCFS instance, with the encrypting cache transform installed,
//   * the log service, wired into SCFS's close path so that the log upload
//     runs in parallel with the file upload.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "rockfs/cache_security.h"
#include "rockfs/keystore.h"
#include "rockfs/logservice.h"
#include "scfs/scfs.h"

namespace rockfs::core {

struct AgentOptions {
  scfs::SyncMode sync_mode = scfs::SyncMode::kNonBlocking;
  depsky::Protocol protocol = depsky::Protocol::kCA;
  bool enable_logging = true;        // false = plain SCFS (the paper's baseline)
  bool enable_cache_crypto = true;   // false = plaintext cache (stock SCFS)
  bool compress_log = false;         // LZ-compress ld_fu payloads (§6.2 extension)
  std::int64_t session_key_validity_us = 3'600'000'000;  // 1 virtual hour
  std::size_t f = 1;
  /// Additional DepSky writers this agent trusts (the administrator's key,
  /// so that recovered files verify).
  std::vector<Bytes> trusted_writers;
  /// Persist write-ahead intents before each close pipeline and replay them
  /// at login, so a client crash anywhere along the close path is repaired
  /// on the next session (journal.h).
  bool enable_journal = true;
  /// Crash schedule for fault-injection tests: crash points along the close
  /// path consult it, and a fired crash tears the session down exactly like
  /// a dead client process (the API call reports kCrashed).
  sim::CrashSchedulePtr crash;
  /// Lease TTL for advisory locks (scfs/lease.h); an expired lease is
  /// evictable by any contender.
  std::int64_t lease_ttl_us = 30'000'000;
  /// Fencing epochs on the close path (scfs/lease.h). Off reproduces the
  /// PR 3 close pipeline byte-for-byte (bench baseline).
  bool fencing = true;
  /// Thread pool for the DepSky fan-out and per-share encode/seal work
  /// (common/executor.h); null runs everything inline. Seeded results are
  /// byte-identical either way (the determinism contract, ARCHITECTURE §11).
  std::shared_ptr<common::Executor> executor;
  /// Fan-out join discipline; kBarrier keeps virtual time deterministic.
  common::JoinMode join_mode = common::JoinMode::kBarrier;
  /// Deployment-wide freshness witness (depsky/metadata.h): every client
  /// session records the versions each cloud acked or served, so a cloud
  /// contradicting itself across sessions is caught. Null = private witness.
  depsky::VersionWitnessPtr witness;
  /// Cloud-set membership epoch this agent believes current (depsky/
  /// reconfig.h). Writes fail closed (kFenced) against newer-epoch metadata.
  std::uint64_t membership_epoch = 0;
  /// Client cache (src/cache, ARCHITECTURE §13). On disables all three tiers.
  bool enable_cache = true;
  /// Pre-built per-user cache handle. Null = the agent builds a private one
  /// at first login and keeps it across re-logins (entries survive because
  /// they are sealed; a rotated key makes stale ones fail open). Deployments
  /// pass a shared handle so compromise response can drop it from outside.
  cache::ClientCachePtr cache;
  /// Sizing/TTL knobs when the agent builds its own cache.
  cache::CacheOptions cache_config;
  /// Write-back staging of close()s (off = write-through, the PR ≤9 path).
  cache::WriteBackOptions writeback;
};

/// Where the agent finds PVSS share-holder keys at login time. The device
/// holder key models the share on the client disk; the external holder key
/// models the USB stick / smart card (paper Fig. 2).
struct LoginMaterial {
  std::optional<ShareHolder> device;
  std::optional<ShareHolder> coordination;
  std::optional<ShareHolder> external;
};

class RockFsAgent {
 public:
  using Fd = scfs::Scfs::Fd;

  RockFsAgent(std::string user_id, std::vector<cloud::CloudProviderPtr> clouds,
              std::shared_ptr<coord::CoordinationService> coordination,
              sim::SimClockPtr clock, AgentOptions options,
              std::vector<crypto::Point> holder_pubs, std::size_t holder_threshold);

  // ---- session lifecycle (paper §4.1) ----

  /// Reconstructs the keystore from >= k of the supplied holders and brings
  /// up the file-system stack. Fails with kIntegrity on tampered shares.
  Status login(const SealedKeystore& sealed, const LoginMaterial& material);
  void logout();
  bool logged_in() const noexcept { return fs_ != nullptr; }

  // ---- file API (valid only while logged in) ----

  Result<Fd> create(const std::string& path);
  Result<Fd> open(const std::string& path);
  Result<Bytes> read(Fd fd, std::size_t offset, std::size_t length);
  Status write(Fd fd, std::size_t offset, BytesView data);
  Status append(Fd fd, BytesView data);
  Status truncate(Fd fd, std::size_t size);
  Status close(Fd fd);
  sim::Timed<Status> close_timed(Fd fd);
  Status unlink(const std::string& path);
  Result<scfs::FileStat> stat(const std::string& path);
  Result<std::vector<std::string>> readdir(const std::string& prefix);
  void drain_background();

  // ---- write-back control (cache/writeback.h; no-ops when wb is off) ----

  /// fsync semantics: commit the staged write-back for `path` now.
  Status flush(const std::string& path);
  /// Commit every staged write-back (called by logout automatically).
  Status flush_all();

  // ---- advisory locking (lease + fencing epoch, scfs/lease.h) ----

  Status lock(const std::string& path);
  Status unlock(const std::string& path);
  /// Lease epoch this session believes it holds for `path` (stale after an
  /// eviction — the fencing check is what catches the divergence).
  std::optional<std::uint64_t> held_epoch(const std::string& path) const;

  /// Trusts `public_key` as a DepSky metadata signer, now and for future
  /// logins: required for reading files last written by another user of a
  /// shared namespace.
  void trust_writer(const Bytes& public_key);

  // ---- cloud-set reconfiguration (depsky/reconfig.h) ----

  /// Swaps the provider at `index` (a reconfiguration replaced a quarantined
  /// cloud). Takes effect at the next login, which rebuilds the storage
  /// stack over the new set.
  void replace_cloud(std::size_t index, cloud::CloudProviderPtr cloud);
  /// Adopts a newer membership epoch, now and for future logins; the live
  /// storage client (if any) starts fencing against it immediately.
  void set_membership_epoch(std::uint64_t epoch);
  /// The live DepSky client, or null when logged out (tests inspect its
  /// per-cloud quarantine state).
  std::shared_ptr<depsky::DepSkyClient> storage() const noexcept { return storage_; }

  /// Convenience: create-or-open + overwrite content + close.
  Status write_file(const std::string& path, BytesView content);
  /// Convenience: open + read-all + close.
  Result<Bytes> read_file(const std::string& path);

  // ---- introspection ----

  const std::string& user_id() const noexcept { return user_id_; }
  scfs::Scfs& fs();
  const Keystore& keystore() const;
  /// The session key S_U currently held in RAM (minted on the spot if the
  /// cache has not forced one yet). Attack drivers use this: a compromised
  /// device reads the key straight out of the agent's memory (threat T3).
  Bytes current_session_key();
  /// Sequence number of the next log entry (== entries logged so far).
  std::uint64_t log_seq() const;
  const AgentOptions& options() const noexcept { return options_; }
  /// The per-user cache handle (null before first login / when disabled).
  /// Outlives sessions: logout keeps it, revocation drops its contents.
  const cache::ClientCachePtr& cache() const noexcept { return cache_; }
  /// Drops every cache tier for this user (compromise response / tests).
  void drop_cache();

 private:
  /// Turns a fired crash point into the dead-client outcome: the session is
  /// torn down (all in-RAM state dropped) and the call reports kCrashed.
  Status crash_landing(const sim::ClientCrash& crash);

  std::string user_id_;
  std::vector<cloud::CloudProviderPtr> clouds_;
  std::shared_ptr<coord::CoordinationService> coordination_;
  sim::SimClockPtr clock_;
  AgentOptions options_;
  std::vector<crypto::Point> holder_pubs_;
  std::size_t holder_threshold_;
  /// Login counter: each login is a distinct session ("u-s1", "u-s2", ...),
  /// so a relogin after a crash cannot silently reuse its predecessor's
  /// lease — it must renew through the normal eviction path.
  std::uint64_t logins_ = 0;

  // Populated by login(), torn down by logout(). The keystore lives here,
  // in "RAM", only.
  std::unique_ptr<Keystore> keystore_;
  std::shared_ptr<crypto::Drbg> drbg_;
  std::shared_ptr<depsky::DepSkyClient> storage_;
  std::unique_ptr<scfs::Scfs> fs_;
  std::unique_ptr<LogService> log_;
  std::shared_ptr<SessionKeyManager> session_keys_;
  /// Survives logout/login cycles (the whole point of sealing entries); only
  /// drop_cache(), key rotation, or compromise response empty it.
  cache::ClientCachePtr cache_;
};

}  // namespace rockfs::core
