#include "rockfs/costs.h"

#include <map>

namespace rockfs::core {

double estimate_monthly_storage_usd(const CostModel& model,
                                    const std::vector<LogRecord>& records) {
  double log_bytes = 0;
  std::map<std::string, double> last_file_size;
  for (const auto& r : records) {
    log_bytes += 2.0 * static_cast<double>(r.payload_size);  // erasure-coded
    if (r.op == "delete") {
      last_file_size[r.path] = 0;
    } else if (r.whole_file) {
      last_file_size[r.path] = 2.0 * static_cast<double>(r.payload_size);
    } else {
      // Deltas only bound the growth; approximate by accumulation.
      last_file_size[r.path] += 2.0 * static_cast<double>(r.payload_size);
    }
  }
  double file_bytes = 0;
  for (const auto& [path, size] : last_file_size) file_bytes += size;
  return model.monthly_storage_cost_usd(file_bytes + log_bytes, 0);
}

}  // namespace rockfs::core
