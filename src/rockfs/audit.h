// Administrator-side log analysis (paper §2.2: administrators "monitor the
// usage of RockFS"). Provides structured queries and usage statistics over
// the verified log records, plus a heuristic ransomware detector.
//
// The paper explicitly takes intrusion detection as a given (§3.3 step 3:
// "we assume that there is some way of knowing which modifications have been
// compromised"). This module supplies a concrete instance of that assumed
// component: ransomware has a loud metadata signature — a dense burst of
// whole-file rewrites across many distinct files, with high-entropy payloads
// — and the detector flags exactly those log entries.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "rockfs/logservice.h"

namespace rockfs::core {

struct AuditQuery {
  std::optional<std::string> path;    // exact match
  std::optional<std::string> op;      // "create" | "update" | "delete" | ...
  std::int64_t from_us = 0;           // timestamp range [from, to]
  std::int64_t to_us = INT64_MAX;
  std::optional<std::uint64_t> min_seq;
  std::optional<std::uint64_t> max_seq;
};

struct UsageStats {
  std::size_t total_operations = 0;
  std::uint64_t total_log_bytes = 0;
  std::size_t whole_file_entries = 0;
  std::size_t delta_entries = 0;
  std::map<std::string, std::size_t> ops_by_type;
  std::map<std::string, std::size_t> ops_by_path;
  std::int64_t first_op_us = 0;
  std::int64_t last_op_us = 0;
};

/// Shannon entropy of a byte buffer in bits/byte (0..8). Ciphertext sits
/// near 8; text and most working data well below.
double byte_entropy(BytesView data);

class AuditAnalyzer {
 public:
  explicit AuditAnalyzer(std::vector<LogRecord> records);

  const std::vector<LogRecord>& records() const noexcept { return records_; }

  /// Records matching the query, in seq order.
  std::vector<const LogRecord*> query(const AuditQuery& q) const;

  UsageStats stats() const;

  struct DetectionConfig {
    /// Burst window: operations within this span count together.
    std::int64_t window_us = 120'000'000;  // 2 virtual minutes
    /// A burst is suspicious when it rewrites at least this many files...
    std::size_t min_files = 3;
    /// ...mostly with whole-file (not delta) entries.
    double min_whole_file_fraction = 0.8;
  };

  /// Metadata-only detector: seq numbers of entries inside mass-rewrite
  /// bursts. No payload access required.
  std::set<std::uint64_t> detect_mass_rewrite(const DetectionConfig& config) const;
  std::set<std::uint64_t> detect_mass_rewrite() const {
    return detect_mass_rewrite(DetectionConfig{});
  }

  /// Refines a candidate set with payload entropy: keeps only entries whose
  /// payload looks like ciphertext (entropy above `min_bits_per_byte`).
  /// `payload_of(record)` fetches the (decrypted) stored payload.
  template <typename PayloadFn>
  std::set<std::uint64_t> filter_by_entropy(const std::set<std::uint64_t>& candidates,
                                            PayloadFn&& payload_of,
                                            double min_bits_per_byte = 7.5) const {
    std::set<std::uint64_t> confirmed;
    for (const auto& r : records_) {
      if (!candidates.contains(r.seq)) continue;
      const Result<Bytes> payload = payload_of(r);
      if (!payload.ok()) continue;
      if (payload->size() >= 64 && byte_entropy(*payload) >= min_bits_per_byte) {
        confirmed.insert(r.seq);
      }
    }
    return confirmed;
  }

 private:
  std::vector<LogRecord> records_;  // seq order
};

/// Users who authored flagged records, minus any the administrator manually
/// cleared: the input to Deployment::apply_audit_verdict (detection verdict →
/// credential revocation trigger).
std::set<std::string> implicated_users(const std::vector<LogRecord>& records,
                                       const std::set<std::uint64_t>& flagged_seqs,
                                       const std::set<std::string>& manual_overrides = {});

}  // namespace rockfs::core
