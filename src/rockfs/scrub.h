// Anti-entropy scrubber for the RockFS operation log. The log's safety
// story (paper §3.2/§3.3) assumes that when recovery eventually runs, k of
// the n per-cloud shares of every entry's data half are still readable.
// Between a compromise and the recovery, though, shares silently rot: a
// cloud loses an object, a crashed append leaves an entry at the bare
// write-quorum, a Byzantine cloud corrupts its share. Redundancy only
// degrades — nothing in the write path ever restores it.
//
// The scrubber is the administrator-side repair loop that closes that gap:
// it walks every committed log entry, inventories the surviving shares per
// cloud (depsky share_inventory — digest checks, no payload-sized reads),
// flags entries whose redundancy fell below k + margin surviving shares (or
// whose metadata replication fell below the n-f read quorum), and re-encodes
// and re-uploads the missing shares from the valid remainder (depsky
// repair: Reed-Solomon shard repair + Shamir share interpolation). It also
// reports orphaned log units — payload objects in `logs/<user>/` with no
// committed record and no pending intent — left behind by crashed appends.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "coord/service.h"
#include "depsky/client.h"
#include "sim/timed.h"

namespace rockfs::core {

struct ScrubOptions {
  /// An entry is degraded when fewer than k + margin shares survive. The
  /// default margin of 1 repairs an entry as soon as it can no longer lose
  /// another share without losing data.
  std::size_t margin = 1;
  /// Repair degraded entries (false = detect and report only).
  bool repair = true;
  /// Also scrub the admin chain ("admin:<user>" — snapshots and recovery
  /// records, which recovery depends on just as much).
  bool include_admin_chain = true;
};

/// One scrubbed chain's outcome.
struct ScrubReport {
  std::size_t entries_checked = 0;
  std::size_t entries_degraded = 0;
  std::size_t entries_repaired = 0;    // degraded entries back at full redundancy
  std::size_t entries_unrepairable = 0;
  std::size_t shares_repaired = 0;
  std::size_t meta_repaired = 0;       // metadata replicas re-seeded
  /// Entries where some cloud held *stale-version* state — authentic data of
  /// an old version where the current one belongs (what a rolled-back cloud
  /// leaves behind). Distinct from plain loss/corruption: the bytes verify,
  /// only the version is wrong.
  std::size_t entries_stale = 0;
  std::size_t stale_shares = 0;        // share slots found serving an old version
  std::size_t stale_metas = 0;         // metadata replicas valid-signed but old
  /// Log data units present in the cloud with no committed record and no
  /// pending intent (garbage from crashed appends; append-only, so they can
  /// only be reported, never collected).
  std::vector<std::string> orphan_units;
};

/// Administrator-side scrubber over one user's log chains. `storage` must be
/// an admin-capable DepSky client (the user's public key among its trusted
/// writers) and `tokens` admin tokens for every cloud.
class LogScrubber {
 public:
  LogScrubber(std::string user_id, std::shared_ptr<depsky::DepSkyClient> storage,
              std::vector<cloud::AccessToken> tokens,
              std::shared_ptr<coord::CoordinationService> coordination,
              sim::SimClockPtr clock, ScrubOptions options = {});

  /// Scrubs the user chain (and the admin chain unless disabled). Advances
  /// the clock by the scrub time. Metrics: scrub.entries.{checked,degraded,
  /// repaired}, scrub.shares.repaired, scrub.orphans.
  Result<ScrubReport> scrub();

 private:
  /// Scrubs the committed entries of one chain into `report`.
  sim::Timed<Status> scrub_chain(const std::string& chain, ScrubReport& report);
  /// Lists `logs/<chain>/` on every cloud and reports units with neither a
  /// committed record nor a pending intent.
  sim::Timed<Status> find_orphans(const std::string& chain, ScrubReport& report);

  std::string user_id_;
  std::shared_ptr<depsky::DepSkyClient> storage_;
  std::vector<cloud::AccessToken> tokens_;
  std::shared_ptr<coord::CoordinationService> coordination_;
  sim::SimClockPtr clock_;
  ScrubOptions options_;
};

}  // namespace rockfs::core
