#include "rockfs/agent.h"

#include <stdexcept>

#include "common/logging.h"

namespace rockfs::core {

RockFsAgent::RockFsAgent(std::string user_id, std::vector<cloud::CloudProviderPtr> clouds,
                         std::shared_ptr<coord::CoordinationService> coordination,
                         sim::SimClockPtr clock, AgentOptions options,
                         std::vector<crypto::Point> holder_pubs,
                         std::size_t holder_threshold)
    : user_id_(std::move(user_id)),
      clouds_(std::move(clouds)),
      coordination_(std::move(coordination)),
      clock_(std::move(clock)),
      options_(std::move(options)),
      holder_pubs_(std::move(holder_pubs)),
      holder_threshold_(holder_threshold) {}

Status RockFsAgent::login(const SealedKeystore& sealed, const LoginMaterial& material) {
  // Gather whatever holders are available; k of them suffice.
  std::vector<ShareHolder> holders;
  if (material.device.has_value()) holders.push_back(*material.device);
  if (material.coordination.has_value()) holders.push_back(*material.coordination);
  if (material.external.has_value()) holders.push_back(*material.external);

  crypto::Drbg login_drbg(to_bytes("rockfs.login." + user_id_),
                          to_bytes(std::to_string(clock_->now_us())));
  auto ks = unseal_keystore(sealed, holders, holder_pubs_, holder_threshold_, login_drbg);
  if (!ks.ok()) return Status{ks.error()};

  keystore_ = std::make_unique<Keystore>(std::move(*ks));
  drbg_ = std::make_shared<crypto::Drbg>(keystore_->user_private_key,
                                         to_bytes("rockfs.agent." + user_id_));

  const std::string session_id = user_id_ + "-s" + std::to_string(++logins_);

  // Storage stack: DepSky over the cloud fleet, writing as PR_U.
  depsky::DepSkyConfig cfg;
  cfg.clouds = clouds_;
  cfg.f = options_.f;
  cfg.protocol = options_.protocol;
  cfg.writer = crypto::keypair_from_private(keystore_->user_private_key);
  cfg.trusted_writers = options_.trusted_writers;
  cfg.executor = options_.executor;
  cfg.join_mode = options_.join_mode;
  cfg.witness = options_.witness;
  cfg.session = session_id;
  cfg.membership_epoch = options_.membership_epoch;
  storage_ = std::make_shared<depsky::DepSkyClient>(std::move(cfg), drbg_->generate(32));

  if (options_.enable_cache && !cache_) {
    // First login mints the per-USER cache; later sessions reuse the handle
    // so sealed entries survive re-logins (a rotated key just makes the
    // stale ones fail open on hit).
    cache_ = options_.cache ? options_.cache
                            : std::make_shared<cache::ClientCache>(options_.cache_config);
  }

  scfs::ScfsOptions fs_opts;
  fs_opts.sync_mode = options_.sync_mode;
  fs_opts.user_id = user_id_;
  fs_opts.session_id = session_id;
  fs_opts.lease_ttl_us = options_.lease_ttl_us;
  fs_opts.fencing = options_.fencing;
  fs_opts.use_cache = options_.enable_cache;
  fs_opts.cache = cache_;
  fs_opts.writeback = options_.writeback;
  fs_ = std::make_unique<scfs::Scfs>(storage_, keystore_->file_tokens, coordination_,
                                     clock_, fs_opts);

  if (options_.enable_cache_crypto) {
    session_keys_ = std::make_shared<SessionKeyManager>(
        user_id_, coordination_, clock_, options_.session_key_validity_us);
    if (!keystore_->session_key.empty()) {
      // Adopt the rotated S_U stored in the keystore. Its expiry is enforced:
      // once past, the first cache operation mints a fresh key and every entry
      // sealed under the stale one fails open and is refetched (§4.2.1).
      session_keys_->seed(keystore_->session_key, keystore_->session_key_expiry_us);
    }
    // A rotation must leave zero servable cache state: sealed data entries
    // would fail open anyway, but meta/negative entries carry no seal.
    session_keys_->set_rotation_hook([this] {
      if (cache_) cache_->drop_all();
    });
    // drop_entries=false: entries sealed under a still-valid S_U (from the
    // previous session of this user) stay warm across the re-login.
    fs_->set_cache_transform(std::make_shared<SecureCacheTransform>(session_keys_, drbg_),
                             /*drop_entries=*/false);
  }

  fs_->set_crash_schedule(options_.crash);

  if (options_.enable_logging) {
    // Resume the chain where a previous session left off (the aggregates
    // tuple records how far the keys have evolved). With the journal on,
    // this is also where a crashed previous session is repaired: pending
    // intents are replayed before the first new append.
    log_ = make_resumed_log_service(
        user_id_, storage_, keystore_->log_tokens, coordination_, clock_,
        fssagg::FssAggKeys{keystore_->fssagg_key_a, keystore_->fssagg_key_b},
        LogServiceOptions{options_.enable_journal, options_.crash,
                          keystore_->fssagg_base_count});
    log_->set_compression(options_.compress_log);
    fs_->set_close_intent_hook(
        [this](const std::string& path, const Bytes& old_content, const Bytes& new_content,
               std::uint64_t version, std::uint64_t epoch) {
          return log_->journal_intent(path, old_content, new_content, version,
                                      version == 1 ? "create" : "update", epoch);
        });
    fs_->set_close_interceptor(
        [this](const std::string& path, const Bytes& old_content, const Bytes& new_content,
               std::uint64_t version, std::uint64_t epoch) {
          return log_->append(path, old_content, new_content, version,
                              version == 1 ? "create" : "update", epoch);
        });
  }
  LOG_INFO("agent " << user_id_ << " logged in (logging="
                    << (options_.enable_logging ? "on" : "off") << ")");
  return {};
}

void RockFsAgent::logout() {
  if (fs_) {
    try {
      // Voluntary logout syncs staged write-backs (fsync-on-logout); a crash
      // landing clears the queue first, so this never double-commits.
      (void)fs_->flush_all();
    } catch (const sim::ClientCrash&) {
      // Died mid-flush: staged RAM is lost; the intent journal repairs the
      // committed prefix at the next login.
      fs_->discard_dirty();
    }
  }
  log_.reset();
  fs_.reset();
  storage_.reset();
  session_keys_.reset();
  drbg_.reset();
  keystore_.reset();  // the in-RAM keystore is wiped
}

namespace {
Status not_logged_in() { return {ErrorCode::kPermissionDenied, "agent: not logged in"}; }
}  // namespace

Status RockFsAgent::crash_landing(const sim::ClientCrash& crash) {
  // The simulated client process died mid-operation: everything in RAM —
  // keystore, signer state, open files, cache — is gone. The next login
  // replays the intent journal and repairs whatever the crash left behind.
  LOG_WARN("agent " << user_id_ << " crashed at "
                    << sim::crash_point_name(crash.point));
  if (fs_) fs_->discard_dirty();  // a dead process cannot flush its RAM
  logout();
  return Status{ErrorCode::kCrashed,
                std::string("client crashed at ") + sim::crash_point_name(crash.point)};
}

scfs::Scfs& RockFsAgent::fs() {
  if (!fs_) throw std::logic_error("RockFsAgent::fs: not logged in");
  return *fs_;
}

const Keystore& RockFsAgent::keystore() const {
  if (!keystore_) throw std::logic_error("RockFsAgent::keystore: not logged in");
  return *keystore_;
}

std::uint64_t RockFsAgent::log_seq() const { return log_ ? log_->next_seq() : 0; }

Bytes RockFsAgent::current_session_key() {
  if (!session_keys_ || !drbg_) return {};
  return session_keys_->current(*drbg_).key;
}

Result<RockFsAgent::Fd> RockFsAgent::create(const std::string& path) {
  if (!fs_) return Error{not_logged_in().error()};
  // Namespace operations can piggyback a due write-back flush, so any of
  // them can hit an armed crash point — same dead-client landing as close.
  try {
    return fs_->create(path);
  } catch (const sim::ClientCrash& crash) {
    return Error{crash_landing(crash).error()};
  }
}

Result<RockFsAgent::Fd> RockFsAgent::open(const std::string& path) {
  if (!fs_) return Error{not_logged_in().error()};
  try {
    return fs_->open(path);
  } catch (const sim::ClientCrash& crash) {
    return Error{crash_landing(crash).error()};
  }
}

Result<Bytes> RockFsAgent::read(Fd fd, std::size_t offset, std::size_t length) {
  if (!fs_) return Error{not_logged_in().error()};
  return fs_->read(fd, offset, length);
}

Status RockFsAgent::write(Fd fd, std::size_t offset, BytesView data) {
  if (!fs_) return not_logged_in();
  return fs_->write(fd, offset, data);
}

Status RockFsAgent::append(Fd fd, BytesView data) {
  if (!fs_) return not_logged_in();
  return fs_->append(fd, data);
}

Status RockFsAgent::truncate(Fd fd, std::size_t size) {
  if (!fs_) return not_logged_in();
  return fs_->truncate(fd, size);
}

Status RockFsAgent::close(Fd fd) {
  if (!fs_) return not_logged_in();
  try {
    return fs_->close(fd);
  } catch (const sim::ClientCrash& crash) {
    return crash_landing(crash);
  }
}

sim::Timed<Status> RockFsAgent::close_timed(Fd fd) {
  if (!fs_) return {not_logged_in(), 0};
  try {
    return fs_->close_timed(fd);
  } catch (const sim::ClientCrash& crash) {
    return {crash_landing(crash), 0};
  }
}

Status RockFsAgent::unlink(const std::string& path) {
  if (!fs_) return not_logged_in();
  // An unlink is a logged operation too: record a delete entry so recovery
  // can resurrect the file (threat T1 includes malicious deletion).
  Bytes old_content;
  if (options_.enable_logging) {
    auto current = read_file(path);
    if (current.ok()) old_content = std::move(*current);
  }
  auto st = fs_->unlink(path);
  if (!st.ok()) return st;
  if (options_.enable_logging && log_) {
    try {
      auto logged = log_->append(path, old_content, {}, 0, "delete");
      clock_->advance_us(logged.delay);
      if (!logged.value.ok()) return logged.value;
    } catch (const sim::ClientCrash& crash) {
      return crash_landing(crash);
    }
  }
  return {};
}

Result<scfs::FileStat> RockFsAgent::stat(const std::string& path) {
  if (!fs_) return Error{not_logged_in().error()};
  try {
    return fs_->stat(path);
  } catch (const sim::ClientCrash& crash) {
    return Error{crash_landing(crash).error()};
  }
}

Result<std::vector<std::string>> RockFsAgent::readdir(const std::string& prefix) {
  if (!fs_) return Error{not_logged_in().error()};
  try {
    return fs_->readdir(prefix);
  } catch (const sim::ClientCrash& crash) {
    return Error{crash_landing(crash).error()};
  }
}

void RockFsAgent::drain_background() {
  if (!fs_) return;
  try {
    fs_->drain_background();
  } catch (const sim::ClientCrash& crash) {
    (void)crash_landing(crash);
  }
}

Status RockFsAgent::flush(const std::string& path) {
  if (!fs_) return not_logged_in();
  try {
    return fs_->flush(path);
  } catch (const sim::ClientCrash& crash) {
    return crash_landing(crash);
  }
}

Status RockFsAgent::flush_all() {
  if (!fs_) return not_logged_in();
  try {
    return fs_->flush_all();
  } catch (const sim::ClientCrash& crash) {
    return crash_landing(crash);
  }
}

void RockFsAgent::drop_cache() {
  if (cache_) cache_->drop_all();
  if (fs_) fs_->discard_dirty();  // revoked writers do not get to flush
}

Status RockFsAgent::lock(const std::string& path) {
  if (!fs_) return not_logged_in();
  try {
    return fs_->lock(path);
  } catch (const sim::ClientCrash& crash) {
    return crash_landing(crash);
  }
}

Status RockFsAgent::unlock(const std::string& path) {
  if (!fs_) return not_logged_in();
  try {
    return fs_->unlock(path);
  } catch (const sim::ClientCrash& crash) {
    return crash_landing(crash);
  }
}

std::optional<std::uint64_t> RockFsAgent::held_epoch(const std::string& path) const {
  if (!fs_) return std::nullopt;
  return fs_->held_epoch(path);
}

void RockFsAgent::replace_cloud(std::size_t index, cloud::CloudProviderPtr cloud) {
  clouds_.at(index) = std::move(cloud);
}

void RockFsAgent::set_membership_epoch(std::uint64_t epoch) {
  if (epoch > options_.membership_epoch) options_.membership_epoch = epoch;
  if (storage_) storage_->set_membership_epoch(epoch);
}

void RockFsAgent::trust_writer(const Bytes& public_key) {
  for (const auto& w : options_.trusted_writers) {
    if (w == public_key) {
      if (storage_) storage_->add_trusted_writer(public_key);
      return;
    }
  }
  options_.trusted_writers.push_back(public_key);
  if (storage_) storage_->add_trusted_writer(public_key);
}

Status RockFsAgent::write_file(const std::string& path, BytesView content) {
  if (!fs_) return not_logged_in();
  auto fd = fs_->create(path);
  if (!fd.ok() && fd.code() == ErrorCode::kConflict) fd = fs_->open(path);
  if (!fd.ok()) return Status{fd.error()};
  if (auto st = fs_->truncate(*fd, 0); !st.ok()) return st;
  if (auto st = fs_->write(*fd, 0, content); !st.ok()) return st;
  try {
    return fs_->close(*fd);
  } catch (const sim::ClientCrash& crash) {
    return crash_landing(crash);
  }
}

Result<Bytes> RockFsAgent::read_file(const std::string& path) {
  if (!fs_) return Error{not_logged_in().error()};
  auto fd = fs_->open(path);
  if (!fd.ok()) return Error{fd.error()};
  auto st = fs_->stat(path);
  const std::size_t size = st.ok() ? st->size : 0;
  auto content = fs_->read(*fd, 0, size);
  const Status closed = fs_->close(*fd);
  if (!content.ok()) return content;
  if (!closed.ok()) return Error{closed.error()};
  return content;
}

}  // namespace rockfs::core
