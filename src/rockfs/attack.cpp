#include "rockfs/attack.h"

#include "common/rng.h"
#include "crypto/aes.h"

namespace rockfs::core {


RansomwareReport ransomware_attack(RockFsAgent& victim,
                                   const std::vector<std::string>& paths,
                                   std::uint64_t attacker_seed) {
  RansomwareReport report;
  Rng rng(attacker_seed);
  const Bytes attacker_key = rng.next_bytes(32);

  for (const auto& path : paths) {
    auto content = victim.read_file(path);
    if (!content.ok()) continue;
    // Ransomware-style in-place encryption (the victim cannot decrypt).
    Bytes iv = rng.next_bytes(16);
    Bytes encrypted = concat({iv, crypto::aes256_ctr(attacker_key, iv, *content)});
    const std::uint64_t seq_before = victim.log_seq();
    if (!victim.write_file(path, encrypted).ok()) continue;
    ++report.files_encrypted;
    // Every log entry emitted by the malicious write is "detected".
    for (std::uint64_t s = seq_before; s < victim.log_seq(); ++s) {
      report.malicious_seqs.insert(s);
    }
  }
  return report;
}

LogTamperReport log_tamper_attack(Deployment& deployment, const std::string& user_id) {
  LogTamperReport report;
  auto& agent = deployment.agent(user_id);
  const Keystore& ks = agent.keystore();  // the attacker owns the device: full keystore
  auto& clouds = deployment.clouds();

  for (std::size_t i = 0; i < clouds.size(); ++i) {
    auto listed = clouds[i]->list(ks.log_tokens[i], "logs/");
    if (!listed.value.ok()) continue;
    for (const auto& stat : *listed.value) {
      // Try to destroy the entry with both stolen tokens.
      for (const auto& token : {ks.log_tokens[i], ks.file_tokens[i]}) {
        ++report.delete_attempts;
        if (clouds[i]->remove(token, stat.key).value.code() ==
            ErrorCode::kPermissionDenied) {
          ++report.deletes_denied;
        }
        ++report.overwrite_attempts;
        if (clouds[i]->put(token, stat.key, to_bytes("garbage")).value.code() ==
            ErrorCode::kPermissionDenied) {
          ++report.overwrites_denied;
        }
      }
    }
  }
  return report;
}

CacheTheftReport cache_theft_attack(RockFsAgent& victim,
                                    const std::vector<std::string>& paths,
                                    const std::string& probe) {
  CacheTheftReport report;
  for (const auto& path : paths) {
    const auto raw = victim.fs().cached_raw(path);
    if (!raw.has_value()) continue;
    ++report.cached_files;
    const std::string haystack(raw->begin(), raw->end());
    if (haystack.find(probe) != std::string::npos) ++report.plaintext_leaks;
  }
  return report;
}

}  // namespace rockfs::core
