#include "rockfs/attack.h"

#include "common/rng.h"
#include "crypto/aes.h"

namespace rockfs::core {


RansomwareReport ransomware_attack(RockFsAgent& victim,
                                   const std::vector<std::string>& paths,
                                   std::uint64_t attacker_seed) {
  RansomwareReport report;
  Rng rng(attacker_seed);
  const Bytes attacker_key = rng.next_bytes(32);

  for (const auto& path : paths) {
    auto content = victim.read_file(path);
    if (!content.ok()) continue;
    // Ransomware-style in-place encryption (the victim cannot decrypt).
    Bytes iv = rng.next_bytes(16);
    Bytes encrypted = concat({iv, crypto::aes256_ctr(attacker_key, iv, *content)});
    const std::uint64_t seq_before = victim.log_seq();
    if (!victim.write_file(path, encrypted).ok()) continue;
    ++report.files_encrypted;
    // Every log entry emitted by the malicious write is "detected".
    for (std::uint64_t s = seq_before; s < victim.log_seq(); ++s) {
      report.malicious_seqs.insert(s);
    }
  }
  return report;
}

LogTamperReport log_tamper_attack(Deployment& deployment, const std::string& user_id) {
  LogTamperReport report;
  auto& agent = deployment.agent(user_id);
  const Keystore& ks = agent.keystore();  // the attacker owns the device: full keystore
  auto& clouds = deployment.clouds();

  for (std::size_t i = 0; i < clouds.size(); ++i) {
    auto listed = clouds[i]->list(ks.log_tokens[i], "logs/");
    if (!listed.value.ok()) continue;
    for (const auto& stat : *listed.value) {
      // Try to destroy the entry with both stolen tokens.
      for (const auto& token : {ks.log_tokens[i], ks.file_tokens[i]}) {
        ++report.delete_attempts;
        if (clouds[i]->remove(token, stat.key).value.code() ==
            ErrorCode::kPermissionDenied) {
          ++report.deletes_denied;
        }
        ++report.overwrite_attempts;
        if (clouds[i]->put(token, stat.key, to_bytes("garbage")).value.code() ==
            ErrorCode::kPermissionDenied) {
          ++report.overwrites_denied;
        }
      }
    }
  }
  return report;
}

CloudRollbackReport cloud_rollback_attack(Deployment& deployment,
                                          const std::string& user_id,
                                          std::size_t cloud_index,
                                          sim::AdversarialMode mode, std::size_t rounds) {
  CloudRollbackReport report;
  report.cloud_index = cloud_index;
  report.mode = mode;
  auto& victim = deployment.agent(user_id);
  auto& cloud = *deployment.clouds().at(cloud_index);

  // The cloud freezes its served view NOW: everything written from here on
  // is acked and stored but never shown (or shown only to one session group).
  // Replay-window serving lags the live view by a fixed interval instead.
  cloud.faults().set_adversarial(
      mode, mode == sim::AdversarialMode::kReplayWindow ? 2'000'000 : 0);

  std::size_t ops = 0;
  auto note_detection = [&] {
    if (report.quarantined) return;
    const auto storage = victim.storage();
    if (!storage) return;
    const auto& health = storage->cloud_health(cloud_index);
    if (!report.detected && health.misbehavior_total() > 0) {
      report.detected = true;
      report.ops_to_detection = ops;
    }
    if (health.quarantined()) {
      report.quarantined = true;
      report.ops_to_detection = ops;
    }
  };

  for (std::size_t r = 0; r < rounds; ++r) {
    const std::string path = "/" + user_id + "/rolled-" + std::to_string(r % 2);
    const Bytes content = to_bytes("fresh." + user_id + ".round" + std::to_string(r));
    if (victim.write_file(path, content).ok()) ++report.writes_during_attack;
    ++ops;
    note_detection();

    victim.fs().clear_cache();  // force the read through DepSky, not the cache
    auto back = victim.read_file(path);
    ++ops;
    ++report.reads_during_attack;
    if (!back.ok() || *back != content) ++report.read_mismatches;
    note_detection();
  }

  if (const auto storage = victim.storage()) {
    report.misbehavior_flags = storage->cloud_health(cloud_index).misbehavior_total();
  }
  return report;
}

StolenCredentialReport& StolenCredentialReport::operator+=(const StolenCredentialReport& o) {
  write_attempts += o.write_attempts;
  writes_accepted_pre_floor += o.writes_accepted_pre_floor;
  writes_accepted_post_floor += o.writes_accepted_post_floor;
  read_attempts += o.read_attempts;
  reads_accepted_post_floor += o.reads_accepted_post_floor;
  revoked_denials += o.revoked_denials;
  session_replays += o.session_replays;
  session_replays_valid += o.session_replays_valid;
  keystore_replays += o.keystore_replays;
  keystore_replays_live += o.keystore_replays_live;
  return *this;
}

StolenCredentials steal_credentials(Deployment& deployment, const std::string& user_id) {
  StolenCredentials loot;
  auto& agent = deployment.agent(user_id);
  loot.keystore = agent.keystore();               // scraped from the agent's RAM
  loot.session_key = agent.current_session_key();  // live S_U, same way
  auto& us = deployment.secrets(user_id);
  loot.sealed = us.sealed;  // public blob; also lifted off the client disk
  // k = 2 holder keys: the on-disk device key plus the coordination key the
  // compromised client could fetch during a legitimate-looking login.
  loot.holders = {us.device_holder, us.coordination_holder};
  loot.holder_pubs = us.holder_pubs;
  return loot;
}

namespace {

/// One raw write + read probe per cloud with the given token family. Each
/// accept is classified by whether that cloud already enforces a revocation
/// floor above the token's epoch at probe time.
void probe_clouds(Deployment& deployment, const std::string& user_id,
                  const std::vector<cloud::AccessToken>& file_tokens,
                  const std::vector<cloud::AccessToken>& log_tokens,
                  StolenCredentialReport& report) {
  auto& clouds = deployment.clouds();
  const auto& clock = deployment.clock();
  for (std::size_t i = 0; i < clouds.size(); ++i) {
    if (i >= file_tokens.size() || i >= log_tokens.size()) break;

    const auto classify_write = [&](const sim::Timed<Status>& put, std::uint64_t epoch) {
      clock->advance_us(put.delay);
      ++report.write_attempts;
      if (put.value.ok()) {
        const bool enforcing = clouds[i]->revocation_floor(user_id) > epoch;
        ++(enforcing ? report.writes_accepted_post_floor
                     : report.writes_accepted_pre_floor);
      } else if (put.value.code() == ErrorCode::kRevoked) {
        ++report.revoked_denials;
      }
    };

    const std::string probe_key = "attack/probe-" + user_id;
    classify_write(clouds[i]->put(file_tokens[i], probe_key, to_bytes("attacker-payload")),
                   file_tokens[i].epoch);
    // Log tokens append into the protected namespace; a fresh key per attempt
    // so an append-only denial cannot mask the revocation verdict.
    classify_write(
        clouds[i]->put(log_tokens[i],
                       std::string(cloud::kLogPrefix) + "attack-" + user_id + "-" +
                           std::to_string(report.write_attempts),
                       to_bytes("attacker-entry")),
        log_tokens[i].epoch);

    ++report.read_attempts;
    auto got = clouds[i]->get(file_tokens[i], probe_key);
    clock->advance_us(got.delay);
    if (got.value.ok()) {
      if (clouds[i]->revocation_floor(user_id) > file_tokens[i].epoch) {
        ++report.reads_accepted_post_floor;
      }
    } else if (got.value.code() == ErrorCode::kRevoked) {
      ++report.revoked_denials;
    }
  }
}

}  // namespace

StolenCredentialReport stolen_credential_attack(Deployment& deployment,
                                                const StolenCredentials& loot) {
  StolenCredentialReport report;
  const std::string& user = loot.keystore.user_id;

  // 1. The stolen tokens themselves, straight from the scraped keystore.
  probe_clouds(deployment, user, loot.keystore.file_tokens, loot.keystore.log_tokens,
               report);

  // 2. Stolen-session replay: is the scraped S_U still the registered key?
  if (!loot.session_key.empty()) {
    ++report.session_replays;
    auto reg = session_key_registered(*deployment.coordination(), user, loot.session_key);
    deployment.clock()->advance_us(reg.delay);
    if (reg.value) ++report.session_replays_valid;
  }

  // 3. Sealed-blob replay: the attacker re-unseals the copied blob offline
  //    (they hold k holder keys) and probes whether its tokens are live. A
  //    rotation makes this a dead end — the blob decrypts fine, but every
  //    token inside sits below the revocation floor.
  ++report.keystore_replays;
  crypto::Drbg replay_drbg(to_bytes("rockfs.attack.replay." + user),
                           to_bytes(std::to_string(deployment.clock()->now_us())));
  auto replayed =
      unseal_keystore(loot.sealed, loot.holders, loot.holder_pubs, /*k=*/2, replay_drbg);
  if (replayed.ok()) {
    const std::size_t accepted_before =
        report.writes_accepted_pre_floor + report.writes_accepted_post_floor;
    probe_clouds(deployment, user, replayed->file_tokens, replayed->log_tokens, report);
    if (report.writes_accepted_pre_floor + report.writes_accepted_post_floor >
        accepted_before) {
      ++report.keystore_replays_live;
    }
  }
  return report;
}

CacheTheftReport cache_theft_attack(RockFsAgent& victim,
                                    const std::vector<std::string>& paths,
                                    const std::string& probe) {
  CacheTheftReport report;
  for (const auto& path : paths) {
    const auto raw = victim.fs().cached_raw(path);
    if (!raw.has_value()) continue;
    ++report.cached_files;
    const std::string haystack(raw->begin(), raw->end());
    if (haystack.find(probe) != std::string::npos) ++report.plaintext_leaks;
  }
  return report;
}

}  // namespace rockfs::core
