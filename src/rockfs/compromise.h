// Compromise-response chaos soak: one deployment, an honest user and a
// victim whose credentials get stolen every few rounds. Each incident runs
// the full §4.1 pipeline — steal → attack with the loot → detect → revoke →
// rotate → recover — while the dice inject cloud outages, coordination
// replica faults and admin crashes at the rotation pipeline's crash points.
// The report checks the two properties the revocation design promises:
//
//   * lockout  — once a cloud enforces the revocation floor, not one
//     attacker operation with pre-rotation credentials is accepted there
//     (writes_accepted_post_floor == reads_accepted_post_floor == 0);
//   * no lost honest update — after every rotation, crash and recovery, the
//     final bytes of every honest file equal the last honest write, so the
//     honest-content digest of an attacked run is bit-identical to the same
//     seed run with the attacker switched off.
#pragma once

#include <cstdint>
#include <string>

#include "rockfs/attack.h"
#include "sim/clock.h"

namespace rockfs::core {

struct CompromiseSoakOptions {
  std::size_t rounds = 12;
  std::size_t files = 3;          // per user; >= detector min_files
  std::uint64_t seed = 2018;
  std::size_t f = 1;              // clouds and coordination are both 3f+1
  bool attacker = true;           // off = same honest workload, no incidents
  double cloud_outage_prob = 0.2;   // P(round opens an outage at one cloud)
  double coord_fault_prob = 0.2;    // P(round downs one coordination replica)
  double crash_prob = 0.3;          // P(incident arms a rotation crash point)
  double recovery_crash_prob = 0.3; // P(incident arms kMidRecoverAll)
  std::size_t incident_every = 4;   // a compromise incident every N rounds
};

struct CompromiseSoakReport {
  std::size_t rounds = 0;
  std::size_t honest_writes = 0;
  std::size_t honest_retries = 0;
  std::size_t write_failures = 0;   // honest write that never landed (MUST be 0)
  std::size_t relogins = 0;
  std::size_t incidents = 0;
  std::size_t rotations = 0;
  std::size_t response_crashes = 0;  // admin died mid-response, resumed
  std::size_t recovery_crashes = 0;  // admin died mid-recover_all, resumed
  std::size_t response_retries = 0;  // responses re-driven through faults
  std::size_t files_recovered = 0;
  std::size_t floors_propagated = 0;  // outage clouds caught up by anti-entropy
  StolenCredentialReport attack;      // accumulated across all incidents
  std::size_t read_mismatches = 0;    // final read-back != last honest write
  bool lockout_held = false;
  bool converged = false;
  std::string honest_digest;  // sha256 hex over the final honest contents
  sim::SimClock::Micros max_lockout_latency_us = 0;
  sim::SimClock::Micros max_rotation_us = 0;
  sim::SimClock::Micros total_us = 0;
};

/// Runs the soak to completion. Deterministic per options; the honest digest
/// depends only on the honest workload, so {attacker: true} and
/// {attacker: false} with the same seed must produce the same digest.
CompromiseSoakReport run_compromise_soak(const CompromiseSoakOptions& options);

}  // namespace rockfs::core
