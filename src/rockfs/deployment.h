// Assembles a complete simulated RockFS deployment: the virtual clock, the
// cloud-of-clouds fleet (n = 3f+1 providers with S3-like WAN profiles), the
// BFT coordination service, and per-user state (tokens, keystore, PVSS share
// holders, FssAgg setup keys). This mirrors the paper's §6 testbed — 4
// Amazon S3 buckets + 4 DepSpace replicas on GCE + one client VM — and is
// the entry point used by the examples, tests and benchmarks.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "rockfs/agent.h"
#include "rockfs/recovery.h"
#include "rockfs/scrub.h"

namespace rockfs::core {

struct DeploymentOptions {
  std::size_t f = 1;  // clouds and coordination replicas are both 3f+1
  std::uint64_t seed = 2018;
  std::string fs_id = "rockfs";
  AgentOptions agent;  // defaults applied to every user added
};

class Deployment {
 public:
  explicit Deployment(DeploymentOptions options = {});

  const sim::SimClockPtr& clock() const noexcept { return clock_; }
  std::vector<cloud::CloudProviderPtr>& clouds() noexcept { return clouds_; }
  const std::shared_ptr<coord::CoordinationService>& coordination() const noexcept {
    return coordination_;
  }

  /// Provisions a user end-to-end (paper setup flow): issues t_u/t_l at
  /// every cloud, generates PR_U and the FssAgg keys, builds and seals the
  /// keystore among {device, coordination, external} holders (k = 2 of 3),
  /// stores the sealed keystore, and logs the agent in.
  RockFsAgent& add_user(const std::string& user_id);
  RockFsAgent& add_user(const std::string& user_id, const AgentOptions& options);

  RockFsAgent& agent(const std::string& user_id);

  /// Administrator-side recovery service for a user's files. Shares the
  /// deployment's crash schedule (crash_schedule()) for fault injection.
  RecoveryService make_recovery_service(const std::string& user_id);

  /// Administrator-side anti-entropy scrubber over a user's log chains
  /// (scrub.h): detects entries whose share redundancy decayed and restores
  /// them to full n-share redundancy.
  LogScrubber make_scrubber(const std::string& user_id, ScrubOptions options = {});

  /// Deployment-wide crash schedule: agents created by add_user (unless
  /// their AgentOptions carry their own) and recovery services consult it.
  /// Tests arm one crash point on it and drive the workload.
  const sim::CrashSchedulePtr& crash_schedule() const noexcept { return crash_; }

  // ---- client-device modelling (for the T2/T3 attack scenarios) ----

  /// Simulated persistent stores for the PVSS holder keys.
  struct UserSecrets {
    SealedKeystore sealed;                 // public; also kept in coordination
    ShareHolder device_holder;             // key on the client disk
    ShareHolder coordination_holder;       // key held by the coordination svc
    ShareHolder external_holder;           // key on the USB stick / smartcard
    std::vector<crypto::Point> holder_pubs;
    fssagg::FssAggKeys chain_keys;         // admin's copy of (A_1, B_1)
    crypto::Point user_public_key;         // PU_U
    bool device_share_destroyed = false;
  };
  UserSecrets& secrets(const std::string& user_id);

  /// Ransomware wipes the device share; subsequent default logins must fail
  /// until the external share is produced (threat T2).
  void destroy_device_share(const std::string& user_id);

  /// Re-login helpers (the agent is logged in by add_user already).
  Status login_default(const std::string& user_id);        // device + coord
  Status login_with_external(const std::string& user_id);  // external + coord

  /// Admin tokens, one per cloud.
  std::vector<cloud::AccessToken> admin_tokens();

 private:
  DeploymentOptions options_;
  sim::SimClockPtr clock_;
  std::vector<cloud::CloudProviderPtr> clouds_;
  std::shared_ptr<coord::CoordinationService> coordination_;
  crypto::Drbg setup_drbg_;
  crypto::KeyPair admin_keys_;  // PU_A/PR_A: signs recovered file versions
  sim::CrashSchedulePtr crash_;
  std::map<std::string, std::unique_ptr<RockFsAgent>> agents_;
  std::map<std::string, UserSecrets> secrets_;
};

}  // namespace rockfs::core
