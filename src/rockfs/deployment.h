// Assembles a complete simulated RockFS deployment: the virtual clock, the
// cloud-of-clouds fleet (n = 3f+1 providers with S3-like WAN profiles), the
// BFT coordination service, and per-user state (tokens, keystore, PVSS share
// holders, FssAgg setup keys). This mirrors the paper's §6 testbed — 4
// Amazon S3 buckets + 4 DepSpace replicas on GCE + one client VM — and is
// the entry point used by the examples, tests and benchmarks.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "depsky/reconfig.h"
#include "rockfs/agent.h"
#include "rockfs/recovery.h"
#include "rockfs/scrub.h"

namespace rockfs::core {

struct DeploymentOptions {
  std::size_t f = 1;  // clouds and coordination replicas are both 3f+1
  std::uint64_t seed = 2018;
  std::string fs_id = "rockfs";
  AgentOptions agent;  // defaults applied to every user added
  /// > 0: the deployment owns one shared thread pool of this many workers
  /// and hands it to every agent, the admin storage and the scrubber, so
  /// the whole stack (including the SCFS close path) fans out for real.
  /// 0 (default) keeps everything inline. Seeded runs are byte-identical
  /// at any value (kBarrier joins).
  std::size_t executor_threads = 0;
};

class Deployment {
 public:
  explicit Deployment(DeploymentOptions options = {});

  const sim::SimClockPtr& clock() const noexcept { return clock_; }
  std::vector<cloud::CloudProviderPtr>& clouds() noexcept { return clouds_; }
  const std::shared_ptr<coord::CoordinationService>& coordination() const noexcept {
    return coordination_;
  }

  /// Provisions a user end-to-end (paper setup flow): issues t_u/t_l at
  /// every cloud, generates PR_U and the FssAgg keys, builds and seals the
  /// keystore among {device, coordination, external} holders (k = 2 of 3),
  /// stores the sealed keystore, and logs the agent in.
  RockFsAgent& add_user(const std::string& user_id);
  RockFsAgent& add_user(const std::string& user_id, const AgentOptions& options);

  RockFsAgent& agent(const std::string& user_id);

  /// Administrator-side recovery service for a user's files. Shares the
  /// deployment's crash schedule (crash_schedule()) for fault injection.
  RecoveryService make_recovery_service(const std::string& user_id);

  /// Administrator-side anti-entropy scrubber over a user's log chains
  /// (scrub.h): detects entries whose share redundancy decayed and restores
  /// them to full n-share redundancy.
  LogScrubber make_scrubber(const std::string& user_id, ScrubOptions options = {});

  /// Deployment-wide crash schedule: agents created by add_user (unless
  /// their AgentOptions carry their own) and recovery services consult it.
  /// Tests arm one crash point on it and drive the workload.
  const sim::CrashSchedulePtr& crash_schedule() const noexcept { return crash_; }

  // ---- client-device modelling (for the T2/T3 attack scenarios) ----

  /// Simulated persistent stores for the PVSS holder keys.
  struct UserSecrets {
    SealedKeystore sealed;                 // public; also kept in coordination
    ShareHolder device_holder;             // key on the client disk
    ShareHolder coordination_holder;       // key held by the coordination svc
    ShareHolder external_holder;           // key on the USB stick / smartcard
    std::vector<crypto::Point> holder_pubs;
    fssagg::FssAggKeys chain_keys;         // admin's copy of (A_1, B_1)
    crypto::Point user_public_key;         // PU_U
    bool device_share_destroyed = false;

    // ---- credential-revocation state (revocation.h) ----

    /// Epoch of the rotated keystore currently published ("rockks" tuple);
    /// 0 = the setup keystore.
    std::uint64_t keystore_epoch = 0;
    /// Epoch stamped into the tokens the current keystore holds.
    std::uint64_t token_epoch = 0;
    /// Clouds (by index) that still owe a floor push (they were in outage
    /// when the admin propagated the revocation) → the floor to re-apply.
    /// propagate_revocations drains this map; until a cloud gets its floor it
    /// counts as faulty for the lockout property (fail-closed on recovery).
    std::map<std::size_t, std::uint64_t> pending_floor;
    /// Fresh chain keys of every completed rotation, epoch order (the admin's
    /// durable copies; the audit matches them to published manifests).
    std::vector<ChainRotationKeys> rotations;
    /// In-flight rotation, staged on the admin's disk BEFORE the manifest CAS
    /// so a crash after publication can never lose the fresh keys the chain
    /// already depends on. Cleared when the rotation completes.
    struct PendingRotation {
      bool active = false;
      KeystoreRotation rotation;
      RotationManifest manifest;
      std::uint64_t base_count = 0;  // chain index the fresh stream starts at
    };
    PendingRotation pending_rotation;
  };
  UserSecrets& secrets(const std::string& user_id);

  /// Ransomware wipes the device share; subsequent default logins must fail
  /// until the external share is produced (threat T2).
  void destroy_device_share(const std::string& user_id);

  /// Re-login helpers (the agent is logged in by add_user already).
  Status login_default(const std::string& user_id);        // device + coord
  Status login_with_external(const std::string& user_id);  // external + coord

  /// Admin tokens, one per cloud.
  std::vector<cloud::AccessToken> admin_tokens();

  // ---- compromise response (revocation + live keystore rotation) ----

  /// What one respond_to_compromise accomplished.
  struct CompromiseResponse {
    std::uint64_t floor = 0;               // committed revocation floor
    std::size_t clouds_enforcing = 0;      // clouds that applied it now
    std::vector<std::size_t> clouds_pending;  // clouds in outage, floor owed
    std::size_t leases_evicted = 0;
    bool rotated = false;
    std::uint64_t rotation_epoch = 0;
    /// Virtual time from response start to the floor's quorum commit — once
    /// it elapses no pre-rotation credential is accepted anywhere non-faulty.
    sim::SimClock::Micros lockout_latency_us = 0;
    /// Virtual time of the rotation itself (reissue → reseal → re-login).
    sim::SimClock::Micros rotation_us = 0;
  };

  /// The full §4.1 response pipeline for one compromised user: commit the
  /// revocation floor at the coordination quorum, push it to every reachable
  /// cloud (unreachable ones are parked in pending_floor, fail-closed), evict
  /// the user's leases (PR 4 fencing), rotate the keystore — fresh tokens at
  /// the new epoch, fresh S_U, fresh FssAgg chain keys with a signed rotation
  /// record in the log, resealed under a fresh PVSS deal — and log the honest
  /// client back in from the new deal.
  ///
  /// Crash-resumable: every durable step lands in coordination tuples, cloud
  /// state, or the UserSecrets staging area before the next crash point, so
  /// re-invoking after kCrashed converges without double-applying. Returns
  /// kCrashed when the armed crash schedule fires mid-pipeline.
  Result<CompromiseResponse> respond_to_compromise(const std::string& user_id);

  /// Anti-entropy: retries every pending floor push (clouds that were in
  /// outage when their user was revoked). Returns the number applied.
  std::size_t propagate_revocations();

  /// Outcome of apply_audit_verdict.
  struct VerdictOutcome {
    std::set<std::string> implicated;   // users responded to
    std::set<std::string> overridden;   // flagged but manually cleared
    std::map<std::string, CompromiseResponse> responses;
  };

  /// Wires the intrusion detector's verdict (audit.h) into the response: the
  /// author of every flagged record is revoked and rotated, except users the
  /// administrator manually cleared (`manual_overrides` — the human veto over
  /// a false positive).
  Result<VerdictOutcome> apply_audit_verdict(
      const std::vector<LogRecord>& records, const std::set<std::uint64_t>& flagged_seqs,
      const std::set<std::string>& manual_overrides = {});

  /// Public half of the admin keypair (verifies rotation manifests).
  Bytes admin_public_key() const;

  // ---- malicious-cloud resilience (depsky/reconfig.h) ----

  /// Deployment-wide freshness witness: every client session (agents, admin
  /// storage, scrubbers) records into and checks against the same instance,
  /// so a cloud that answers one session below what it told another is
  /// caught as equivocating.
  const depsky::VersionWitnessPtr& witness() const noexcept { return witness_; }

  /// Cloud-set membership epoch currently in force (0 = the initial fleet).
  std::uint64_t membership_epoch() const noexcept { return membership_epoch_; }

  /// The cloud slot some client session has quarantined for proven
  /// misbehavior, or npos when every cloud is still in good standing.
  /// (Quarantine is per-client; any client's verdict is grounds to
  /// reconfigure, since it is backed by a provable contradiction.)
  static constexpr std::size_t kNoCloud = static_cast<std::size_t>(-1);
  std::size_t quarantined_cloud() const;

  /// What one reconfigure_cloud invocation accomplished.
  struct ReconfigurationReport {
    std::uint64_t epoch = 0;            // membership epoch now in force
    std::size_t replaced_index = 0;
    std::string old_cloud;              // provider name evicted
    std::string new_cloud;              // spare provider name
    std::size_t units_total = 0;        // units found on the retained clouds
    std::size_t units_migrated = 0;     // migrated by THIS invocation
    std::size_t units_resumed = 0;      // already done-marked (crash resume)
    std::size_t shares_rebuilt = 0;     // shares re-created on the new set
    std::size_t metas_stamped = 0;      // file units re-signed at the epoch
    sim::SimClock::Micros duration_us = 0;
  };

  /// Replaces the cloud at `replaced_index` with a freshly provisioned spare:
  /// publishes an admin-signed MembershipManifest (CAS, one winner per
  /// epoch), mints tokens for every user at the spare and reseals their
  /// keystores, swaps the fleet slot, then migrates every unit found on the
  /// retained clouds — DepSky repair rebuilds the replaced cloud's share on
  /// the spare, file units get the new epoch stamped into their metadata —
  /// recording a per-unit done-marker so a crashed migration resumes where
  /// it died. Finishes by re-logging every agent in at the new epoch.
  ///
  /// Crash-resumable like respond_to_compromise: kAfterMembershipManifest
  /// and kMidShareMigration fire here; re-invoking after kCrashed converges
  /// without double-applying.
  Result<ReconfigurationReport> reconfigure_cloud(std::size_t replaced_index);

 private:
  /// DepSky client writing as the admin and trusting every user's signer
  /// (shared by the recovery service and the rotation pipeline).
  std::shared_ptr<depsky::DepSkyClient> make_admin_storage();

  /// Provisions a fresh provider ("cloud-4", "cloud-5", ...) with the same
  /// S3-like heterogeneity formula as the initial fleet.
  cloud::CloudProviderPtr make_spare_cloud();

  /// Mints tokens for every user at the spare and reseals their keystores
  /// with the slot's tokens replaced (same holders, same keystore epoch).
  Status adopt_spare_tokens(std::size_t slot, const cloud::CloudProviderPtr& spare);

  /// Every unit name present on the retained clouds (union of listings,
  /// `<unit>.meta` / `<unit>.v<V>.s<I>` keys collapsed) — the scrubber's
  /// orphan-walk idiom widened to the whole namespace.
  std::vector<std::string> enumerate_units(std::size_t skip_index);

  DeploymentOptions options_;
  sim::SimClockPtr clock_;
  /// Shared fan-out pool (executor_threads > 0), handed to every agent and
  /// admin-side DepSky client. Declared before the agents map so workers
  /// outlive nothing that might still queue onto them.
  std::shared_ptr<common::Executor> executor_;
  std::vector<cloud::CloudProviderPtr> clouds_;
  std::shared_ptr<coord::CoordinationService> coordination_;
  crypto::Drbg setup_drbg_;
  crypto::KeyPair admin_keys_;  // PU_A/PR_A: signs recovered file versions
  sim::CrashSchedulePtr crash_;
  std::map<std::string, std::unique_ptr<RockFsAgent>> agents_;
  std::map<std::string, UserSecrets> secrets_;

  // ---- malicious-cloud resilience state ----
  depsky::VersionWitnessPtr witness_;
  std::uint64_t membership_epoch_ = 0;
  std::size_t next_spare_ = 0;  // suffix of the next spare provider name
  /// In-flight reconfiguration, staged before the manifest CAS so a crashed
  /// pipeline resumes the same epoch/spare instead of minting fresh ones.
  struct PendingReconfiguration {
    bool active = false;
    depsky::MembershipManifest manifest;
    cloud::CloudProviderPtr spare;
  };
  PendingReconfiguration pending_reconfig_;
};

}  // namespace rockfs::core
