// Local-cache protection (paper §4.2, Fig. 4): RockFS's CacheTransform for
// SCFS. Every cached file is stored sealed — AES-256-CTR under the session
// key S_U with an HMAC binding the file path (encrypt-then-MAC subsumes the
// paper's "hash value h_fu encrypted together with the file": it provides
// the same tamper-evidence with a standard AEAD construction). On open, a
// failed verification makes SCFS discard the cache entry and refetch from
// the cloud, exactly the §4.2.2 flow.
//
// S_U is short-lived: its identifier and expiry are registered in the
// coordination service so an attacker cannot keep using an old key after
// rotation (§4.2.1). When the key expires the whole cache is discarded.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "common/result.h"
#include "coord/service.h"
#include "crypto/drbg.h"
#include "scfs/scfs.h"

namespace rockfs::core {

/// Manages the session key lifecycle against the coordination service.
class SessionKeyManager {
 public:
  SessionKeyManager(std::string user_id, std::shared_ptr<coord::CoordinationService> coord,
                    sim::SimClockPtr clock, std::int64_t validity_us);
  ~SessionKeyManager();

  /// Adopts the keystore's stored S_U and its expiry (login flow). An
  /// already-expired seed is kept but never served: the first current() call
  /// mints a fresh key and reports a rotation, so every cache entry sealed
  /// under the expired key fails open and is refetched from the cloud.
  void seed(Bytes key, std::int64_t expiry_us);

  /// Current key, rotating (and registering) a fresh one if expired.
  /// The returned flag says whether a rotation happened (cache must drop).
  struct Current {
    Bytes key;
    bool rotated = false;
  };
  Current current(crypto::Drbg& drbg);

  /// True if the given key is the registered, unexpired session key.
  bool valid(BytesView key) const;

  std::int64_t expiry_us() const noexcept { return expiry_us_; }

  /// Invoked after every rotation (fresh key minted + registered). The agent
  /// hangs the cache drop here: a rotation must leave ZERO servable entries —
  /// sealed data would fail open anyway, but metadata and negative entries
  /// carry no seal, so only an explicit drop evicts them (§4.2.1).
  void set_rotation_hook(std::function<void()> hook) { rotation_hook_ = std::move(hook); }

 private:
  void register_key(BytesView key);

  std::string user_id_;
  std::shared_ptr<coord::CoordinationService> coord_;
  sim::SimClockPtr clock_;
  std::int64_t validity_us_;
  Bytes key_;
  std::int64_t expiry_us_ = -1;
  std::function<void()> rotation_hook_;
};

/// Registers `key`'s digest as the user's one currently-valid session key,
/// replacing any previous registration (rotation-side: a stolen S_U stops
/// validating the moment the rotated key is published).
sim::Timed<Status> publish_session_key(coord::CoordinationService& coord,
                                       const std::string& user_id, BytesView key,
                                       std::int64_t expiry_us);

/// Whether `key` is the user's currently registered session key.
sim::Timed<bool> session_key_registered(coord::CoordinationService& coord,
                                        const std::string& user_id, BytesView key);

/// The encrypting CacheTransform installed into SCFS.
class SecureCacheTransform final : public scfs::CacheTransform {
 public:
  SecureCacheTransform(std::shared_ptr<SessionKeyManager> keys,
                       std::shared_ptr<crypto::Drbg> drbg);

  Bytes protect(const std::string& path, std::uint64_t version,
                BytesView plaintext) override;
  Result<Bytes> unprotect(const std::string& path, std::uint64_t version,
                          BytesView cached) override;

 private:
  std::shared_ptr<SessionKeyManager> keys_;
  std::shared_ptr<crypto::Drbg> drbg_;
};

}  // namespace rockfs::core
