#include "rockfs/cache_security.h"

#include "common/hex.h"
#include "crypto/aes.h"
#include "crypto/sha256.h"

namespace rockfs::core {

namespace {
constexpr const char* kSessionTag = "rocksession";

// The AAD binds both the path and the inode version: a sealed entry replayed
// after the file changed fails authentication even under the same session key.
Bytes cache_aad(const std::string& path, std::uint64_t version) {
  return to_bytes("rockfs.cache.v1|" + path + "|" + std::to_string(version));
}
}  // namespace

SessionKeyManager::SessionKeyManager(std::string user_id,
                                     std::shared_ptr<coord::CoordinationService> coord,
                                     sim::SimClockPtr clock, std::int64_t validity_us)
    : user_id_(std::move(user_id)),
      coord_(std::move(coord)),
      clock_(std::move(clock)),
      validity_us_(validity_us) {}

SessionKeyManager::~SessionKeyManager() { secure_zero(key_); }

void SessionKeyManager::seed(Bytes key, std::int64_t expiry_us) {
  secure_zero(key_);
  key_ = std::move(key);
  expiry_us_ = key_.empty() ? -1 : expiry_us;
}

void SessionKeyManager::register_key(BytesView key) {
  auto r = publish_session_key(*coord_, user_id_, key, expiry_us_);
  clock_->advance_us(r.delay);
  r.value.expect("session key registration");
}

SessionKeyManager::Current SessionKeyManager::current(crypto::Drbg& drbg) {
  if (expiry_us_ >= 0 && clock_->now_us() < expiry_us_ && !key_.empty()) {
    return {key_, false};
  }
  key_ = drbg.generate_key();
  expiry_us_ = clock_->now_us() + validity_us_;
  register_key(key_);
  if (rotation_hook_) rotation_hook_();
  return {key_, true};
}

bool SessionKeyManager::valid(BytesView key) const {
  if (expiry_us_ < 0 || clock_->now_us() >= expiry_us_) return false;
  auto r = session_key_registered(*coord_, user_id_, key);
  clock_->advance_us(r.delay);
  return r.value;
}

sim::Timed<Status> publish_session_key(coord::CoordinationService& coord,
                                       const std::string& user_id, BytesView key,
                                       std::int64_t expiry_us) {
  // Only a digest of S_U goes to the coordination service — enough to pin
  // the currently-valid key without disclosing it.
  const std::string key_id = hex_encode(crypto::sha256(key));
  auto r = coord.replace(coord::Template::of({kSessionTag, user_id, "*", "*"}),
                         {kSessionTag, user_id, key_id, std::to_string(expiry_us)});
  if (!r.value.ok()) return {Status{r.value.error()}, r.delay};
  return {Status::Ok(), r.delay};
}

sim::Timed<bool> session_key_registered(coord::CoordinationService& coord,
                                        const std::string& user_id, BytesView key) {
  const std::string key_id = hex_encode(crypto::sha256(key));
  auto r = coord.rdp(coord::Template::of({kSessionTag, user_id, key_id, "*"}));
  return {r.value.ok() && r.value->has_value(), r.delay};
}

SecureCacheTransform::SecureCacheTransform(std::shared_ptr<SessionKeyManager> keys,
                                           std::shared_ptr<crypto::Drbg> drbg)
    : keys_(std::move(keys)), drbg_(std::move(drbg)) {}

Bytes SecureCacheTransform::protect(const std::string& path, std::uint64_t version,
                                    BytesView plaintext) {
  const auto current = keys_->current(*drbg_);
  return crypto::seal(current.key, plaintext, cache_aad(path, version),
                      drbg_->generate_iv());
}

Result<Bytes> SecureCacheTransform::unprotect(const std::string& path,
                                              std::uint64_t version, BytesView cached) {
  const auto current = keys_->current(*drbg_);
  if (current.rotated) {
    // The key under which this entry was sealed has expired; per §4.2.1 the
    // cached file is discarded and refetched.
    return Error{ErrorCode::kExpired, "cache: session key rotated"};
  }
  return crypto::open_sealed(current.key, cached, cache_aad(path, version));
}

}  // namespace rockfs::core
