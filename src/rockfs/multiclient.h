// Multi-client soak harness: N agents sharing one deployment (one virtual
// clock, one coordination service, one cloud-of-clouds) hammer a small set
// of shared paths through the lease/fencing machinery. Per-round dice pick
// an agent and a fate — a clean locked write, a crash at one of the close
// pipeline's crash points (the holder dies with the lease), or a mid-close
// hang long enough for a contender to evict the holder and write (the
// resumed close must then fence). The harness keeps a token ledger: every
// committed write's token MUST appear in the final content (no lost
// update), every fenced write's token MUST NOT (no zombie write), and a
// crashed write MAY (journal replay adopts durable intents). The report's
// digest covers the full outcome so two same-seed runs can be compared for
// determinism.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/clock.h"

namespace rockfs::core {

struct MultiClientOptions {
  std::size_t agents = 3;         // N >= 2 (eviction scenarios need a contender)
  std::size_t paths = 2;          // shared files under contention
  std::size_t rounds = 40;        // write attempts across all agents
  std::uint64_t seed = 2018;      // deployment + dice seed
  std::size_t f = 1;              // cloud/coordination fault bound
  std::int64_t lease_ttl_us = 5'000'000;
  double crash_prob = 0.15;       // P(round crashes at a random close point)
  double hang_prob = 0.15;        // P(round hangs pre-upload and gets evicted)
  /// Marks one coordination replica Byzantine for the whole soak (masked by
  /// the 3f+1 quorum; lease CAS must still never grant two holders).
  bool byzantine_coord_replica = false;
  /// Client cache (src/cache) on the agents. The converged content must be
  /// BYTE-IDENTICAL with the cache on or off (content_digest compares runs).
  bool client_cache = true;
  /// Write-back staging of closes. The harness flushes after every close
  /// (while the lease is held), so crash/fence fates fire inside the flush.
  bool write_back = false;
  /// Thread-pool size handed to the deployment (0 = inline). kBarrier joins
  /// keep every digest identical at any value.
  std::size_t executor_threads = 0;
};

struct MultiClientReport {
  std::size_t writes_attempted = 0;
  std::size_t writes_committed = 0;  // close OK — token must survive
  std::size_t writes_fenced = 0;     // close kFenced — token must NOT survive
  std::size_t writes_crashed = 0;    // close kCrashed — token may survive
  std::size_t evictions = 0;         // contender took over an expired lease
  std::size_t relogins = 0;          // sessions restarted after a crash
  std::size_t lock_waits = 0;        // acquisitions that had to spin on kConflict
  sim::SimClock::Micros max_blocked_us = 0;  // longest spin (wedge bound)
  std::size_t lost_updates = 0;      // committed token missing from final bytes
  std::size_t zombie_updates = 0;    // fenced token present in final bytes
  std::size_t divergent_reads = 0;   // agents disagreeing on final content
  std::map<std::string, std::string> final_contents;  // path -> final bytes
  std::string digest;  // sha256 over counters + final contents (determinism)
  /// sha256 over final contents ONLY: invariant across configurations that
  /// may legally shift counters/timing (cache on/off, thread counts) but
  /// must converge to the same bytes.
  std::string content_digest;

  bool converged() const {
    return lost_updates == 0 && zombie_updates == 0 && divergent_reads == 0;
  }
};

/// Runs the soak to completion (including a settle pass that commits one
/// clean write per path, then a cross-agent read-back). Deterministic per
/// options: same options => identical report, digest included.
MultiClientReport run_multiclient_soak(const MultiClientOptions& options);

}  // namespace rockfs::core
