#include "rockfs/deployment.h"

#include "obs/trace.h"

#include <stdexcept>

#include "common/hex.h"

namespace rockfs::core {

Deployment::Deployment(DeploymentOptions options)
    : options_(std::move(options)),
      clock_(std::make_shared<sim::SimClock>()),
      clouds_(cloud::make_provider_fleet(clock_, 3 * options_.f + 1, options_.seed)),
      coordination_(std::make_shared<coord::CoordinationService>(clock_, options_.f,
                                                                 options_.seed ^ 0xC0C0)),
      setup_drbg_(to_bytes("rockfs.deployment"), to_bytes(std::to_string(options_.seed))),
      admin_keys_(crypto::generate_keypair(setup_drbg_)),
      crash_(std::make_shared<sim::CrashSchedule>()) {
  if (options_.agent.f != options_.f) options_.agent.f = options_.f;
  // Spans across this deployment's stack stamp their start times from the
  // deployment's virtual clock.
  obs::tracer().bind_clock(clock_);
  // Hangs (arm_hang) advance this clock; crashes need no clock.
  crash_->bind_clock(clock_);
}

RockFsAgent& Deployment::add_user(const std::string& user_id) {
  return add_user(user_id, options_.agent);
}

RockFsAgent& Deployment::add_user(const std::string& user_id, const AgentOptions& options) {
  if (agents_.contains(user_id)) {
    throw std::invalid_argument("Deployment::add_user: duplicate user " + user_id);
  }

  UserSecrets us;

  // Cloud providers issue the two token families (Table 1: t_u, t_l).
  Keystore ks;
  ks.user_id = user_id;
  const crypto::KeyPair user_keys = crypto::generate_keypair(setup_drbg_);
  ks.user_private_key = user_keys.private_key.to_bytes_be();
  us.user_public_key = user_keys.public_key;
  for (auto& c : clouds_) {
    ks.file_tokens.push_back(
        c->issue_token(user_id, options_.fs_id, cloud::TokenScope::kFiles));
    ks.log_tokens.push_back(
        c->issue_token(user_id, options_.fs_id, cloud::TokenScope::kLogAppend));
  }

  // Administrator exchanges the FssAgg setup keys (A_1, B_1) — the agent
  // carries the current evolving copies in its keystore, the admin keeps the
  // originals for verification (§3.2).
  us.chain_keys = fssagg::fssagg_keygen(setup_drbg_);
  ks.fssagg_key_a = us.chain_keys.a1;
  ks.fssagg_key_b = us.chain_keys.b1;

  // Session key: generated lazily by the SessionKeyManager at first use.
  ks.session_key = {};
  ks.session_key_expiry_us = 0;

  // PVSS holders: device, coordination service, external memory (k = 2 of 3,
  // the paper's default split).
  us.device_holder = {"device", crypto::generate_keypair(setup_drbg_)};
  us.coordination_holder = {"coordination", crypto::generate_keypair(setup_drbg_)};
  us.external_holder = {"external", crypto::generate_keypair(setup_drbg_)};
  us.holder_pubs = {us.device_holder.keys.public_key,
                    us.coordination_holder.keys.public_key,
                    us.external_holder.keys.public_key};
  us.sealed = seal_keystore(ks, {us.device_holder, us.coordination_holder,
                                 us.external_holder},
                            /*k=*/2, setup_drbg_);

  // The sealed keystore (public) is kept in the coordination service so any
  // of the user's devices can fetch it.
  auto stored = coordination_->replace(
      coord::Template::of({"rockks", user_id, "*"}),
      {"rockks", user_id, base64_encode(us.sealed.serialize())});
  clock_->advance_us(stored.delay);
  stored.value.expect("store sealed keystore");

  AgentOptions agent_options = options;
  agent_options.trusted_writers.push_back(crypto::point_encode(admin_keys_.public_key));
  if (!agent_options.crash) agent_options.crash = crash_;
  auto agent = std::make_unique<RockFsAgent>(user_id, clouds_, coordination_, clock_,
                                             agent_options, us.holder_pubs,
                                             /*threshold=*/2);
  secrets_[user_id] = std::move(us);
  agents_[user_id] = std::move(agent);

  // Shared-namespace writer roster: every user trusts every other user's
  // DepSky signer, so a file last written by a peer verifies at read time.
  const Bytes new_pub = crypto::point_encode(secrets_[user_id].user_public_key);
  for (auto& [other_id, other_agent] : agents_) {
    if (other_id == user_id) continue;
    other_agent->trust_writer(new_pub);
    agents_[user_id]->trust_writer(
        crypto::point_encode(secrets_[other_id].user_public_key));
  }

  if (auto st = login_default(user_id); !st.ok()) {
    throw std::runtime_error("Deployment::add_user: login failed: " + st.error().message);
  }
  return *agents_[user_id];
}

RockFsAgent& Deployment::agent(const std::string& user_id) {
  const auto it = agents_.find(user_id);
  if (it == agents_.end()) {
    throw std::invalid_argument("Deployment::agent: unknown user " + user_id);
  }
  return *it->second;
}

Deployment::UserSecrets& Deployment::secrets(const std::string& user_id) {
  const auto it = secrets_.find(user_id);
  if (it == secrets_.end()) {
    throw std::invalid_argument("Deployment::secrets: unknown user " + user_id);
  }
  return it->second;
}

void Deployment::destroy_device_share(const std::string& user_id) {
  secrets(user_id).device_share_destroyed = true;
}

Status Deployment::login_default(const std::string& user_id) {
  auto& us = secrets(user_id);
  LoginMaterial material;
  if (!us.device_share_destroyed) material.device = us.device_holder;
  material.coordination = us.coordination_holder;
  return agent(user_id).login(us.sealed, material);
}

Status Deployment::login_with_external(const std::string& user_id) {
  auto& us = secrets(user_id);
  LoginMaterial material;
  material.coordination = us.coordination_holder;
  material.external = us.external_holder;
  return agent(user_id).login(us.sealed, material);
}

std::vector<cloud::AccessToken> Deployment::admin_tokens() {
  std::vector<cloud::AccessToken> tokens;
  tokens.reserve(clouds_.size());
  for (auto& c : clouds_) {
    tokens.push_back(c->issue_token("admin", options_.fs_id, cloud::TokenScope::kAdmin));
  }
  return tokens;
}

RecoveryService Deployment::make_recovery_service(const std::string& user_id) {
  auto& us = secrets(user_id);
  RecoveryConfig cfg;
  cfg.user_chain_keys = us.chain_keys;
  cfg.admin_tokens = admin_tokens();
  // The admin holds every user's setup keys: recover_shared_file audits and
  // merges all writers' chains over a shared file.
  for (const auto& [other_id, other_secrets] : secrets_) {
    if (other_id != user_id) cfg.peer_chain_keys[other_id] = other_secrets.chain_keys;
  }

  depsky::DepSkyConfig storage_cfg;
  storage_cfg.clouds = clouds_;
  storage_cfg.f = options_.f;
  storage_cfg.protocol = options_.agent.protocol;
  storage_cfg.writer = admin_keys_;
  // The admin reads units written by any user: trust every signer.
  for (const auto& [other_id, other_secrets] : secrets_) {
    (void)other_id;
    storage_cfg.trusted_writers.push_back(
        crypto::point_encode(other_secrets.user_public_key));
  }
  auto storage = std::make_shared<depsky::DepSkyClient>(std::move(storage_cfg),
                                                        setup_drbg_.generate(32));
  RecoveryService service(user_id, std::move(cfg), std::move(storage), coordination_,
                          clock_);
  service.set_crash_schedule(crash_);
  return service;
}

LogScrubber Deployment::make_scrubber(const std::string& user_id, ScrubOptions options) {
  auto& us = secrets(user_id);
  depsky::DepSkyConfig storage_cfg;
  storage_cfg.clouds = clouds_;
  storage_cfg.f = options_.f;
  storage_cfg.protocol = options_.agent.protocol;
  storage_cfg.writer = admin_keys_;
  // The scrubber reads (and repairs) units written by the user and by the
  // admin chain: trust both signers.
  storage_cfg.trusted_writers.push_back(crypto::point_encode(us.user_public_key));
  auto storage = std::make_shared<depsky::DepSkyClient>(std::move(storage_cfg),
                                                        setup_drbg_.generate(32));
  return LogScrubber(user_id, std::move(storage), admin_tokens(), coordination_, clock_,
                     options);
}

}  // namespace rockfs::core
