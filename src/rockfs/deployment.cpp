#include "rockfs/deployment.h"

#include "obs/metrics.h"
#include "obs/trace.h"

#include <algorithm>
#include <stdexcept>

#include "common/hex.h"

namespace rockfs::core {

Deployment::Deployment(DeploymentOptions options)
    : options_(std::move(options)),
      clock_(std::make_shared<sim::SimClock>()),
      executor_(options_.executor_threads > 0
                    ? std::make_shared<common::ThreadPool>(options_.executor_threads)
                    : nullptr),
      clouds_(cloud::make_provider_fleet(clock_, 3 * options_.f + 1, options_.seed)),
      coordination_(std::make_shared<coord::CoordinationService>(clock_, options_.f,
                                                                 options_.seed ^ 0xC0C0)),
      setup_drbg_(to_bytes("rockfs.deployment"), to_bytes(std::to_string(options_.seed))),
      admin_keys_(crypto::generate_keypair(setup_drbg_)),
      crash_(std::make_shared<sim::CrashSchedule>()),
      witness_(std::make_shared<depsky::VersionWitness>()),
      next_spare_(clouds_.size()) {
  if (options_.agent.f != options_.f) options_.agent.f = options_.f;
  // Every agent added later (and the admin storage/scrubber) shares the pool.
  if (executor_ && !options_.agent.executor) options_.agent.executor = executor_;
  // ... and the freshness witness, so cross-session equivocation is caught.
  if (!options_.agent.witness) options_.agent.witness = witness_;
  // Spans across this deployment's stack stamp their start times from the
  // deployment's virtual clock.
  obs::tracer().bind_clock(clock_);
  // Hangs (arm_hang) advance this clock; crashes need no clock.
  crash_->bind_clock(clock_);
}

RockFsAgent& Deployment::add_user(const std::string& user_id) {
  return add_user(user_id, options_.agent);
}

RockFsAgent& Deployment::add_user(const std::string& user_id, const AgentOptions& options) {
  if (agents_.contains(user_id)) {
    throw std::invalid_argument("Deployment::add_user: duplicate user " + user_id);
  }

  UserSecrets us;

  // Cloud providers issue the two token families (Table 1: t_u, t_l).
  Keystore ks;
  ks.user_id = user_id;
  const crypto::KeyPair user_keys = crypto::generate_keypair(setup_drbg_);
  ks.user_private_key = user_keys.private_key.to_bytes_be();
  us.user_public_key = user_keys.public_key;
  for (auto& c : clouds_) {
    ks.file_tokens.push_back(
        c->issue_token(user_id, options_.fs_id, cloud::TokenScope::kFiles));
    ks.log_tokens.push_back(
        c->issue_token(user_id, options_.fs_id, cloud::TokenScope::kLogAppend));
  }

  // Administrator exchanges the FssAgg setup keys (A_1, B_1) — the agent
  // carries the current evolving copies in its keystore, the admin keeps the
  // originals for verification (§3.2).
  us.chain_keys = fssagg::fssagg_keygen(setup_drbg_);
  ks.fssagg_key_a = us.chain_keys.a1;
  ks.fssagg_key_b = us.chain_keys.b1;

  // Session key: generated lazily by the SessionKeyManager at first use.
  ks.session_key = {};
  ks.session_key_expiry_us = 0;

  // PVSS holders: device, coordination service, external memory (k = 2 of 3,
  // the paper's default split).
  us.device_holder = {"device", crypto::generate_keypair(setup_drbg_)};
  us.coordination_holder = {"coordination", crypto::generate_keypair(setup_drbg_)};
  us.external_holder = {"external", crypto::generate_keypair(setup_drbg_)};
  us.holder_pubs = {us.device_holder.keys.public_key,
                    us.coordination_holder.keys.public_key,
                    us.external_holder.keys.public_key};
  us.sealed = seal_keystore(ks, {us.device_holder, us.coordination_holder,
                                 us.external_holder},
                            /*k=*/2, setup_drbg_, /*password=*/{}, executor_.get());

  // The sealed keystore (public) is kept in the coordination service so any
  // of the user's devices can fetch it. The third field is the keystore
  // epoch: 0 at setup, bumped by every rotation.
  auto stored = coordination_->replace(
      coord::Template::of({"rockks", user_id, "*", "*"}),
      {"rockks", user_id, "0", base64_encode(us.sealed.serialize())});
  clock_->advance_us(stored.delay);
  stored.value.expect("store sealed keystore");

  AgentOptions agent_options = options;
  agent_options.trusted_writers.push_back(crypto::point_encode(admin_keys_.public_key));
  if (!agent_options.crash) agent_options.crash = crash_;
  if (agent_options.enable_cache && !agent_options.cache) {
    // Per-USER cache handle, minted here (not inside the agent) so the
    // deployment's compromise response can reach it. Each user gets their
    // own instance — a handle set by the caller is respected as-is.
    agent_options.cache = std::make_shared<cache::ClientCache>(agent_options.cache_config);
  }
  auto agent = std::make_unique<RockFsAgent>(user_id, clouds_, coordination_, clock_,
                                             agent_options, us.holder_pubs,
                                             /*threshold=*/2);
  secrets_[user_id] = std::move(us);
  agents_[user_id] = std::move(agent);

  // Shared-namespace writer roster: every user trusts every other user's
  // DepSky signer, so a file last written by a peer verifies at read time.
  const Bytes new_pub = crypto::point_encode(secrets_[user_id].user_public_key);
  for (auto& [other_id, other_agent] : agents_) {
    if (other_id == user_id) continue;
    other_agent->trust_writer(new_pub);
    agents_[user_id]->trust_writer(
        crypto::point_encode(secrets_[other_id].user_public_key));
  }

  if (auto st = login_default(user_id); !st.ok()) {
    throw std::runtime_error("Deployment::add_user: login failed: " + st.error().message);
  }
  return *agents_[user_id];
}

RockFsAgent& Deployment::agent(const std::string& user_id) {
  const auto it = agents_.find(user_id);
  if (it == agents_.end()) {
    throw std::invalid_argument("Deployment::agent: unknown user " + user_id);
  }
  return *it->second;
}

Deployment::UserSecrets& Deployment::secrets(const std::string& user_id) {
  const auto it = secrets_.find(user_id);
  if (it == secrets_.end()) {
    throw std::invalid_argument("Deployment::secrets: unknown user " + user_id);
  }
  return it->second;
}

void Deployment::destroy_device_share(const std::string& user_id) {
  secrets(user_id).device_share_destroyed = true;
}

Status Deployment::login_default(const std::string& user_id) {
  auto& us = secrets(user_id);
  LoginMaterial material;
  if (!us.device_share_destroyed) material.device = us.device_holder;
  material.coordination = us.coordination_holder;
  return agent(user_id).login(us.sealed, material);
}

Status Deployment::login_with_external(const std::string& user_id) {
  auto& us = secrets(user_id);
  LoginMaterial material;
  material.coordination = us.coordination_holder;
  material.external = us.external_holder;
  return agent(user_id).login(us.sealed, material);
}

std::vector<cloud::AccessToken> Deployment::admin_tokens() {
  std::vector<cloud::AccessToken> tokens;
  tokens.reserve(clouds_.size());
  for (auto& c : clouds_) {
    tokens.push_back(c->issue_token("admin", options_.fs_id, cloud::TokenScope::kAdmin));
  }
  return tokens;
}

std::shared_ptr<depsky::DepSkyClient> Deployment::make_admin_storage() {
  depsky::DepSkyConfig storage_cfg;
  storage_cfg.clouds = clouds_;
  storage_cfg.f = options_.f;
  storage_cfg.protocol = options_.agent.protocol;
  storage_cfg.writer = admin_keys_;
  // The admin reads units written by any user: trust every signer.
  for (const auto& [other_id, other_secrets] : secrets_) {
    (void)other_id;
    storage_cfg.trusted_writers.push_back(
        crypto::point_encode(other_secrets.user_public_key));
  }
  storage_cfg.executor = executor_;
  storage_cfg.witness = witness_;
  storage_cfg.session = "admin";
  storage_cfg.membership_epoch = membership_epoch_;
  return std::make_shared<depsky::DepSkyClient>(std::move(storage_cfg),
                                                setup_drbg_.generate(32));
}

RecoveryService Deployment::make_recovery_service(const std::string& user_id) {
  auto& us = secrets(user_id);
  RecoveryConfig cfg;
  cfg.user_chain_keys = us.chain_keys;
  cfg.admin_tokens = admin_tokens();
  // The admin holds every user's setup keys: recover_shared_file audits and
  // merges all writers' chains over a shared file.
  for (const auto& [other_id, other_secrets] : secrets_) {
    if (other_id != user_id) cfg.peer_chain_keys[other_id] = other_secrets.chain_keys;
  }
  // Rotation metadata: the audit switches key streams at every admin-signed
  // rotation manifest (revocation.h).
  cfg.admin_public_key = admin_public_key();
  cfg.chain_rotations = us.rotations;
  for (const auto& [other_id, other_secrets] : secrets_) {
    if (other_id != user_id) cfg.peer_chain_rotations[other_id] = other_secrets.rotations;
  }

  RecoveryService service(user_id, std::move(cfg), make_admin_storage(), coordination_,
                          clock_);
  service.set_crash_schedule(crash_);
  return service;
}

Bytes Deployment::admin_public_key() const {
  return crypto::point_encode(admin_keys_.public_key);
}

Result<Deployment::CompromiseResponse> Deployment::respond_to_compromise(
    const std::string& user_id) {
  auto& us = secrets(user_id);
  CompromiseResponse out;
  const auto t0 = clock_->now_us();
  try {
    // 1. Commit the revocation floor at the coordination quorum. This is THE
    //    lockout instant: from here on, no non-faulty cloud that has seen (or
    //    will see, on recovery) the floor accepts the stolen token epoch, and
    //    everything below is propagation and replacement. Monotone and
    //    idempotent, so a crashed response re-commits harmlessly.
    const std::uint64_t floor = us.token_epoch + 1;
    auto committed = commit_revocation_floor(*coordination_, user_id, floor);
    clock_->advance_us(committed.delay);
    if (!committed.value.ok()) return Error{committed.value.error()};
    out.floor = floor;
    out.lockout_latency_us = static_cast<sim::SimClock::Micros>(clock_->now_us() - t0);
    if (crash_) crash_->maybe_crash(sim::CrashPoint::kAfterRevocationFloor);

    // 2. Push the floor to every cloud. A cloud in outage owes it: parked in
    //    pending_floor and retried by propagate_revocations — fail-closed,
    //    the cloud applies the floor on recovery before any stale token can
    //    be accepted there again.
    const auto admin = admin_tokens();
    bool first_cloud = true;
    for (std::size_t i = 0; i < clouds_.size(); ++i) {
      auto applied = clouds_[i]->apply_revocation_floor(admin[i], user_id, floor);
      clock_->advance_us(applied.delay);
      if (applied.value.ok()) {
        us.pending_floor.erase(i);
        ++out.clouds_enforcing;
      } else {
        us.pending_floor[i] = floor;
        out.clouds_pending.push_back(i);
      }
      if (first_cloud) {
        first_cloud = false;
        if (crash_) crash_->maybe_crash(sim::CrashPoint::kMidFloorPropagation);
      }
    }

    // 3. Evict every lease the compromised user holds: stolen sessions lose
    //    their locks and their in-flight closes fence out (scfs/lease.h).
    auto evicted = scfs::evict_holder_leases(*coordination_, user_id);
    clock_->advance_us(evicted.delay);
    if (!evicted.value.ok()) return Error{evicted.value.error()};
    out.leases_evicted = *evicted.value;

    // 3b. Drop the user's client cache — every tier. A compromised device
    //     must not keep serving pre-revocation state (file bytes, head
    //     versions, cached misses), and staged write-backs from the stolen
    //     session are discarded, never flushed. Done BEFORE the logout below,
    //     whose voluntary flush would otherwise commit them.
    if (const auto it = agents_.find(user_id); it != agents_.end()) {
      it->second->drop_cache();
    }

    // 4. Rotate the keystore. The honest client's live session also holds
    //    pre-floor credentials — tear it down before replacing its keystore.
    const auto rot_start = clock_->now_us();
    if (const auto it = agents_.find(user_id); it != agents_.end()) it->second->logout();

    // Resume the user's chain admin-side: the rotate record is appended with
    // admin credentials (the old tokens are dying; the new ones belong inside
    // the not-yet-published keystore).
    const fssagg::FssAggKeys& stream_keys =
        us.rotations.empty() ? us.chain_keys : us.rotations.back().keys;
    LogServiceOptions log_opts;
    log_opts.key_base_count = us.rotations.empty() ? 0 : us.rotations.back().at_seq + 1;
    auto log = make_resumed_log_service(user_id, make_admin_storage(), admin,
                                        coordination_, clock_, stream_keys, log_opts);

    auto aggs = read_aggregates(*coordination_, user_id);
    clock_->advance_us(aggs.delay);
    std::uint64_t chain_count = 0;
    if (aggs.value.ok()) {
      chain_count = aggs.value->count;
    } else if (aggs.value.code() != ErrorCode::kNotFound) {
      return Error{aggs.value.error()};
    }

    auto published = read_rotation_manifests(*coordination_, user_id);
    clock_->advance_us(published.delay);
    if (!published.value.ok()) return Error{published.value.error()};
    std::uint64_t next_epoch = us.keystore_epoch + 1;
    for (const auto& m : *published.value) {
      next_epoch = std::max(next_epoch, m.rotation_epoch + 1);
    }

    // A crashed previous response may have staged (and possibly published,
    // possibly even chain-committed) a rotation. Resume it if the chain still
    // matches; otherwise the staging is stale and a fresh mint replaces it.
    bool manifest_published = false;
    bool record_committed = false;
    if (us.pending_rotation.active) {
      const auto& pm = us.pending_rotation.manifest;
      for (const auto& m : *published.value) {
        if (m.rotation_epoch == pm.rotation_epoch && m.signature == pm.signature) {
          manifest_published = true;
          break;
        }
      }
      if (chain_count == us.pending_rotation.base_count) {
        auto recs = read_log_records(*coordination_, user_id);
        clock_->advance_us(recs.delay);
        if (recs.value.ok() && !recs.value->empty() &&
            recs.value->back().op == rotation_record_op() &&
            recs.value->back().version == pm.rotation_epoch) {
          record_committed = true;
        }
      }
      const bool chain_unmoved = us.pending_rotation.base_count == chain_count + 1;
      if (!record_committed && !chain_unmoved) us.pending_rotation = {};
    }

    if (!us.pending_rotation.active) {
      // Fresh mint. Reissue both token families at the new epoch; a cloud
      // that cannot reissue (outage) keeps its old token in the keystore —
      // DepSky masks up to f such clouds and the next rotation refreshes.
      auto old_ks = unseal_keystore(us.sealed,
                                    {us.coordination_holder, us.external_holder},
                                    us.holder_pubs, /*k=*/2, setup_drbg_);
      if (!old_ks.ok()) return Error{old_ks.error()};

      std::vector<cloud::AccessToken> file_tokens;
      std::vector<cloud::AccessToken> log_tokens;
      for (std::size_t i = 0; i < clouds_.size(); ++i) {
        auto ft = clouds_[i]->reissue_token(admin[i], user_id,
                                            cloud::TokenScope::kFiles, floor);
        clock_->advance_us(ft.delay);
        auto lt = clouds_[i]->reissue_token(admin[i], user_id,
                                            cloud::TokenScope::kLogAppend, floor);
        clock_->advance_us(lt.delay);
        file_tokens.push_back(ft.value.ok() ? *ft.value : old_ks->file_tokens[i]);
        log_tokens.push_back(lt.value.ok() ? *lt.value : old_ks->log_tokens[i]);
      }

      const std::int64_t session_expiry =
          clock_->now_us() + options_.agent.session_key_validity_us;
      us.pending_rotation.rotation = rotate_keystore(
          *old_ks, std::move(file_tokens), std::move(log_tokens),
          setup_drbg_.generate_key(), session_expiry, chain_count + 1,
          {us.device_holder, us.coordination_holder, us.external_holder}, /*k=*/2,
          setup_drbg_);
      us.pending_rotation.manifest =
          make_rotation_manifest(user_id, next_epoch, log->next_seq(),
                                 us.pending_rotation.rotation.chain_keys, admin_keys_);
      us.pending_rotation.base_count = chain_count + 1;
      us.pending_rotation.active = true;  // staged durably BEFORE the CAS
    }

    // 5. Linearize against concurrent rotations: the manifest CAS admits
    //    exactly one winner per (user, epoch); a loser re-signs at the next
    //    free epoch and tries again.
    if (!manifest_published) {
      for (int attempt = 0;; ++attempt) {
        auto won = publish_rotation_manifest(*coordination_, us.pending_rotation.manifest);
        clock_->advance_us(won.delay);
        if (!won.value.ok()) return Error{won.value.error()};
        if (*won.value) break;
        if (attempt >= 8) {
          return Error{ErrorCode::kConflict,
                       "rotation: could not win an epoch for " + user_id};
        }
        auto again = read_rotation_manifests(*coordination_, user_id);
        clock_->advance_us(again.delay);
        if (!again.value.ok()) return Error{again.value.error()};
        for (const auto& m : *again.value) {
          next_epoch = std::max(next_epoch, m.rotation_epoch + 1);
        }
        us.pending_rotation.manifest =
            make_rotation_manifest(user_id, next_epoch, log->next_seq(),
                                   us.pending_rotation.rotation.chain_keys, admin_keys_);
      }
    }
    const RotationManifest manifest = us.pending_rotation.manifest;
    const std::uint64_t epoch = manifest.rotation_epoch;

    // 6. The signed rotation record goes into the user's own log, MAC'd with
    //    the OUTGOING key stream — verify_chain spans the key change because
    //    the record pins where the fresh stream begins.
    if (!record_committed) {
      Bytes payload = manifest.signing_payload();
      append_lp(payload, manifest.signature);
      auto appended =
          log->append(rotation_record_path(), {}, payload, epoch, rotation_record_op());
      clock_->advance_us(appended.delay);
      if (!appended.value.ok()) return Error{appended.value.error()};
    }
    if (crash_) crash_->maybe_crash(sim::CrashPoint::kAfterRotationRecord);

    // 7. Publish the resealed keystore (fresh PVSS deal: new polynomial,
    //    same holders, old shares useless) and the fresh session key digest
    //    (the stolen S_U stops validating).
    auto stored = coordination_->replace(
        coord::Template::of({"rockks", user_id, "*", "*"}),
        {"rockks", user_id, std::to_string(epoch),
         base64_encode(us.pending_rotation.rotation.sealed.serialize())});
    clock_->advance_us(stored.delay);
    if (!stored.value.ok()) return Error{stored.value.error()};
    if (crash_) crash_->maybe_crash(sim::CrashPoint::kAfterKeystoreReseal);

    auto session = publish_session_key(
        *coordination_, user_id, us.pending_rotation.rotation.keystore.session_key,
        us.pending_rotation.rotation.keystore.session_key_expiry_us);
    clock_->advance_us(session.delay);
    if (!session.value.ok()) return Error{session.value.error()};

    // Durable adoption on the admin's disk; the staged plaintext is wiped.
    us.rotations.push_back(
        {epoch, us.pending_rotation.base_count - 1, us.pending_rotation.rotation.chain_keys});
    us.sealed = us.pending_rotation.rotation.sealed;
    us.keystore_epoch = epoch;
    us.token_epoch = floor;
    us.pending_rotation = {};
    out.rotated = true;
    out.rotation_epoch = epoch;

    // 8. The honest client logs back in from the new deal (the holder keys
    //    are unchanged — only the shares were refreshed).
    if (agents_.contains(user_id)) {
      auto st = login_default(user_id);
      if (!st.ok()) st = login_with_external(user_id);
      if (!st.ok()) return Error{st.error()};
    }
    out.rotation_us = static_cast<sim::SimClock::Micros>(clock_->now_us() - rot_start);
    return out;
  } catch (const sim::ClientCrash& crash) {
    return Error{ErrorCode::kCrashed,
                 std::string("compromise response crashed at ") +
                     sim::crash_point_name(crash.point)};
  }
}

std::size_t Deployment::propagate_revocations() {
  std::size_t applied = 0;
  const auto admin = admin_tokens();
  for (auto& [user_id, us] : secrets_) {
    for (auto it = us.pending_floor.begin(); it != us.pending_floor.end();) {
      auto r = clouds_[it->first]->apply_revocation_floor(admin[it->first], user_id,
                                                         it->second);
      clock_->advance_us(r.delay);
      if (r.value.ok()) {
        ++applied;
        it = us.pending_floor.erase(it);
      } else {
        ++it;
      }
    }
  }
  return applied;
}

Result<Deployment::VerdictOutcome> Deployment::apply_audit_verdict(
    const std::vector<LogRecord>& records, const std::set<std::uint64_t>& flagged_seqs,
    const std::set<std::string>& manual_overrides) {
  VerdictOutcome out;
  for (const auto& r : records) {
    if (!flagged_seqs.contains(r.seq)) continue;
    if (manual_overrides.contains(r.user)) {
      out.overridden.insert(r.user);
      continue;
    }
    if (secrets_.contains(r.user)) out.implicated.insert(r.user);
  }
  for (const auto& user : out.implicated) {
    auto response = respond_to_compromise(user);
    if (!response.ok()) return Error{response.error()};
    out.responses[user] = *response;
  }
  return out;
}

LogScrubber Deployment::make_scrubber(const std::string& user_id, ScrubOptions options) {
  auto& us = secrets(user_id);
  depsky::DepSkyConfig storage_cfg;
  storage_cfg.clouds = clouds_;
  storage_cfg.f = options_.f;
  storage_cfg.protocol = options_.agent.protocol;
  storage_cfg.writer = admin_keys_;
  // The scrubber reads (and repairs) units written by the user and by the
  // admin chain: trust both signers.
  storage_cfg.trusted_writers.push_back(crypto::point_encode(us.user_public_key));
  storage_cfg.executor = executor_;
  storage_cfg.witness = witness_;
  storage_cfg.session = "scrub";
  storage_cfg.membership_epoch = membership_epoch_;
  auto storage = std::make_shared<depsky::DepSkyClient>(std::move(storage_cfg),
                                                        setup_drbg_.generate(32));
  return LogScrubber(user_id, std::move(storage), admin_tokens(), coordination_, clock_,
                     options);
}

std::size_t Deployment::quarantined_cloud() const {
  for (const auto& [user_id, agent] : agents_) {
    (void)user_id;
    const auto storage = agent->storage();
    if (!storage) continue;
    for (std::size_t i = 0; i < storage->n(); ++i) {
      if (storage->cloud_health(i).quarantined()) return i;
    }
  }
  return kNoCloud;
}

cloud::CloudProviderPtr Deployment::make_spare_cloud() {
  const std::size_t idx = next_spare_++;
  auto profile = sim::LinkProfile::s3_like("cloud-" + std::to_string(idx));
  // Same heterogeneity formula as make_provider_fleet, continued past the
  // initial fleet, so a reconfigured deployment stays in-family.
  profile.rtt_us += static_cast<std::int64_t>(idx) * 2'000;
  profile.up_bytes_per_sec *= 1.0 + 0.07 * static_cast<double>(idx);
  return std::make_shared<cloud::CloudProvider>(profile.name, clock_, profile,
                                                options_.seed + 1000 * idx);
}

Status Deployment::adopt_spare_tokens(std::size_t slot,
                                      const cloud::CloudProviderPtr& spare) {
  const auto spare_admin =
      spare->issue_token("admin", options_.fs_id, cloud::TokenScope::kAdmin);
  for (auto& [user_id, us] : secrets_) {
    // The spare enforces the user's current revocation floor from its first
    // moment (fail-closed: a pre-rotation token stolen earlier is dead here
    // too), and the fresh tokens are minted at an epoch that survives it.
    if (us.token_epoch > 0) {
      auto floored = spare->apply_revocation_floor(spare_admin, user_id, us.token_epoch);
      clock_->advance_us(floored.delay);
      if (!floored.value.ok()) return Status{floored.value.error()};
    }
    auto ks = unseal_keystore(us.sealed, {us.coordination_holder, us.external_holder},
                              us.holder_pubs, /*k=*/2, setup_drbg_);
    if (!ks.ok()) return Status{ks.error()};
    ks->file_tokens[slot] =
        spare->issue_token(user_id, options_.fs_id, cloud::TokenScope::kFiles);
    ks->log_tokens[slot] =
        spare->issue_token(user_id, options_.fs_id, cloud::TokenScope::kLogAppend);
    us.sealed = seal_keystore(*ks, {us.device_holder, us.coordination_holder,
                                    us.external_holder},
                              /*k=*/2, setup_drbg_, /*password=*/{}, executor_.get());
    auto stored = coordination_->replace(
        coord::Template::of({"rockks", user_id, "*", "*"}),
        {"rockks", user_id, std::to_string(us.keystore_epoch),
         base64_encode(us.sealed.serialize())});
    clock_->advance_us(stored.delay);
    if (!stored.value.ok()) return Status{stored.value.error()};
  }
  return Status::Ok();
}

std::vector<std::string> Deployment::enumerate_units(std::size_t skip_index) {
  // The scrubber's orphan-walk idiom over the whole key space: every
  // logs/<chain>/e<seq> or files<path> key collapses to its unit name.
  std::set<std::string> units;
  const auto admin = admin_tokens();
  for (std::size_t i = 0; i < clouds_.size(); ++i) {
    if (i == skip_index) continue;
    auto listed = clouds_[i]->list(admin[i], "");
    clock_->advance_us(listed.delay);
    if (!listed.value.ok()) continue;  // an unreachable cloud cannot widen the union
    for (const auto& obj : *listed.value) {
      std::string unit = obj.key;
      if (const auto meta = unit.rfind(".meta");
          meta != std::string::npos && meta + 5 == unit.size()) {
        unit.resize(meta);
      } else if (const auto ver = unit.rfind(".v"); ver != std::string::npos) {
        unit.resize(ver);
      } else {
        continue;  // not a unit-structured key
      }
      units.insert(std::move(unit));
    }
  }
  return {units.begin(), units.end()};
}

Result<Deployment::ReconfigurationReport> Deployment::reconfigure_cloud(
    std::size_t replaced_index) {
  if (replaced_index >= clouds_.size()) {
    return Error{ErrorCode::kInvalidArgument,
                 "reconfigure_cloud: no cloud at index " + std::to_string(replaced_index)};
  }
  ReconfigurationReport out;
  const auto t0 = clock_->now_us();
  obs::Span span = obs::tracer().span("reconfig");
  try {
    // 1. Stage the manifest and the spare (durably, on the admin's disk) so
    //    a crashed pipeline resumes the same epoch instead of re-minting.
    if (!pending_reconfig_.active) {
      auto spare = make_spare_cloud();
      std::vector<std::string> old_names;
      old_names.reserve(clouds_.size());
      for (const auto& c : clouds_) old_names.push_back(c->name());
      std::vector<std::string> new_names = old_names;
      new_names[replaced_index] = spare->name();
      auto published = depsky::read_membership_manifests(*coordination_);
      clock_->advance_us(published.delay);
      if (!published.value.ok()) return Error{published.value.error()};
      std::uint64_t epoch = membership_epoch_ + 1;
      for (const auto& m : *published.value) epoch = std::max(epoch, m.epoch + 1);
      pending_reconfig_.manifest = depsky::make_membership_manifest(
          epoch, std::move(old_names), std::move(new_names), replaced_index, admin_keys_);
      pending_reconfig_.spare = std::move(spare);
      pending_reconfig_.active = true;
    }
    if (pending_reconfig_.manifest.replaced_index != replaced_index) {
      return Error{ErrorCode::kConflict,
                   "reconfigure_cloud: a reconfiguration of another slot is in flight"};
    }

    // 2. Publish via CAS: one winner per epoch. Losing to our own manifest
    //    (a resumed pipeline) is a win; losing to a different one bumps the
    //    epoch and retries.
    for (int attempt = 0;; ++attempt) {
      auto won = depsky::publish_membership_manifest(*coordination_,
                                                     pending_reconfig_.manifest);
      clock_->advance_us(won.delay);
      if (!won.value.ok()) return Error{won.value.error()};
      if (*won.value) break;
      auto again = depsky::read_membership_manifests(*coordination_);
      clock_->advance_us(again.delay);
      if (!again.value.ok()) return Error{again.value.error()};
      bool ours = false;
      std::uint64_t next = pending_reconfig_.manifest.epoch + 1;
      for (const auto& m : *again.value) {
        if (m.epoch == pending_reconfig_.manifest.epoch &&
            m.signature == pending_reconfig_.manifest.signature) {
          ours = true;
        }
        next = std::max(next, m.epoch + 1);
      }
      if (ours) break;
      if (attempt >= 8) {
        return Error{ErrorCode::kConflict,
                     "reconfigure_cloud: could not win a membership epoch"};
      }
      pending_reconfig_.manifest = depsky::make_membership_manifest(
          next, pending_reconfig_.manifest.old_clouds, pending_reconfig_.manifest.new_clouds,
          replaced_index, admin_keys_);
    }
    const std::uint64_t epoch = pending_reconfig_.manifest.epoch;
    out.epoch = epoch;
    out.replaced_index = replaced_index;
    out.old_cloud = pending_reconfig_.manifest.old_clouds[replaced_index];
    out.new_cloud = pending_reconfig_.manifest.new_clouds[replaced_index];
    if (crash_) crash_->maybe_crash(sim::CrashPoint::kAfterMembershipManifest);

    // 3. Mint every user's tokens at the spare, reseal their keystores, and
    //    swap the fleet slot. Skipped when a resumed pipeline already did it.
    if (clouds_[replaced_index]->name() != out.new_cloud) {
      if (auto st = adopt_spare_tokens(replaced_index, pending_reconfig_.spare); !st.ok()) {
        return Error{st.error()};
      }
      clouds_[replaced_index] = pending_reconfig_.spare;
      for (auto& [user_id, agent] : agents_) {
        (void)user_id;
        agent->replace_cloud(replaced_index, pending_reconfig_.spare);
      }
    }

    // 4. Migrate every unit onto the new set: DepSky repair rebuilds the
    //    evicted cloud's share on the (empty) spare, file units get the new
    //    epoch stamped into their metadata, and a per-unit done-marker makes
    //    the walk crash-resumable. Both repair and stamp are idempotent, so
    //    a unit interrupted between steps converges on the re-run.
    auto storage = make_admin_storage();
    const auto admin = admin_tokens();
    const auto units = enumerate_units(replaced_index);
    out.units_total = units.size();
    bool first_migration = true;
    for (const auto& unit : units) {
      auto done = depsky::unit_migrated(*coordination_, epoch, unit);
      clock_->advance_us(done.delay);
      if (!done.value.ok()) return Error{done.value.error()};
      if (*done.value) {
        ++out.units_resumed;
        continue;
      }
      auto fixed = storage->repair(admin, unit);
      clock_->advance_us(fixed.delay);
      if (!fixed.value.ok()) return Error{fixed.value.error()};
      out.shares_rebuilt += fixed.value->shares_repaired;
      if (!unit.starts_with(cloud::kLogPrefix)) {
        // Log units are append-only (their metadata cannot be overwritten,
        // by design); the epoch fence protects the mutable file namespace.
        auto stamped = storage->stamp_membership_epoch(admin, unit, epoch);
        clock_->advance_us(stamped.delay);
        if (!stamped.value.ok()) return Error{stamped.value.error()};
        ++out.metas_stamped;
      }
      auto marked = depsky::mark_unit_migrated(*coordination_, epoch, unit);
      clock_->advance_us(marked.delay);
      if (!marked.value.ok()) return Error{marked.value.error()};
      ++out.units_migrated;
      if (first_migration) {
        first_migration = false;
        if (crash_) crash_->maybe_crash(sim::CrashPoint::kMidShareMigration);
      }
    }

    // 5. Adopt the epoch everywhere and bring every agent back up over the
    //    new fleet (their next writes carry — and fence on — the new epoch).
    membership_epoch_ = epoch;
    options_.agent.membership_epoch = std::max(options_.agent.membership_epoch, epoch);
    for (auto& [user_id, agent] : agents_) {
      agent->set_membership_epoch(epoch);
      if (agent->logged_in()) agent->logout();
      auto st = login_default(user_id);
      if (!st.ok()) st = login_with_external(user_id);
      if (!st.ok()) return Error{st.error()};
    }
    pending_reconfig_ = {};
    out.duration_us = static_cast<sim::SimClock::Micros>(clock_->now_us() - t0);
    auto& reg = obs::metrics();
    reg.counter("reconfig.completed").add();
    reg.counter("reconfig.units.migrated").add(out.units_migrated);
    reg.counter("reconfig.shares.rebuilt").add(out.shares_rebuilt);
    span.set_duration(static_cast<std::uint64_t>(out.duration_us));
    return out;
  } catch (const sim::ClientCrash& crash) {
    span.set_outcome(ErrorCode::kCrashed);
    return Error{ErrorCode::kCrashed, std::string("reconfiguration crashed at ") +
                                          sim::crash_point_name(crash.point)};
  }
}

}  // namespace rockfs::core
