#include "rockfs/logservice.h"

#include <algorithm>
#include <cstdio>

#include "common/compress.h"
#include "common/hex.h"
#include "common/logging.h"
#include "crypto/sha256.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rockfs/journal.h"

namespace rockfs::core {

namespace {
constexpr const char* kRecordTag = "rocklog";
constexpr const char* kAggregateTag = "rockagg";
}  // namespace

std::string padded_seq(std::uint64_t seq) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%012llu", static_cast<unsigned long long>(seq));
  return buf;
}

namespace {
std::string pad_seq(std::uint64_t seq) { return padded_seq(seq); }

// Client-side delta computation throughput. The paper's client is a 1-vCPU
// VM and §6.1 attributes the logging overhead primarily to "the time for the
// RockFS agent to compute the log entry (differences between versions)";
// JBDiff-class binary diffing runs at a few tens of MB/s on such a machine.
constexpr double kDiffBytesPerSec = 25e6;

sim::SimClock::Micros diff_compute_us(std::size_t old_size, std::size_t new_size) {
  return 1'000 + static_cast<sim::SimClock::Micros>(
                     1e6 * static_cast<double>(old_size + new_size) / kDiffBytesPerSec);
}
}  // namespace

const char* LogService::record_tag() { return kRecordTag; }
const char* LogService::aggregate_tag() { return kAggregateTag; }

Bytes LogRecord::mac_payload() const {
  Bytes out;
  append_u64(out, seq);
  append_lp(out, to_bytes(user));
  append_lp(out, to_bytes(path));
  append_u64(out, version);
  append_lp(out, to_bytes(op));
  out.push_back(whole_file ? 1 : 0);
  append_u64(out, payload_size);
  append_lp(out, payload_hash);
  append_u64(out, static_cast<std::uint64_t>(timestamp_us));
  append_u64(out, epoch);
  return out;
}

coord::Tuple LogRecord::to_tuple() const {
  return {kRecordTag,
          user,
          pad_seq(seq),
          path,
          std::to_string(version),
          op,
          whole_file ? "1" : "0",
          std::to_string(payload_size),
          hex_encode(payload_hash),
          std::to_string(timestamp_us),
          std::to_string(epoch),
          hex_encode(tag.mac_a),
          hex_encode(tag.mac_b)};
}

Result<LogRecord> LogRecord::from_tuple(const coord::Tuple& t) {
  if (t.size() != 13 || t[0] != kRecordTag) {
    return Error{ErrorCode::kCorrupted, "log record: malformed tuple"};
  }
  try {
    LogRecord r;
    r.user = t[1];
    r.seq = std::stoull(t[2]);
    r.path = t[3];
    r.version = std::stoull(t[4]);
    r.op = t[5];
    r.whole_file = t[6] == "1";
    r.payload_size = std::stoull(t[7]);
    r.payload_hash = hex_decode(t[8]);
    r.timestamp_us = std::stoll(t[9]);
    r.epoch = std::stoull(t[10]);
    r.tag.mac_a = hex_decode(t[11]);
    r.tag.mac_b = hex_decode(t[12]);
    return r;
  } catch (const std::exception& e) {
    return Error{ErrorCode::kCorrupted, std::string("log record: ") + e.what()};
  }
}

std::string LogRecord::data_unit() const {
  return "logs/" + user + "/e" + pad_seq(seq);
}

LogService::LogService(std::string user_id,
                       std::shared_ptr<depsky::DepSkyClient> storage,
                       std::vector<cloud::AccessToken> log_tokens,
                       std::shared_ptr<coord::CoordinationService> coordination,
                       sim::SimClockPtr clock, fssagg::FssAggKeys initial_keys)
    : user_id_(std::move(user_id)),
      storage_(std::move(storage)),
      log_tokens_(std::move(log_tokens)),
      coordination_(std::move(coordination)),
      clock_(std::move(clock)),
      signer_(std::move(initial_keys)) {
  next_seq_ = signer_.count();
}

LogService::LogService(std::string user_id,
                       std::shared_ptr<depsky::DepSkyClient> storage,
                       std::vector<cloud::AccessToken> log_tokens,
                       std::shared_ptr<coord::CoordinationService> coordination,
                       sim::SimClockPtr clock, fssagg::FssAggSigner resumed_signer)
    : user_id_(std::move(user_id)),
      storage_(std::move(storage)),
      log_tokens_(std::move(log_tokens)),
      coordination_(std::move(coordination)),
      clock_(std::move(clock)),
      signer_(std::move(resumed_signer)) {
  next_seq_ = signer_.count();
}

LogService::~LogService() = default;

void LogService::attach_journal() {
  journal_ = std::make_unique<IntentJournal>(user_id_, coordination_);
}

LogService::Prepared LogService::prepare(const std::string& path,
                                         const Bytes& old_content,
                                         const Bytes& new_content, std::uint64_t version,
                                         const std::string& op,
                                         std::uint64_t fence_epoch,
                                         sim::SimClock::Micros* delay) {
  *delay += diff_compute_us(old_content.size(), new_content.size());

  // 1. ld_fu: delta between versions, or the whole file when smaller (§3.2),
  // optionally LZ-compressed (§6.2 future work). A path marked divergent (a
  // crashed close may have left the cloud copy ahead of the log) is forced
  // whole-file so selective re-execution never needs the unlogged base.
  const bool force_whole = divergent_paths_.contains(path);
  const Bytes empty;
  const diff::LogDelta ld =
      diff::make_log_delta(force_whole ? empty : old_content, new_content);

  Prepared p;
  p.payload = wrap_log_payload(ld.serialize(), compress_);
  p.record.seq = next_seq_;
  p.record.user = user_id_;
  p.record.path = path;
  p.record.version = version;
  p.record.op = op;
  p.record.whole_file = ld.whole_file;
  p.record.payload_size = p.payload.size();
  p.record.payload_hash = crypto::sha256(p.payload);
  p.record.timestamp_us = clock_->now_us();
  p.record.fence_epoch = fence_epoch;
  p.record.epoch = fence_epoch == scfs::kNoFenceEpoch ? 0 : fence_epoch;
  p.valid = true;
  return p;
}

sim::Timed<Status> LogService::journal_intent(const std::string& path,
                                              const Bytes& old_content,
                                              const Bytes& new_content,
                                              std::uint64_t version,
                                              const std::string& op,
                                              std::uint64_t fence_epoch) {
  if (!journal_) return {Status::Ok(), 0};
  // Own span: the close path charges this whole delay to its root, so a
  // child span must carry it — its exclusive time is the diff compute, the
  // nested coord.op covers the journal record round.
  obs::Span span = obs::tracer().span("log.intent");
  sim::SimClock::Micros delay = 0;
  prepared_ = prepare(path, old_content, new_content, version, op, fence_epoch, &delay);
  auto recorded = journal_->record(prepared_.record);
  delay += recorded.delay;
  span.charge_child(static_cast<std::uint64_t>(recorded.delay));
  span.set_duration(static_cast<std::uint64_t>(delay));
  if (!recorded.value.ok()) {
    prepared_ = Prepared{};
    span.set_outcome(recorded.value.code());
    return {std::move(recorded.value), delay};
  }
  maybe_crash(sim::CrashPoint::kAfterLogIntent);
  return {Status::Ok(), delay};
}

sim::Timed<Status> LogService::append(const std::string& path, const Bytes& old_content,
                                      const Bytes& new_content, std::uint64_t version,
                                      const std::string& op,
                                      std::uint64_t fence_epoch) {
  obs::Span span = obs::tracer().span("log.append");
  sim::SimClock::Micros delay = 0;
  auto& reg = obs::metrics();

  // 0. Reuse the intent journaled by the close path when it matches this
  // append; otherwise prepare (and, with a journal attached, persist the
  // intent) inline — the unlink path and raw LogService users land here.
  Prepared prepared;
  if (prepared_.valid && prepared_.record.path == path &&
      prepared_.record.version == version && prepared_.record.op == op &&
      prepared_.record.fence_epoch == fence_epoch) {
    prepared = std::move(prepared_);
    prepared_ = Prepared{};
  } else {
    prepared = prepare(path, old_content, new_content, version, op, fence_epoch, &delay);
    if (journal_) {
      auto recorded = journal_->record(prepared.record);
      delay += recorded.delay;
      span.charge_child(static_cast<std::uint64_t>(recorded.delay));
      if (!recorded.value.ok()) {
        span.set_duration(static_cast<std::uint64_t>(delay));
        span.set_outcome(recorded.value.code());
        reg.counter("log.append.errors").add();
        return {std::move(recorded.value), delay};
      }
      maybe_crash(sim::CrashPoint::kAfterLogIntent);
    }
  }
  LogRecord& record = prepared.record;
  const Bytes& payload = prepared.payload;

  // Fence pre-flight (scfs/lease.h): an append whose fence epoch is below
  // the path's current lease epoch comes from an evicted session. Refuse it
  // before any cloud object exists — the slot stays pristine and reusable.
  if (record.fence_epoch != scfs::kNoFenceEpoch) {
    auto fence = scfs::read_fence_epoch(*coordination_, path);
    delay += fence.delay;
    span.charge_child(static_cast<std::uint64_t>(fence.delay));
    if (!fence.value.ok()) {
      span.set_duration(static_cast<std::uint64_t>(delay));
      span.set_outcome(fence.value.code());
      reg.counter("log.append.errors").add();
      return {Status{fence.value.error()}, delay};
    }
    if (*fence.value > record.fence_epoch) {
      if (journal_) {
        auto cleared = journal_->clear(record.seq);
        delay += cleared.delay;
      }
      mark_divergent(path);
      reg.counter("log.append.fenced").add();
      span.set_duration(static_cast<std::uint64_t>(delay));
      span.set_outcome(ErrorCode::kFenced);
      return {Status{ErrorCode::kFenced, "log append fenced: " + path + " epoch " +
                                             std::to_string(record.fence_epoch) + " < " +
                                             std::to_string(*fence.value)},
              delay};
    }
  }

  reg.counter("log.append.count").add();
  reg.counter("log.append.bytes").add(payload.size());
  span.set_bytes(payload.size());

  // 2+3+4. Encrypt with a fresh key, split the key, erasure-code, one share
  // per cloud — all supplied by DepSky CA — uploaded under t_l. A retry
  // after kPartialCommit knows the slot already holds the durable payload
  // and adopts it instead of re-writing into the append-only namespace.
  bool need_upload = true;
  if (record.seq == pending_retry_seq_) {
    auto existing = storage_->read(log_tokens_, record.data_unit());
    delay += existing.delay;
    span.charge_child(static_cast<std::uint64_t>(existing.delay));
    if (existing.value.ok() && existing.value->size() == record.payload_size &&
        ct_equal(crypto::sha256(*existing.value), record.payload_hash)) {
      need_upload = false;
      reg.counter("log.append.adopted").add();
    }
  }
  if (need_upload) {
    auto upload = storage_->write(log_tokens_, record.data_unit(), payload);
    delay += upload.delay;
    span.charge_child(static_cast<std::uint64_t>(upload.delay));
    if (!upload.value.ok()) {
      // The write may have failed only at the metadata step while the entry
      // is in fact durable (e.g. a concurrent earlier attempt finished it):
      // one read settles whether the slot can be adopted.
      auto existing = storage_->read(log_tokens_, record.data_unit());
      delay += existing.delay;
      span.charge_child(static_cast<std::uint64_t>(existing.delay));
      const bool adopted = existing.value.ok() &&
                           existing.value->size() == record.payload_size &&
                           ct_equal(crypto::sha256(*existing.value), record.payload_hash);
      if (!adopted) {
        span.set_duration(static_cast<std::uint64_t>(delay));
        span.set_outcome(upload.value.code());
        reg.counter("log.append.errors").add();
        return {std::move(upload.value), delay};
      }
      reg.counter("log.append.adopted").add();
    }
  }
  maybe_crash(sim::CrashPoint::kAfterLogPayloadPut);

  // Fence re-check: an eviction that lands while the payload uploads must
  // still keep the entry out of the chain. The payload is durable now, so
  // the slot cannot be reused (append-only namespace) — skip it; the audit
  // tolerates the gap and the next write of the path goes whole-file.
  if (record.fence_epoch != scfs::kNoFenceEpoch) {
    auto fence = scfs::read_fence_epoch(*coordination_, path);
    delay += fence.delay;
    span.charge_child(static_cast<std::uint64_t>(fence.delay));
    if (!fence.value.ok()) {
      // Fail closed: the epoch cannot be proved fresh, so the entry must not
      // enter the chain. The payload is durable — remember the slot so the
      // caller's retry adopts it instead of re-uploading.
      pending_retry_seq_ = record.seq;
      span.set_duration(static_cast<std::uint64_t>(delay));
      span.set_outcome(fence.value.code());
      reg.counter("log.append.errors").add();
      return {Status{fence.value.error()}, delay};
    }
    if (*fence.value > record.fence_epoch) {
      next_seq_ = record.seq + 1;
      pending_retry_seq_ = kNoPendingRetry;
      mark_divergent(path);
      if (journal_) {
        auto cleared = journal_->clear(record.seq);
        delay += cleared.delay;
      }
      reg.counter("log.append.fenced").add();
      span.set_duration(static_cast<std::uint64_t>(delay));
      span.set_outcome(ErrorCode::kFenced);
      return {Status{ErrorCode::kFenced, "log append fenced post-upload: " + path},
              delay};
    }
  }

  // 5. Seal the metadata into the forward-secure stream — on a SCRATCH
  // signer: the in-RAM chain state must not advance past what the
  // coordination service has committed, or a partial failure forks it.
  fssagg::FssAggSigner sealed = signer_;
  record.tag = sealed.append(record.mac_payload());

  // 6. lm_fu and the refreshed aggregates go to the coordination service;
  // the two tuple operations are processed in parallel by the service
  // (§6.1 optimization (1)).
  auto committed = commit_log_record(*coordination_, record, sealed, crash_.get());
  delay += committed.delay;
  span.charge_child(static_cast<std::uint64_t>(committed.delay));
  span.set_duration(static_cast<std::uint64_t>(delay));
  if (!committed.value.ok()) {
    // Payload durable, metadata not (fully) committed: remember the slot so
    // the caller's retry adopts it, and surface the distinct status.
    pending_retry_seq_ = record.seq;
    span.set_outcome(committed.value.code());
    reg.counter("log.append.errors").add();
    return {std::move(committed.value), delay};
  }

  signer_ = std::move(sealed);
  next_seq_ = record.seq + 1;
  pending_retry_seq_ = kNoPendingRetry;
  divergent_paths_.erase(path);
  if (journal_) {
    // The intent is now redundant (the record tuple covers it). Clearing is
    // fire-and-forget background work: a failure only costs a no-op
    // "committed" classification at the next replay.
    auto cleared = journal_->clear(record.seq);
    (void)cleared;
  }
  return {Status::Ok(), delay};
}

sim::Timed<Status> commit_log_record(coord::CoordinationService& coord,
                                     const LogRecord& record,
                                     const fssagg::FssAggSigner& signer,
                                     sim::CrashSchedule* crash) {
  sim::SimClock::Micros coord_delay = 0;
  Status meta_status;
  Status agg_status;
  {
    obs::Span group = obs::tracer().span("log.coord", {.fanout = true});
    // Seq-keyed replace: re-committing the same record after a partial
    // failure rewrites the identical tuple instead of duplicating it.
    auto meta = coord.replace(
        coord::Template::of({kRecordTag, record.user, padded_seq(record.seq), "*", "*",
                             "*", "*", "*", "*", "*", "*", "*", "*"}),
        record.to_tuple());
    if (crash) crash->maybe_crash(sim::CrashPoint::kAfterMetaAppend);
    auto agg = coord.replace(
        coord::Template::of({kAggregateTag, record.user, "*", "*", "*"}),
        {kAggregateTag, record.user, hex_encode(signer.aggregate_a()),
         hex_encode(signer.aggregate_b()), std::to_string(signer.count())});
    coord_delay = std::max(meta.delay, agg.delay);
    group.set_duration(static_cast<std::uint64_t>(coord_delay));
    if (!meta.value.ok()) meta_status = Status{meta.value.error()};
    if (!agg.value.ok()) agg_status = Status{agg.value.error()};
  }
  if (!meta_status.ok() || !agg_status.ok()) {
    const Status& cause = !meta_status.ok() ? meta_status : agg_status;
    return {Status{ErrorCode::kPartialCommit,
                   "log metadata commit incomplete: " + cause.error().message},
            coord_delay};
  }
  return {Status::Ok(), coord_delay};
}

Bytes wrap_log_payload(BytesView serialized_delta, bool try_compress) {
  if (try_compress) {
    const Bytes packed = lz_compress(serialized_delta);
    if (packed.size() < serialized_delta.size()) {
      Bytes out;
      out.reserve(1 + packed.size());
      out.push_back(1);
      append(out, packed);
      return out;
    }
  }
  Bytes out;
  out.reserve(1 + serialized_delta.size());
  out.push_back(0);
  append(out, serialized_delta);
  return out;
}

Result<Bytes> unwrap_log_payload(BytesView payload) {
  if (payload.empty()) return Error{ErrorCode::kCorrupted, "log payload: empty"};
  const BytesView body = payload.subspan(1);
  if (payload[0] == 0) return Bytes(body.begin(), body.end());
  if (payload[0] == 1) return lz_decompress(body);
  return Error{ErrorCode::kCorrupted, "log payload: unknown codec"};
}

sim::Timed<Result<StoredAggregates>> read_aggregates(coord::CoordinationService& coord,
                                                     const std::string& user) {
  auto r = coord.rdp(coord::Template::of({kAggregateTag, user, "*", "*", "*"}));
  if (!r.value.ok()) return {Error{r.value.error()}, r.delay};
  if (!r.value->has_value()) {
    return {Error{ErrorCode::kNotFound, "no aggregates for user " + user}, r.delay};
  }
  const coord::Tuple& t = **r.value;
  try {
    StoredAggregates out;
    out.agg_a = hex_decode(t.at(2));
    out.agg_b = hex_decode(t.at(3));
    out.count = std::stoull(t.at(4));
    return {std::move(out), r.delay};
  } catch (const std::exception& e) {
    return {Error{ErrorCode::kCorrupted, std::string("aggregates: ") + e.what()}, r.delay};
  }
}

std::unique_ptr<LogService> make_resumed_log_service(
    const std::string& user_id, std::shared_ptr<depsky::DepSkyClient> storage,
    std::vector<cloud::AccessToken> log_tokens,
    std::shared_ptr<coord::CoordinationService> coordination, sim::SimClockPtr clock,
    const fssagg::FssAggKeys& initial_keys, const LogServiceOptions& options) {
  auto existing = read_aggregates(*coordination, user_id);
  clock->advance_us(existing.delay);

  fssagg::FssAggSigner signer = [&] {
    if (existing.value.ok() && existing.value->count > options.key_base_count) {
      fssagg::FssAggKeys current = initial_keys;
      // The keys became the stream at entry key_base_count (0 for setup keys,
      // the rotation index for post-rotation keystores); evolve them to the
      // stored entry count.
      for (std::uint64_t i = options.key_base_count; i < existing.value->count; ++i) {
        current.a1 = fssagg::fssagg_evolve_key(current.a1);
        current.b1 = fssagg::fssagg_evolve_key(current.b1);
      }
      return fssagg::FssAggSigner(std::move(current), existing.value->agg_a,
                                  existing.value->agg_b,
                                  static_cast<std::size_t>(existing.value->count));
    }
    if (existing.value.ok() && existing.value->count == options.key_base_count &&
        options.key_base_count > 0) {
      // Rotated keystore resuming exactly at the rotation boundary: keys are
      // current as-is, only the aggregates are adopted.
      return fssagg::FssAggSigner(initial_keys, existing.value->agg_a,
                                  existing.value->agg_b,
                                  static_cast<std::size_t>(existing.value->count));
    }
    return fssagg::FssAggSigner(initial_keys);
  }();

  std::uint64_t next_seq = signer.count();
  std::set<std::string> divergent;
  if (options.enable_journal) {
    auto replay =
        replay_intent_journal(user_id, storage, log_tokens, coordination, signer);
    clock->advance_us(replay.delay);
    if (replay.value.ok()) {
      next_seq = std::max(next_seq, replay.value->next_seq);
      divergent = std::move(replay.value->divergent_paths);
    } else {
      // A failed replay leaves the intents pending for the next login; the
      // chain itself is still consistent at the resumed count.
      LOG_WARN("journal replay failed for " << user_id << ": "
                                            << replay.value.error().message);
    }
  }

  auto service = std::make_unique<LogService>(user_id, std::move(storage),
                                              std::move(log_tokens),
                                              std::move(coordination), std::move(clock),
                                              std::move(signer));
  service->set_next_seq(next_seq);
  for (const auto& p : divergent) service->mark_divergent(p);
  if (options.enable_journal) service->attach_journal();
  service->set_crash_schedule(options.crash);
  return service;
}

sim::Timed<Result<std::vector<LogRecord>>> read_log_records(
    coord::CoordinationService& coord, const std::string& user) {
  auto all = coord.rdall(coord::Template::of(
      {kRecordTag, user, "*", "*", "*", "*", "*", "*", "*", "*", "*", "*", "*"}));
  if (!all.value.ok()) return {Error{all.value.error()}, all.delay};
  std::vector<LogRecord> records;
  records.reserve(all.value->size());
  for (const auto& t : *all.value) {
    auto r = LogRecord::from_tuple(t);
    if (!r.ok()) return {Error{r.error()}, all.delay};
    records.push_back(std::move(*r));
  }
  std::sort(records.begin(), records.end(),
            [](const LogRecord& a, const LogRecord& b) { return a.seq < b.seq; });
  return {std::move(records), all.delay};
}

}  // namespace rockfs::core
