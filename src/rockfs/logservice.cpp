#include "rockfs/logservice.h"

#include <algorithm>
#include <cstdio>

#include "common/compress.h"
#include "common/hex.h"
#include "crypto/sha256.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace rockfs::core {

namespace {
constexpr const char* kRecordTag = "rocklog";
constexpr const char* kAggregateTag = "rockagg";

std::string pad_seq(std::uint64_t seq) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%012llu", static_cast<unsigned long long>(seq));
  return buf;
}

// Client-side delta computation throughput. The paper's client is a 1-vCPU
// VM and §6.1 attributes the logging overhead primarily to "the time for the
// RockFS agent to compute the log entry (differences between versions)";
// JBDiff-class binary diffing runs at a few tens of MB/s on such a machine.
constexpr double kDiffBytesPerSec = 25e6;

sim::SimClock::Micros diff_compute_us(std::size_t old_size, std::size_t new_size) {
  return 1'000 + static_cast<sim::SimClock::Micros>(
                     1e6 * static_cast<double>(old_size + new_size) / kDiffBytesPerSec);
}
}  // namespace

const char* LogService::record_tag() { return kRecordTag; }
const char* LogService::aggregate_tag() { return kAggregateTag; }

Bytes LogRecord::mac_payload() const {
  Bytes out;
  append_u64(out, seq);
  append_lp(out, to_bytes(user));
  append_lp(out, to_bytes(path));
  append_u64(out, version);
  append_lp(out, to_bytes(op));
  out.push_back(whole_file ? 1 : 0);
  append_u64(out, payload_size);
  append_lp(out, payload_hash);
  append_u64(out, static_cast<std::uint64_t>(timestamp_us));
  return out;
}

coord::Tuple LogRecord::to_tuple() const {
  return {kRecordTag,
          user,
          pad_seq(seq),
          path,
          std::to_string(version),
          op,
          whole_file ? "1" : "0",
          std::to_string(payload_size),
          hex_encode(payload_hash),
          std::to_string(timestamp_us),
          hex_encode(tag.mac_a),
          hex_encode(tag.mac_b)};
}

Result<LogRecord> LogRecord::from_tuple(const coord::Tuple& t) {
  if (t.size() != 12 || t[0] != kRecordTag) {
    return Error{ErrorCode::kCorrupted, "log record: malformed tuple"};
  }
  try {
    LogRecord r;
    r.user = t[1];
    r.seq = std::stoull(t[2]);
    r.path = t[3];
    r.version = std::stoull(t[4]);
    r.op = t[5];
    r.whole_file = t[6] == "1";
    r.payload_size = std::stoull(t[7]);
    r.payload_hash = hex_decode(t[8]);
    r.timestamp_us = std::stoll(t[9]);
    r.tag.mac_a = hex_decode(t[10]);
    r.tag.mac_b = hex_decode(t[11]);
    return r;
  } catch (const std::exception& e) {
    return Error{ErrorCode::kCorrupted, std::string("log record: ") + e.what()};
  }
}

std::string LogRecord::data_unit() const {
  return "logs/" + user + "/e" + pad_seq(seq);
}

LogService::LogService(std::string user_id,
                       std::shared_ptr<depsky::DepSkyClient> storage,
                       std::vector<cloud::AccessToken> log_tokens,
                       std::shared_ptr<coord::CoordinationService> coordination,
                       sim::SimClockPtr clock, fssagg::FssAggKeys initial_keys)
    : user_id_(std::move(user_id)),
      storage_(std::move(storage)),
      log_tokens_(std::move(log_tokens)),
      coordination_(std::move(coordination)),
      clock_(std::move(clock)),
      signer_(std::move(initial_keys)) {}

LogService::LogService(std::string user_id,
                       std::shared_ptr<depsky::DepSkyClient> storage,
                       std::vector<cloud::AccessToken> log_tokens,
                       std::shared_ptr<coord::CoordinationService> coordination,
                       sim::SimClockPtr clock, fssagg::FssAggSigner resumed_signer)
    : user_id_(std::move(user_id)),
      storage_(std::move(storage)),
      log_tokens_(std::move(log_tokens)),
      coordination_(std::move(coordination)),
      clock_(std::move(clock)),
      signer_(std::move(resumed_signer)) {}

sim::Timed<Status> LogService::append(const std::string& path, const Bytes& old_content,
                                      const Bytes& new_content, std::uint64_t version,
                                      const std::string& op) {
  obs::Span span = obs::tracer().span("log.append");
  sim::SimClock::Micros delay = diff_compute_us(old_content.size(), new_content.size());

  // 1. ld_fu: delta between versions, or the whole file when smaller (§3.2),
  // optionally LZ-compressed (§6.2 future work).
  const diff::LogDelta ld = diff::make_log_delta(old_content, new_content);
  const Bytes payload = wrap_log_payload(ld.serialize(), compress_);

  // 2+3+4. Encrypt with a fresh key, split the key, erasure-code, one share
  // per cloud — all supplied by DepSky CA — uploaded under t_l.
  LogRecord record;
  record.seq = signer_.count();
  record.user = user_id_;
  record.path = path;
  record.version = version;
  record.op = op;
  record.whole_file = ld.whole_file;
  record.payload_size = payload.size();
  record.payload_hash = crypto::sha256(payload);
  record.timestamp_us = clock_->now_us();

  auto upload = storage_->write(log_tokens_, record.data_unit(), payload);
  delay += upload.delay;
  span.charge_child(static_cast<std::uint64_t>(upload.delay));
  span.set_bytes(payload.size());
  auto& reg = obs::metrics();
  reg.counter("log.append.count").add();
  reg.counter("log.append.bytes").add(payload.size());
  if (!upload.value.ok()) {
    span.set_duration(static_cast<std::uint64_t>(delay));
    span.set_outcome(upload.value.code());
    reg.counter("log.append.errors").add();
    return {std::move(upload.value), delay};
  }

  // 5. Seal the metadata into the forward-secure stream.
  record.tag = signer_.append(record.mac_payload());

  // 6. lm_fu and the refreshed aggregates go to the coordination service;
  // the two tuple operations are processed in parallel by the service
  // (§6.1 optimization (1)).
  sim::SimClock::Micros coord_delay = 0;
  Status meta_status;
  Status agg_status;
  {
    obs::Span group = obs::tracer().span("log.coord", {.fanout = true});
    auto meta = coordination_->out(record.to_tuple());
    auto agg = coordination_->replace(
        coord::Template::of({kAggregateTag, user_id_, "*", "*", "*"}),
        {kAggregateTag, user_id_, hex_encode(signer_.aggregate_a()),
         hex_encode(signer_.aggregate_b()), std::to_string(signer_.count())});
    coord_delay = std::max(meta.delay, agg.delay);
    group.set_duration(static_cast<std::uint64_t>(coord_delay));
    meta_status = std::move(meta.value);
    if (!agg.value.ok()) agg_status = Status{agg.value.error()};
  }
  delay += coord_delay;
  span.charge_child(static_cast<std::uint64_t>(coord_delay));
  span.set_duration(static_cast<std::uint64_t>(delay));
  if (!meta_status.ok()) {
    span.set_outcome(meta_status.code());
    reg.counter("log.append.errors").add();
    return {std::move(meta_status), delay};
  }
  if (!agg_status.ok()) {
    span.set_outcome(agg_status.code());
    reg.counter("log.append.errors").add();
    return {std::move(agg_status), delay};
  }
  return {Status::Ok(), delay};
}

Bytes wrap_log_payload(BytesView serialized_delta, bool try_compress) {
  if (try_compress) {
    const Bytes packed = lz_compress(serialized_delta);
    if (packed.size() < serialized_delta.size()) {
      Bytes out;
      out.reserve(1 + packed.size());
      out.push_back(1);
      append(out, packed);
      return out;
    }
  }
  Bytes out;
  out.reserve(1 + serialized_delta.size());
  out.push_back(0);
  append(out, serialized_delta);
  return out;
}

Result<Bytes> unwrap_log_payload(BytesView payload) {
  if (payload.empty()) return Error{ErrorCode::kCorrupted, "log payload: empty"};
  const BytesView body = payload.subspan(1);
  if (payload[0] == 0) return Bytes(body.begin(), body.end());
  if (payload[0] == 1) return lz_decompress(body);
  return Error{ErrorCode::kCorrupted, "log payload: unknown codec"};
}

sim::Timed<Result<StoredAggregates>> read_aggregates(coord::CoordinationService& coord,
                                                     const std::string& user) {
  auto r = coord.rdp(coord::Template::of({kAggregateTag, user, "*", "*", "*"}));
  if (!r.value.ok()) return {Error{r.value.error()}, r.delay};
  if (!r.value->has_value()) {
    return {Error{ErrorCode::kNotFound, "no aggregates for user " + user}, r.delay};
  }
  const coord::Tuple& t = **r.value;
  try {
    StoredAggregates out;
    out.agg_a = hex_decode(t.at(2));
    out.agg_b = hex_decode(t.at(3));
    out.count = std::stoull(t.at(4));
    return {std::move(out), r.delay};
  } catch (const std::exception& e) {
    return {Error{ErrorCode::kCorrupted, std::string("aggregates: ") + e.what()}, r.delay};
  }
}

std::unique_ptr<LogService> make_resumed_log_service(
    const std::string& user_id, std::shared_ptr<depsky::DepSkyClient> storage,
    std::vector<cloud::AccessToken> log_tokens,
    std::shared_ptr<coord::CoordinationService> coordination, sim::SimClockPtr clock,
    const fssagg::FssAggKeys& initial_keys) {
  auto existing = read_aggregates(*coordination, user_id);
  clock->advance_us(existing.delay);
  if (existing.value.ok() && existing.value->count > 0) {
    fssagg::FssAggKeys current = initial_keys;
    for (std::uint64_t i = 0; i < existing.value->count; ++i) {
      current.a1 = fssagg::fssagg_evolve_key(current.a1);
      current.b1 = fssagg::fssagg_evolve_key(current.b1);
    }
    return std::make_unique<LogService>(
        user_id, std::move(storage), std::move(log_tokens), std::move(coordination),
        std::move(clock),
        fssagg::FssAggSigner(std::move(current), existing.value->agg_a,
                             existing.value->agg_b,
                             static_cast<std::size_t>(existing.value->count)));
  }
  return std::make_unique<LogService>(user_id, std::move(storage), std::move(log_tokens),
                                      std::move(coordination), std::move(clock),
                                      initial_keys);
}

sim::Timed<Result<std::vector<LogRecord>>> read_log_records(
    coord::CoordinationService& coord, const std::string& user) {
  auto all = coord.rdall(coord::Template::of(
      {kRecordTag, user, "*", "*", "*", "*", "*", "*", "*", "*", "*", "*"}));
  if (!all.value.ok()) return {Error{all.value.error()}, all.delay};
  std::vector<LogRecord> records;
  records.reserve(all.value->size());
  for (const auto& t : *all.value) {
    auto r = LogRecord::from_tuple(t);
    if (!r.ok()) return {Error{r.error()}, all.delay};
    records.push_back(std::move(*r));
  }
  std::sort(records.begin(), records.end(),
            [](const LogRecord& a, const LogRecord& b) { return a.seq < b.seq; });
  return {std::move(records), all.delay};
}

}  // namespace rockfs::core
