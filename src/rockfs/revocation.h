// Credential revocation and keystore-rotation metadata (compromise response).
//
// Two coordination-service tuple families drive the pipeline:
//
//   ("rockrevoke", user, floor)
//     The user's quorum-stored revocation floor. Any cloud operation that
//     presents a token whose epoch is below the floor fails kRevoked once
//     the floor has been pushed to that cloud (cloud/provider.h). The tuple
//     is the source of truth: a cloud that was in outage during the push is
//     retried until it enforces the floor too (fail-closed — a stale token
//     never regains validity).
//
//   ("rockrot", user, epoch, at_seq, ha, hb, sig)
//     One rotation manifest per keystore rotation, admin-signed, published
//     via CAS so concurrent rotations linearize: exactly one manifest can
//     win a given rotation epoch. `at_seq` is the chain index of the
//     rotation's "rotate" log record; ha/hb are SHA-256 digests of the fresh
//     FssAgg segment keys, binding the manifest to the key stream that MACs
//     every entry after at_seq. The chain verifier (recovery.h audit)
//     refuses a rotate record without a matching, signature-valid manifest.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "coord/service.h"
#include "crypto/signature.h"
#include "fssagg/fssagg.h"
#include "sim/timed.h"

namespace rockfs::core {

/// Tuple tag of the quorum-stored revocation floor ("rockrevoke").
const char* revocation_tag();
/// Tuple tag of rotation manifests ("rockrot").
const char* rotation_tag();
/// Sentinel log path of rotation records; never a real file path.
const char* rotation_record_path();
/// Log op of rotation records ("rotate").
const char* rotation_record_op();

/// The public half of one keystore rotation, stored in the coordination
/// service. The fresh chain keys themselves stay with the admin (and inside
/// the rotated keystore); the manifest carries only their digests.
struct RotationManifest {
  std::string user_id;
  std::uint64_t rotation_epoch = 0;  // CAS key; linearizes concurrent rotations
  std::uint64_t at_seq = 0;          // chain index of the "rotate" log record
  Bytes key_digest_a;                // sha256(A'_1)
  Bytes key_digest_b;                // sha256(B'_1)
  Bytes signature;                   // admin Schnorr over signing_payload()

  /// Canonical bytes the admin signs (everything except the signature).
  Bytes signing_payload() const;

  coord::Tuple to_tuple() const;
  static Result<RotationManifest> from_tuple(const coord::Tuple& t);
};

/// Builds and signs a manifest for a rotation that installs `fresh_keys`
/// starting at chain index at_seq + 1.
RotationManifest make_rotation_manifest(std::string user_id, std::uint64_t rotation_epoch,
                                        std::uint64_t at_seq,
                                        const fssagg::FssAggKeys& fresh_keys,
                                        const crypto::KeyPair& admin_keys);

/// Checks the admin signature (a forged or tampered manifest fails).
bool verify_rotation_manifest(const RotationManifest& m, BytesView admin_public_key);

/// Whether `keys` are the keys this manifest commits to (digest match).
bool manifest_matches_keys(const RotationManifest& m, const fssagg::FssAggKeys& keys);

/// Admin-side record of one rotation: the manifest coordinates plus the
/// actual fresh keys. The verifier matches these against published manifests
/// during audit (recovery.h) and switches the key stream at at_seq + 1.
struct ChainRotationKeys {
  std::uint64_t rotation_epoch = 0;
  std::uint64_t at_seq = 0;
  fssagg::FssAggKeys keys;
};

// ---- coordination-service operations (return delay, never advance clock) --

/// Raises the user's quorum-stored floor to at least `floor` (monotone:
/// committing a lower floor than the stored one is a no-op).
sim::Timed<Status> commit_revocation_floor(coord::CoordinationService& coord,
                                           const std::string& user_id,
                                           std::uint64_t floor);

/// The committed floor, 0 when the user was never revoked.
sim::Timed<Result<std::uint64_t>> read_revocation_floor(coord::CoordinationService& coord,
                                                        const std::string& user_id);

/// CAS-publishes a manifest for its rotation epoch. Returns true when this
/// manifest won the epoch, false when a concurrent rotation already holds it
/// (the loser must re-read and retry at a later epoch).
sim::Timed<Result<bool>> publish_rotation_manifest(coord::CoordinationService& coord,
                                                   const RotationManifest& m);

/// Every published manifest for the user, sorted by rotation epoch.
sim::Timed<Result<std::vector<RotationManifest>>> read_rotation_manifests(
    coord::CoordinationService& coord, const std::string& user_id);

}  // namespace rockfs::core
