// Administrator-side storage recovery (paper §3.3). Undoes unintended file
// operations without losing the valid ones:
//
//   1. fetch the user's log metadata from the coordination service and check
//      the FssAgg chain from A_1/B_1 — corrupted entries are discarded, and
//      truncation / reordering / count mismatch aborts with kIntegrity;
//   2. download the data halves (ld_fu) of the surviving entries from the
//      cloud-of-clouds in one parallel batch (the §6.3 optimization) and
//      discard any whose digest disagrees with the verified metadata;
//   3. selective re-execution: rebuild the file by applying every valid,
//      non-malicious delta in log order (whole-file entries reset the state,
//      delete entries empty it);
//   4. upload the recovered content as a new file version and log the
//      recovery itself (recoveries are never erasable, §3.3).
//
// Which entries are "malicious" is an input — the paper delegates that to
// intrusion detection (§3.3 step 3).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "coord/service.h"
#include "depsky/client.h"
#include "fssagg/fssagg.h"
#include "rockfs/logservice.h"
#include "rockfs/revocation.h"
#include "sim/timed.h"

namespace rockfs::core {

struct RecoveryConfig {
  std::string admin_id = "admin";
  /// Initial FssAgg keys (A_1, B_1) the administrator exchanged at setup.
  fssagg::FssAggKeys user_chain_keys;
  /// Tokens granting admin access at every cloud.
  std::vector<cloud::AccessToken> admin_tokens;
  /// Whether recovery operations are themselves logged (paper: always).
  bool log_recovery_ops = true;
  /// FssAgg setup keys of OTHER users who write to the shared namespace.
  /// recover_shared_file audits their chains too and merges all writers'
  /// entries over one file (multi-client sessions).
  std::map<std::string, fssagg::FssAggKeys> peer_chain_keys;
  /// Public key that signs rotation manifests (revocation.h). Empty means no
  /// rotations are expected: a rotate record in the chain then fails the
  /// audit fail-closed rather than being taken on faith.
  Bytes admin_public_key;
  /// The admin's durable copies of the fresh chain keys installed by each of
  /// this user's keystore rotations, epoch order. The audit matches them to
  /// the published admin-signed manifests by key digest and switches the
  /// verifier's key stream at each rotate record.
  std::vector<ChainRotationKeys> chain_rotations;
  /// Same, for the peer chains of peer_chain_keys.
  std::map<std::string, std::vector<ChainRotationKeys>> peer_chain_rotations;
};

/// Outcome of verifying one user's whole log.
struct LogAudit {
  std::vector<LogRecord> records;           // all records, seq order
  fssagg::FssAggVerifyReport report;        // chain verification result
  std::set<std::uint64_t> discarded_seqs;   // per-entry MAC failures
};

/// Outcome of recovering one file.
struct FileRecovery {
  std::string path;
  Bytes content;                    // recovered bytes
  std::size_t applied = 0;          // log entries re-executed
  std::size_t skipped_malicious = 0;
  std::size_t skipped_invalid = 0;  // MAC- or digest-corrupt entries
};

class RecoveryService {
 public:
  RecoveryService(std::string user_id, RecoveryConfig config,
                  std::shared_ptr<depsky::DepSkyClient> admin_storage,
                  std::shared_ptr<coord::CoordinationService> coordination,
                  sim::SimClockPtr clock);

  /// Step 1: fetch + FssAgg-verify the user's log. Advances the clock.
  Result<LogAudit> audit_log();

  /// Same, for any chain whose setup keys the admin holds (the user's own,
  /// a peer's from peer_chain_keys, ...). Advances the clock.
  Result<LogAudit> audit_chain(const std::string& chain_user,
                               const fssagg::FssAggKeys& chain_keys);

  /// Multi-writer recovery over one shared file: audits this user's chain
  /// AND every peer chain (peer_chain_keys), collects every writer's records
  /// for `path`, orders them by (version, epoch, timestamp, user, seq),
  /// drops all entries authored by `malicious_users`, and re-executes the
  /// survivors. Cross-user writes are always logged whole-file (each user's
  /// chain is self-contained), so the surviving interleaved chains converge
  /// to the same bytes whether or not malicious entries sat between them.
  Result<FileRecovery> recover_shared_file(const std::string& path,
                                           const std::set<std::string>& malicious_users);

  /// Steps 2-4 for one file. `malicious` holds the seq numbers flagged by
  /// intrusion detection. Advances the clock by the full recovery time.
  Result<FileRecovery> recover_file(const std::string& path,
                                    const std::set<std::uint64_t>& malicious);

  /// Recovers every file that appears in the log, most-urgent first when a
  /// priority list is given (paper §6.3: files become available gradually).
  /// Returns per-file results in completion order.
  Result<std::vector<FileRecovery>> recover_all(
      const std::set<std::uint64_t>& malicious,
      const std::vector<std::string>& priority = {});

  /// Point-in-time recovery: rebuilds the file as it stood at virtual time
  /// `as_of_us` (every valid entry with timestamp <= as_of_us is replayed,
  /// later ones are ignored). Useful when intrusion detection can only date
  /// the compromise rather than pinpoint the malicious entries.
  Result<FileRecovery> recover_file_at(const std::string& path, std::int64_t as_of_us);

  /// Total virtual time consumed by the last recover_* call (the MTTR).
  sim::SimClock::Micros last_recovery_us() const noexcept { return last_recovery_us_; }

  // ---- snapshot / log compaction (paper footnote 3 and §6.2 future work) ----
  //
  // compact_file writes a whole-file *snapshot* baseline into the admin
  // chain and archives the file's existing log-entry payloads to the cold
  // tier. Hot log storage shrinks; the log's append-only metadata (and hence
  // FssAgg verifiability) is untouched; recovery starts from the newest
  // snapshot and replays only the entries after its watermark. Archived
  // payloads remain reachable through cold storage as a last resort.

  struct CompactionReport {
    std::string path;
    std::size_t entries_archived = 0;
    std::uint64_t hot_bytes_freed = 0;
  };
  Result<CompactionReport> compact_file(const std::string& path);
  /// Compacts every file found in the user's log.
  Result<std::vector<CompactionReport>> compact_all();

  /// Verified view of the admin chain ("recover"/"snapshot" records).
  Result<LogAudit> audit_admin_log();

  /// Crash injection: recover_all consults this schedule between files
  /// (sim::CrashPoint::kMidRecoverAll) and the admin chain's own appends
  /// consult it like any LogService. A fired crash aborts with kCrashed;
  /// the NEXT recover_all finds the un-ended "recover-begin" marker in the
  /// admin chain and resumes after the last completed file, never re-logging
  /// a "recover" record for one already done.
  void set_crash_schedule(sim::CrashSchedulePtr crash);

 private:
  /// Latest valid snapshot baseline for `path`, if any. Returns the content
  /// and the user-log seq watermark it covers (entries with seq <= watermark
  /// are folded into the snapshot).
  struct SnapshotBaseline {
    Bytes content;
    std::uint64_t watermark = 0;
    bool found = false;
  };
  SnapshotBaseline load_snapshot(const std::string& path, sim::SimClock::Micros* delay);
  /// Shared machinery: recovers one file given an already-audited log. When
  /// `apply` is false the content is only reconstructed (used by
  /// compact_file), without re-uploading or logging a recovery record.
  /// `use_snapshots=false` forces a full replay from the original entries
  /// (point-in-time recovery must ignore baselines taken after the cut-off;
  /// archived payloads are then fetched from cold storage).
  Result<FileRecovery> recover_one(const LogAudit& audit, const std::string& path,
                                   const std::set<std::uint64_t>& malicious,
                                   sim::SimClock::Micros* delay, bool apply = true,
                                   bool use_snapshots = true);
  /// Step 5 (shared with recover_shared_file): upload the recovered content,
  /// bump the inode (stamping the path's current fence epoch) and log the
  /// recovery on the admin chain.
  Status commit_recovered(const std::string& path, const Bytes& content,
                          sim::SimClock::Micros* delay);

  std::string user_id_;
  RecoveryConfig config_;
  std::shared_ptr<depsky::DepSkyClient> storage_;
  std::shared_ptr<coord::CoordinationService> coordination_;
  sim::SimClockPtr clock_;
  fssagg::FssAggKeys admin_chain_keys_;
  std::unique_ptr<LogService> recovery_log_;  // the admin's own chain
  sim::SimClock::Micros last_recovery_us_ = 0;
  sim::CrashSchedulePtr crash_;
};

}  // namespace rockfs::core
