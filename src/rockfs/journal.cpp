#include "rockfs/journal.h"

#include <algorithm>

#include "common/hex.h"
#include "common/logging.h"
#include "crypto/sha256.h"
#include "obs/metrics.h"
#include "sim/timed.h"

namespace rockfs::core {

namespace {

constexpr const char* kJournalTag = "rockjournal";

coord::Template intent_pattern(const std::string& user, std::uint64_t seq) {
  return coord::Template::of({kJournalTag, user, padded_seq(seq), "*", "*", "*", "*",
                              "*", "*", "*", "*", "*"});
}

coord::Template all_intents_pattern(const std::string& user) {
  return coord::Template::of(
      {kJournalTag, user, "*", "*", "*", "*", "*", "*", "*", "*", "*", "*"});
}

coord::Tuple aggregate_tuple(const std::string& user, const fssagg::FssAggSigner& signer) {
  return {LogService::aggregate_tag(), user, hex_encode(signer.aggregate_a()),
          hex_encode(signer.aggregate_b()), std::to_string(signer.count())};
}

bool tags_equal(const fssagg::FssAggTag& a, const fssagg::FssAggTag& b) {
  return ct_equal(a.mac_a, b.mac_a) && ct_equal(a.mac_b, b.mac_b);
}

}  // namespace

const char* IntentJournal::tag() { return kJournalTag; }

IntentJournal::IntentJournal(std::string user_id,
                             std::shared_ptr<coord::CoordinationService> coordination)
    : user_id_(std::move(user_id)), coordination_(std::move(coordination)) {}

coord::Tuple IntentJournal::to_tuple(const LogRecord& intent) {
  return {kJournalTag,
          intent.user,
          padded_seq(intent.seq),
          intent.path,
          std::to_string(intent.version),
          intent.op,
          intent.whole_file ? "1" : "0",
          std::to_string(intent.payload_size),
          hex_encode(intent.payload_hash),
          std::to_string(intent.timestamp_us),
          std::to_string(intent.epoch),
          std::to_string(intent.fence_epoch)};
}

Result<LogRecord> IntentJournal::from_tuple(const coord::Tuple& t) {
  if (t.size() != 12 || t[0] != kJournalTag) {
    return Error{ErrorCode::kCorrupted, "journal intent: malformed tuple"};
  }
  try {
    LogRecord r;
    r.user = t[1];
    r.seq = std::stoull(t[2]);
    r.path = t[3];
    r.version = std::stoull(t[4]);
    r.op = t[5];
    r.whole_file = t[6] == "1";
    r.payload_size = std::stoull(t[7]);
    r.payload_hash = hex_decode(t[8]);
    r.timestamp_us = std::stoll(t[9]);
    r.epoch = std::stoull(t[10]);
    r.fence_epoch = std::stoull(t[11]);
    return r;
  } catch (const std::exception& e) {
    return Error{ErrorCode::kCorrupted, std::string("journal intent: ") + e.what()};
  }
}

sim::Timed<Status> IntentJournal::record(const LogRecord& intent) {
  auto stored = coordination_->replace(intent_pattern(user_id_, intent.seq),
                                       to_tuple(intent));
  obs::metrics().counter("journal.intents.recorded").add();
  if (!stored.value.ok()) return {Status{stored.value.error()}, stored.delay};
  return {Status::Ok(), stored.delay};
}

sim::Timed<Status> IntentJournal::clear(std::uint64_t seq) {
  auto taken = coordination_->inp(intent_pattern(user_id_, seq));
  obs::metrics().counter("journal.intents.cleared").add();
  if (!taken.value.ok()) return {Status{taken.value.error()}, taken.delay};
  return {Status::Ok(), taken.delay};
}

sim::Timed<Result<std::vector<LogRecord>>> IntentJournal::pending() const {
  auto all = coordination_->rdall(all_intents_pattern(user_id_));
  if (!all.value.ok()) return {Error{all.value.error()}, all.delay};
  std::vector<LogRecord> intents;
  intents.reserve(all.value->size());
  for (const auto& t : *all.value) {
    auto r = from_tuple(t);
    if (!r.ok()) return {Error{r.error()}, all.delay};
    intents.push_back(std::move(*r));
  }
  std::sort(intents.begin(), intents.end(),
            [](const LogRecord& a, const LogRecord& b) { return a.seq < b.seq; });
  return {std::move(intents), all.delay};
}

sim::Timed<Result<JournalReplayReport>> replay_intent_journal(
    const std::string& user_id, const std::shared_ptr<depsky::DepSkyClient>& storage,
    const std::vector<cloud::AccessToken>& log_tokens,
    const std::shared_ptr<coord::CoordinationService>& coordination,
    fssagg::FssAggSigner& signer) {
  sim::SimClock::Micros delay = 0;
  JournalReplayReport report;
  auto& reg = obs::metrics();

  // Stored records are the commit ground truth the intents are judged against.
  auto records = read_log_records(*coordination, user_id);
  delay += records.delay;
  if (!records.value.ok()) return {Error{records.value.error()}, delay};

  // Phase A: records AHEAD of the resumed aggregates mean the crash hit
  // between the two coordination tuples (record committed, aggregates
  // stale). Key evolution is deterministic, so re-appending each such record
  // must reproduce its stored tag; then the aggregates are re-replaced.
  std::set<std::uint64_t> committed_seqs;
  for (const auto& r : *records.value) committed_seqs.insert(r.seq);
  bool aggregates_stale = false;
  for (std::size_t i = signer.count(); i < records.value->size(); ++i) {
    const LogRecord& r = (*records.value)[i];
    fssagg::FssAggSigner next = signer;
    const fssagg::FssAggTag tag = next.append(r.mac_payload());
    if (!tags_equal(tag, r.tag)) {
      // A tail record our signer cannot reproduce: forged or reordered.
      // Leave it for audit_log() to flag; adopting it would fork the chain.
      ++report.conflicts;
      LOG_WARN("journal replay: stored record seq=" << r.seq
                                                    << " does not extend the chain");
      break;
    }
    signer = std::move(next);
    aggregates_stale = true;
    ++report.adopted;
  }
  if (aggregates_stale) {
    auto agg = coordination->replace(
        coord::Template::of({LogService::aggregate_tag(), user_id, "*", "*", "*"}),
        aggregate_tuple(user_id, signer));
    delay += agg.delay;
    if (!agg.value.ok()) return {Error{agg.value.error()}, delay};
  }

  report.next_seq = signer.count();
  if (!records.value->empty()) {
    report.next_seq = std::max(report.next_seq, records.value->back().seq + 1);
  }

  // Phase B: classify every pending intent.
  IntentJournal journal(user_id, coordination);
  auto intents = journal.pending();
  delay += intents.delay;
  if (!intents.value.ok()) return {Error{intents.value.error()}, delay};

  // The slot of a rolled-back intent is reusable only if NO cloud holds any
  // object of the unit (the log namespace is append-only, so partial garbage
  // permanently blocks it). Shared by the discard and fenced branches.
  const auto probe_pristine = [&](const LogRecord& intent) {
    bool pristine = true;
    std::vector<sim::SimClock::Micros> probe_delays;
    const auto& clouds = storage->config().clouds;
    for (std::size_t i = 0; i < clouds.size() && i < log_tokens.size(); ++i) {
      auto listed = clouds[i]->list(log_tokens[i], intent.data_unit() + ".");
      probe_delays.push_back(listed.delay);
      if (!listed.value.ok() || !listed.value->empty()) pristine = false;
    }
    delay += sim::parallel_delay(probe_delays);
    return pristine;
  };

  for (const LogRecord& intent : *intents.value) {
    ++report.scanned;
    if (committed_seqs.contains(intent.seq)) {
      auto cleared = journal.clear(intent.seq);
      delay += cleared.delay;
      ++report.committed;
      continue;
    }

    // Fenced intent: the path's lease epoch moved past the writer's fence —
    // the crash interleaved with an eviction, and the new holder's writes
    // may already be committed. Nothing of this intent may enter the chain,
    // durable payload or not: discard it without probing for adoption.
    if (intent.fence_epoch != scfs::kNoFenceEpoch) {
      auto fence = scfs::read_fence_epoch(*coordination, intent.path);
      delay += fence.delay;
      if (!fence.value.ok()) {
        // Fail closed: without the lease epoch we cannot tell a live intent
        // from a fenced one — keep it pending for the next replay rather
        // than re-adopt a possibly fenced payload.
        ++report.deferred;
        report.next_seq = std::max(report.next_seq, intent.seq + 1);
        report.divergent_paths.insert(intent.path);
        continue;
      }
      if (*fence.value > intent.fence_epoch) {
        const bool pristine = probe_pristine(intent);
        auto cleared = journal.clear(intent.seq);
        delay += cleared.delay;
        ++report.discarded;
        reg.counter("journal.replay.fenced").add();
        report.divergent_paths.insert(intent.path);
        if (!pristine) report.next_seq = std::max(report.next_seq, intent.seq + 1);
        continue;
      }
    }

    // No record: is the payload durable? (One read answers it — the digest
    // in the intent is the arbiter.)
    auto payload = storage->read(log_tokens, intent.data_unit());
    delay += payload.delay;
    const bool durable = payload.value.ok() &&
                         payload.value->size() == intent.payload_size &&
                         ct_equal(crypto::sha256(*payload.value), intent.payload_hash);
    if (durable) {
      LogRecord record = intent;
      fssagg::FssAggSigner next = signer;
      record.tag = next.append(record.mac_payload());
      auto committed = commit_log_record(*coordination, record, next);
      delay += committed.delay;
      if (!committed.value.ok()) {
        // Coordination is flaky right now; the intent stays pending and the
        // slot stays reserved so the next replay can finish the roll-forward.
        ++report.deferred;
        report.next_seq = std::max(report.next_seq, record.seq + 1);
        continue;
      }
      signer = std::move(next);
      committed_seqs.insert(record.seq);
      auto cleared = journal.clear(record.seq);
      delay += cleared.delay;
      ++report.adopted;
      report.next_seq = std::max(report.next_seq, record.seq + 1);
      continue;
    }
    if (payload.value.ok() || is_retryable(payload.value.code())) {
      // Readable-but-wrong bytes (torn write racing a crash) or unreachable
      // clouds: neither adoptable nor provably absent. Keep the intent,
      // skip the slot, and force the next write of the path whole-file.
      ++report.deferred;
      report.next_seq = std::max(report.next_seq, intent.seq + 1);
      report.divergent_paths.insert(intent.path);
      continue;
    }

    // Nothing durable: roll back.
    const bool pristine = probe_pristine(intent);
    auto cleared = journal.clear(intent.seq);
    delay += cleared.delay;
    ++report.discarded;
    report.divergent_paths.insert(intent.path);
    if (!pristine) report.next_seq = std::max(report.next_seq, intent.seq + 1);
  }

  reg.counter("journal.replay.committed").add(report.committed);
  reg.counter("journal.replay.adopted").add(report.adopted);
  reg.counter("journal.replay.discarded").add(report.discarded);
  reg.counter("journal.replay.deferred").add(report.deferred);
  report.next_seq = std::max(report.next_seq, static_cast<std::uint64_t>(signer.count()));
  return {std::move(report), delay};
}

}  // namespace rockfs::core
