// Malicious-cloud chaos soak: one deployment, two honest users hammering a
// shared fleet, and at a chosen round one cloud turns adversarial — it keeps
// acking writes like an honest provider but serves reads from a frozen (or
// session-partitioned, or share-withheld) view. The soak then exercises the
// whole resilience pipeline end to end: the freshness witness catches the
// contradiction, the misbehavior ledger quarantines the cloud, and the
// administrator reconfigures the cloud set — admin-signed membership
// manifest, spare provisioning, share migration with crash points armed by
// the dice — while the honest workload keeps running.
//
// The report checks the three properties the design promises:
//
//   * masking    — not one honest read returns stale bytes, before, during
//     or after the attack (read_mismatches == 0);
//   * detection  — the malicious cloud is quarantined within a bounded
//     number of client operations after it starts lying;
//   * equivalence — the final honest-content digest of an attacked run is
//     bit-identical to the same-seed run with the attacker switched off,
//     even though the attacked run detected, quarantined and replaced a
//     cloud mid-flight.
#pragma once

#include <cstdint>
#include <string>

#include "rockfs/attack.h"
#include "sim/clock.h"

namespace rockfs::core {

struct MaliciousSoakOptions {
  std::size_t rounds = 12;
  std::size_t files = 3;     // per user
  std::uint64_t seed = 2018;
  std::size_t f = 1;         // clouds and coordination are both 3f+1
  bool attacker = true;      // off = same honest workload, no adversary
  /// How the compromised cloud misbehaves once it turns.
  sim::AdversarialMode mode = sim::AdversarialMode::kRollback;
  std::size_t malicious_cloud = 2;  // fleet index that turns
  std::size_t attack_round = 4;     // ... at the start of this round
  double crash_prob = 0.5;   // P(reconfiguration gets a crash point armed)
  /// Reconfigure as soon as the quarantine verdict lands (off = soak the
  /// degraded 3-cloud fleet instead, for the quarantine-only experiments).
  bool reconfigure = true;
};

struct MaliciousSoakReport {
  std::size_t rounds = 0;
  std::size_t honest_writes = 0;
  std::size_t honest_retries = 0;
  std::size_t write_failures = 0;    // honest write that never landed (MUST be 0)
  std::size_t read_mismatches = 0;   // stale/garbled bytes served (MUST be 0)
  std::size_t relogins = 0;

  bool attacked = false;
  bool detected = false;             // misbehavior ledger is non-empty
  bool quarantined = false;          // verdict reached
  /// Client operations between the cloud turning and the quarantine verdict.
  std::size_t ops_to_quarantine = 0;
  std::uint64_t misbehavior_flags = 0;

  bool reconfigured = false;
  std::uint64_t membership_epoch = 0;
  std::size_t reconfig_crashes = 0;  // admin died mid-migration, resumed
  std::size_t reconfig_retries = 0;
  std::size_t units_migrated = 0;
  std::size_t shares_rebuilt = 0;
  /// Reads performed after the reconfiguration with the evicted provider
  /// physically removed from every client's fleet — all must succeed.
  std::size_t post_reconfig_reads = 0;
  std::size_t post_reconfig_read_failures = 0;

  bool converged = false;
  std::string honest_digest;  // sha256 hex over the final honest contents
  sim::SimClock::Micros quarantine_to_migrated_us = 0;  // the MTTR the bench reports
  sim::SimClock::Micros total_us = 0;
};

/// Runs the soak to completion. Deterministic per options; the honest digest
/// depends only on the honest workload, so {attacker: true} and
/// {attacker: false} with the same seed must produce the same digest.
MaliciousSoakReport run_malicious_soak(const MaliciousSoakOptions& options);

}  // namespace rockfs::core
