#include "rockfs/revocation.h"

#include <algorithm>
#include <exception>

#include "common/hex.h"
#include "crypto/sha256.h"

namespace rockfs::core {

namespace {
constexpr const char* kRevocationTag = "rockrevoke";
constexpr const char* kRotationTag = "rockrot";
constexpr const char* kRotationPath = "<rotation>";
constexpr const char* kRotationOp = "rotate";
}  // namespace

const char* revocation_tag() { return kRevocationTag; }
const char* rotation_tag() { return kRotationTag; }
const char* rotation_record_path() { return kRotationPath; }
const char* rotation_record_op() { return kRotationOp; }

Bytes RotationManifest::signing_payload() const {
  Bytes out = to_bytes("rockfs.rotation.v1");
  append_lp(out, to_bytes(user_id));
  append_u64(out, rotation_epoch);
  append_u64(out, at_seq);
  append_lp(out, key_digest_a);
  append_lp(out, key_digest_b);
  return out;
}

coord::Tuple RotationManifest::to_tuple() const {
  return {kRotationTag,
          user_id,
          std::to_string(rotation_epoch),
          std::to_string(at_seq),
          hex_encode(key_digest_a),
          hex_encode(key_digest_b),
          hex_encode(signature)};
}

Result<RotationManifest> RotationManifest::from_tuple(const coord::Tuple& t) {
  if (t.size() != 7 || t[0] != kRotationTag) {
    return Error{ErrorCode::kCorrupted, "rotation manifest: malformed tuple"};
  }
  RotationManifest m;
  m.user_id = t[1];
  try {
    m.rotation_epoch = std::stoull(t[2]);
    m.at_seq = std::stoull(t[3]);
  } catch (const std::exception&) {
    return Error{ErrorCode::kCorrupted, "rotation manifest: malformed numeric field"};
  }
  Bytes ha = hex_decode(t[4]);
  Bytes hb = hex_decode(t[5]);
  Bytes sig = hex_decode(t[6]);
  if (ha.size() != 32 || hb.size() != 32 || sig.empty()) {
    return Error{ErrorCode::kCorrupted, "rotation manifest: malformed hex field"};
  }
  m.key_digest_a = std::move(ha);
  m.key_digest_b = std::move(hb);
  m.signature = std::move(sig);
  return m;
}

RotationManifest make_rotation_manifest(std::string user_id, std::uint64_t rotation_epoch,
                                        std::uint64_t at_seq,
                                        const fssagg::FssAggKeys& fresh_keys,
                                        const crypto::KeyPair& admin_keys) {
  RotationManifest m;
  m.user_id = std::move(user_id);
  m.rotation_epoch = rotation_epoch;
  m.at_seq = at_seq;
  m.key_digest_a = crypto::sha256(fresh_keys.a1);
  m.key_digest_b = crypto::sha256(fresh_keys.b1);
  m.signature = crypto::sign(admin_keys, m.signing_payload());
  return m;
}

bool verify_rotation_manifest(const RotationManifest& m, BytesView admin_public_key) {
  return crypto::verify(admin_public_key, m.signing_payload(), m.signature);
}

bool manifest_matches_keys(const RotationManifest& m, const fssagg::FssAggKeys& keys) {
  return m.key_digest_a == crypto::sha256(keys.a1) &&
         m.key_digest_b == crypto::sha256(keys.b1);
}

sim::Timed<Status> commit_revocation_floor(coord::CoordinationService& coord,
                                           const std::string& user_id,
                                           std::uint64_t floor) {
  sim::SimClock::Micros delay = 0;
  auto current = read_revocation_floor(coord, user_id);
  delay += current.delay;
  if (!current.value.ok()) return {Status{current.value.error()}, delay};
  if (*current.value >= floor) return {Status::Ok(), delay};  // monotone: no-op
  auto r = coord.replace(coord::Template::of({kRevocationTag, user_id, "*"}),
                         {kRevocationTag, user_id, std::to_string(floor)});
  delay += r.delay;
  if (!r.value.ok()) return {Status{r.value.error()}, delay};
  return {Status::Ok(), delay};
}

sim::Timed<Result<std::uint64_t>> read_revocation_floor(coord::CoordinationService& coord,
                                                        const std::string& user_id) {
  auto r = coord.rdp(coord::Template::of({kRevocationTag, user_id, "*"}));
  if (!r.value.ok()) return {Error{r.value.error()}, r.delay};
  if (!r.value->has_value()) return {Result<std::uint64_t>{std::uint64_t{0}}, r.delay};
  const coord::Tuple& t = **r.value;
  if (t.size() != 3) {
    return {Error{ErrorCode::kCorrupted, "revocation floor: malformed tuple"}, r.delay};
  }
  try {
    return {Result<std::uint64_t>{std::stoull(t[2])}, r.delay};
  } catch (const std::exception&) {
    return {Error{ErrorCode::kCorrupted, "revocation floor: malformed value"}, r.delay};
  }
}

sim::Timed<Result<bool>> publish_rotation_manifest(coord::CoordinationService& coord,
                                                   const RotationManifest& m) {
  // CAS keyed on (user, epoch): the insert succeeds only when no manifest
  // holds this epoch yet, so exactly one of any set of concurrent rotations
  // wins the epoch and the rest observe false.
  auto r = coord.cas(coord::Template::of({kRotationTag, m.user_id,
                                          std::to_string(m.rotation_epoch), "*", "*",
                                          "*", "*"}),
                     m.to_tuple());
  if (!r.value.ok()) return {Error{r.value.error()}, r.delay};
  return {Result<bool>{*r.value}, r.delay};
}

sim::Timed<Result<std::vector<RotationManifest>>> read_rotation_manifests(
    coord::CoordinationService& coord, const std::string& user_id) {
  auto r = coord.rdall(
      coord::Template::of({kRotationTag, user_id, "*", "*", "*", "*", "*"}));
  if (!r.value.ok()) return {Error{r.value.error()}, r.delay};
  std::vector<RotationManifest> out;
  out.reserve(r.value->size());
  for (const auto& t : *r.value) {
    auto parsed = RotationManifest::from_tuple(t);
    if (!parsed.ok()) return {Error{parsed.error()}, r.delay};
    out.push_back(std::move(*parsed));
  }
  std::sort(out.begin(), out.end(), [](const RotationManifest& a, const RotationManifest& b) {
    return a.rotation_epoch < b.rotation_epoch;
  });
  return {Result<std::vector<RotationManifest>>{std::move(out)}, r.delay};
}

}  // namespace rockfs::core
