// The RockFS keystore (paper §4.1, §5.4): the file holding everything a
// client needs to talk to the clouds — cloud storage credentials SC_i,
// coordination service credentials CC_i, the user's private key PR_U, the
// cache session key S_U and the FssAgg signing state. It exists in plaintext
// ONLY in RAM. At rest it is AES-256-sealed under a key derived from a PVSS
// secret, and that secret is shared among n share holders (device,
// coordination service, external memory) with threshold k, so that:
//   * an attacker reading any k-1 holders learns nothing (T3 for creds),
//   * ransomware deleting/encrypting the device share cannot lock the user
//     out — coord + external shares still reconstruct (T2),
//   * corrupted shares are detected before use (PVSS verifyS).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "cloud/token.h"
#include "common/result.h"
#include "crypto/drbg.h"
#include "crypto/signature.h"
#include "fssagg/fssagg.h"
#include "secretshare/pvss.h"

namespace rockfs::core {

/// Plaintext keystore contents (Table 1's client-side entries).
struct Keystore {
  std::string user_id;
  Bytes user_private_key;                         // PR_U (32-byte scalar)
  std::vector<cloud::AccessToken> file_tokens;    // t_u, one per cloud
  std::vector<cloud::AccessToken> log_tokens;     // t_l, one per cloud
  Bytes session_key;                              // S_U for the local cache
  std::int64_t session_key_expiry_us = 0;
  Bytes fssagg_key_a;                             // current A_i
  Bytes fssagg_key_b;                             // current B_i
  /// Entry index at which (fssagg_key_a, fssagg_key_b) became the chain's
  /// key stream: 0 for the setup keys, the rotation record's index + 1 after
  /// a keystore rotation. A resuming signer evolves (count - base) times.
  std::uint64_t fssagg_base_count = 0;

  Keystore() = default;
  Keystore(const Keystore&) = default;
  Keystore& operator=(const Keystore&) = default;
  Keystore(Keystore&&) = default;
  Keystore& operator=(Keystore&&) = default;
  /// Zeroizes the secret fields so a dropped keystore leaves no plaintext
  /// key material behind (wipe() is also called when rotation supersedes a
  /// live copy).
  ~Keystore() { wipe(); }
  void wipe();

  Bytes serialize() const;
  static Result<Keystore> deserialize(BytesView b);
};

/// One holder of a PVSS share: a named secp256k1 keypair. The *private* key
/// lives wherever the share is kept (device disk, coordination service,
/// USB stick); the deal itself is public.
struct ShareHolder {
  std::string name;
  crypto::KeyPair keys;
};

/// Everything public that the setup produces; stored in the coordination
/// service (and replicated wherever convenient — it is not secret).
struct SealedKeystore {
  secretshare::PvssDeal deal;
  Bytes ciphertext;  // sealed Keystore

  Bytes serialize() const;
  static Result<SealedKeystore> deserialize(BytesView b);
};

/// Splits and seals a keystore among `holders` with threshold k. Per the
/// paper's §5.4, "to recover the keystore it is not enough to reveal the
/// secrets since this file is also encrypted, requiring a user password":
/// when `password` is non-empty it is folded into the sealing key, so an
/// attacker needs BOTH k shares and the password. `exec` parallelizes the
/// per-holder PVSS share generation (the deal is byte-identical either way).
SealedKeystore seal_keystore(const Keystore& keystore,
                             const std::vector<ShareHolder>& holders, std::size_t k,
                             crypto::Drbg& drbg, const std::string& password = {},
                             common::Executor* exec = nullptr);

/// Reconstructs the keystore from >= k holders (paper's login / recovery
/// flow): decrypt each holder's share, verifyS it, combine, unseal.
/// Fails with kIntegrity when shares or the ciphertext were tampered with,
/// or when the password is wrong.
Result<Keystore> unseal_keystore(const SealedKeystore& sealed,
                                 const std::vector<ShareHolder>& available_holders,
                                 const std::vector<crypto::Point>& all_holder_pubs,
                                 std::size_t k, crypto::Drbg& drbg,
                                 const std::string& password = {});

/// Output of rotate_keystore: the rotated plaintext keystore, its sealed
/// form under the fresh deal, and the admin's copy of the new chain keys.
struct KeystoreRotation {
  Keystore keystore;
  SealedKeystore sealed;
  fssagg::FssAggKeys chain_keys;  // the new segment's initial (A'_1, B'_1)
};

/// Credential rotation after a compromise (§4.1 response): keeps the user's
/// identity (PR_U) but installs the replacement cloud tokens, mints a fresh
/// S_U and fresh FssAgg chain keys whose stream starts at entry index
/// `fssagg_base_count`, and reseals everything under a FRESH PVSS deal —
/// proactive share refresh: pvss_share draws a new polynomial, so shares
/// decrypted from the old deal fail verifyS against the new one and are
/// useless for reconstruction.
KeystoreRotation rotate_keystore(const Keystore& current,
                                 std::vector<cloud::AccessToken> file_tokens,
                                 std::vector<cloud::AccessToken> log_tokens,
                                 Bytes fresh_session_key,
                                 std::int64_t session_key_expiry_us,
                                 std::uint64_t fssagg_base_count,
                                 const std::vector<ShareHolder>& holders, std::size_t k,
                                 crypto::Drbg& drbg, const std::string& password = {});

}  // namespace rockfs::core
