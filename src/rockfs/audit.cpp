#include "rockfs/audit.h"

#include <algorithm>
#include <array>
#include <cmath>

namespace rockfs::core {

double byte_entropy(BytesView data) {
  if (data.empty()) return 0.0;
  std::array<std::size_t, 256> counts{};
  for (const Byte b : data) ++counts[b];
  double h = 0.0;
  const double n = static_cast<double>(data.size());
  for (const std::size_t c : counts) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / n;
    h -= p * std::log2(p);
  }
  return h;
}

std::set<std::string> implicated_users(const std::vector<LogRecord>& records,
                                       const std::set<std::uint64_t>& flagged_seqs,
                                       const std::set<std::string>& manual_overrides) {
  std::set<std::string> users;
  for (const auto& r : records) {
    if (!flagged_seqs.contains(r.seq)) continue;
    if (manual_overrides.contains(r.user)) continue;
    users.insert(r.user);
  }
  return users;
}

AuditAnalyzer::AuditAnalyzer(std::vector<LogRecord> records)
    : records_(std::move(records)) {
  std::sort(records_.begin(), records_.end(),
            [](const LogRecord& a, const LogRecord& b) { return a.seq < b.seq; });
}

std::vector<const LogRecord*> AuditAnalyzer::query(const AuditQuery& q) const {
  std::vector<const LogRecord*> out;
  for (const auto& r : records_) {
    if (q.path.has_value() && r.path != *q.path) continue;
    if (q.op.has_value() && r.op != *q.op) continue;
    if (r.timestamp_us < q.from_us || r.timestamp_us > q.to_us) continue;
    if (q.min_seq.has_value() && r.seq < *q.min_seq) continue;
    if (q.max_seq.has_value() && r.seq > *q.max_seq) continue;
    out.push_back(&r);
  }
  return out;
}

UsageStats AuditAnalyzer::stats() const {
  UsageStats s;
  for (const auto& r : records_) {
    ++s.total_operations;
    s.total_log_bytes += r.payload_size;
    ++(r.whole_file ? s.whole_file_entries : s.delta_entries);
    ++s.ops_by_type[r.op];
    ++s.ops_by_path[r.path];
    if (s.total_operations == 1 || r.timestamp_us < s.first_op_us) {
      s.first_op_us = r.timestamp_us;
    }
    s.last_op_us = std::max(s.last_op_us, r.timestamp_us);
  }
  return s;
}

std::set<std::uint64_t> AuditAnalyzer::detect_mass_rewrite(
    const DetectionConfig& config) const {
  std::set<std::uint64_t> flagged;
  // Only rewrites of existing content are ransomware-shaped; creations of
  // brand-new files are normal behaviour.
  std::vector<const LogRecord*> updates;
  for (const auto& r : records_) {
    if (r.op == "update" || r.op == "delete") updates.push_back(&r);
  }
  // Sliding window by timestamp (records are in seq order == time order).
  for (std::size_t lo = 0, hi = 0; lo < updates.size(); ++lo) {
    if (hi < lo) hi = lo;
    while (hi + 1 < updates.size() && updates[hi + 1]->timestamp_us -
                                              updates[lo]->timestamp_us <=
                                          config.window_us) {
      ++hi;
    }
    std::set<std::string> touched;
    std::size_t whole = 0, total = 0;
    for (std::size_t i = lo; i <= hi; ++i) {
      touched.insert(updates[i]->path);
      ++total;
      if (updates[i]->whole_file) ++whole;
    }
    if (touched.size() >= config.min_files &&
        static_cast<double>(whole) >=
            config.min_whole_file_fraction * static_cast<double>(total)) {
      for (std::size_t i = lo; i <= hi; ++i) flagged.insert(updates[i]->seq);
    }
  }
  return flagged;
}

}  // namespace rockfs::core
