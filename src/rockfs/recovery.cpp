#include "rockfs/recovery.h"

#include "obs/metrics.h"
#include "obs/trace.h"

#include <algorithm>

#include "common/logging.h"
#include "crypto/drbg.h"
#include "crypto/sha256.h"

namespace rockfs::core {

namespace {

// Tuple layout mirrored from scfs.cpp (the recovery service updates the
// file's inode after re-uploading it).
constexpr const char* kInodeTag = "scfs-inode";

coord::Template inode_pattern(const std::string& path) {
  return coord::Template::of({kInodeTag, path, "*", "*", "*", "*", "*"});
}

// Local patch-application throughput (client CPU), for MTTR realism.
constexpr double kPatchBytesPerSec = 400e6;

sim::SimClock::Micros patch_cost(std::size_t bytes) {
  return 200 + static_cast<sim::SimClock::Micros>(1e6 * static_cast<double>(bytes) /
                                                  kPatchBytesPerSec);
}

}  // namespace

RecoveryService::RecoveryService(std::string user_id, RecoveryConfig config,
                                 std::shared_ptr<depsky::DepSkyClient> admin_storage,
                                 std::shared_ptr<coord::CoordinationService> coordination,
                                 sim::SimClockPtr clock)
    : user_id_(std::move(user_id)),
      config_(std::move(config)),
      storage_(std::move(admin_storage)),
      coordination_(std::move(coordination)),
      clock_(std::move(clock)) {
  if (config_.log_recovery_ops) {
    // The administrator's recovery actions form their own forward-secure
    // stream under an admin chain ("admin:<user>"): the user agent's chain
    // keys evolve in its RAM and are not available to the admin.
    crypto::Drbg admin_drbg(to_bytes("rockfs.recovery." + user_id_),
                            config_.user_chain_keys.a1);
    admin_chain_keys_ = fssagg::fssagg_keygen(admin_drbg);
    // A previous service instance may already have written admin records;
    // resume the chain from the stored aggregates instead of restarting it.
    // The admin chain gets the same write-ahead journal protection as the
    // user chain: a crashed recovery's half-appended records are repaired
    // here before any new "recover"/"snapshot" entry.
    recovery_log_ = make_resumed_log_service("admin:" + user_id_, storage_,
                                             config_.admin_tokens, coordination_, clock_,
                                             admin_chain_keys_,
                                             LogServiceOptions{/*enable_journal=*/true});
  }
}

void RecoveryService::set_crash_schedule(sim::CrashSchedulePtr crash) {
  crash_ = std::move(crash);
  if (recovery_log_) recovery_log_->set_crash_schedule(crash_);
}

Result<LogAudit> RecoveryService::audit_admin_log() {
  auto records = read_log_records(*coordination_, "admin:" + user_id_);
  auto aggregates = read_aggregates(*coordination_, "admin:" + user_id_);
  clock_->advance_us(records.delay + aggregates.delay);
  LogAudit audit;
  if (!records.value.ok()) return Error{records.value.error()};
  audit.records = std::move(*records.value);
  if (!aggregates.value.ok()) {
    if (audit.records.empty() && aggregates.value.code() == ErrorCode::kNotFound) {
      audit.report.ok = true;
      return audit;
    }
    return Error{aggregates.value.error()};
  }
  std::vector<fssagg::TaggedEntry> tagged;
  for (const auto& r : audit.records) tagged.push_back({r.mac_payload(), r.tag});
  audit.report = fssagg::fssagg_verify(admin_chain_keys_, tagged, aggregates.value->agg_a,
                                       aggregates.value->agg_b, aggregates.value->count);
  for (const std::size_t idx : audit.report.corrupt_entries) {
    audit.discarded_seqs.insert(audit.records[idx].seq);
  }
  return audit;
}

RecoveryService::SnapshotBaseline RecoveryService::load_snapshot(
    const std::string& path, sim::SimClock::Micros* delay) {
  SnapshotBaseline baseline;
  auto admin_audit = audit_admin_log();
  if (!admin_audit.ok()) return baseline;
  // Latest valid snapshot record for this path.
  const LogRecord* snap = nullptr;
  for (const auto& r : admin_audit->records) {
    if (r.op != "snapshot" || r.path != path) continue;
    if (admin_audit->discarded_seqs.contains(r.seq)) continue;
    if (snap == nullptr || r.seq > snap->seq) snap = &r;
  }
  if (snap == nullptr) return baseline;
  auto payload = storage_->read(config_.admin_tokens, snap->data_unit());
  *delay += payload.delay;
  if (!payload.value.ok()) return baseline;
  if (!ct_equal(crypto::sha256(*payload.value), snap->payload_hash)) return baseline;
  auto unwrapped = unwrap_log_payload(*payload.value);
  if (!unwrapped.ok()) return baseline;
  auto delta = diff::LogDelta::deserialize(*unwrapped);
  if (!delta.ok() || !delta->whole_file) return baseline;
  baseline.content = std::move(delta->payload);
  baseline.watermark = snap->version;  // the user-log seq covered by the snapshot
  baseline.found = true;
  return baseline;
}

Result<LogAudit> RecoveryService::audit_log() {
  return audit_chain(user_id_, config_.user_chain_keys);
}

Result<LogAudit> RecoveryService::audit_chain(const std::string& chain_user,
                                              const fssagg::FssAggKeys& chain_keys) {
  obs::Span span = obs::tracer().span("recovery.audit");
  span.set_label(chain_user);
  obs::metrics().counter("recovery.audits").add();
  sim::SimClock::Micros delay = 0;

  auto records = read_log_records(*coordination_, chain_user);
  delay += records.delay;
  span.charge_child(static_cast<std::uint64_t>(records.delay));
  if (!records.value.ok()) {
    clock_->advance_us(delay);
    span.set_duration(static_cast<std::uint64_t>(delay));
    span.set_outcome(records.value.code());
    return Error{records.value.error()};
  }
  auto aggregates = read_aggregates(*coordination_, chain_user);
  delay += aggregates.delay;
  span.charge_child(static_cast<std::uint64_t>(aggregates.delay));
  span.set_duration(static_cast<std::uint64_t>(delay));
  clock_->advance_us(delay);

  LogAudit audit;
  audit.records = std::move(*records.value);

  if (!aggregates.value.ok()) {
    if (audit.records.empty() && aggregates.value.code() == ErrorCode::kNotFound) {
      // No log at all: trivially clean.
      audit.report.ok = true;
      return audit;
    }
    return Error{aggregates.value.error()};
  }

  // Keystore rotations: the chain may span key changes. Each "rotate" record
  // must be vouched for by a signature-valid, admin-signed manifest AND map
  // to fresh keys the admin actually stored — anything less fails the audit
  // fail-closed (an attacker with stolen pre-rotation tokens can append a
  // fake rotate record but can never produce the admin signature for it).
  std::vector<fssagg::FssAggRotation> rotations;
  {
    auto manifests = read_rotation_manifests(*coordination_, chain_user);
    clock_->advance_us(manifests.delay);
    if (!manifests.value.ok()) return Error{manifests.value.error()};
    const std::vector<ChainRotationKeys>* known = nullptr;
    if (chain_user == user_id_) {
      known = &config_.chain_rotations;
    } else if (const auto it = config_.peer_chain_rotations.find(chain_user);
               it != config_.peer_chain_rotations.end()) {
      known = &it->second;
    }
    for (std::size_t i = 0; i < audit.records.size(); ++i) {
      const LogRecord& r = audit.records[i];
      if (r.op != rotation_record_op()) continue;
      const RotationManifest* m = nullptr;
      for (const auto& cand : *manifests.value) {
        if (cand.rotation_epoch == r.version) {
          m = &cand;
          break;
        }
      }
      if (m == nullptr || m->at_seq != r.seq || config_.admin_public_key.empty() ||
          !verify_rotation_manifest(*m, config_.admin_public_key)) {
        return Error{ErrorCode::kIntegrity,
                     "audit: rotate record without a valid admin-signed manifest (" +
                         chain_user + " seq " + std::to_string(r.seq) + ")"};
      }
      const ChainRotationKeys* fresh = nullptr;
      if (known != nullptr) {
        for (const auto& k : *known) {
          if (k.rotation_epoch == m->rotation_epoch && manifest_matches_keys(*m, k.keys)) {
            fresh = &k;
            break;
          }
        }
      }
      if (fresh == nullptr) {
        return Error{ErrorCode::kIntegrity,
                     "audit: no stored keys match rotation manifest of " + chain_user +
                         " (epoch " + std::to_string(m->rotation_epoch) + ")"};
      }
      // The rotate record itself is MAC'd under the outgoing stream; the
      // fresh stream starts at the next chain index (== vector position + 1,
      // since MAC indices count committed entries, not raw seqs).
      rotations.push_back({i + 1, fresh->keys});
    }
  }

  std::vector<fssagg::TaggedEntry> tagged;
  tagged.reserve(audit.records.size());
  for (const auto& r : audit.records) tagged.push_back({r.mac_payload(), r.tag});
  audit.report =
      fssagg::fssagg_verify_rotated(chain_keys, rotations, tagged, aggregates.value->agg_a,
                                    aggregates.value->agg_b, aggregates.value->count);
  for (const std::size_t idx : audit.report.corrupt_entries) {
    audit.discarded_seqs.insert(audit.records[idx].seq);
  }
  return audit;
}

Result<FileRecovery> RecoveryService::recover_one(const LogAudit& audit,
                                                  const std::string& path,
                                                  const std::set<std::uint64_t>& malicious,
                                                  sim::SimClock::Micros* delay,
                                                  bool apply, bool use_snapshots) {
  FileRecovery result;
  result.path = path;

  // A snapshot baseline (if one exists) replaces the archived prefix of the
  // log: recovery starts from it and replays only newer entries.
  const SnapshotBaseline baseline =
      use_snapshots ? load_snapshot(path, delay) : SnapshotBaseline{};

  // Select this file's entries in log order (rotation records live under a
  // sentinel path and carry no file data; never replay them).
  std::vector<const LogRecord*> entries;
  for (const auto& r : audit.records) {
    if (r.path == path && r.op != rotation_record_op()) entries.push_back(&r);
  }
  if (entries.empty() && !baseline.found) {
    return Error{ErrorCode::kNotFound, "recovery: no log entries for " + path};
  }

  // Step 2: batch-download all surviving data halves in parallel.
  struct Fetched {
    const LogRecord* record;
    Result<diff::LogDelta> delta;
  };
  std::vector<Fetched> fetched;
  std::vector<sim::SimClock::Micros> download_delays;
  for (const LogRecord* r : entries) {
    if (baseline.found && r->seq <= baseline.watermark) continue;  // folded in
    if (audit.discarded_seqs.contains(r->seq)) {
      ++result.skipped_invalid;
      continue;
    }
    if (malicious.contains(r->seq)) {
      ++result.skipped_malicious;
      continue;
    }
    auto payload = storage_->read(config_.admin_tokens, r->data_unit());
    if (!payload.value.ok() && payload.value.code() == ErrorCode::kUnavailable) {
      // Shares may have been archived by a compaction whose snapshot was
      // later lost: fall back to cold storage (slow, but nothing is gone).
      payload = storage_->read_archived(config_.admin_tokens, r->data_unit());
    }
    download_delays.push_back(payload.delay);
    if (!payload.value.ok()) {
      ++result.skipped_invalid;
      continue;
    }
    // Cross-check the data half against the MAC-verified metadata.
    if (!ct_equal(crypto::sha256(*payload.value), r->payload_hash)) {
      ++result.skipped_invalid;
      continue;
    }
    auto unwrapped = unwrap_log_payload(*payload.value);
    if (!unwrapped.ok()) {
      ++result.skipped_invalid;
      continue;
    }
    fetched.push_back({r, diff::LogDelta::deserialize(*unwrapped)});
  }
  *delay += sim::parallel_delay(download_delays);

  // Step 3/4: selective re-execution.
  Bytes content = baseline.content;
  if (baseline.found) ++result.applied;  // the snapshot itself
  for (auto& f : fetched) {
    if (!f.delta.ok()) {
      ++result.skipped_invalid;
      continue;
    }
    if (f.record->op == "delete") {
      content.clear();
      ++result.applied;
      continue;
    }
    auto next = diff::apply_log_delta(content, *f.delta);
    *delay += patch_cost(content.size() + f.delta->payload.size());
    if (!next.ok()) {
      // A delta that no longer applies (its base included a skipped
      // malicious write). Whole-file entries always apply; for deltas we
      // must drop the entry, as the paper's selective re-execution does.
      ++result.skipped_invalid;
      continue;
    }
    content = std::move(*next);
    ++result.applied;
  }
  result.content = std::move(content);
  if (!apply) return result;

  if (auto st = commit_recovered(path, result.content, delay); !st.ok()) {
    return Error{st.error()};
  }
  return result;
}

Status RecoveryService::commit_recovered(const std::string& path, const Bytes& content,
                                         sim::SimClock::Micros* delay) {
  // Step 5: push the recovered version back and bump the inode. The unit
  // namespace is flat ("files" + path): files are shared, not per-user.
  const std::string unit = "files" + path;
  auto up = storage_->write(config_.admin_tokens, unit, content);
  *delay += up.delay;
  if (!up.value.ok()) return Status{up.value.error()};

  auto head = storage_->head_version(config_.admin_tokens, unit);
  const std::uint64_t version = head.value.ok() ? *head.value : 1;
  // Stamp the path's current lease epoch so subsequent unfenced writers (who
  // inherit the inode epoch at open) are not spuriously fenced.
  auto fence = scfs::read_fence_epoch(*coordination_, path);
  *delay += fence.delay;
  const std::uint64_t epoch = fence.value.ok() ? *fence.value : 0;
  auto meta = coordination_->replace(
      inode_pattern(path),
      {kInodeTag, path, std::to_string(version), std::to_string(content.size()),
       user_id_, std::to_string(clock_->now_us()), std::to_string(epoch)});
  *delay += meta.delay;
  if (!meta.value.ok()) return Status{meta.value.error()};

  // The recovery operation is itself logged (and can never be erased).
  if (recovery_log_) {
    auto logged = recovery_log_->append(path, {}, content, version, "recover");
    *delay += logged.delay;
    if (!logged.value.ok()) return logged.value;
  }
  return {};
}

Result<FileRecovery> RecoveryService::recover_file(const std::string& path,
                                                   const std::set<std::uint64_t>& malicious) {
  obs::Span span = obs::tracer().span("recovery.recover_file");
  span.set_label(path);
  const auto start = clock_->now_us();
  auto audit = audit_log();
  if (!audit.ok()) return Error{audit.error()};
  if (audit->report.aggregate_mismatch || audit->report.count_mismatch) {
    return Error{ErrorCode::kIntegrity,
                 "recovery: log stream integrity violated (truncation or reordering)"};
  }
  sim::SimClock::Micros delay = 0;
  auto result = recover_one(*audit, path, malicious, &delay);
  clock_->advance_us(delay);
  last_recovery_us_ = clock_->now_us() - start;
  span.set_duration(static_cast<std::uint64_t>(last_recovery_us_));
  obs::metrics().counter("recovery.files_recovered").add();
  obs::metrics().histogram("recovery.mttr_us").record(
      static_cast<std::uint64_t>(last_recovery_us_));
  return result;
}

Result<FileRecovery> RecoveryService::recover_file_at(const std::string& path,
                                                      std::int64_t as_of_us) {
  obs::Span span = obs::tracer().span("recovery.recover_file_at");
  span.set_label(path);
  const auto start = clock_->now_us();
  auto audit = audit_log();
  if (!audit.ok()) return Error{audit.error()};
  if (audit->report.aggregate_mismatch || audit->report.count_mismatch) {
    return Error{ErrorCode::kIntegrity,
                 "recovery: log stream integrity violated (truncation or reordering)"};
  }
  // Everything after the cut-off is treated exactly like a malicious entry:
  // skipped during selective re-execution.
  std::set<std::uint64_t> after_cutoff;
  for (const auto& r : audit->records) {
    if (r.path == path && r.timestamp_us > as_of_us) after_cutoff.insert(r.seq);
  }
  sim::SimClock::Micros delay = 0;
  auto result = recover_one(*audit, path, after_cutoff, &delay, /*apply=*/true,
                            /*use_snapshots=*/false);
  clock_->advance_us(delay);
  last_recovery_us_ = clock_->now_us() - start;
  span.set_duration(static_cast<std::uint64_t>(last_recovery_us_));
  obs::metrics().counter("recovery.files_recovered").add();
  obs::metrics().histogram("recovery.mttr_us").record(
      static_cast<std::uint64_t>(last_recovery_us_));
  return result;
}

Result<FileRecovery> RecoveryService::recover_shared_file(
    const std::string& path, const std::set<std::string>& malicious_users) {
  obs::Span span = obs::tracer().span("recovery.recover_shared_file");
  span.set_label(path);
  const auto start = clock_->now_us();

  // Audit every writer's chain. A chain that fails stream verification
  // (truncation/reordering) aborts the recovery — unless its author is being
  // dropped anyway, in which case its entries are irrelevant.
  struct Chain {
    std::string user;
    LogAudit audit;
  };
  std::vector<Chain> chains;
  {
    auto own = audit_log();
    if (!own.ok()) return Error{own.error()};
    if (own->report.aggregate_mismatch || own->report.count_mismatch) {
      if (!malicious_users.contains(user_id_)) {
        return Error{ErrorCode::kIntegrity,
                     "recovery: log stream integrity violated for " + user_id_};
      }
    } else {
      chains.push_back({user_id_, std::move(*own)});
    }
  }
  for (const auto& [peer, keys] : config_.peer_chain_keys) {
    auto audit = audit_chain(peer, keys);
    if (!audit.ok()) {
      if (audit.code() == ErrorCode::kNotFound) continue;  // peer never wrote
      return Error{audit.error()};
    }
    if (audit->report.aggregate_mismatch || audit->report.count_mismatch) {
      if (!malicious_users.contains(peer)) {
        return Error{ErrorCode::kIntegrity,
                     "recovery: log stream integrity violated for " + peer};
      }
      continue;
    }
    chains.push_back({peer, std::move(*audit)});
  }

  // Collect every writer's surviving records for the file and order them by
  // (version, epoch, timestamp, user, seq): version is the commit order the
  // coordination service serialized, the fencing epoch breaks ties between a
  // fenced straggler and its evictor, and the remaining keys make the order
  // total and deterministic.
  FileRecovery result;
  result.path = path;
  std::vector<const LogRecord*> merged;
  for (const auto& c : chains) {
    const bool drop = malicious_users.contains(c.user);
    for (const auto& r : c.audit.records) {
      if (r.path != path) continue;
      if (c.audit.discarded_seqs.contains(r.seq)) {
        ++result.skipped_invalid;
        continue;
      }
      if (drop) {
        ++result.skipped_malicious;
        continue;
      }
      merged.push_back(&r);
    }
  }
  if (merged.empty() && result.skipped_malicious == 0) {
    return Error{ErrorCode::kNotFound, "recovery: no log entries for " + path};
  }
  std::sort(merged.begin(), merged.end(), [](const LogRecord* a, const LogRecord* b) {
    if (a->version != b->version) return a->version < b->version;
    if (a->epoch != b->epoch) return a->epoch < b->epoch;
    if (a->timestamp_us != b->timestamp_us) return a->timestamp_us < b->timestamp_us;
    if (a->user != b->user) return a->user < b->user;
    return a->seq < b->seq;
  });

  // Batch-download the data halves and re-execute. Every cross-user write is
  // a whole-file entry (the agent forces it when the opened base was written
  // by someone else), so dropping a user's entries never strands a surviving
  // delta on an unlogged base: each honest run either extends its own
  // previous entry or restarts from a whole file.
  sim::SimClock::Micros delay = 0;
  struct Fetched {
    const LogRecord* record;
    Result<diff::LogDelta> delta;
  };
  std::vector<Fetched> fetched;
  std::vector<sim::SimClock::Micros> download_delays;
  for (const LogRecord* r : merged) {
    auto payload = storage_->read(config_.admin_tokens, r->data_unit());
    if (!payload.value.ok() && payload.value.code() == ErrorCode::kUnavailable) {
      payload = storage_->read_archived(config_.admin_tokens, r->data_unit());
    }
    download_delays.push_back(payload.delay);
    if (!payload.value.ok() ||
        !ct_equal(crypto::sha256(*payload.value), r->payload_hash)) {
      ++result.skipped_invalid;
      continue;
    }
    auto unwrapped = unwrap_log_payload(*payload.value);
    if (!unwrapped.ok()) {
      ++result.skipped_invalid;
      continue;
    }
    fetched.push_back({r, diff::LogDelta::deserialize(*unwrapped)});
  }
  delay += sim::parallel_delay(download_delays);

  Bytes content;
  for (auto& f : fetched) {
    if (!f.delta.ok()) {
      ++result.skipped_invalid;
      continue;
    }
    if (f.record->op == "delete") {
      content.clear();
      ++result.applied;
      continue;
    }
    auto next = diff::apply_log_delta(content, *f.delta);
    delay += patch_cost(content.size() + f.delta->payload.size());
    if (!next.ok()) {
      ++result.skipped_invalid;
      continue;
    }
    content = std::move(*next);
    ++result.applied;
  }
  result.content = std::move(content);

  if (auto st = commit_recovered(path, result.content, &delay); !st.ok()) {
    // The downloads and patching above still took simulated time; a failed
    // commit must not understate MTTR or skew virtual-time behavior.
    clock_->advance_us(delay);
    return Error{st.error()};
  }
  clock_->advance_us(delay);
  last_recovery_us_ = clock_->now_us() - start;
  span.set_duration(static_cast<std::uint64_t>(last_recovery_us_));
  obs::metrics().counter("recovery.files_recovered").add();
  obs::metrics().counter("recovery.shared_recoveries").add();
  obs::metrics().histogram("recovery.mttr_us").record(
      static_cast<std::uint64_t>(last_recovery_us_));
  return result;
}

Result<RecoveryService::CompactionReport> RecoveryService::compact_file(
    const std::string& path) {
  if (!recovery_log_) {
    return Error{ErrorCode::kInvalidArgument, "compaction requires log_recovery_ops"};
  }
  auto audit = audit_log();
  if (!audit.ok()) return Error{audit.error()};
  if (audit->report.aggregate_mismatch || audit->report.count_mismatch) {
    return Error{ErrorCode::kIntegrity, "compaction: log stream integrity violated"};
  }

  // Reconstruct the file's current content from the full log (no malicious
  // set: compaction preserves exactly what is there).
  sim::SimClock::Micros delay = 0;
  auto current = recover_one(*audit, path, {}, &delay, /*apply=*/false);
  if (!current.ok()) return Error{current.error()};

  // Watermark: the newest user-log seq folded into this snapshot.
  std::uint64_t watermark = 0;
  std::vector<const LogRecord*> entries;
  for (const auto& r : audit->records) {
    if (r.path == path) {
      watermark = std::max(watermark, r.seq);
      entries.push_back(&r);
    }
  }

  // Write the snapshot baseline into the admin chain FIRST (data before the
  // archival, so a crash mid-compaction never loses information).
  auto logged = recovery_log_->append(path, {}, current->content, watermark, "snapshot");
  delay += logged.delay;
  if (!logged.value.ok()) return Error{logged.value.error()};

  // Archive the folded entries' payload shares to the cold tier.
  CompactionReport report;
  report.path = path;
  std::vector<sim::SimClock::Micros> archive_delays;
  for (const LogRecord* r : entries) {
    bool archived_any = false;
    for (std::size_t i = 0; i < config_.admin_tokens.size(); ++i) {
      const std::string key = r->data_unit() + ".v1.s" + std::to_string(i);
      auto& cloud = *storage_->config().clouds[i];
      const std::uint64_t before = cloud.stored_bytes();
      auto archived = cloud.archive(config_.admin_tokens[i], key);
      archive_delays.push_back(archived.delay);
      if (archived.value.ok()) {
        archived_any = true;
        report.hot_bytes_freed += before - cloud.stored_bytes();
      }
    }
    if (archived_any) ++report.entries_archived;
  }
  delay += sim::parallel_delay(archive_delays);
  clock_->advance_us(delay);
  return report;
}

Result<std::vector<RecoveryService::CompactionReport>> RecoveryService::compact_all() {
  auto audit = audit_log();
  if (!audit.ok()) return Error{audit.error()};
  std::set<std::string> paths;
  for (const auto& r : audit->records) paths.insert(r.path);
  std::vector<CompactionReport> reports;
  for (const auto& path : paths) {
    auto report = compact_file(path);
    if (report.ok()) reports.push_back(std::move(*report));
  }
  return reports;
}

Result<std::vector<FileRecovery>> RecoveryService::recover_all(
    const std::set<std::uint64_t>& malicious, const std::vector<std::string>& priority) {
  obs::Span span = obs::tracer().span("recovery.recover_all");
  const auto start = clock_->now_us();
  auto audit = audit_log();
  if (!audit.ok()) return Error{audit.error()};
  if (audit->report.aggregate_mismatch || audit->report.count_mismatch) {
    return Error{ErrorCode::kIntegrity,
                 "recovery: log stream integrity violated (truncation or reordering)"};
  }

  sim::SimClock::Micros delay = 0;

  // Resumable sessions: the admin chain brackets every recover_all between a
  // "recover-begin" and a "recover-end" marker, and each recovered file's
  // "recover" record doubles as its checkpoint. An un-ended begin marker
  // means the previous run crashed — resume after the last completed file
  // instead of re-recovering (and double-logging) the finished ones.
  std::set<std::string> already_done;
  if (recovery_log_) {
    bool resuming = false;
    auto admin = audit_admin_log();
    if (admin.ok()) {
      const LogRecord* begin = nullptr;
      const LogRecord* end = nullptr;
      for (const auto& r : admin->records) {
        if (admin->discarded_seqs.contains(r.seq)) continue;
        if (r.op == "recover-begin" && (!begin || r.seq > begin->seq)) begin = &r;
        if (r.op == "recover-end" && (!end || r.seq > end->seq)) end = &r;
      }
      if (begin != nullptr && (end == nullptr || end->seq < begin->seq)) {
        resuming = true;
        for (const auto& r : admin->records) {
          if (admin->discarded_seqs.contains(r.seq)) continue;
          if (r.op == "recover" && r.seq > begin->seq) already_done.insert(r.path);
        }
        obs::metrics().counter("recovery.resumed").add();
        LOG_INFO("recover_all resuming: " << already_done.size()
                                          << " file(s) already checkpointed");
      }
    }
    if (!resuming) {
      auto marker = recovery_log_->append("*", {}, {}, 0, "recover-begin");
      delay += marker.delay;
      if (!marker.value.ok()) return Error{marker.value.error()};
    }
  }

  // Enumerate files: priority list first, then everything else in log order.
  std::vector<std::string> order;
  std::set<std::string> seen;
  for (const auto& p : priority) {
    if (seen.insert(p).second) order.push_back(p);
  }
  for (const auto& r : audit->records) {
    if (r.path == rotation_record_path()) continue;  // not a file
    if (seen.insert(r.path).second) order.push_back(r.path);
  }

  std::vector<FileRecovery> results;
  results.reserve(order.size());
  try {
    for (const auto& path : order) {
      if (already_done.contains(path)) continue;  // checkpointed by the crashed run
      auto one = recover_one(*audit, path, malicious, &delay);
      if (!one.ok()) {
        LOG_WARN("recovery of " << path << " failed: " << one.error().message);
        continue;
      }
      results.push_back(std::move(*one));
      // The admin workstation can die between files too.
      if (crash_) crash_->maybe_crash(sim::CrashPoint::kMidRecoverAll);
    }
  } catch (const sim::ClientCrash& crash) {
    // The recovery process is gone; bill the time spent so far and model the
    // restart by rebuilding the admin-chain writer from the stored state
    // (exactly what the service ctor of the next run would do).
    clock_->advance_us(delay);
    LOG_WARN("recover_all crashed at " << sim::crash_point_name(crash.point) << " after "
                                       << results.size() << " file(s)");
    recovery_log_ = make_resumed_log_service(
        "admin:" + user_id_, storage_, config_.admin_tokens, coordination_, clock_,
        admin_chain_keys_, LogServiceOptions{/*enable_journal=*/true, crash_});
    return Error{ErrorCode::kCrashed,
                 std::string("recovery crashed at ") + sim::crash_point_name(crash.point)};
  }

  if (recovery_log_) {
    auto marker = recovery_log_->append("*", {}, {}, 0, "recover-end");
    delay += marker.delay;
    if (!marker.value.ok()) return Error{marker.value.error()};
  }

  clock_->advance_us(delay);
  last_recovery_us_ = clock_->now_us() - start;
  span.set_duration(static_cast<std::uint64_t>(last_recovery_us_));
  obs::metrics().counter("recovery.files_recovered").add(results.size());
  obs::metrics().histogram("recovery.mttr_us").record(
      static_cast<std::uint64_t>(last_recovery_us_));
  return results;
}

}  // namespace rockfs::core
