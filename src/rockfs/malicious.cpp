#include "rockfs/malicious.h"

#include <algorithm>
#include <map>

#include "common/hex.h"
#include "common/rng.h"
#include "crypto/sha256.h"
#include "rockfs/deployment.h"
#include "sim/faults.h"

namespace rockfs::core {
namespace {

constexpr sim::CrashPoint kReconfigPoints[] = {
    sim::CrashPoint::kAfterMembershipManifest,
    sim::CrashPoint::kMidShareMigration,
};

}  // namespace

MaliciousSoakReport run_malicious_soak(const MaliciousSoakOptions& options) {
  MaliciousSoakReport report;
  report.rounds = options.rounds;

  DeploymentOptions dopt;
  dopt.f = options.f;
  dopt.seed = options.seed;
  dopt.agent.sync_mode = scfs::SyncMode::kBlocking;
  Deployment dep(dopt);
  const auto& clock = dep.clock();
  auto& crash = *dep.crash_schedule();
  Rng dice(options.seed * 7121 + 47);

  const std::string alice = "alice";
  const std::string bob = "bob";
  dep.add_user(alice);
  dep.add_user(bob);
  const std::vector<std::string> users = {alice, bob};

  auto path_of = [](const std::string& user, std::size_t j) {
    return "/" + user + "/doc" + std::to_string(j);
  };
  // Honest content is a function of (user, file, round) only: the digest at
  // the end cannot depend on whether a cloud lied along the way.
  auto content_of = [](const std::string& user, std::size_t j, std::size_t round) {
    std::string s = "malice." + user + ".doc" + std::to_string(j) + ".round" +
                    std::to_string(round) + ".";
    while (s.size() < 256) s += "payload-";
    return to_bytes(s);
  };
  std::map<std::string, Bytes> expected;  // path -> last honest write

  auto ensure_login = [&](const std::string& user) {
    if (dep.agent(user).logged_in()) return true;
    auto st = dep.login_default(user);
    if (!st.ok()) st = dep.login_with_external(user);
    if (!st.ok()) return false;
    ++report.relogins;
    return true;
  };

  auto honest_write = [&](const std::string& user, const std::string& path,
                          const Bytes& content) {
    for (int attempt = 0; attempt < 256; ++attempt) {
      if (ensure_login(user)) {
        auto st = dep.agent(user).write_file(path, content);
        if (st.ok()) {
          ++report.honest_writes;
          expected[path] = content;
          return;
        }
      }
      ++report.honest_retries;
      clock->advance_us(1'000'000);
    }
    ++report.write_failures;
  };

  // Read back THROUGH DepSky (cache cleared): the masking property is about
  // what the cloud-of-clouds serves, not what the local cache remembers.
  auto verify_read = [&](const std::string& user, const std::string& path) {
    if (!expected.contains(path)) return;
    for (int attempt = 0; attempt < 64; ++attempt) {
      if (ensure_login(user)) {
        dep.agent(user).fs().clear_cache();
        auto back = dep.agent(user).read_file(path);
        if (back.ok()) {
          if (*back != expected[path]) ++report.read_mismatches;
          return;
        }
      }
      clock->advance_us(1'000'000);
    }
    ++report.read_mismatches;  // never readable counts as a serving failure
  };

  std::size_t ops_since_attack = 0;
  sim::SimClock::Micros quarantined_at_us = 0;

  for (std::size_t round = 0; round < options.rounds; ++round) {
    // ---- the cloud turns ----
    if (options.attacker && round == options.attack_round && !report.attacked) {
      // An equivocating adversary picks its partition to actually diverge:
      // salt chosen so the two honest users land in different view groups.
      std::uint64_t salt = 0;
      if (options.mode == sim::AdversarialMode::kEquivocate) {
        while (sim::adversarial_stale_group(alice, salt) ==
               sim::adversarial_stale_group(bob, salt)) {
          ++salt;
        }
      }
      dep.clouds().at(options.malicious_cloud)->faults().set_adversarial(
          options.mode,
          options.mode == sim::AdversarialMode::kReplayWindow ? 2'000'000 : 0, salt);
      report.attacked = true;
    }

    // ---- honest workload: write one file each, read one back each ----
    const std::size_t j = round % options.files;
    for (const auto& user : users) {
      honest_write(user, path_of(user, j), content_of(user, j, round));
      if (report.attacked && !report.quarantined) ++ops_since_attack;
      verify_read(user, path_of(user, (round + 1) % options.files));
      if (report.attacked && !report.quarantined) ++ops_since_attack;
    }

    // ---- the defense reacts ----
    if (report.attacked && !report.quarantined) {
      const std::size_t verdict = dep.quarantined_cloud();
      if (verdict != Deployment::kNoCloud) {
        report.quarantined = true;
        report.ops_to_quarantine = ops_since_attack;
        quarantined_at_us = clock->now_us();
      }
      for (const auto& user : users) {
        const auto storage = dep.agent(user).logged_in() ? dep.agent(user).storage()
                                                         : nullptr;
        if (storage &&
            storage->cloud_health(options.malicious_cloud).misbehavior_total() > 0) {
          report.detected = true;
        }
      }
    }

    // ---- eviction: replace the quarantined cloud, crash points and all ----
    if (report.quarantined && options.reconfigure && !report.reconfigured) {
      if (dice.next_double() < options.crash_prob) {
        crash.arm(kReconfigPoints[dice.next_below(std::size(kReconfigPoints))]);
      }
      for (int attempt = 0; attempt < 64; ++attempt) {
        auto done = dep.reconfigure_cloud(options.malicious_cloud);
        if (done.ok()) {
          report.reconfigured = true;
          report.membership_epoch = done->epoch;
          report.units_migrated += done->units_migrated;
          report.shares_rebuilt += done->shares_rebuilt;
          report.quarantine_to_migrated_us =
              static_cast<sim::SimClock::Micros>(clock->now_us() - quarantined_at_us);
          break;
        }
        if (done.code() == ErrorCode::kCrashed) {
          ++report.reconfig_crashes;
        } else {
          ++report.reconfig_retries;
          clock->advance_us(2'000'000);
        }
      }
    }

    clock->advance_us(500'000 + dice.next_below(2'000'000));
  }

  // Capture the ledger totals before the final settle (the evicted provider
  // is out of every fleet after a reconfiguration, so ask the live clients).
  for (const auto& user : users) {
    if (!ensure_login(user)) continue;
    const auto storage = dep.agent(user).storage();
    if (!storage) continue;
    for (std::size_t i = 0; i < storage->n(); ++i) {
      report.misbehavior_flags += storage->cloud_health(i).misbehavior_total();
    }
  }

  // Settle: read every honest file back and compare against the last honest
  // write. After a reconfiguration these reads run with the malicious cloud
  // fully removed — they are the post-migration availability check.
  clock->advance_us(30'000'000);
  for (const auto& [path, content] : expected) {
    const std::string user = path.substr(1, path.find('/', 1) - 1);
    Result<Bytes> back = Error{ErrorCode::kUnavailable, "never read"};
    for (int attempt = 0; attempt < 64; ++attempt) {
      if (ensure_login(user)) {
        dep.agent(user).fs().clear_cache();
        back = dep.agent(user).read_file(path);
        if (back.ok()) break;
      }
      clock->advance_us(1'000'000);
    }
    if (report.reconfigured) {
      ++report.post_reconfig_reads;
      if (!back.ok()) ++report.post_reconfig_read_failures;
    }
    if (!back.ok() || *back != content) ++report.read_mismatches;
  }

  report.converged = report.read_mismatches == 0 && report.write_failures == 0;

  std::string blob;
  for (const auto& [path, content] : expected) {
    blob += path + "=>" + to_string(content) + ";";
  }
  report.honest_digest = hex_encode(crypto::sha256(to_bytes(blob)));
  report.total_us = clock->now_us();
  return report;
}

}  // namespace rockfs::core
