// Write-ahead intent journal for the RockFS close path. The paper's log
// append is a non-atomic pipeline (file put under t_u, payload put under
// t_l, metadata append to the coordination service); a client crash between
// any two steps orphans objects or desynchronizes the FssAgg signer from the
// stored aggregates. Before the pipeline starts, a compact *intent* — the
// unsealed LogRecord: seq, path, version, op, payload digest — is persisted
// to the coordination service. On the next login, replay_intent_journal
// classifies every pending intent against the stored records and the cloud
// state:
//
//   committed — a record tuple already covers the seq (the crash hit after
//     the metadata append); the intent is simply cleared. Stored records
//     AHEAD of the aggregates (crash between the two coordination tuples)
//     are reconciled first by re-appending them to the resumed signer.
//   adopted — the payload is durable and digest-matches the intent but no
//     record exists (crash after the payload put). The log namespace is
//     append-only, so the slot cannot be rewritten; instead the entry is
//     rolled FORWARD: the tag is recomputed (key evolution is deterministic)
//     and record + aggregates are committed idempotently.
//   discarded — no durable payload (crash before or during the upload); the
//     intent is cleared. If partial garbage occupies the slot the seq is
//     skipped, and either way the path is marked divergent: the next append
//     for it logs a whole-file entry, so selective re-execution never
//     applies a delta whose base the log has not recorded.
//   deferred — the clouds are unreachable right now; the intent stays
//     pending for the next replay and the seq is conservatively skipped.
#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "rockfs/logservice.h"

namespace rockfs::core {

/// Coordination-service persistence of per-append intents. One tuple per
/// pending seq, keyed by (user, seq) through replace, so re-recording an
/// intent for a reused slot never duplicates.
class IntentJournal {
 public:
  IntentJournal(std::string user_id,
                std::shared_ptr<coord::CoordinationService> coordination);

  /// Tuple tag used for intents ("rockjournal").
  static const char* tag();

  /// Persists (replaces) the intent for `intent.seq`.
  sim::Timed<Status> record(const LogRecord& intent);
  /// Removes the intent for `seq` (after the append committed).
  sim::Timed<Status> clear(std::uint64_t seq);
  /// All pending intents, ascending seq order.
  sim::Timed<Result<std::vector<LogRecord>>> pending() const;

  /// Serialization: everything of a LogRecord except the (not yet computed)
  /// FssAgg tag.
  static coord::Tuple to_tuple(const LogRecord& intent);
  static Result<LogRecord> from_tuple(const coord::Tuple& t);

 private:
  std::string user_id_;
  std::shared_ptr<coord::CoordinationService> coordination_;
};

/// Outcome of one journal replay (see the classification above).
struct JournalReplayReport {
  std::size_t scanned = 0;
  std::size_t committed = 0;
  std::size_t adopted = 0;    // intents rolled forward + record/aggregate repairs
  std::size_t discarded = 0;
  std::size_t deferred = 0;
  std::size_t conflicts = 0;  // stored state contradicts the chain (audit will flag)
  /// First sequence number safe for new appends (>= the resumed signer
  /// count; larger when poisoned slots had to be skipped).
  std::uint64_t next_seq = 0;
  /// Paths whose cloud state may be ahead of the log; the next append for
  /// each must be a whole-file entry.
  std::set<std::string> divergent_paths;
};

/// Replays the pending intents of `user_id` against the stored log records
/// and the cloud state, repairing the chain so that the FssAgg signer, the
/// stored aggregates and next_seq agree again. Mutates `signer` for adopted
/// entries. Does not advance the clock (returns the composed delay).
sim::Timed<Result<JournalReplayReport>> replay_intent_journal(
    const std::string& user_id, const std::shared_ptr<depsky::DepSkyClient>& storage,
    const std::vector<cloud::AccessToken>& log_tokens,
    const std::shared_ptr<coord::CoordinationService>& coordination,
    fssagg::FssAggSigner& signer);

}  // namespace rockfs::core
