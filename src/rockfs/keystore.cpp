#include "rockfs/keystore.h"

#include "crypto/aes.h"
#include "crypto/hmac.h"
#include "crypto/secp256k1.h"

namespace rockfs::core {

namespace {
const char* kSealAad = "rockfs.keystore.v1";

// Sealing key = HKDF(PVSS key, salt = user password). With no password this
// degenerates to a plain expansion of the PVSS key.
Bytes sealing_key(const Bytes& pvss_key, const std::string& password) {
  return crypto::hkdf_sha256(pvss_key, to_bytes(password),
                             to_bytes("rockfs.keystore.kdf"), 32);
}
}  // namespace

void Keystore::wipe() {
  secure_zero(user_private_key);
  secure_zero(session_key);
  secure_zero(fssagg_key_a);
  secure_zero(fssagg_key_b);
  for (auto& t : file_tokens) secure_zero(t.mac);
  for (auto& t : log_tokens) secure_zero(t.mac);
  file_tokens.clear();
  log_tokens.clear();
}

Bytes Keystore::serialize() const {
  Bytes out;
  append_lp(out, to_bytes(user_id));
  append_lp(out, user_private_key);
  append_u32(out, static_cast<std::uint32_t>(file_tokens.size()));
  for (const auto& t : file_tokens) append_lp(out, t.serialize());
  append_u32(out, static_cast<std::uint32_t>(log_tokens.size()));
  for (const auto& t : log_tokens) append_lp(out, t.serialize());
  append_lp(out, session_key);
  append_u64(out, static_cast<std::uint64_t>(session_key_expiry_us));
  append_lp(out, fssagg_key_a);
  append_lp(out, fssagg_key_b);
  append_u64(out, fssagg_base_count);
  return out;
}

Result<Keystore> Keystore::deserialize(BytesView b) {
  try {
    Keystore ks;
    std::size_t off = 0;
    ks.user_id = to_string(read_lp(b, &off));
    ks.user_private_key = read_lp(b, &off);
    const std::uint32_t nf = read_u32(b, off);
    off += 4;
    for (std::uint32_t i = 0; i < nf; ++i) {
      auto t = cloud::AccessToken::deserialize(read_lp(b, &off));
      if (!t.ok()) return t.error();
      ks.file_tokens.push_back(std::move(*t));
    }
    const std::uint32_t nl = read_u32(b, off);
    off += 4;
    for (std::uint32_t i = 0; i < nl; ++i) {
      auto t = cloud::AccessToken::deserialize(read_lp(b, &off));
      if (!t.ok()) return t.error();
      ks.log_tokens.push_back(std::move(*t));
    }
    ks.session_key = read_lp(b, &off);
    ks.session_key_expiry_us = static_cast<std::int64_t>(read_u64(b, off));
    off += 8;
    ks.fssagg_key_a = read_lp(b, &off);
    ks.fssagg_key_b = read_lp(b, &off);
    ks.fssagg_base_count = read_u64(b, off);
    off += 8;
    if (off != b.size()) return Error{ErrorCode::kCorrupted, "keystore: trailing bytes"};
    return ks;
  } catch (const std::exception& e) {
    return Error{ErrorCode::kCorrupted, std::string("keystore: ") + e.what()};
  }
}

Bytes SealedKeystore::serialize() const {
  Bytes out;
  append_lp(out, deal.serialize());
  append_lp(out, ciphertext);
  return out;
}

Result<SealedKeystore> SealedKeystore::deserialize(BytesView b) {
  try {
    SealedKeystore s;
    std::size_t off = 0;
    auto deal = secretshare::PvssDeal::deserialize(read_lp(b, &off));
    if (!deal.ok()) return deal.error();
    s.deal = std::move(*deal);
    s.ciphertext = read_lp(b, &off);
    if (off != b.size()) {
      return Error{ErrorCode::kCorrupted, "sealed keystore: trailing bytes"};
    }
    return s;
  } catch (const std::exception& e) {
    return Error{ErrorCode::kCorrupted, std::string("sealed keystore: ") + e.what()};
  }
}

SealedKeystore seal_keystore(const Keystore& keystore,
                             const std::vector<ShareHolder>& holders, std::size_t k,
                             crypto::Drbg& drbg, const std::string& password,
                             common::Executor* exec) {
  std::vector<crypto::Point> holder_pubs;
  holder_pubs.reserve(holders.size());
  for (const auto& h : holders) holder_pubs.push_back(h.keys.public_key);

  // The dealer (the client itself) picks a fresh scalar secret; the sealing
  // key is H(s*G), which the dealer knows directly and reconstructors obtain
  // by combining shares in the exponent.
  const crypto::Uint256 secret = crypto::scalar_from_bytes(drbg.generate(32));
  SealedKeystore out;
  out.deal = secretshare::pvss_share(secret, holder_pubs, k, drbg, exec);
  Bytes pvss_key = secretshare::pvss_secret_key(secretshare::pvss_public_secret(secret));
  Bytes seal_key = sealing_key(pvss_key, password);
  Bytes plain = keystore.serialize();
  out.ciphertext = crypto::seal(seal_key, plain, to_bytes(kSealAad), drbg.generate_iv());
  secure_zero(plain);
  secure_zero(seal_key);
  secure_zero(pvss_key);
  return out;
}

KeystoreRotation rotate_keystore(const Keystore& current,
                                 std::vector<cloud::AccessToken> file_tokens,
                                 std::vector<cloud::AccessToken> log_tokens,
                                 Bytes fresh_session_key,
                                 std::int64_t session_key_expiry_us,
                                 std::uint64_t fssagg_base_count,
                                 const std::vector<ShareHolder>& holders, std::size_t k,
                                 crypto::Drbg& drbg, const std::string& password) {
  KeystoreRotation out;
  out.chain_keys = fssagg::fssagg_keygen(drbg);
  out.keystore.user_id = current.user_id;
  out.keystore.user_private_key = current.user_private_key;  // identity survives
  out.keystore.file_tokens = std::move(file_tokens);
  out.keystore.log_tokens = std::move(log_tokens);
  out.keystore.session_key = std::move(fresh_session_key);
  out.keystore.session_key_expiry_us = session_key_expiry_us;
  out.keystore.fssagg_key_a = out.chain_keys.a1;
  out.keystore.fssagg_key_b = out.chain_keys.b1;
  out.keystore.fssagg_base_count = fssagg_base_count;
  out.sealed = seal_keystore(out.keystore, holders, k, drbg, password);
  return out;
}

Result<Keystore> unseal_keystore(const SealedKeystore& sealed,
                                 const std::vector<ShareHolder>& available_holders,
                                 const std::vector<crypto::Point>& all_holder_pubs,
                                 std::size_t k, crypto::Drbg& drbg,
                                 const std::string& password) {
  if (available_holders.size() < k) {
    return Error{ErrorCode::kInvalidArgument, "unseal: fewer than k holders"};
  }
  // verifyD on the deal itself guards against a corrupted deal replica.
  if (!secretshare::pvss_verify_deal(sealed.deal, all_holder_pubs)) {
    return Error{ErrorCode::kIntegrity, "unseal: PVSS deal failed verification"};
  }
  std::vector<secretshare::PvssDecryptedShare> shares;
  for (const auto& holder : available_holders) {
    // Locate the holder's index in the deal by public key.
    std::size_t index = 0;
    for (std::size_t i = 0; i < all_holder_pubs.size(); ++i) {
      if (all_holder_pubs[i] == holder.keys.public_key) {
        index = i + 1;
        break;
      }
    }
    if (index == 0) {
      return Error{ErrorCode::kIntegrity,
                   "unseal: holder '" + holder.name + "' is not part of the deal"};
    }
    auto share = secretshare::pvss_decrypt_share(sealed.deal, index, holder.keys, drbg);
    if (!share.ok()) return share.error();
    // verifyS: a corrupted holder key yields a share that fails this check.
    if (!secretshare::pvss_verify_decrypted(sealed.deal, *share,
                                            all_holder_pubs[index - 1])) {
      return Error{ErrorCode::kIntegrity,
                   "unseal: share of holder '" + holder.name + "' failed verifyS"};
    }
    shares.push_back(std::move(*share));
    if (shares.size() == k) break;
  }
  auto combined = secretshare::pvss_combine(shares, k);
  if (!combined.ok()) return combined.error();
  Bytes pvss_key = secretshare::pvss_secret_key(*combined);
  Bytes seal_key = sealing_key(pvss_key, password);
  auto plain = crypto::open_sealed(seal_key, sealed.ciphertext, to_bytes(kSealAad));
  secure_zero(seal_key);
  secure_zero(pvss_key);
  if (!plain.ok()) return plain.error();
  auto ks = Keystore::deserialize(*plain);
  secure_zero(*plain);
  return ks;
}

}  // namespace rockfs::core
