#include "rockfs/compromise.h"

#include <algorithm>
#include <map>

#include "common/hex.h"
#include "common/rng.h"
#include "crypto/sha256.h"
#include "rockfs/audit.h"
#include "rockfs/deployment.h"
#include "sim/faults.h"

namespace rockfs::core {
namespace {

// Crash points of the admin's compromise-response pipeline an incident can
// kill the admin workstation at (faults.h); recovery has its own point.
constexpr sim::CrashPoint kRotationPoints[] = {
    sim::CrashPoint::kAfterRevocationFloor,
    sim::CrashPoint::kMidFloorPropagation,
    sim::CrashPoint::kAfterRotationRecord,
    sim::CrashPoint::kAfterKeystoreReseal,
};

}  // namespace

CompromiseSoakReport run_compromise_soak(const CompromiseSoakOptions& options) {
  CompromiseSoakReport report;
  report.rounds = options.rounds;

  DeploymentOptions dopt;
  dopt.f = options.f;
  dopt.seed = options.seed;
  dopt.agent.sync_mode = scfs::SyncMode::kBlocking;
  Deployment dep(dopt);
  const auto& clock = dep.clock();
  auto& crash = *dep.crash_schedule();
  Rng dice(options.seed * 6029 + 31);

  const std::string victim = "mallory";  // the user whose device is owned
  const std::string honest = "carol";    // a bystander on the same deployment
  dep.add_user(victim);
  dep.add_user(honest);
  const std::vector<std::string> users = {victim, honest};

  auto path_of = [](const std::string& user, std::size_t j) {
    return "/" + user + "/doc" + std::to_string(j);
  };
  // Deterministic honest content: a function of (user, file, round) only, so
  // the final bytes — and the digest over them — cannot depend on whether an
  // attacker raced the workload.
  auto content_of = [](const std::string& user, std::size_t j, std::size_t round) {
    std::string s = "soak." + user + ".doc" + std::to_string(j) + ".round" +
                    std::to_string(round) + ".";
    while (s.size() < 256) s += "payload-";
    return to_bytes(s);
  };
  std::vector<std::string> victim_paths;
  for (std::size_t j = 0; j < options.files; ++j) victim_paths.push_back(path_of(victim, j));

  std::map<std::string, Bytes> expected;  // path -> last honest write

  auto ensure_login = [&](const std::string& user) {
    if (dep.agent(user).logged_in()) return true;
    auto st = dep.login_default(user);
    if (!st.ok()) st = dep.login_with_external(user);
    if (!st.ok()) return false;
    ++report.relogins;
    return true;
  };

  // Honest writes retry through everything the dice throw at them — outages,
  // downed replicas, a mid-rotation logout — stepping the virtual clock so
  // time-bounded faults expire. A write that never lands breaks convergence.
  auto honest_write = [&](const std::string& user, const std::string& path,
                          const Bytes& content) {
    for (int attempt = 0; attempt < 256; ++attempt) {
      if (ensure_login(user)) {
        auto st = dep.agent(user).write_file(path, content);
        if (st.ok()) {
          ++report.honest_writes;
          expected[path] = content;
          return;
        }
      }
      ++report.honest_retries;
      clock->advance_us(1'000'000);
    }
    ++report.write_failures;
  };

  std::size_t coord_down = 0;  // replica downed for the current round, if any
  // The admin's ground-truth malicious set spans every incident so far: a
  // later recover_all replays the whole log, so passing only the newest
  // burst would patch honest deltas onto an earlier burst's ciphertext.
  std::set<std::uint64_t> malicious_seqs;

  for (std::size_t round = 0; round < options.rounds; ++round) {
    // ---- fault weather for this round ----
    if (dice.next_double() < options.cloud_outage_prob) {
      auto& cloud = *dep.clouds()[dice.next_below(dep.clouds().size())];
      const auto start = clock->now_us();
      cloud.faults().add_outage(start, start + 5'000'000 +
                                           static_cast<sim::SimClock::Micros>(
                                               dice.next_below(20'000'000)));
    }
    if (coord_down == 0 && dice.next_double() < options.coord_fault_prob) {
      coord_down = 1 + dice.next_below(dep.coordination()->replica_count() - 1);
      dep.coordination()->set_replica_down(coord_down, true);
    }

    // ---- honest workload: each user refreshes one of its files ----
    const std::size_t j = round % options.files;
    for (const auto& user : users) {
      honest_write(user, path_of(user, j), content_of(user, j, round));
    }

    // ---- compromise incident ----
    if (options.attacker && (round + 1) % options.incident_every == 0) {
      ++report.incidents;

      // Put 3 virtual minutes between the honest writes and the burst so the
      // detector's window isolates the attack.
      clock->advance_us(180'000'000);

      if (!ensure_login(victim)) continue;
      const StolenCredentials loot = steal_credentials(dep, victim);
      // The attacker strikes first: with nothing revoked yet, the loot works.
      report.attack += stolen_credential_attack(dep, loot);
      const RansomwareReport ransom =
          ransomware_attack(dep.agent(victim), victim_paths,
                            options.seed ^ (0xA11ACE + round));
      malicious_seqs.insert(ransom.malicious_seqs.begin(),
                            ransom.malicious_seqs.end());

      // Detection: the mass-rewrite burst in the victim's verified log is the
      // verdict that triggers the response (audit.h -> apply_audit_verdict).
      auto detective = dep.make_recovery_service(victim);
      Result<LogAudit> audit = detective.audit_log();
      for (int attempt = 0; attempt < 64 && !audit.ok(); ++attempt) {
        clock->advance_us(2'000'000);
        audit = detective.audit_log();
      }
      if (!audit.ok()) continue;  // counted below as a failed lockout if real
      const std::set<std::uint64_t> flagged =
          AuditAnalyzer(audit->records).detect_mass_rewrite();

      const bool arm_crash = dice.next_double() < options.crash_prob;
      if (arm_crash) {
        crash.arm(kRotationPoints[dice.next_below(std::size(kRotationPoints))]);
      }
      for (int attempt = 0; attempt < 64; ++attempt) {
        auto verdict = dep.apply_audit_verdict(audit->records, flagged);
        if (verdict.ok()) {
          for (const auto& [user, response] : verdict->responses) {
            (void)user;
            if (response.rotated) ++report.rotations;
            report.max_lockout_latency_us =
                std::max(report.max_lockout_latency_us, response.lockout_latency_us);
            report.max_rotation_us =
                std::max(report.max_rotation_us, response.rotation_us);
          }
          break;
        }
        if (verdict.code() == ErrorCode::kCrashed) {
          ++report.response_crashes;
        } else {
          ++report.response_retries;
          clock->advance_us(2'000'000);
        }
      }

      // The attacker tries again with the same loot — and again after the
      // anti-entropy pass catches up any cloud that was in outage when the
      // floor went out. Post-floor accepts here falsify the lockout theorem.
      report.attack += stolen_credential_attack(dep, loot);
      report.floors_propagated += dep.propagate_revocations();
      report.attack += stolen_credential_attack(dep, loot);

      // Storage recovery undoes the ransomware damage (ground-truth malicious
      // set, per the paper's §3.3 step-3 assumption). A fresh service picks
      // up the rotation that just happened; kMidRecoverAll may kill it.
      auto surgeon = dep.make_recovery_service(victim);
      if (dice.next_double() < options.recovery_crash_prob) {
        crash.arm(sim::CrashPoint::kMidRecoverAll);
      }
      for (int attempt = 0; attempt < 64; ++attempt) {
        auto recovered = surgeon.recover_all(malicious_seqs);
        if (recovered.ok()) {
          report.files_recovered += recovered->size();
          break;
        }
        if (recovered.code() == ErrorCode::kCrashed) {
          ++report.recovery_crashes;
        } else {
          clock->advance_us(2'000'000);
        }
      }
    }

    if (coord_down != 0) {
      // A replica that sat out the round missed every write; bring it back
      // through BFT state transfer from a healthy peer (replica 0 is never
      // the one downed) or it would poison quorums for the rest of the soak.
      dep.coordination()->set_replica_down(coord_down, false);
      (void)dep.coordination()->restore_replica(
          coord_down, dep.coordination()->checkpoint_replica(0));
      coord_down = 0;
    }
    clock->advance_us(500'000 + dice.next_below(2'000'000));
  }

  // Settle: catch up every floor still owed to a recovered cloud, then read
  // every honest file back and compare against the last honest write.
  clock->advance_us(30'000'000);
  report.floors_propagated += dep.propagate_revocations();
  for (const auto& [path, content] : expected) {
    const std::string user = path.substr(1, path.find('/', 1) - 1);
    Result<Bytes> back = Error{ErrorCode::kUnavailable, "never read"};
    for (int attempt = 0; attempt < 64; ++attempt) {
      if (ensure_login(user)) {
        dep.agent(user).fs().clear_cache();
        back = dep.agent(user).read_file(path);
        if (back.ok()) break;
      }
      clock->advance_us(1'000'000);
    }
    if (!back.ok() || *back != content) ++report.read_mismatches;
  }

  report.lockout_held = report.attack.writes_accepted_post_floor == 0 &&
                        report.attack.reads_accepted_post_floor == 0;
  report.converged = report.read_mismatches == 0 && report.write_failures == 0;

  std::string blob;
  for (const auto& [path, content] : expected) {
    blob += path + "=>" + to_string(content) + ";";
  }
  report.honest_digest = hex_encode(crypto::sha256(to_bytes(blob)));
  report.total_us = clock->now_us();
  return report;
}

}  // namespace rockfs::core
