// The RockFS operation log (paper §3.2). Every file-mutating close()
// produces one log entry with two halves:
//
//   data part  ld_fu — the binary delta (or whole file), written to the
//     cloud-of-clouds through DepSky's CA protocol under the *log append
//     token* t_l. The CA protocol supplies exactly the paper's per-entry
//     mechanics: encryption under a fresh key S_fu, the key secret-shared
//     across clouds, the ciphertext erasure-coded (one share per cloud).
//
//   metadata part lm_fu — a tuple in the coordination service carrying
//     timestamp, user, path, version, operation, payload digest and the
//     FssAgg per-entry MACs; the running FssAgg aggregates are replicated
//     there too. Integrity of the whole stream is verified from A_1/B_1 at
//     recovery time (§3.3).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "coord/service.h"
#include "depsky/client.h"
#include "diff/binary_diff.h"
#include "fssagg/fssagg.h"
#include "sim/timed.h"

namespace rockfs::core {

/// One log entry's metadata half (lm_fu).
struct LogRecord {
  std::uint64_t seq = 0;       // position in the user's log stream
  std::string user;
  std::string path;
  std::uint64_t version = 0;   // file version this operation produced
  std::string op;              // "create" | "update" | "delete" | "recover"
  bool whole_file = false;     // ld_fu holds the full file, not a delta
  std::uint64_t payload_size = 0;
  Bytes payload_hash;          // SHA-256 of the serialized LogDelta
  std::int64_t timestamp_us = 0;
  fssagg::FssAggTag tag;

  /// Canonical bytes MACed by FssAgg (everything except the tag).
  Bytes mac_payload() const;

  coord::Tuple to_tuple() const;
  static Result<LogRecord> from_tuple(const coord::Tuple& t);

  /// DepSky unit name of the data half.
  std::string data_unit() const;
};

/// Writer side, embedded in the RockFS agent. Holds the evolving FssAgg
/// signer state in RAM only.
class LogService {
 public:
  LogService(std::string user_id, std::shared_ptr<depsky::DepSkyClient> storage,
             std::vector<cloud::AccessToken> log_tokens,
             std::shared_ptr<coord::CoordinationService> coordination,
             sim::SimClockPtr clock, fssagg::FssAggKeys initial_keys);

  /// Resumes an existing chain (signer state rebuilt from the stored
  /// aggregates and the key evolved `count` times from the initial keys).
  LogService(std::string user_id, std::shared_ptr<depsky::DepSkyClient> storage,
             std::vector<cloud::AccessToken> log_tokens,
             std::shared_ptr<coord::CoordinationService> coordination,
             sim::SimClockPtr clock, fssagg::FssAggSigner resumed_signer);

  /// Appends one entry for a close()/unlink(). Returns the composed delay of
  /// the whole log pipeline WITHOUT advancing the clock, so the caller can
  /// run it in parallel with the file upload (§6.1 optimization (2)).
  sim::Timed<Status> append(const std::string& path, const Bytes& old_content,
                            const Bytes& new_content, std::uint64_t version,
                            const std::string& op);

  std::uint64_t next_seq() const noexcept { return signer_.count(); }
  const std::string& user() const noexcept { return user_id_; }

  /// Tuple tag used for log metadata ("rocklog").
  static const char* record_tag();
  /// Tuple tag used for the replicated aggregates ("rockagg").
  static const char* aggregate_tag();

  /// Enables LZ compression of ld_fu payloads (paper §6.2 future work).
  /// Compression is applied only when it actually shrinks the payload.
  void set_compression(bool enabled) noexcept { compress_ = enabled; }
  bool compression() const noexcept { return compress_; }

 private:
  std::string user_id_;
  std::shared_ptr<depsky::DepSkyClient> storage_;
  std::vector<cloud::AccessToken> log_tokens_;
  std::shared_ptr<coord::CoordinationService> coordination_;
  sim::SimClockPtr clock_;
  fssagg::FssAggSigner signer_;
  bool compress_ = false;
};

/// Payload envelope: a one-byte codec tag (0 = raw, 1 = LZ) ahead of the
/// serialized LogDelta. wrap chooses compression only when it helps.
Bytes wrap_log_payload(BytesView serialized_delta, bool try_compress);
Result<Bytes> unwrap_log_payload(BytesView payload);

/// Builds a LogService that CONTINUES the user's existing chain if the
/// coordination service already records appended entries (login after
/// logout, admin service restart): the keys are evolved `count` times from
/// the initial keys and the aggregates are adopted. Advances the clock by
/// the aggregate lookup.
std::unique_ptr<LogService> make_resumed_log_service(
    const std::string& user_id, std::shared_ptr<depsky::DepSkyClient> storage,
    std::vector<cloud::AccessToken> log_tokens,
    std::shared_ptr<coord::CoordinationService> coordination, sim::SimClockPtr clock,
    const fssagg::FssAggKeys& initial_keys);

/// Reads the aggregate tuple for `user` (shared by verifier and tests).
struct StoredAggregates {
  Bytes agg_a;
  Bytes agg_b;
  std::uint64_t count = 0;
};
sim::Timed<Result<StoredAggregates>> read_aggregates(coord::CoordinationService& coord,
                                                     const std::string& user);

/// Reads all of `user`'s log records ordered by seq (does not verify).
sim::Timed<Result<std::vector<LogRecord>>> read_log_records(
    coord::CoordinationService& coord, const std::string& user);

}  // namespace rockfs::core
