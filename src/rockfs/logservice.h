// The RockFS operation log (paper §3.2). Every file-mutating close()
// produces one log entry with two halves:
//
//   data part  ld_fu — the binary delta (or whole file), written to the
//     cloud-of-clouds through DepSky's CA protocol under the *log append
//     token* t_l. The CA protocol supplies exactly the paper's per-entry
//     mechanics: encryption under a fresh key S_fu, the key secret-shared
//     across clouds, the ciphertext erasure-coded (one share per cloud).
//
//   metadata part lm_fu — a tuple in the coordination service carrying
//     timestamp, user, path, version, operation, payload digest and the
//     FssAgg per-entry MACs; the running FssAgg aggregates are replicated
//     there too. Integrity of the whole stream is verified from A_1/B_1 at
//     recovery time (§3.3).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <set>

#include "common/result.h"
#include "coord/service.h"
#include "depsky/client.h"
#include "diff/binary_diff.h"
#include "fssagg/fssagg.h"
#include "scfs/lease.h"
#include "sim/faults.h"
#include "sim/timed.h"

namespace rockfs::core {

class IntentJournal;  // journal.h (write-ahead intents for crash recovery)

/// One log entry's metadata half (lm_fu).
struct LogRecord {
  std::uint64_t seq = 0;       // position in the user's log stream
  std::string user;
  std::string path;
  std::uint64_t version = 0;   // file version this operation produced
  std::string op;              // "create" | "update" | "delete" | "recover"
  bool whole_file = false;     // ld_fu holds the full file, not a delta
  std::uint64_t payload_size = 0;
  Bytes payload_hash;          // SHA-256 of the serialized LogDelta
  std::int64_t timestamp_us = 0;
  /// Fencing epoch stamped into lm_fu: the writer's lease epoch at close
  /// time (0 for writers that never locked / predate fencing). Recovery
  /// orders concurrent writers' interleaved chains by (version, epoch).
  std::uint64_t epoch = 0;
  /// The fence this append must pass: the append is refused (kFenced) when
  /// the path's lease epoch has moved past it. scfs::kNoFenceEpoch opts out
  /// (fencing disabled, the recovery admin's chain, unlink). Not part of the
  /// committed record tuple — persisted only in the journal intent, so
  /// replay can fence stale intents of a crashed-and-evicted session.
  std::uint64_t fence_epoch = scfs::kNoFenceEpoch;
  fssagg::FssAggTag tag;

  /// Canonical bytes MACed by FssAgg (everything except the tag).
  Bytes mac_payload() const;

  coord::Tuple to_tuple() const;
  static Result<LogRecord> from_tuple(const coord::Tuple& t);

  /// DepSky unit name of the data half.
  std::string data_unit() const;
};

/// Writer side, embedded in the RockFS agent. Holds the evolving FssAgg
/// signer state in RAM only.
class LogService {
 public:
  LogService(std::string user_id, std::shared_ptr<depsky::DepSkyClient> storage,
             std::vector<cloud::AccessToken> log_tokens,
             std::shared_ptr<coord::CoordinationService> coordination,
             sim::SimClockPtr clock, fssagg::FssAggKeys initial_keys);

  /// Resumes an existing chain (signer state rebuilt from the stored
  /// aggregates and the key evolved `count` times from the initial keys).
  LogService(std::string user_id, std::shared_ptr<depsky::DepSkyClient> storage,
             std::vector<cloud::AccessToken> log_tokens,
             std::shared_ptr<coord::CoordinationService> coordination,
             sim::SimClockPtr clock, fssagg::FssAggSigner resumed_signer);

  ~LogService();

  /// Appends one entry for a close()/unlink(). Returns the composed delay of
  /// the whole log pipeline WITHOUT advancing the clock, so the caller can
  /// run it in parallel with the file upload (§6.1 optimization (2)).
  ///
  /// Crash consistency: when a journal is attached, the intent is persisted
  /// before any cloud object exists (unless journal_intent() already did);
  /// the signer evolves on a scratch copy and is adopted only after both
  /// coordination tuples commit. A payload-durable-but-uncommitted outcome
  /// reports kPartialCommit — retrying the same append adopts the durable
  /// payload instead of forking the chain.
  ///
  /// Fencing: with a real `fence_epoch`, the path's lease epoch is checked
  /// both before the payload upload and before the metadata commit; if it
  /// moved past the writer's, the append reports kFenced — before the upload
  /// nothing exists and the slot stays pristine, after it the occupied slot
  /// is skipped (the audit tolerates gaps). Either way the path is marked
  /// divergent so the next append logs a whole-file entry.
  sim::Timed<Status> append(const std::string& path, const Bytes& old_content,
                            const Bytes& new_content, std::uint64_t version,
                            const std::string& op,
                            std::uint64_t fence_epoch = scfs::kNoFenceEpoch);

  /// Persists the write-ahead intent for the NEXT append (close pipeline
  /// step 0: before even the file object upload — see Scfs's close intent
  /// hook). The prepared record/payload is consumed by the matching append()
  /// call, which then skips re-journaling. No-op without a journal.
  sim::Timed<Status> journal_intent(const std::string& path, const Bytes& old_content,
                                    const Bytes& new_content, std::uint64_t version,
                                    const std::string& op,
                                    std::uint64_t fence_epoch = scfs::kNoFenceEpoch);

  std::uint64_t next_seq() const noexcept { return next_seq_; }
  const std::string& user() const noexcept { return user_id_; }

  // ---- crash-resilience wiring (journal.h, sim/faults.h) ----

  /// Attaches the write-ahead intent journal (built over this service's
  /// coordination handle). Normally done by make_resumed_log_service.
  void attach_journal();
  bool has_journal() const noexcept { return journal_ != nullptr; }
  /// Crash points inside append() fire against this schedule (nullable).
  void set_crash_schedule(sim::CrashSchedulePtr crash) { crash_ = std::move(crash); }
  /// First unused sequence number; diverges upward from signer_.count() only
  /// when a poisoned slot (partial garbage from a crashed append that can
  /// neither be adopted nor reused) had to be skipped.
  void set_next_seq(std::uint64_t seq) noexcept { next_seq_ = seq; }
  /// Marks `path` as possibly newer in the cloud than in the log (a crashed
  /// close lost its intent): the next append for it logs a whole-file entry,
  /// so selective re-execution never applies a delta against a base the log
  /// has not seen.
  void mark_divergent(const std::string& path) { divergent_paths_.insert(path); }
  const std::set<std::string>& divergent_paths() const noexcept {
    return divergent_paths_;
  }

  /// Tuple tag used for log metadata ("rocklog").
  static const char* record_tag();
  /// Tuple tag used for the replicated aggregates ("rockagg").
  static const char* aggregate_tag();

  /// Enables LZ compression of ld_fu payloads (paper §6.2 future work).
  /// Compression is applied only when it actually shrinks the payload.
  void set_compression(bool enabled) noexcept { compress_ = enabled; }
  bool compression() const noexcept { return compress_; }

 private:
  /// Builds the payload + unsealed record for one append (shared by
  /// journal_intent and append). Charges the diff computation to *delay.
  struct Prepared {
    LogRecord record;
    Bytes payload;
    bool valid = false;
  };
  Prepared prepare(const std::string& path, const Bytes& old_content,
                   const Bytes& new_content, std::uint64_t version,
                   const std::string& op, std::uint64_t fence_epoch,
                   sim::SimClock::Micros* delay);
  void maybe_crash(sim::CrashPoint point) {
    if (crash_) crash_->maybe_crash(point);
  }

  std::string user_id_;
  std::shared_ptr<depsky::DepSkyClient> storage_;
  std::vector<cloud::AccessToken> log_tokens_;
  std::shared_ptr<coord::CoordinationService> coordination_;
  sim::SimClockPtr clock_;
  fssagg::FssAggSigner signer_;
  bool compress_ = false;
  std::uint64_t next_seq_ = 0;
  std::unique_ptr<IntentJournal> journal_;
  sim::CrashSchedulePtr crash_;
  /// Intent journaled ahead of the matching append (close pipeline step 0).
  Prepared prepared_;
  /// Seq whose payload is known durable though uncommitted (kPartialCommit):
  /// the retry reads the slot instead of re-uploading into it.
  std::uint64_t pending_retry_seq_ = kNoPendingRetry;
  static constexpr std::uint64_t kNoPendingRetry = ~std::uint64_t{0};
  /// Paths whose cloud state may be ahead of the log (journal.h replay).
  std::set<std::string> divergent_paths_;
};

/// Zero-padded 12-digit sequence label used in tuple fields and data-unit
/// names (shared with the journal and the scrubber).
std::string padded_seq(std::uint64_t seq);

/// Idempotently commits a sealed record plus the refreshed aggregates to the
/// coordination service. Both tuples go through seq-/user-keyed replace, so
/// re-committing after a partial failure rewrites rather than duplicates.
/// The two operations are processed in parallel (delay = max); `crash`, when
/// given, is consulted at kAfterMetaAppend between them. A failure of either
/// half reports kPartialCommit. Shared by append() and the journal replay.
sim::Timed<Status> commit_log_record(coord::CoordinationService& coord,
                                     const LogRecord& record,
                                     const fssagg::FssAggSigner& signer,
                                     sim::CrashSchedule* crash = nullptr);

/// Options for make_resumed_log_service (crash-resilience wiring).
struct LogServiceOptions {
  /// Persist write-ahead intents and replay them at resume time.
  bool enable_journal = false;
  /// Crash schedule consulted by append() (nullable).
  sim::CrashSchedulePtr crash;
  /// Entry index at which the supplied keys became the chain's key stream
  /// (Keystore::fssagg_base_count). 0 = setup keys; after a keystore
  /// rotation the fresh keys start mid-chain and the resume evolves only
  /// (stored count - base) times.
  std::uint64_t key_base_count = 0;
};

/// Payload envelope: a one-byte codec tag (0 = raw, 1 = LZ) ahead of the
/// serialized LogDelta. wrap chooses compression only when it helps.
Bytes wrap_log_payload(BytesView serialized_delta, bool try_compress);
Result<Bytes> unwrap_log_payload(BytesView payload);

/// Builds a LogService that CONTINUES the user's existing chain if the
/// coordination service already records appended entries (login after
/// logout, admin service restart): the keys are evolved `count` times from
/// the initial keys and the aggregates are adopted. With the journal
/// enabled, this is also where crash recovery happens: stored records ahead
/// of the aggregates are reconciled and pending intents are replayed
/// (adopted, discarded, or deferred — journal.h). Advances the clock by the
/// lookups and the replay.
std::unique_ptr<LogService> make_resumed_log_service(
    const std::string& user_id, std::shared_ptr<depsky::DepSkyClient> storage,
    std::vector<cloud::AccessToken> log_tokens,
    std::shared_ptr<coord::CoordinationService> coordination, sim::SimClockPtr clock,
    const fssagg::FssAggKeys& initial_keys, const LogServiceOptions& options = {});

/// Reads the aggregate tuple for `user` (shared by verifier and tests).
struct StoredAggregates {
  Bytes agg_a;
  Bytes agg_b;
  std::uint64_t count = 0;
};
sim::Timed<Result<StoredAggregates>> read_aggregates(coord::CoordinationService& coord,
                                                     const std::string& user);

/// Reads all of `user`'s log records ordered by seq (does not verify).
sim::Timed<Result<std::vector<LogRecord>>> read_log_records(
    coord::CoordinationService& coord, const std::string& user);

}  // namespace rockfs::core
