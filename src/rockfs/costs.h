// Monetary and traffic cost models from paper §6.4. The closed forms let
// users predict what RockFS's logging and recovery cost before deploying:
//
//   eq. 2  sigma_log(t)    = (t + delta*t) * n / 2          upload per update
//   eq. 3  sigma_rec(t, v) = (t + delta*t*v) * n / 2        download per recovery
//
// (delta = relative modification size, n = clouds, /2 = erasure coding with
// k = n/2). Monetary rates default to the paper's April-2018 S3 figures:
// uploads free, ~$0.09/GB egress.
#pragma once

#include <cstdint>

#include "rockfs/logservice.h"

namespace rockfs::core {

struct CostModel {
  double delta = 0.3;              // relative modification size
  std::size_t clouds = 4;          // n
  double upload_usd_per_gb = 0.0;  // most providers do not charge ingress
  double egress_usd_per_gb = 0.09;
  double hot_storage_usd_per_gb_month = 0.023;   // S3 standard
  double cold_storage_usd_per_gb_month = 0.004;  // Glacier-class

  /// eq. 2: bytes uploaded for one logged update of a `file_bytes` file.
  double log_upload_bytes(double file_bytes) const {
    return (file_bytes + delta * file_bytes) * static_cast<double>(clouds) / 2.0;
  }

  /// eq. 3: bytes downloaded to recover a `file_bytes` file with `versions`.
  double recovery_download_bytes(double file_bytes, std::size_t versions) const {
    return (file_bytes + delta * file_bytes * static_cast<double>(versions)) *
           static_cast<double>(clouds) / 2.0;
  }

  /// Cloud bytes occupied by a file plus its log after `versions` updates
  /// (linear growth; the create entry stores the whole file).
  double stored_bytes(double file_bytes, std::size_t versions) const {
    const double file = 2.0 * (file_bytes + static_cast<double>(versions) * delta *
                                                file_bytes);
    const double log = 2.0 * file_bytes +
                       static_cast<double>(versions) * 2.0 * delta * file_bytes;
    return file + log;
  }

  // ---- monetary ----

  double upload_cost_usd(double bytes) const {
    return bytes / (1024.0 * 1024.0 * 1024.0) * upload_usd_per_gb;
  }
  double egress_cost_usd(double bytes) const {
    return bytes / (1024.0 * 1024.0 * 1024.0) * egress_usd_per_gb;
  }
  double recovery_cost_usd(double file_bytes, std::size_t versions) const {
    return egress_cost_usd(recovery_download_bytes(file_bytes, versions));
  }
  double monthly_storage_cost_usd(double hot_bytes, double cold_bytes) const {
    constexpr double kGb = 1024.0 * 1024.0 * 1024.0;
    return hot_bytes / kGb * hot_storage_usd_per_gb_month +
           cold_bytes / kGb * cold_storage_usd_per_gb_month;
  }
};

/// Predicted monthly storage bill for a user, from their audited log records
/// (sums the log payload sizes plus a 2x-coded copy of each file's last
/// known size).
double estimate_monthly_storage_usd(const CostModel& model,
                                    const std::vector<LogRecord>& records);

}  // namespace rockfs::core
