#include "rockfs/scrub.h"

#include <algorithm>
#include <set>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rockfs/journal.h"
#include "rockfs/logservice.h"

namespace rockfs::core {

LogScrubber::LogScrubber(std::string user_id,
                         std::shared_ptr<depsky::DepSkyClient> storage,
                         std::vector<cloud::AccessToken> tokens,
                         std::shared_ptr<coord::CoordinationService> coordination,
                         sim::SimClockPtr clock, ScrubOptions options)
    : user_id_(std::move(user_id)),
      storage_(std::move(storage)),
      tokens_(std::move(tokens)),
      coordination_(std::move(coordination)),
      clock_(std::move(clock)),
      options_(std::move(options)) {}

sim::Timed<Status> LogScrubber::scrub_chain(const std::string& chain,
                                            ScrubReport& report) {
  sim::SimClock::Micros delay = 0;
  auto records = read_log_records(*coordination_, chain);
  delay += records.delay;
  if (!records.value.ok()) return {Status{records.value.error()}, delay};

  const std::size_t threshold = storage_->k() + options_.margin;
  const std::size_t meta_quorum = storage_->n() - storage_->config().f;
  auto& reg = obs::metrics();

  for (const LogRecord& r : *records.value) {
    ++report.entries_checked;
    reg.counter("scrub.entries.checked").add();

    auto inv = storage_->share_inventory(tokens_, r.data_unit());
    delay += inv.delay;
    if (!inv.value.ok()) {
      // Metadata quorum gone for this entry: nothing to measure against.
      ++report.entries_degraded;
      ++report.entries_unrepairable;
      reg.counter("scrub.entries.degraded").add();
      LOG_WARN("scrub: entry seq=" << r.seq << " of " << chain
                                   << " unreadable: " << inv.value.error().message);
      continue;
    }
    // Stale-version state is its own category: a rolled-back cloud holds
    // authentic bytes of an OLD version, which is not the same failure as a
    // lost or corrupt share (and is exactly what a freshness attack leaves
    // behind). It still counts as degradation — the current version is
    // missing there — but it is reported and alarmed separately.
    std::size_t stale_here = 0;
    for (std::size_t s = 0; s < inv.value->share_stale.size(); ++s) {
      if (inv.value->share_stale[s]) ++stale_here;
    }
    if (stale_here > 0 || inv.value->meta_stale > 0) {
      ++report.entries_stale;
      report.stale_shares += stale_here;
      report.stale_metas += inv.value->meta_stale;
      reg.counter("scrub.shares.stale").add(stale_here + inv.value->meta_stale);
    }
    const bool degraded = inv.value->valid_count() < threshold ||
                          inv.value->meta_replicas < meta_quorum;
    if (!degraded) continue;
    ++report.entries_degraded;
    reg.counter("scrub.entries.degraded").add();
    if (!options_.repair) continue;

    auto fixed = storage_->repair(tokens_, r.data_unit());
    delay += fixed.delay;
    if (!fixed.value.ok()) {
      ++report.entries_unrepairable;
      LOG_WARN("scrub: repair of seq=" << r.seq << " of " << chain
                                       << " failed: " << fixed.value.error().message);
      continue;
    }
    report.shares_repaired += fixed.value->shares_repaired;
    report.meta_repaired += fixed.value->meta_repaired;
    reg.counter("scrub.shares.repaired").add(fixed.value->shares_repaired);
    // Full redundancy restored? Archived shares stay cold (they are not
    // missing), so count them toward the survivors.
    std::size_t archived = 0;
    for (std::size_t i = 0; i < inv.value->share_archived.size(); ++i) {
      if (inv.value->share_archived[i]) ++archived;
    }
    const bool healed = fixed.value->shares_unrepairable == 0 &&
                        fixed.value->meta_unrepairable == 0 &&
                        fixed.value->shares_ok + fixed.value->shares_repaired +
                                archived >= storage_->n();
    if (healed) {
      ++report.entries_repaired;
      reg.counter("scrub.entries.repaired").add();
    } else {
      ++report.entries_unrepairable;
    }
  }
  return {Status::Ok(), delay};
}

sim::Timed<Status> LogScrubber::find_orphans(const std::string& chain,
                                             ScrubReport& report) {
  sim::SimClock::Micros delay = 0;

  // Every unit the log (or a pending intent) legitimately accounts for.
  std::set<std::string> accounted;
  auto records = read_log_records(*coordination_, chain);
  delay += records.delay;
  if (!records.value.ok()) return {Status{records.value.error()}, delay};
  for (const LogRecord& r : *records.value) accounted.insert(r.data_unit());
  IntentJournal journal(chain, coordination_);
  auto intents = journal.pending();
  delay += intents.delay;
  if (intents.value.ok()) {
    for (const LogRecord& i : *intents.value) accounted.insert(i.data_unit());
  }

  // Union of the unit names present on any cloud. A key is
  // logs/<chain>/e<seq>.meta or .v<version>.s<i>; the unit is the prefix.
  const std::string prefix = "logs/" + chain + "/";
  const auto& clouds = storage_->config().clouds;
  std::set<std::string> present;
  std::vector<sim::SimClock::Micros> list_delays;
  for (std::size_t i = 0; i < clouds.size() && i < tokens_.size(); ++i) {
    auto listed = clouds[i]->list(tokens_[i], prefix);
    list_delays.push_back(listed.delay);
    if (!listed.value.ok()) continue;
    for (const auto& obj : *listed.value) {
      std::string unit = obj.key;
      if (const auto meta = unit.rfind(".meta"); meta != std::string::npos) {
        unit.resize(meta);
      } else if (const auto ver = unit.rfind(".v"); ver != std::string::npos) {
        unit.resize(ver);
      }
      present.insert(std::move(unit));
    }
  }
  delay += sim::parallel_delay(list_delays);

  for (const std::string& unit : present) {
    if (!accounted.contains(unit)) report.orphan_units.push_back(unit);
  }
  return {Status::Ok(), delay};
}

Result<ScrubReport> LogScrubber::scrub() {
  obs::Span span = obs::tracer().span("scrub");
  sim::SimClock::Micros delay = 0;
  ScrubReport report;

  std::vector<std::string> chains{user_id_};
  if (options_.include_admin_chain) chains.push_back("admin:" + user_id_);

  for (const std::string& chain : chains) {
    auto scrubbed = scrub_chain(chain, report);
    delay += scrubbed.delay;
    if (!scrubbed.value.ok()) {
      clock_->advance_us(delay);
      span.set_duration(static_cast<std::uint64_t>(delay));
      span.set_outcome(scrubbed.value.code());
      return Error{scrubbed.value.error()};
    }
    auto orphans = find_orphans(chain, report);
    delay += orphans.delay;
    if (!orphans.value.ok()) {
      clock_->advance_us(delay);
      span.set_duration(static_cast<std::uint64_t>(delay));
      span.set_outcome(orphans.value.code());
      return Error{orphans.value.error()};
    }
  }
  std::sort(report.orphan_units.begin(), report.orphan_units.end());
  obs::metrics().counter("scrub.orphans").add(report.orphan_units.size());
  clock_->advance_us(delay);
  span.set_duration(static_cast<std::uint64_t>(delay));
  return report;
}

}  // namespace rockfs::core
