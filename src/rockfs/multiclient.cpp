#include "rockfs/multiclient.h"

#include <algorithm>
#include <utility>

#include "common/hex.h"
#include "common/rng.h"
#include "crypto/sha256.h"
#include "rockfs/deployment.h"
#include "sim/faults.h"

namespace rockfs::core {
namespace {

// Close-path crash points a dying holder can be killed at (kMidRecoverAll
// belongs to the recovery service, not the client close path).
constexpr sim::CrashPoint kClosePoints[] = {
    sim::CrashPoint::kBeforeFilePut,      sim::CrashPoint::kAfterLogIntent,
    sim::CrashPoint::kAfterFilePut,       sim::CrashPoint::kAfterLogPayloadPut,
    sim::CrashPoint::kAfterMetaAppend,
};

/// Open-or-create + append the token + close. The token rides whatever
/// content the file currently has, so every committed token stays a
/// substring of every later committed version (append-only ledger).
Status append_token(RockFsAgent& agent, const std::string& path,
                    const std::string& token) {
  auto fd = agent.open(path);
  if (!fd.ok() && fd.code() == ErrorCode::kNotFound) fd = agent.create(path);
  if (!fd.ok()) return Status{fd.error()};
  if (auto st = agent.append(*fd, to_bytes(token)); !st.ok()) {
    (void)agent.close(*fd);
    return st;
  }
  auto st = agent.close(*fd);
  if (!st.ok()) return st;
  // With write-back staging on, the close only parked the bytes: the commit
  // pipeline — and whatever crash/fence fate the round armed — runs in the
  // flush, while this agent still holds the lease. A no-op when staging is
  // off, so one code path serves both modes.
  return agent.flush(path);
}

}  // namespace

MultiClientReport run_multiclient_soak(const MultiClientOptions& options) {
  MultiClientReport report;

  DeploymentOptions dopt;
  dopt.f = options.f;
  dopt.seed = options.seed;
  dopt.agent.sync_mode = scfs::SyncMode::kBlocking;
  dopt.agent.lease_ttl_us = options.lease_ttl_us;
  dopt.agent.fencing = true;
  dopt.agent.enable_cache = options.client_cache;
  dopt.agent.writeback.enabled = options.write_back;
  dopt.executor_threads = options.executor_threads;
  Deployment dep(dopt);
  if (options.byzantine_coord_replica && dep.coordination()->replica_count() > 1) {
    dep.coordination()->replica(1).set_byzantine(true);
  }

  std::vector<std::string> users;
  for (std::size_t i = 0; i < options.agents; ++i) {
    users.push_back("u" + std::to_string(i));
    dep.add_user(users.back());
  }
  std::vector<std::string> paths;
  for (std::size_t i = 0; i < options.paths; ++i) {
    paths.push_back("/shared/doc" + std::to_string(i));
  }

  auto& crash = *dep.crash_schedule();
  const auto& clock = dep.clock();
  Rng dice(options.seed * 7919 + 17);

  // Token ledger: (path, token) pairs with a post-hoc containment check.
  std::vector<std::pair<std::string, std::string>> required;
  std::vector<std::pair<std::string, std::string>> forbidden;

  auto ensure_login = [&](const std::string& user) {
    if (dep.agent(user).logged_in()) return true;
    if (!dep.login_default(user).ok()) return false;
    ++report.relogins;
    return true;
  };

  // Spin on kConflict until the lease is ours. A conflict in the serialized
  // sim means the holder is dead (crashed or hung) — its lease expires
  // within one TTL, so stepping the clock by TTL/4 per retry acquires in
  // bounded time. max_blocked_us records the worst spin (the wedge bound).
  auto acquire = [&](RockFsAgent& agent, const std::string& path) {
    const auto start = clock->now_us();
    for (int tries = 0; tries < 64; ++tries) {
      auto st = agent.lock(path);
      if (st.ok()) {
        if (tries > 0) {
          ++report.lock_waits;
          ++report.evictions;  // a conflicting holder can only be evicted
          report.max_blocked_us =
              std::max(report.max_blocked_us, clock->now_us() - start);
        }
        return true;
      }
      if (st.code() != ErrorCode::kConflict) return false;
      clock->advance_us(std::max<sim::SimClock::Micros>(options.lease_ttl_us / 4,
                                                        100'000));
    }
    return false;
  };

  for (std::size_t round = 0; round < options.rounds; ++round) {
    const std::size_t ai = dice.next_below(options.agents);
    const std::string& user = users[ai];
    if (!ensure_login(user)) continue;
    auto& agent = dep.agent(user);
    const std::string& path = paths[dice.next_below(paths.size())];
    const std::string token = "[" + user + ".r" + std::to_string(round) + "]";
    const double fate = dice.next_double();

    if (!acquire(agent, path)) continue;
    ++report.writes_attempted;

    if (fate < options.crash_prob) {
      // The holder dies mid-close at a random pipeline point; its lease
      // stays held until TTL expiry (contenders must wait, never wedge).
      crash.arm(kClosePoints[dice.next_below(std::size(kClosePoints))]);
      auto st = append_token(agent, path, token);
      crash.disarm();
      if (st.code() == ErrorCode::kCrashed) {
        ++report.writes_crashed;
        // "maybe" token: journal replay at the next login may adopt the
        // intent (if nobody moved the epoch) or discard it — both legal.
      } else if (st.ok()) {
        required.emplace_back(path, token);
        ++report.writes_committed;
        (void)agent.unlock(path);
      }
    } else if (fate < options.crash_prob + options.hang_prob &&
               options.agents > 1) {
      // The holder stalls pre-upload (kBeforeFilePut: nothing durable yet)
      // past its TTL; the hook interleaves a contender who evicts the
      // holder and commits its own write. The resumed close must fence.
      const std::size_t bi =
          (ai + 1 + dice.next_below(options.agents - 1)) % options.agents;
      const std::string contender_token =
          "[" + users[bi] + ".r" + std::to_string(round) + ".evict]";
      bool contender_committed = false;
      crash.arm_hang(sim::CrashPoint::kBeforeFilePut,
                     static_cast<sim::SimClock::Micros>(options.lease_ttl_us) * 2);
      crash.set_hang_hook([&] {
        if (!ensure_login(users[bi])) return;
        auto& contender = dep.agent(users[bi]);
        if (!contender.lock(path).ok()) return;  // lost the takeover race
        ++report.evictions;
        if (append_token(contender, path, contender_token).ok()) {
          contender_committed = true;
        }
        (void)contender.unlock(path);
      });
      auto st = append_token(agent, path, token);
      crash.set_hang_hook(nullptr);
      crash.disarm_hang();
      if (contender_committed) {
        required.emplace_back(path, contender_token);
        ++report.writes_committed;
      }
      if (st.code() == ErrorCode::kFenced) {
        ++report.writes_fenced;
        forbidden.emplace_back(path, token);
      } else if (st.ok()) {
        // Contender failed to evict (lost the race) — the close sailed
        // through unfenced, so the token must survive like any commit.
        required.emplace_back(path, token);
        ++report.writes_committed;
      }
      (void)agent.unlock(path);  // kConflict after an eviction; ignore
    } else {
      auto st = append_token(agent, path, token);
      if (st.ok()) {
        required.emplace_back(path, token);
        ++report.writes_committed;
        (void)agent.unlock(path);
      }
    }

    clock->advance_us(100'000 + dice.next_below(2'000'000));
  }

  // Settle: let every stale lease expire, then land one clean write per
  // path so crashed intents are either adopted or fenced out by now.
  clock->advance_us(static_cast<sim::SimClock::Micros>(options.lease_ttl_us) * 2);
  for (std::size_t i = 0; i < paths.size(); ++i) {
    if (!ensure_login(users[0])) break;
    auto& agent = dep.agent(users[0]);
    if (!acquire(agent, paths[i])) continue;
    const std::string token = "[settle." + std::to_string(i) + "]";
    if (append_token(agent, paths[i], token).ok()) {
      required.emplace_back(paths[i], token);
    }
    (void)agent.unlock(paths[i]);
  }

  // Every agent reads every path; all views must agree byte-for-byte.
  for (const auto& path : paths) {
    std::vector<std::string> views;
    for (const auto& user : users) {
      if (!ensure_login(user)) continue;
      auto& agent = dep.agent(user);
      agent.fs().clear_cache();
      auto content = agent.read_file(path);
      views.push_back(content.ok() ? to_string(*content) : "<unreadable>");
    }
    for (const auto& view : views) {
      if (view != views.front()) {
        ++report.divergent_reads;
        break;
      }
    }
    if (!views.empty()) report.final_contents[path] = views.front();
  }

  for (const auto& [path, token] : required) {
    if (report.final_contents[path].find(token) == std::string::npos) {
      ++report.lost_updates;
    }
  }
  for (const auto& [path, token] : forbidden) {
    if (report.final_contents[path].find(token) != std::string::npos) {
      ++report.zombie_updates;
    }
  }

  std::string blob;
  blob += "attempted=" + std::to_string(report.writes_attempted);
  blob += ";committed=" + std::to_string(report.writes_committed);
  blob += ";fenced=" + std::to_string(report.writes_fenced);
  blob += ";crashed=" + std::to_string(report.writes_crashed);
  blob += ";evictions=" + std::to_string(report.evictions);
  blob += ";relogins=" + std::to_string(report.relogins);
  blob += ";lock_waits=" + std::to_string(report.lock_waits);
  blob += ";max_blocked_us=" + std::to_string(report.max_blocked_us);
  blob += ";lost=" + std::to_string(report.lost_updates);
  blob += ";zombies=" + std::to_string(report.zombie_updates);
  blob += ";divergent=" + std::to_string(report.divergent_reads);
  std::string content_blob;
  for (const auto& [path, content] : report.final_contents) {
    blob += ";" + path + "=>" + content;
    content_blob += path + "=>" + content + "\n";
  }
  report.digest = hex_encode(crypto::sha256(to_bytes(blob)));
  report.content_digest = hex_encode(crypto::sha256(to_bytes(content_blob)));
  return report;
}

}  // namespace rockfs::core
