#include "sim/network.h"

#include <algorithm>
#include <cmath>

namespace rockfs::sim {

LinkProfile LinkProfile::s3_like(const std::string& name) {
  LinkProfile p;
  p.name = name;
  p.rtt_us = 24'000;               // London -> Ireland
  p.up_bytes_per_sec = 2.2e6;      // ~18 Mbit/s effective per-bucket uplink
  p.down_bytes_per_sec = 7.5e6;    // ~60 Mbit/s downlink
  p.jitter_frac = 0.04;
  // Effective per-request cost of an S3 PUT/GET through the SCFS stack
  // (TLS + HTTP + FUSE + client library), calibrated against Table 2.
  p.request_overhead_us = 90'000;
  return p;
}

LinkProfile LinkProfile::coordination_like(const std::string& name) {
  LinkProfile p;
  p.name = name;
  p.rtt_us = 14'000;               // London -> Belgium
  p.up_bytes_per_sec = 6.0e6;
  p.down_bytes_per_sec = 8.0e6;
  p.jitter_frac = 0.03;
  p.request_overhead_us = 18'000;  // DepSpace replica processing (BFT ordering)
  return p;
}

LinkProfile LinkProfile::local_like(const std::string& name) {
  LinkProfile p;
  p.name = name;
  p.rtt_us = 200;
  p.up_bytes_per_sec = 300e6;
  p.down_bytes_per_sec = 300e6;
  p.jitter_frac = 0.01;
  p.request_overhead_us = 50;
  return p;
}

NetworkModel::NetworkModel(SimClockPtr clock, LinkProfile profile, std::uint64_t jitter_seed)
    : clock_(std::move(clock)), profile_(std::move(profile)), rng_(jitter_seed) {}

SimClock::Micros NetworkModel::jitter(SimClock::Micros base) {
  const double noise = 1.0 + profile_.jitter_frac * rng_.next_gaussian();
  const double scaled = static_cast<double>(base) * std::max(0.5, noise);
  return static_cast<SimClock::Micros>(scaled);
}

SimClock::Micros NetworkModel::upload_delay_us(std::size_t bytes) {
  const auto transfer =
      static_cast<SimClock::Micros>(1e6 * static_cast<double>(bytes) / profile_.up_bytes_per_sec);
  return jitter(profile_.rtt_us + profile_.request_overhead_us + transfer);
}

SimClock::Micros NetworkModel::download_delay_us(std::size_t bytes) {
  const auto transfer = static_cast<SimClock::Micros>(
      1e6 * static_cast<double>(bytes) / profile_.down_bytes_per_sec);
  return jitter(profile_.rtt_us + profile_.request_overhead_us + transfer);
}

SimClock::Micros NetworkModel::rpc_delay_us(std::size_t request_bytes,
                                            std::size_t response_bytes) {
  const auto up = static_cast<SimClock::Micros>(
      1e6 * static_cast<double>(request_bytes) / profile_.up_bytes_per_sec);
  const auto down = static_cast<SimClock::Micros>(
      1e6 * static_cast<double>(response_bytes) / profile_.down_bytes_per_sec);
  return jitter(profile_.rtt_us + profile_.request_overhead_us + up + down);
}

SimClock::Micros NetworkModel::charge_upload(std::size_t bytes) {
  const auto d = upload_delay_us(bytes);
  clock_->advance_us(d);
  return d;
}

SimClock::Micros NetworkModel::charge_download(std::size_t bytes) {
  const auto d = download_delay_us(bytes);
  clock_->advance_us(d);
  return d;
}

SimClock::Micros NetworkModel::charge_rpc(std::size_t request_bytes,
                                          std::size_t response_bytes) {
  const auto d = rpc_delay_us(request_bytes, response_bytes);
  clock_->advance_us(d);
  return d;
}

}  // namespace rockfs::sim
