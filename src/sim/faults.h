// Deterministic, sim-clock-driven fault injection. One FaultSchedule models
// the time-varying health of a single component (a cloud provider or a
// coordination replica): scheduled outage windows, transient error bursts,
// tail-latency storms, partial-write truncation and intermittent read
// corruption. Components consult the schedule on every operation; decisions
// are drawn from the schedule's own seeded RNG stream, so a fixed seed and
// operation sequence reproduce the exact same fault trace on any machine.
//
// The legacy static fault flags (CloudProvider::set_available /
// set_byzantine, CoordinationService::set_replica_down) are one-line
// wrappers over the schedule's permanent `down` / `byzantine` entries, so
// all existing call sites keep their behavior.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "sim/clock.h"

namespace rockfs::sim {

/// Operation class a component reports when consulting its schedule.
enum class FaultOp {
  kRead,     // data download (eligible for read corruption)
  kWrite,    // data upload (eligible for partial-write truncation)
  kControl,  // metadata / RPC round-trips
};

/// What the faulty environment does to one operation.
struct FaultActions {
  /// kOk = the operation proceeds; kUnavailable / kTimeout = it fails.
  ErrorCode fail = ErrorCode::kOk;
  const char* reason = "";       // human-readable cause for error messages
  double latency_factor = 1.0;   // >1 during a tail-latency storm
  bool corrupt_payload = false;  // reads: bit-flip the returned bytes
  bool truncate_payload = false; // writes: store only a prefix, then fail
};

/// Half-open interval of virtual time during which the component is down.
struct OutageWindow {
  SimClock::Micros start_us = 0;
  SimClock::Micros end_us = 0;
};

// ---------------------------------------------------- adversarial serving
//
// Crash/omission faults above make a cloud *unavailable*; adversarial modes
// make it *lie* while staying perfectly available. The provider keeps every
// response well-formed and correctly signed (signatures travel with the
// stored bytes), which is exactly what makes these attacks invisible to the
// digest checks and detectable only by freshness/accountability machinery
// (depsky version witness + misbehavior quarantine).
//
// The spec is pure configuration: consulting it draws NOTHING from the
// schedule's RNG stream, so arming an adversary never perturbs the fault
// trace of the probabilistic knobs.

enum class AdversarialMode {
  kNone = 0,
  /// Serve every reader the view frozen at arming time: the highest version
  /// whose write completed before the freeze, signatures intact. Writes are
  /// still acked (and recorded) — they just never become visible.
  kRollback,
  /// Partition readers by authenticated identity: one group sees the fresh
  /// view, the other the frozen one. Both views are valid and signed —
  /// divergence across sessions is the only evidence.
  kEquivocate,
  /// Metadata served honestly; data-share objects answer kNotFound.
  kWithholdShares,
  /// Serve the view as of (now - window_us): a sliding rollback that lags
  /// the truth by a fixed interval instead of freezing outright.
  kReplayWindow,
};

const char* adversarial_mode_name(AdversarialMode m);

struct AdversarialSpec {
  AdversarialMode mode = AdversarialMode::kNone;
  SimClock::Micros freeze_us = 0;      // rollback/equivocate cutoff (arming time)
  SimClock::Micros window_us = 0;      // replay lag (kReplayWindow only)
  std::uint64_t partition_salt = 0;    // equivocation group assignment
};

/// Which side of an equivocation partition `user_id` lands on (true = the
/// stale/frozen view). FNV-1a, so provider and tests agree on any machine.
bool adversarial_stale_group(const std::string& user_id, std::uint64_t salt);

class FaultSchedule {
 public:
  FaultSchedule(SimClockPtr clock, std::uint64_t seed);

  // ---- permanent entries (back the legacy static flags) ----

  void set_down(bool down) noexcept { down_ = down; }
  bool down() const noexcept { return down_; }
  void set_byzantine(bool byzantine) noexcept { byzantine_ = byzantine; }
  bool byzantine() const noexcept { return byzantine_; }

  // ---- time-varying knobs ----

  /// Adds an outage window [start_us, end_us) in virtual time.
  void add_outage(SimClock::Micros start_us, SimClock::Micros end_us);
  /// Probability that any single operation fails with kUnavailable.
  void set_transient_error_prob(double p) noexcept { transient_error_prob_ = p; }
  /// Probability that any single operation fails with kTimeout.
  void set_timeout_prob(double p) noexcept { timeout_prob_ = p; }
  /// With probability `prob`, an operation's delay is multiplied by `factor`.
  void set_tail_latency(double prob, double factor) noexcept {
    tail_latency_prob_ = prob;
    tail_latency_factor_ = factor;
  }
  /// Probability that a read returns silently corrupted bytes.
  void set_read_corruption_prob(double p) noexcept { read_corruption_prob_ = p; }
  /// Probability that a write stores a truncated prefix and reports failure
  /// (a connection dropped mid-upload).
  void set_partial_write_prob(double p) noexcept { partial_write_prob_ = p; }

  // ---- adversarial serving (no RNG draws; pure configuration) ----

  /// Turns the component malicious from the current virtual instant on.
  /// kRollback / kEquivocate freeze the cutoff at now; kReplayWindow serves
  /// a view lagging by `window_us`. `partition_salt` seeds the equivocation
  /// group split.
  void set_adversarial(AdversarialMode mode, SimClock::Micros window_us = 0,
                       std::uint64_t partition_salt = 0);
  void clear_adversarial() noexcept { adversarial_ = AdversarialSpec{}; }
  const AdversarialSpec& adversarial() const noexcept { return adversarial_; }
  bool adversarial_active() const noexcept {
    return adversarial_.mode != AdversarialMode::kNone;
  }

  /// Forgets every knob and outage window (permanent entries included).
  void clear();

  bool in_outage(SimClock::Micros now_us) const;

  /// Consults the schedule for one operation at the current virtual time.
  /// Draws from the schedule's private RNG stream; deterministic per seed.
  FaultActions on_operation(FaultOp op);

  /// Number of on_operation consultations so far (for tests / debugging).
  std::uint64_t decisions() const noexcept { return decisions_; }

 private:
  SimClockPtr clock_;
  Rng rng_;
  std::vector<OutageWindow> outages_;
  double transient_error_prob_ = 0.0;
  double timeout_prob_ = 0.0;
  double tail_latency_prob_ = 0.0;
  double tail_latency_factor_ = 1.0;
  double read_corruption_prob_ = 0.0;
  double partial_write_prob_ = 0.0;
  bool down_ = false;
  bool byzantine_ = false;
  AdversarialSpec adversarial_;
  std::uint64_t decisions_ = 0;
};

using FaultSchedulePtr = std::shared_ptr<FaultSchedule>;

// ---------------------------------------------------------------- crashes
//
// Client-side process death, as opposed to the cloud-side faults above. A
// CrashSchedule is shared by every layer of one client stack (Scfs close
// path, LogService::append, RecoveryService); each layer announces the named
// point it has just passed via maybe_crash(). When the armed point is hit,
// maybe_crash throws ClientCrash: the in-flight operation unwinds through
// the stack and the owner (agent / recovery service) drops all in-RAM state,
// exactly as a kill -9 between two durable steps would.

/// Named instants of the close / append / recovery pipelines at which the
/// client process can die. The order within one close() is the declaration
/// order: intent journal, file put, log payload put, metadata append.
enum class CrashPoint {
  kBeforeFilePut = 0,   // close(): nothing durable yet (not even the intent)
  kAfterLogIntent,      // intent journaled; neither file nor payload uploaded
  kAfterFilePut,        // file object durable; log pipeline not started
  kAfterLogPayloadPut,  // log payload durable; metadata not committed
  kAfterMetaAppend,     // record tuple committed; aggregates still stale
  kMidRecoverAll,       // recover_all(): between two files
  // Compromise-response pipeline (revocation + keystore rotation). These
  // model the admin workstation dying mid-response; every step before the
  // crash is durable (coordination tuples / cloud floors) and the retried
  // pipeline must converge without double-applying.
  kAfterRevocationFloor,   // floor quorum-committed; no cloud told yet
  kMidFloorPropagation,    // some clouds enforce the floor, others do not
  kAfterRotationRecord,    // rotate record in the chain; keystore still old
  kAfterKeystoreReseal,    // fresh deal published; session key not re-registered
  // Cloud-set reconfiguration pipeline (quarantine -> spare migration). The
  // admin dies between durable steps; the resumed pipeline must converge to
  // bit-identical unit contents on the new cloud set.
  kAfterMembershipManifest,  // new membership CAS-published; no share migrated
  kMidShareMigration,        // some units migrated + stamped, others not
};
inline constexpr std::size_t kCrashPointCount = 12;
/// The close / append / recovery prefix of the enum. The generic crash soak
/// (crash_test, bench_crash_resilience) arms each of these against the
/// standard close workload; the rotation points only fire inside the
/// compromise-response pipeline and have their own soak.
inline constexpr std::size_t kClosePathCrashPointCount = 6;

/// Human-readable name ("after_file_put", ...) for logs and bench output.
const char* crash_point_name(CrashPoint p);

/// Thrown by CrashSchedule::maybe_crash. Deliberately NOT derived from
/// std::exception: generic catch(const std::exception&) blocks must never
/// swallow a simulated process death.
struct ClientCrash {
  CrashPoint point;
};

/// One-shot crash trigger. arm() selects the point (and how many hits of it
/// to let pass first); the matching maybe_crash() call throws ClientCrash
/// and disarms, so the restarted client replays cleanly.
///
/// Hangs model the other way a client goes dark mid-pipeline: a GC pause, a
/// network partition, a stalled VM. arm_hang() stalls the client at a point
/// instead of killing it — the bound clock jumps forward by the hang
/// duration and the pipeline then CONTINUES, oblivious that the world moved
/// on (leases expire, contenders evict). The optional hang hook runs while
/// the client is stalled; multi-client tests use it to interleave a
/// contender's actions (eviction, a competing write) into the hang window.
class CrashSchedule {
 public:
  CrashSchedule() = default;

  /// Arms the schedule: the (skip_hits+1)-th consultation of `point` throws.
  void arm(CrashPoint point, std::uint64_t skip_hits = 0);
  void disarm() noexcept { armed_ = false; }
  bool armed() const noexcept { return armed_; }

  /// Arms a one-shot hang: the (skip_hits+1)-th consultation of `point`
  /// advances the bound clock by `duration_us` and keeps going. Requires
  /// bind_clock() first (throws std::logic_error when it fires unbound).
  void arm_hang(CrashPoint point, SimClock::Micros duration_us,
                std::uint64_t skip_hits = 0);
  void disarm_hang() noexcept { hang_armed_ = false; }
  bool hang_armed() const noexcept { return hang_armed_; }
  /// Clock the hang advances. The schedule keeps only a reference; one
  /// schedule serves every client of one deployment, which shares one clock.
  void bind_clock(SimClockPtr clock) noexcept { clock_ = std::move(clock); }
  /// Runs while a fired hang stalls the client, after the clock jump:
  /// everything the rest of the world did during the stall.
  void set_hang_hook(std::function<void()> hook) { hang_hook_ = std::move(hook); }

  /// Consults the schedule; throws ClientCrash when the armed crash fires.
  /// A fired hang advances the clock (and runs the hook) instead. Counts
  /// every consultation, armed or not (for tests and benches).
  void maybe_crash(CrashPoint point);

  /// Crashes fired so far / the point of the most recent one.
  std::uint64_t crashes() const noexcept { return crashes_; }
  CrashPoint last_crash() const noexcept { return last_crash_; }
  /// Hangs fired so far.
  std::uint64_t hangs() const noexcept { return hangs_; }
  /// Consultations of `point` so far (for choosing skip_hits).
  std::uint64_t hits(CrashPoint point) const;

 private:
  bool armed_ = false;
  CrashPoint armed_point_ = CrashPoint::kBeforeFilePut;
  std::uint64_t skip_remaining_ = 0;
  bool hang_armed_ = false;
  CrashPoint hang_point_ = CrashPoint::kBeforeFilePut;
  SimClock::Micros hang_duration_us_ = 0;
  std::uint64_t hang_skip_remaining_ = 0;
  SimClockPtr clock_;
  std::function<void()> hang_hook_;
  std::uint64_t hit_counts_[kCrashPointCount] = {};
  std::uint64_t crashes_ = 0;
  std::uint64_t hangs_ = 0;
  CrashPoint last_crash_ = CrashPoint::kBeforeFilePut;
};

using CrashSchedulePtr = std::shared_ptr<CrashSchedule>;

}  // namespace rockfs::sim
