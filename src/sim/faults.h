// Deterministic, sim-clock-driven fault injection. One FaultSchedule models
// the time-varying health of a single component (a cloud provider or a
// coordination replica): scheduled outage windows, transient error bursts,
// tail-latency storms, partial-write truncation and intermittent read
// corruption. Components consult the schedule on every operation; decisions
// are drawn from the schedule's own seeded RNG stream, so a fixed seed and
// operation sequence reproduce the exact same fault trace on any machine.
//
// The legacy static fault flags (CloudProvider::set_available /
// set_byzantine, CoordinationService::set_replica_down) are one-line
// wrappers over the schedule's permanent `down` / `byzantine` entries, so
// all existing call sites keep their behavior.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "sim/clock.h"

namespace rockfs::sim {

/// Operation class a component reports when consulting its schedule.
enum class FaultOp {
  kRead,     // data download (eligible for read corruption)
  kWrite,    // data upload (eligible for partial-write truncation)
  kControl,  // metadata / RPC round-trips
};

/// What the faulty environment does to one operation.
struct FaultActions {
  /// kOk = the operation proceeds; kUnavailable / kTimeout = it fails.
  ErrorCode fail = ErrorCode::kOk;
  const char* reason = "";       // human-readable cause for error messages
  double latency_factor = 1.0;   // >1 during a tail-latency storm
  bool corrupt_payload = false;  // reads: bit-flip the returned bytes
  bool truncate_payload = false; // writes: store only a prefix, then fail
};

/// Half-open interval of virtual time during which the component is down.
struct OutageWindow {
  SimClock::Micros start_us = 0;
  SimClock::Micros end_us = 0;
};

class FaultSchedule {
 public:
  FaultSchedule(SimClockPtr clock, std::uint64_t seed);

  // ---- permanent entries (back the legacy static flags) ----

  void set_down(bool down) noexcept { down_ = down; }
  bool down() const noexcept { return down_; }
  void set_byzantine(bool byzantine) noexcept { byzantine_ = byzantine; }
  bool byzantine() const noexcept { return byzantine_; }

  // ---- time-varying knobs ----

  /// Adds an outage window [start_us, end_us) in virtual time.
  void add_outage(SimClock::Micros start_us, SimClock::Micros end_us);
  /// Probability that any single operation fails with kUnavailable.
  void set_transient_error_prob(double p) noexcept { transient_error_prob_ = p; }
  /// Probability that any single operation fails with kTimeout.
  void set_timeout_prob(double p) noexcept { timeout_prob_ = p; }
  /// With probability `prob`, an operation's delay is multiplied by `factor`.
  void set_tail_latency(double prob, double factor) noexcept {
    tail_latency_prob_ = prob;
    tail_latency_factor_ = factor;
  }
  /// Probability that a read returns silently corrupted bytes.
  void set_read_corruption_prob(double p) noexcept { read_corruption_prob_ = p; }
  /// Probability that a write stores a truncated prefix and reports failure
  /// (a connection dropped mid-upload).
  void set_partial_write_prob(double p) noexcept { partial_write_prob_ = p; }
  /// Forgets every knob and outage window (permanent entries included).
  void clear();

  bool in_outage(SimClock::Micros now_us) const;

  /// Consults the schedule for one operation at the current virtual time.
  /// Draws from the schedule's private RNG stream; deterministic per seed.
  FaultActions on_operation(FaultOp op);

  /// Number of on_operation consultations so far (for tests / debugging).
  std::uint64_t decisions() const noexcept { return decisions_; }

 private:
  SimClockPtr clock_;
  Rng rng_;
  std::vector<OutageWindow> outages_;
  double transient_error_prob_ = 0.0;
  double timeout_prob_ = 0.0;
  double tail_latency_prob_ = 0.0;
  double tail_latency_factor_ = 1.0;
  double read_corruption_prob_ = 0.0;
  double partial_write_prob_ = 0.0;
  bool down_ = false;
  bool byzantine_ = false;
  std::uint64_t decisions_ = 0;
};

using FaultSchedulePtr = std::shared_ptr<FaultSchedule>;

}  // namespace rockfs::sim
