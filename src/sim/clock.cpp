#include "sim/clock.h"

#include <stdexcept>

namespace rockfs::sim {

void SimClock::advance_us(Micros us) {
  if (us < 0) throw std::invalid_argument("SimClock::advance_us: negative advance");
  now_us_.fetch_add(us, std::memory_order_relaxed);
}

}  // namespace rockfs::sim
