// Latency composition for simulated distributed operations.
//
// Providers and replicas *compute* delays but never advance the shared clock;
// instead every operation returns its payload wrapped in Timed<T>. The layer
// that owns the end-to-end operation (SCFS close, RockFS close, recovery)
// composes delays — sequential steps add, parallel fan-outs take the max or
// the quorum-th smallest — and advances the clock exactly once. This is what
// lets the simulation reproduce the paper's "file and log uploads run in
// parallel" optimization faithfully.
#pragma once

#include <algorithm>
#include <vector>

#include "sim/clock.h"

namespace rockfs::sim {

template <typename T>
struct Timed {
  T value;
  SimClock::Micros delay = 0;
};

/// Delay after which `quorum` of the parallel branches have completed.
/// With quorum == delays.size() this is the max; an empty vector yields 0.
inline SimClock::Micros quorum_delay(std::vector<SimClock::Micros> delays,
                                     std::size_t quorum) {
  if (delays.empty() || quorum == 0) return 0;
  if (quorum > delays.size()) quorum = delays.size();
  std::nth_element(delays.begin(), delays.begin() + static_cast<std::ptrdiff_t>(quorum - 1),
                   delays.end());
  return delays[quorum - 1];
}

/// Delay after which all parallel branches have completed.
inline SimClock::Micros parallel_delay(const std::vector<SimClock::Micros>& delays) {
  SimClock::Micros max = 0;
  for (const auto d : delays) max = std::max(max, d);
  return max;
}

}  // namespace rockfs::sim
