// Virtual time. Every simulated network interaction advances this clock by a
// deterministic amount, so latency experiments (paper Figs. 5-8) are exactly
// reproducible on any machine, independent of the host's real speed.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

namespace rockfs::sim {

/// Monotonic virtual clock counted in microseconds.
///
/// Concurrency contract: only the coordinator thread advances the clock;
/// pooled fan-out branches may read it (span timestamps) but never advance
/// it — branches return their virtual delays and the coordinator composes
/// them (timed.h quorum_delay) into a single advance after the join. The
/// counter is atomic so those cross-thread reads are well-defined.
class SimClock {
 public:
  using Micros = std::int64_t;

  Micros now_us() const noexcept { return now_us_.load(std::memory_order_relaxed); }
  double now_seconds() const noexcept { return static_cast<double>(now_us()) / 1e6; }

  /// Moves time forward. Negative advances are a bug.
  void advance_us(Micros us);
  void advance_seconds(double s) { advance_us(static_cast<Micros>(s * 1e6)); }

 private:
  std::atomic<Micros> now_us_{0};
};

using SimClockPtr = std::shared_ptr<SimClock>;

/// Measures virtual elapsed time across a scope.
class SimStopwatch {
 public:
  explicit SimStopwatch(SimClockPtr clock)
      : clock_(std::move(clock)), start_us_(clock_->now_us()) {}
  SimClock::Micros elapsed_us() const { return clock_->now_us() - start_us_; }
  double elapsed_seconds() const { return static_cast<double>(elapsed_us()) / 1e6; }

 private:
  SimClockPtr clock_;
  SimClock::Micros start_us_;
};

}  // namespace rockfs::sim
