// Deterministic WAN link model: latency = rtt/2 + bytes/bandwidth (+ jitter).
// Calibrated in DESIGN.md §5 against the paper's London-client / Ireland-S3 /
// Belgium-GCE testbed so the reproduced figures land in the right decade.
#pragma once

#include <cstdint>
#include <string>

#include "common/rng.h"
#include "sim/clock.h"

namespace rockfs::sim {

/// Static description of one client<->provider WAN path.
struct LinkProfile {
  std::string name;
  std::int64_t rtt_us = 25'000;           // round-trip time
  double up_bytes_per_sec = 2.5e6;        // client -> provider
  double down_bytes_per_sec = 6.0e6;      // provider -> client
  double jitter_frac = 0.03;              // relative stddev applied to each delay
  std::int64_t request_overhead_us = 3'000;  // per-request server-side cost

  /// Paper-like profiles (DESIGN.md §5 calibration).
  static LinkProfile s3_like(const std::string& name);
  static LinkProfile coordination_like(const std::string& name);
  static LinkProfile local_like(const std::string& name);
};

/// Computes per-operation delays and advances the shared virtual clock.
class NetworkModel {
 public:
  NetworkModel(SimClockPtr clock, LinkProfile profile, std::uint64_t jitter_seed);

  /// Delay of an upload carrying `bytes` of payload (includes one rtt).
  SimClock::Micros upload_delay_us(std::size_t bytes);

  /// Delay of a download returning `bytes` of payload (includes one rtt).
  SimClock::Micros download_delay_us(std::size_t bytes);

  /// Delay of a small metadata round trip.
  SimClock::Micros rpc_delay_us(std::size_t request_bytes, std::size_t response_bytes);

  /// Advances the clock as if the given transfer just happened, returns the delay.
  SimClock::Micros charge_upload(std::size_t bytes);
  SimClock::Micros charge_download(std::size_t bytes);
  SimClock::Micros charge_rpc(std::size_t request_bytes, std::size_t response_bytes);

  const LinkProfile& profile() const noexcept { return profile_; }
  const SimClockPtr& clock() const noexcept { return clock_; }

 private:
  SimClock::Micros jitter(SimClock::Micros base);

  SimClockPtr clock_;
  LinkProfile profile_;
  Rng rng_;
};

/// Upload/download byte accounting per provider, for the §6.4 traffic models.
class TrafficMeter {
 public:
  void add_upload(std::size_t bytes) noexcept { uploaded_ += bytes; }
  void add_download(std::size_t bytes) noexcept { downloaded_ += bytes; }
  std::uint64_t uploaded_bytes() const noexcept { return uploaded_; }
  std::uint64_t downloaded_bytes() const noexcept { return downloaded_; }
  void reset() noexcept { uploaded_ = downloaded_ = 0; }

 private:
  std::uint64_t uploaded_ = 0;
  std::uint64_t downloaded_ = 0;
};

}  // namespace rockfs::sim
