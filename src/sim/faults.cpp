#include "sim/faults.h"

#include <stdexcept>

namespace rockfs::sim {

FaultSchedule::FaultSchedule(SimClockPtr clock, std::uint64_t seed)
    : clock_(std::move(clock)), rng_(seed ^ 0x9E3779B97F4A7C15ULL) {
  if (!clock_) throw std::invalid_argument("FaultSchedule: null clock");
}

void FaultSchedule::add_outage(SimClock::Micros start_us, SimClock::Micros end_us) {
  if (end_us <= start_us) {
    throw std::invalid_argument("FaultSchedule: outage window must have end > start");
  }
  outages_.push_back({start_us, end_us});
}

void FaultSchedule::clear() {
  outages_.clear();
  transient_error_prob_ = timeout_prob_ = 0.0;
  tail_latency_prob_ = read_corruption_prob_ = partial_write_prob_ = 0.0;
  tail_latency_factor_ = 1.0;
  down_ = byzantine_ = false;
  adversarial_ = AdversarialSpec{};
}

const char* adversarial_mode_name(AdversarialMode m) {
  switch (m) {
    case AdversarialMode::kNone: return "none";
    case AdversarialMode::kRollback: return "rollback";
    case AdversarialMode::kEquivocate: return "equivocate";
    case AdversarialMode::kWithholdShares: return "withhold_shares";
    case AdversarialMode::kReplayWindow: return "replay_window";
  }
  return "unknown";
}

bool adversarial_stale_group(const std::string& user_id, std::uint64_t salt) {
  // FNV-1a (not std::hash: the split must be identical on every machine and
  // standard library).
  std::uint64_t h = 14695981039346656037ULL ^ salt;
  for (unsigned char c : user_id) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  // Fold the high bits down so the salt actually influences the decision bit.
  h ^= h >> 33;
  return (h & 1) != 0;
}

void FaultSchedule::set_adversarial(AdversarialMode mode,
                                    SimClock::Micros window_us,
                                    std::uint64_t partition_salt) {
  adversarial_.mode = mode;
  adversarial_.freeze_us = clock_->now_us();
  adversarial_.window_us = window_us;
  adversarial_.partition_salt = partition_salt;
}

bool FaultSchedule::in_outage(SimClock::Micros now_us) const {
  for (const auto& w : outages_) {
    if (now_us >= w.start_us && now_us < w.end_us) return true;
  }
  return false;
}

FaultActions FaultSchedule::on_operation(FaultOp op) {
  ++decisions_;
  FaultActions actions;
  if (down_ || in_outage(clock_->now_us())) {
    actions.fail = ErrorCode::kUnavailable;
    actions.reason = down_ ? "provider down" : "outage window";
    return actions;
  }
  // Draw every probabilistic knob unconditionally so the RNG stream consumed
  // per operation is fixed — toggling one knob never perturbs the draws (and
  // thus the fault trace) of the others.
  const double transient_draw = rng_.next_double();
  const double timeout_draw = rng_.next_double();
  const double tail_draw = rng_.next_double();
  const double payload_draw = rng_.next_double();
  if (tail_latency_prob_ > 0.0 && tail_draw < tail_latency_prob_) {
    actions.latency_factor = tail_latency_factor_;
  }
  if (transient_error_prob_ > 0.0 && transient_draw < transient_error_prob_) {
    actions.fail = ErrorCode::kUnavailable;
    actions.reason = "transient error";
    return actions;
  }
  if (timeout_prob_ > 0.0 && timeout_draw < timeout_prob_) {
    actions.fail = ErrorCode::kTimeout;
    actions.reason = "request timed out";
    return actions;
  }
  if (op == FaultOp::kRead) {
    actions.corrupt_payload =
        byzantine_ ||
        (read_corruption_prob_ > 0.0 && payload_draw < read_corruption_prob_);
  } else if (op == FaultOp::kWrite) {
    if (partial_write_prob_ > 0.0 && payload_draw < partial_write_prob_) {
      // The connection drops mid-upload: a truncated object lands on the
      // provider and the client sees a transport failure.
      actions.truncate_payload = true;
      actions.fail = ErrorCode::kUnavailable;
      actions.reason = "connection reset mid-upload";
    }
  }
  return actions;
}

const char* crash_point_name(CrashPoint p) {
  switch (p) {
    case CrashPoint::kBeforeFilePut: return "before_file_put";
    case CrashPoint::kAfterLogIntent: return "after_log_intent";
    case CrashPoint::kAfterFilePut: return "after_file_put";
    case CrashPoint::kAfterLogPayloadPut: return "after_log_payload_put";
    case CrashPoint::kAfterMetaAppend: return "after_meta_append";
    case CrashPoint::kMidRecoverAll: return "mid_recover_all";
    case CrashPoint::kAfterRevocationFloor: return "after_revocation_floor";
    case CrashPoint::kMidFloorPropagation: return "mid_floor_propagation";
    case CrashPoint::kAfterRotationRecord: return "after_rotation_record";
    case CrashPoint::kAfterKeystoreReseal: return "after_keystore_reseal";
    case CrashPoint::kAfterMembershipManifest: return "after_membership_manifest";
    case CrashPoint::kMidShareMigration: return "mid_share_migration";
  }
  return "unknown";
}

void CrashSchedule::arm(CrashPoint point, std::uint64_t skip_hits) {
  armed_ = true;
  armed_point_ = point;
  skip_remaining_ = skip_hits;
}

std::uint64_t CrashSchedule::hits(CrashPoint point) const {
  return hit_counts_[static_cast<std::size_t>(point)];
}

void CrashSchedule::arm_hang(CrashPoint point, SimClock::Micros duration_us,
                             std::uint64_t skip_hits) {
  hang_armed_ = true;
  hang_point_ = point;
  hang_duration_us_ = duration_us;
  hang_skip_remaining_ = skip_hits;
}

void CrashSchedule::maybe_crash(CrashPoint point) {
  ++hit_counts_[static_cast<std::size_t>(point)];
  if (hang_armed_ && point == hang_point_) {
    if (hang_skip_remaining_ > 0) {
      --hang_skip_remaining_;
    } else {
      hang_armed_ = false;
      if (!clock_) throw std::logic_error("CrashSchedule: hang fired with no clock bound");
      clock_->advance_us(hang_duration_us_);
      ++hangs_;
      // The stalled client is oblivious; the rest of the world is not.
      if (hang_hook_) hang_hook_();
    }
  }
  if (!armed_ || point != armed_point_) return;
  if (skip_remaining_ > 0) {
    --skip_remaining_;
    return;
  }
  armed_ = false;
  ++crashes_;
  last_crash_ = point;
  throw ClientCrash{point};
}

}  // namespace rockfs::sim
