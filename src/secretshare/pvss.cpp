#include "secretshare/pvss.h"

#include <stdexcept>

#include "common/executor.h"
#include "crypto/sha256.h"

namespace rockfs::secretshare {

using crypto::Point;
using crypto::Uint256;

namespace {

Uint256 dleq_challenge(const Point& g1, const Point& h1, const Point& g2, const Point& h2,
                       const Point& a1, const Point& a2) {
  const Bytes input = concat({crypto::point_encode(g1), crypto::point_encode(h1),
                              crypto::point_encode(g2), crypto::point_encode(h2),
                              crypto::point_encode(a1), crypto::point_encode(a2)});
  return crypto::scalar_from_bytes(crypto::sha256(input));
}

// X_i = sum_j index^j * C_j = p(index) * G, derived publicly from commitments.
Point commitment_eval(const std::vector<Point>& commitments, std::size_t index) {
  Point acc;  // identity
  Uint256 x_pow(1);
  const Uint256 x(index);
  for (const Point& c : commitments) {
    acc = crypto::point_add(acc, crypto::scalar_mul(x_pow, c));
    x_pow = crypto::scalar_mul_mod_n(x_pow, x);
  }
  return acc;
}

void append_point(Bytes& out, const Point& p) { append_lp(out, crypto::point_encode(p)); }

Point read_point(BytesView b, std::size_t* off) {
  return crypto::point_decode(read_lp(b, off));
}

void append_proof(Bytes& out, const DleqProof& proof) {
  append(out, proof.c.to_bytes_be());
  append(out, proof.r.to_bytes_be());
}

DleqProof read_proof(BytesView b, std::size_t* off) {
  if (*off + 64 > b.size()) throw std::out_of_range("dleq proof truncated");
  DleqProof p;
  p.c = Uint256::from_bytes_be(b.subspan(*off, 32));
  p.r = Uint256::from_bytes_be(b.subspan(*off + 32, 32));
  *off += 64;
  return p;
}

}  // namespace

DleqProof dleq_prove(const Point& g1, const Point& h1, const Point& g2, const Point& h2,
                     const Uint256& witness, crypto::Drbg& drbg) {
  return dleq_prove_with_nonce(g1, h1, g2, h2, witness,
                               crypto::scalar_from_bytes(drbg.generate(32)));
}

DleqProof dleq_prove_with_nonce(const Point& g1, const Point& h1, const Point& g2,
                                const Point& h2, const Uint256& witness,
                                const Uint256& nonce) {
  const Point a1 = crypto::scalar_mul(nonce, g1);
  const Point a2 = crypto::scalar_mul(nonce, g2);
  DleqProof proof;
  proof.c = dleq_challenge(g1, h1, g2, h2, a1, a2);
  proof.r = crypto::scalar_sub(nonce, crypto::scalar_mul_mod_n(proof.c, witness));
  return proof;
}

bool dleq_verify(const Point& g1, const Point& h1, const Point& g2, const Point& h2,
                 const DleqProof& proof) {
  // a1' = r*g1 + c*h1, a2' = r*g2 + c*h2 must hash back to c.
  const Point a1 = crypto::point_add(crypto::scalar_mul(proof.r, g1),
                                     crypto::scalar_mul(proof.c, h1));
  const Point a2 = crypto::point_add(crypto::scalar_mul(proof.r, g2),
                                     crypto::scalar_mul(proof.c, h2));
  return dleq_challenge(g1, h1, g2, h2, a1, a2) == proof.c;
}

PvssDeal pvss_share(const Uint256& secret, const std::vector<Point>& participant_keys,
                    std::size_t k, crypto::Drbg& drbg, common::Executor* exec) {
  const std::size_t n = participant_keys.size();
  if (k == 0 || k > n) throw std::invalid_argument("pvss_share: need 1 <= k <= n");

  // Random degree-(k-1) polynomial over Z_n with p(0) = secret.
  std::vector<Uint256> coeffs(k);
  coeffs[0] = secret;
  for (std::size_t j = 1; j < k; ++j) {
    coeffs[j] = crypto::scalar_from_bytes(drbg.generate(32));
  }

  PvssDeal deal;
  deal.k = k;
  deal.commitments.reserve(k);
  for (const Uint256& a : coeffs) deal.commitments.push_back(crypto::scalar_mul_base(a));

  // Pre-draw the per-share DLEQ nonces in index order — the same DRBG
  // stream the sequential loop used to consume — so the per-share scalar
  // work below can run concurrently without touching the DRBG.
  std::vector<Uint256> nonces(n);
  for (std::size_t i = 0; i < n; ++i) {
    nonces[i] = crypto::scalar_from_bytes(drbg.generate(32));
  }

  deal.shares.resize(n);
  common::parallel_for_index(exec, n, [&](std::size_t idx) {
    const std::size_t i = idx + 1;
    // s_i = p(i) via Horner over Z_n.
    Uint256 si(0);
    for (std::size_t j = k; j > 0; --j) {
      si = crypto::scalar_add(crypto::scalar_mul_mod_n(si, Uint256(i)), coeffs[j - 1]);
    }
    const Point& pk = participant_keys[idx];
    PvssEncryptedShare share;
    share.index = i;
    share.y = crypto::scalar_mul(si, pk);
    const Point xi = crypto::scalar_mul_base(si);
    share.proof = dleq_prove_with_nonce(crypto::generator(), xi, pk, share.y, si, nonces[idx]);
    deal.shares[idx] = std::move(share);
  });
  return deal;
}

bool pvss_verify_deal(const PvssDeal& deal, const std::vector<Point>& participant_keys) {
  if (deal.k == 0 || deal.commitments.size() != deal.k) return false;
  if (deal.shares.size() != participant_keys.size()) return false;
  for (const Point& c : deal.commitments) {
    if (!crypto::on_curve(c)) return false;
  }
  for (std::size_t i = 0; i < deal.shares.size(); ++i) {
    const PvssEncryptedShare& share = deal.shares[i];
    if (share.index != i + 1) return false;
    const Point xi = commitment_eval(deal.commitments, share.index);
    if (!dleq_verify(crypto::generator(), xi, participant_keys[i], share.y, share.proof)) {
      return false;
    }
  }
  return true;
}

Result<PvssDecryptedShare> pvss_decrypt_share(const PvssDeal& deal, std::size_t index,
                                              const crypto::KeyPair& participant,
                                              crypto::Drbg& drbg) {
  if (index == 0 || index > deal.shares.size()) {
    return Error{ErrorCode::kInvalidArgument, "pvss_decrypt_share: bad index"};
  }
  const PvssEncryptedShare& enc = deal.shares[index - 1];
  // Y_i = s_i * (x_i * G) so s_i * G = x_i^{-1} * Y_i.
  const Uint256 x_inv = crypto::scalar_inv(participant.private_key);
  PvssDecryptedShare dec;
  dec.index = index;
  dec.s = crypto::scalar_mul(x_inv, enc.y);
  // Prove log_G(P_i) == log_{S_i}(Y_i) (same x_i), publicly checkable.
  dec.proof = dleq_prove(crypto::generator(), participant.public_key, dec.s, enc.y,
                         participant.private_key, drbg);
  return dec;
}

bool pvss_verify_decrypted(const PvssDeal& deal, const PvssDecryptedShare& share,
                           const Point& participant_key) {
  if (share.index == 0 || share.index > deal.shares.size()) return false;
  const PvssEncryptedShare& enc = deal.shares[share.index - 1];
  if (!crypto::on_curve(share.s) || share.s.infinity) return false;
  return dleq_verify(crypto::generator(), participant_key, share.s, enc.y, share.proof);
}

Result<Point> pvss_combine(const std::vector<PvssDecryptedShare>& shares, std::size_t k) {
  if (k == 0) return Error{ErrorCode::kInvalidArgument, "pvss_combine: k == 0"};
  std::vector<const PvssDecryptedShare*> chosen;
  std::vector<bool> seen(256, false);
  for (const auto& s : shares) {
    if (s.index == 0 || s.index >= seen.size() || seen[s.index]) continue;
    seen[s.index] = true;
    chosen.push_back(&s);
    if (chosen.size() == k) break;
  }
  if (chosen.size() < k) {
    return Error{ErrorCode::kInvalidArgument, "pvss_combine: fewer than k distinct shares"};
  }

  // Lagrange at 0 over Z_n, then combine in the exponent.
  Point acc;
  for (std::size_t i = 0; i < k; ++i) {
    Uint256 num(1), den(1);
    const Uint256 xi(chosen[i]->index);
    for (std::size_t j = 0; j < k; ++j) {
      if (i == j) continue;
      const Uint256 xj(chosen[j]->index);
      num = crypto::scalar_mul_mod_n(num, xj);
      den = crypto::scalar_mul_mod_n(den, crypto::scalar_sub(xj, xi));
    }
    const Uint256 lambda = crypto::scalar_mul_mod_n(num, crypto::scalar_inv(den));
    acc = crypto::point_add(acc, crypto::scalar_mul(lambda, chosen[i]->s));
  }
  return acc;
}

Point pvss_public_secret(const Uint256& secret) { return crypto::scalar_mul_base(secret); }

Bytes pvss_secret_key(const Point& s_times_g) {
  return crypto::sha256(crypto::point_encode(s_times_g));
}

// ---------------------------------------------------------------- encoding

Bytes PvssDeal::serialize() const {
  Bytes out;
  append_u32(out, static_cast<std::uint32_t>(k));
  append_u32(out, static_cast<std::uint32_t>(commitments.size()));
  for (const Point& c : commitments) append_point(out, c);
  append_u32(out, static_cast<std::uint32_t>(shares.size()));
  for (const PvssEncryptedShare& s : shares) {
    append_u32(out, static_cast<std::uint32_t>(s.index));
    append_point(out, s.y);
    append_proof(out, s.proof);
  }
  return out;
}

Result<PvssDeal> PvssDeal::deserialize(BytesView b) {
  try {
    PvssDeal deal;
    std::size_t off = 0;
    deal.k = read_u32(b, off);
    off += 4;
    const std::uint32_t num_commitments = read_u32(b, off);
    off += 4;
    for (std::uint32_t i = 0; i < num_commitments; ++i) {
      deal.commitments.push_back(read_point(b, &off));
    }
    const std::uint32_t num_shares = read_u32(b, off);
    off += 4;
    for (std::uint32_t i = 0; i < num_shares; ++i) {
      PvssEncryptedShare s;
      s.index = read_u32(b, off);
      off += 4;
      s.y = read_point(b, &off);
      s.proof = read_proof(b, &off);
      deal.shares.push_back(std::move(s));
    }
    if (off != b.size()) return Error{ErrorCode::kCorrupted, "pvss deal: trailing bytes"};
    return deal;
  } catch (const std::exception& e) {
    return Error{ErrorCode::kCorrupted, std::string("pvss deal: ") + e.what()};
  }
}

Bytes PvssDecryptedShare::serialize() const {
  Bytes out;
  append_u32(out, static_cast<std::uint32_t>(index));
  append_point(out, s);
  append_proof(out, proof);
  return out;
}

Result<PvssDecryptedShare> PvssDecryptedShare::deserialize(BytesView b) {
  try {
    PvssDecryptedShare share;
    std::size_t off = 0;
    share.index = read_u32(b, off);
    off += 4;
    share.s = read_point(b, &off);
    share.proof = read_proof(b, &off);
    if (off != b.size()) {
      return Error{ErrorCode::kCorrupted, "pvss decrypted share: trailing bytes"};
    }
    return share;
  } catch (const std::exception& e) {
    return Error{ErrorCode::kCorrupted, std::string("pvss decrypted share: ") + e.what()};
  }
}

}  // namespace rockfs::secretshare
