// Publicly Verifiable Secret Sharing after Schoenmakers (CRYPTO'99), over
// secp256k1. The dealer shares a scalar secret s among n participants with
// threshold k; every share is encrypted to its participant's public key and
// carries a DLEQ proof, so *anyone* can check that the dealer distributed
// consistent shares (verifyD) and that a participant's decrypted share is
// genuine (verifyS) -- without learning anything about s.
//
// Reconstruction yields the group element s*G; the RockFS keystore derives
// its AES key as H(s*G) (pvss_secret_key), which the dealer also knows.
//
// Paper mapping (§4.1): share/combine/verifyD/verifyS.
#pragma once

#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "crypto/drbg.h"
#include "crypto/secp256k1.h"
#include "crypto/signature.h"

namespace rockfs::common {
class Executor;
}

namespace rockfs::secretshare {

/// Chaum-Pedersen proof that log_{g1}(h1) == log_{g2}(h2).
struct DleqProof {
  crypto::Uint256 c;  // challenge
  crypto::Uint256 r;  // response
};

DleqProof dleq_prove(const crypto::Point& g1, const crypto::Point& h1,
                     const crypto::Point& g2, const crypto::Point& h2,
                     const crypto::Uint256& witness, crypto::Drbg& drbg);

/// Same proof with the commitment nonce supplied by the caller. Lets a
/// dealer pre-draw every nonce from the DRBG in a fixed order and then build
/// the proofs concurrently without the DRBG stream depending on scheduling.
DleqProof dleq_prove_with_nonce(const crypto::Point& g1, const crypto::Point& h1,
                                const crypto::Point& g2, const crypto::Point& h2,
                                const crypto::Uint256& witness,
                                const crypto::Uint256& nonce);

bool dleq_verify(const crypto::Point& g1, const crypto::Point& h1, const crypto::Point& g2,
                 const crypto::Point& h2, const DleqProof& proof);

/// Share of participant `index` (1-based), encrypted to their public key.
struct PvssEncryptedShare {
  std::size_t index = 0;
  crypto::Point y;  // p(index) * P_index
  DleqProof proof;  // log_G(X_index) == log_{P_index}(y)
};

/// Everything the dealer publishes.
struct PvssDeal {
  std::size_t k = 0;                          // threshold
  std::vector<crypto::Point> commitments;     // C_j = a_j * G, j = 0..k-1
  std::vector<PvssEncryptedShare> shares;     // one per participant

  Bytes serialize() const;
  static Result<PvssDeal> deserialize(BytesView b);
};

/// A participant's decrypted share with its correctness proof.
struct PvssDecryptedShare {
  std::size_t index = 0;
  crypto::Point s;  // p(index) * G
  DleqProof proof;  // log_G(P_index) == log_s(Y_index)

  Bytes serialize() const;
  static Result<PvssDecryptedShare> deserialize(BytesView b);
};

/// `share`: dealer splits `secret` among the holders of `participant_keys`.
/// All DRBG draws (coefficients, then one DLEQ nonce per share in index
/// order) happen up front on the calling thread; the per-share scalar
/// multiplications and proofs then run on `exec` when given, producing a
/// byte-identical deal at any thread count.
PvssDeal pvss_share(const crypto::Uint256& secret,
                    const std::vector<crypto::Point>& participant_keys, std::size_t k,
                    crypto::Drbg& drbg, common::Executor* exec = nullptr);

/// `verifyD`: checks the whole deal (commitment consistency + every DLEQ).
bool pvss_verify_deal(const PvssDeal& deal,
                      const std::vector<crypto::Point>& participant_keys);

/// Participant `index` decrypts its share and proves it did so honestly.
Result<PvssDecryptedShare> pvss_decrypt_share(const PvssDeal& deal, std::size_t index,
                                              const crypto::KeyPair& participant,
                                              crypto::Drbg& drbg);

/// `verifyS`: checks one decrypted share against the deal.
bool pvss_verify_decrypted(const PvssDeal& deal, const PvssDecryptedShare& share,
                           const crypto::Point& participant_key);

/// `combine`: Lagrange interpolation in the exponent; needs >= k valid shares.
Result<crypto::Point> pvss_combine(const std::vector<PvssDecryptedShare>& shares,
                                   std::size_t k);

/// Expected reconstruction result for a given secret (dealer side).
crypto::Point pvss_public_secret(const crypto::Uint256& secret);

/// Symmetric key derived from the reconstructed group element: SHA-256(enc(s*G)).
Bytes pvss_secret_key(const crypto::Point& s_times_g);

}  // namespace rockfs::secretshare
