#include "secretshare/shamir.h"

#include <stdexcept>

#include "gf/gf256.h"

namespace rockfs::secretshare {

Bytes ShamirShare::serialize() const {
  Bytes out;
  out.reserve(1 + y.size());
  out.push_back(x);
  append(out, y);
  return out;
}

Result<ShamirShare> ShamirShare::deserialize(BytesView b) {
  if (b.empty()) return Error{ErrorCode::kCorrupted, "shamir share: empty"};
  ShamirShare s;
  s.x = b[0];
  if (s.x == 0) return Error{ErrorCode::kCorrupted, "shamir share: x must be nonzero"};
  s.y.assign(b.begin() + 1, b.end());
  return s;
}

std::vector<ShamirShare> shamir_share(BytesView secret, std::size_t k, std::size_t n,
                                      crypto::Drbg& drbg) {
  if (k == 0 || k > n || n > 255) {
    throw std::invalid_argument("shamir_share: need 1 <= k <= n <= 255");
  }
  std::vector<ShamirShare> shares(n);
  for (std::size_t i = 0; i < n; ++i) {
    shares[i].x = static_cast<std::uint8_t>(i + 1);
    shares[i].y.assign(secret.size(), 0);
  }
  // Independent random degree-(k-1) polynomial per secret byte.
  for (std::size_t pos = 0; pos < secret.size(); ++pos) {
    Bytes coeffs = drbg.generate(k);
    coeffs[0] = secret[pos];
    for (std::size_t i = 0; i < n; ++i) {
      shares[i].y[pos] = gf::poly_eval(coeffs, shares[i].x);
    }
  }
  return shares;
}

Result<Bytes> shamir_combine(const std::vector<ShamirShare>& shares, std::size_t k) {
  if (k == 0) return Error{ErrorCode::kInvalidArgument, "shamir_combine: k == 0"};
  // Collect k distinct-x shares with consistent length.
  std::vector<const ShamirShare*> chosen;
  bool seen[256] = {};
  for (const auto& s : shares) {
    if (s.x == 0 || seen[s.x]) continue;
    if (!chosen.empty() && s.y.size() != chosen.front()->y.size()) {
      return Error{ErrorCode::kInvalidArgument, "shamir_combine: share length mismatch"};
    }
    seen[s.x] = true;
    chosen.push_back(&s);
    if (chosen.size() == k) break;
  }
  if (chosen.size() < k) {
    return Error{ErrorCode::kInvalidArgument, "shamir_combine: fewer than k distinct shares"};
  }

  // Lagrange basis at x=0: l_i = prod_{j != i} x_j / (x_j - x_i); in GF(2^8)
  // subtraction is xor.
  std::vector<std::uint8_t> lagrange(k);
  for (std::size_t i = 0; i < k; ++i) {
    std::uint8_t num = 1, den = 1;
    for (std::size_t j = 0; j < k; ++j) {
      if (i == j) continue;
      num = gf::mul(num, chosen[j]->x);
      den = gf::mul(den, static_cast<std::uint8_t>(chosen[j]->x ^ chosen[i]->x));
    }
    lagrange[i] = gf::div(num, den);
  }

  const std::size_t len = chosen.front()->y.size();
  Bytes secret(len, 0);
  for (std::size_t pos = 0; pos < len; ++pos) {
    std::uint8_t acc = 0;
    for (std::size_t i = 0; i < k; ++i) acc ^= gf::mul(lagrange[i], chosen[i]->y[pos]);
    secret[pos] = acc;
  }
  return secret;
}

Result<ShamirShare> shamir_interpolate_share(const std::vector<ShamirShare>& shares,
                                             std::size_t k, std::uint8_t x_target) {
  if (x_target == 0) {
    return Error{ErrorCode::kInvalidArgument, "interpolate: x=0 is the secret"};
  }
  // Collect k distinct shares (as in combine).
  std::vector<const ShamirShare*> chosen;
  bool seen[256] = {};
  for (const auto& s : shares) {
    if (s.x == 0 || seen[s.x]) continue;
    if (!chosen.empty() && s.y.size() != chosen.front()->y.size()) {
      return Error{ErrorCode::kInvalidArgument, "interpolate: share length mismatch"};
    }
    if (s.x == x_target) return s;  // already have it
    seen[s.x] = true;
    chosen.push_back(&s);
    if (chosen.size() == k) break;
  }
  if (chosen.size() < k) {
    return Error{ErrorCode::kInvalidArgument, "interpolate: fewer than k distinct shares"};
  }

  // Lagrange basis at x_target.
  std::vector<std::uint8_t> lagrange(k);
  for (std::size_t i = 0; i < k; ++i) {
    std::uint8_t num = 1, den = 1;
    for (std::size_t j = 0; j < k; ++j) {
      if (i == j) continue;
      num = gf::mul(num, static_cast<std::uint8_t>(x_target ^ chosen[j]->x));
      den = gf::mul(den, static_cast<std::uint8_t>(chosen[i]->x ^ chosen[j]->x));
    }
    lagrange[i] = gf::div(num, den);
  }

  ShamirShare out;
  out.x = x_target;
  out.y.assign(chosen.front()->y.size(), 0);
  for (std::size_t pos = 0; pos < out.y.size(); ++pos) {
    std::uint8_t acc = 0;
    for (std::size_t i = 0; i < k; ++i) acc ^= gf::mul(lagrange[i], chosen[i]->y[pos]);
    out.y[pos] = acc;
  }
  return out;
}

}  // namespace rockfs::secretshare
