// Shamir secret sharing over GF(2^8), byte-wise: splits an arbitrary-length
// secret into n shares of which any k reconstruct it and any k-1 reveal
// nothing. DepSky's CA protocol uses this for the per-file encryption keys
// (paper §5.1); the RockFS keystore uses PVSS (pvss.h) which adds public
// verifiability on top.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "crypto/drbg.h"

namespace rockfs::secretshare {

struct ShamirShare {
  std::uint8_t x = 0;  // evaluation point, 1..n (never 0: that's the secret)
  Bytes y;             // one field element per secret byte

  /// Canonical serialization: x byte followed by y.
  Bytes serialize() const;
  static Result<ShamirShare> deserialize(BytesView b);
};

/// Splits `secret` into n shares with threshold k (k of n reconstruct).
/// Requires 1 <= k <= n <= 255.
std::vector<ShamirShare> shamir_share(BytesView secret, std::size_t k, std::size_t n,
                                      crypto::Drbg& drbg);

/// Reconstructs the secret from >= k distinct shares of consistent length.
Result<Bytes> shamir_combine(const std::vector<ShamirShare>& shares, std::size_t k);

/// Re-derives the share at `x_target` from >= k known shares by byte-wise
/// Lagrange interpolation (the degree-(k-1) polynomial is fully determined
/// by any k points). Used by DepSky's repair to re-create a lost cloud's
/// key share without re-dealing.
Result<ShamirShare> shamir_interpolate_share(const std::vector<ShamirShare>& shares,
                                             std::size_t k, std::uint8_t x_target);

}  // namespace rockfs::secretshare
