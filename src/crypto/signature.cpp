#include "crypto/signature.h"

#include <stdexcept>

#include "crypto/hmac.h"
#include "crypto/sha256.h"

namespace rockfs::crypto {

namespace {

// Challenge scalar e = H(R || P || m) mod n.
Uint256 challenge(const Point& r, const Point& pub, BytesView message) {
  const Bytes input = concat({point_encode(r), point_encode(pub), message});
  return scalar_from_bytes(sha256(input));
}

}  // namespace

KeyPair generate_keypair(Drbg& drbg) {
  for (;;) {
    const Uint256 x = scalar_from_bytes(drbg.generate(32));
    if (x.is_zero()) continue;
    return {x, scalar_mul_base(x)};
  }
}

KeyPair keypair_from_private(BytesView private_be32) {
  const Uint256 x = scalar_from_bytes(private_be32);
  if (x.is_zero()) throw std::invalid_argument("keypair_from_private: zero scalar");
  return {x, scalar_mul_base(x)};
}

Bytes sign(const KeyPair& key, BytesView message) {
  // Deterministic nonce: k = HMAC(priv, msg || counter) mod n, retry on 0.
  const Bytes priv = key.private_key.to_bytes_be();
  for (std::uint32_t counter = 0;; ++counter) {
    Bytes nonce_input(message.begin(), message.end());
    append_u32(nonce_input, counter);
    const Uint256 k = scalar_from_bytes(hmac_sha256(priv, nonce_input));
    if (k.is_zero()) continue;
    const Point r = scalar_mul_base(k);
    const Uint256 e = challenge(r, key.public_key, message);
    const Uint256 s = scalar_add(k, scalar_mul_mod_n(e, key.private_key));
    Bytes sig = point_encode(r);
    append(sig, s.to_bytes_be());
    return sig;
  }
}

bool verify(const Point& public_key, BytesView message, BytesView signature) {
  if (signature.size() != kSignatureSize) return false;
  Point r;
  try {
    r = point_decode(signature.subspan(0, 65));
  } catch (const std::invalid_argument&) {
    return false;
  }
  if (r.infinity) return false;
  const Uint256 s = Uint256::from_bytes_be(signature.subspan(65, 32));
  if (s >= curve_n()) return false;
  const Uint256 e = challenge(r, public_key, message);
  // Check s*G == R + e*P.
  const Point lhs = scalar_mul_base(s);
  const Point rhs = point_add(r, scalar_mul(e, public_key));
  return lhs == rhs;
}

bool verify(BytesView public_key_bytes, BytesView message, BytesView signature) {
  try {
    return verify(point_decode(public_key_bytes), message, signature);
  } catch (const std::invalid_argument&) {
    return false;
  }
}

}  // namespace rockfs::crypto
