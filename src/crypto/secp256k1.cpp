#include "crypto/secp256k1.h"

#include <stdexcept>

namespace rockfs::crypto {

namespace {

const Uint256 kP = Uint256::from_hex(
    "fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f");
const Uint256 kN = Uint256::from_hex(
    "fffffffffffffffffffffffffffffffebaaedce6af48a03bbfd25e8cd0364141");
const Uint256 kGx = Uint256::from_hex(
    "79be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798");
const Uint256 kGy = Uint256::from_hex(
    "483ada7726a3c4655da4fbfc0e1108a8fd17b448a68554199c47d08ffb10d4b8");

// p = 2^256 - kC, kC = 2^32 + 977.
const Uint256 kC(0x1000003D1ULL);

// Fast reduction modulo p: t = high*2^256 + low === high*kC + low (mod p).
Uint256 fe_reduce(const Uint512& t) {
  Uint512 acc = t;
  // Two folds bring the value under ~2^257, then conditional subtractions finish.
  for (int round = 0; round < 2; ++round) {
    const Uint256 high = acc.high();
    const Uint256 low = acc.low();
    if (high.is_zero()) break;
    const Uint512 folded = mul_wide(high, kC);
    // acc = folded + low.
    Uint512 sum{};
    std::uint64_t carry = 0;
    for (int i = 0; i < 8; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      const unsigned __int128 s =
          static_cast<unsigned __int128>(folded.limb[idx]) +
          (i < 4 ? low.limb[idx] : 0) + carry;
      sum.limb[idx] = static_cast<std::uint64_t>(s);
      carry = static_cast<std::uint64_t>(s >> 64);
    }
    acc = sum;
  }
  // After two folds the high part is at most 1; one more scalar fold if needed.
  Uint256 r = acc.low();
  if (!acc.high().is_zero()) {
    // acc.high() can only be a tiny value; fold it as high*kC.
    const Uint512 fold2 = mul_wide(acc.high(), kC);
    Uint256 add = fold2.low();
    Uint256 s;
    if (add_with_carry(r, add, s) != 0) {
      // Wrapped past 2^256: add kC once more (2^256 === kC mod p).
      Uint256 t2;
      add_with_carry(s, kC, t2);
      s = t2;
    }
    r = s;
  }
  while (r >= kP) {
    Uint256 t2;
    sub_with_borrow(r, kP, t2);
    r = t2;
  }
  return r;
}

}  // namespace

const Uint256& curve_p() { return kP; }
const Uint256& curve_n() { return kN; }

Uint256 fe_add(const Uint256& a, const Uint256& b) { return add_mod(a, b, kP); }
Uint256 fe_sub(const Uint256& a, const Uint256& b) { return sub_mod(a, b, kP); }
Uint256 fe_mul(const Uint256& a, const Uint256& b) { return fe_reduce(mul_wide(a, b)); }
Uint256 fe_inv(const Uint256& a) {
  if (a.is_zero()) throw std::invalid_argument("fe_inv: zero");
  // Fermat: a^(p-2) using the fast field multiplication.
  Uint256 e;
  sub_with_borrow(kP, Uint256(2), e);
  Uint256 result(1);
  Uint256 acc = a;
  const unsigned nbits = e.bit_length();
  for (unsigned i = 0; i < nbits; ++i) {
    if (e.bit(i)) result = fe_mul(result, acc);
    acc = fe_mul(acc, acc);
  }
  return result;
}

Uint256 scalar_add(const Uint256& a, const Uint256& b) { return add_mod(a, b, kN); }
Uint256 scalar_sub(const Uint256& a, const Uint256& b) { return sub_mod(a, b, kN); }
Uint256 scalar_mul_mod_n(const Uint256& a, const Uint256& b) { return mul_mod(a, b, kN); }
Uint256 scalar_inv(const Uint256& a) { return inv_mod_prime(a, kN); }
Uint256 scalar_from_bytes(BytesView b32) {
  return mod(Uint512::from_uint256(Uint256::from_bytes_be(b32)), kN);
}

const Point& generator() {
  static const Point g{kGx, kGy, false};
  return g;
}

namespace {

// Jacobian coordinates: (X, Y, Z) with x = X/Z^2, y = Y/Z^3.
struct Jac {
  Uint256 x;
  Uint256 y;
  Uint256 z;
  bool infinity = true;
};

Jac to_jac(const Point& p) {
  if (p.infinity) return {};
  return {p.x, p.y, Uint256(1), false};
}

Point to_affine(const Jac& j) {
  if (j.infinity) return {};
  const Uint256 zi = fe_inv(j.z);
  const Uint256 zi2 = fe_mul(zi, zi);
  const Uint256 zi3 = fe_mul(zi2, zi);
  return {fe_mul(j.x, zi2), fe_mul(j.y, zi3), false};
}

Jac jac_double(const Jac& p) {
  if (p.infinity || p.y.is_zero()) return {};
  const Uint256 y2 = fe_mul(p.y, p.y);
  const Uint256 s = fe_mul(fe_mul(Uint256(4), p.x), y2);
  const Uint256 m = fe_mul(Uint256(3), fe_mul(p.x, p.x));  // a == 0 on secp256k1
  Uint256 x3 = fe_sub(fe_mul(m, m), fe_add(s, s));
  const Uint256 y4 = fe_mul(y2, y2);
  Uint256 y3 = fe_sub(fe_mul(m, fe_sub(s, x3)), fe_mul(Uint256(8), y4));
  Uint256 z3 = fe_mul(fe_add(p.y, p.y), p.z);
  return {x3, y3, z3, false};
}

Jac jac_add(const Jac& p, const Jac& q) {
  if (p.infinity) return q;
  if (q.infinity) return p;
  const Uint256 z1z1 = fe_mul(p.z, p.z);
  const Uint256 z2z2 = fe_mul(q.z, q.z);
  const Uint256 u1 = fe_mul(p.x, z2z2);
  const Uint256 u2 = fe_mul(q.x, z1z1);
  const Uint256 s1 = fe_mul(p.y, fe_mul(z2z2, q.z));
  const Uint256 s2 = fe_mul(q.y, fe_mul(z1z1, p.z));
  if (u1 == u2) {
    if (s1 == s2) return jac_double(p);
    return {};  // P + (-P) = O
  }
  const Uint256 h = fe_sub(u2, u1);
  const Uint256 r = fe_sub(s2, s1);
  const Uint256 h2 = fe_mul(h, h);
  const Uint256 h3 = fe_mul(h2, h);
  const Uint256 u1h2 = fe_mul(u1, h2);
  Uint256 x3 = fe_sub(fe_sub(fe_mul(r, r), h3), fe_add(u1h2, u1h2));
  Uint256 y3 = fe_sub(fe_mul(r, fe_sub(u1h2, x3)), fe_mul(s1, h3));
  Uint256 z3 = fe_mul(h, fe_mul(p.z, q.z));
  return {x3, y3, z3, false};
}

}  // namespace

Point point_add(const Point& a, const Point& b) {
  return to_affine(jac_add(to_jac(a), to_jac(b)));
}

Point point_double(const Point& a) { return to_affine(jac_double(to_jac(a))); }

Point scalar_mul(const Uint256& k, const Point& p) {
  if (p.infinity || k.is_zero()) return {};
  Jac acc{};  // identity
  const Jac base = to_jac(p);
  const unsigned nbits = k.bit_length();
  for (int i = static_cast<int>(nbits) - 1; i >= 0; --i) {
    acc = jac_double(acc);
    if (k.bit(static_cast<unsigned>(i))) acc = jac_add(acc, base);
  }
  return to_affine(acc);
}

Point scalar_mul_base(const Uint256& k) { return scalar_mul(k, generator()); }

Point point_negate(const Point& a) {
  if (a.infinity) return a;
  return {a.x, fe_sub(Uint256(0), a.y), false};
}

bool on_curve(const Point& p) {
  if (p.infinity) return true;
  if (p.x >= kP || p.y >= kP) return false;
  const Uint256 lhs = fe_mul(p.y, p.y);
  const Uint256 rhs = fe_add(fe_mul(fe_mul(p.x, p.x), p.x), Uint256(7));
  return lhs == rhs;
}

Bytes point_encode(const Point& p) {
  if (p.infinity) return Bytes{0x00};
  Bytes out;
  out.reserve(65);
  out.push_back(0x04);
  append(out, p.x.to_bytes_be());
  append(out, p.y.to_bytes_be());
  return out;
}

Point point_decode(BytesView b) {
  if (b.size() == 1 && b[0] == 0x00) return {};
  if (b.size() != 65 || b[0] != 0x04) {
    throw std::invalid_argument("point_decode: malformed encoding");
  }
  Point p{Uint256::from_bytes_be(b.subspan(1, 32)), Uint256::from_bytes_be(b.subspan(33, 32)),
          false};
  if (!on_curve(p)) throw std::invalid_argument("point_decode: not on curve");
  return p;
}

}  // namespace rockfs::crypto
