#include "crypto/sha512.h"

#include <cstring>
#include <vector>

#include "crypto/bigint.h"

namespace rockfs::crypto {

namespace {

std::vector<std::uint64_t> first_primes(std::size_t count) {
  std::vector<std::uint64_t> primes;
  for (std::uint64_t n = 2; primes.size() < count; ++n) {
    bool prime = true;
    for (const std::uint64_t p : primes) {
      if (p * p > n) break;
      if (n % p == 0) {
        prime = false;
        break;
      }
    }
    if (prime) primes.push_back(n);
  }
  return primes;
}

// First 64 bits of frac(cbrt(p)) == low limb of floor(cbrt(p * 2^192)).
std::uint64_t cbrt_frac64(std::uint64_t p) {
  Uint512 a;
  a.limb[3] = p;  // p << 192
  return icbrt(a).limb[0];
}

// First 64 bits of frac(sqrt(p)) == low limb of floor(sqrt(p * 2^128)).
std::uint64_t sqrt_frac64(std::uint64_t p) {
  Uint512 a;
  a.limb[2] = p;  // p << 128
  return isqrt(a).limb[0];
}

const std::array<std::uint64_t, 80>& round_constants() {
  static const std::array<std::uint64_t, 80> k = [] {
    const auto primes = first_primes(80);
    std::array<std::uint64_t, 80> out{};
    for (std::size_t i = 0; i < 80; ++i) out[i] = cbrt_frac64(primes[i]);
    return out;
  }();
  return k;
}

const std::array<std::uint64_t, 8>& initial_state() {
  static const std::array<std::uint64_t, 8> h = [] {
    const auto primes = first_primes(8);
    std::array<std::uint64_t, 8> out{};
    for (std::size_t i = 0; i < 8; ++i) out[i] = sqrt_frac64(primes[i]);
    return out;
  }();
  return h;
}

std::uint64_t rotr(std::uint64_t x, int n) { return (x >> n) | (x << (64 - n)); }

}  // namespace

Sha512::Sha512() : h_(initial_state()) {}

void Sha512::process_block(const Byte* block) {
  const auto& kK = round_constants();
  std::uint64_t w[80];
  for (int i = 0; i < 16; ++i) {
    std::uint64_t v = 0;
    for (int j = 0; j < 8; ++j) v = (v << 8) | block[8 * i + j];
    w[i] = v;
  }
  for (int i = 16; i < 80; ++i) {
    const std::uint64_t s0 = rotr(w[i - 15], 1) ^ rotr(w[i - 15], 8) ^ (w[i - 15] >> 7);
    const std::uint64_t s1 = rotr(w[i - 2], 19) ^ rotr(w[i - 2], 61) ^ (w[i - 2] >> 6);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }
  std::uint64_t a = h_[0], b = h_[1], c = h_[2], d = h_[3];
  std::uint64_t e = h_[4], f = h_[5], g = h_[6], h = h_[7];
  for (int i = 0; i < 80; ++i) {
    const std::uint64_t s1 = rotr(e, 14) ^ rotr(e, 18) ^ rotr(e, 41);
    const std::uint64_t ch = (e & f) ^ (~e & g);
    const std::uint64_t t1 = h + s1 + ch + kK[static_cast<std::size_t>(i)] + w[i];
    const std::uint64_t s0 = rotr(a, 28) ^ rotr(a, 34) ^ rotr(a, 39);
    const std::uint64_t maj = (a & b) ^ (a & c) ^ (b & c);
    const std::uint64_t t2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + t1;
    d = c;
    c = b;
    b = a;
    a = t1 + t2;
  }
  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
  h_[5] += f;
  h_[6] += g;
  h_[7] += h;
}

void Sha512::update(BytesView data) {
  total_len_ += data.size();
  std::size_t off = 0;
  if (buf_len_ > 0) {
    const std::size_t take = std::min(kBlockSize - buf_len_, data.size());
    std::memcpy(buf_.data() + buf_len_, data.data(), take);
    buf_len_ += take;
    off += take;
    if (buf_len_ == kBlockSize) {
      process_block(buf_.data());
      buf_len_ = 0;
    }
  }
  while (off + kBlockSize <= data.size()) {
    process_block(data.data() + off);
    off += kBlockSize;
  }
  if (off < data.size()) {
    std::memcpy(buf_.data(), data.data() + off, data.size() - off);
    buf_len_ = data.size() - off;
  }
}

Bytes Sha512::finish() {
  const std::uint64_t byte_len = total_len_;
  const Byte pad_start = 0x80;
  update(BytesView(&pad_start, 1));
  const Byte zero = 0x00;
  while (buf_len_ != 112) update(BytesView(&zero, 1));
  // 128-bit big-endian message length in bits.
  Byte len_be[16] = {};
  const std::uint64_t high = byte_len >> 61;
  const std::uint64_t low = byte_len << 3;
  for (int i = 0; i < 8; ++i) len_be[i] = static_cast<Byte>(high >> (8 * (7 - i)));
  for (int i = 0; i < 8; ++i) len_be[8 + i] = static_cast<Byte>(low >> (8 * (7 - i)));
  update(BytesView(len_be, 16));

  Bytes out(kDigestSize);
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) {
      out[static_cast<std::size_t>(8 * i + j)] =
          static_cast<Byte>(h_[static_cast<std::size_t>(i)] >> (8 * (7 - j)));
    }
  }
  return out;
}

Bytes Sha512::hash(BytesView data) {
  Sha512 ctx;
  ctx.update(data);
  return ctx.finish();
}

Bytes sha512(BytesView data) { return Sha512::hash(data); }

}  // namespace rockfs::crypto
