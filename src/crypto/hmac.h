// HMAC (RFC 2104) over SHA-256 / SHA-512, and HKDF (RFC 5869).
#pragma once

#include "common/bytes.h"

namespace rockfs::crypto {

/// HMAC-SHA-256(key, data) -> 32 bytes.
Bytes hmac_sha256(BytesView key, BytesView data);

/// HMAC-SHA-512(key, data) -> 64 bytes.
Bytes hmac_sha512(BytesView key, BytesView data);

/// HKDF-SHA-256 extract-and-expand. `out_len` <= 255*32.
Bytes hkdf_sha256(BytesView ikm, BytesView salt, BytesView info, std::size_t out_len);

}  // namespace rockfs::crypto
