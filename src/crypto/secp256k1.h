// The secp256k1 elliptic-curve group (y^2 = x^3 + 7 over F_p) with Jacobian
// arithmetic. Used for asymmetric keys (Table 1 of the paper), Schnorr
// signatures (crypto/signature.*) and the PVSS scheme (secretshare/pvss.*).
// Not constant-time: this is a research reproduction, not a wallet.
#pragma once

#include "common/bytes.h"
#include "crypto/bigint.h"

namespace rockfs::crypto {

/// The field prime p = 2^256 - 2^32 - 977.
const Uint256& curve_p();
/// The (prime) group order n.
const Uint256& curve_n();

/// Affine point; `infinity` true means the identity element.
struct Point {
  Uint256 x;
  Uint256 y;
  bool infinity = true;

  bool operator==(const Point&) const = default;
};

/// The standard generator G.
const Point& generator();

/// Group law.
Point point_add(const Point& a, const Point& b);
Point point_double(const Point& a);
/// k*P via double-and-add. k is taken mod n implicitly by the caller's choice.
Point scalar_mul(const Uint256& k, const Point& p);
/// k*G.
Point scalar_mul_base(const Uint256& k);
Point point_negate(const Point& a);

/// Whether the point satisfies the curve equation (identity counts as valid).
bool on_curve(const Point& p);

/// Uncompressed 65-byte encoding: 0x04 || x || y; identity encodes as a single 0x00.
Bytes point_encode(const Point& p);
/// Inverse of point_encode; throws std::invalid_argument on malformed or off-curve input.
Point point_decode(BytesView b);

// Field helpers exposed for tests and PVSS.
Uint256 fe_add(const Uint256& a, const Uint256& b);
Uint256 fe_sub(const Uint256& a, const Uint256& b);
Uint256 fe_mul(const Uint256& a, const Uint256& b);
Uint256 fe_inv(const Uint256& a);

/// Scalar arithmetic mod the group order n.
Uint256 scalar_add(const Uint256& a, const Uint256& b);
Uint256 scalar_sub(const Uint256& a, const Uint256& b);
Uint256 scalar_mul_mod_n(const Uint256& a, const Uint256& b);
Uint256 scalar_inv(const Uint256& a);
/// Reduces arbitrary 32 bytes to a scalar in [0, n).
Uint256 scalar_from_bytes(BytesView b32);

}  // namespace rockfs::crypto
