#include "crypto/bigint.h"

#include <stdexcept>

#include "common/hex.h"

namespace rockfs::crypto {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

Uint256 Uint256::from_bytes_be(BytesView b) {
  if (b.size() != 32) throw std::invalid_argument("Uint256::from_bytes_be: need 32 bytes");
  Uint256 r;
  for (int limb_i = 0; limb_i < 4; ++limb_i) {
    u64 v = 0;
    for (int j = 0; j < 8; ++j) {
      v = (v << 8) | b[static_cast<std::size_t>((3 - limb_i) * 8 + j)];
    }
    r.limb[static_cast<std::size_t>(limb_i)] = v;
  }
  return r;
}

Uint256 Uint256::from_hex(std::string_view hex) {
  if (hex.size() > 64) throw std::invalid_argument("Uint256::from_hex: too long");
  std::string padded(64 - hex.size(), '0');
  padded += hex;
  return from_bytes_be(hex_decode(padded));
}

Bytes Uint256::to_bytes_be() const {
  Bytes out(32);
  for (int limb_i = 0; limb_i < 4; ++limb_i) {
    const u64 v = limb[static_cast<std::size_t>(limb_i)];
    for (int j = 0; j < 8; ++j) {
      out[static_cast<std::size_t>((3 - limb_i) * 8 + j)] =
          static_cast<Byte>(v >> (8 * (7 - j)));
    }
  }
  return out;
}

std::string Uint256::to_hex() const { return hex_encode(to_bytes_be()); }

bool Uint256::is_zero() const noexcept {
  return (limb[0] | limb[1] | limb[2] | limb[3]) == 0;
}

bool Uint256::bit(unsigned i) const noexcept {
  return (limb[i / 64] >> (i % 64)) & 1;
}

unsigned Uint256::bit_length() const noexcept {
  for (int i = 3; i >= 0; --i) {
    if (limb[static_cast<std::size_t>(i)] != 0) {
      return static_cast<unsigned>(i) * 64 +
             (64 - static_cast<unsigned>(__builtin_clzll(limb[static_cast<std::size_t>(i)])));
    }
  }
  return 0;
}

int cmp(const Uint256& a, const Uint256& b) noexcept {
  for (int i = 3; i >= 0; --i) {
    const auto ia = a.limb[static_cast<std::size_t>(i)];
    const auto ib = b.limb[static_cast<std::size_t>(i)];
    if (ia < ib) return -1;
    if (ia > ib) return 1;
  }
  return 0;
}

u64 add_with_carry(const Uint256& a, const Uint256& b, Uint256& r) noexcept {
  u64 carry = 0;
  for (int i = 0; i < 4; ++i) {
    const u128 s = static_cast<u128>(a.limb[static_cast<std::size_t>(i)]) +
                   b.limb[static_cast<std::size_t>(i)] + carry;
    r.limb[static_cast<std::size_t>(i)] = static_cast<u64>(s);
    carry = static_cast<u64>(s >> 64);
  }
  return carry;
}

u64 sub_with_borrow(const Uint256& a, const Uint256& b, Uint256& r) noexcept {
  u64 borrow = 0;
  for (int i = 0; i < 4; ++i) {
    const u128 d = static_cast<u128>(a.limb[static_cast<std::size_t>(i)]) -
                   b.limb[static_cast<std::size_t>(i)] - borrow;
    r.limb[static_cast<std::size_t>(i)] = static_cast<u64>(d);
    borrow = (d >> 64) ? 1 : 0;
  }
  return borrow;
}

Uint256 shift_left1(const Uint256& a) noexcept {
  Uint256 r;
  u64 carry = 0;
  for (int i = 0; i < 4; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    r.limb[idx] = (a.limb[idx] << 1) | carry;
    carry = a.limb[idx] >> 63;
  }
  return r;
}

Uint256 shift_right1(const Uint256& a) noexcept {
  Uint256 r;
  u64 carry = 0;
  for (int i = 3; i >= 0; --i) {
    const auto idx = static_cast<std::size_t>(i);
    r.limb[idx] = (a.limb[idx] >> 1) | (carry << 63);
    carry = a.limb[idx] & 1;
  }
  return r;
}

Uint512 mul_wide(const Uint256& a, const Uint256& b) noexcept {
  Uint512 r;
  for (int i = 0; i < 4; ++i) {
    u64 carry = 0;
    for (int j = 0; j < 4; ++j) {
      const auto idx = static_cast<std::size_t>(i + j);
      const u128 cur = static_cast<u128>(a.limb[static_cast<std::size_t>(i)]) *
                           b.limb[static_cast<std::size_t>(j)] +
                       r.limb[idx] + carry;
      r.limb[idx] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    r.limb[static_cast<std::size_t>(i + 4)] += carry;
  }
  return r;
}

bool Uint512::bit(unsigned i) const noexcept { return (limb[i / 64] >> (i % 64)) & 1; }

unsigned Uint512::bit_length() const noexcept {
  for (int i = 7; i >= 0; --i) {
    if (limb[static_cast<std::size_t>(i)] != 0) {
      return static_cast<unsigned>(i) * 64 +
             (64 - static_cast<unsigned>(__builtin_clzll(limb[static_cast<std::size_t>(i)])));
    }
  }
  return 0;
}

Uint256 Uint512::low() const noexcept {
  return Uint256::from_limbs(limb[0], limb[1], limb[2], limb[3]);
}

Uint256 Uint512::high() const noexcept {
  return Uint256::from_limbs(limb[4], limb[5], limb[6], limb[7]);
}

Uint512 Uint512::from_uint256(const Uint256& v) noexcept {
  Uint512 r;
  for (int i = 0; i < 4; ++i) r.limb[static_cast<std::size_t>(i)] = v.limb[static_cast<std::size_t>(i)];
  return r;
}

Uint256 mod(const Uint512& a, const Uint256& m) {
  if (m.is_zero()) throw std::invalid_argument("mod: zero modulus");
  Uint256 rem;  // running remainder, always < m after each step
  const unsigned nbits = a.bit_length();
  for (int i = static_cast<int>(nbits) - 1; i >= 0; --i) {
    // rem = rem*2 + bit_i; rem < 2m so at most one subtraction. When m is
    // close to 2^256 the doubling can carry out of 256 bits, in which case
    // the true value is 2^256 + shifted and the subtraction is unconditional
    // (the wrap-around of sub_with_borrow supplies the missing 2^256).
    const std::uint64_t carry_out = rem.limb[3] >> 63;
    rem = shift_left1(rem);
    if (a.bit(static_cast<unsigned>(i))) rem.limb[0] |= 1;
    if (carry_out != 0 || rem >= m) {
      Uint256 t;
      sub_with_borrow(rem, m, t);
      rem = t;
    }
  }
  return rem;
}

Uint256 add_mod(const Uint256& a, const Uint256& b, const Uint256& m) {
  Uint256 s;
  const u64 carry = add_with_carry(a, b, s);
  if (carry != 0 || s >= m) {
    Uint256 t;
    sub_with_borrow(s, m, t);
    // With a,b < m < 2^256 the sum is < 2m, so one subtraction suffices even
    // when the add wrapped.
    return t;
  }
  return s;
}

Uint256 sub_mod(const Uint256& a, const Uint256& b, const Uint256& m) {
  Uint256 d;
  if (sub_with_borrow(a, b, d) != 0) {
    Uint256 t;
    add_with_carry(d, m, t);
    return t;
  }
  return d;
}

Uint256 mul_mod(const Uint256& a, const Uint256& b, const Uint256& m) {
  return mod(mul_wide(a, b), m);
}

Uint256 pow_mod(const Uint256& base, const Uint256& exp, const Uint256& m) {
  Uint256 result(1);
  Uint256 acc = mod(Uint512::from_uint256(base), m);
  const unsigned n = exp.bit_length();
  for (unsigned i = 0; i < n; ++i) {
    if (exp.bit(i)) result = mul_mod(result, acc, m);
    acc = mul_mod(acc, acc, m);
  }
  return result;
}

Uint256 inv_mod_prime(const Uint256& a, const Uint256& m) {
  if (mod(Uint512::from_uint256(a), m).is_zero()) {
    throw std::invalid_argument("inv_mod_prime: zero has no inverse");
  }
  Uint256 e;
  sub_with_borrow(m, Uint256(2), e);
  return pow_mod(a, e, m);
}

Uint256 isqrt(const Uint512& a) {
  // Binary search the largest x with x^2 <= a. The callers guarantee x < 2^256.
  Uint256 lo;                     // 0
  Uint256 hi;                     // 2^(ceil(bits/2)) upper bound
  const unsigned half = (a.bit_length() + 1) / 2;
  if (half >= 256) throw std::invalid_argument("isqrt: result would overflow");
  hi.limb[half / 64] = 1ULL << (half % 64);
  // Invariant: lo^2 <= a < hi^2.
  for (;;) {
    Uint256 gap;
    sub_with_borrow(hi, lo, gap);
    if (gap == Uint256(1) || gap.is_zero()) return lo;
    Uint256 mid_sum;
    add_with_carry(lo, hi, mid_sum);
    Uint256 mid = shift_right1(mid_sum);
    const Uint512 sq = mul_wide(mid, mid);
    // Compare sq with a.
    bool le = true;
    for (int i = 7; i >= 0; --i) {
      const auto idx = static_cast<std::size_t>(i);
      if (sq.limb[idx] != a.limb[idx]) {
        le = sq.limb[idx] < a.limb[idx];
        break;
      }
    }
    if (le) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
}

Uint256 icbrt(const Uint512& a) {
  Uint256 lo;
  Uint256 hi;
  const unsigned third = a.bit_length() / 3 + 2;
  if (third >= 128) throw std::invalid_argument("icbrt: result too large");
  hi.limb[third / 64] = 1ULL << (third % 64);
  for (;;) {
    Uint256 gap;
    sub_with_borrow(hi, lo, gap);
    if (gap == Uint256(1) || gap.is_zero()) return lo;
    Uint256 mid_sum;
    add_with_carry(lo, hi, mid_sum);
    Uint256 mid = shift_right1(mid_sum);
    // mid^3: mid < 2^128 so mid^2 < 2^256 and mid^3 < 2^384 fits Uint512.
    const Uint512 sq = mul_wide(mid, mid);
    const Uint512 cube = mul_wide(sq.low(), mid);  // sq.high() == 0 by the bound above
    Uint512 cube_full = cube;
    if (!sq.high().is_zero()) {
      // General case: add high*mid shifted by 256 bits.
      const Uint512 hi_part = mul_wide(sq.high(), mid);
      u64 carry = 0;
      for (int i = 0; i < 4; ++i) {
        const auto idx = static_cast<std::size_t>(i + 4);
        const u128 s = static_cast<u128>(cube_full.limb[idx]) +
                       hi_part.limb[static_cast<std::size_t>(i)] + carry;
        cube_full.limb[idx] = static_cast<u64>(s);
        carry = static_cast<u64>(s >> 64);
      }
    }
    bool le = true;
    for (int i = 7; i >= 0; --i) {
      const auto idx = static_cast<std::size_t>(i);
      if (cube_full.limb[idx] != a.limb[idx]) {
        le = cube_full.limb[idx] < a.limb[idx];
        break;
      }
    }
    if (le) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
}

}  // namespace rockfs::crypto
