// Fixed-width 256/512-bit unsigned integers with modular arithmetic.
// Backbone of the secp256k1 group (crypto/secp256k1.*) and of the
// SHA-512 constant derivation (crypto/sha512.cpp).
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "common/bytes.h"

namespace rockfs::crypto {

struct Uint512;

/// Little-endian limbed 256-bit unsigned integer.
struct Uint256 {
  std::array<std::uint64_t, 4> limb{0, 0, 0, 0};

  constexpr Uint256() = default;
  constexpr explicit Uint256(std::uint64_t v) : limb{v, 0, 0, 0} {}
  static Uint256 from_limbs(std::uint64_t l0, std::uint64_t l1, std::uint64_t l2,
                            std::uint64_t l3) {
    Uint256 r;
    r.limb = {l0, l1, l2, l3};
    return r;
  }

  /// Parses exactly 32 big-endian bytes.
  static Uint256 from_bytes_be(BytesView b);
  /// Parses a (<=64 digit) hex string.
  static Uint256 from_hex(std::string_view hex);
  Bytes to_bytes_be() const;
  std::string to_hex() const;

  bool is_zero() const noexcept;
  bool bit(unsigned i) const noexcept;  // i in [0,256)
  unsigned bit_length() const noexcept;

  bool operator==(const Uint256&) const = default;
};

int cmp(const Uint256& a, const Uint256& b) noexcept;
inline bool operator<(const Uint256& a, const Uint256& b) noexcept { return cmp(a, b) < 0; }
inline bool operator>=(const Uint256& a, const Uint256& b) noexcept { return cmp(a, b) >= 0; }

/// r = a + b, returns carry-out.
std::uint64_t add_with_carry(const Uint256& a, const Uint256& b, Uint256& r) noexcept;
/// r = a - b, returns borrow-out (1 if a < b).
std::uint64_t sub_with_borrow(const Uint256& a, const Uint256& b, Uint256& r) noexcept;
Uint256 shift_left1(const Uint256& a) noexcept;
Uint256 shift_right1(const Uint256& a) noexcept;

/// Full 512-bit product.
Uint512 mul_wide(const Uint256& a, const Uint256& b) noexcept;

/// Little-endian limbed 512-bit unsigned integer (product / dividend type).
struct Uint512 {
  std::array<std::uint64_t, 8> limb{};
  bool bit(unsigned i) const noexcept;
  unsigned bit_length() const noexcept;
  Uint256 low() const noexcept;
  Uint256 high() const noexcept;
  static Uint512 from_uint256(const Uint256& v) noexcept;
};

/// a mod m via bitwise long division; m must be nonzero.
Uint256 mod(const Uint512& a, const Uint256& m);

// ---- Generic modular arithmetic (any modulus, used for the curve order) ----

Uint256 add_mod(const Uint256& a, const Uint256& b, const Uint256& m);
Uint256 sub_mod(const Uint256& a, const Uint256& b, const Uint256& m);
Uint256 mul_mod(const Uint256& a, const Uint256& b, const Uint256& m);
Uint256 pow_mod(const Uint256& base, const Uint256& exp, const Uint256& m);
/// Modular inverse for prime m (Fermat's little theorem). a must be nonzero mod m.
Uint256 inv_mod_prime(const Uint256& a, const Uint256& m);

// ---- Integer root helpers (used to derive SHA-512 round constants) ----

/// floor(sqrt(a)) for a < 2^512 with result < 2^256.
Uint256 isqrt(const Uint512& a);
/// floor(cbrt(a)) for values whose cube root fits in 128 bits.
Uint256 icbrt(const Uint512& a);

}  // namespace rockfs::crypto
