// Schnorr signatures over secp256k1 with deterministic (RFC-6979-style)
// nonces. These back Table 1's asymmetric keys: user keys (PU_U, PR_U),
// administrator keys (PU_A, PR_A) and the per-cloud service keys, as well as
// DepSky's signed metadata files.
#pragma once

#include "common/bytes.h"
#include "crypto/drbg.h"
#include "crypto/secp256k1.h"

namespace rockfs::crypto {

struct KeyPair {
  Uint256 private_key;  // scalar in [1, n)
  Point public_key;     // private_key * G

  /// Encoded public key (65 bytes uncompressed).
  Bytes public_bytes() const { return point_encode(public_key); }
};

/// Generates a fresh keypair from the given DRBG.
KeyPair generate_keypair(Drbg& drbg);

/// Rebuilds a keypair from a stored 32-byte private scalar.
KeyPair keypair_from_private(BytesView private_be32);

/// Signature: R (65 bytes uncompressed point) || s (32 bytes), total 97 bytes.
constexpr std::size_t kSignatureSize = 97;

/// Signs a message with a deterministic nonce derived from key and message.
Bytes sign(const KeyPair& key, BytesView message);

/// Verifies a signature against an encoded public key. Never throws on bad input.
bool verify(BytesView public_key_bytes, BytesView message, BytesView signature);
bool verify(const Point& public_key, BytesView message, BytesView signature);

}  // namespace rockfs::crypto
