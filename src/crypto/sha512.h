// SHA-512 (FIPS 180-4). The paper follows ENISA advice and uses SHA-512 for
// hash values; we provide it alongside SHA-256 (used inside HMAC-DRBG/HKDF).
// Round constants are derived arithmetically from the fractional parts of the
// cube/square roots of the first primes instead of being hardcoded.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace rockfs::crypto {

class Sha512 {
 public:
  static constexpr std::size_t kDigestSize = 64;
  static constexpr std::size_t kBlockSize = 128;

  Sha512();
  void update(BytesView data);
  Bytes finish();

  static Bytes hash(BytesView data);

 private:
  void process_block(const Byte* block);

  std::array<std::uint64_t, 8> h_;
  std::array<Byte, kBlockSize> buf_{};
  std::size_t buf_len_ = 0;
  std::uint64_t total_len_ = 0;
};

/// One-shot convenience: SHA-512(data).
Bytes sha512(BytesView data);

}  // namespace rockfs::crypto
