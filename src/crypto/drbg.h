// HMAC-DRBG (NIST SP 800-90A) over SHA-256: the cryptographic randomness
// source for keys, IVs and secret-sharing polynomials. In the simulated
// deployments it is seeded deterministically so whole experiments replay
// bit-for-bit; a production build would seed from the OS entropy pool.
#pragma once

#include "common/bytes.h"

namespace rockfs::crypto {

class Drbg {
 public:
  explicit Drbg(BytesView seed, BytesView personalization = {});

  /// Mixes fresh entropy into the state.
  void reseed(BytesView entropy);

  /// Produces `n` pseudo-random bytes.
  Bytes generate(std::size_t n);

  /// Convenience: a fresh 256-bit symmetric key.
  Bytes generate_key() { return generate(32); }

  /// Convenience: a fresh 16-byte IV / counter block.
  Bytes generate_iv() { return generate(16); }

 private:
  void update(BytesView provided);

  Bytes k_;
  Bytes v_;
};

}  // namespace rockfs::crypto
