#include "crypto/hmac.h"

#include <stdexcept>

#include "crypto/sha256.h"
#include "crypto/sha512.h"

namespace rockfs::crypto {

namespace {

template <typename Hash>
Bytes hmac_impl(BytesView key, BytesView data) {
  Bytes k(key.begin(), key.end());
  if (k.size() > Hash::kBlockSize) k = Hash::hash(k);
  k.resize(Hash::kBlockSize, 0);

  Bytes ipad(Hash::kBlockSize), opad(Hash::kBlockSize);
  for (std::size_t i = 0; i < Hash::kBlockSize; ++i) {
    ipad[i] = static_cast<Byte>(k[i] ^ 0x36);
    opad[i] = static_cast<Byte>(k[i] ^ 0x5c);
  }

  Hash inner;
  inner.update(ipad);
  inner.update(data);
  const Bytes inner_digest = inner.finish();

  Hash outer;
  outer.update(opad);
  outer.update(inner_digest);
  return outer.finish();
}

}  // namespace

Bytes hmac_sha256(BytesView key, BytesView data) { return hmac_impl<Sha256>(key, data); }

Bytes hmac_sha512(BytesView key, BytesView data) { return hmac_impl<Sha512>(key, data); }

Bytes hkdf_sha256(BytesView ikm, BytesView salt, BytesView info, std::size_t out_len) {
  if (out_len > 255 * Sha256::kDigestSize) throw std::invalid_argument("hkdf: out_len too large");
  Bytes effective_salt(salt.begin(), salt.end());
  if (effective_salt.empty()) effective_salt.assign(Sha256::kDigestSize, 0);
  const Bytes prk = hmac_sha256(effective_salt, ikm);

  Bytes okm;
  okm.reserve(out_len);
  Bytes t;
  Byte counter = 1;
  while (okm.size() < out_len) {
    Bytes block = t;
    append(block, info);
    block.push_back(counter++);
    t = hmac_sha256(prk, block);
    const std::size_t take = std::min(t.size(), out_len - okm.size());
    okm.insert(okm.end(), t.begin(), t.begin() + static_cast<std::ptrdiff_t>(take));
  }
  return okm;
}

}  // namespace rockfs::crypto
