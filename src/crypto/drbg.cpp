#include "crypto/drbg.h"

#include "crypto/hmac.h"

namespace rockfs::crypto {

Drbg::Drbg(BytesView seed, BytesView personalization)
    : k_(32, 0x00), v_(32, 0x01) {
  update(concat({seed, personalization}));
}

void Drbg::update(BytesView provided) {
  Bytes data = v_;
  data.push_back(0x00);
  append(data, provided);
  k_ = hmac_sha256(k_, data);
  v_ = hmac_sha256(k_, v_);
  if (!provided.empty()) {
    data = v_;
    data.push_back(0x01);
    append(data, provided);
    k_ = hmac_sha256(k_, data);
    v_ = hmac_sha256(k_, v_);
  }
}

void Drbg::reseed(BytesView entropy) { update(entropy); }

Bytes Drbg::generate(std::size_t n) {
  Bytes out;
  out.reserve(n);
  while (out.size() < n) {
    v_ = hmac_sha256(k_, v_);
    const std::size_t take = std::min(v_.size(), n - out.size());
    out.insert(out.end(), v_.begin(), v_.begin() + static_cast<std::ptrdiff_t>(take));
  }
  update({});
  return out;
}

}  // namespace rockfs::crypto
