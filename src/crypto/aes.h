// AES-256 (FIPS 197) block cipher with CTR-mode streaming, plus an
// encrypt-then-MAC "sealed box" used for the keystore and the local cache.
// The S-box and round constants are computed from the GF(2^8) definition at
// first use rather than hardcoded.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.h"
#include "common/result.h"

namespace rockfs::crypto {

/// AES-256 block encryptor (encryption direction only; CTR needs no decryptor).
class Aes256 {
 public:
  static constexpr std::size_t kKeySize = 32;
  static constexpr std::size_t kBlockSize = 16;
  static constexpr int kRounds = 14;

  explicit Aes256(BytesView key);

  /// Encrypts a single 16-byte block in place.
  void encrypt_block(Byte block[kBlockSize]) const;

 private:
  std::array<std::uint32_t, 4 * (kRounds + 1)> round_keys_{};
};

/// CTR keystream transform; identical for encryption and decryption.
/// `iv` is a 16-byte initial counter block.
Bytes aes256_ctr(BytesView key, BytesView iv, BytesView data);

/// Authenticated encryption: AES-256-CTR + HMAC-SHA-256 (encrypt-then-MAC).
/// Output layout: iv(16) || ciphertext || tag(32).
Bytes seal(BytesView key, BytesView plaintext, BytesView aad, BytesView iv16);

/// Verifies and decrypts a sealed box. Fails with kIntegrity on any tampering.
Result<Bytes> open_sealed(BytesView key, BytesView box, BytesView aad);

}  // namespace rockfs::crypto
