#include "crypto/aes.h"

#include <cstring>
#include <stdexcept>

#include "crypto/hmac.h"

namespace rockfs::crypto {

namespace {

// GF(2^8) multiplication modulo the AES polynomial x^8+x^4+x^3+x+1 (0x11B).
Byte gmul(Byte a, Byte b) {
  Byte p = 0;
  for (int i = 0; i < 8; ++i) {
    if (b & 1) p ^= a;
    const bool hi = a & 0x80;
    a = static_cast<Byte>(a << 1);
    if (hi) a ^= 0x1B;
    b >>= 1;
  }
  return p;
}

struct SboxTables {
  std::array<Byte, 256> sbox{};
  std::array<Byte, 256> mul2{};
  std::array<Byte, 256> mul3{};
};

// Builds the AES S-box from first principles: multiplicative inverse in
// GF(2^8) followed by the affine transform b ^= rotl(b,1)^rotl(b,2)^rotl(b,3)^rotl(b,4)^0x63.
const SboxTables& tables() {
  static const SboxTables t = [] {
    SboxTables out;
    // Inverses via brute force (runs once).
    std::array<Byte, 256> inv{};
    for (int a = 1; a < 256; ++a) {
      for (int b = 1; b < 256; ++b) {
        if (gmul(static_cast<Byte>(a), static_cast<Byte>(b)) == 1) {
          inv[static_cast<std::size_t>(a)] = static_cast<Byte>(b);
          break;
        }
      }
    }
    auto rotl8 = [](Byte x, int n) {
      return static_cast<Byte>((x << n) | (x >> (8 - n)));
    };
    for (int a = 0; a < 256; ++a) {
      const Byte b = inv[static_cast<std::size_t>(a)];
      out.sbox[static_cast<std::size_t>(a)] = static_cast<Byte>(
          b ^ rotl8(b, 1) ^ rotl8(b, 2) ^ rotl8(b, 3) ^ rotl8(b, 4) ^ 0x63);
      out.mul2[static_cast<std::size_t>(a)] = gmul(static_cast<Byte>(a), 2);
      out.mul3[static_cast<std::size_t>(a)] = gmul(static_cast<Byte>(a), 3);
    }
    return out;
  }();
  return t;
}

std::uint32_t sub_word(std::uint32_t w) {
  const auto& s = tables().sbox;
  return (static_cast<std::uint32_t>(s[(w >> 24) & 0xFF]) << 24) |
         (static_cast<std::uint32_t>(s[(w >> 16) & 0xFF]) << 16) |
         (static_cast<std::uint32_t>(s[(w >> 8) & 0xFF]) << 8) |
         static_cast<std::uint32_t>(s[w & 0xFF]);
}

std::uint32_t rot_word(std::uint32_t w) { return (w << 8) | (w >> 24); }

}  // namespace

Aes256::Aes256(BytesView key) {
  if (key.size() != kKeySize) throw std::invalid_argument("Aes256: key must be 32 bytes");
  constexpr int nk = 8;  // 256-bit key = 8 words
  for (int i = 0; i < nk; ++i) {
    round_keys_[static_cast<std::size_t>(i)] =
        (static_cast<std::uint32_t>(key[static_cast<std::size_t>(4 * i)]) << 24) |
        (static_cast<std::uint32_t>(key[static_cast<std::size_t>(4 * i + 1)]) << 16) |
        (static_cast<std::uint32_t>(key[static_cast<std::size_t>(4 * i + 2)]) << 8) |
        static_cast<std::uint32_t>(key[static_cast<std::size_t>(4 * i + 3)]);
  }
  Byte rcon = 0x01;
  for (int i = nk; i < 4 * (kRounds + 1); ++i) {
    std::uint32_t temp = round_keys_[static_cast<std::size_t>(i - 1)];
    if (i % nk == 0) {
      temp = sub_word(rot_word(temp)) ^ (static_cast<std::uint32_t>(rcon) << 24);
      rcon = gmul(rcon, 2);
    } else if (i % nk == 4) {
      temp = sub_word(temp);
    }
    round_keys_[static_cast<std::size_t>(i)] =
        round_keys_[static_cast<std::size_t>(i - nk)] ^ temp;
  }
}

void Aes256::encrypt_block(Byte block[kBlockSize]) const {
  const auto& sbox = tables().sbox;
  Byte state[4][4];
  // FIPS-197 column-major state layout.
  for (int c = 0; c < 4; ++c)
    for (int r = 0; r < 4; ++r) state[r][c] = block[4 * c + r];

  auto add_round_key = [&](int round) {
    for (int c = 0; c < 4; ++c) {
      const std::uint32_t w = round_keys_[static_cast<std::size_t>(4 * round + c)];
      state[0][c] ^= static_cast<Byte>(w >> 24);
      state[1][c] ^= static_cast<Byte>(w >> 16);
      state[2][c] ^= static_cast<Byte>(w >> 8);
      state[3][c] ^= static_cast<Byte>(w);
    }
  };
  auto sub_bytes = [&] {
    for (auto& row : state)
      for (auto& b : row) b = sbox[b];
  };
  auto shift_rows = [&] {
    for (int r = 1; r < 4; ++r) {
      Byte tmp[4];
      for (int c = 0; c < 4; ++c) tmp[c] = state[r][(c + r) % 4];
      for (int c = 0; c < 4; ++c) state[r][c] = tmp[c];
    }
  };
  const auto& mul2 = tables().mul2;
  const auto& mul3 = tables().mul3;
  auto mix_columns = [&] {
    for (int c = 0; c < 4; ++c) {
      const Byte a0 = state[0][c], a1 = state[1][c], a2 = state[2][c], a3 = state[3][c];
      state[0][c] = static_cast<Byte>(mul2[a0] ^ mul3[a1] ^ a2 ^ a3);
      state[1][c] = static_cast<Byte>(a0 ^ mul2[a1] ^ mul3[a2] ^ a3);
      state[2][c] = static_cast<Byte>(a0 ^ a1 ^ mul2[a2] ^ mul3[a3]);
      state[3][c] = static_cast<Byte>(mul3[a0] ^ a1 ^ a2 ^ mul2[a3]);
    }
  };

  add_round_key(0);
  for (int round = 1; round < kRounds; ++round) {
    sub_bytes();
    shift_rows();
    mix_columns();
    add_round_key(round);
  }
  sub_bytes();
  shift_rows();
  add_round_key(kRounds);

  for (int c = 0; c < 4; ++c)
    for (int r = 0; r < 4; ++r) block[4 * c + r] = state[r][c];
}

Bytes aes256_ctr(BytesView key, BytesView iv, BytesView data) {
  if (iv.size() != Aes256::kBlockSize) throw std::invalid_argument("aes256_ctr: iv must be 16 bytes");
  const Aes256 cipher(key);
  Byte counter[Aes256::kBlockSize];
  std::memcpy(counter, iv.data(), Aes256::kBlockSize);

  Bytes out(data.size());
  std::size_t off = 0;
  while (off < data.size()) {
    Byte keystream[Aes256::kBlockSize];
    std::memcpy(keystream, counter, Aes256::kBlockSize);
    cipher.encrypt_block(keystream);
    const std::size_t take = std::min<std::size_t>(Aes256::kBlockSize, data.size() - off);
    for (std::size_t i = 0; i < take; ++i) out[off + i] = static_cast<Byte>(data[off + i] ^ keystream[i]);
    off += take;
    // Increment the counter block big-endian.
    for (int i = Aes256::kBlockSize - 1; i >= 0; --i) {
      if (++counter[i] != 0) break;
    }
  }
  return out;
}

Bytes seal(BytesView key, BytesView plaintext, BytesView aad, BytesView iv16) {
  if (iv16.size() != 16) throw std::invalid_argument("seal: iv must be 16 bytes");
  // Derive independent cipher and MAC keys from the box key.
  const Bytes enc_key = hkdf_sha256(key, {}, to_bytes("rockfs.seal.enc"), 32);
  const Bytes mac_key = hkdf_sha256(key, {}, to_bytes("rockfs.seal.mac"), 32);

  const Bytes ct = aes256_ctr(enc_key, iv16, plaintext);
  Bytes out = concat({iv16, ct});
  Bytes mac_input = concat({aad, out});
  const Bytes tag = hmac_sha256(mac_key, mac_input);
  append(out, tag);
  return out;
}

Result<Bytes> open_sealed(BytesView key, BytesView box, BytesView aad) {
  constexpr std::size_t kIv = 16, kTag = 32;
  if (box.size() < kIv + kTag) {
    return Error{ErrorCode::kCorrupted, "sealed box too short"};
  }
  const Bytes enc_key = hkdf_sha256(key, {}, to_bytes("rockfs.seal.enc"), 32);
  const Bytes mac_key = hkdf_sha256(key, {}, to_bytes("rockfs.seal.mac"), 32);

  const BytesView body = box.subspan(0, box.size() - kTag);
  const BytesView tag = box.subspan(box.size() - kTag);
  const Bytes mac_input = concat({aad, body});
  const Bytes expect = hmac_sha256(mac_key, mac_input);
  if (!ct_equal(expect, tag)) {
    return Error{ErrorCode::kIntegrity, "sealed box MAC mismatch"};
  }
  const BytesView iv = body.subspan(0, kIv);
  const BytesView ct = body.subspan(kIv);
  return aes256_ctr(enc_key, iv, ct);
}

}  // namespace rockfs::crypto
