// SHA-256 (FIPS 180-4), streaming and one-shot.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace rockfs::crypto {

class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  static constexpr std::size_t kBlockSize = 64;

  Sha256();
  void update(BytesView data);
  /// Finalizes and returns the digest; the object must not be reused afterwards.
  Bytes finish();

  static Bytes hash(BytesView data);

 private:
  void process_block(const Byte* block);

  std::array<std::uint32_t, 8> h_;
  std::array<Byte, kBlockSize> buf_{};
  std::size_t buf_len_ = 0;
  std::uint64_t total_len_ = 0;
};

/// One-shot convenience: SHA-256(data).
Bytes sha256(BytesView data);

}  // namespace rockfs::crypto
