// Systematic Reed-Solomon erasure coding over GF(2^8): splits a buffer into
// n shards of which any k reconstruct the original. DepSky's CA protocol
// (paper §5.1) uses this to store each file as n cloud shares at a total
// footprint of n/k times the file size (2x for the paper's n=4, k=2).
#pragma once

#include <optional>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "gf/gf256.h"

namespace rockfs::common {
class Executor;
}

namespace rockfs::erasure {

/// One coded shard: the shard index identifies its row of the coding matrix.
struct Shard {
  std::size_t index = 0;
  Bytes data;
};

class ReedSolomon {
 public:
  /// k data shards, n total shards; 1 <= k <= n <= 255.
  ReedSolomon(std::size_t k, std::size_t n);

  std::size_t k() const noexcept { return k_; }
  std::size_t n() const noexcept { return n_; }

  /// Shard size for a payload of `data_size` bytes.
  std::size_t shard_size(std::size_t data_size) const;

  /// Encodes into n shards (the first k are the systematic data shards).
  std::vector<Shard> encode(BytesView data) const;

  /// Same result, with the n output rows computed concurrently on `exec`
  /// (barrier join; each row writes a disjoint shard). Byte-identical to the
  /// sequential overload; falls back to it when exec is null or serial.
  std::vector<Shard> encode(BytesView data, common::Executor* exec) const;

  /// Reconstructs the original `data_size` bytes from any >= k distinct shards.
  /// Fails with kInvalidArgument on too few shards or inconsistent sizes.
  Result<Bytes> decode(const std::vector<Shard>& shards, std::size_t data_size) const;

  /// Re-creates a single missing shard from any k available shards.
  Result<Shard> repair_shard(const std::vector<Shard>& available, std::size_t missing_index,
                             std::size_t data_size) const;

 private:
  std::size_t k_;
  std::size_t n_;
  gf::Matrix coding_;  // n x k systematic coding matrix
};

}  // namespace rockfs::erasure
