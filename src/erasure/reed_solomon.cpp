#include "erasure/reed_solomon.h"

#include <algorithm>
#include <stdexcept>

#include "common/executor.h"

namespace rockfs::erasure {

namespace {

// Systematic coding matrix: a Vandermonde matrix postmultiplied by the
// inverse of its own top k x k block, so rows 0..k-1 become the identity and
// every k x k submatrix stays invertible.
gf::Matrix build_coding_matrix(std::size_t k, std::size_t n) {
  if (k == 0 || k > n || n > 255) {
    throw std::invalid_argument("ReedSolomon: need 1 <= k <= n <= 255");
  }
  const gf::Matrix vm = gf::Matrix::vandermonde(n, k);
  std::vector<std::size_t> top(k);
  for (std::size_t i = 0; i < k; ++i) top[i] = i;
  const gf::Matrix top_inv = vm.select_rows(top).inverse();
  return vm.multiply(top_inv);
}

}  // namespace

ReedSolomon::ReedSolomon(std::size_t k, std::size_t n)
    : k_(k), n_(n), coding_(build_coding_matrix(k, n)) {}

std::size_t ReedSolomon::shard_size(std::size_t data_size) const {
  return (data_size + k_ - 1) / k_;
}

std::vector<Shard> ReedSolomon::encode(BytesView data) const {
  const std::size_t stride = std::max<std::size_t>(shard_size(data.size()), 1);
  std::vector<Shard> shards(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    shards[i].index = i;
    shards[i].data.assign(stride, 0);
  }
  // Column `pos` of the stripe is the k-vector (data[pos], data[stride+pos], ...).
  for (std::size_t pos = 0; pos < stride; ++pos) {
    Byte column[256] = {};
    for (std::size_t row = 0; row < k_; ++row) {
      const std::size_t idx = row * stride + pos;
      column[row] = idx < data.size() ? data[idx] : 0;
    }
    for (std::size_t out_row = 0; out_row < n_; ++out_row) {
      std::uint8_t acc = 0;
      for (std::size_t c = 0; c < k_; ++c) {
        acc ^= gf::mul(coding_.at(out_row, c), column[c]);
      }
      shards[out_row].data[pos] = acc;
    }
  }
  return shards;
}

std::vector<Shard> ReedSolomon::encode(BytesView data, common::Executor* exec) const {
  if (exec == nullptr || exec->concurrency() <= 1) return encode(data);
  const std::size_t stride = std::max<std::size_t>(shard_size(data.size()), 1);
  std::vector<Shard> shards(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    shards[i].index = i;
    shards[i].data.assign(stride, 0);
  }
  // Row-major split: each branch owns one output shard, so the writes are
  // disjoint and the arithmetic per byte matches the sequential overload.
  common::parallel_for_index(exec, n_, [&](std::size_t out_row) {
    Bytes& out = shards[out_row].data;
    for (std::size_t pos = 0; pos < stride; ++pos) {
      std::uint8_t acc = 0;
      for (std::size_t c = 0; c < k_; ++c) {
        const std::size_t idx = c * stride + pos;
        const Byte b = idx < data.size() ? data[idx] : 0;
        acc ^= gf::mul(coding_.at(out_row, c), b);
      }
      out[pos] = acc;
    }
  });
  return shards;
}

Result<Bytes> ReedSolomon::decode(const std::vector<Shard>& shards,
                                  std::size_t data_size) const {
  // Pick k distinct, size-consistent shards.
  std::vector<const Shard*> chosen;
  std::vector<bool> seen(n_, false);
  const std::size_t stride = std::max<std::size_t>(shard_size(data_size), 1);
  for (const Shard& s : shards) {
    if (s.index >= n_ || seen[s.index]) continue;
    if (s.data.size() != stride) {
      return Error{ErrorCode::kInvalidArgument, "decode: shard size mismatch"};
    }
    seen[s.index] = true;
    chosen.push_back(&s);
    if (chosen.size() == k_) break;
  }
  if (chosen.size() < k_) {
    return Error{ErrorCode::kInvalidArgument, "decode: fewer than k distinct shards"};
  }

  std::vector<std::size_t> rows(k_);
  for (std::size_t i = 0; i < k_; ++i) rows[i] = chosen[i]->index;
  const gf::Matrix dec = coding_.select_rows(rows).inverse();

  Bytes out(data_size, 0);
  for (std::size_t pos = 0; pos < stride; ++pos) {
    Byte column[256];
    for (std::size_t i = 0; i < k_; ++i) column[i] = chosen[i]->data[pos];
    for (std::size_t row = 0; row < k_; ++row) {
      std::uint8_t acc = 0;
      for (std::size_t c = 0; c < k_; ++c) acc ^= gf::mul(dec.at(row, c), column[c]);
      const std::size_t idx = row * stride + pos;
      if (idx < data_size) out[idx] = acc;
    }
  }
  return out;
}

Result<Shard> ReedSolomon::repair_shard(const std::vector<Shard>& available,
                                        std::size_t missing_index,
                                        std::size_t data_size) const {
  if (missing_index >= n_) {
    return Error{ErrorCode::kInvalidArgument, "repair: bad shard index"};
  }
  auto decoded = decode(available, data_size);
  if (!decoded.ok()) return decoded.error();
  auto full = encode(*decoded);
  return full[missing_index];
}

}  // namespace rockfs::erasure
