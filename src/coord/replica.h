// One DepSpace replica: a deterministic tuple-space state machine. The
// replicated service (service.h) runs 3f+1 of these behind a quorum client.
// Replicas support checkpoint/restore durability (the enhancement of [11]
// the paper relies on, §5.3) and a Byzantine mode for fault-injection tests.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "common/result.h"
#include "coord/tuple.h"

namespace rockfs::coord {

class Replica {
 public:
  explicit Replica(std::string name);

  const std::string& name() const noexcept { return name_; }

  // ---- deterministic state-machine operations ----

  /// Inserts a tuple.
  void out(const Tuple& tuple);
  /// Reads (non-destructively) the oldest matching tuple.
  std::optional<Tuple> rdp(const Template& pattern) const;
  /// Takes (removes and returns) the oldest matching tuple.
  std::optional<Tuple> inp(const Template& pattern);
  /// All matching tuples, oldest first.
  std::vector<Tuple> rdall(const Template& pattern) const;
  /// Atomically: insert `tuple` iff no tuple matches `pattern`. True if inserted.
  bool cas(const Template& pattern, const Tuple& tuple);
  /// Atomically: remove all tuples matching `pattern`, insert `tuple`.
  /// Returns the number of removed tuples.
  std::size_t replace(const Template& pattern, const Tuple& tuple);
  /// Conditional replace: remove all tuples matching `pattern` and insert
  /// `tuple` ONLY if at least one matched. Returns the number removed (0 =
  /// nothing matched, nothing inserted). The CAS arm for moving a tuple from
  /// one exact state to another without ever destroying or duplicating it.
  std::size_t swap(const Template& pattern, const Tuple& tuple);
  std::size_t count(const Template& pattern) const;
  std::size_t size() const noexcept { return store_.size(); }

  // ---- durability ----

  Bytes checkpoint() const;
  static Result<Replica> restore(std::string name, BytesView checkpoint);

  // ---- fault injection ----

  void set_byzantine(bool b) noexcept { byzantine_ = b; }
  bool byzantine() const noexcept { return byzantine_; }
  /// Corrupts a read result when Byzantine (used by the service layer).
  Tuple maybe_lie(Tuple honest) const;

 private:
  std::string name_;
  std::deque<Tuple> store_;  // insertion order = deterministic match order
  bool byzantine_ = false;
};

}  // namespace rockfs::coord
