#include "coord/replica.h"

#include <algorithm>

namespace rockfs::coord {

Replica::Replica(std::string name) : name_(std::move(name)) {}

void Replica::out(const Tuple& tuple) { store_.push_back(tuple); }

std::optional<Tuple> Replica::rdp(const Template& pattern) const {
  for (const auto& t : store_) {
    if (pattern.matches(t)) return t;
  }
  return std::nullopt;
}

std::optional<Tuple> Replica::inp(const Template& pattern) {
  for (auto it = store_.begin(); it != store_.end(); ++it) {
    if (pattern.matches(*it)) {
      Tuple t = *it;
      store_.erase(it);
      return t;
    }
  }
  return std::nullopt;
}

std::vector<Tuple> Replica::rdall(const Template& pattern) const {
  std::vector<Tuple> out;
  for (const auto& t : store_) {
    if (pattern.matches(t)) out.push_back(t);
  }
  return out;
}

bool Replica::cas(const Template& pattern, const Tuple& tuple) {
  if (rdp(pattern).has_value()) return false;
  out(tuple);
  return true;
}

std::size_t Replica::replace(const Template& pattern, const Tuple& tuple) {
  const std::size_t before = store_.size();
  std::erase_if(store_, [&](const Tuple& t) { return pattern.matches(t); });
  const std::size_t removed = before - store_.size();
  out(tuple);
  return removed;
}

std::size_t Replica::swap(const Template& pattern, const Tuple& tuple) {
  const std::size_t before = store_.size();
  std::erase_if(store_, [&](const Tuple& t) { return pattern.matches(t); });
  const std::size_t removed = before - store_.size();
  if (removed > 0) out(tuple);
  return removed;
}

std::size_t Replica::count(const Template& pattern) const {
  return static_cast<std::size_t>(
      std::count_if(store_.begin(), store_.end(),
                    [&](const Tuple& t) { return pattern.matches(t); }));
}

Bytes Replica::checkpoint() const {
  Bytes out;
  append_u64(out, store_.size());
  for (const auto& t : store_) append_lp(out, serialize_tuple(t));
  return out;
}

Result<Replica> Replica::restore(std::string name, BytesView checkpoint) {
  try {
    Replica r(std::move(name));
    const std::uint64_t n = read_u64(checkpoint, 0);
    std::size_t off = 8;
    for (std::uint64_t i = 0; i < n; ++i) {
      r.store_.push_back(deserialize_tuple(read_lp(checkpoint, &off)));
    }
    if (off != checkpoint.size()) {
      return Error{ErrorCode::kCorrupted, "replica checkpoint: trailing bytes"};
    }
    return r;
  } catch (const std::exception& e) {
    return Error{ErrorCode::kCorrupted, std::string("replica checkpoint: ") + e.what()};
  }
}

Tuple Replica::maybe_lie(Tuple honest) const {
  if (!byzantine_) return honest;
  // A Byzantine replica returns a syntactically valid but wrong tuple.
  if (honest.empty()) return {"<byzantine>"};
  honest.back() += "<byzantine>";
  return honest;
}

}  // namespace rockfs::coord
