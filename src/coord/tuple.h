// Tuple-space vocabulary for the DepSpace-like coordination service
// (paper §5.3). Tuples are ordered lists of strings; templates match tuples
// field-by-field with "*" wildcards, exactly like DepSpace's rdp/inp
// interface. Binary payloads are base64-encoded by callers.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"

namespace rockfs::coord {

using Tuple = std::vector<std::string>;

/// A match pattern: each field is either an exact string or a wildcard.
class Template {
 public:
  Template() = default;
  /// Builds from fields where "*" is the wildcard.
  static Template of(std::vector<std::string> fields);

  bool matches(const Tuple& tuple) const;
  std::size_t size() const noexcept { return fields_.size(); }

  const std::vector<std::optional<std::string>>& fields() const noexcept { return fields_; }

 private:
  std::vector<std::optional<std::string>> fields_;  // nullopt = wildcard
};

/// Canonical serializations used for replica voting and durability.
Bytes serialize_tuple(const Tuple& t);
Tuple deserialize_tuple(BytesView b);

}  // namespace rockfs::coord
