// Byzantine fault-tolerant coordination service: a DepSpace-style tuple
// space replicated over 3f+1 Replica state machines (paper §5.3). The
// embedded quorum client sends every operation to all replicas, waits for
// 2f+1 matching answers (majority voting masks up to f liars), and reports
// the virtual-time delay at which the quorum completed. Like the providers,
// the service never advances the clock itself.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "common/result.h"
#include "coord/replica.h"
#include "sim/faults.h"
#include "sim/network.h"
#include "sim/timed.h"

namespace rockfs::coord {

class CoordinationService {
 public:
  /// Builds 3f+1 replicas with coordination-like WAN profiles.
  CoordinationService(sim::SimClockPtr clock, std::size_t f, std::uint64_t seed);

  std::size_t f() const noexcept { return f_; }
  std::size_t replica_count() const noexcept { return replicas_.size(); }
  std::size_t quorum() const noexcept { return 2 * f_ + 1; }

  // ---- tuple-space operations (delay = time for a 2f+1 quorum) ----

  sim::Timed<Status> out(const Tuple& tuple);
  sim::Timed<Result<std::optional<Tuple>>> rdp(const Template& pattern);
  sim::Timed<Result<std::optional<Tuple>>> inp(const Template& pattern);
  sim::Timed<Result<std::vector<Tuple>>> rdall(const Template& pattern);
  sim::Timed<Result<bool>> cas(const Template& pattern, const Tuple& tuple);
  sim::Timed<Result<std::size_t>> replace(const Template& pattern, const Tuple& tuple);
  /// Conditional replace (see Replica::swap): inserts `tuple` only when
  /// `pattern` matched something; 0 removed means the store was untouched.
  sim::Timed<Result<std::size_t>> swap(const Template& pattern, const Tuple& tuple);
  sim::Timed<Result<std::size_t>> count(const Template& pattern);

  // ---- fault injection & administration ----

  Replica& replica(std::size_t i) { return *replicas_.at(i); }
  /// Per-replica time-varying fault schedule, consulted on every operation
  /// (outages and transient errors drop the replica's vote; tail latency
  /// slows its reply). The down flag below is a wrapper over its permanent
  /// entry.
  sim::FaultSchedule& replica_faults(std::size_t i) { return *faults_.at(i); }
  void set_replica_down(std::size_t i, bool down) { faults_.at(i)->set_down(down); }
  bool replica_down(std::size_t i) const { return faults_.at(i)->down(); }

  /// Durable checkpoint of one replica (the [11] enhancement).
  Bytes checkpoint_replica(std::size_t i) const { return replicas_.at(i)->checkpoint(); }
  /// Replaces a replica's state from a checkpoint (crash recovery / migration).
  Status restore_replica(std::size_t i, BytesView checkpoint);

 private:
  struct Answer {
    Bytes encoded;                 // canonical encoding for voting
    sim::SimClock::Micros delay;   // when this replica's reply arrives
  };

  /// Runs `op` on every live replica, votes, and returns the winning encoded
  /// answer (>= 2f+1 identical votes) with the quorum completion delay.
  template <typename Op>
  sim::Timed<Result<Bytes>> execute(const char* name, Op&& op);

  sim::SimClockPtr clock_;
  std::size_t f_;
  std::vector<std::unique_ptr<Replica>> replicas_;
  std::vector<std::unique_ptr<sim::NetworkModel>> nets_;
  std::vector<sim::FaultSchedulePtr> faults_;
};

}  // namespace rockfs::coord
