#include "coord/service.h"

#include <map>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace rockfs::coord {

namespace {

// Canonical encodings of the per-operation answers, for voting.

Bytes encode_opt_tuple(const std::optional<Tuple>& t) {
  Bytes out;
  out.push_back(t.has_value() ? 1 : 0);
  if (t.has_value()) append(out, serialize_tuple(*t));
  return out;
}

std::optional<Tuple> decode_opt_tuple(BytesView b) {
  if (b.empty() || b[0] == 0) return std::nullopt;
  return deserialize_tuple(b.subspan(1));
}

Bytes encode_tuples(const std::vector<Tuple>& ts) {
  Bytes out;
  append_u32(out, static_cast<std::uint32_t>(ts.size()));
  for (const auto& t : ts) append_lp(out, serialize_tuple(t));
  return out;
}

std::vector<Tuple> decode_tuples(BytesView b) {
  std::size_t off = 0;
  const std::uint32_t n = read_u32(b, off);
  off += 4;
  std::vector<Tuple> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) out.push_back(deserialize_tuple(read_lp(b, &off)));
  return out;
}

Bytes encode_bool(bool v) { return Bytes{static_cast<Byte>(v ? 1 : 0)}; }
Bytes encode_size(std::size_t v) {
  Bytes out;
  append_u64(out, v);
  return out;
}

}  // namespace

CoordinationService::CoordinationService(sim::SimClockPtr clock, std::size_t f,
                                         std::uint64_t seed)
    : clock_(std::move(clock)), f_(f) {
  const std::size_t n = 3 * f + 1;
  for (std::size_t i = 0; i < n; ++i) {
    replicas_.push_back(std::make_unique<Replica>("depspace-" + std::to_string(i)));
    auto profile = sim::LinkProfile::coordination_like("depspace-" + std::to_string(i));
    profile.rtt_us += static_cast<std::int64_t>(i) * 700;  // mild heterogeneity
    nets_.push_back(std::make_unique<sim::NetworkModel>(clock_, profile, seed + 31 * i));
    faults_.push_back(std::make_shared<sim::FaultSchedule>(clock_, seed + 97 * i));
  }
}

template <typename Op>
sim::Timed<Result<Bytes>> CoordinationService::execute(const char* name, Op&& op) {
  // `op(replica)` must return the canonical encoding of the replica's answer.
  obs::Span span = obs::tracer().span("coord.op");
  span.set_label(name);
  obs::metrics().counter(obs::metric_key("coord.ops", name)).add();
  std::map<Bytes, std::vector<sim::SimClock::Micros>> votes;
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    // A replica in an outage (or hit by a transient fault) contributes no
    // vote this round; a tail-latency storm slows its reply instead.
    const auto actions = faults_[i]->on_operation(sim::FaultOp::kControl);
    if (actions.fail != ErrorCode::kOk) continue;
    Bytes answer = op(*replicas_[i]);
    // Request + small reply; payload sizes are second-order for metadata ops.
    auto delay = nets_[i]->rpc_delay_us(128, answer.size() + 64);
    delay = static_cast<sim::SimClock::Micros>(static_cast<double>(delay) *
                                              actions.latency_factor);
    votes[std::move(answer)].push_back(delay);
  }
  for (auto& [answer, delays] : votes) {
    if (delays.size() >= quorum()) {
      const auto delay = sim::quorum_delay(delays, quorum());
      span.set_duration(static_cast<std::uint64_t>(delay));
      obs::metrics().histogram("coord.delay_us").record(static_cast<std::uint64_t>(delay));
      return {Bytes(answer), delay};
    }
  }
  // No quorum: report when the slowest live replica answered.
  std::vector<sim::SimClock::Micros> all;
  for (auto& [answer, delays] : votes) {
    all.insert(all.end(), delays.begin(), delays.end());
  }
  const auto delay = sim::parallel_delay(all);
  span.set_duration(static_cast<std::uint64_t>(delay));
  span.set_outcome(ErrorCode::kUnavailable);
  obs::metrics().counter(obs::metric_key("coord.no_quorum", name)).add();
  obs::metrics().histogram("coord.delay_us").record(static_cast<std::uint64_t>(delay));
  return {Error{ErrorCode::kUnavailable, "coordination: no 2f+1 quorum"}, delay};
}

sim::Timed<Status> CoordinationService::out(const Tuple& tuple) {
  auto r = execute("out", [&](Replica& rep) {
    rep.out(tuple);
    return to_bytes("ok");
  });
  if (!r.value.ok()) return {Status{r.value.error()}, r.delay};
  return {Status::Ok(), r.delay};
}

sim::Timed<Result<std::optional<Tuple>>> CoordinationService::rdp(const Template& pattern) {
  auto r = execute("rdp", [&](Replica& rep) {
    auto ans = rep.rdp(pattern);
    if (ans.has_value()) ans = rep.maybe_lie(std::move(*ans));
    return encode_opt_tuple(ans);
  });
  if (!r.value.ok()) return {Error{r.value.error()}, r.delay};
  return {decode_opt_tuple(*r.value), r.delay};
}

sim::Timed<Result<std::optional<Tuple>>> CoordinationService::inp(const Template& pattern) {
  auto r = execute("inp", [&](Replica& rep) {
    auto ans = rep.inp(pattern);
    if (ans.has_value()) ans = rep.maybe_lie(std::move(*ans));
    return encode_opt_tuple(ans);
  });
  if (!r.value.ok()) return {Error{r.value.error()}, r.delay};
  return {decode_opt_tuple(*r.value), r.delay};
}

sim::Timed<Result<std::vector<Tuple>>> CoordinationService::rdall(const Template& pattern) {
  auto r = execute("rdall", [&](Replica& rep) {
    auto ts = rep.rdall(pattern);
    if (rep.byzantine()) {
      for (auto& t : ts) t = rep.maybe_lie(std::move(t));
    }
    return encode_tuples(ts);
  });
  if (!r.value.ok()) return {Error{r.value.error()}, r.delay};
  return {decode_tuples(*r.value), r.delay};
}

sim::Timed<Result<bool>> CoordinationService::cas(const Template& pattern,
                                                  const Tuple& tuple) {
  auto r = execute("cas", [&](Replica& rep) {
    const bool inserted = rep.cas(pattern, tuple);
    return encode_bool(rep.byzantine() ? !inserted : inserted);
  });
  if (!r.value.ok()) return {Error{r.value.error()}, r.delay};
  return {(*r.value)[0] != 0, r.delay};
}

sim::Timed<Result<std::size_t>> CoordinationService::replace(const Template& pattern,
                                                             const Tuple& tuple) {
  auto r = execute("replace",
                   [&](Replica& rep) { return encode_size(rep.replace(pattern, tuple)); });
  if (!r.value.ok()) return {Error{r.value.error()}, r.delay};
  return {static_cast<std::size_t>(read_u64(*r.value, 0)), r.delay};
}

sim::Timed<Result<std::size_t>> CoordinationService::swap(const Template& pattern,
                                                          const Tuple& tuple) {
  auto r = execute("swap",
                   [&](Replica& rep) { return encode_size(rep.swap(pattern, tuple)); });
  if (!r.value.ok()) return {Error{r.value.error()}, r.delay};
  return {static_cast<std::size_t>(read_u64(*r.value, 0)), r.delay};
}

sim::Timed<Result<std::size_t>> CoordinationService::count(const Template& pattern) {
  auto r = execute("count", [&](Replica& rep) {
    const std::size_t c = rep.count(pattern);
    return encode_size(rep.byzantine() ? c + 1 : c);
  });
  if (!r.value.ok()) return {Error{r.value.error()}, r.delay};
  return {static_cast<std::size_t>(read_u64(*r.value, 0)), r.delay};
}

Status CoordinationService::restore_replica(std::size_t i, BytesView checkpoint) {
  auto restored = Replica::restore(replicas_.at(i)->name(), checkpoint);
  if (!restored.ok()) return Status{restored.error()};
  *replicas_[i] = std::move(*restored);
  return {};
}

}  // namespace rockfs::coord
