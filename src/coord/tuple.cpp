#include "coord/tuple.h"

namespace rockfs::coord {

Template Template::of(std::vector<std::string> fields) {
  Template t;
  t.fields_.reserve(fields.size());
  for (auto& f : fields) {
    if (f == "*") {
      t.fields_.emplace_back(std::nullopt);
    } else {
      t.fields_.emplace_back(std::move(f));
    }
  }
  return t;
}

bool Template::matches(const Tuple& tuple) const {
  if (tuple.size() != fields_.size()) return false;
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].has_value() && *fields_[i] != tuple[i]) return false;
  }
  return true;
}

Bytes serialize_tuple(const Tuple& t) {
  Bytes out;
  append_u32(out, static_cast<std::uint32_t>(t.size()));
  for (const auto& f : t) append_lp(out, to_bytes(f));
  return out;
}

Tuple deserialize_tuple(BytesView b) {
  std::size_t off = 0;
  const std::uint32_t n = read_u32(b, off);
  off += 4;
  Tuple t;
  t.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) t.push_back(to_string(read_lp(b, &off)));
  return t;
}

}  // namespace rockfs::coord
