// Client cache manager (ARCHITECTURE §13): the shared, capacity-bounded
// cache an agent keeps per USER (not per session — the handle survives
// re-logins, which is why revocation must drop it explicitly). Three tiers,
// all keyed by path and co-located in the same shard so one lock covers a
// path's whole cache state:
//
//   * data   — the sealed (CacheTransform-protected) file bytes of ONE
//              version per path, LRU-evicted under a byte budget split
//              across shards. The cache stores the representation opaquely;
//              sealing/unsealing stays above (scfs/rockfs), so this library
//              depends on nothing but common/obs/sim.
//   * meta   — the head version a client last observed for the path (the
//              inode tuple fields plus the lease epoch held at fill time).
//              Validation rule: the entry is served without any remote round
//              iff the client still holds the SAME lease epoch it held when
//              the entry was filled — nobody else can commit past a live
//              lease, so the entry cannot be stale. Any other hit degrades
//              to a one-round version check upstream.
//   * negative — recently observed kNotFound results, TTL-bounded and
//              invalidated the moment the owner creates the path or any
//              code path observes a coordination tuple for it.
//
// Thread-safety: every method is safe under concurrent callers (per-shard
// mutexes; counters are atomic). Nothing here consults wall-clock time —
// callers pass virtual `now_us` where TTLs apply — so seeded runs stay
// byte-identical at any thread count.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "obs/metrics.h"

namespace rockfs::cache {

struct CacheOptions {
  /// Shard count (lock striping). Shard choice hashes the path with FNV-1a,
  /// not std::hash, so placement is identical across platforms.
  std::size_t shards = 16;
  /// Byte budget for the DATA tier across all shards (each shard gets an
  /// equal slice; meta/negative entries are a few dozen bytes and uncounted).
  std::size_t capacity_bytes = 128u << 20;
  /// How long a cached kNotFound may be served before it must be re-proved
  /// against the coordination service (virtual time).
  std::int64_t negative_ttl_us = 2'000'000;
};

/// One sealed data entry: the transformed representation of exactly one
/// committed version of the path.
struct DataEntry {
  Bytes raw;
  std::uint64_t version = 0;
};

/// Head-version metadata observed for a path (the scfs-inode fields), plus
/// the validation anchor: the lease epoch the client held when it filled the
/// entry (0 = filled without holding the lease, never fast-path served).
struct MetaEntry {
  std::uint64_t version = 0;
  std::uint64_t size = 0;
  std::string owner;
  std::int64_t modified_us = 0;
  std::uint64_t file_epoch = 0;
  std::uint64_t lease_epoch = 0;
};

class ClientCache {
 public:
  explicit ClientCache(CacheOptions options = {});

  // ---- data tier ----

  /// Copy of the entry, bumping it to MRU. The caller decides hit vs miss
  /// AFTER version validation + unseal, so this counts nothing.
  std::optional<DataEntry> get_data(const std::string& path);
  /// Inserts/replaces the path's entry and evicts LRU entries until the
  /// shard is back under budget (the new entry itself survives even when it
  /// alone exceeds the slice — a cache that refuses the working set is
  /// worse than a briefly over-budget one).
  void put_data(const std::string& path, Bytes raw, std::uint64_t version);
  void erase_data(const std::string& path);
  /// Raw bytes without an LRU bump (tests and the T3 attack driver).
  std::optional<Bytes> peek_raw(const std::string& path) const;
  /// Overwrites the raw representation keeping the version (attack driver:
  /// models on-disk tampering below the transform).
  void poke_raw(const std::string& path, Bytes raw);

  // ---- metadata tier ----

  std::optional<MetaEntry> get_meta(const std::string& path) const;
  void put_meta(const std::string& path, const MetaEntry& meta);
  void erase_meta(const std::string& path);

  // ---- negative tier ----

  /// True while a cached kNotFound for `path` is within its TTL.
  bool is_negative(const std::string& path, std::int64_t now_us) const;
  void note_missing(const std::string& path, std::int64_t now_us);
  /// Drops a cached kNotFound (same-client create, or any observation of a
  /// coordination tuple for the path). Counted when an entry actually died.
  void clear_negative(const std::string& path);

  // ---- lifecycle ----

  /// Drops every tier's entries for `path` (unlink/rename, fenced dirty
  /// write-back).
  void invalidate(const std::string& path);
  /// Drops EVERYTHING (all tiers, all shards): session-key rotation and
  /// credential revocation. Bumps drop_generation so tests can assert the
  /// drop happened exactly where required.
  void drop_all();
  std::uint64_t drop_generation() const noexcept {
    return drop_generation_.load(std::memory_order_relaxed);
  }

  // ---- introspection (tests, benches) ----

  std::size_t data_entries() const;
  std::size_t data_bytes() const;
  std::size_t meta_entries() const;
  std::size_t negative_entries() const;
  std::size_t shard_count() const noexcept { return shards_.size(); }
  const CacheOptions& options() const noexcept { return options_; }

 private:
  struct Shard {
    mutable std::mutex mu;
    /// LRU order, front = most recent. Values are the map keys; the map
    /// node keeps an iterator back into the list for O(1) touch/evict.
    std::list<std::string> lru;
    struct DataNode {
      DataEntry entry;
      std::list<std::string>::iterator lru_it;
    };
    std::map<std::string, DataNode> data;
    std::size_t data_bytes = 0;
    std::map<std::string, MetaEntry> meta;
    std::map<std::string, std::int64_t> negative;  // path -> noted_at_us
  };

  Shard& shard_for(const std::string& path);
  const Shard& shard_for(const std::string& path) const;
  /// Evicts LRU data entries (never `keep`) until the shard fits its slice.
  void evict_locked(Shard& shard, const std::string& keep);

  CacheOptions options_;
  std::size_t shard_budget_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> drop_generation_{0};

  obs::Counter* evictions_ = nullptr;
  obs::Counter* drops_ = nullptr;
  obs::Counter* negative_invalidations_ = nullptr;
};

using ClientCachePtr = std::shared_ptr<ClientCache>;

}  // namespace rockfs::cache
