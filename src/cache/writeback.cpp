#include "cache/writeback.h"

namespace rockfs::cache {

WriteBackQueue::WriteBackQueue(WriteBackOptions options) : options_(options) {
  auto& reg = obs::metrics();
  staged_ = &reg.counter("cache.wb.staged");
  coalesced_ = &reg.counter("cache.wb.coalesced");
  discarded_ = &reg.counter("cache.wb.discarded");
}

bool WriteBackQueue::stage(const std::string& path, DirtyEntry entry) {
  std::lock_guard<std::mutex> lock(mu_);
  staged_->add();
  auto it = entries_.find(path);
  if (it == entries_.end()) {
    total_bytes_ += entry.content.size();
    entries_.emplace(path, std::move(entry));
    return false;
  }
  // Coalesce: the base (committed) side freezes at first staging; only the
  // content and the epochs of the latest write move.
  DirtyEntry& cur = it->second;
  total_bytes_ -= cur.content.size();
  total_bytes_ += entry.content.size();
  cur.content = std::move(entry.content);
  cur.write_epoch = entry.write_epoch;
  cur.stamp_epoch = entry.stamp_epoch;
  ++cur.coalesced;
  coalesced_->add();
  return true;
}

std::optional<DirtyEntry> WriteBackQueue::take(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(path);
  if (it == entries_.end()) return std::nullopt;
  DirtyEntry out = std::move(it->second);
  total_bytes_ -= out.content.size();
  entries_.erase(it);
  return out;
}

void WriteBackQueue::restage(const std::string& path, DirtyEntry entry) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(path);
  if (it == entries_.end()) {
    total_bytes_ += entry.content.size();
    entries_.emplace(path, std::move(entry));
    return;
  }
  // Something re-staged while the flush was in flight: the newer content
  // already supersedes what the failed flush carried; keep it.
}

std::optional<DirtyEntry> WriteBackQueue::snapshot(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(path);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

bool WriteBackQueue::contains(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.contains(path);
}

std::vector<std::string> WriteBackQueue::paths() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [path, entry] : entries_) out.push_back(path);
  return out;  // std::map iterates sorted
}

std::vector<std::string> WriteBackQueue::due_paths(std::int64_t now_us) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (const auto& [path, entry] : entries_) {
    if (now_us >= entry.first_dirty_us + options_.flush_deadline_us) {
      out.push_back(path);
    }
  }
  return out;
}

std::size_t WriteBackQueue::discard_all() {
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t n = entries_.size();
  discarded_->add(n);
  entries_.clear();
  total_bytes_ = 0;
  return n;
}

std::size_t WriteBackQueue::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::size_t WriteBackQueue::total_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_bytes_;
}

bool WriteBackQueue::over_cap() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_bytes_ > options_.dirty_bytes_cap;
}

}  // namespace rockfs::cache
