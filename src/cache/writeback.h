// Write-back staging queue (ARCHITECTURE §13.3): close() with write-back
// enabled parks the new content here instead of running the commit pipeline;
// later closes of the same path COALESCE into the staged entry (content
// replaced, the committed base kept), so a burst of small writes commits as
// ONE DepSky upload + ONE log append when the entry flushes. Flush triggers
// (deadline, dirty-bytes high-water mark, explicit fsync-style flush(),
// lease release) live in scfs — this class is only the deterministic
// container: entries iterate in sorted path order, timestamps are virtual,
// and every method is mutex-guarded so the queue is safe to inspect from
// test threads while the coordinator stages.
//
// Crash consistency (PR 3) is preserved by WHERE the flush runs, not here:
// the flush executes the full close pipeline — write-ahead intent first,
// then file put ∥ log append, then the inode move — so a crash mid-flush is
// classifiable at the next login exactly like a crash mid-close. Until the
// flush, staged bytes are RAM only and die with the process, same as bytes
// an application had not yet close()d.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "obs/metrics.h"

namespace rockfs::cache {

struct WriteBackOptions {
  bool enabled = false;
  /// Max virtual age of a staged entry before the next eligible operation
  /// flushes it (measured from the FIRST close coalesced into the entry, so
  /// a hot path cannot defer its commit forever).
  std::int64_t flush_deadline_us = 500'000;
  /// High-water mark across all staged entries: exceeding it drains the
  /// queue synchronously (bounds RAM and the crash-loss window).
  std::size_t dirty_bytes_cap = 8u << 20;
};

/// One staged (uncommitted) write. The base fields freeze at the FIRST
/// staging and survive coalescing: the flush commits base_version + 1 with
/// log_base as the delta base, regardless of how many closes were absorbed.
struct DirtyEntry {
  Bytes content;
  Bytes log_base;                 // committed content the log entry diffs against
  std::uint64_t base_version = 0; // committed inode version underneath
  std::uint64_t write_epoch = 0;  // fencing epoch of the write (kNoFenceEpoch = off)
  std::uint64_t stamp_epoch = 0;  // inode epoch to stamp when unfenced
  std::int64_t first_dirty_us = 0;
  std::size_t coalesced = 0;      // closes absorbed beyond the first
};

class WriteBackQueue {
 public:
  explicit WriteBackQueue(WriteBackOptions options);

  bool enabled() const noexcept { return options_.enabled; }
  const WriteBackOptions& options() const noexcept { return options_; }

  /// Stages `content` for `path`. A fresh path adopts every field of
  /// `entry`; an existing entry keeps its base/first_dirty and only takes
  /// the new content + epochs (coalescing). Returns true when coalesced.
  bool stage(const std::string& path, DirtyEntry entry);
  /// Removes and returns the staged entry (the flush owns it from here; a
  /// failed flush may re-stage it).
  std::optional<DirtyEntry> take(const std::string& path);
  /// Puts a taken entry back (transient flush failure — retried at the next
  /// trigger). A concurrent re-stage wins: restage then coalesces into it.
  void restage(const std::string& path, DirtyEntry entry);
  /// Copy for read-your-writes serving (open/stat overlays).
  std::optional<DirtyEntry> snapshot(const std::string& path) const;
  bool contains(const std::string& path) const;
  /// Every staged path, sorted (deterministic flush order).
  std::vector<std::string> paths() const;
  /// Staged paths whose deadline has passed at `now_us`, sorted.
  std::vector<std::string> due_paths(std::int64_t now_us) const;
  /// Drops everything without flushing (crash teardown, revocation).
  /// Returns the number of entries discarded.
  std::size_t discard_all();

  std::size_t entries() const;
  std::size_t total_bytes() const;
  bool over_cap() const;

 private:
  WriteBackOptions options_;
  mutable std::mutex mu_;
  std::map<std::string, DirtyEntry> entries_;
  std::size_t total_bytes_ = 0;

  obs::Counter* staged_ = nullptr;
  obs::Counter* coalesced_ = nullptr;
  obs::Counter* discarded_ = nullptr;
};

}  // namespace rockfs::cache
