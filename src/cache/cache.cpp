#include "cache/cache.h"

#include <algorithm>

namespace rockfs::cache {

namespace {

/// FNV-1a over the path: deterministic shard placement on every platform
/// (std::hash is implementation-defined, which would make eviction order —
/// and therefore digests — machine-dependent).
std::size_t fnv1a(const std::string& s) {
  std::uint64_t h = 14695981039346656037ull;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return static_cast<std::size_t>(h);
}

}  // namespace

ClientCache::ClientCache(CacheOptions options) : options_(options) {
  if (options_.shards == 0) options_.shards = 1;
  shard_budget_ = options_.capacity_bytes / options_.shards;
  shards_.reserve(options_.shards);
  for (std::size_t i = 0; i < options_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  auto& reg = obs::metrics();
  evictions_ = &reg.counter("cache.data.evictions");
  drops_ = &reg.counter("cache.drops");
  negative_invalidations_ = &reg.counter("cache.negative.invalidations");
}

ClientCache::Shard& ClientCache::shard_for(const std::string& path) {
  return *shards_[fnv1a(path) % shards_.size()];
}

const ClientCache::Shard& ClientCache::shard_for(const std::string& path) const {
  return *shards_[fnv1a(path) % shards_.size()];
}

void ClientCache::evict_locked(Shard& shard, const std::string& keep) {
  while (shard.data_bytes > shard_budget_ && !shard.lru.empty()) {
    const std::string& victim = shard.lru.back();
    if (victim == keep) break;  // the working entry never evicts itself
    const auto it = shard.data.find(victim);
    shard.data_bytes -= it->second.entry.raw.size();
    shard.data.erase(it);
    shard.lru.pop_back();
    evictions_->add();
  }
}

std::optional<DataEntry> ClientCache::get_data(const std::string& path) {
  Shard& shard = shard_for(path);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.data.find(path);
  if (it == shard.data.end()) return std::nullopt;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
  return it->second.entry;
}

void ClientCache::put_data(const std::string& path, Bytes raw, std::uint64_t version) {
  Shard& shard = shard_for(path);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.data.find(path);
  if (it != shard.data.end()) {
    shard.data_bytes -= it->second.entry.raw.size();
    shard.data_bytes += raw.size();
    it->second.entry = {std::move(raw), version};
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
  } else {
    shard.lru.push_front(path);
    shard.data_bytes += raw.size();
    shard.data.emplace(path,
                       Shard::DataNode{{std::move(raw), version}, shard.lru.begin()});
  }
  evict_locked(shard, path);
}

void ClientCache::erase_data(const std::string& path) {
  Shard& shard = shard_for(path);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.data.find(path);
  if (it == shard.data.end()) return;
  shard.data_bytes -= it->second.entry.raw.size();
  shard.lru.erase(it->second.lru_it);
  shard.data.erase(it);
}

std::optional<Bytes> ClientCache::peek_raw(const std::string& path) const {
  const Shard& shard = shard_for(path);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.data.find(path);
  if (it == shard.data.end()) return std::nullopt;
  return it->second.entry.raw;
}

void ClientCache::poke_raw(const std::string& path, Bytes raw) {
  Shard& shard = shard_for(path);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.data.find(path);
  if (it != shard.data.end()) {
    shard.data_bytes -= it->second.entry.raw.size();
    shard.data_bytes += raw.size();
    it->second.entry.raw = std::move(raw);
    return;
  }
  shard.lru.push_front(path);
  shard.data_bytes += raw.size();
  shard.data.emplace(path, Shard::DataNode{{std::move(raw), 0}, shard.lru.begin()});
}

std::optional<MetaEntry> ClientCache::get_meta(const std::string& path) const {
  const Shard& shard = shard_for(path);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.meta.find(path);
  if (it == shard.meta.end()) return std::nullopt;
  return it->second;
}

void ClientCache::put_meta(const std::string& path, const MetaEntry& meta) {
  Shard& shard = shard_for(path);
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.meta[path] = meta;
}

void ClientCache::erase_meta(const std::string& path) {
  Shard& shard = shard_for(path);
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.meta.erase(path);
}

bool ClientCache::is_negative(const std::string& path, std::int64_t now_us) const {
  const Shard& shard = shard_for(path);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.negative.find(path);
  if (it == shard.negative.end()) return false;
  return now_us < it->second + options_.negative_ttl_us;
}

void ClientCache::note_missing(const std::string& path, std::int64_t now_us) {
  Shard& shard = shard_for(path);
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.negative[path] = now_us;
}

void ClientCache::clear_negative(const std::string& path) {
  Shard& shard = shard_for(path);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.negative.erase(path) > 0) negative_invalidations_->add();
}

void ClientCache::invalidate(const std::string& path) {
  Shard& shard = shard_for(path);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.data.find(path);
  if (it != shard.data.end()) {
    shard.data_bytes -= it->second.entry.raw.size();
    shard.lru.erase(it->second.lru_it);
    shard.data.erase(it);
  }
  shard.meta.erase(path);
  if (shard.negative.erase(path) > 0) negative_invalidations_->add();
}

void ClientCache::drop_all() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->data.clear();
    shard->lru.clear();
    shard->data_bytes = 0;
    shard->meta.clear();
    shard->negative.clear();
  }
  drop_generation_.fetch_add(1, std::memory_order_relaxed);
  drops_->add();
}

std::size_t ClientCache::data_entries() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    n += shard->data.size();
  }
  return n;
}

std::size_t ClientCache::data_bytes() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    n += shard->data_bytes;
  }
  return n;
}

std::size_t ClientCache::meta_entries() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    n += shard->meta.size();
  }
  return n;
}

std::size_t ClientCache::negative_entries() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    n += shard->negative.size();
  }
  return n;
}

}  // namespace rockfs::cache
