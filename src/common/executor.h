// Real execution for the simulated stack: a fixed thread pool with
// submit()/Future, cooperative cancellation, and first-(n-f) quorum joins.
//
// The DepSky hot path fans per-cloud operations out on an Executor. Two join
// disciplines exist (JoinMode):
//
//   kBarrier     — every launched branch completes before the join returns;
//                  operation *completion time* is then composed from the
//                  branches' virtual delays (sim/timed.h quorum_delay), so a
//                  seeded run is byte-identical whether the branches executed
//                  sequentially or on N threads. This is the deterministic
//                  mode every test oracle relies on.
//   kFirstQuorum — the join freezes its included set at the quorum-th
//                  wall-clock success and cancels the stragglers (their
//                  emulated I/O sleeps are interrupted; the residual compute
//                  drains in the background before the join returns, so no
//                  caller memory can dangle). Wall-clock optimal; used by the
//                  latency-emulating benches, never by the determinism suite.
//
// A straggler that "lands" after the freeze keeps its result out of the
// included set — callers must account (metrics, acks) only over included
// branches, which is what makes late acks unable to double-count.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace rockfs::common {

/// How a fan-out completes (see file header).
enum class JoinMode { kBarrier, kFirstQuorum };

/// Shared cooperative-cancellation flag. Copies refer to the same state.
/// cancel() wakes every sleep_for() immediately.
class CancelToken {
 public:
  CancelToken() : state_(std::make_shared<State>()) {}

  void cancel() const {
    {
      std::lock_guard<std::mutex> lk(state_->mu);
      state_->cancelled = true;
    }
    state_->cv.notify_all();
  }

  bool cancelled() const {
    std::lock_guard<std::mutex> lk(state_->mu);
    return state_->cancelled;
  }

  /// Sleeps up to `d` of wall time; returns false when woken by cancel()
  /// (or already cancelled), true when the full duration elapsed.
  bool sleep_for(std::chrono::microseconds d) const {
    std::unique_lock<std::mutex> lk(state_->mu);
    return !state_->cv.wait_for(lk, d, [this] { return state_->cancelled; });
  }

 private:
  struct State {
    std::mutex mu;
    std::condition_variable cv;
    bool cancelled = false;
  };
  std::shared_ptr<State> state_;
};

/// Minimal single-producer future: the value set once by the task, read by
/// the submitter. get() blocks and rethrows a task exception.
template <typename T>
class Future {
 public:
  Future() : s_(std::make_shared<Shared>()) {}

  bool ready() const {
    std::lock_guard<std::mutex> lk(s_->mu);
    return s_->ready;
  }

  void wait() const {
    std::unique_lock<std::mutex> lk(s_->mu);
    s_->cv.wait(lk, [this] { return s_->ready; });
  }

  /// Blocks until the task finished; rethrows its exception if it threw.
  T get() const {
    std::unique_lock<std::mutex> lk(s_->mu);
    s_->cv.wait(lk, [this] { return s_->ready; });
    if (s_->error) std::rethrow_exception(s_->error);
    return *s_->value;
  }

  void set_value(T v) const {
    {
      std::lock_guard<std::mutex> lk(s_->mu);
      s_->value.emplace(std::move(v));
      s_->ready = true;
    }
    s_->cv.notify_all();
  }

  void set_exception(std::exception_ptr e) const {
    {
      std::lock_guard<std::mutex> lk(s_->mu);
      s_->error = e;
      s_->ready = true;
    }
    s_->cv.notify_all();
  }

 private:
  struct Shared {
    mutable std::mutex mu;
    std::condition_variable cv;
    std::optional<T> value;
    std::exception_ptr error;
    bool ready = false;
  };
  std::shared_ptr<Shared> s_;
};

/// Where fan-out branches run. concurrency() == 1 means branches execute in
/// the caller's thread, in launch order — the sequential baseline.
class Executor {
 public:
  virtual ~Executor() = default;

  /// Schedules `fn`. Implementations never throw out of the worker; `fn`
  /// must not either (submit() wraps exceptions into the Future).
  virtual void execute(std::function<void()> fn) = 0;
  virtual std::size_t concurrency() const noexcept = 0;

  /// Schedules `fn` and returns a Future for its result (exceptions travel
  /// through Future::get).
  template <typename F, typename R = std::invoke_result_t<F>>
  Future<R> submit(F&& fn) {
    Future<R> fut;
    execute([fut, f = std::forward<F>(fn)]() mutable {
      try {
        fut.set_value(f());
      } catch (...) {
        fut.set_exception(std::current_exception());
      }
    });
    return fut;
  }
};

/// Runs everything inline in the calling thread (the deterministic serial
/// baseline every pooled path degrades to).
class InlineExecutor final : public Executor {
 public:
  void execute(std::function<void()> fn) override { fn(); }
  std::size_t concurrency() const noexcept override { return 1; }
};

/// Fixed pool of worker threads over an unbounded FIFO queue. The destructor
/// drains every queued task before joining, so submitted work never vanishes.
class ThreadPool final : public Executor {
 public:
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool() override;

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void execute(std::function<void()> fn) override;
  std::size_t concurrency() const noexcept override { return workers_.size(); }
  /// Tasks executed so far (tests / introspection).
  std::uint64_t executed() const noexcept {
    return executed_.load(std::memory_order_relaxed);
  }

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::atomic<std::uint64_t> executed_{0};
  std::vector<std::thread> workers_;
};

/// Runs fn(0..count-1) to completion, on the pool when one is given (barrier
/// semantics; the first exception is rethrown after all branches finish) or
/// inline otherwise. Branch results must be written to disjoint slots.
void parallel_for_index(Executor* exec, std::size_t count,
                        const std::function<void(std::size_t)>& fn);

/// Join for `n` homogeneous branches with an optional first-quorum freeze.
///
/// With quorum_goal == 0 (barrier): every branch is included; wait() returns
/// once all have completed. With quorum_goal > 0: the included set freezes
/// the instant the goal-th successful branch lands; the shared CancelToken
/// fires so stragglers abandon their emulated waits, and wait() still drains
/// them (bounded by their residual compute) before returning — results that
/// land after the freeze are recorded but excluded. If the goal turns out to
/// be unreachable the freeze never happens and every branch is included,
/// degrading to barrier semantics (the caller sees the failure in its own
/// quorum arithmetic).
template <typename T>
class QuorumJoin {
 public:
  using Task = std::function<T(const CancelToken&)>;
  using SuccessPredicate = std::function<bool(const T&)>;

  explicit QuorumJoin(std::size_t n, std::size_t quorum_goal = 0)
      : state_(std::make_shared<State>()) {
    state_->results.resize(n);
    state_->errors.resize(n);
    state_->included.assign(n, false);
    state_->quorum_goal = quorum_goal;
  }

  const CancelToken& token() const { return state_->cancel; }

  void launch(Executor& exec, std::size_t index, Task task, SuccessPredicate is_success) {
    auto state = state_;
    {
      std::lock_guard<std::mutex> lk(state->mu);
      ++state->launched;
    }
    exec.execute([state, index, task = std::move(task), ok = std::move(is_success)] {
      std::optional<T> value;
      std::exception_ptr error;
      try {
        value.emplace(task(state->cancel));
      } catch (...) {
        error = std::current_exception();
      }
      const bool success = value.has_value() && (!ok || ok(*value));
      bool frozen_now = false;
      {
        std::lock_guard<std::mutex> lk(state->mu);
        state->results[index] = std::move(value);
        state->errors[index] = error;
        if (!state->frozen) {
          state->included[index] = true;
          if (success) ++state->included_successes;
          if (state->quorum_goal > 0 &&
              state->included_successes >= state->quorum_goal) {
            state->frozen = true;
          }
        }
        ++state->completed;
        frozen_now = state->frozen;  // snapshot under the lock (TSan-clean)
      }
      if (frozen_now) state->cancel.cancel();  // idempotent re-cancel is fine
      state->cv.notify_all();
    });
  }

  struct Snapshot {
    std::vector<std::optional<T>> results;     // every completed branch
    std::vector<std::exception_ptr> errors;    // per-branch task exception
    std::vector<bool> included;                // in the frozen quorum set
    std::size_t included_successes = 0;
    bool frozen = false;                       // the quorum goal was reached
  };

  /// Blocks until every launched branch completed (stragglers drain fast:
  /// a freeze cancels their token), then snapshots the frozen state.
  Snapshot wait() {
    std::unique_lock<std::mutex> lk(state_->mu);
    state_->cv.wait(lk, [this] { return state_->completed == state_->launched; });
    Snapshot snap;
    snap.results = std::move(state_->results);
    snap.errors = state_->errors;
    snap.included = state_->included;
    snap.included_successes = state_->included_successes;
    snap.frozen = state_->frozen;
    state_->results.clear();
    return snap;
  }

 private:
  struct State {
    std::mutex mu;
    std::condition_variable cv;
    std::vector<std::optional<T>> results;
    std::vector<std::exception_ptr> errors;
    std::vector<bool> included;
    std::size_t launched = 0;
    std::size_t completed = 0;
    std::size_t included_successes = 0;
    std::size_t quorum_goal = 0;
    bool frozen = false;
    CancelToken cancel;
  };
  std::shared_ptr<State> state_;
};

}  // namespace rockfs::common
