// Byte-buffer vocabulary types and helpers shared by every RockFS module.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace rockfs {

using Byte = std::uint8_t;
using Bytes = std::vector<Byte>;
using BytesView = std::span<const Byte>;

/// Copies a string's characters into a fresh byte buffer.
Bytes to_bytes(std::string_view s);

/// Interprets a byte buffer as UTF-8/ASCII text.
std::string to_string(BytesView b);

/// Concatenates any number of buffers into one.
Bytes concat(std::initializer_list<BytesView> parts);

/// Appends `src` to `dst`.
void append(Bytes& dst, BytesView src);

/// Appends a 64-bit value in big-endian byte order (for canonical encodings).
void append_u64(Bytes& dst, std::uint64_t v);

/// Appends a 32-bit value in big-endian byte order.
void append_u32(Bytes& dst, std::uint32_t v);

/// Reads a big-endian 64-bit value at `offset`; throws std::out_of_range past the end.
std::uint64_t read_u64(BytesView b, std::size_t offset);

/// Reads a big-endian 32-bit value at `offset`; throws std::out_of_range past the end.
std::uint32_t read_u32(BytesView b, std::size_t offset);

/// Appends a length-prefixed buffer (u32 length, then bytes). Inverse of read_lp.
void append_lp(Bytes& dst, BytesView src);

/// Reads a length-prefixed buffer at `*offset`, advancing it. Throws on truncation.
Bytes read_lp(BytesView b, std::size_t* offset);

/// Constant-time equality, for comparing MACs and keys.
bool ct_equal(BytesView a, BytesView b);

/// Best-effort secure wipe: overwrites the buffer through a volatile pointer
/// (so the store is not elided as dead) before clearing it. For plaintext key
/// material that must not survive in dropped heap blocks after rotation.
void secure_zero(Bytes& b);

/// XOR of two equal-length buffers; throws std::invalid_argument on size mismatch.
Bytes xor_bytes(BytesView a, BytesView b);

}  // namespace rockfs
