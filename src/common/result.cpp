#include "common/result.h"

namespace rockfs {

const char* error_code_name(ErrorCode c) {
  switch (c) {
    case ErrorCode::kOk: return "ok";
    case ErrorCode::kNotFound: return "not_found";
    case ErrorCode::kPermissionDenied: return "permission_denied";
    case ErrorCode::kUnavailable: return "unavailable";
    case ErrorCode::kIntegrity: return "integrity";
    case ErrorCode::kConflict: return "conflict";
    case ErrorCode::kInvalidArgument: return "invalid_argument";
    case ErrorCode::kExpired: return "expired";
    case ErrorCode::kCorrupted: return "corrupted";
    case ErrorCode::kInternal: return "internal";
    case ErrorCode::kTimeout: return "timeout";
  }
  return "unknown";
}

bool is_retryable(ErrorCode c) {
  return c == ErrorCode::kUnavailable || c == ErrorCode::kTimeout;
}

}  // namespace rockfs
