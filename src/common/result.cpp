#include "common/result.h"

namespace rockfs {

const char* error_code_name(ErrorCode c) {
  switch (c) {
    case ErrorCode::kOk: return "ok";
    case ErrorCode::kNotFound: return "not_found";
    case ErrorCode::kPermissionDenied: return "permission_denied";
    case ErrorCode::kUnavailable: return "unavailable";
    case ErrorCode::kIntegrity: return "integrity";
    case ErrorCode::kConflict: return "conflict";
    case ErrorCode::kInvalidArgument: return "invalid_argument";
    case ErrorCode::kExpired: return "expired";
    case ErrorCode::kCorrupted: return "corrupted";
    case ErrorCode::kInternal: return "internal";
    case ErrorCode::kTimeout: return "timeout";
    case ErrorCode::kCrashed: return "crashed";
    case ErrorCode::kPartialCommit: return "partial_commit";
    case ErrorCode::kFenced: return "fenced";
    case ErrorCode::kRevoked: return "revoked";
    case ErrorCode::kStaleVersion: return "stale_version";
    case ErrorCode::kEquivocation: return "equivocation";
  }
  return "unknown";
}

bool is_retryable(ErrorCode c) {
  // kPartialCommit is retryable by design: the payload half of the log entry
  // is durable, the writer's signer has NOT evolved, and the commit path is
  // idempotent (seq-keyed replace), so re-running the append either adopts
  // the durable payload or finishes the metadata commit.
  return c == ErrorCode::kUnavailable || c == ErrorCode::kTimeout ||
         c == ErrorCode::kPartialCommit;
}

}  // namespace rockfs
