// Tiny leveled logger. Quiet by default so tests and benches stay readable;
// raise the level with set_log_level or ROCKFS_LOG=debug.
#pragma once

#include <sstream>
#include <string>

namespace rockfs {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_line(LogLevel level, const std::string& msg);
}

#define ROCKFS_LOG(level, expr)                                        \
  do {                                                                 \
    if (static_cast<int>(level) >= static_cast<int>(::rockfs::log_level())) { \
      std::ostringstream rockfs_log_oss_;                              \
      rockfs_log_oss_ << expr;                                         \
      ::rockfs::detail::log_line(level, rockfs_log_oss_.str());        \
    }                                                                  \
  } while (0)

#define LOG_DEBUG(expr) ROCKFS_LOG(::rockfs::LogLevel::kDebug, expr)
#define LOG_INFO(expr) ROCKFS_LOG(::rockfs::LogLevel::kInfo, expr)
#define LOG_WARN(expr) ROCKFS_LOG(::rockfs::LogLevel::kWarn, expr)
#define LOG_ERROR(expr) ROCKFS_LOG(::rockfs::LogLevel::kError, expr)

}  // namespace rockfs
