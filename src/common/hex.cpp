#include "common/hex.h"

#include <array>
#include <stdexcept>

namespace rockfs {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";
constexpr char kB64Digits[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

int hex_val(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  throw std::invalid_argument("hex_decode: invalid digit");
}

std::array<int, 256> b64_table() {
  std::array<int, 256> t{};
  t.fill(-1);
  for (int i = 0; i < 64; ++i) t[static_cast<unsigned char>(kB64Digits[i])] = i;
  return t;
}
}  // namespace

std::string hex_encode(BytesView b) {
  std::string out;
  out.reserve(b.size() * 2);
  for (Byte x : b) {
    out.push_back(kHexDigits[x >> 4]);
    out.push_back(kHexDigits[x & 0xF]);
  }
  return out;
}

Bytes hex_decode(std::string_view s) {
  if (s.size() % 2 != 0) throw std::invalid_argument("hex_decode: odd length");
  Bytes out;
  out.reserve(s.size() / 2);
  for (std::size_t i = 0; i < s.size(); i += 2) {
    out.push_back(static_cast<Byte>((hex_val(s[i]) << 4) | hex_val(s[i + 1])));
  }
  return out;
}

std::string base64_encode(BytesView b) {
  std::string out;
  out.reserve((b.size() + 2) / 3 * 4);
  std::size_t i = 0;
  for (; i + 3 <= b.size(); i += 3) {
    const std::uint32_t v = (static_cast<std::uint32_t>(b[i]) << 16) |
                            (static_cast<std::uint32_t>(b[i + 1]) << 8) | b[i + 2];
    out.push_back(kB64Digits[(v >> 18) & 63]);
    out.push_back(kB64Digits[(v >> 12) & 63]);
    out.push_back(kB64Digits[(v >> 6) & 63]);
    out.push_back(kB64Digits[v & 63]);
  }
  const std::size_t rem = b.size() - i;
  if (rem == 1) {
    const std::uint32_t v = static_cast<std::uint32_t>(b[i]) << 16;
    out.push_back(kB64Digits[(v >> 18) & 63]);
    out.push_back(kB64Digits[(v >> 12) & 63]);
    out += "==";
  } else if (rem == 2) {
    const std::uint32_t v = (static_cast<std::uint32_t>(b[i]) << 16) |
                            (static_cast<std::uint32_t>(b[i + 1]) << 8);
    out.push_back(kB64Digits[(v >> 18) & 63]);
    out.push_back(kB64Digits[(v >> 12) & 63]);
    out.push_back(kB64Digits[(v >> 6) & 63]);
    out.push_back('=');
  }
  return out;
}

Bytes base64_decode(std::string_view s) {
  static const std::array<int, 256> table = b64_table();
  if (s.size() % 4 != 0) throw std::invalid_argument("base64_decode: bad length");
  Bytes out;
  out.reserve(s.size() / 4 * 3);
  for (std::size_t i = 0; i < s.size(); i += 4) {
    int pad = 0;
    std::uint32_t v = 0;
    for (int j = 0; j < 4; ++j) {
      const char c = s[i + static_cast<std::size_t>(j)];
      if (c == '=') {
        if (i + 4 != s.size() || j < 2) throw std::invalid_argument("base64: bad pad");
        ++pad;
        v <<= 6;
        continue;
      }
      if (pad > 0) throw std::invalid_argument("base64: data after pad");
      const int d = table[static_cast<unsigned char>(c)];
      if (d < 0) throw std::invalid_argument("base64: invalid digit");
      v = (v << 6) | static_cast<std::uint32_t>(d);
    }
    out.push_back(static_cast<Byte>(v >> 16));
    if (pad < 2) out.push_back(static_cast<Byte>(v >> 8));
    if (pad < 1) out.push_back(static_cast<Byte>(v));
  }
  return out;
}

}  // namespace rockfs
