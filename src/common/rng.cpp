#include "common/rng.h"

#include <cmath>
#include <stdexcept>

namespace rockfs {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("Rng::next_below: bound 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % bound;
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return v % bound;
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::next_gaussian() {
  if (have_gauss_) {
    have_gauss_ = false;
    return gauss_;
  }
  double u1 = 0.0;
  while (u1 == 0.0) u1 = next_double();
  const double u2 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  gauss_ = r * std::sin(theta);
  have_gauss_ = true;
  return r * std::cos(theta);
}

Bytes Rng::next_bytes(std::size_t n) {
  Bytes out(n);
  std::size_t i = 0;
  while (i + 8 <= n) {
    const std::uint64_t v = next_u64();
    for (int j = 0; j < 8; ++j) out[i + static_cast<std::size_t>(j)] = static_cast<Byte>(v >> (8 * j));
    i += 8;
  }
  if (i < n) {
    const std::uint64_t v = next_u64();
    for (int j = 0; i < n; ++i, ++j) out[i] = static_cast<Byte>(v >> (8 * j));
  }
  return out;
}

Rng Rng::fork() { return Rng(next_u64() ^ 0xA5A5A5A55A5A5A5AULL); }

}  // namespace rockfs
