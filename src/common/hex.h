// Hex and base64 codecs for keys, digests and object names.
#pragma once

#include <string>

#include "common/bytes.h"

namespace rockfs {

/// Lower-case hex encoding.
std::string hex_encode(BytesView b);

/// Decodes hex (upper or lower case); throws std::invalid_argument on bad input.
Bytes hex_decode(std::string_view s);

/// Standard base64 with padding.
std::string base64_encode(BytesView b);

/// Decodes base64; throws std::invalid_argument on bad input.
Bytes base64_decode(std::string_view s);

}  // namespace rockfs
