// Minimal expected-like Result type for recoverable failures (C++20 has no
// std::expected). Exceptions remain for programming errors and broken invariants;
// Result is for failures a correct caller must handle: cloud unavailability,
// permission denial, integrity-check mismatch, missing objects.
#pragma once

#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace rockfs {

enum class ErrorCode {
  kOk = 0,
  kNotFound,          // object / tuple / file does not exist
  kPermissionDenied,  // token does not authorize the operation
  kUnavailable,       // provider or quorum unreachable
  kIntegrity,         // MAC / hash / signature / share verification failed
  kConflict,          // version conflict, lock held, concurrent writer
  kInvalidArgument,   // malformed input that is data-dependent, not a code bug
  kExpired,           // token or session key past its validity
  kCorrupted,         // stored data failed to decode
  kInternal,
  kTimeout,           // operation exceeded its (simulated) deadline
  kCrashed,           // client process died mid-operation (sim::ClientCrash)
  kPartialCommit,     // durable payload, uncommitted metadata; retry is safe
  kFenced,            // writer's fencing epoch is stale; commit refused
  kRevoked,           // token epoch below the user's revocation floor
  kStaleVersion,      // quorum served a version below the witnessed high-water mark
  kEquivocation,      // cloud served divergent valid versions to different sessions
};

/// Human-readable name of an ErrorCode ("not_found", "integrity", ...).
const char* error_code_name(ErrorCode c);

/// Whether an error is worth retrying as-is: transient transport failures
/// (kUnavailable, kTimeout) are; semantic failures (permission, integrity,
/// not-found, ...) would fail identically on every attempt and are not.
bool is_retryable(ErrorCode c);

struct Error {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;
};

/// Thrown by Result::value() when the result holds an error.
class BadResultAccess : public std::runtime_error {
 public:
  explicit BadResultAccess(const Error& e)
      : std::runtime_error(std::string(error_code_name(e.code)) + ": " + e.message),
        error_(e) {}
  const Error& error() const noexcept { return error_; }

 private:
  Error error_;
};

template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : v_(std::move(value)) {}  // NOLINT: implicit on purpose
  Result(Error e) : v_(std::move(e)) {}      // NOLINT: implicit on purpose
  Result(ErrorCode c, std::string msg) : v_(Error{c, std::move(msg)}) {}

  bool ok() const noexcept { return std::holds_alternative<T>(v_); }
  explicit operator bool() const noexcept { return ok(); }

  const T& value() const& {
    if (!ok()) throw BadResultAccess(std::get<Error>(v_));
    return std::get<T>(v_);
  }
  T& value() & {
    if (!ok()) throw BadResultAccess(std::get<Error>(v_));
    return std::get<T>(v_);
  }
  T&& value() && {
    if (!ok()) throw BadResultAccess(std::get<Error>(v_));
    return std::get<T>(std::move(v_));
  }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  const Error& error() const {
    if (ok()) throw std::logic_error("Result::error() on ok result");
    return std::get<Error>(v_);
  }
  /// Throws BadResultAccess with context unless ok; returns the value.
  /// For call sites where failure is a bug rather than a handled condition.
  const T& expect(const char* what) const& {
    if (!ok()) {
      const Error& e = std::get<Error>(v_);
      throw BadResultAccess(Error{e.code, std::string(what) + ": " + e.message});
    }
    return std::get<T>(v_);
  }
  ErrorCode code() const noexcept {
    return ok() ? ErrorCode::kOk : std::get<Error>(v_).code;
  }

 private:
  std::variant<T, Error> v_;
};

/// Result for operations with no payload.
class [[nodiscard]] Status {
 public:
  Status() = default;  // ok
  Status(Error e) : err_(std::move(e)), ok_(false) {}  // NOLINT
  Status(ErrorCode c, std::string msg) : err_{c, std::move(msg)}, ok_(false) {}

  static Status Ok() { return Status(); }

  bool ok() const noexcept { return ok_; }
  explicit operator bool() const noexcept { return ok_; }
  const Error& error() const {
    if (ok_) throw std::logic_error("Status::error() on ok status");
    return err_;
  }
  ErrorCode code() const noexcept { return ok_ ? ErrorCode::kOk : err_.code; }
  /// Throws BadResultAccess unless ok. For call sites where failure is a bug.
  void expect(const char* what) const {
    if (!ok_) throw BadResultAccess(Error{err_.code, std::string(what) + ": " + err_.message});
  }

 private:
  Error err_;
  bool ok_ = true;
};

}  // namespace rockfs
