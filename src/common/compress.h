// LZ77-style compression with a 64 KiB sliding window and greedy hash-chain
// matching. Implements the paper's §6.2 future-work suggestion: "Compression
// techniques could also be used to reduce the overall storage required by
// RockFS" — the log service can compress each ld_fu payload before the
// cloud-of-clouds upload (see rockfs::core::LogService).
#pragma once

#include "common/bytes.h"
#include "common/result.h"

namespace rockfs {

/// Compresses `data`. Output always decompresses back exactly; for
/// incompressible input it is at most a few % larger than the input.
Bytes lz_compress(BytesView data);

/// Inverse of lz_compress. Fails with kCorrupted on malformed streams.
/// `max_size` bounds the output to defend against decompression bombs.
Result<Bytes> lz_decompress(BytesView compressed, std::size_t max_size = 1ULL << 32);

}  // namespace rockfs
