#include "common/retry.h"

namespace rockfs {

sim::SimClock::Micros Backoff::next_us() {
  const auto lo = policy_.base_backoff_us;
  const auto hi = prev_us_ * 3;
  const auto span = hi > lo ? static_cast<std::uint64_t>(hi - lo) : 0;
  auto sleep = lo + static_cast<sim::SimClock::Micros>(
                        span == 0 ? 0 : rng_.next_below(span + 1));
  if (sleep > policy_.max_backoff_us) sleep = policy_.max_backoff_us;
  prev_us_ = sleep;
  return sleep;
}

}  // namespace rockfs
