// Deterministic pseudo-random source used for workload generation and the
// simulator's jitter. Not for keys: cryptographic material comes from
// crypto::Drbg, which is seeded from one of these only in tests/simulations.
#pragma once

#include <cstdint>

#include "common/bytes.h"

namespace rockfs {

/// xoshiro256** 1.0 (Blackman & Vigna), seeded through SplitMix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  std::uint64_t next_u64();

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Gaussian via Box-Muller (mean 0, stddev 1).
  double next_gaussian();

  /// Fills a buffer with pseudo-random bytes.
  Bytes next_bytes(std::size_t n);

  /// Derives an independent child generator (for per-component streams).
  Rng fork();

 private:
  std::uint64_t s_[4];
  bool have_gauss_ = false;
  double gauss_ = 0.0;
};

}  // namespace rockfs
