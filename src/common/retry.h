// Retry with exponential backoff, decorrelated jitter and an overall
// deadline, operating on sim::Timed results: backoff pauses are charged to
// the operation's *simulated* delay, never to wall-clock time, so retried
// operations compose with the rest of the latency model and experiments
// stay deterministic.
//
// Only transport-class errors are retried (see is_retryable in result.h);
// semantic failures (permission, integrity, not-found, ...) surface
// immediately.
#pragma once

#include <cstdint>
#include <utility>

#include "common/result.h"
#include "common/rng.h"
#include "sim/timed.h"

namespace rockfs {

struct RetryPolicy {
  int max_attempts = 4;                            // first try + 3 retries
  sim::SimClock::Micros base_backoff_us = 50'000;  // first backoff floor
  sim::SimClock::Micros max_backoff_us = 2'000'000;
  /// Total simulated-time budget (attempts + backoffs). 0 = unlimited.
  sim::SimClock::Micros deadline_us = 30'000'000;
};

/// Decorrelated-jitter backoff generator (AWS architecture-blog variant):
/// sleep_n = min(cap, uniform(base, 3 * sleep_{n-1})). Deterministic per seed.
class Backoff {
 public:
  Backoff(const RetryPolicy& policy, std::uint64_t seed)
      : policy_(policy), rng_(seed), prev_us_(policy.base_backoff_us) {}

  sim::SimClock::Micros next_us();
  void reset() { prev_us_ = policy_.base_backoff_us; }

 private:
  RetryPolicy policy_;
  Rng rng_;
  sim::SimClock::Micros prev_us_;
};

/// Bookkeeping a retry loop reports back to its caller.
struct RetryOutcome {
  int attempts = 0;                           // operations actually issued
  sim::SimClock::Micros backoff_us = 0;       // total simulated pause
  bool deadline_exhausted = false;            // stopped by the time budget
};

/// Runs `op` (a callable returning sim::Timed<Status> or sim::Timed<Result<T>>)
/// until it succeeds, fails non-retryably, exhausts max_attempts, or would
/// overrun the deadline. The returned Timed carries the *last* attempt's
/// payload and the summed delay of every attempt plus backoff pauses.
template <typename Op>
auto retry_timed(const RetryPolicy& policy, std::uint64_t seed, Op&& op,
                 RetryOutcome* outcome = nullptr) -> decltype(op()) {
  Backoff backoff(policy, seed);
  RetryOutcome local;
  auto timed = op();
  local.attempts = 1;
  sim::SimClock::Micros total = timed.delay;
  while (!timed.value.ok() && is_retryable(timed.value.code()) &&
         local.attempts < policy.max_attempts) {
    const auto pause = backoff.next_us();
    if (policy.deadline_us > 0 && total + pause >= policy.deadline_us) {
      local.deadline_exhausted = true;
      break;
    }
    total += pause;
    local.backoff_us += pause;
    timed = op();
    ++local.attempts;
    total += timed.delay;
  }
  if (policy.deadline_us > 0 && total >= policy.deadline_us) {
    local.deadline_exhausted = true;
  }
  timed.delay = total;
  if (outcome != nullptr) *outcome = local;
  return timed;
}

}  // namespace rockfs
