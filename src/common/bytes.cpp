#include "common/bytes.h"

#include <stdexcept>

namespace rockfs {

Bytes to_bytes(std::string_view s) { return Bytes(s.begin(), s.end()); }

std::string to_string(BytesView b) { return std::string(b.begin(), b.end()); }

Bytes concat(std::initializer_list<BytesView> parts) {
  std::size_t total = 0;
  for (const auto& p : parts) total += p.size();
  Bytes out;
  out.reserve(total);
  for (const auto& p : parts) out.insert(out.end(), p.begin(), p.end());
  return out;
}

void append(Bytes& dst, BytesView src) { dst.insert(dst.end(), src.begin(), src.end()); }

void append_u64(Bytes& dst, std::uint64_t v) {
  for (int i = 7; i >= 0; --i) dst.push_back(static_cast<Byte>(v >> (8 * i)));
}

void append_u32(Bytes& dst, std::uint32_t v) {
  for (int i = 3; i >= 0; --i) dst.push_back(static_cast<Byte>(v >> (8 * i)));
}

std::uint64_t read_u64(BytesView b, std::size_t offset) {
  if (offset + 8 > b.size()) throw std::out_of_range("read_u64 past end");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | b[offset + static_cast<std::size_t>(i)];
  return v;
}

std::uint32_t read_u32(BytesView b, std::size_t offset) {
  if (offset + 4 > b.size()) throw std::out_of_range("read_u32 past end");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = (v << 8) | b[offset + static_cast<std::size_t>(i)];
  return v;
}

void append_lp(Bytes& dst, BytesView src) {
  append_u32(dst, static_cast<std::uint32_t>(src.size()));
  append(dst, src);
}

Bytes read_lp(BytesView b, std::size_t* offset) {
  const std::uint32_t len = read_u32(b, *offset);
  *offset += 4;
  if (*offset + len > b.size()) throw std::out_of_range("read_lp past end");
  Bytes out(b.begin() + static_cast<std::ptrdiff_t>(*offset),
            b.begin() + static_cast<std::ptrdiff_t>(*offset + len));
  *offset += len;
  return out;
}

bool ct_equal(BytesView a, BytesView b) {
  if (a.size() != b.size()) return false;
  Byte acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc |= static_cast<Byte>(a[i] ^ b[i]);
  return acc == 0;
}

void secure_zero(Bytes& b) {
  volatile Byte* p = b.data();
  for (std::size_t i = 0; i < b.size(); ++i) p[i] = 0;
  b.clear();
  b.shrink_to_fit();
}

Bytes xor_bytes(BytesView a, BytesView b) {
  if (a.size() != b.size()) throw std::invalid_argument("xor_bytes: size mismatch");
  Bytes out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = static_cast<Byte>(a[i] ^ b[i]);
  return out;
}

}  // namespace rockfs
