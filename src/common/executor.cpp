#include "common/executor.h"

namespace rockfs::common {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::execute(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    queue_.push_back(std::move(fn));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> fn;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      fn = std::move(queue_.front());
      queue_.pop_front();
    }
    fn();
    executed_.fetch_add(1, std::memory_order_relaxed);
  }
}

void parallel_for_index(Executor* exec, std::size_t count,
                        const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (exec == nullptr || exec->concurrency() <= 1 || count == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  struct Barrier {
    std::mutex mu;
    std::condition_variable cv;
    std::size_t pending;
    std::exception_ptr first_error;
  };
  auto bar = std::make_shared<Barrier>();
  bar->pending = count;
  for (std::size_t i = 0; i < count; ++i) {
    exec->execute([bar, i, &fn] {
      std::exception_ptr err;
      try {
        fn(i);
      } catch (...) {
        err = std::current_exception();
      }
      std::lock_guard<std::mutex> lk(bar->mu);
      if (err && !bar->first_error) bar->first_error = err;
      if (--bar->pending == 0) bar->cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lk(bar->mu);
  bar->cv.wait(lk, [&bar] { return bar->pending == 0; });
  if (bar->first_error) std::rethrow_exception(bar->first_error);
}

}  // namespace rockfs::common
