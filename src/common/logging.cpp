#include "common/logging.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <mutex>

namespace rockfs {

namespace {
std::atomic<LogLevel> g_level = [] {
  const char* env = std::getenv("ROCKFS_LOG");
  if (env == nullptr) return LogLevel::kWarn;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "off") == 0) return LogLevel::kOff;
  return LogLevel::kWarn;
}();

const char* level_tag(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

namespace detail {
void log_line(LogLevel level, const std::string& msg) {
  static std::mutex mu;
  const std::lock_guard<std::mutex> lock(mu);
  std::clog << "[rockfs " << level_tag(level) << "] " << msg << '\n';
}
}  // namespace detail

}  // namespace rockfs
