#include "common/compress.h"

#include <array>
#include <cstring>

namespace rockfs {

namespace {

// Stream layout: u64 uncompressed size, then tokens:
//   0x00  lp(literal bytes)
//   0x01  u32 distance (1..65535), u32 length (>= kMinMatch)
constexpr Byte kOpLiteral = 0x00;
constexpr Byte kOpMatch = 0x01;
constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxDistance = 65'535;
constexpr std::size_t kHashBits = 15;

std::uint32_t hash4(const Byte* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

}  // namespace

Bytes lz_compress(BytesView data) {
  Bytes out;
  append_u64(out, data.size());
  if (data.empty()) return out;

  // Last position seen for each 4-byte hash (single-entry chains: greedy
  // and fast; compression ratio is secondary to correctness here).
  std::array<std::size_t, 1u << kHashBits> table;
  table.fill(SIZE_MAX);

  Bytes literals;
  auto flush_literals = [&] {
    if (literals.empty()) return;
    out.push_back(kOpLiteral);
    append_lp(out, literals);
    literals.clear();
  };

  std::size_t pos = 0;
  while (pos < data.size()) {
    std::size_t match_len = 0;
    std::size_t match_dist = 0;
    if (pos + kMinMatch <= data.size()) {
      const std::uint32_t h = hash4(data.data() + pos);
      const std::size_t candidate = table[h];
      table[h] = pos;
      if (candidate != SIZE_MAX && pos - candidate <= kMaxDistance) {
        // Extend the match as far as it goes.
        std::size_t len = 0;
        const std::size_t limit = data.size() - pos;
        while (len < limit && data[candidate + len] == data[pos + len]) ++len;
        if (len >= kMinMatch) {
          match_len = len;
          match_dist = pos - candidate;
        }
      }
    }
    if (match_len > 0) {
      flush_literals();
      out.push_back(kOpMatch);
      append_u32(out, static_cast<std::uint32_t>(match_dist));
      append_u32(out, static_cast<std::uint32_t>(match_len));
      // Index positions inside the match so later data can reference it.
      const std::size_t end = pos + match_len;
      for (std::size_t p = pos + 1; p + kMinMatch <= data.size() && p < end; ++p) {
        table[hash4(data.data() + p)] = p;
      }
      pos = end;
    } else {
      literals.push_back(data[pos]);
      ++pos;
    }
  }
  flush_literals();
  return out;
}

Result<Bytes> lz_decompress(BytesView compressed, std::size_t max_size) {
  try {
    const std::uint64_t expected = read_u64(compressed, 0);
    if (expected > max_size) {
      return Error{ErrorCode::kCorrupted, "lz: declared size exceeds limit"};
    }
    Bytes out;
    out.reserve(expected);
    std::size_t off = 8;
    while (off < compressed.size()) {
      const Byte op = compressed[off++];
      if (op == kOpLiteral) {
        const Bytes lit = read_lp(compressed, &off);
        if (out.size() + lit.size() > expected) {
          return Error{ErrorCode::kCorrupted, "lz: output overruns declared size"};
        }
        append(out, lit);
      } else if (op == kOpMatch) {
        const std::uint32_t dist = read_u32(compressed, off);
        const std::uint32_t len = read_u32(compressed, off + 4);
        off += 8;
        if (dist == 0 || dist > out.size()) {
          return Error{ErrorCode::kCorrupted, "lz: bad match distance"};
        }
        if (out.size() + len > expected) {
          return Error{ErrorCode::kCorrupted, "lz: output overruns declared size"};
        }
        // Byte-by-byte copy: overlapping matches (dist < len) are valid RLE.
        const std::size_t start = out.size() - dist;
        for (std::uint32_t i = 0; i < len; ++i) out.push_back(out[start + i]);
      } else {
        return Error{ErrorCode::kCorrupted, "lz: unknown opcode"};
      }
    }
    if (out.size() != expected) {
      return Error{ErrorCode::kCorrupted, "lz: truncated stream"};
    }
    return out;
  } catch (const std::out_of_range&) {
    return Error{ErrorCode::kCorrupted, "lz: truncated stream"};
  }
}

}  // namespace rockfs
