#include "diff/binary_diff.h"

#include <algorithm>
#include <unordered_map>

#include "crypto/sha256.h"

namespace rockfs::diff {

namespace {

// Opcode stream format (all integers big-endian):
//   0x01 COPY   u64 old_offset, u64 length
//   0x02 INSERT lp bytes
constexpr Byte kOpCopy = 0x01;
constexpr Byte kOpInsert = 0x02;

// Adler-32-style weak rolling checksum.
struct RollingHash {
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  std::size_t len = 0;

  static constexpr std::uint32_t kMod = 65521;

  void init(BytesView window) {
    a = b = 0;
    len = window.size();
    for (const Byte x : window) {
      a = (a + x) % kMod;
      b = (b + a) % kMod;
    }
  }
  void roll(Byte out, Byte in) {
    a = (a + kMod - out + in) % kMod;
    b = (b + kMod - static_cast<std::uint32_t>(len % kMod) * out % kMod + a) % kMod;
  }
  std::uint32_t digest() const { return (b << 16) | a; }
};

std::uint64_t strong_hash(BytesView block) {
  const Bytes h = crypto::sha256(block);
  return read_u64(h, 0);
}

std::size_t pick_block_size(std::size_t old_size) {
  if (old_size < 4096) return std::max<std::size_t>(old_size / 4, 16);
  if (old_size < (1u << 20)) return 1024;
  return 4096;
}

void emit_copy(Bytes& out, std::uint64_t offset, std::uint64_t length) {
  out.push_back(kOpCopy);
  append_u64(out, offset);
  append_u64(out, length);
}

void emit_insert(Bytes& out, BytesView literal) {
  if (literal.empty()) return;
  out.push_back(kOpInsert);
  append_lp(out, literal);
}

}  // namespace

Bytes encode(BytesView old_data, BytesView new_data, std::size_t block_size) {
  Bytes out;
  if (old_data.empty() || new_data.empty()) {
    emit_insert(out, new_data);
    return out;
  }
  const std::size_t bs = block_size != 0 ? block_size : pick_block_size(old_data.size());

  // Index old blocks by weak hash -> (strong hash, offset).
  struct BlockRef {
    std::uint64_t strong;
    std::size_t offset;
  };
  std::unordered_multimap<std::uint32_t, BlockRef> index;
  index.reserve(old_data.size() / bs + 1);
  RollingHash wh;
  for (std::size_t off = 0; off + bs <= old_data.size(); off += bs) {
    const BytesView block = old_data.subspan(off, bs);
    wh.init(block);
    index.emplace(wh.digest(), BlockRef{strong_hash(block), off});
  }

  Bytes pending_literal;
  std::size_t pos = 0;
  // Coalesced COPY state.
  bool copy_open = false;
  std::uint64_t copy_off = 0, copy_len = 0;

  auto flush_copy = [&] {
    if (copy_open) {
      emit_copy(out, copy_off, copy_len);
      copy_open = false;
    }
  };
  auto flush_literal = [&] {
    flush_copy();
    emit_insert(out, pending_literal);
    pending_literal.clear();
  };

  RollingHash rh;
  bool rh_valid = false;
  while (pos < new_data.size()) {
    if (pos + bs > new_data.size()) {
      // Tail shorter than a block: emit as literal.
      flush_copy();
      append(pending_literal, new_data.subspan(pos));
      pos = new_data.size();
      break;
    }
    if (!rh_valid) {
      rh.init(new_data.subspan(pos, bs));
      rh_valid = true;
    }
    // Look up the window.
    std::size_t match_off = SIZE_MAX;
    auto [it, end] = index.equal_range(rh.digest());
    if (it != end) {
      const std::uint64_t strong = strong_hash(new_data.subspan(pos, bs));
      for (; it != end; ++it) {
        if (it->second.strong == strong &&
            std::equal(new_data.begin() + static_cast<std::ptrdiff_t>(pos),
                       new_data.begin() + static_cast<std::ptrdiff_t>(pos + bs),
                       old_data.begin() + static_cast<std::ptrdiff_t>(it->second.offset))) {
          match_off = it->second.offset;
          break;
        }
      }
    }
    if (match_off != SIZE_MAX) {
      if (!pending_literal.empty()) flush_literal();
      // Extend an open COPY when contiguous.
      if (copy_open && copy_off + copy_len == match_off) {
        copy_len += bs;
      } else {
        flush_copy();
        copy_open = true;
        copy_off = match_off;
        copy_len = bs;
      }
      pos += bs;
      rh_valid = false;
    } else {
      flush_copy();
      pending_literal.push_back(new_data[pos]);
      if (pos + bs < new_data.size()) {
        rh.roll(new_data[pos], new_data[pos + bs]);
      } else {
        rh_valid = false;
      }
      ++pos;
    }
  }
  flush_literal();
  return out;
}

Result<Bytes> patch(BytesView old_data, BytesView delta) {
  Bytes out;
  std::size_t off = 0;
  try {
    while (off < delta.size()) {
      const Byte op = delta[off++];
      if (op == kOpCopy) {
        const std::uint64_t src = read_u64(delta, off);
        const std::uint64_t len = read_u64(delta, off + 8);
        off += 16;
        if (src + len > old_data.size() || src + len < src) {
          return Error{ErrorCode::kCorrupted, "patch: copy out of range"};
        }
        append(out, old_data.subspan(src, len));
      } else if (op == kOpInsert) {
        const Bytes literal = read_lp(delta, &off);
        append(out, literal);
      } else {
        return Error{ErrorCode::kCorrupted, "patch: unknown opcode"};
      }
    }
  } catch (const std::out_of_range&) {
    return Error{ErrorCode::kCorrupted, "patch: truncated delta"};
  }
  return out;
}

Bytes LogDelta::serialize() const {
  Bytes out;
  out.push_back(whole_file ? 1 : 0);
  append(out, payload);
  return out;
}

Result<LogDelta> LogDelta::deserialize(BytesView b) {
  if (b.empty()) return Error{ErrorCode::kCorrupted, "log delta: empty"};
  if (b[0] > 1) return Error{ErrorCode::kCorrupted, "log delta: bad flag"};
  LogDelta d;
  d.whole_file = b[0] == 1;
  d.payload.assign(b.begin() + 1, b.end());
  return d;
}

LogDelta make_log_delta(BytesView old_data, BytesView new_data) {
  LogDelta d;
  Bytes delta = encode(old_data, new_data);
  if (delta.size() < new_data.size()) {
    d.whole_file = false;
    d.payload = std::move(delta);
  } else {
    d.whole_file = true;
    d.payload.assign(new_data.begin(), new_data.end());
  }
  return d;
}

Result<Bytes> apply_log_delta(BytesView old_data, const LogDelta& delta) {
  if (delta.whole_file) return Bytes(delta.payload);
  return patch(old_data, delta.payload);
}

}  // namespace rockfs::diff
