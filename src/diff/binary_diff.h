// Binary delta encoding, standing in for the paper's JBDiff. An rsync-style
// rolling-hash matcher finds blocks of the old file inside the new file and
// emits a COPY/INSERT opcode stream; `patch` re-applies it. RockFS stores one
// delta per close() as the log-entry data ld_fu (paper §3.2), falling back to
// the whole file when the delta would be larger (make_log_delta).
#pragma once

#include <cstdint>

#include "common/bytes.h"
#include "common/result.h"

namespace rockfs::diff {

/// Computes a delta such that patch(old_data, delta) == new_data.
/// `block_size` tunes the matcher granularity (0 picks a default).
Bytes encode(BytesView old_data, BytesView new_data, std::size_t block_size = 0);

/// Applies a delta produced by encode. Fails with kCorrupted on malformed
/// input or out-of-range copy references.
Result<Bytes> patch(BytesView old_data, BytesView delta);

/// The paper's log-entry payload policy: the delta, or the whole file when
/// the delta is not smaller (a flag records which one was chosen).
struct LogDelta {
  bool whole_file = false;  // true when `payload` is the full new version
  Bytes payload;

  Bytes serialize() const;
  static Result<LogDelta> deserialize(BytesView b);
};

LogDelta make_log_delta(BytesView old_data, BytesView new_data);

/// Applies a LogDelta to reconstruct the new version from the old.
Result<Bytes> apply_log_delta(BytesView old_data, const LogDelta& delta);

}  // namespace rockfs::diff
