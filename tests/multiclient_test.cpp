// Multi-client session tests (ISSUE 4 acceptance properties): fencing
// safety — a holder whose lease expired mid-close is refused with kFenced
// and can fork neither the file nor the log chain; liveness — a crashed
// holder blocks a contender for at most one lease TTL; concurrent-writer
// recovery — merging every writer's FssAgg chain over one shared file and
// dropping a malicious writer's entries reproduces the honest bytes
// bit-identically, interleaved or not; and the chaos soak — N agents under
// crash/hang schedules converge deterministically per seed with zero lost
// updates.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "rockfs/deployment.h"
#include "rockfs/journal.h"
#include "rockfs/multiclient.h"
#include "scfs/lease.h"
#include "sim/faults.h"

namespace rockfs::core {
namespace {

constexpr std::int64_t kTtl = 5'000'000;  // 5 virtual seconds

DeploymentOptions blocking_opts(std::uint64_t seed = 2018) {
  DeploymentOptions opts;
  opts.seed = seed;
  opts.agent.sync_mode = scfs::SyncMode::kBlocking;
  opts.agent.lease_ttl_us = kTtl;
  return opts;
}

// ---------------------------------------------------------- fencing safety

TEST(Fencing, LeaseExpiredMidCloseIsFencedNotForked) {
  Deployment dep(blocking_opts());
  auto& alice = dep.add_user("alice");
  auto& bob = dep.add_user("bob");
  ASSERT_TRUE(alice.write_file("/f", to_bytes("base")).ok());
  auto before = read_log_records(*dep.coordination(), "alice");
  ASSERT_TRUE(before.value.ok());
  const std::size_t alice_records = before.value->size();

  ASSERT_TRUE(alice.lock("/f").ok());
  ASSERT_EQ(alice.held_epoch("/f"), std::optional<std::uint64_t>{1});
  auto fd = alice.open("/f");
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(alice.append(*fd, to_bytes(" + alice")).ok());

  // Alice stalls pre-upload (GC pause / partition) past her TTL; bob evicts
  // the apparently-dead holder and commits his own version meanwhile.
  auto& crash = *dep.crash_schedule();
  crash.arm_hang(sim::CrashPoint::kBeforeFilePut, 2 * kTtl);
  bool bob_won = false;
  crash.set_hang_hook([&] {
    ASSERT_TRUE(bob.lock("/f").ok()) << "expired lease must be evictable";
    ASSERT_EQ(bob.held_epoch("/f"), std::optional<std::uint64_t>{2});
    ASSERT_TRUE(bob.write_file("/f", to_bytes("bob version")).ok());
    bob_won = true;  // bob keeps holding; alice's unlock below must conflict
  });
  auto st = alice.close(*fd);
  crash.set_hang_hook(nullptr);
  ASSERT_TRUE(bob_won);
  EXPECT_EQ(crash.hangs(), 1u);

  // The resumed close is fenced: rejected cleanly, nothing uploaded.
  EXPECT_EQ(st.code(), ErrorCode::kFenced) << st.error().message;

  // No file fork: every reader sees bob's version, at bob's epoch.
  alice.fs().clear_cache();
  auto content = alice.read_file("/f");
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(to_string(*content), "bob version");
  auto stat = alice.stat("/f");
  ASSERT_TRUE(stat.ok());
  EXPECT_EQ(stat->epoch, 2u);

  // No log fork: alice's chain gained nothing and still audits clean.
  auto after = read_log_records(*dep.coordination(), "alice");
  ASSERT_TRUE(after.value.ok());
  EXPECT_EQ(after.value->size(), alice_records);
  auto recovery = dep.make_recovery_service("alice");
  auto audit = recovery.audit_log();
  ASSERT_TRUE(audit.ok());
  EXPECT_TRUE(audit->report.ok);

  // Alice's view of her lease is stale — unlock reports the conflict while
  // bob still holds, and bob's own unlock works fine.
  EXPECT_EQ(alice.held_epoch("/f"), std::optional<std::uint64_t>{1});
  EXPECT_EQ(alice.unlock("/f").code(), ErrorCode::kConflict);
  EXPECT_TRUE(bob.unlock("/f").ok());
}

TEST(Fencing, CrashedHolderBlocksContenderAtMostOneTtl) {
  auto opts = blocking_opts();
  Deployment dep(opts);
  auto& alice = dep.add_user("alice");
  auto& bob = dep.add_user("bob");
  ASSERT_TRUE(alice.write_file("/f", to_bytes("base")).ok());

  ASSERT_TRUE(alice.lock("/f").ok());
  dep.crash_schedule()->arm(sim::CrashPoint::kAfterLogIntent);
  ASSERT_EQ(alice.write_file("/f", to_bytes("doomed")).code(), ErrorCode::kCrashed);
  ASSERT_FALSE(alice.logged_in());

  // The dead holder's lease wedges nobody for longer than one TTL.
  const auto blocked_from = dep.clock()->now_us();
  EXPECT_EQ(bob.lock("/f").code(), ErrorCode::kConflict);
  Status st;
  do {
    dep.clock()->advance_us(kTtl / 4);
    st = bob.lock("/f");
  } while (st.code() == ErrorCode::kConflict);
  ASSERT_TRUE(st.ok()) << st.error().message;
  EXPECT_LE(dep.clock()->now_us() - blocked_from, kTtl + kTtl / 4 + 100'000);
  ASSERT_TRUE(bob.write_file("/f", to_bytes("bob moved on")).ok());
  ASSERT_TRUE(bob.unlock("/f").ok());

  // Alice's restart replays the journal and rejoins cleanly.
  ASSERT_TRUE(dep.login_default("alice").ok());
  alice.fs().clear_cache();
  auto content = alice.read_file("/f");
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(to_string(*content), "bob moved on");
}

// ----------------------------------------------- concurrent-writer recovery

TEST(SharedRecovery, DroppingMaliciousWriterIsBitIdenticalToHonestReplay) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    // One deployment where bob (later flagged malicious) interleaves garbage
    // with alice's honest writes, and a control deployment fed the identical
    // honest stream with no bob at all.
    Deployment dep(blocking_opts(seed));
    auto& alice = dep.add_user("alice");
    auto& bob = dep.add_user("bob");
    Deployment control(blocking_opts(seed));
    auto& alice_control = control.add_user("alice");

    Rng honest(seed);          // alice's content stream (shared by both runs)
    Rng interleave(seed * 101);  // bob's dice (the attacked run only)
    Bytes last_honest;
    for (int round = 0; round < 6; ++round) {
      const Bytes content = honest.next_bytes(400 + 80 * round);
      ASSERT_TRUE(alice.lock("/f").ok());
      ASSERT_TRUE(alice.write_file("/f", content).ok());
      ASSERT_TRUE(alice.unlock("/f").ok());
      ASSERT_TRUE(alice_control.write_file("/f", content).ok());
      last_honest = content;
      if (interleave.next_double() < 0.7) {
        ASSERT_TRUE(bob.lock("/f").ok());
        ASSERT_TRUE(
            bob.write_file("/f", to_bytes("RANSOMED-" + std::to_string(round))).ok());
        ASSERT_TRUE(bob.unlock("/f").ok());
      }
    }
    // Bob's final overwrite leaves the live file damaged for sure.
    ASSERT_TRUE(bob.lock("/f").ok());
    ASSERT_TRUE(bob.write_file("/f", to_bytes("RANSOMED-final")).ok());
    ASSERT_TRUE(bob.unlock("/f").ok());

    // Merging both writers' chains and dropping bob's entries re-executes
    // alice's surviving writes to exactly her last honest bytes...
    auto recovery = dep.make_recovery_service("alice");
    auto result = recovery.recover_shared_file("/f", {"bob"});
    ASSERT_TRUE(result.ok()) << result.error().message;
    EXPECT_EQ(result->content, last_honest) << "seed " << seed;
    EXPECT_GT(result->skipped_malicious, 0u);
    EXPECT_EQ(result->skipped_invalid, 0u);

    // ...bit-identical to the replay of a history where the malicious
    // entries never interleaved at all.
    auto control_recovery = control.make_recovery_service("alice");
    auto control_result = control_recovery.recover_shared_file("/f", {});
    ASSERT_TRUE(control_result.ok()) << control_result.error().message;
    EXPECT_EQ(control_result->content, result->content) << "seed " << seed;

    // The recovered version is what every client now reads.
    alice.fs().clear_cache();
    auto read_back = alice.read_file("/f");
    ASSERT_TRUE(read_back.ok());
    EXPECT_EQ(*read_back, last_honest);
    bob.fs().clear_cache();
    auto bob_view = bob.read_file("/f");
    ASSERT_TRUE(bob_view.ok());
    EXPECT_EQ(*bob_view, last_honest);
  }
}

TEST(SharedRecovery, CompromisedOwnChainStillAbortsByDefault) {
  // recover_shared_file guards like audit_log: an integrity failure in a
  // chain NOT flagged malicious aborts instead of silently dropping data.
  Deployment dep(blocking_opts());
  auto& alice = dep.add_user("alice");
  dep.add_user("bob");
  ASSERT_TRUE(alice.write_file("/f", to_bytes("v1")).ok());
  auto recovery = dep.make_recovery_service("alice");
  auto ok = recovery.recover_shared_file("/f", {});
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(to_string(ok->content), "v1");
  auto missing = recovery.recover_shared_file("/nope", {});
  EXPECT_FALSE(missing.ok());
}

// ------------------------------------------------------------- chaos soak

TEST(MultiClientSoak, ConvergesDeterministicallyPerSeed) {
  std::size_t total_fenced = 0;
  std::size_t total_crashed = 0;
  std::size_t total_evictions = 0;
  for (std::uint64_t seed : {7u, 21u, 2018u}) {
    MultiClientOptions options;
    options.seed = seed;
    options.agents = 3;
    options.paths = 2;
    options.rounds = 24;
    options.lease_ttl_us = kTtl;
    const auto first = run_multiclient_soak(options);
    const auto second = run_multiclient_soak(options);
    EXPECT_EQ(first.digest, second.digest) << "seed " << seed << " not deterministic";

    EXPECT_TRUE(first.converged()) << "seed " << seed;
    EXPECT_EQ(first.lost_updates, 0u) << "seed " << seed;
    EXPECT_EQ(first.zombie_updates, 0u) << "seed " << seed;
    EXPECT_EQ(first.divergent_reads, 0u) << "seed " << seed;
    EXPECT_GT(first.writes_committed, 0u);
    // No permanent wedge: the longest lock wait stays within one TTL (plus
    // the retry quantum).
    EXPECT_LE(first.max_blocked_us,
              static_cast<sim::SimClock::Micros>(kTtl + kTtl / 2));
    total_fenced += first.writes_fenced;
    total_crashed += first.writes_crashed;
    total_evictions += first.evictions;
  }
  // The dice must actually exercise the interesting paths across the seeds.
  EXPECT_GT(total_fenced, 0u);
  EXPECT_GT(total_crashed, 0u);
  EXPECT_GT(total_evictions, 0u);
}

TEST(MultiClientSoak, SurvivesByzantineCoordinationReplica) {
  MultiClientOptions options;
  options.seed = 11;
  options.agents = 3;
  options.paths = 2;
  options.rounds = 16;
  options.lease_ttl_us = kTtl;
  options.byzantine_coord_replica = true;
  const auto report = run_multiclient_soak(options);
  EXPECT_TRUE(report.converged());
  EXPECT_GT(report.writes_committed, 0u);
  EXPECT_LE(report.max_blocked_us,
            static_cast<sim::SimClock::Micros>(kTtl + kTtl / 2));
}

}  // namespace
}  // namespace rockfs::core
