// Cloud-set reconfiguration: admin-signed membership manifests (one CAS
// winner per epoch), the crash-resumable share-migration pipeline that
// moves a quarantined cloud's state onto a freshly provisioned spare,
// membership-epoch fencing for clients left behind on the old set, and the
// scrubber's stale-version accounting (the residue a rolled-back or
// left-behind cloud leaves in the log namespace).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "depsky/client.h"
#include "depsky/reconfig.h"
#include "rockfs/attack.h"
#include "rockfs/deployment.h"
#include "rockfs/logservice.h"
#include "rockfs/scrub.h"
#include "sim/faults.h"

namespace rockfs::depsky {
namespace {

const std::vector<std::string> kOldSet = {"cloud-0", "cloud-1", "cloud-2", "cloud-3"};

TEST(MembershipManifest, SignVerifyAndTupleRoundTrip) {
  crypto::Drbg drbg(to_bytes("manifest-test"));
  const auto admin = crypto::generate_keypair(drbg);
  const std::vector<std::string> new_set = {"cloud-0", "cloud-4", "cloud-2", "cloud-3"};

  const auto m = make_membership_manifest(3, kOldSet, new_set, 1, admin);
  EXPECT_TRUE(verify_membership_manifest(m, admin.public_bytes()));

  auto rt = MembershipManifest::from_tuple(m.to_tuple());
  ASSERT_TRUE(rt.ok()) << rt.error().message;
  EXPECT_EQ(rt->epoch, 3u);
  EXPECT_EQ(rt->old_clouds, kOldSet);
  EXPECT_EQ(rt->new_clouds, new_set);
  EXPECT_EQ(rt->replaced_index, 1u);
  EXPECT_TRUE(verify_membership_manifest(*rt, admin.public_bytes()));

  // Any tampering breaks the signature; a different admin key never verifies.
  auto bumped = m;
  bumped.epoch = 4;
  EXPECT_FALSE(verify_membership_manifest(bumped, admin.public_bytes()));
  auto swapped = m;
  swapped.new_clouds[1] = "evil-cloud";
  EXPECT_FALSE(verify_membership_manifest(swapped, admin.public_bytes()));
  const auto other = crypto::generate_keypair(drbg);
  EXPECT_FALSE(verify_membership_manifest(m, other.public_bytes()));
}

TEST(MembershipManifest, CasAdmitsOneWinnerPerEpoch) {
  core::DeploymentOptions opts;
  opts.seed = 93;
  core::Deployment dep(opts);
  auto& coord = *dep.coordination();
  crypto::Drbg drbg(to_bytes("cas-test"));
  const auto admin = crypto::generate_keypair(drbg);

  const auto m1 = make_membership_manifest(
      1, kOldSet, {"cloud-0", "cloud-4", "cloud-2", "cloud-3"}, 1, admin);
  const auto m2 = make_membership_manifest(
      1, kOldSet, {"cloud-0", "cloud-1", "cloud-4", "cloud-3"}, 2, admin);

  auto first = publish_membership_manifest(coord, m1);
  ASSERT_TRUE(first.value.ok());
  EXPECT_TRUE(*first.value);
  // A racing admin loses the epoch; so does an identical retry.
  auto second = publish_membership_manifest(coord, m2);
  ASSERT_TRUE(second.value.ok());
  EXPECT_FALSE(*second.value);
  auto retry = publish_membership_manifest(coord, m1);
  ASSERT_TRUE(retry.value.ok());
  EXPECT_FALSE(*retry.value);

  auto all = read_membership_manifests(coord);
  ASSERT_TRUE(all.value.ok());
  ASSERT_EQ(all.value->size(), 1u);
  EXPECT_EQ((*all.value)[0].replaced_index, 1u);

  auto current = current_membership(coord, admin.public_bytes());
  ASSERT_TRUE(current.value.ok());
  ASSERT_TRUE(current.value->has_value());
  EXPECT_EQ((*current.value)->epoch, 1u);

  // A later epoch supersedes; an unverifiable space is an error, not a pick.
  const auto m3 = make_membership_manifest(
      2, m1.new_clouds, {"cloud-5", "cloud-4", "cloud-2", "cloud-3"}, 0, admin);
  ASSERT_TRUE(*publish_membership_manifest(coord, m3).value);
  current = current_membership(coord, admin.public_bytes());
  ASSERT_TRUE(current.value.ok());
  EXPECT_EQ((*current.value)->epoch, 2u);
  const auto other = crypto::generate_keypair(drbg);
  EXPECT_FALSE(current_membership(coord, other.public_bytes()).value.ok());
}

TEST(MembershipFencing, StaleEpochWriterFailsClosed) {
  sim::SimClockPtr clock = std::make_shared<sim::SimClock>();
  auto clouds = cloud::make_provider_fleet(clock, 4, 17);
  crypto::Drbg drbg(to_bytes("fence-test"));
  const auto writer = crypto::generate_keypair(drbg);
  std::vector<cloud::AccessToken> toks;
  for (auto& c : clouds) {
    toks.push_back(c->issue_token("alice", "fs", cloud::TokenScope::kFiles));
  }

  DepSkyConfig cfg;
  cfg.clouds = clouds;
  cfg.f = 1;
  cfg.writer = writer;
  DepSkyClient client(std::move(cfg), to_bytes("fence-seed"));

  const std::string unit = "files/alice/doc";
  ASSERT_TRUE(client.write(toks, unit, to_bytes("epoch-zero write")).value.ok());

  // A reconfiguration elsewhere stamps membership epoch 1 into the unit.
  ASSERT_TRUE(client.stamp_membership_epoch(toks, unit, 1).value.ok());

  // This client still believes epoch 0: its cloud set may be the pre-
  // migration one, so its writes must fail closed rather than land on a
  // retired fleet.
  auto fenced = client.write(toks, unit, to_bytes("stale-epoch write"));
  EXPECT_EQ(fenced.value.code(), ErrorCode::kFenced);

  // Adopting the new epoch unfences; reads never were affected.
  client.set_membership_epoch(1);
  const Bytes fresh = to_bytes("epoch-one write");
  ASSERT_TRUE(client.write(toks, unit, fresh).value.ok());
  auto r = client.read(toks, unit);
  ASSERT_TRUE(r.value.ok());
  EXPECT_EQ(*r.value, fresh);
}

}  // namespace
}  // namespace rockfs::depsky

namespace rockfs::core {
namespace {

Bytes content_for(const std::string& tag, std::uint64_t seed) {
  Rng rng(seed + std::hash<std::string>{}(tag));
  return rng.next_bytes(1'200);
}

TEST(Reconfiguration, EvictsQuarantinedCloudAndPreservesData) {
  DeploymentOptions opts;
  opts.seed = 91;
  Deployment dep(opts);
  auto& alice = dep.add_user("alice");
  std::vector<std::pair<std::string, Bytes>> files;
  for (int i = 0; i < 3; ++i) {
    const std::string path = "/doc" + std::to_string(i);
    files.emplace_back(path, content_for(path, 91));
    ASSERT_TRUE(alice.write_file(path, files.back().second).ok());
  }

  // Cloud 1 turns; the witness quarantines it within the attack rounds.
  auto attack = cloud_rollback_attack(dep, "alice", 1, sim::AdversarialMode::kRollback, 4);
  ASSERT_TRUE(attack.quarantined);
  ASSERT_EQ(attack.read_mismatches, 0u);

  auto rep = dep.reconfigure_cloud(1);
  ASSERT_TRUE(rep.ok()) << rep.error().message;
  EXPECT_EQ(rep->epoch, 1u);
  EXPECT_EQ(rep->replaced_index, 1u);
  EXPECT_EQ(rep->old_cloud, "cloud-1");
  EXPECT_EQ(rep->new_cloud, "cloud-4");
  EXPECT_GT(rep->units_total, 0u);
  EXPECT_EQ(rep->units_migrated, rep->units_total);
  EXPECT_GT(rep->shares_rebuilt, 0u);
  EXPECT_GT(rep->metas_stamped, 0u);

  // The fleet slot now holds the spare; the deployment is at epoch 1.
  EXPECT_EQ(dep.clouds()[1]->name(), "cloud-4");
  EXPECT_EQ(dep.membership_epoch(), 1u);

  // The spare physically holds migrated state.
  auto listed = dep.clouds()[1]->list(dep.admin_tokens()[1], "");
  ASSERT_TRUE(listed.value.ok());
  EXPECT_GT(listed.value->size(), 0u);

  // Every file survives with the evicted provider fully removed, and new
  // writes land at the new epoch.
  for (const auto& [path, content] : files) {
    dep.agent("alice").fs().clear_cache();
    auto back = dep.agent("alice").read_file(path);
    ASSERT_TRUE(back.ok()) << path << ": " << back.error().message;
    EXPECT_EQ(*back, content) << path;
  }
  const Bytes post = content_for("post-reconfig", 91);
  ASSERT_TRUE(dep.agent("alice").write_file("/post", post).ok());
  dep.agent("alice").fs().clear_cache();
  auto back = dep.agent("alice").read_file("/post");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, post);
}

// The migration must converge to the same state no matter where the admin
// dies: run the pipeline once cleanly and once crashing at every new crash
// point, and require the surviving file contents to be bit-identical.
TEST(Reconfiguration, ResumesBitIdenticallyThroughCrashes) {
  const auto run = [](bool with_crashes) {
    DeploymentOptions opts;
    opts.seed = 92;
    Deployment dep(opts);
    auto& alice = dep.add_user("alice");
    std::vector<std::string> paths;
    for (int i = 0; i < 3; ++i) {
      const std::string path = "/doc" + std::to_string(i);
      paths.push_back(path);
      EXPECT_TRUE(alice.write_file(path, content_for(path, 92)).ok());
    }
    auto attack =
        cloud_rollback_attack(dep, "alice", 2, sim::AdversarialMode::kRollback, 4);
    EXPECT_TRUE(attack.quarantined);

    if (with_crashes) {
      for (const auto point : {sim::CrashPoint::kAfterMembershipManifest,
                               sim::CrashPoint::kMidShareMigration}) {
        dep.crash_schedule()->arm(point);
        auto crashed = dep.reconfigure_cloud(2);
        EXPECT_FALSE(crashed.ok());
        EXPECT_EQ(crashed.code(), ErrorCode::kCrashed);
      }
    }
    auto rep = dep.reconfigure_cloud(2);
    EXPECT_TRUE(rep.ok()) << rep.error().message;
    EXPECT_EQ(rep->epoch, 1u);
    if (with_crashes) {
      // The mid-migration crash left done-markers behind; the resume must
      // skip them instead of re-copying.
      EXPECT_GT(rep->units_resumed, 0u);
    }

    std::vector<Bytes> contents;
    for (const auto& path : paths) {
      dep.agent("alice").fs().clear_cache();
      auto back = dep.agent("alice").read_file(path);
      EXPECT_TRUE(back.ok()) << path << ": " << back.error().message;
      contents.push_back(back.ok() ? *back : Bytes{});
    }
    return contents;
  };

  const auto crashed = run(true);
  const auto clean = run(false);
  ASSERT_EQ(crashed.size(), clean.size());
  for (std::size_t i = 0; i < clean.size(); ++i) {
    EXPECT_EQ(crashed[i], clean[i]) << "file " << i;
  }
}

// Satellite: the scrubber reports stale-version residue — a cloud offering
// an entry's OLD share where the current one belongs — as its own category,
// distinct from loss/corruption, and repairs it when redundancy demands.
TEST(Scrubber, CountsAndRepairsStaleVersionShares) {
  DeploymentOptions opts;
  opts.seed = 94;
  Deployment dep(opts);
  auto& alice = dep.add_user("alice");
  ASSERT_TRUE(alice.write_file("/f1", content_for("f1", 94)).ok());
  ASSERT_TRUE(alice.write_file("/f2", content_for("f2", 94)).ok());

  auto records = read_log_records(*dep.coordination(), "alice");
  ASSERT_TRUE(records.value.ok());
  ASSERT_GE(records.value->size(), 2u);
  const std::string unit = (*records.value)[0].data_unit();
  const std::string meta_key = unit + ".meta";
  auto admin = dep.admin_tokens();

  // Fabricate the residue a left-behind cloud exhibits after the unit moved
  // on to version 2: clouds 0/2/3 carry v2 (shares byte-identical to v1, so
  // the signed digests stay truthful), cloud 1 still offers only its v1
  // share and its v1 metadata replica.
  auto raw_meta = dep.clouds()[0]->get(admin[0], meta_key);
  ASSERT_TRUE(raw_meta.value.ok());
  auto meta = depsky::UnitMetadata::deserialize(*raw_meta.value);
  ASSERT_TRUE(meta.ok());
  const auto writer =
      crypto::keypair_from_private(dep.agent("alice").keystore().user_private_key);
  ASSERT_EQ(meta->writer_pub, writer.public_bytes());
  meta->version = 2;
  meta->sign(writer);
  const Bytes meta_v2 = meta->serialize();
  for (std::size_t i : {0u, 2u, 3u}) {
    const std::string slot = std::to_string(i);
    auto share = dep.clouds()[i]->get(admin[i], unit + ".v1.s" + slot);
    ASSERT_TRUE(share.value.ok());
    ASSERT_TRUE(
        dep.clouds()[i]->put(admin[i], unit + ".v2.s" + slot, *share.value).value.ok());
    ASSERT_TRUE(dep.clouds()[i]->lose_object(meta_key).ok());
    ASSERT_TRUE(dep.clouds()[i]->put(admin[i], meta_key, meta_v2).value.ok());
  }
  // Pass 1, default margin: three current shares is exactly k + margin, so
  // nothing is "degraded" — but the stale residue (old share AND old
  // metadata, both valid-signed) is counted on its own, and the stale meta
  // replica does not inflate the redundancy count.
  auto report = dep.make_scrubber("alice").scrub();
  ASSERT_TRUE(report.ok()) << report.error().message;
  EXPECT_EQ(report->entries_stale, 1u);
  EXPECT_EQ(report->stale_shares, 1u);
  EXPECT_EQ(report->stale_metas, 1u);
  EXPECT_EQ(report->entries_degraded, 0u);
  EXPECT_EQ(report->shares_repaired, 0u);

  // The log namespace is append-only even for the admin, so the contradicted
  // v1 replica cannot be overwritten in place — the operator drops it, which
  // is what lets the repair re-seed a current one.
  ASSERT_TRUE(dep.clouds()[1]->lose_object(meta_key).ok());

  // Pass 2, margin 2: the same entry now falls below threshold; the repair
  // rebuilds the current-version share over the stale cloud's residue.
  ScrubOptions strict;
  strict.margin = 2;
  auto repaired = dep.make_scrubber("alice", strict).scrub();
  ASSERT_TRUE(repaired.ok()) << repaired.error().message;
  EXPECT_EQ(repaired->entries_stale, 1u);
  EXPECT_EQ(repaired->entries_degraded, 1u);
  EXPECT_EQ(repaired->entries_repaired, 1u);
  EXPECT_GE(repaired->shares_repaired, 1u);
  EXPECT_TRUE(dep.clouds()[1]->exists(unit + ".v2.s1"));

  // Pass 3: the residue is gone; the stale counters read zero again.
  auto clean = dep.make_scrubber("alice", strict).scrub();
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(clean->entries_stale, 0u);
  EXPECT_EQ(clean->entries_degraded, 0u);
}

}  // namespace
}  // namespace rockfs::core
