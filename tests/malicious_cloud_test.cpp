// Malicious-cloud freshness attacks (A4): a provider that keeps acking
// writes like an honest cloud but serves reads from a frozen, partitioned,
// or share-withheld view. Signatures alone cannot catch any of this — every
// byte the adversary serves was really stored and really signed. The tests
// pin the three layers of the defense:
//
//   masking     — with at most f such clouds, honest reads never change;
//   detection   — the version witness catches the contradiction and the
//                 misbehavior ledger quarantines the right cloud (and only
//                 that cloud), attributing rollback vs equivocation;
//   fail-closed — when collusion captures the entire responding quorum
//                 (beyond the masking bound), reads refuse with
//                 kStaleVersion instead of silently regressing.
//
// The soak at the bottom runs the full pipeline — attack, detection,
// quarantine, admin reconfiguration with crash points — and asserts the
// honest-content digest is bit-identical to a never-attacked run.
#include <gtest/gtest.h>

#include <memory>

#include "common/rng.h"
#include "depsky/client.h"
#include "depsky/health.h"
#include "rockfs/attack.h"
#include "rockfs/deployment.h"
#include "rockfs/malicious.h"
#include "sim/faults.h"

namespace rockfs::depsky {
namespace {

// DepSky-level fixture: one fleet, one shared witness, per-user sessions —
// the same wiring a Deployment gives its agents, but with direct control
// over every knob.
struct MaliciousFixture : ::testing::Test {
  sim::SimClockPtr clock = std::make_shared<sim::SimClock>();
  std::vector<cloud::CloudProviderPtr> clouds = cloud::make_provider_fleet(clock, 4, 7);
  crypto::Drbg drbg{to_bytes("malicious-test")};
  crypto::KeyPair writer = crypto::generate_keypair(drbg);
  VersionWitnessPtr witness = std::make_shared<VersionWitness>();

  std::vector<cloud::AccessToken> tokens(const std::string& user) {
    std::vector<cloud::AccessToken> out;
    for (auto& c : clouds) {
      out.push_back(c->issue_token(user, "fs", cloud::TokenScope::kFiles));
    }
    return out;
  }

  DepSkyClient make_client(const std::string& user) {
    DepSkyConfig cfg;
    cfg.clouds = clouds;
    cfg.f = 1;
    cfg.protocol = Protocol::kCA;
    cfg.writer = writer;
    cfg.witness = witness;
    cfg.session = "session-" + user;
    return DepSkyClient(std::move(cfg), to_bytes("seed-" + user));
  }
};

TEST_F(MaliciousFixture, RollbackCloudIsFlaggedBySameSessionMark) {
  auto client = make_client("alice");
  const auto toks = tokens("alice");
  const std::string unit = "files/alice/doc";

  ASSERT_TRUE(client.write(toks, unit, to_bytes("version-one")).value.ok());
  clouds[2]->faults().set_adversarial(sim::AdversarialMode::kRollback);
  clock->advance_us(1'000);

  const Bytes fresh = to_bytes("version-two, written after the freeze");
  ASSERT_TRUE(client.write(toks, unit, fresh).value.ok());

  auto r = client.read(toks, unit);
  ASSERT_TRUE(r.value.ok()) << r.value.error().message;
  EXPECT_EQ(*r.value, fresh);  // masking: the stale view never surfaces

  // Cloud 2 acked the v2 upload in this very session, then served v1: the
  // witness attributes a same-session contradiction as rollback.
  EXPECT_GE(client.cloud_health(2).misbehavior_count(MisbehaviorKind::kRollback), 1u);
  EXPECT_TRUE(client.cloud_health(2).quarantined());
  for (std::size_t i : {0u, 1u, 3u}) {
    EXPECT_EQ(client.cloud_health(i).misbehavior_total(), 0u) << "cloud " << i;
  }
}

TEST_F(MaliciousFixture, EquivocationAcrossSessionsAttributedToCloud) {
  auto carol = make_client("carol");
  auto dave = make_client("dave");
  const auto carol_toks = tokens("carol");
  const auto dave_toks = tokens("dave");

  // The adversary partitions readers by authenticated identity; pick the
  // salt it would pick — carol sees the fresh view, dave the frozen one.
  std::uint64_t salt = 0;
  while (sim::adversarial_stale_group("carol", salt) ||
         !sim::adversarial_stale_group("dave", salt)) {
    ++salt;
  }

  const std::string unit = "files/shared/doc";
  ASSERT_TRUE(carol.write(carol_toks, unit, to_bytes("v1")).value.ok());
  ASSERT_TRUE(dave.read(dave_toks, unit).value.ok());

  clouds[2]->faults().set_adversarial(sim::AdversarialMode::kEquivocate, 0, salt);
  clock->advance_us(1'000);

  const Bytes fresh = to_bytes("v2, visible only to carol's group at cloud 2");
  ASSERT_TRUE(carol.write(carol_toks, unit, fresh).value.ok());

  // Dave's quorum still wins (two honest clouds serve v2), but cloud 2
  // showed him v1 after telling carol's session v2 — equivocation, pinned
  // on the right cloud through the shared witness.
  auto r = dave.read(dave_toks, unit);
  ASSERT_TRUE(r.value.ok()) << r.value.error().message;
  EXPECT_EQ(*r.value, fresh);
  EXPECT_GE(dave.cloud_health(2).misbehavior_count(MisbehaviorKind::kEquivocation), 1u);
  EXPECT_TRUE(dave.cloud_health(2).quarantined());
  for (std::size_t i : {0u, 1u, 3u}) {
    EXPECT_EQ(dave.cloud_health(i).misbehavior_total(), 0u) << "cloud " << i;
  }
  // Carol is in the fresh group: cloud 2 never contradicted itself to her.
  EXPECT_FALSE(carol.cloud_health(2).quarantined());
}

TEST_F(MaliciousFixture, FPlusOneColludingRollbacksAreMaskedAndQuarantined) {
  auto client = make_client("alice");
  const auto toks = tokens("alice");
  const std::string unit = "files/alice/doc";

  ASSERT_TRUE(client.write(toks, unit, to_bytes("before")).value.ok());
  // f+1 = 2 clouds freeze together — more lies than plain DepSky voting can
  // attribute, but each is individually caught against its own ack marks.
  clouds[1]->faults().set_adversarial(sim::AdversarialMode::kRollback);
  clouds[2]->faults().set_adversarial(sim::AdversarialMode::kRollback);
  clock->advance_us(1'000);

  const Bytes fresh = to_bytes("after the colluding freeze");
  ASSERT_TRUE(client.write(toks, unit, fresh).value.ok());

  auto r = client.read(toks, unit);
  ASSERT_TRUE(r.value.ok()) << r.value.error().message;
  EXPECT_EQ(*r.value, fresh);
  EXPECT_TRUE(client.cloud_health(1).quarantined());
  EXPECT_TRUE(client.cloud_health(2).quarantined());
  EXPECT_GE(client.cloud_health(1).misbehavior_count(MisbehaviorKind::kRollback), 1u);
  EXPECT_GE(client.cloud_health(2).misbehavior_count(MisbehaviorKind::kRollback), 1u);
  EXPECT_EQ(client.cloud_health(0).misbehavior_total(), 0u);
  EXPECT_EQ(client.cloud_health(3).misbehavior_total(), 0u);
}

TEST_F(MaliciousFixture, FullQuorumCollusionFailsClosedWithStaleVersion) {
  auto client = make_client("bob");
  const auto toks = tokens("bob");
  const std::string unit = "files/bob/doc";

  ASSERT_TRUE(client.write(toks, unit, to_bytes("old")).value.ok());
  // Every cloud the client can still reach colludes on the frozen view: the
  // rolled-back trio answers the whole n-f quorum while the one honest
  // cloud is dark. Beyond the masking bound, the only safe answer is no
  // answer — the unit high-water mark turns the read into kStaleVersion
  // instead of a silent regression.
  clouds[1]->faults().set_adversarial(sim::AdversarialMode::kRollback);
  clouds[2]->faults().set_adversarial(sim::AdversarialMode::kRollback);
  clouds[3]->faults().set_adversarial(sim::AdversarialMode::kRollback);
  clock->advance_us(1'000);
  ASSERT_TRUE(client.write(toks, unit, to_bytes("new")).value.ok());

  clouds[0]->set_available(false);
  auto head = client.head_version(toks, unit);
  EXPECT_EQ(head.value.code(), ErrorCode::kStaleVersion);

  // The read that follows must not regress either: with all three liars
  // quarantined by the stale-version verdict and the honest cloud down, it
  // fails (no quorum) rather than serving the frozen bytes.
  auto r = client.read(toks, unit);
  ASSERT_FALSE(r.value.ok());
  for (std::size_t i : {1u, 2u, 3u}) {
    EXPECT_TRUE(client.cloud_health(i).quarantined()) << "cloud " << i;
  }
}

TEST_F(MaliciousFixture, WithheldSharesQuarantineAfterRepeatedIncidents) {
  auto client = make_client("erin");
  const auto toks = tokens("erin");
  const std::string unit = "files/erin/doc";
  const Bytes data = to_bytes("share-withholding never blocks this read");

  ASSERT_TRUE(client.write(toks, unit, data).value.ok());
  clouds[1]->faults().set_adversarial(sim::AdversarialMode::kWithholdShares);

  // A single withheld share is indistinguishable from provider-side loss;
  // only repetition condemns. Every read still succeeds off the honest k.
  for (int i = 1; i <= 3; ++i) {
    auto r = client.read(toks, unit);
    ASSERT_TRUE(r.value.ok()) << "read " << i << ": " << r.value.error().message;
    EXPECT_EQ(*r.value, data);
    EXPECT_EQ(client.cloud_health(1).quarantined(), i >= 3) << "read " << i;
  }
  EXPECT_GE(client.cloud_health(1).misbehavior_count(MisbehaviorKind::kWithheldShare),
            3u);
  EXPECT_EQ(client.cloud_health(0).misbehavior_total(), 0u);
}

}  // namespace
}  // namespace rockfs::depsky

namespace rockfs::core {
namespace {

// Full-deployment attack driver: rollback never changes what the victim
// reads, across seeds, and the cloud is quarantined within a handful of
// operations of its first lie.
TEST(CloudRollbackAttack, MaskedAndDetectedAcrossSeeds) {
  for (std::uint64_t seed : {11u, 22u, 33u, 44u}) {
    DeploymentOptions opts;
    opts.seed = seed;
    Deployment dep(opts);
    auto& alice = dep.add_user("alice");
    ASSERT_TRUE(alice.write_file("/warmup", to_bytes("pre-attack state")).ok());

    auto report = cloud_rollback_attack(dep, "alice", 2,
                                        sim::AdversarialMode::kRollback, 6);
    EXPECT_EQ(report.read_mismatches, 0u) << "seed " << seed;
    EXPECT_GT(report.writes_during_attack, 0u) << "seed " << seed;
    EXPECT_TRUE(report.detected) << "seed " << seed;
    EXPECT_TRUE(report.quarantined) << "seed " << seed;
    // The first lie a fresh unit can expose needs a pre-freeze unit to be
    // overwritten post-freeze and read back: two write/read rounds.
    EXPECT_LE(report.ops_to_detection, 6u) << "seed " << seed;
    EXPECT_EQ(dep.quarantined_cloud(), 2u) << "seed " << seed;
  }
}

TEST(CloudRollbackAttack, ReplayWindowServingIsDetected) {
  DeploymentOptions opts;
  opts.seed = 55;
  Deployment dep(opts);
  auto& alice = dep.add_user("alice");
  ASSERT_TRUE(alice.write_file("/warmup", to_bytes("pre-attack state")).ok());

  // A sliding rollback: the cloud serves the truth as of two seconds ago.
  // Reads that follow a write inside the window catch it against the ack
  // marks exactly like a hard freeze.
  auto report = cloud_rollback_attack(dep, "alice", 1,
                                      sim::AdversarialMode::kReplayWindow, 6);
  EXPECT_EQ(report.read_mismatches, 0u);
  EXPECT_TRUE(report.quarantined);
  EXPECT_EQ(dep.quarantined_cloud(), 1u);
}

// The end-to-end property from the issue: a cloud turns malicious
// mid-workload, is detected, quarantined and replaced — and the honest
// users' final contents are bit-identical to a run where it never turned.
TEST(MaliciousSoak, ConvergesWithDigestEquivalenceAcrossSeeds) {
  for (std::uint64_t seed : {2018u, 2019u, 2020u}) {
    MaliciousSoakOptions attacked_opts;
    attacked_opts.seed = seed;
    auto attacked = run_malicious_soak(attacked_opts);

    MaliciousSoakOptions baseline_opts = attacked_opts;
    baseline_opts.attacker = false;
    auto baseline = run_malicious_soak(baseline_opts);

    EXPECT_TRUE(attacked.converged) << "seed " << seed;
    EXPECT_EQ(attacked.read_mismatches, 0u) << "seed " << seed;
    EXPECT_EQ(attacked.write_failures, 0u) << "seed " << seed;
    EXPECT_TRUE(attacked.detected) << "seed " << seed;
    EXPECT_TRUE(attacked.quarantined) << "seed " << seed;
    // The workload rotates over 3 files per user, so the first read of a
    // post-freeze overwrite lands within three rounds of the attack (the
    // verdict is tallied at round end: <= 3 rounds x 2 users x 2 ops).
    EXPECT_LE(attacked.ops_to_quarantine, 12u) << "seed " << seed;
    EXPECT_TRUE(attacked.reconfigured) << "seed " << seed;
    EXPECT_GE(attacked.membership_epoch, 1u) << "seed " << seed;
    EXPECT_GT(attacked.units_migrated, 0u) << "seed " << seed;
    EXPECT_GT(attacked.post_reconfig_reads, 0u) << "seed " << seed;
    EXPECT_EQ(attacked.post_reconfig_read_failures, 0u) << "seed " << seed;

    EXPECT_TRUE(baseline.converged) << "seed " << seed;
    EXPECT_FALSE(baseline.quarantined) << "seed " << seed;
    EXPECT_EQ(attacked.honest_digest, baseline.honest_digest) << "seed " << seed;
  }
}

TEST(MaliciousSoak, EquivocatingCloudIsAlsoEvicted) {
  MaliciousSoakOptions opts;
  opts.seed = 77;
  opts.mode = sim::AdversarialMode::kEquivocate;
  auto report = run_malicious_soak(opts);
  EXPECT_TRUE(report.converged);
  EXPECT_TRUE(report.quarantined);
  EXPECT_TRUE(report.reconfigured);
  EXPECT_EQ(report.post_reconfig_read_failures, 0u);

  MaliciousSoakOptions baseline = opts;
  baseline.attacker = false;
  EXPECT_EQ(run_malicious_soak(baseline).honest_digest, report.honest_digest);
}

}  // namespace
}  // namespace rockfs::core
