#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "sim/clock.h"
#include "sim/network.h"

namespace rockfs::sim {
namespace {

TEST(SimClock, StartsAtZeroAndAdvances) {
  SimClock clock;
  EXPECT_EQ(clock.now_us(), 0);
  clock.advance_us(1500);
  EXPECT_EQ(clock.now_us(), 1500);
  clock.advance_seconds(2.0);
  EXPECT_EQ(clock.now_us(), 1500 + 2'000'000);
  EXPECT_DOUBLE_EQ(clock.now_seconds(), 2.0015);
}

TEST(SimClock, NegativeAdvanceThrows) {
  SimClock clock;
  EXPECT_THROW(clock.advance_us(-1), std::invalid_argument);
}

TEST(SimStopwatch, MeasuresElapsed) {
  auto clock = std::make_shared<SimClock>();
  SimStopwatch watch(clock);
  clock->advance_us(123456);
  EXPECT_EQ(watch.elapsed_us(), 123456);
  EXPECT_DOUBLE_EQ(watch.elapsed_seconds(), 0.123456);
}

TEST(NetworkModel, UploadScalesWithBytes) {
  auto clock = std::make_shared<SimClock>();
  LinkProfile p = LinkProfile::s3_like("s3");
  p.jitter_frac = 0.0;  // deterministic for exact expectations
  NetworkModel net(clock, p, /*jitter_seed=*/1);
  const auto small = net.upload_delay_us(1'000);
  const auto large = net.upload_delay_us(10'000'000);
  EXPECT_GT(large, small);
  // 10MB at 2.6 MB/s ~ 3.8s; check within a factor.
  EXPECT_GT(large, 3'000'000);
  EXPECT_LT(large, 5'000'000);
}

TEST(NetworkModel, DownloadFasterThanUploadForLargePayloads) {
  auto clock = std::make_shared<SimClock>();
  LinkProfile p = LinkProfile::s3_like("s3");
  p.jitter_frac = 0.0;
  NetworkModel net(clock, p, 1);
  EXPECT_LT(net.download_delay_us(10'000'000), net.upload_delay_us(10'000'000));
}

TEST(NetworkModel, ChargeAdvancesClock) {
  auto clock = std::make_shared<SimClock>();
  LinkProfile p = LinkProfile::coordination_like("coord");
  NetworkModel net(clock, p, 7);
  const auto d = net.charge_rpc(200, 400);
  EXPECT_EQ(clock->now_us(), d);
  EXPECT_GT(d, 0);
}

TEST(NetworkModel, JitterIsDeterministicPerSeed) {
  auto c1 = std::make_shared<SimClock>();
  auto c2 = std::make_shared<SimClock>();
  NetworkModel a(c1, LinkProfile::s3_like("s3"), 99);
  NetworkModel b(c2, LinkProfile::s3_like("s3"), 99);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(a.upload_delay_us(1 << 20), b.upload_delay_us(1 << 20));
  }
}

TEST(NetworkModel, RpcIncludesRtt) {
  auto clock = std::make_shared<SimClock>();
  LinkProfile p = LinkProfile::local_like("local");
  p.jitter_frac = 0.0;
  NetworkModel net(clock, p, 3);
  EXPECT_GE(net.rpc_delay_us(0, 0), p.rtt_us);
}

TEST(TrafficMeter, Accounting) {
  TrafficMeter meter;
  meter.add_upload(100);
  meter.add_upload(50);
  meter.add_download(7);
  EXPECT_EQ(meter.uploaded_bytes(), 150u);
  EXPECT_EQ(meter.downloaded_bytes(), 7u);
  meter.reset();
  EXPECT_EQ(meter.uploaded_bytes(), 0u);
  EXPECT_EQ(meter.downloaded_bytes(), 0u);
}

}  // namespace
}  // namespace rockfs::sim
