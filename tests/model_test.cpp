// Model-based testing: drive the real stack with random operation sequences
// and check it against a trivially-correct in-memory reference model.
//
//   * ScfsModel      — POSIX-ish ops vs a map<path, Bytes>
//   * RecoveryModel  — random edit histories + ransomware suffix; recovery
//                      must restore the last pre-attack state and keep any
//                      whole-file post-attack writes
#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "rockfs/attack.h"
#include "rockfs/deployment.h"

namespace rockfs::core {
namespace {

// -------------------------------------------------------------- SCFS model

class ScfsModel : public ::testing::TestWithParam<int /*seed*/> {};

TEST_P(ScfsModel, RandomOpsMatchReference) {
  Deployment dep;
  auto& alice = dep.add_user("alice");
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 5);

  std::map<std::string, Bytes> reference;
  auto random_path = [&] { return "/m/f" + std::to_string(rng.next_below(6)); };

  for (int step = 0; step < 60; ++step) {
    const auto op = rng.next_below(6);
    const std::string path = random_path();
    const bool exists = reference.contains(path);
    switch (op) {
      case 0: {  // create empty
        auto fd = alice.create(path);
        if (exists) {
          EXPECT_EQ(fd.code(), ErrorCode::kConflict) << path;
        } else {
          ASSERT_TRUE(fd.ok());
          ASSERT_TRUE(alice.close(*fd).ok());
          reference[path] = {};
        }
        break;
      }
      case 1: {  // overwrite with fresh content
        const Bytes content = rng.next_bytes(rng.next_below(5'000));
        ASSERT_TRUE(alice.write_file(path, content).ok());
        reference[path] = content;
        break;
      }
      case 2: {  // append via open/append/close
        auto fd = alice.open(path);
        if (!exists) {
          EXPECT_EQ(fd.code(), ErrorCode::kNotFound);
          break;
        }
        ASSERT_TRUE(fd.ok());
        const Bytes extra = rng.next_bytes(rng.next_below(2'000));
        ASSERT_TRUE(alice.append(*fd, extra).ok());
        ASSERT_TRUE(alice.close(*fd).ok());
        append(reference[path], extra);
        break;
      }
      case 3: {  // unlink
        const auto st = alice.unlink(path);
        if (exists) {
          EXPECT_TRUE(st.ok()) << (st.ok() ? std::string() : st.error().message);
          reference.erase(path);
        } else {
          EXPECT_EQ(st.code(), ErrorCode::kNotFound);
        }
        break;
      }
      case 4: {  // stat
        auto st = alice.stat(path);
        if (exists) {
          ASSERT_TRUE(st.ok());
          EXPECT_EQ(st->size, reference[path].size()) << path;
        } else {
          EXPECT_EQ(st.code(), ErrorCode::kNotFound);
        }
        break;
      }
      case 5: {  // readdir must list exactly the reference keys
        auto listing = alice.readdir("/m/");
        ASSERT_TRUE(listing.ok());
        EXPECT_EQ(listing->size(), reference.size());
        break;
      }
    }
  }
  // Final sweep: every file's content matches the model byte-for-byte.
  for (const auto& [path, content] : reference) {
    auto got = alice.read_file(path);
    ASSERT_TRUE(got.ok()) << path;
    EXPECT_EQ(*got, content) << path;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScfsModel, ::testing::Range(1, 6));

// ---------------------------------------------------------- Recovery model

class RecoveryModel : public ::testing::TestWithParam<int /*seed*/> {};

TEST_P(RecoveryModel, RansomwareSuffixAlwaysRecoverable) {
  Deployment dep;
  auto& alice = dep.add_user("alice");
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 3);

  // Random legitimate history over a few files.
  std::map<std::string, Bytes> truth;
  const int files = 2 + static_cast<int>(rng.next_below(3));
  for (int f = 0; f < files; ++f) {
    const std::string path = "/r/f" + std::to_string(f);
    Bytes content = rng.next_bytes(500 + rng.next_below(3'000));
    alice.write_file(path, content).expect("create");
    const int edits = static_cast<int>(rng.next_below(4));
    for (int e = 0; e < edits; ++e) {
      switch (rng.next_below(3)) {
        case 0: append(content, rng.next_bytes(rng.next_below(1'000))); break;
        case 1:
          if (!content.empty()) content[rng.next_below(content.size())] ^= 0x42;
          break;
        case 2: content = rng.next_bytes(300 + rng.next_below(2'000)); break;
      }
      alice.write_file(path, content).expect("edit");
    }
    truth[path] = content;
  }

  // The attack encrypts a random subset (at least one file).
  std::vector<std::string> victims;
  for (const auto& [path, content] : truth) {
    if (victims.empty() || rng.next_below(2) == 0) victims.push_back(path);
  }
  const auto attack = ransomware_attack(alice, victims, rng.next_u64());
  ASSERT_EQ(attack.files_encrypted, victims.size());

  // Recover everything; every file must equal its last legitimate state.
  auto recovery = dep.make_recovery_service("alice");
  auto results = recovery.recover_all(attack.malicious_seqs);
  ASSERT_TRUE(results.ok());
  for (const auto& r : *results) {
    EXPECT_EQ(r.content, truth[r.path]) << r.path << " seed=" << GetParam();
  }
  // And the user agent reads the same thing.
  for (const auto& [path, content] : truth) {
    auto got = alice.read_file(path);
    ASSERT_TRUE(got.ok()) << path;
    EXPECT_EQ(*got, content) << path;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecoveryModel, ::testing::Range(1, 7));

}  // namespace
}  // namespace rockfs::core
