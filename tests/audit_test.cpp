#include <gtest/gtest.h>

#include "common/rng.h"
#include "rockfs/attack.h"
#include "rockfs/audit.h"
#include "rockfs/deployment.h"

namespace rockfs::core {
namespace {

// ------------------------------------------------------------- entropy

TEST(Entropy, KnownDistributions) {
  EXPECT_DOUBLE_EQ(byte_entropy({}), 0.0);
  EXPECT_DOUBLE_EQ(byte_entropy(Bytes(1000, 0x42)), 0.0);  // constant
  // Uniform over 256 values -> 8 bits/byte.
  Bytes uniform(256 * 16);
  for (std::size_t i = 0; i < uniform.size(); ++i) uniform[i] = static_cast<Byte>(i);
  EXPECT_NEAR(byte_entropy(uniform), 8.0, 1e-9);
  // English-ish text sits far below ciphertext.
  const Bytes text = to_bytes(
      "it is a truth universally acknowledged that a single man in possession "
      "of a good fortune must be in want of a wife");
  EXPECT_LT(byte_entropy(text), 5.0);
  // Pseudo-random bytes look like ciphertext.
  Rng rng(3);
  EXPECT_GT(byte_entropy(rng.next_bytes(4096)), 7.8);
}

// ------------------------------------------------- analyzer on a fixture

LogRecord make_record(std::uint64_t seq, const std::string& path, const std::string& op,
                      bool whole, std::int64_t ts_us, std::uint64_t size = 100) {
  LogRecord r;
  r.seq = seq;
  r.user = "alice";
  r.path = path;
  r.version = seq + 1;
  r.op = op;
  r.whole_file = whole;
  r.payload_size = size;
  r.timestamp_us = ts_us;
  return r;
}

TEST(AuditAnalyzer, QueryFilters) {
  AuditAnalyzer analyzer({
      make_record(0, "/a", "create", true, 1'000'000),
      make_record(1, "/a", "update", false, 2'000'000),
      make_record(2, "/b", "create", true, 3'000'000),
      make_record(3, "/a", "delete", true, 9'000'000),
  });
  AuditQuery by_path;
  by_path.path = "/a";
  EXPECT_EQ(analyzer.query(by_path).size(), 3u);

  AuditQuery by_op;
  by_op.op = "create";
  EXPECT_EQ(analyzer.query(by_op).size(), 2u);

  AuditQuery by_time;
  by_time.from_us = 1'500'000;
  by_time.to_us = 4'000'000;
  EXPECT_EQ(analyzer.query(by_time).size(), 2u);

  AuditQuery by_seq;
  by_seq.min_seq = 2;
  by_seq.max_seq = 3;
  EXPECT_EQ(analyzer.query(by_seq).size(), 2u);

  AuditQuery combined;
  combined.path = "/a";
  combined.op = "update";
  const auto hits = analyzer.query(combined);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0]->seq, 1u);
}

TEST(AuditAnalyzer, Stats) {
  AuditAnalyzer analyzer({
      make_record(0, "/a", "create", true, 1'000'000, 500),
      make_record(1, "/a", "update", false, 2'000'000, 80),
      make_record(2, "/b", "create", true, 3'000'000, 300),
  });
  const UsageStats s = analyzer.stats();
  EXPECT_EQ(s.total_operations, 3u);
  EXPECT_EQ(s.total_log_bytes, 880u);
  EXPECT_EQ(s.whole_file_entries, 2u);
  EXPECT_EQ(s.delta_entries, 1u);
  EXPECT_EQ(s.ops_by_type.at("create"), 2u);
  EXPECT_EQ(s.ops_by_path.at("/a"), 2u);
  EXPECT_EQ(s.first_op_us, 1'000'000);
  EXPECT_EQ(s.last_op_us, 3'000'000);
}

TEST(AuditAnalyzer, MassRewriteDetectorFlagsBursts) {
  std::vector<LogRecord> records;
  std::uint64_t seq = 0;
  // Normal activity: creations and a scattered delta update.
  records.push_back(make_record(seq++, "/a", "create", true, 1'000'000));
  records.push_back(make_record(seq++, "/b", "create", true, 60'000'000));
  records.push_back(make_record(seq++, "/a", "update", false, 400'000'000));
  // Burst: 4 files rewritten whole within 30 virtual seconds.
  const std::int64_t t0 = 1'000'000'000;
  for (int i = 0; i < 4; ++i) {
    records.push_back(make_record(seq++, "/f" + std::to_string(i), "update", true,
                                  t0 + i * 8'000'000));
  }
  AuditAnalyzer analyzer(std::move(records));
  const auto flagged = analyzer.detect_mass_rewrite();
  EXPECT_EQ(flagged.size(), 4u);
  EXPECT_TRUE(flagged.contains(3) && flagged.contains(6));
  EXPECT_FALSE(flagged.contains(2));  // the lone legitimate update
}

TEST(AuditAnalyzer, NormalWorkloadNotFlagged) {
  std::vector<LogRecord> records;
  std::uint64_t seq = 0;
  // Spread-out edits of two files over hours: no burst.
  for (int i = 0; i < 20; ++i) {
    records.push_back(make_record(seq++, i % 2 == 0 ? "/a" : "/b", "update", i % 4 == 0,
                                  static_cast<std::int64_t>(i) * 600'000'000));
  }
  AuditAnalyzer analyzer(std::move(records));
  EXPECT_TRUE(analyzer.detect_mass_rewrite().empty());
}

// --------------------------------------- end-to-end: detect the ransomware

struct DetectionFixture : ::testing::Test {
  Deployment dep;
  RockFsAgent& alice = dep.add_user("alice");
};

TEST_F(DetectionFixture, DetectsRealRansomwareWithoutGroundTruth) {
  // Normal work (low-entropy text files, edited over time).
  std::vector<std::string> paths;
  for (int i = 0; i < 5; ++i) {
    const std::string path = "/docs/d" + std::to_string(i);
    std::string text = "document " + std::to_string(i) + "\n";
    for (int l = 0; l < 50; ++l) text += "line of perfectly ordinary prose\n";
    alice.write_file(path, to_bytes(text)).expect("write");
    paths.push_back(path);
  }
  dep.clock()->advance_seconds(3600);  // an hour passes
  alice.write_file(paths[0], to_bytes("a small honest edit\n")).expect("edit");
  dep.clock()->advance_seconds(3600);

  // The attack.
  const auto attack = ransomware_attack(alice, paths, 4242);

  // The admin audits and detects — WITHOUT using the attack's ground truth.
  auto recovery = dep.make_recovery_service("alice");
  auto audit = recovery.audit_log();
  ASSERT_TRUE(audit.ok());
  AuditAnalyzer analyzer(audit->records);
  const auto suspected = analyzer.detect_mass_rewrite();
  EXPECT_EQ(suspected, attack.malicious_seqs);

  // Recovery driven purely by the detector restores every file: d0 to its
  // last legitimate edit, the others to their original prose.
  auto results = recovery.recover_all(suspected);
  ASSERT_TRUE(results.ok());
  for (const auto& r : *results) {
    const std::string text = to_string(r.content);
    if (r.path == paths[0]) {
      EXPECT_NE(text.find("honest edit"), std::string::npos) << r.path;
    } else {
      EXPECT_NE(text.find("ordinary prose"), std::string::npos) << r.path;
    }
  }
}

TEST_F(DetectionFixture, EntropyRefinementDropsLowEntropyRewrites) {
  // A legitimate batch job rewrites several text files at once — the
  // metadata detector flags it, but entropy filtering clears it.
  std::vector<std::string> paths;
  for (int i = 0; i < 4; ++i) {
    const std::string path = "/gen/g" + std::to_string(i);
    alice.write_file(path, to_bytes("seed")).expect("write");
    paths.push_back(path);
  }
  for (const auto& path : paths) {
    std::string regenerated;
    for (int l = 0; l < 80; ++l) regenerated += "regenerated text content, low entropy\n";
    alice.write_file(path, to_bytes(regenerated)).expect("rewrite");
  }

  auto recovery = dep.make_recovery_service("alice");
  auto audit = recovery.audit_log();
  ASSERT_TRUE(audit.ok());
  AuditAnalyzer analyzer(audit->records);
  const auto suspected = analyzer.detect_mass_rewrite();
  EXPECT_FALSE(suspected.empty());  // metadata alone cries wolf

  // Fetch payloads through the admin's storage and check entropy.
  auto storage = dep.make_recovery_service("alice");  // fresh tokens/state
  const auto admin_tokens = dep.admin_tokens();
  depsky::DepSkyConfig cfg;
  cfg.clouds = dep.clouds();
  cfg.f = 1;
  crypto::Drbg drbg(to_bytes("audit-test"));
  cfg.writer = crypto::generate_keypair(drbg);
  cfg.trusted_writers.push_back(
      crypto::point_encode(dep.secrets("alice").user_public_key));
  depsky::DepSkyClient client(std::move(cfg), to_bytes("seed"));

  const auto confirmed = analyzer.filter_by_entropy(
      suspected, [&](const LogRecord& r) -> Result<Bytes> {
        auto payload = client.read(admin_tokens, r.data_unit());
        if (!payload.value.ok()) return Error{payload.value.error()};
        return unwrap_log_payload(*payload.value);
      });
  EXPECT_TRUE(confirmed.empty());  // low-entropy rewrites are not ransomware
}

}  // namespace
}  // namespace rockfs::core
