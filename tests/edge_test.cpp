// Edge-case sweeps that round out the per-module suites: latency-composition
// helpers, cold-tier lifecycle, coordination durability under churn, keystore
// threshold variants, and crypto known-answer vectors beyond the basics.
#include <gtest/gtest.h>

#include "cloud/provider.h"
#include "common/hex.h"
#include "coord/service.h"
#include "crypto/aes.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"
#include "rockfs/deployment.h"
#include "sim/timed.h"

namespace rockfs {
namespace {

// ------------------------------------------------------------ sim helpers

TEST(QuorumDelay, Semantics) {
  using sim::quorum_delay;
  EXPECT_EQ(quorum_delay({}, 3), 0);
  EXPECT_EQ(quorum_delay({10, 20, 30}, 0), 0);
  EXPECT_EQ(quorum_delay({10, 20, 30}, 1), 10);
  EXPECT_EQ(quorum_delay({30, 10, 20}, 2), 20);   // order-independent
  EXPECT_EQ(quorum_delay({10, 20, 30}, 3), 30);
  EXPECT_EQ(quorum_delay({10, 20, 30}, 99), 30);  // clamped to size
}

TEST(ParallelDelay, Semantics) {
  EXPECT_EQ(sim::parallel_delay({}), 0);
  EXPECT_EQ(sim::parallel_delay({5}), 5);
  EXPECT_EQ(sim::parallel_delay({5, 50, 7}), 50);
}

// ----------------------------------------------------------- cloud cold tier

struct ColdTierFixture : ::testing::Test {
  sim::SimClockPtr clock = std::make_shared<sim::SimClock>();
  cloud::CloudProvider provider{"s3", clock, sim::LinkProfile::s3_like("s3"), 11};
  cloud::AccessToken admin =
      provider.issue_token("admin", "fs", cloud::TokenScope::kAdmin);
  cloud::AccessToken user = provider.issue_token("u", "fs", cloud::TokenScope::kFiles);
};

TEST_F(ColdTierFixture, ArchiveMovesBytesBetweenTiers) {
  provider.put(user, "files/f", Bytes(1'000, 1)).value.expect("put");
  EXPECT_EQ(provider.stored_bytes(), 1'000u);
  EXPECT_EQ(provider.cold_bytes(), 0u);
  provider.archive(admin, "files/f").value.expect("archive");
  EXPECT_EQ(provider.stored_bytes(), 0u);
  EXPECT_EQ(provider.cold_bytes(), 1'000u);
  EXPECT_TRUE(provider.archived("files/f"));
  // Hot read now misses; cold read succeeds with a huge delay.
  EXPECT_EQ(provider.get(admin, "files/f").value.code(), ErrorCode::kNotFound);
  auto cold = provider.restore_from_cold(admin, "files/f");
  ASSERT_TRUE(cold.value.ok());
  EXPECT_EQ(cold.value->size(), 1'000u);
  EXPECT_GT(cold.delay, 3'600'000'000LL);  // Glacier-class hours
}

TEST_F(ColdTierFixture, ArchiveValidation) {
  EXPECT_EQ(provider.archive(admin, "files/none").value.code(), ErrorCode::kNotFound);
  EXPECT_EQ(provider.restore_from_cold(admin, "files/none").value.code(),
            ErrorCode::kNotFound);
  provider.put(user, "files/f", Bytes(10, 1)).value.expect("put");
  provider.set_available(false);
  EXPECT_EQ(provider.archive(admin, "files/f").value.code(), ErrorCode::kUnavailable);
  EXPECT_EQ(provider.restore_from_cold(admin, "files/f").value.code(),
            ErrorCode::kUnavailable);
}

// -------------------------------------------------- coordination durability

TEST(CoordDurability, FullClusterCheckpointRoundTrip) {
  auto clock = std::make_shared<sim::SimClock>();
  coord::CoordinationService svc(clock, 1, 3);
  for (int i = 0; i < 20; ++i) {
    svc.out({"k", std::to_string(i)}).value.expect("out");
  }
  // Checkpoint every replica, wipe two via restore-from-peer, verify state.
  const Bytes cp = svc.checkpoint_replica(0);
  ASSERT_TRUE(svc.restore_replica(1, cp).ok());
  ASSERT_TRUE(svc.restore_replica(2, cp).ok());
  auto c = svc.count(coord::Template::of({"k", "*"}));
  ASSERT_TRUE(c.value.ok());
  EXPECT_EQ(*c.value, 20u);
}

TEST(CoordDurability, RestoreRejectsGarbage) {
  auto clock = std::make_shared<sim::SimClock>();
  coord::CoordinationService svc(clock, 1, 3);
  EXPECT_FALSE(svc.restore_replica(0, to_bytes("not a checkpoint")).ok());
}

TEST(CoordChurn, WritesDuringRollingFaults) {
  auto clock = std::make_shared<sim::SimClock>();
  coord::CoordinationService svc(clock, 1, 9);
  // One replica at a time goes down while writes continue; state converges
  // for the replicas that stayed up (the down one misses updates — our
  // simulation has no state-transfer protocol beyond checkpoints, so bring
  // it back via a peer checkpoint as DepSpace's durability layer would).
  for (std::size_t down = 0; down < 4; ++down) {
    svc.set_replica_down(down, true);
    svc.out({"epoch", std::to_string(down)}).value.expect("out");
    svc.set_replica_down(down, false);
    const Bytes cp = svc.checkpoint_replica((down + 1) % 4);
    ASSERT_TRUE(svc.restore_replica(down, cp).ok());
  }
  auto c = svc.count(coord::Template::of({"epoch", "*"}));
  ASSERT_TRUE(c.value.ok());
  EXPECT_EQ(*c.value, 4u);
}

// --------------------------------------------------------- crypto vectors

TEST(CryptoVectors, HmacSha256Rfc4231Case3) {
  // key = 20x 0xaa, data = 50x 0xdd.
  const Bytes key(20, 0xaa);
  const Bytes data(50, 0xdd);
  EXPECT_EQ(hex_encode(crypto::hmac_sha256(key, data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(CryptoVectors, Sha256TwoBlockBoundaryLengths) {
  // Lengths around the 64-byte block boundary must all round-trip the
  // streaming/one-shot equivalence (padding edge cases).
  for (const std::size_t len : {55uL, 56uL, 57uL, 63uL, 64uL, 65uL, 119uL, 120uL}) {
    const Bytes data(len, 'x');
    crypto::Sha256 ctx;
    for (const Byte b : data) ctx.update(BytesView(&b, 1));
    EXPECT_EQ(ctx.finish(), crypto::sha256(data)) << len;
  }
}

TEST(CryptoVectors, Aes256CtrMultiBlockSp80038a) {
  // SP 800-38A F.5.5 CTR-AES256, blocks 1-2.
  const Bytes key = hex_decode(
      "603deb1015ca71be2b73aef0857d77811f352c073b6108d72d9810a30914dff4");
  const Bytes iv = hex_decode("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
  const Bytes pt = hex_decode(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51");
  EXPECT_EQ(hex_encode(crypto::aes256_ctr(key, iv, pt)),
            "601ec313775789a5b7a7f504bbf3d228"
            "f443e3ca4d62b59aca84e990cacaf5c5");
}

// ------------------------------------------------ deployment odds and ends

TEST(DeploymentEdge, DuplicateUserRejected) {
  core::Deployment dep;
  dep.add_user("alice");
  EXPECT_THROW(dep.add_user("alice"), std::invalid_argument);
  EXPECT_THROW(dep.agent("nobody"), std::invalid_argument);
  EXPECT_THROW(dep.secrets("nobody"), std::invalid_argument);
}

TEST(DeploymentEdge, F2DeploymentEndToEnd) {
  core::DeploymentOptions opts;
  opts.f = 2;  // 7 clouds, 7 coordination replicas
  core::Deployment dep(opts);
  EXPECT_EQ(dep.clouds().size(), 7u);
  auto& alice = dep.add_user("alice");
  ASSERT_TRUE(alice.write_file("/f", to_bytes("seven clouds")).ok());
  // Two simultaneous cloud outages are within the f=2 bound.
  dep.clouds()[0]->set_available(false);
  dep.clouds()[5]->set_available(false);
  alice.fs().clear_cache();
  auto content = alice.read_file("/f");
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(to_string(*content), "seven clouds");
}

}  // namespace
}  // namespace rockfs
