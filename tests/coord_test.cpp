#include <gtest/gtest.h>

#include <memory>

#include "coord/service.h"
#include "scfs/lease.h"

namespace rockfs::coord {
namespace {

// ------------------------------------------------------------------- Tuple

TEST(TupleMatch, ExactAndWildcard) {
  const Tuple t{"inode", "/docs/a.txt", "42"};
  EXPECT_TRUE(Template::of({"inode", "/docs/a.txt", "42"}).matches(t));
  EXPECT_TRUE(Template::of({"inode", "*", "*"}).matches(t));
  EXPECT_FALSE(Template::of({"inode", "/docs/b.txt", "*"}).matches(t));
  EXPECT_FALSE(Template::of({"inode", "*"}).matches(t));  // arity mismatch
}

TEST(TupleSerialize, RoundTrip) {
  const Tuple t{"a", "", "multi word field", "42"};
  EXPECT_EQ(deserialize_tuple(serialize_tuple(t)), t);
  EXPECT_EQ(deserialize_tuple(serialize_tuple(Tuple{})), Tuple{});
}

// ----------------------------------------------------------------- Replica

TEST(Replica, OutRdpInp) {
  Replica r("r0");
  r.out({"k", "v1"});
  r.out({"k", "v2"});
  EXPECT_EQ(r.size(), 2u);
  // rdp returns the oldest match without removing it.
  auto read = r.rdp(Template::of({"k", "*"}));
  ASSERT_TRUE(read.has_value());
  EXPECT_EQ((*read)[1], "v1");
  EXPECT_EQ(r.size(), 2u);
  // inp removes it.
  auto taken = r.inp(Template::of({"k", "*"}));
  ASSERT_TRUE(taken.has_value());
  EXPECT_EQ((*taken)[1], "v1");
  EXPECT_EQ(r.size(), 1u);
  EXPECT_EQ((*r.rdp(Template::of({"k", "*"})))[1], "v2");
}

TEST(Replica, RdallAndCount) {
  Replica r("r0");
  r.out({"log", "f1", "0"});
  r.out({"log", "f1", "1"});
  r.out({"log", "f2", "0"});
  EXPECT_EQ(r.rdall(Template::of({"log", "f1", "*"})).size(), 2u);
  EXPECT_EQ(r.count(Template::of({"log", "*", "*"})), 3u);
  EXPECT_TRUE(r.rdall(Template::of({"none", "*", "*"})).empty());
}

TEST(Replica, CasSemantics) {
  Replica r("r0");
  EXPECT_TRUE(r.cas(Template::of({"lock", "f1", "*"}), {"lock", "f1", "alice"}));
  // Second cas on the same lock fails (lock already held).
  EXPECT_FALSE(r.cas(Template::of({"lock", "f1", "*"}), {"lock", "f1", "mallory"}));
  EXPECT_EQ((*r.rdp(Template::of({"lock", "f1", "*"})))[2], "alice");
}

TEST(Replica, ReplaceSemantics) {
  Replica r("r0");
  r.out({"session", "alice", "key1"});
  r.out({"session", "alice", "key2"});
  EXPECT_EQ(r.replace(Template::of({"session", "alice", "*"}), {"session", "alice", "key3"}),
            2u);
  const auto all = r.rdall(Template::of({"session", "alice", "*"}));
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0][2], "key3");
  // Replace with no match just inserts.
  EXPECT_EQ(r.replace(Template::of({"session", "bob", "*"}), {"session", "bob", "k"}), 0u);
}

TEST(Replica, CheckpointRestore) {
  Replica r("r0");
  r.out({"a", "1"});
  r.out({"b", "2"});
  const Bytes cp = r.checkpoint();
  auto restored = Replica::restore("r1", cp);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->size(), 2u);
  EXPECT_TRUE(restored->rdp(Template::of({"a", "*"})).has_value());

  Bytes bad = cp;
  bad.resize(bad.size() - 1);
  EXPECT_EQ(Replica::restore("rx", bad).code(), ErrorCode::kCorrupted);
}

// ----------------------------------------------------------------- Service

struct ServiceFixture : ::testing::Test {
  sim::SimClockPtr clock = std::make_shared<sim::SimClock>();
  CoordinationService svc{clock, /*f=*/1, /*seed=*/123};
};

TEST_F(ServiceFixture, HasThreeFPlusOneReplicas) {
  EXPECT_EQ(svc.replica_count(), 4u);
  EXPECT_EQ(svc.quorum(), 3u);
}

TEST_F(ServiceFixture, OutThenRdp) {
  auto w = svc.out({"meta", "/f", "v1"});
  ASSERT_TRUE(w.value.ok());
  EXPECT_GT(w.delay, 0);
  auto r = svc.rdp(Template::of({"meta", "/f", "*"}));
  ASSERT_TRUE(r.value.ok());
  ASSERT_TRUE(r.value->has_value());
  EXPECT_EQ((**r.value)[2], "v1");
}

TEST_F(ServiceFixture, ToleratesOneByzantineReplica) {
  svc.out({"meta", "/f", "v1"}).value.expect("out");
  svc.replica(0).set_byzantine(true);
  auto r = svc.rdp(Template::of({"meta", "/f", "*"}));
  ASSERT_TRUE(r.value.ok());
  ASSERT_TRUE(r.value->has_value());
  EXPECT_EQ((**r.value)[2], "v1");  // the lie was outvoted
  auto c = svc.count(Template::of({"meta", "*", "*"}));
  ASSERT_TRUE(c.value.ok());
  EXPECT_EQ(*c.value, 1u);
}

TEST_F(ServiceFixture, ToleratesOneCrashedReplica) {
  svc.out({"meta", "/f", "v1"}).value.expect("out");
  svc.set_replica_down(3, true);
  auto r = svc.rdp(Template::of({"meta", "/f", "*"}));
  ASSERT_TRUE(r.value.ok());
  EXPECT_TRUE(r.value->has_value());
  EXPECT_TRUE(svc.out({"meta", "/g", "v1"}).value.ok());
}

TEST_F(ServiceFixture, TwoFaultsBreakTheQuorum) {
  svc.out({"meta", "/f", "v1"}).value.expect("out");
  svc.set_replica_down(2, true);
  svc.set_replica_down(3, true);
  auto r = svc.rdp(Template::of({"meta", "/f", "*"}));
  EXPECT_EQ(r.value.code(), ErrorCode::kUnavailable);
}

TEST_F(ServiceFixture, ByzantinePlusCrashBreaksSafetyBound) {
  // f=1 tolerates one fault of any kind; one crash + one liar exceeds it.
  svc.out({"meta", "/f", "v1"}).value.expect("out");
  svc.set_replica_down(3, true);
  svc.replica(0).set_byzantine(true);
  auto r = svc.rdp(Template::of({"meta", "/f", "*"}));
  EXPECT_EQ(r.value.code(), ErrorCode::kUnavailable);  // detected, not wrong
}

TEST_F(ServiceFixture, CasIsAtomicAcrossReplicas) {
  auto first = svc.cas(Template::of({"lock", "/f", "*"}), {"lock", "/f", "alice"});
  ASSERT_TRUE(first.value.ok());
  EXPECT_TRUE(*first.value);
  auto second = svc.cas(Template::of({"lock", "/f", "*"}), {"lock", "/f", "bob"});
  ASSERT_TRUE(second.value.ok());
  EXPECT_FALSE(*second.value);
}

TEST_F(ServiceFixture, InpRemovesEverywhere) {
  svc.out({"q", "job1"}).value.expect("out");
  auto taken = svc.inp(Template::of({"q", "*"}));
  ASSERT_TRUE(taken.value.ok());
  ASSERT_TRUE(taken.value->has_value());
  auto again = svc.inp(Template::of({"q", "*"}));
  ASSERT_TRUE(again.value.ok());
  EXPECT_FALSE(again.value->has_value());
}

TEST_F(ServiceFixture, RdallVotesOnWholeSets) {
  svc.out({"log", "f", "0"}).value.expect("out");
  svc.out({"log", "f", "1"}).value.expect("out");
  svc.replica(1).set_byzantine(true);
  auto all = svc.rdall(Template::of({"log", "f", "*"}));
  ASSERT_TRUE(all.value.ok());
  EXPECT_EQ(all.value->size(), 2u);
  EXPECT_EQ((*all.value)[1][2], "1");
}

TEST_F(ServiceFixture, ReplaceQuorum) {
  svc.out({"agg", "user", "old"}).value.expect("out");
  auto rep = svc.replace(Template::of({"agg", "user", "*"}), {"agg", "user", "new"});
  ASSERT_TRUE(rep.value.ok());
  EXPECT_EQ(*rep.value, 1u);
  EXPECT_EQ((**svc.rdp(Template::of({"agg", "user", "*"})).value)[2], "new");
}

TEST_F(ServiceFixture, CrashedReplicaRecoversFromCheckpoint) {
  svc.out({"meta", "/f", "v1"}).value.expect("out");
  // Replica 2 "crashes": wipe it by restoring an empty peer checkpoint later.
  const Bytes good_cp = svc.checkpoint_replica(0);
  // Simulate state loss + recovery from a healthy replica's checkpoint.
  ASSERT_TRUE(svc.restore_replica(2, good_cp).ok());
  auto r = svc.rdp(Template::of({"meta", "/f", "*"}));
  ASSERT_TRUE(r.value.ok());
  EXPECT_TRUE(r.value->has_value());
}

TEST_F(ServiceFixture, DelayReflectsQuorumNotSlowest) {
  // The reply delay must be positive and deterministic for a fixed seed.
  auto a = svc.out({"x", "1"});
  EXPECT_GT(a.delay, 0);
  EXPECT_LT(a.delay, 1'000'000);  // well under a second for metadata ops
}

// ------------------------------------------- lease tuples under faults

TEST_F(ServiceFixture, LeaseMintUnderByzantineReplicaStaysSingleHolder) {
  // Alice mints the path's first lease (epoch 1) via CAS; a Byzantine
  // replica then lies about every lease read. The quorum outvotes the lie,
  // so a contender still sees alice's live lease and its own mint CAS — the
  // only path to a fresh epoch — fails: never two concurrent holders.
  scfs::Lease alice{"/f", "alice", "a-s1", clock->now_us() + 30'000'000, 1, true};
  auto minted = svc.cas(scfs::lease_pattern("/f"), scfs::lease_tuple(alice));
  ASSERT_TRUE(minted.value.ok());
  EXPECT_TRUE(*minted.value);

  svc.replica(2).set_byzantine(true);
  auto read = scfs::read_lease(svc, "/f");
  ASSERT_TRUE(read.value.ok());
  ASSERT_TRUE(read.value->has_value());
  EXPECT_EQ((*read.value)->holder, "alice");  // the corrupted read was outvoted
  EXPECT_EQ((*read.value)->epoch, 1u);
  EXPECT_TRUE((*read.value)->held);

  scfs::Lease bob{"/f", "bob", "b-s1", clock->now_us() + 30'000'000, 1, true};
  auto stolen = svc.cas(scfs::lease_pattern("/f"), scfs::lease_tuple(bob));
  ASSERT_TRUE(stolen.value.ok());
  EXPECT_FALSE(*stolen.value);  // the tuple exists — no second mint
}

TEST_F(ServiceFixture, LeaseTakeoverUnderReplicaOutageIsStillExclusive) {
  // With f replicas down, the lease CAS and the eviction arm (a SINGLE
  // conditional swap, not an inp-then-out pair whose second half could die
  // and destroy the epoch) keep working on the remaining quorum — and the
  // swap can match at most once, so two contenders racing for an expired
  // lease cannot both win, and the loser leaves the store untouched.
  svc.set_replica_down(3, true);

  scfs::Lease dead{"/f", "alice", "a-s1", clock->now_us() - 1, 1, true};
  auto minted = svc.cas(scfs::lease_pattern("/f"), scfs::lease_tuple(dead));
  ASSERT_TRUE(minted.value.ok());
  ASSERT_TRUE(*minted.value);

  // Two contenders observe the same expired lease; both race the takeover.
  scfs::Lease bob{"/f", "bob", "b-s1", clock->now_us() + 30'000'000, 2, true};
  auto first = svc.swap(scfs::lease_exact(dead), scfs::lease_tuple(bob));
  ASSERT_TRUE(first.value.ok());
  EXPECT_EQ(*first.value, 1u);
  scfs::Lease carol{"/f", "carol", "c-s1", clock->now_us() + 30'000'000, 2, true};
  auto second = svc.swap(scfs::lease_exact(dead), scfs::lease_tuple(carol));
  ASSERT_TRUE(second.value.ok());
  EXPECT_EQ(*second.value, 0u);  // the loser observes the take, inserts nothing

  auto read = scfs::read_lease(svc, "/f");
  ASSERT_TRUE(read.value.ok());
  ASSERT_TRUE(read.value->has_value());
  EXPECT_EQ((*read.value)->holder, "bob");
  EXPECT_EQ((*read.value)->epoch, 2u);  // monotone across the eviction

  // Exactly one lease tuple for the path survives the race.
  auto n = svc.count(scfs::lease_pattern("/f"));
  ASSERT_TRUE(n.value.ok());
  EXPECT_EQ(*n.value, 1u);
}

TEST(ServiceF2, FiveFaultsConfigurationWorks) {
  auto clock = std::make_shared<sim::SimClock>();
  CoordinationService svc(clock, /*f=*/2, /*seed=*/5);
  EXPECT_EQ(svc.replica_count(), 7u);
  svc.out({"k", "v"}).value.expect("out");
  svc.replica(0).set_byzantine(true);
  svc.replica(1).set_byzantine(true);
  auto r = svc.rdp(Template::of({"k", "*"}));
  ASSERT_TRUE(r.value.ok());
  EXPECT_EQ((**r.value)[1], "v");
}

}  // namespace
}  // namespace rockfs::coord
