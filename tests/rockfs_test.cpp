#include <gtest/gtest.h>

#include "common/rng.h"
#include "rockfs/attack.h"
#include "rockfs/costs.h"
#include "rockfs/deployment.h"

namespace rockfs::core {
namespace {

// ---------------------------------------------------------------- Keystore

struct KeystoreFixture : ::testing::Test {
  crypto::Drbg drbg{to_bytes("keystore-test")};
  std::vector<ShareHolder> holders{
      {"device", crypto::generate_keypair(drbg)},
      {"coordination", crypto::generate_keypair(drbg)},
      {"external", crypto::generate_keypair(drbg)},
  };
  std::vector<crypto::Point> pubs{holders[0].keys.public_key, holders[1].keys.public_key,
                                  holders[2].keys.public_key};

  Keystore sample_keystore() {
    Keystore ks;
    ks.user_id = "alice";
    ks.user_private_key = drbg.generate(32);
    ks.session_key = drbg.generate(32);
    ks.session_key_expiry_us = 123456;
    ks.fssagg_key_a = drbg.generate(32);
    ks.fssagg_key_b = drbg.generate(32);
    return ks;
  }
};

TEST_F(KeystoreFixture, SealUnsealRoundTrip) {
  const Keystore ks = sample_keystore();
  const SealedKeystore sealed = seal_keystore(ks, holders, 2, drbg);
  for (const auto& pair : {std::pair{0, 1}, {0, 2}, {1, 2}}) {
    auto restored = unseal_keystore(sealed, {holders[static_cast<std::size_t>(pair.first)],
                                             holders[static_cast<std::size_t>(pair.second)]},
                                    pubs, 2, drbg);
    ASSERT_TRUE(restored.ok()) << restored.error().message;
    EXPECT_EQ(restored->user_id, "alice");
    EXPECT_EQ(restored->user_private_key, ks.user_private_key);
    EXPECT_EQ(restored->fssagg_key_a, ks.fssagg_key_a);
  }
}

TEST_F(KeystoreFixture, OneShareIsNotEnough) {
  const SealedKeystore sealed = seal_keystore(sample_keystore(), holders, 2, drbg);
  auto restored = unseal_keystore(sealed, {holders[0]}, pubs, 2, drbg);
  EXPECT_EQ(restored.code(), ErrorCode::kInvalidArgument);
}

TEST_F(KeystoreFixture, TamperedCiphertextDetected) {
  SealedKeystore sealed = seal_keystore(sample_keystore(), holders, 2, drbg);
  sealed.ciphertext[sealed.ciphertext.size() / 2] ^= 0x01;
  auto restored = unseal_keystore(sealed, {holders[0], holders[1]}, pubs, 2, drbg);
  EXPECT_EQ(restored.code(), ErrorCode::kIntegrity);
}

TEST_F(KeystoreFixture, TamperedDealDetected) {
  SealedKeystore sealed = seal_keystore(sample_keystore(), holders, 2, drbg);
  sealed.deal.commitments[0] = crypto::scalar_mul_base(crypto::Uint256(5));
  auto restored = unseal_keystore(sealed, {holders[0], holders[1]}, pubs, 2, drbg);
  EXPECT_EQ(restored.code(), ErrorCode::kIntegrity);
}

TEST_F(KeystoreFixture, WrongHolderKeyDetectedByVerifyS) {
  const SealedKeystore sealed = seal_keystore(sample_keystore(), holders, 2, drbg);
  // Ransomware "encrypted" the device share: the holder key is now garbage.
  ShareHolder corrupted = holders[0];
  corrupted.keys = crypto::generate_keypair(drbg);
  auto restored = unseal_keystore(sealed, {corrupted, holders[1]}, pubs, 2, drbg);
  EXPECT_EQ(restored.code(), ErrorCode::kIntegrity);
}

TEST_F(KeystoreFixture, PasswordLayerRequiresBothFactors) {
  // Paper §5.4: the keystore is also password-encrypted, so k shares alone
  // do not suffice.
  const Keystore ks = sample_keystore();
  const SealedKeystore sealed = seal_keystore(ks, holders, 2, drbg, "hunter2");
  // Right password + k shares: ok.
  auto ok = unseal_keystore(sealed, {holders[0], holders[1]}, pubs, 2, drbg, "hunter2");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->user_id, "alice");
  // Right shares, wrong/missing password: integrity failure, not plaintext.
  EXPECT_EQ(
      unseal_keystore(sealed, {holders[0], holders[1]}, pubs, 2, drbg, "wrong").code(),
      ErrorCode::kIntegrity);
  EXPECT_EQ(unseal_keystore(sealed, {holders[0], holders[1]}, pubs, 2, drbg).code(),
            ErrorCode::kIntegrity);
  // Right password, too few shares: still rejected.
  EXPECT_FALSE(unseal_keystore(sealed, {holders[2]}, pubs, 2, drbg, "hunter2").ok());
}

TEST_F(KeystoreFixture, KeystoreSerializationRoundTrip) {
  Keystore ks = sample_keystore();
  auto restored = Keystore::deserialize(ks.serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->user_id, ks.user_id);
  EXPECT_EQ(restored->session_key_expiry_us, ks.session_key_expiry_us);
  Bytes mangled = ks.serialize();
  mangled.push_back(0);
  EXPECT_EQ(Keystore::deserialize(mangled).code(), ErrorCode::kCorrupted);
}

// -------------------------------------------------------------- Deployment

TEST(Deployment, PaperTopology) {
  Deployment dep;
  EXPECT_EQ(dep.clouds().size(), 4u);                     // 4 S3 buckets
  EXPECT_EQ(dep.coordination()->replica_count(), 4u);     // 4 DepSpace replicas
  auto& alice = dep.add_user("alice");
  EXPECT_TRUE(alice.logged_in());
}

TEST(Deployment, BasicFileWorkflow) {
  Deployment dep;
  auto& alice = dep.add_user("alice");
  ASSERT_TRUE(alice.write_file("/doc.txt", to_bytes("first version")).ok());
  auto content = alice.read_file("/doc.txt");
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(to_string(*content), "first version");
  EXPECT_EQ(alice.log_seq(), 1u);  // the close was logged
  ASSERT_TRUE(alice.write_file("/doc.txt", to_bytes("second version")).ok());
  EXPECT_EQ(alice.log_seq(), 2u);
}

TEST(Deployment, UsersAreIsolated) {
  Deployment dep;
  auto& alice = dep.add_user("alice");
  auto& bob = dep.add_user("bob");
  ASSERT_TRUE(alice.write_file("/mine", to_bytes("alice data")).ok());
  // Bob shares the namespace view (SCFS is a *shared* FS) but his units and
  // logs are separate.
  ASSERT_TRUE(bob.write_file("/his", to_bytes("bob data")).ok());
  EXPECT_EQ(alice.log_seq(), 1u);
  EXPECT_EQ(bob.log_seq(), 1u);
}

// ------------------------------------------------ T2: credential recovery

TEST(ThreatT2, DeviceShareDestroyedExternalRecovers) {
  Deployment dep;
  auto& alice = dep.add_user("alice");
  ASSERT_TRUE(alice.write_file("/f", to_bytes("precious")).ok());
  alice.logout();

  // Ransomware wipes the device share.
  dep.destroy_device_share("alice");
  // Default login (device + coordination) no longer has k=2 shares.
  EXPECT_FALSE(dep.login_default("alice").ok());
  EXPECT_FALSE(alice.logged_in());
  // The user fetches the USB stick: external + coordination shares suffice.
  ASSERT_TRUE(dep.login_with_external("alice").ok());
  ASSERT_TRUE(alice.logged_in());
  auto content = alice.read_file("/f");
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(to_string(*content), "precious");
}

// ------------------------------------------------ T3: local cache secrecy

TEST(ThreatT3, CacheHoldsNoPlaintext) {
  Deployment dep;
  auto& alice = dep.add_user("alice");
  const std::string probe = "CONFIDENTIAL-MARKER-XYZZY";
  ASSERT_TRUE(alice.write_file("/secret.txt", to_bytes("data " + probe + " end")).ok());

  const auto report = cache_theft_attack(alice, {"/secret.txt"}, probe);
  EXPECT_EQ(report.cached_files, 1u);
  EXPECT_EQ(report.plaintext_leaks, 0u);
}

TEST(ThreatT3, StockScfsLeaksPlaintext) {
  // Control experiment: with cache crypto off (stock SCFS), the probe IS on
  // disk — this is exactly the gap RockFS closes.
  DeploymentOptions opts;
  opts.agent.enable_cache_crypto = false;
  Deployment dep(opts);
  auto& alice = dep.add_user("alice");
  const std::string probe = "CONFIDENTIAL-MARKER-XYZZY";
  ASSERT_TRUE(alice.write_file("/secret.txt", to_bytes("data " + probe + " end")).ok());
  const auto report = cache_theft_attack(alice, {"/secret.txt"}, probe);
  EXPECT_EQ(report.plaintext_leaks, 1u);
}

TEST(ThreatT3, TamperedCacheDetectedAndRefetched) {
  Deployment dep;
  auto& alice = dep.add_user("alice");
  ASSERT_TRUE(alice.write_file("/f", to_bytes("genuine content")).ok());
  // Attacker flips bits in the cached file on disk.
  auto raw = alice.fs().cached_raw("/f");
  ASSERT_TRUE(raw.has_value());
  (*raw)[raw->size() / 2] ^= 0xFF;
  alice.fs().poke_cache("/f", *raw);
  // open() detects the mismatch and falls back to the cloud copy.
  auto content = alice.read_file("/f");
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(to_string(*content), "genuine content");
}

TEST(ThreatT3, SessionKeyExpiryDiscardsCache) {
  DeploymentOptions opts;
  opts.agent.session_key_validity_us = 1'000'000;  // 1 virtual second
  Deployment dep(opts);
  auto& alice = dep.add_user("alice");
  ASSERT_TRUE(alice.write_file("/f", Bytes(50'000, 0x3C)).ok());

  std::uint64_t down_before = 0;
  for (auto& c : dep.clouds()) down_before += c->traffic().downloaded_bytes();
  dep.clock()->advance_seconds(10);  // session key expires
  auto content = alice.read_file("/f");
  ASSERT_TRUE(content.ok());
  std::uint64_t down_after = 0;
  for (auto& c : dep.clouds()) down_after += c->traffic().downloaded_bytes();
  // The stale cache could not be used: the file was refetched.
  EXPECT_GT(down_after, down_before);
}

// ------------------------------------------- A2: log tampering is blocked

TEST(AttackA2, StolenTokensCannotDestroyTheLog) {
  Deployment dep;
  auto& alice = dep.add_user("alice");
  ASSERT_TRUE(alice.write_file("/f", to_bytes("v1")).ok());
  ASSERT_TRUE(alice.write_file("/f", to_bytes("v2")).ok());

  const auto report = log_tamper_attack(dep, "alice");
  EXPECT_GT(report.delete_attempts, 0u);
  EXPECT_EQ(report.deletes_denied, report.delete_attempts);
  EXPECT_EQ(report.overwrites_denied, report.overwrite_attempts);
}

// --------------------------------------------------- Recovery (T1, A1/A3)

struct RecoveryFixture : ::testing::Test {
  Deployment dep;
  RockFsAgent& alice = dep.add_user("alice");
};

TEST_F(RecoveryFixture, AuditCleanLog) {
  ASSERT_TRUE(alice.write_file("/f", to_bytes("v1")).ok());
  ASSERT_TRUE(alice.write_file("/f", to_bytes("v1 and v2")).ok());
  auto recovery = dep.make_recovery_service("alice");
  auto audit = recovery.audit_log();
  ASSERT_TRUE(audit.ok());
  EXPECT_TRUE(audit->report.ok);
  EXPECT_EQ(audit->records.size(), 2u);
  EXPECT_EQ(audit->records[0].op, "create");
  EXPECT_EQ(audit->records[1].op, "update");
}

TEST_F(RecoveryFixture, UndoRansomwareOnOneFile) {
  const Bytes good = to_bytes("the good content the user wants back");
  ASSERT_TRUE(alice.write_file("/doc", good).ok());

  const auto attack = ransomware_attack(alice, {"/doc"}, /*seed=*/666);
  ASSERT_EQ(attack.files_encrypted, 1u);
  EXPECT_NE(*alice.read_file("/doc"), good);  // damage is live in the clouds

  auto recovery = dep.make_recovery_service("alice");
  auto result = recovery.recover_file("/doc", attack.malicious_seqs);
  ASSERT_TRUE(result.ok()) << result.error().message;
  EXPECT_EQ(result->content, good);
  EXPECT_EQ(result->skipped_malicious, 1u);

  // The user sees the recovered version (cache is stale -> refetch).
  auto content = alice.read_file("/doc");
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, good);
}

TEST_F(RecoveryFixture, ValidOperationsAfterAttackAreKept) {
  ASSERT_TRUE(alice.write_file("/doc", to_bytes("clean v1")).ok());
  const auto attack = ransomware_attack(alice, {"/doc"}, 667);
  // The user (or a collaborator) later writes a legitimate new version.
  const Bytes post = to_bytes("legitimate full rewrite after the attack");
  ASSERT_TRUE(alice.write_file("/doc", post).ok());

  auto recovery = dep.make_recovery_service("alice");
  auto result = recovery.recover_file("/doc", attack.malicious_seqs);
  ASSERT_TRUE(result.ok());
  // Selective re-execution: the attack is skipped, the post-attack write
  // survives (it was a whole-file entry).
  EXPECT_EQ(result->content, post);
  EXPECT_EQ(result->skipped_malicious, 1u);
  EXPECT_GE(result->applied, 2u);  // create + post-attack rewrite
}

TEST_F(RecoveryFixture, DeltaChainRecovery) {
  // Build 5 versions by appending; recover with no malicious ops and get
  // the exact final content (pure selective re-execution sanity).
  Bytes content = to_bytes("base");
  ASSERT_TRUE(alice.write_file("/doc", content).ok());
  for (int i = 0; i < 4; ++i) {
    append(content, to_bytes(" +chunk" + std::to_string(i)));
    ASSERT_TRUE(alice.write_file("/doc", content).ok());
  }
  auto recovery = dep.make_recovery_service("alice");
  auto result = recovery.recover_file("/doc", {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->content, content);
  EXPECT_EQ(result->applied, 5u);
}

TEST_F(RecoveryFixture, DeletedFileIsResurrected) {
  const Bytes good = to_bytes("please do not delete me");
  ASSERT_TRUE(alice.write_file("/doc", good).ok());
  const std::uint64_t seq_before = alice.log_seq();
  ASSERT_TRUE(alice.unlink("/doc").ok());  // the "malicious" deletion
  EXPECT_EQ(alice.read_file("/doc").code(), ErrorCode::kNotFound);

  auto recovery = dep.make_recovery_service("alice");
  auto result = recovery.recover_file("/doc", {seq_before});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->content, good);
  auto content = alice.read_file("/doc");
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, good);
}

TEST_F(RecoveryFixture, WholeFileSystemRansomwareRecovery) {
  std::map<std::string, Bytes> ground_truth;
  Rng rng(42);
  for (int i = 0; i < 8; ++i) {
    const std::string path = "/file" + std::to_string(i);
    Bytes content = rng.next_bytes(2'000 + 500 * static_cast<std::size_t>(i));
    ASSERT_TRUE(alice.write_file(path, content).ok());
    // A second legitimate version for some files.
    if (i % 2 == 0) {
      append(content, rng.next_bytes(700));
      ASSERT_TRUE(alice.write_file(path, content).ok());
    }
    ground_truth[path] = content;
  }
  std::vector<std::string> paths;
  for (const auto& [p, c] : ground_truth) paths.push_back(p);

  const auto attack = ransomware_attack(alice, paths, 13);
  ASSERT_EQ(attack.files_encrypted, paths.size());

  auto recovery = dep.make_recovery_service("alice");
  auto results = recovery.recover_all(attack.malicious_seqs);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), paths.size());
  for (const auto& r : *results) {
    EXPECT_EQ(r.content, ground_truth[r.path]) << r.path;
  }
  EXPECT_GT(recovery.last_recovery_us(), 0);

  // End-to-end: the user reads every file back intact.
  for (const auto& [path, content] : ground_truth) {
    auto got = alice.read_file(path);
    ASSERT_TRUE(got.ok()) << path;
    EXPECT_EQ(*got, content) << path;
  }
}

TEST_F(RecoveryFixture, PriorityFilesRecoverFirst) {
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        alice.write_file("/f" + std::to_string(i), to_bytes("data" + std::to_string(i)))
            .ok());
  }
  const auto attack = ransomware_attack(alice, {"/f0", "/f1", "/f2", "/f3"}, 5);
  auto recovery = dep.make_recovery_service("alice");
  auto results = recovery.recover_all(attack.malicious_seqs, {"/f3", "/f2"});
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 4u);
  EXPECT_EQ((*results)[0].path, "/f3");
  EXPECT_EQ((*results)[1].path, "/f2");
}

TEST_F(RecoveryFixture, PriorityListToleratesDuplicatesAndUnknowns) {
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        alice.write_file("/f" + std::to_string(i), to_bytes("data" + std::to_string(i)))
            .ok());
  }
  auto recovery = dep.make_recovery_service("alice");
  // Operators paste messy lists: duplicated entries must recover once, paths
  // the log has never seen must be skipped (not fail the whole run), and the
  // completion order must still honor the (deduplicated) priorities.
  auto results =
      recovery.recover_all({}, {"/f2", "/missing", "/f2", "/f0", "/also-missing", "/f2"});
  ASSERT_TRUE(results.ok()) << results.error().message;
  ASSERT_EQ(results->size(), 3u);
  EXPECT_EQ((*results)[0].path, "/f2");
  EXPECT_EQ((*results)[1].path, "/f0");
  EXPECT_EQ((*results)[2].path, "/f1");
  std::set<std::string> unique_paths;
  for (const auto& r : *results) unique_paths.insert(r.path);
  EXPECT_EQ(unique_paths.size(), results->size());  // nothing recovered twice
}

TEST_F(RecoveryFixture, RecoveryOperationsAreLogged) {
  ASSERT_TRUE(alice.write_file("/doc", to_bytes("v1")).ok());
  const auto attack = ransomware_attack(alice, {"/doc"}, 7);
  auto recovery = dep.make_recovery_service("alice");
  ASSERT_TRUE(recovery.recover_file("/doc", attack.malicious_seqs).ok());
  // The admin chain holds a "recover" record.
  auto admin_log = read_log_records(*dep.coordination(), "admin:alice");
  ASSERT_TRUE(admin_log.value.ok());
  ASSERT_EQ(admin_log.value->size(), 1u);
  EXPECT_EQ((*admin_log.value)[0].op, "recover");
}

// --------------------------------- A3: log metadata tampering is detected

TEST_F(RecoveryFixture, TamperedLogRecordIsDiscarded) {
  ASSERT_TRUE(alice.write_file("/doc", to_bytes("v1")).ok());
  ASSERT_TRUE(alice.write_file("/doc", to_bytes("v1v2")).ok());

  // The attacker somehow rewrites a log tuple at EVERY replica (beyond the
  // BFT bound — worst case). FssAgg still catches it.
  auto records = read_log_records(*dep.coordination(), "alice");
  ASSERT_TRUE(records.value.ok());
  LogRecord forged = (*records.value)[1];
  forged.path = "/somewhere-else";  // attacker redirects the entry
  const auto pattern = coord::Template::of(
      {"rocklog", "alice", "*", "/doc", "5", "*", "*", "*", "*", "*", "*", "*", "*"});
  for (std::size_t i = 0; i < dep.coordination()->replica_count(); ++i) {
    auto& replica = dep.coordination()->replica(i);
    // Remove the genuine second record and plant the forged one.
    coord::Template exact = coord::Template::of(
        {"rocklog", "alice", (*records.value)[1].to_tuple()[2], "*", "*", "*", "*", "*",
         "*", "*", "*", "*", "*"});
    replica.inp(exact);
    replica.out(forged.to_tuple());
  }
  (void)pattern;

  auto recovery = dep.make_recovery_service("alice");
  auto audit = recovery.audit_log();
  ASSERT_TRUE(audit.ok());
  EXPECT_FALSE(audit->report.ok);
  ASSERT_EQ(audit->discarded_seqs.size(), 1u);

  // Recovery proceeds using only the intact entries: the forged record
  // points at another path, and its seq is in the discard set either way.
  auto result = recovery.recover_file("/doc", {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(to_string(result->content), "v1");  // v2's entry was discarded
}

TEST_F(RecoveryFixture, ByzantineReplicaCannotPoisonTheAudit) {
  ASSERT_TRUE(alice.write_file("/doc", to_bytes("v1")).ok());
  dep.coordination()->replica(2).set_byzantine(true);
  auto recovery = dep.make_recovery_service("alice");
  auto audit = recovery.audit_log();
  ASSERT_TRUE(audit.ok());
  EXPECT_TRUE(audit->report.ok);  // the lie was outvoted
}

TEST_F(RecoveryFixture, CorruptedLogDataHalfIsSkipped) {
  ASSERT_TRUE(alice.write_file("/doc", to_bytes("v1")).ok());
  ASSERT_TRUE(alice.write_file("/doc", to_bytes("v1 plus v2")).ok());
  // Corrupt the second entry's payload at every cloud (beyond-f worst case).
  auto records = read_log_records(*dep.coordination(), "alice");
  const std::string unit = (*records.value)[1].data_unit();
  for (auto& c : dep.clouds()) {
    for (std::size_t s = 0; s < 4; ++s) {
      (void)c->corrupt_object(unit + ".v1.s" + std::to_string(s));
    }
  }
  auto recovery = dep.make_recovery_service("alice");
  auto result = recovery.recover_file("/doc", {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(to_string(result->content), "v1");
  EXPECT_EQ(result->skipped_invalid, 1u);
}

TEST_F(RecoveryFixture, PointInTimeRecovery) {
  ASSERT_TRUE(alice.write_file("/doc", to_bytes("v1")).ok());
  ASSERT_TRUE(alice.write_file("/doc", to_bytes("v1+v2")).ok());
  const std::int64_t before_attack = dep.clock()->now_us();
  dep.clock()->advance_seconds(60);
  // The "compromise": a write after the cut-off (IDS only knows the time).
  ASSERT_TRUE(alice.write_file("/doc", to_bytes("TAMPERED")).ok());

  auto recovery = dep.make_recovery_service("alice");
  auto result = recovery.recover_file_at("/doc", before_attack);
  ASSERT_TRUE(result.ok()) << result.error().message;
  EXPECT_EQ(to_string(result->content), "v1+v2");
  EXPECT_EQ(result->skipped_malicious, 1u);  // the post-cutoff entry
  auto read_back = alice.read_file("/doc");
  ASSERT_TRUE(read_back.ok());
  EXPECT_EQ(to_string(*read_back), "v1+v2");
}

TEST_F(RecoveryFixture, PointInTimeIgnoresLaterSnapshots) {
  ASSERT_TRUE(alice.write_file("/doc", to_bytes("clean")).ok());
  const std::int64_t cutoff = dep.clock()->now_us();
  dep.clock()->advance_seconds(10);
  ASSERT_TRUE(alice.write_file("/doc", to_bytes("clean+dirty")).ok());

  auto recovery = dep.make_recovery_service("alice");
  // A snapshot taken AFTER the cut-off folds the dirty write in; the
  // point-in-time recovery must bypass it.
  recovery.compact_file("/doc").expect("compact");
  auto result = recovery.recover_file_at("/doc", cutoff);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(to_string(result->content), "clean");
}

// ----------------------------------------------------------- Cost models

TEST(CostModel, PaperExamples) {
  const CostModel model;  // delta=30%, n=4, $0.09/GB egress
  constexpr double kMb = 1024.0 * 1024.0;
  // §6.4.1: 1MB update -> 3MB uploaded; 50MB -> 130MB.
  EXPECT_NEAR(model.log_upload_bytes(1 * kMb) / kMb, 2.6, 0.01);
  EXPECT_NEAR(model.log_upload_bytes(50 * kMb) / kMb, 130.0, 0.5);
  // §6.4.2: 1MB 1-version recovery ~3MB; 50MB 100 versions ~3.1GB, ~$0.27.
  EXPECT_NEAR(model.recovery_download_bytes(1 * kMb, 1) / kMb, 2.6, 0.01);
  EXPECT_NEAR(model.recovery_download_bytes(50 * kMb, 100) / kMb, 3100.0, 10.0);
  EXPECT_NEAR(model.recovery_cost_usd(50 * kMb, 100), 0.27, 0.02);
  EXPECT_LT(model.recovery_cost_usd(1 * kMb, 1), 0.01);
  // Uploads are free by default.
  EXPECT_DOUBLE_EQ(model.upload_cost_usd(1e9), 0.0);
}

TEST(CostModel, StorageEstimateFromRecords) {
  const CostModel model;
  std::vector<LogRecord> records;
  LogRecord create;
  create.seq = 0;
  create.path = "/f";
  create.op = "create";
  create.whole_file = true;
  create.payload_size = 10 << 20;
  records.push_back(create);
  const double usd = estimate_monthly_storage_usd(model, records);
  // 20MB file copy + 20MB log, ~0.04GB at $0.023 -> around a tenth of a cent.
  EXPECT_GT(usd, 0.0005);
  EXPECT_LT(usd, 0.01);
}

// ------------------------------------------------------------ Agent misc

TEST(Agent, OpsRequireLogin) {
  Deployment dep;
  auto& alice = dep.add_user("alice");
  alice.logout();
  EXPECT_EQ(alice.create("/f").code(), ErrorCode::kPermissionDenied);
  EXPECT_EQ(alice.read_file("/f").code(), ErrorCode::kPermissionDenied);
  EXPECT_EQ(alice.write_file("/f", to_bytes("x")).code(), ErrorCode::kPermissionDenied);
}

TEST(Agent, LoggingOffMatchesPlainScfs) {
  DeploymentOptions opts;
  opts.agent.enable_logging = false;
  Deployment dep(opts);
  auto& alice = dep.add_user("alice");
  ASSERT_TRUE(alice.write_file("/f", to_bytes("x")).ok());
  EXPECT_EQ(alice.log_seq(), 0u);
  auto records = read_log_records(*dep.coordination(), "alice");
  ASSERT_TRUE(records.value.ok());
  EXPECT_TRUE(records.value->empty());
}

TEST(Agent, NonBlockingModeWorksEndToEnd) {
  DeploymentOptions opts;
  opts.agent.sync_mode = scfs::SyncMode::kNonBlocking;
  Deployment dep(opts);
  auto& alice = dep.add_user("alice");
  ASSERT_TRUE(alice.write_file("/f", Bytes(100'000, 0x77)).ok());
  alice.drain_background();
  auto content = alice.read_file("/f");
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(content->size(), 100'000u);
}

}  // namespace
}  // namespace rockfs::core
